file(REMOVE_RECURSE
  "CMakeFiles/cps_net.dir/radio.cpp.o"
  "CMakeFiles/cps_net.dir/radio.cpp.o.d"
  "CMakeFiles/cps_net.dir/routing.cpp.o"
  "CMakeFiles/cps_net.dir/routing.cpp.o.d"
  "libcps_net.a"
  "libcps_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cps_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
