# Empty dependencies file for cps_net.
# This may be replaced when dependencies are built.
