file(REMOVE_RECURSE
  "libcps_net.a"
)
