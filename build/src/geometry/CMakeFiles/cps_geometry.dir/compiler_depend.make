# Empty compiler generated dependencies file for cps_geometry.
# This may be replaced when dependencies are built.
