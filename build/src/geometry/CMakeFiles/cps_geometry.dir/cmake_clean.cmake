file(REMOVE_RECURSE
  "CMakeFiles/cps_geometry.dir/delaunay.cpp.o"
  "CMakeFiles/cps_geometry.dir/delaunay.cpp.o.d"
  "CMakeFiles/cps_geometry.dir/hull.cpp.o"
  "CMakeFiles/cps_geometry.dir/hull.cpp.o.d"
  "CMakeFiles/cps_geometry.dir/predicates.cpp.o"
  "CMakeFiles/cps_geometry.dir/predicates.cpp.o.d"
  "CMakeFiles/cps_geometry.dir/triangle.cpp.o"
  "CMakeFiles/cps_geometry.dir/triangle.cpp.o.d"
  "libcps_geometry.a"
  "libcps_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cps_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
