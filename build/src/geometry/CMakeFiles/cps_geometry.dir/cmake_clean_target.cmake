file(REMOVE_RECURSE
  "libcps_geometry.a"
)
