file(REMOVE_RECURSE
  "CMakeFiles/cps_field.dir/analytic_fields.cpp.o"
  "CMakeFiles/cps_field.dir/analytic_fields.cpp.o.d"
  "CMakeFiles/cps_field.dir/field_ops.cpp.o"
  "CMakeFiles/cps_field.dir/field_ops.cpp.o.d"
  "CMakeFiles/cps_field.dir/grid_field.cpp.o"
  "CMakeFiles/cps_field.dir/grid_field.cpp.o.d"
  "CMakeFiles/cps_field.dir/time_varying.cpp.o"
  "CMakeFiles/cps_field.dir/time_varying.cpp.o.d"
  "libcps_field.a"
  "libcps_field.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cps_field.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
