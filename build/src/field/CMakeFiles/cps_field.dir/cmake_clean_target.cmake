file(REMOVE_RECURSE
  "libcps_field.a"
)
