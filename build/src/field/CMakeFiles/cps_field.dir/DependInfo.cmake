
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/field/analytic_fields.cpp" "src/field/CMakeFiles/cps_field.dir/analytic_fields.cpp.o" "gcc" "src/field/CMakeFiles/cps_field.dir/analytic_fields.cpp.o.d"
  "/root/repo/src/field/field_ops.cpp" "src/field/CMakeFiles/cps_field.dir/field_ops.cpp.o" "gcc" "src/field/CMakeFiles/cps_field.dir/field_ops.cpp.o.d"
  "/root/repo/src/field/grid_field.cpp" "src/field/CMakeFiles/cps_field.dir/grid_field.cpp.o" "gcc" "src/field/CMakeFiles/cps_field.dir/grid_field.cpp.o.d"
  "/root/repo/src/field/time_varying.cpp" "src/field/CMakeFiles/cps_field.dir/time_varying.cpp.o" "gcc" "src/field/CMakeFiles/cps_field.dir/time_varying.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geometry/CMakeFiles/cps_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/numerics/CMakeFiles/cps_numerics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
