# Empty compiler generated dependencies file for cps_field.
# This may be replaced when dependencies are built.
