# Empty compiler generated dependencies file for cps_core.
# This may be replaced when dependencies are built.
