file(REMOVE_RECURSE
  "libcps_core.a"
)
