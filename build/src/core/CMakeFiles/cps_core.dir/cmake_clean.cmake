file(REMOVE_RECURSE
  "CMakeFiles/cps_core.dir/cma.cpp.o"
  "CMakeFiles/cps_core.dir/cma.cpp.o.d"
  "CMakeFiles/cps_core.dir/coverage.cpp.o"
  "CMakeFiles/cps_core.dir/coverage.cpp.o.d"
  "CMakeFiles/cps_core.dir/curvature.cpp.o"
  "CMakeFiles/cps_core.dir/curvature.cpp.o.d"
  "CMakeFiles/cps_core.dir/cwd.cpp.o"
  "CMakeFiles/cps_core.dir/cwd.cpp.o.d"
  "CMakeFiles/cps_core.dir/delta.cpp.o"
  "CMakeFiles/cps_core.dir/delta.cpp.o.d"
  "CMakeFiles/cps_core.dir/forces.cpp.o"
  "CMakeFiles/cps_core.dir/forces.cpp.o.d"
  "CMakeFiles/cps_core.dir/fra.cpp.o"
  "CMakeFiles/cps_core.dir/fra.cpp.o.d"
  "CMakeFiles/cps_core.dir/interpolation.cpp.o"
  "CMakeFiles/cps_core.dir/interpolation.cpp.o.d"
  "CMakeFiles/cps_core.dir/planner.cpp.o"
  "CMakeFiles/cps_core.dir/planner.cpp.o.d"
  "CMakeFiles/cps_core.dir/reconstruction.cpp.o"
  "CMakeFiles/cps_core.dir/reconstruction.cpp.o.d"
  "libcps_core.a"
  "libcps_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cps_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
