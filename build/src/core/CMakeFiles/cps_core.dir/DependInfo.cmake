
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cma.cpp" "src/core/CMakeFiles/cps_core.dir/cma.cpp.o" "gcc" "src/core/CMakeFiles/cps_core.dir/cma.cpp.o.d"
  "/root/repo/src/core/coverage.cpp" "src/core/CMakeFiles/cps_core.dir/coverage.cpp.o" "gcc" "src/core/CMakeFiles/cps_core.dir/coverage.cpp.o.d"
  "/root/repo/src/core/curvature.cpp" "src/core/CMakeFiles/cps_core.dir/curvature.cpp.o" "gcc" "src/core/CMakeFiles/cps_core.dir/curvature.cpp.o.d"
  "/root/repo/src/core/cwd.cpp" "src/core/CMakeFiles/cps_core.dir/cwd.cpp.o" "gcc" "src/core/CMakeFiles/cps_core.dir/cwd.cpp.o.d"
  "/root/repo/src/core/delta.cpp" "src/core/CMakeFiles/cps_core.dir/delta.cpp.o" "gcc" "src/core/CMakeFiles/cps_core.dir/delta.cpp.o.d"
  "/root/repo/src/core/forces.cpp" "src/core/CMakeFiles/cps_core.dir/forces.cpp.o" "gcc" "src/core/CMakeFiles/cps_core.dir/forces.cpp.o.d"
  "/root/repo/src/core/fra.cpp" "src/core/CMakeFiles/cps_core.dir/fra.cpp.o" "gcc" "src/core/CMakeFiles/cps_core.dir/fra.cpp.o.d"
  "/root/repo/src/core/interpolation.cpp" "src/core/CMakeFiles/cps_core.dir/interpolation.cpp.o" "gcc" "src/core/CMakeFiles/cps_core.dir/interpolation.cpp.o.d"
  "/root/repo/src/core/planner.cpp" "src/core/CMakeFiles/cps_core.dir/planner.cpp.o" "gcc" "src/core/CMakeFiles/cps_core.dir/planner.cpp.o.d"
  "/root/repo/src/core/reconstruction.cpp" "src/core/CMakeFiles/cps_core.dir/reconstruction.cpp.o" "gcc" "src/core/CMakeFiles/cps_core.dir/reconstruction.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geometry/CMakeFiles/cps_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/numerics/CMakeFiles/cps_numerics.dir/DependInfo.cmake"
  "/root/repo/build/src/field/CMakeFiles/cps_field.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/cps_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cps_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
