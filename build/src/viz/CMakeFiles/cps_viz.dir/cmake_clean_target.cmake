file(REMOVE_RECURSE
  "libcps_viz.a"
)
