
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/viz/ascii.cpp" "src/viz/CMakeFiles/cps_viz.dir/ascii.cpp.o" "gcc" "src/viz/CMakeFiles/cps_viz.dir/ascii.cpp.o.d"
  "/root/repo/src/viz/exporters.cpp" "src/viz/CMakeFiles/cps_viz.dir/exporters.cpp.o" "gcc" "src/viz/CMakeFiles/cps_viz.dir/exporters.cpp.o.d"
  "/root/repo/src/viz/series.cpp" "src/viz/CMakeFiles/cps_viz.dir/series.cpp.o" "gcc" "src/viz/CMakeFiles/cps_viz.dir/series.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/field/CMakeFiles/cps_field.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/cps_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/numerics/CMakeFiles/cps_numerics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
