# Empty compiler generated dependencies file for cps_viz.
# This may be replaced when dependencies are built.
