file(REMOVE_RECURSE
  "CMakeFiles/cps_viz.dir/ascii.cpp.o"
  "CMakeFiles/cps_viz.dir/ascii.cpp.o.d"
  "CMakeFiles/cps_viz.dir/exporters.cpp.o"
  "CMakeFiles/cps_viz.dir/exporters.cpp.o.d"
  "CMakeFiles/cps_viz.dir/series.cpp.o"
  "CMakeFiles/cps_viz.dir/series.cpp.o.d"
  "libcps_viz.a"
  "libcps_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cps_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
