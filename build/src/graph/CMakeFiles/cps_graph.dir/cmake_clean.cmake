file(REMOVE_RECURSE
  "CMakeFiles/cps_graph.dir/connectivity.cpp.o"
  "CMakeFiles/cps_graph.dir/connectivity.cpp.o.d"
  "CMakeFiles/cps_graph.dir/geometric_graph.cpp.o"
  "CMakeFiles/cps_graph.dir/geometric_graph.cpp.o.d"
  "CMakeFiles/cps_graph.dir/mst.cpp.o"
  "CMakeFiles/cps_graph.dir/mst.cpp.o.d"
  "CMakeFiles/cps_graph.dir/relay.cpp.o"
  "CMakeFiles/cps_graph.dir/relay.cpp.o.d"
  "CMakeFiles/cps_graph.dir/union_find.cpp.o"
  "CMakeFiles/cps_graph.dir/union_find.cpp.o.d"
  "libcps_graph.a"
  "libcps_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cps_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
