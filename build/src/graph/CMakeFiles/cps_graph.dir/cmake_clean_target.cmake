file(REMOVE_RECURSE
  "libcps_graph.a"
)
