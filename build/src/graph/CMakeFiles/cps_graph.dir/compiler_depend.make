# Empty compiler generated dependencies file for cps_graph.
# This may be replaced when dependencies are built.
