
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/connectivity.cpp" "src/graph/CMakeFiles/cps_graph.dir/connectivity.cpp.o" "gcc" "src/graph/CMakeFiles/cps_graph.dir/connectivity.cpp.o.d"
  "/root/repo/src/graph/geometric_graph.cpp" "src/graph/CMakeFiles/cps_graph.dir/geometric_graph.cpp.o" "gcc" "src/graph/CMakeFiles/cps_graph.dir/geometric_graph.cpp.o.d"
  "/root/repo/src/graph/mst.cpp" "src/graph/CMakeFiles/cps_graph.dir/mst.cpp.o" "gcc" "src/graph/CMakeFiles/cps_graph.dir/mst.cpp.o.d"
  "/root/repo/src/graph/relay.cpp" "src/graph/CMakeFiles/cps_graph.dir/relay.cpp.o" "gcc" "src/graph/CMakeFiles/cps_graph.dir/relay.cpp.o.d"
  "/root/repo/src/graph/union_find.cpp" "src/graph/CMakeFiles/cps_graph.dir/union_find.cpp.o" "gcc" "src/graph/CMakeFiles/cps_graph.dir/union_find.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geometry/CMakeFiles/cps_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/numerics/CMakeFiles/cps_numerics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
