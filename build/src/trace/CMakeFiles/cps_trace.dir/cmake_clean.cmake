file(REMOVE_RECURSE
  "CMakeFiles/cps_trace.dir/greenorbs.cpp.o"
  "CMakeFiles/cps_trace.dir/greenorbs.cpp.o.d"
  "CMakeFiles/cps_trace.dir/trace_io.cpp.o"
  "CMakeFiles/cps_trace.dir/trace_io.cpp.o.d"
  "libcps_trace.a"
  "libcps_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cps_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
