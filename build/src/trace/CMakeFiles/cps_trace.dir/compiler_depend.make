# Empty compiler generated dependencies file for cps_trace.
# This may be replaced when dependencies are built.
