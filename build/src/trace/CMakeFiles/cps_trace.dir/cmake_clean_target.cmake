file(REMOVE_RECURSE
  "libcps_trace.a"
)
