file(REMOVE_RECURSE
  "libcps_numerics.a"
)
