# Empty compiler generated dependencies file for cps_numerics.
# This may be replaced when dependencies are built.
