file(REMOVE_RECURSE
  "CMakeFiles/cps_numerics.dir/least_squares.cpp.o"
  "CMakeFiles/cps_numerics.dir/least_squares.cpp.o.d"
  "CMakeFiles/cps_numerics.dir/linalg.cpp.o"
  "CMakeFiles/cps_numerics.dir/linalg.cpp.o.d"
  "CMakeFiles/cps_numerics.dir/noise.cpp.o"
  "CMakeFiles/cps_numerics.dir/noise.cpp.o.d"
  "CMakeFiles/cps_numerics.dir/quadrature.cpp.o"
  "CMakeFiles/cps_numerics.dir/quadrature.cpp.o.d"
  "CMakeFiles/cps_numerics.dir/rng.cpp.o"
  "CMakeFiles/cps_numerics.dir/rng.cpp.o.d"
  "CMakeFiles/cps_numerics.dir/stats.cpp.o"
  "CMakeFiles/cps_numerics.dir/stats.cpp.o.d"
  "libcps_numerics.a"
  "libcps_numerics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cps_numerics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
