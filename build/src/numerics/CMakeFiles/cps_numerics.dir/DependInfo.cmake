
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/numerics/least_squares.cpp" "src/numerics/CMakeFiles/cps_numerics.dir/least_squares.cpp.o" "gcc" "src/numerics/CMakeFiles/cps_numerics.dir/least_squares.cpp.o.d"
  "/root/repo/src/numerics/linalg.cpp" "src/numerics/CMakeFiles/cps_numerics.dir/linalg.cpp.o" "gcc" "src/numerics/CMakeFiles/cps_numerics.dir/linalg.cpp.o.d"
  "/root/repo/src/numerics/noise.cpp" "src/numerics/CMakeFiles/cps_numerics.dir/noise.cpp.o" "gcc" "src/numerics/CMakeFiles/cps_numerics.dir/noise.cpp.o.d"
  "/root/repo/src/numerics/quadrature.cpp" "src/numerics/CMakeFiles/cps_numerics.dir/quadrature.cpp.o" "gcc" "src/numerics/CMakeFiles/cps_numerics.dir/quadrature.cpp.o.d"
  "/root/repo/src/numerics/rng.cpp" "src/numerics/CMakeFiles/cps_numerics.dir/rng.cpp.o" "gcc" "src/numerics/CMakeFiles/cps_numerics.dir/rng.cpp.o.d"
  "/root/repo/src/numerics/stats.cpp" "src/numerics/CMakeFiles/cps_numerics.dir/stats.cpp.o" "gcc" "src/numerics/CMakeFiles/cps_numerics.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
