# Empty dependencies file for bench_fig3_cwd_vs_uniform.
# This may be replaced when dependencies are built.
