file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_cwd_vs_uniform.dir/bench_fig3_cwd_vs_uniform.cpp.o"
  "CMakeFiles/bench_fig3_cwd_vs_uniform.dir/bench_fig3_cwd_vs_uniform.cpp.o.d"
  "bench_fig3_cwd_vs_uniform"
  "bench_fig3_cwd_vs_uniform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_cwd_vs_uniform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
