file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_foresight.dir/bench_ablation_foresight.cpp.o"
  "CMakeFiles/bench_ablation_foresight.dir/bench_ablation_foresight.cpp.o.d"
  "bench_ablation_foresight"
  "bench_ablation_foresight.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_foresight.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
