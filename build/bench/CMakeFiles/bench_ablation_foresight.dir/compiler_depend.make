# Empty compiler generated dependencies file for bench_ablation_foresight.
# This may be replaced when dependencies are built.
