file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_interpolation.dir/bench_extension_interpolation.cpp.o"
  "CMakeFiles/bench_extension_interpolation.dir/bench_extension_interpolation.cpp.o.d"
  "bench_extension_interpolation"
  "bench_extension_interpolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_interpolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
