# Empty dependencies file for bench_fig10_delta_vs_time.
# This may be replaced when dependencies are built.
