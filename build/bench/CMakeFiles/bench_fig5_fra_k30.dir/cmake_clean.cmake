file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_fra_k30.dir/bench_fig5_fra_k30.cpp.o"
  "CMakeFiles/bench_fig5_fra_k30.dir/bench_fig5_fra_k30.cpp.o.d"
  "bench_fig5_fra_k30"
  "bench_fig5_fra_k30.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_fra_k30.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
