# Empty compiler generated dependencies file for bench_fig5_fra_k30.
# This may be replaced when dependencies are built.
