# Empty compiler generated dependencies file for bench_fig1_reference_surface.
# This may be replaced when dependencies are built.
