# Empty dependencies file for bench_ablation_corner_policy.
# This may be replaced when dependencies are built.
