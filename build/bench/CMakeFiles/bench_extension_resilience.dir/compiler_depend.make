# Empty compiler generated dependencies file for bench_extension_resilience.
# This may be replaced when dependencies are built.
