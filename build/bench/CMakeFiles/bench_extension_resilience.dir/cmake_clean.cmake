file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_resilience.dir/bench_extension_resilience.cpp.o"
  "CMakeFiles/bench_extension_resilience.dir/bench_extension_resilience.cpp.o.d"
  "bench_extension_resilience"
  "bench_extension_resilience.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
