# Empty dependencies file for bench_fig8_9_cma_snapshots.
# This may be replaced when dependencies are built.
