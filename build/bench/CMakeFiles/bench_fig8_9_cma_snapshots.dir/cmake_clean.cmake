file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_9_cma_snapshots.dir/bench_fig8_9_cma_snapshots.cpp.o"
  "CMakeFiles/bench_fig8_9_cma_snapshots.dir/bench_fig8_9_cma_snapshots.cpp.o.d"
  "bench_fig8_9_cma_snapshots"
  "bench_fig8_9_cma_snapshots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_9_cma_snapshots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
