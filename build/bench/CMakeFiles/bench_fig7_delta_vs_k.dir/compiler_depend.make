# Empty compiler generated dependencies file for bench_fig7_delta_vs_k.
# This may be replaced when dependencies are built.
