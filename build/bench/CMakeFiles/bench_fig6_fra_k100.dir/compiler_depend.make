# Empty compiler generated dependencies file for bench_fig6_fra_k100.
# This may be replaced when dependencies are built.
