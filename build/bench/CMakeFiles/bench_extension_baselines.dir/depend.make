# Empty dependencies file for bench_extension_baselines.
# This may be replaced when dependencies are built.
