file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_baselines.dir/bench_extension_baselines.cpp.o"
  "CMakeFiles/bench_extension_baselines.dir/bench_extension_baselines.cpp.o.d"
  "bench_extension_baselines"
  "bench_extension_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
