file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_trace_sampling.dir/bench_extension_trace_sampling.cpp.o"
  "CMakeFiles/bench_extension_trace_sampling.dir/bench_extension_trace_sampling.cpp.o.d"
  "bench_extension_trace_sampling"
  "bench_extension_trace_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_trace_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
