# Empty dependencies file for bench_extension_trace_sampling.
# This may be replaced when dependencies are built.
