file(REMOVE_RECURSE
  "CMakeFiles/test_core_interpolation.dir/test_core_interpolation.cpp.o"
  "CMakeFiles/test_core_interpolation.dir/test_core_interpolation.cpp.o.d"
  "test_core_interpolation"
  "test_core_interpolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_interpolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
