# Empty dependencies file for test_core_reconstruction.
# This may be replaced when dependencies are built.
