file(REMOVE_RECURSE
  "CMakeFiles/test_core_reconstruction.dir/test_core_reconstruction.cpp.o"
  "CMakeFiles/test_core_reconstruction.dir/test_core_reconstruction.cpp.o.d"
  "test_core_reconstruction"
  "test_core_reconstruction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_reconstruction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
