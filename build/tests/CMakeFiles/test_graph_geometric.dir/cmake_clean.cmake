file(REMOVE_RECURSE
  "CMakeFiles/test_graph_geometric.dir/test_graph_geometric.cpp.o"
  "CMakeFiles/test_graph_geometric.dir/test_graph_geometric.cpp.o.d"
  "test_graph_geometric"
  "test_graph_geometric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph_geometric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
