# Empty dependencies file for test_graph_geometric.
# This may be replaced when dependencies are built.
