# Empty compiler generated dependencies file for test_graph_connectivity.
# This may be replaced when dependencies are built.
