file(REMOVE_RECURSE
  "CMakeFiles/test_graph_connectivity.dir/test_graph_connectivity.cpp.o"
  "CMakeFiles/test_graph_connectivity.dir/test_graph_connectivity.cpp.o.d"
  "test_graph_connectivity"
  "test_graph_connectivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph_connectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
