# Empty dependencies file for test_core_cma.
# This may be replaced when dependencies are built.
