file(REMOVE_RECURSE
  "CMakeFiles/test_core_cma.dir/test_core_cma.cpp.o"
  "CMakeFiles/test_core_cma.dir/test_core_cma.cpp.o.d"
  "test_core_cma"
  "test_core_cma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_cma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
