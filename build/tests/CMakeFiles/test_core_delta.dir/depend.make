# Empty dependencies file for test_core_delta.
# This may be replaced when dependencies are built.
