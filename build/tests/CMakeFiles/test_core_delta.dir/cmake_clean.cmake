file(REMOVE_RECURSE
  "CMakeFiles/test_core_delta.dir/test_core_delta.cpp.o"
  "CMakeFiles/test_core_delta.dir/test_core_delta.cpp.o.d"
  "test_core_delta"
  "test_core_delta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_delta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
