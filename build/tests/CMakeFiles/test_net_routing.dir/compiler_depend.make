# Empty compiler generated dependencies file for test_net_routing.
# This may be replaced when dependencies are built.
