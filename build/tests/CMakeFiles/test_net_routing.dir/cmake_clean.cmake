file(REMOVE_RECURSE
  "CMakeFiles/test_net_routing.dir/test_net_routing.cpp.o"
  "CMakeFiles/test_net_routing.dir/test_net_routing.cpp.o.d"
  "test_net_routing"
  "test_net_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
