# Empty dependencies file for test_geometry_delaunay_stress.
# This may be replaced when dependencies are built.
