file(REMOVE_RECURSE
  "CMakeFiles/test_geometry_delaunay_stress.dir/test_geometry_delaunay_stress.cpp.o"
  "CMakeFiles/test_geometry_delaunay_stress.dir/test_geometry_delaunay_stress.cpp.o.d"
  "test_geometry_delaunay_stress"
  "test_geometry_delaunay_stress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_geometry_delaunay_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
