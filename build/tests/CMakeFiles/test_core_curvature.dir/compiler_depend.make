# Empty compiler generated dependencies file for test_core_curvature.
# This may be replaced when dependencies are built.
