file(REMOVE_RECURSE
  "CMakeFiles/test_core_curvature.dir/test_core_curvature.cpp.o"
  "CMakeFiles/test_core_curvature.dir/test_core_curvature.cpp.o.d"
  "test_core_curvature"
  "test_core_curvature.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_curvature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
