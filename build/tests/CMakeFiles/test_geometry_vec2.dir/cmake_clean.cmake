file(REMOVE_RECURSE
  "CMakeFiles/test_geometry_vec2.dir/test_geometry_vec2.cpp.o"
  "CMakeFiles/test_geometry_vec2.dir/test_geometry_vec2.cpp.o.d"
  "test_geometry_vec2"
  "test_geometry_vec2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_geometry_vec2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
