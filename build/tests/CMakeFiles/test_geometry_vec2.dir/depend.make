# Empty dependencies file for test_geometry_vec2.
# This may be replaced when dependencies are built.
