# Empty compiler generated dependencies file for test_graph_relay.
# This may be replaced when dependencies are built.
