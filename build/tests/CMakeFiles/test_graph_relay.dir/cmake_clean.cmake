file(REMOVE_RECURSE
  "CMakeFiles/test_graph_relay.dir/test_graph_relay.cpp.o"
  "CMakeFiles/test_graph_relay.dir/test_graph_relay.cpp.o.d"
  "test_graph_relay"
  "test_graph_relay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph_relay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
