# Empty dependencies file for test_graph_mst.
# This may be replaced when dependencies are built.
