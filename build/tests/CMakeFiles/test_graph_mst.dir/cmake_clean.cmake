file(REMOVE_RECURSE
  "CMakeFiles/test_graph_mst.dir/test_graph_mst.cpp.o"
  "CMakeFiles/test_graph_mst.dir/test_graph_mst.cpp.o.d"
  "test_graph_mst"
  "test_graph_mst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph_mst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
