file(REMOVE_RECURSE
  "CMakeFiles/test_core_planner_extra.dir/test_core_planner_extra.cpp.o"
  "CMakeFiles/test_core_planner_extra.dir/test_core_planner_extra.cpp.o.d"
  "test_core_planner_extra"
  "test_core_planner_extra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_planner_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
