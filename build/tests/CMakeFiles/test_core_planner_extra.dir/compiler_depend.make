# Empty compiler generated dependencies file for test_core_planner_extra.
# This may be replaced when dependencies are built.
