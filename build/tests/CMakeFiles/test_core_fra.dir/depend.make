# Empty dependencies file for test_core_fra.
# This may be replaced when dependencies are built.
