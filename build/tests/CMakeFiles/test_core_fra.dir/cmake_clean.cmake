file(REMOVE_RECURSE
  "CMakeFiles/test_core_fra.dir/test_core_fra.cpp.o"
  "CMakeFiles/test_core_fra.dir/test_core_fra.cpp.o.d"
  "test_core_fra"
  "test_core_fra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_fra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
