# Empty dependencies file for test_geometry_triangle.
# This may be replaced when dependencies are built.
