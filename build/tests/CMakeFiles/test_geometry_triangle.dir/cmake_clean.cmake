file(REMOVE_RECURSE
  "CMakeFiles/test_geometry_triangle.dir/test_geometry_triangle.cpp.o"
  "CMakeFiles/test_geometry_triangle.dir/test_geometry_triangle.cpp.o.d"
  "test_geometry_triangle"
  "test_geometry_triangle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_geometry_triangle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
