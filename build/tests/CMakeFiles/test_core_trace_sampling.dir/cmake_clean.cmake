file(REMOVE_RECURSE
  "CMakeFiles/test_core_trace_sampling.dir/test_core_trace_sampling.cpp.o"
  "CMakeFiles/test_core_trace_sampling.dir/test_core_trace_sampling.cpp.o.d"
  "test_core_trace_sampling"
  "test_core_trace_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_trace_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
