# Empty compiler generated dependencies file for test_core_trace_sampling.
# This may be replaced when dependencies are built.
