file(REMOVE_RECURSE
  "CMakeFiles/test_numerics_noise.dir/test_numerics_noise.cpp.o"
  "CMakeFiles/test_numerics_noise.dir/test_numerics_noise.cpp.o.d"
  "test_numerics_noise"
  "test_numerics_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_numerics_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
