# Empty compiler generated dependencies file for test_numerics_noise.
# This may be replaced when dependencies are built.
