# Empty compiler generated dependencies file for test_geometry_delaunay.
# This may be replaced when dependencies are built.
