file(REMOVE_RECURSE
  "CMakeFiles/test_geometry_delaunay.dir/test_geometry_delaunay.cpp.o"
  "CMakeFiles/test_geometry_delaunay.dir/test_geometry_delaunay.cpp.o.d"
  "test_geometry_delaunay"
  "test_geometry_delaunay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_geometry_delaunay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
