file(REMOVE_RECURSE
  "CMakeFiles/test_core_cma_energy.dir/test_core_cma_energy.cpp.o"
  "CMakeFiles/test_core_cma_energy.dir/test_core_cma_energy.cpp.o.d"
  "test_core_cma_energy"
  "test_core_cma_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_cma_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
