file(REMOVE_RECURSE
  "CMakeFiles/test_core_coverage.dir/test_core_coverage.cpp.o"
  "CMakeFiles/test_core_coverage.dir/test_core_coverage.cpp.o.d"
  "test_core_coverage"
  "test_core_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
