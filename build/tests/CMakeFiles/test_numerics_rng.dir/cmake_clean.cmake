file(REMOVE_RECURSE
  "CMakeFiles/test_numerics_rng.dir/test_numerics_rng.cpp.o"
  "CMakeFiles/test_numerics_rng.dir/test_numerics_rng.cpp.o.d"
  "test_numerics_rng"
  "test_numerics_rng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_numerics_rng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
