# Empty dependencies file for test_numerics_rng.
# This may be replaced when dependencies are built.
