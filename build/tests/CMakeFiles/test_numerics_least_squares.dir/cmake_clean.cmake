file(REMOVE_RECURSE
  "CMakeFiles/test_numerics_least_squares.dir/test_numerics_least_squares.cpp.o"
  "CMakeFiles/test_numerics_least_squares.dir/test_numerics_least_squares.cpp.o.d"
  "test_numerics_least_squares"
  "test_numerics_least_squares.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_numerics_least_squares.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
