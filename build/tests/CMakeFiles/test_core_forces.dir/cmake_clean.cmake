file(REMOVE_RECURSE
  "CMakeFiles/test_core_forces.dir/test_core_forces.cpp.o"
  "CMakeFiles/test_core_forces.dir/test_core_forces.cpp.o.d"
  "test_core_forces"
  "test_core_forces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_forces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
