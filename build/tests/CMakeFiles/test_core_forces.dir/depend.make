# Empty dependencies file for test_core_forces.
# This may be replaced when dependencies are built.
