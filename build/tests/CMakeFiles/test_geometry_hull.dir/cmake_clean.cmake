file(REMOVE_RECURSE
  "CMakeFiles/test_geometry_hull.dir/test_geometry_hull.cpp.o"
  "CMakeFiles/test_geometry_hull.dir/test_geometry_hull.cpp.o.d"
  "test_geometry_hull"
  "test_geometry_hull.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_geometry_hull.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
