# Empty dependencies file for test_geometry_hull.
# This may be replaced when dependencies are built.
