# Empty dependencies file for test_core_cwd.
# This may be replaced when dependencies are built.
