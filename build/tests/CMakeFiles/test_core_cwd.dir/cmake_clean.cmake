file(REMOVE_RECURSE
  "CMakeFiles/test_core_cwd.dir/test_core_cwd.cpp.o"
  "CMakeFiles/test_core_cwd.dir/test_core_cwd.cpp.o.d"
  "test_core_cwd"
  "test_core_cwd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_cwd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
