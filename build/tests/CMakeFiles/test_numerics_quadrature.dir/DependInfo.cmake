
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_numerics_quadrature.cpp" "tests/CMakeFiles/test_numerics_quadrature.dir/test_numerics_quadrature.cpp.o" "gcc" "tests/CMakeFiles/test_numerics_quadrature.dir/test_numerics_quadrature.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cps_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/cps_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/viz/CMakeFiles/cps_viz.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cps_net.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/cps_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/field/CMakeFiles/cps_field.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/cps_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/numerics/CMakeFiles/cps_numerics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
