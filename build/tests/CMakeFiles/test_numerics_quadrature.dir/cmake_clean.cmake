file(REMOVE_RECURSE
  "CMakeFiles/test_numerics_quadrature.dir/test_numerics_quadrature.cpp.o"
  "CMakeFiles/test_numerics_quadrature.dir/test_numerics_quadrature.cpp.o.d"
  "test_numerics_quadrature"
  "test_numerics_quadrature.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_numerics_quadrature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
