# Empty compiler generated dependencies file for test_numerics_quadrature.
# This may be replaced when dependencies are built.
