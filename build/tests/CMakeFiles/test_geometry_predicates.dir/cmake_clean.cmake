file(REMOVE_RECURSE
  "CMakeFiles/test_geometry_predicates.dir/test_geometry_predicates.cpp.o"
  "CMakeFiles/test_geometry_predicates.dir/test_geometry_predicates.cpp.o.d"
  "test_geometry_predicates"
  "test_geometry_predicates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_geometry_predicates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
