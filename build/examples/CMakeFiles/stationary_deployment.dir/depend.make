# Empty dependencies file for stationary_deployment.
# This may be replaced when dependencies are built.
