file(REMOVE_RECURSE
  "CMakeFiles/stationary_deployment.dir/stationary_deployment.cpp.o"
  "CMakeFiles/stationary_deployment.dir/stationary_deployment.cpp.o.d"
  "stationary_deployment"
  "stationary_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stationary_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
