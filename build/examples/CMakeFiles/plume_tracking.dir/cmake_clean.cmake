file(REMOVE_RECURSE
  "CMakeFiles/plume_tracking.dir/plume_tracking.cpp.o"
  "CMakeFiles/plume_tracking.dir/plume_tracking.cpp.o.d"
  "plume_tracking"
  "plume_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plume_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
