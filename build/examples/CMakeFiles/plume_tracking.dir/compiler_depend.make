# Empty compiler generated dependencies file for plume_tracking.
# This may be replaced when dependencies are built.
