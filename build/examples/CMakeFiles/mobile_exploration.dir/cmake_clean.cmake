file(REMOVE_RECURSE
  "CMakeFiles/mobile_exploration.dir/mobile_exploration.cpp.o"
  "CMakeFiles/mobile_exploration.dir/mobile_exploration.cpp.o.d"
  "mobile_exploration"
  "mobile_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobile_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
