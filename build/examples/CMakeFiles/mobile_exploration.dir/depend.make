# Empty dependencies file for mobile_exploration.
# This may be replaced when dependencies are built.
