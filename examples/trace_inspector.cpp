// Trace tooling: synthesise a GreenOrbs-like day, persist it, reload it,
// and inspect it frame by frame — the workflow for preparing the
// evaluation inputs used by the benches.
//
// Usage: trace_inspector [output.cpstrace]   (default: morning.cpstrace)
#include <cstdio>
#include <string>
#include <vector>

#include "numerics/stats.hpp"
#include "trace/greenorbs.hpp"
#include "trace/trace_io.hpp"
#include "viz/ascii.hpp"
#include "viz/series.hpp"

int main(int argc, char** argv) {
  using namespace cps;
  const std::string path = argc > 1 ? argv[1] : "morning.cpstrace";

  trace::GreenOrbsConfig cfg;
  const trace::GreenOrbsField environment(cfg);

  // Record 9:00 -> 12:00 at 15-minute cadence (the GreenOrbs deployment
  // reported hourly; we oversample for smoother playback).
  const auto recorded = environment.record(
      trace::minutes(9, 0), trace::minutes(12, 0), 15.0, 101, 101);
  trace::write_trace_file(path, recorded);
  std::printf("recorded %zu frames (%.0f..%.0f min) -> %s\n",
              recorded.frame_count(), recorded.first_time(),
              recorded.last_time(), path.c_str());

  const auto replay = trace::read_trace_file(path);
  std::printf("reloaded %zu frames; inspecting:\n\n", replay.frame_count());

  std::vector<double> means;
  std::vector<double> maxima;
  for (std::size_t i = 0; i < replay.frame_count(); ++i) {
    const auto& frame = replay.frame(i);
    num::RunningStats stats;
    for (const double v : frame.data()) stats.add(v);
    means.push_back(stats.mean());
    maxima.push_back(stats.max());
    const int t = static_cast<int>(replay.timestamp(i));
    std::printf("frame %2zu  t=%02d:%02d  mean=%.3f  max=%.3f  "
                "stddev=%.3f KLux\n",
                i, t / 60, t % 60, stats.mean(), stats.max(),
                stats.stddev());
  }
  std::printf("\nmean light over the morning: %s\n",
              viz::sparkline(means).c_str());
  std::printf("peak light over the morning: %s\n",
              viz::sparkline(maxima).c_str());

  // Show the field waking up: first, middle, and last frame.
  viz::AsciiOptions opt;
  opt.width = 48;
  opt.height = 16;
  const num::Rect region = replay.frame(0).bounds();
  for (const std::size_t i :
       {std::size_t{0}, replay.frame_count() / 2, replay.frame_count() - 1}) {
    const int t = static_cast<int>(replay.timestamp(i));
    std::printf("\nt=%02d:%02d\n%s", t / 60, t % 60,
                viz::render_field(replay.frame(i), region, {}, opt).c_str());
  }
  return 0;
}
