// Quickstart: plan a small sensor deployment and measure how well the
// rebuilt surface matches the environment.
//
//   1. Describe the environment as a Field (here: two warm patches over a
//      cool base — any z = f(x, y) works).
//   2. Ask FRA for k node positions under a communication radius Rc.
//   3. Sense at those positions, rebuild the surface by Delaunay
//      interpolation, and score it with the delta metric.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "core/delta.hpp"
#include "core/fra.hpp"
#include "field/analytic_fields.hpp"
#include "graph/geometric_graph.hpp"
#include "viz/ascii.hpp"

int main() {
  using namespace cps;

  // 1. The environment: a 100 x 100 m region with two features.
  const num::Rect region{0.0, 0.0, 100.0, 100.0};
  const field::GaussianMixtureField temperature(
      18.0, {{{30.0, 40.0}, 6.0, 12.0},    // Warm patch, gentle.
             {{75.0, 70.0}, 9.0, 7.0}});   // Hot spot, sharp.

  // 2. Plan 40 nodes with the paper's Foresighted Refinement Algorithm.
  core::FraPlanner planner;
  const core::FraResult plan = planner.plan_detailed(
      temperature, core::PlanRequest{region, /*k=*/40, /*rc=*/10.0});

  std::printf("environment and planned node positions:\n%s\n",
              viz::render_field(temperature, region,
                                plan.deployment.positions)
                  .c_str());
  std::printf("%zu nodes planned (%zu chosen by refinement, %zu relays); "
              "network connected: %s\n",
              plan.deployment.size(),
              plan.deployment.size() - plan.relay_count, plan.relay_count,
              graph::GeometricGraph(plan.deployment.positions, 10.0)
                      .is_connected()
                  ? "yes"
                  : "no");

  // 3. Score the deployment: sense, rebuild, integrate |f - DT|.
  const core::DeltaMetric metric(region);
  const double delta = metric.delta_of_deployment(
      temperature, plan.deployment.positions,
      core::CornerPolicy::kFieldValue);
  std::printf("delta (volume between real and rebuilt surface) = %.1f\n",
              delta);
  std::printf("mean abstraction error = %.3f degrees per m^2\n",
              metric.mean_abs_error(delta));
  return 0;
}
