// Tracking a drifting pollutant plume with mobile CPS nodes.
//
// The paper's introduction motivates environment abstraction for
// "temperature, sound and pollutants"; this example exercises the OSTD
// machinery on the pollutant case: a Gaussian plume advects across the
// region (wind) while spreading (diffusion) and decaying at the source.
// A CMA swarm with purely local sensing keeps reshaping to follow it.
//
// Usage: plume_tracking [minutes]   (default: 60)
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/cma.hpp"
#include "core/delta.hpp"
#include "core/planner.hpp"
#include "field/time_varying.hpp"
#include "viz/ascii.hpp"
#include "viz/series.hpp"

int main(int argc, char** argv) {
  using namespace cps;
  const int minutes = argc > 1 ? std::atoi(argv[1]) : 60;
  if (minutes <= 0) {
    std::fprintf(stderr, "usage: %s [minutes > 0]\n", argv[0]);
    return 1;
  }

  const num::Rect region{0.0, 0.0, 100.0, 100.0};

  // The plume: released at (20, 30), drifting north-east at ~0.8 m/min,
  // spreading by diffusion, and slowly weakening at the source.
  const field::AnalyticTimeField plume([](double x, double y, double t) {
    const double cx = 20.0 + 0.8 * t;
    const double cy = 30.0 + 0.5 * t;
    const double sigma = 8.0 + 0.15 * t;       // Diffusive spread.
    const double strength = 40.0 * std::exp(-t / 90.0);  // Source decay.
    const double dx = x - cx;
    const double dy = y - cy;
    return strength * std::exp(-(dx * dx + dy * dy) /
                               (2.0 * sigma * sigma));
  });

  core::CmaConfig cfg;
  cfg.rc = 100.0 / 6.0 * 1.001;  // 36-node grid pitch.
  cfg.lcm = core::LcmMode::kPaper;
  cfg.attraction_gain = 0.2;  // The plume edge is where curvature lives.
  core::CmaSimulation sim(plume, region,
                          core::GridPlanner::make_grid(region, 36).positions,
                          cfg);

  const core::DeltaMetric metric(region, 80);
  std::vector<double> deltas;
  viz::AsciiOptions opt;
  opt.width = 56;
  opt.height = 18;

  for (int minute = 0; minute <= minutes; ++minute) {
    deltas.push_back(sim.current_delta(metric));
    if (minute % (minutes / 3 == 0 ? 1 : minutes / 3) == 0) {
      const field::FieldSlice now(plume, sim.time());
      std::printf("t = %3d min   delta = %7.1f   largest component %3.0f%%\n",
                  minute, deltas.back(),
                  100.0 * sim.largest_component_fraction());
      std::printf("%s\n", viz::render_field(now, region, sim.positions(),
                                            opt)
                              .c_str());
    }
    sim.step();
  }

  std::printf("delta over time: %s\n", viz::sparkline(deltas).c_str());
  std::printf("swarm travelled %.0f m total while following the plume\n",
              sim.total_distance_traveled());
  return 0;
}
