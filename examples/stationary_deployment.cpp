// Stationary deployment planning (the paper's OSD problem) end to end:
// generate a forest-light trace frame, persist and reload it as a
// deployment team would, compare FRA against the random and uniform
// baselines, and export everything needed to brief the field crew.
//
// Usage: stationary_deployment [k] [rc]   (defaults: k = 60, rc = 10)
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "core/coverage.hpp"
#include "core/delta.hpp"
#include "core/fra.hpp"
#include "core/planner.hpp"
#include "graph/connectivity.hpp"
#include "graph/geometric_graph.hpp"
#include "net/routing.hpp"
#include "trace/greenorbs.hpp"
#include "trace/trace_io.hpp"
#include "viz/ascii.hpp"
#include "viz/exporters.hpp"

int main(int argc, char** argv) {
  using namespace cps;
  const std::size_t k =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 60;
  const double rc = argc > 2 ? std::atof(argv[2]) : 10.0;
  if (k == 0 || rc <= 0.0) {
    std::fprintf(stderr, "usage: %s [k > 0] [rc > 0]\n", argv[0]);
    return 1;
  }

  const num::Rect region{0.0, 0.0, 100.0, 100.0};

  // Generated artifacts go under bench_out/ (gitignored) like the bench
  // executables' outputs, not the current directory.
  const std::string out_dir = "bench_out";
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);

  // --- Historical data: one mid-morning frame of the light field. ---
  const trace::GreenOrbsField environment{trace::GreenOrbsConfig{}};
  const auto frame = environment.snapshot(trace::minutes(10, 0), 101, 101);
  const std::string frame_path = out_dir + "/deployment_frame.cpsgrid";
  trace::write_grid_file(frame_path, frame);
  // Reload it: planning must work from the archived file alone.
  const auto reference = trace::read_grid_file(frame_path);
  std::printf("reference frame saved to and reloaded from %s\n\n",
              frame_path.c_str());

  // --- Plan with FRA and both baselines. ---
  const core::PlanRequest request{region, k, rc};
  core::FraPlanner fra;
  core::RandomPlanner random(2026);
  core::GridPlanner uniform;

  const core::FraResult fra_plan = fra.plan_detailed(reference, request);
  const auto random_plan = random.plan(reference, request);
  const auto uniform_plan = uniform.plan(reference, request);

  const core::DeltaMetric metric(region);
  const auto corners = core::CornerPolicy::kFieldValue;
  struct Row {
    const char* name;
    const core::Deployment* deployment;
  };
  const Row rows[] = {{"FRA", &fra_plan.deployment},
                      {"random", &random_plan},
                      {"uniform grid", &uniform_plan}};

  std::printf("planner        delta     connected  components\n");
  for (const Row& row : rows) {
    const graph::GeometricGraph g(row.deployment->positions, rc);
    std::printf("%-12s %8.1f     %-9s  %zu\n", row.name,
                metric.delta_of_deployment(reference,
                                           row.deployment->positions,
                                           corners),
                g.is_connected() ? "yes" : "NO", g.component_count());
  }
  std::printf("(FRA used %zu of %zu nodes as connectivity relays)\n\n",
              fra_plan.relay_count, k);

  viz::AsciiOptions opt;
  opt.width = 60;
  opt.height = 22;
  std::printf("FRA deployment over the reference frame:\n%s\n",
              viz::render_field(reference, region,
                                fra_plan.deployment.positions, opt)
                  .c_str());

  // --- Operations report: what will this deployment cost to run? ---
  const graph::GeometricGraph network(fra_plan.deployment.positions, rc);
  const std::size_t sink = net::best_sink(network);
  const net::CollectionTree tree(network, sink);
  std::printf("operations report for the FRA deployment:\n");
  std::printf("  sensing coverage (Rs = 5 m): %.0f%% of the region\n",
              100.0 * core::coverage_fraction(fra_plan.deployment.positions,
                                              5.0, region));
  std::printf("  best basestation: node %zu at (%.1f, %.1f)\n", sink,
              fra_plan.deployment.positions[sink].x,
              fra_plan.deployment.positions[sink].y);
  std::printf("  collection round: %zu transmissions, depth %zu hops, "
              "%zu unreachable\n",
              tree.transmissions_per_round(), tree.depth(),
              tree.unreachable_count());
  std::printf("  robustness: %zu single points of failure "
              "(articulation nodes)\n\n",
              graph::single_point_of_failure_count(network));

  const std::string positions_path = out_dir + "/deployment_positions.csv";
  viz::write_positions_csv_file(positions_path,
                                fra_plan.deployment.positions);
  std::printf("node positions exported to %s\n", positions_path.c_str());
  return 0;
}
