// Mobile exploration of a time-varying environment (the paper's OSTD
// problem): 100 mobile nodes start on a connected grid with no global
// knowledge and run CMA — sensing locally, exchanging beacons and tells
// with single-hop neighbours, and drifting toward the curvature-weighted
// distribution while the light field changes under them.
//
// Usage: mobile_exploration [minutes] [lcm]   (defaults: 45, paper)
//        lcm in {paper, strict, off}
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "core/cma.hpp"
#include "core/delta.hpp"
#include "core/planner.hpp"
#include "trace/greenorbs.hpp"
#include "viz/ascii.hpp"
#include "viz/series.hpp"

int main(int argc, char** argv) {
  using namespace cps;
  const int minutes_to_run = argc > 1 ? std::atoi(argv[1]) : 45;
  core::LcmMode mode = core::LcmMode::kPaper;
  if (argc > 2) {
    if (std::strcmp(argv[2], "strict") == 0) mode = core::LcmMode::kStrict;
    else if (std::strcmp(argv[2], "off") == 0) mode = core::LcmMode::kOff;
    else if (std::strcmp(argv[2], "paper") != 0) {
      std::fprintf(stderr, "usage: %s [minutes] [paper|strict|off]\n",
                   argv[0]);
      return 1;
    }
  }
  if (minutes_to_run <= 0) {
    std::fprintf(stderr, "usage: %s [minutes > 0] [paper|strict|off]\n",
                 argv[0]);
    return 1;
  }

  const num::Rect region{0.0, 0.0, 100.0, 100.0};
  const trace::GreenOrbsField environment{trace::GreenOrbsConfig{}};

  core::CmaConfig cfg;          // Rc = 10, Rs = 5, v = 1 m/min, beta = 2.
  cfg.rc = 10.0 * 1.0001;       // Pitch-10 grid sits exactly at range.
  cfg.lcm = mode;
  core::CmaSimulation sim(
      environment, region,
      core::GridPlanner::make_grid(region, 100).positions, cfg,
      trace::minutes(10, 0));

  const core::DeltaMetric metric(region);
  std::vector<double> deltas{sim.current_delta(metric)};
  std::printf("t=10:00 delta=%.1f (initial connected grid)\n",
              deltas.back());

  for (int minute = 1; minute <= minutes_to_run; ++minute) {
    sim.step();
    deltas.push_back(sim.current_delta(metric));
    if (minute % 5 == 0) {
      std::printf("t=%02d:%02d delta=%7.1f  largest-component=%3.0f%%  "
                  "chases=%zu\n",
                  static_cast<int>(sim.time()) / 60,
                  static_cast<int>(sim.time()) % 60, deltas.back(),
                  100.0 * sim.largest_component_fraction(),
                  sim.last_chase_count());
    }
  }

  std::printf("\ndelta trajectory: %s\n", viz::sparkline(deltas).c_str());
  std::printf("improvement: %.0f -> %.0f (%.0f%%)\n", deltas.front(),
              deltas.back(), 100.0 * deltas.back() / deltas.front());
  std::printf("energy spent: %.0f m of movement (%.1f m per node), "
              "%zu broadcasts\n",
              sim.total_distance_traveled(),
              sim.total_distance_traveled() / 100.0,
              sim.total_broadcasts());

  const field::FieldSlice now(environment, sim.time());
  viz::AsciiOptions opt;
  opt.width = 60;
  opt.height = 22;
  std::printf("\nfinal node distribution over the current field:\n%s\n",
              viz::render_field(now, region, sim.positions(), opt).c_str());
  return 0;
}
