// Tests for baseline planners (core/planner.hpp).
#include "core/planner.hpp"

#include <gtest/gtest.h>

#include "field/analytic_fields.hpp"
#include "graph/geometric_graph.hpp"

namespace cps::core {
namespace {

const num::Rect kRegion{0.0, 0.0, 100.0, 100.0};
const field::ConstantField kFlat(0.0);

PlanRequest request(std::size_t k, double rc = 10.0) {
  return PlanRequest{kRegion, k, rc};
}

TEST(RandomPlanner, ProducesKPositionsInsideRegion) {
  RandomPlanner planner(5);
  const Deployment d = planner.plan(kFlat, request(50));
  ASSERT_EQ(d.size(), 50u);
  for (const auto& p : d.positions) {
    EXPECT_TRUE(kRegion.contains(p.x, p.y));
  }
}

TEST(RandomPlanner, DeterministicPerSeed) {
  RandomPlanner a(9);
  RandomPlanner b(9);
  RandomPlanner c(10);
  const auto da = a.plan(kFlat, request(20));
  const auto db = b.plan(kFlat, request(20));
  const auto dc = c.plan(kFlat, request(20));
  EXPECT_EQ(da.positions, db.positions);
  EXPECT_NE(da.positions, dc.positions);
}

TEST(RandomPlanner, ZeroBudget) {
  RandomPlanner planner;
  EXPECT_TRUE(planner.plan(kFlat, request(0)).empty());
}

TEST(GridPlanner, PerfectSquareLayout) {
  const Deployment d = GridPlanner::make_grid(kRegion, 100);
  ASSERT_EQ(d.size(), 100u);
  // 10 x 10 at 10 m pitch, first node at the cell centre (5, 5).
  EXPECT_EQ(d.positions[0], geo::Vec2(5.0, 5.0));
  EXPECT_EQ(d.positions[1], geo::Vec2(15.0, 5.0));
  EXPECT_EQ(d.positions[10], geo::Vec2(5.0, 15.0));
  EXPECT_EQ(d.positions[99], geo::Vec2(95.0, 95.0));
}

TEST(GridPlanner, NonSquareBudgetsTruncateLastRow) {
  const Deployment d = GridPlanner::make_grid(kRegion, 7);  // 3 cols, 3 rows.
  ASSERT_EQ(d.size(), 7u);
  for (const auto& p : d.positions) {
    EXPECT_TRUE(kRegion.contains(p.x, p.y));
  }
}

TEST(GridPlanner, SingleNodeAtCenterOfFirstCell) {
  const Deployment d = GridPlanner::make_grid(kRegion, 1);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d.positions[0], geo::Vec2(50.0, 50.0));
}

TEST(GridPlanner, ZeroBudget) {
  EXPECT_TRUE(GridPlanner::make_grid(kRegion, 0).empty());
}

TEST(GridPlanner, PaperGridIsConnectedAtRc10) {
  // The CMA initial state (Fig. 8a): k = 100, Rc = 10 m.
  const Deployment d = GridPlanner::make_grid(kRegion, 100);
  EXPECT_TRUE(graph::GeometricGraph(d.positions, 10.0).is_connected());
}

TEST(GridPlanner, PlanMatchesMakeGrid) {
  GridPlanner planner;
  const auto via_plan = planner.plan(kFlat, request(25));
  const auto direct = GridPlanner::make_grid(kRegion, 25);
  EXPECT_EQ(via_plan.positions, direct.positions);
}

TEST(GridPlanner, NonSquareRegion) {
  const num::Rect wide{0.0, 0.0, 200.0, 50.0};
  const Deployment d = GridPlanner::make_grid(wide, 8);
  ASSERT_EQ(d.size(), 8u);
  for (const auto& p : d.positions) {
    EXPECT_TRUE(wide.contains(p.x, p.y));
  }
}

}  // namespace
}  // namespace cps::core
