// Tests for the alternative surface interpolators (core/interpolation.hpp).
#include "core/interpolation.hpp"

#include <gtest/gtest.h>

#include "core/delta.hpp"
#include "core/planner.hpp"
#include "field/analytic_fields.hpp"
#include "numerics/rng.hpp"

namespace cps::core {
namespace {

const num::Rect kRegion{0.0, 0.0, 100.0, 100.0};

std::vector<Sample> random_samples(int n, std::uint64_t seed) {
  num::Rng rng(seed);
  std::vector<Sample> out;
  for (int i = 0; i < n; ++i) {
    out.push_back(Sample{{rng.uniform(1.0, 99.0), rng.uniform(1.0, 99.0)},
                         rng.uniform(-3.0, 3.0)});
  }
  return out;
}

TEST(DelaunayField, WrapsTriangulationAsField) {
  const auto samples = random_samples(20, 3);
  const DelaunayField surface(reconstruct_surface(samples, kRegion));
  for (const auto& s : samples) {
    EXPECT_NEAR(surface.value(s.position), s.z, 1e-9);
  }
  EXPECT_EQ(surface.triangulation().vertex_count(), 24u);  // 20 + corners.
}

TEST(MakeDelaunaySurface, SharedPointerPath) {
  const auto samples = random_samples(10, 5);
  const auto surface = make_delaunay_surface(samples, kRegion);
  ASSERT_NE(surface, nullptr);
  EXPECT_NEAR(surface->value(samples[0].position), samples[0].z, 1e-9);
}

TEST(IdwField, Validation) {
  EXPECT_THROW(IdwField({}, 2.0), std::invalid_argument);
  const std::vector<Sample> one{{{1.0, 1.0}, 5.0}};
  EXPECT_THROW(IdwField(one, 0.0), std::invalid_argument);
  EXPECT_THROW(IdwField(one, -1.0), std::invalid_argument);
}

TEST(IdwField, ExactAtSamples) {
  const auto samples = random_samples(15, 7);
  const IdwField surface(samples);
  for (const auto& s : samples) {
    EXPECT_NEAR(surface.value(s.position), s.z, 1e-9);
  }
}

TEST(IdwField, BoundedBySampleRange) {
  // Shepard interpolation is a convex combination: never overshoots.
  const auto samples = random_samples(15, 9);
  double lo = 1e18;
  double hi = -1e18;
  for (const auto& s : samples) {
    lo = std::min(lo, s.z);
    hi = std::max(hi, s.z);
  }
  const IdwField surface(samples);
  num::Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    const double v =
        surface.value(rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0));
    ASSERT_GE(v, lo - 1e-9);
    ASSERT_LE(v, hi + 1e-9);
  }
}

TEST(IdwField, SingleSampleIsConstant) {
  const std::vector<Sample> one{{{50.0, 50.0}, 4.0}};
  const IdwField surface(one);
  EXPECT_DOUBLE_EQ(surface.value(0.0, 0.0), 4.0);
  EXPECT_DOUBLE_EQ(surface.value(99.0, 1.0), 4.0);
}

TEST(IdwField, HigherPowerLocalises) {
  // With two samples, a high power makes the midpoint-offset query snap
  // to the closer sample's value more strongly.
  const std::vector<Sample> two{{{0.0, 0.0}, 0.0}, {{10.0, 0.0}, 10.0}};
  const IdwField gentle(two, 1.0);
  const IdwField sharp(two, 6.0);
  // Query nearer the left sample.
  EXPECT_LT(sharp.value(3.0, 0.0), gentle.value(3.0, 0.0));
}

TEST(NearestField, Validation) {
  EXPECT_THROW(NearestField({}), std::invalid_argument);
}

TEST(NearestField, PicksClosestSampleValue) {
  const std::vector<Sample> samples{{{10.0, 10.0}, 1.0},
                                    {{90.0, 90.0}, 2.0}};
  const NearestField surface(samples);
  EXPECT_DOUBLE_EQ(surface.value(0.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(surface.value(99.0, 99.0), 2.0);
  EXPECT_DOUBLE_EQ(surface.value(10.0, 10.0), 1.0);
}

TEST(Interpolators, DelaunayBeatsBaselinesOnSmoothField) {
  // On a smooth field with a healthy sample budget, piecewise-linear DT
  // should beat both piecewise-constant nearest and global IDW — the
  // premise behind the paper's interpolator choice.
  const field::PeaksField peaks(kRegion);
  const auto positions = GridPlanner::make_grid(kRegion, 100).positions;
  const auto samples = take_samples(peaks, positions);
  const DeltaMetric metric(kRegion, 50);

  const auto dt = make_delaunay_surface(samples, kRegion);
  const IdwField idw(samples);
  const NearestField nearest(samples);

  const double d_dt = metric.delta_between(peaks, *dt);
  const double d_idw = metric.delta_between(peaks, idw);
  const double d_nearest = metric.delta_between(peaks, nearest);
  EXPECT_LT(d_dt, d_idw);
  EXPECT_LT(d_dt, d_nearest);
}

TEST(Interpolators, AllExactOnConstantField) {
  const field::ConstantField flat(2.5);
  const auto positions = GridPlanner::make_grid(kRegion, 9).positions;
  const auto samples = take_samples(flat, positions);
  const DeltaMetric metric(kRegion, 30);
  EXPECT_NEAR(metric.delta_between(flat, *make_delaunay_surface(
                                             samples, kRegion)),
              0.0, 1e-9);
  EXPECT_NEAR(metric.delta_between(flat, IdwField(samples)), 0.0, 1e-9);
  EXPECT_NEAR(metric.delta_between(flat, NearestField(samples)), 0.0, 1e-9);
}

}  // namespace
}  // namespace cps::core
