// Tests for articulation-point analysis (graph/connectivity.hpp).
#include "graph/connectivity.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "numerics/rng.hpp"

namespace cps::graph {
namespace {

using geo::Vec2;

GeometricGraph chain(int n, double pitch = 5.0, double radius = 6.0) {
  std::vector<Vec2> pts;
  for (int i = 0; i < n; ++i) pts.push_back({i * pitch, 0.0});
  return GeometricGraph(pts, radius);
}

TEST(Articulation, ChainInteriorNodesAreAllCuts) {
  const GeometricGraph g = chain(5);
  const auto cuts = articulation_points(g);
  EXPECT_EQ(cuts, (std::vector<std::size_t>{1, 2, 3}));
  EXPECT_FALSE(is_biconnected(g));
  EXPECT_EQ(single_point_of_failure_count(g), 3u);
}

TEST(Articulation, TriangleHasNone) {
  const std::vector<Vec2> pts{{0.0, 0.0}, {5.0, 0.0}, {2.5, 4.0}};
  const GeometricGraph g(pts, 6.0);
  EXPECT_TRUE(articulation_points(g).empty());
  EXPECT_TRUE(is_biconnected(g));
}

TEST(Articulation, SharedNodeBetweenTwoTriangles) {
  // Bow-tie: triangles {0,1,2} and {2,3,4} share node 2, which is the
  // only articulation point.
  const std::vector<Vec2> pts{{0.0, 0.0}, {4.0, 0.0}, {2.0, 3.0},
                              {0.0, 6.0}, {4.0, 6.0}};
  const GeometricGraph g(pts, 4.5);
  // Sanity on the intended topology.
  ASSERT_TRUE(g.has_edge(0, 1));
  ASSERT_TRUE(g.has_edge(0, 2));
  ASSERT_TRUE(g.has_edge(1, 2));
  ASSERT_TRUE(g.has_edge(2, 3));
  ASSERT_TRUE(g.has_edge(2, 4));
  ASSERT_TRUE(g.has_edge(3, 4));
  ASSERT_FALSE(g.has_edge(0, 3));
  EXPECT_EQ(articulation_points(g), (std::vector<std::size_t>{2}));
  EXPECT_FALSE(is_biconnected(g));
}

TEST(Articulation, StarCenterIsTheOnlyCut) {
  std::vector<Vec2> pts{{0.0, 0.0}};
  pts.push_back({6.0, 0.0});
  pts.push_back({-6.0, 0.0});
  pts.push_back({0.0, 6.0});
  pts.push_back({0.0, -6.0});
  const GeometricGraph g(pts, 7.0);
  EXPECT_EQ(articulation_points(g), (std::vector<std::size_t>{0}));
}

TEST(Articulation, DisconnectedGraphHandledPerComponent) {
  // Two disjoint chains: interior nodes of each are cuts.
  std::vector<Vec2> pts;
  for (int i = 0; i < 3; ++i) pts.push_back({i * 5.0, 0.0});
  for (int i = 0; i < 3; ++i) pts.push_back({i * 5.0, 50.0});
  const GeometricGraph g(pts, 6.0);
  EXPECT_EQ(articulation_points(g), (std::vector<std::size_t>{1, 4}));
  EXPECT_FALSE(is_biconnected(g));  // Not even connected.
}

TEST(Articulation, TrivialGraphs) {
  const std::vector<Vec2> empty;
  EXPECT_TRUE(articulation_points(GeometricGraph(empty, 1.0)).empty());
  EXPECT_TRUE(is_biconnected(GeometricGraph(empty, 1.0)));
  const std::vector<Vec2> pair{{0.0, 0.0}, {1.0, 0.0}};
  const GeometricGraph g2(pair, 2.0);
  EXPECT_TRUE(articulation_points(g2).empty());
  EXPECT_TRUE(is_biconnected(g2));
}

// Property: brute-force check — removing a reported articulation point
// increases the component count; removing a non-cut never does.
TEST(Articulation, AgreesWithBruteForceRemoval) {
  num::Rng rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Vec2> pts;
    for (int i = 0; i < 25; ++i) {
      pts.push_back({rng.uniform(0.0, 60.0), rng.uniform(0.0, 60.0)});
    }
    const GeometricGraph g(pts, 14.0);
    const auto cuts = articulation_points(g);
    const std::size_t base = g.component_count();
    for (std::size_t victim = 0; victim < pts.size(); ++victim) {
      // Rebuild without the victim (ignore its own singleton effect by
      // comparing component counts of the survivors only).
      std::vector<Vec2> survivors;
      for (std::size_t i = 0; i < pts.size(); ++i) {
        if (i != victim) survivors.push_back(pts[i]);
      }
      const std::size_t after =
          GeometricGraph(survivors, 14.0).component_count();
      // Removing an isolated node reduces counts; a cut raises them.
      const bool was_isolated = g.degree(victim) == 0;
      const bool reported_cut =
          std::find(cuts.begin(), cuts.end(), victim) != cuts.end();
      if (reported_cut) {
        ASSERT_GT(after, base - (was_isolated ? 1 : 0))
            << "trial " << trial << " victim " << victim;
      } else if (!was_isolated) {
        ASSERT_LE(after, base) << "trial " << trial << " victim " << victim;
      }
    }
  }
}

}  // namespace
}  // namespace cps::graph
