// Tests for surface reconstruction (core/reconstruction.hpp).
#include "core/reconstruction.hpp"

#include <gtest/gtest.h>

#include "field/analytic_fields.hpp"
#include "numerics/rng.hpp"

namespace cps::core {
namespace {

const num::Rect kRegion{0.0, 0.0, 100.0, 100.0};

TEST(TakeSamples, SensesFieldAtPositions) {
  const field::PlaneField f(1.0, 0.5, 0.0);
  const std::vector<geo::Vec2> pts{{0.0, 0.0}, {10.0, 20.0}};
  const auto samples = take_samples(f, pts);
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].position, pts[0]);
  EXPECT_DOUBLE_EQ(samples[0].z, 1.0);
  EXPECT_DOUBLE_EQ(samples[1].z, 6.0);
}

TEST(Reconstruct, EmptySamplesYieldsFlatSurface) {
  const auto dt = reconstruct_surface({}, kRegion);
  EXPECT_EQ(dt.vertex_count(), 4u);
  EXPECT_DOUBLE_EQ(dt.interpolate({50.0, 50.0}), 0.0);
}

TEST(Reconstruct, FieldValueCornerPolicyNeedsReference) {
  EXPECT_THROW(reconstruct_surface({}, kRegion, CornerPolicy::kFieldValue),
               std::invalid_argument);
}

TEST(Reconstruct, FieldValueCornersMatchField) {
  const field::PlaneField f(2.0, 0.1, 0.2);
  const auto dt =
      reconstruct_surface({}, kRegion, CornerPolicy::kFieldValue, &f);
  for (int c = 0; c < geo::Delaunay::kCorners; ++c) {
    EXPECT_DOUBLE_EQ(dt.vertex(c).z, f.value(dt.vertex(c).pos));
  }
  // With exact corners and a plane, the whole surface is exact.
  EXPECT_NEAR(dt.interpolate({37.0, 83.0}), f.value(37.0, 83.0), 1e-12);
}

TEST(Reconstruct, NearestSampleCornersTakeClosestZ) {
  // One sample near each of two corners; each corner must adopt the z of
  // its nearest sample.
  const std::vector<Sample> samples{{{5.0, 5.0}, 10.0},
                                    {{95.0, 95.0}, -10.0}};
  const auto dt = reconstruct_surface(samples, kRegion);
  EXPECT_DOUBLE_EQ(dt.vertex(0).z, 10.0);   // (0, 0).
  EXPECT_DOUBLE_EQ(dt.vertex(2).z, -10.0);  // (100, 100).
}

TEST(Reconstruct, SampleValuesReproducedAtPositions) {
  num::Rng rng(3);
  std::vector<Sample> samples;
  for (int i = 0; i < 25; ++i) {
    samples.push_back(Sample{{rng.uniform(1.0, 99.0), rng.uniform(1.0, 99.0)},
                             rng.uniform(-5.0, 5.0)});
  }
  const auto dt = reconstruct_surface(samples, kRegion);
  for (const auto& s : samples) {
    EXPECT_NEAR(dt.interpolate(s.position), s.z, 1e-9);
  }
}

TEST(Reconstruct, DuplicateSamplePositionsKeepLastValue) {
  const std::vector<Sample> samples{{{50.0, 50.0}, 1.0},
                                    {{50.0, 50.0}, 2.0}};
  const auto dt = reconstruct_surface(samples, kRegion);
  EXPECT_EQ(dt.vertex_count(), 5u);
  EXPECT_NEAR(dt.interpolate({50.0, 50.0}), 2.0, 1e-12);
}

TEST(Reconstruct, CoversWholeRegion) {
  num::Rng rng(7);
  std::vector<Sample> samples;
  for (int i = 0; i < 40; ++i) {
    samples.push_back(Sample{{rng.uniform(0.0, 100.0),
                              rng.uniform(0.0, 100.0)},
                             0.0});
  }
  const auto dt = reconstruct_surface(samples, kRegion);
  EXPECT_NEAR(dt.total_area(), kRegion.area(), 1e-6);
  EXPECT_TRUE(dt.validate_topology());
}

}  // namespace
}  // namespace cps::core
