// Tests for the virtual-force model (core/forces.hpp).
#include "core/forces.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cps::core {
namespace {

using geo::Vec2;

TEST(PeakAttraction, PullsTowardPeakScaledByCurvature) {
  const Vec2 node{0.0, 0.0};
  const PeakInfo peak{{4.0, 0.0}, 2.0};
  const Vec2 f1 = peak_attraction(node, peak, 1.0);
  EXPECT_DOUBLE_EQ(f1.x, 8.0);  // d * G (Eqn. 14).
  EXPECT_DOUBLE_EQ(f1.y, 0.0);
  // Shrinks as the node approaches: F1 -> 0.
  const Vec2 closer = peak_attraction({3.9, 0.0}, peak, 1.0);
  EXPECT_LT(closer.norm(), f1.norm());
}

TEST(NeighborAttraction, BalancedAtCurvatureWeightedPivot) {
  // Two neighbours, right one twice the curvature: the pivot satisfying
  // Eqn. 9 sits where d_left * 1 = d_right * 2.
  const std::vector<NeighborInfo> neighbors{{{0.0, 0.0}, 1.0},
                                            {{9.0, 0.0}, 2.0}};
  const Vec2 pivot{6.0, 0.0};  // 6 * 1 == 3 * 2.
  const Vec2 f2 = neighbor_attraction(pivot, neighbors, 1.0);
  EXPECT_NEAR(f2.x, 0.0, 1e-12);
  EXPECT_NEAR(f2.y, 0.0, 1e-12);
  // Off the pivot the force points back toward it.
  EXPECT_GT(neighbor_attraction({5.0, 0.0}, neighbors, 1.0).x, 0.0);
  EXPECT_LT(neighbor_attraction({7.0, 0.0}, neighbors, 1.0).x, 0.0);
}

TEST(NeighborAttraction, EmptyTableIsZero) {
  EXPECT_EQ(neighbor_attraction({1.0, 1.0}, {}, 1.0), Vec2(0.0, 0.0));
}

TEST(Repulsion, PushesAwayWithinRc) {
  const std::vector<NeighborInfo> neighbors{{{0.0, 0.0}, 1.0}};
  const Vec2 fr = repulsion({3.0, 0.0}, neighbors, 10.0);
  EXPECT_DOUBLE_EQ(fr.x, 7.0);  // (Rc - d) away from the neighbour.
  EXPECT_DOUBLE_EQ(fr.y, 0.0);
}

TEST(Repulsion, ZeroAtAndBeyondRc) {
  const std::vector<NeighborInfo> neighbors{{{0.0, 0.0}, 1.0}};
  EXPECT_EQ(repulsion({10.0, 0.0}, neighbors, 10.0), Vec2(0.0, 0.0));
  EXPECT_EQ(repulsion({15.0, 0.0}, neighbors, 10.0), Vec2(0.0, 0.0));
}

TEST(Repulsion, CoincidentNodesStillSeparate) {
  const std::vector<NeighborInfo> neighbors{{{5.0, 5.0}, 1.0}};
  const Vec2 fr = repulsion({5.0, 5.0}, neighbors, 10.0);
  EXPECT_GT(fr.norm(), 0.0);
}

TEST(Repulsion, SymmetricPairCancelsAtMidpoint) {
  const std::vector<NeighborInfo> neighbors{{{0.0, 0.0}, 1.0},
                                            {{8.0, 0.0}, 1.0}};
  const Vec2 fr = repulsion({4.0, 0.0}, neighbors, 10.0);
  EXPECT_NEAR(fr.x, 0.0, 1e-12);
}

TEST(ComputeForces, ResultantCombinesPerEqn18) {
  const Vec2 node{0.0, 0.0};
  const PeakInfo peak{{2.0, 0.0}, 1.0};
  const std::vector<NeighborInfo> neighbors{{{4.0, 0.0}, 1.0}};
  ForceConfig cfg;
  cfg.rc = 10.0;
  cfg.beta = 2.0;
  cfg.normalize_curvature = false;
  cfg.repulsion_equilibrium = 1.0;  // The paper's literal Eqn. 17.
  cfg.attraction_gain = 1.0;        // ... and literal Eqns. 14-15.
  const ForceBreakdown out =
      compute_forces(node, peak, neighbors, 1.0, cfg);
  EXPECT_EQ(out.f1, Vec2(2.0, 0.0));
  EXPECT_EQ(out.f2, Vec2(4.0, 0.0));
  EXPECT_EQ(out.fr, Vec2(-6.0, 0.0));
  EXPECT_EQ(out.fs, out.f1 + out.f2 + out.fr * cfg.beta);
}

TEST(ComputeForces, NoPeakDropsF1) {
  const std::vector<NeighborInfo> neighbors{{{4.0, 0.0}, 1.0}};
  ForceConfig cfg;
  cfg.normalize_curvature = false;
  const ForceBreakdown out =
      compute_forces({0.0, 0.0}, std::nullopt, neighbors, 1.0, cfg);
  EXPECT_EQ(out.f1, Vec2(0.0, 0.0));
  EXPECT_NE(out.fs, Vec2(0.0, 0.0));
}

TEST(ComputeForces, NormalisationMakesAttractionScaleInvariant) {
  // Multiplying every curvature weight by 1000 must leave the normalised
  // attraction forces unchanged (the paper's balance Eqn. 9 is scale-free;
  // normalisation keeps beta meaningful too).
  const Vec2 node{1.0, 2.0};
  const PeakInfo peak1{{4.0, 3.0}, 0.002};
  const PeakInfo peak2{{4.0, 3.0}, 2.0};
  std::vector<NeighborInfo> n1{{{7.0, 2.0}, 0.004}, {{1.0, 9.0}, 0.001}};
  std::vector<NeighborInfo> n2{{{7.0, 2.0}, 4.0}, {{1.0, 9.0}, 1.0}};
  ForceConfig cfg;
  cfg.normalize_curvature = true;
  const ForceBreakdown a = compute_forces(node, peak1, n1, 0.002, cfg);
  const ForceBreakdown b = compute_forces(node, peak2, n2, 2.0, cfg);
  EXPECT_NEAR(a.f1.x, b.f1.x, 1e-9);
  EXPECT_NEAR(a.f2.x, b.f2.x, 1e-9);
  EXPECT_NEAR(a.f2.y, b.f2.y, 1e-9);
  EXPECT_NEAR(a.fs.x, b.fs.x, 1e-9);
}

TEST(ComputeForces, FlatWorldIsRepulsionOnly) {
  // All-zero curvature: attraction vanishes even with normalisation (the
  // scale clamp caps the product), leaving pure repulsion.
  const std::vector<NeighborInfo> neighbors{{{3.0, 0.0}, 0.0}};
  ForceConfig cfg;
  cfg.rc = 10.0;
  cfg.beta = 1.0;
  const ForceBreakdown out =
      compute_forces({0.0, 0.0}, std::nullopt, neighbors, 0.0, cfg);
  EXPECT_EQ(out.f1, Vec2(0.0, 0.0));
  EXPECT_EQ(out.f2, Vec2(0.0, 0.0));
  EXPECT_LT(out.fs.x, 0.0);  // Pushed away from the neighbour.
}

TEST(ComputeForces, BalancedConfigurationHasZeroResultant) {
  // Symmetric neighbours at distance Rc with equal weights and no peak:
  // everything cancels.
  const std::vector<NeighborInfo> neighbors{{{-10.0, 0.0}, 1.0},
                                            {{10.0, 0.0}, 1.0}};
  ForceConfig cfg;
  cfg.rc = 10.0;
  const ForceBreakdown out =
      compute_forces({0.0, 0.0}, std::nullopt, neighbors, 1.0, cfg);
  EXPECT_NEAR(out.fs.norm(), 0.0, 1e-12);
}

}  // namespace
}  // namespace cps::core
