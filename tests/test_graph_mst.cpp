// Tests for Prim MSTs (graph/mst.hpp).
#include "graph/mst.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "graph/union_find.hpp"
#include "numerics/rng.hpp"

namespace cps::graph {
namespace {

using geo::Vec2;

TEST(PrimMst, TrivialSizes) {
  EXPECT_TRUE(prim_mst(std::vector<Vec2>{}).empty());
  EXPECT_TRUE(prim_mst(std::vector<Vec2>{{1.0, 1.0}}).empty());
}

TEST(PrimMst, TwoPoints) {
  const std::vector<Vec2> pts{{0.0, 0.0}, {3.0, 4.0}};
  const auto edges = prim_mst(pts);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_DOUBLE_EQ(edges[0].weight, 5.0);
  EXPECT_DOUBLE_EQ(total_weight(edges), 5.0);
}

TEST(PrimMst, CollinearChain) {
  // MST of collinear points is the chain of consecutive segments.
  const std::vector<Vec2> pts{{0.0, 0.0}, {10.0, 0.0}, {1.0, 0.0},
                              {5.0, 0.0}};
  const auto edges = prim_mst(pts);
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_NEAR(total_weight(edges), 10.0, 1e-12);
}

TEST(PrimMst, KnownSquarePlusCenter) {
  // Unit square + centre: MST connects each corner to the centre
  // (4 * sqrt(0.5) ~ 2.828 < any tree using square edges).
  const std::vector<Vec2> pts{{0.0, 0.0}, {1.0, 0.0}, {1.0, 1.0},
                              {0.0, 1.0}, {0.5, 0.5}};
  const auto edges = prim_mst(pts);
  ASSERT_EQ(edges.size(), 4u);
  EXPECT_NEAR(total_weight(edges), 4.0 * std::sqrt(0.5), 1e-12);
}

TEST(PrimMst, SpansAllNodes) {
  num::Rng rng(17);
  std::vector<Vec2> pts;
  for (int i = 0; i < 40; ++i) {
    pts.push_back({rng.uniform(0.0, 50.0), rng.uniform(0.0, 50.0)});
  }
  const auto edges = prim_mst(pts);
  ASSERT_EQ(edges.size(), pts.size() - 1);
  UnionFind uf(pts.size());
  for (const auto& e : edges) uf.unite(e.a, e.b);
  EXPECT_EQ(uf.set_count(), 1u);
}

TEST(PrimMst, CutPropertyOnRandomInstances) {
  // For every MST edge, removing it splits the tree in two; the edge must
  // be a minimum-weight crossing of that cut (the defining MST property).
  num::Rng rng(23);
  std::vector<Vec2> pts;
  for (int i = 0; i < 12; ++i) {
    pts.push_back({rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)});
  }
  const auto edges = prim_mst(pts);
  for (std::size_t skip = 0; skip < edges.size(); ++skip) {
    UnionFind uf(pts.size());
    for (std::size_t e = 0; e < edges.size(); ++e) {
      if (e != skip) uf.unite(edges[e].a, edges[e].b);
    }
    // Minimum crossing weight of the induced cut.
    double best = 1e300;
    for (std::size_t i = 0; i < pts.size(); ++i) {
      for (std::size_t j = i + 1; j < pts.size(); ++j) {
        if (uf.connected(i, j)) continue;
        best = std::min(best, geo::distance(pts[i], pts[j]));
      }
    }
    EXPECT_NEAR(edges[skip].weight, best, 1e-9) << "edge " << skip;
  }
}

TEST(GroupMst, TwoGroupsClosestPair) {
  const std::vector<std::vector<Vec2>> groups{
      {{0.0, 0.0}, {1.0, 0.0}}, {{5.0, 0.0}, {9.0, 0.0}}};
  const auto edges = prim_group_mst(groups);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_DOUBLE_EQ(edges[0].distance, 4.0);
  EXPECT_EQ(edges[0].point_a, Vec2(1.0, 0.0));
  EXPECT_EQ(edges[0].point_b, Vec2(5.0, 0.0));
}

TEST(GroupMst, SingleOrEmptyGroupList) {
  EXPECT_TRUE(prim_group_mst(std::vector<std::vector<Vec2>>{}).empty());
  const std::vector<std::vector<Vec2>> one{{{1.0, 1.0}}};
  EXPECT_TRUE(prim_group_mst(one).empty());
}

TEST(GroupMst, EmptyGroupThrows) {
  const std::vector<std::vector<Vec2>> bad{{{0.0, 0.0}}, {}};
  EXPECT_THROW(prim_group_mst(bad), std::invalid_argument);
}

TEST(GroupMst, ChainOfThreeClusters) {
  const std::vector<std::vector<Vec2>> groups{
      {{0.0, 0.0}}, {{10.0, 0.0}}, {{21.0, 0.0}}};
  const auto edges = prim_group_mst(groups);
  ASSERT_EQ(edges.size(), 2u);
  double total = 0.0;
  for (const auto& e : edges) total += e.distance;
  EXPECT_NEAR(total, 10.0 + 11.0, 1e-12);  // 0-1 and 1-2, never 0-2.
}

TEST(GroupMst, EdgeEndpointsBelongToTheirGroups) {
  num::Rng rng(31);
  std::vector<std::vector<Vec2>> groups(4);
  for (std::size_t gi = 0; gi < groups.size(); ++gi) {
    const Vec2 center{static_cast<double>(gi) * 30.0, 0.0};
    for (int i = 0; i < 5; ++i) {
      groups[gi].push_back(center + Vec2{rng.uniform(-3.0, 3.0),
                                         rng.uniform(-3.0, 3.0)});
    }
  }
  const auto edges = prim_group_mst(groups);
  ASSERT_EQ(edges.size(), 3u);
  for (const auto& e : edges) {
    const auto& ga = groups[e.group_a];
    const auto& gb = groups[e.group_b];
    EXPECT_NE(std::find(ga.begin(), ga.end(), e.point_a), ga.end());
    EXPECT_NE(std::find(gb.begin(), gb.end(), e.point_b), gb.end());
    EXPECT_NEAR(e.distance, geo::distance(e.point_a, e.point_b), 1e-12);
  }
}

}  // namespace
}  // namespace cps::graph
