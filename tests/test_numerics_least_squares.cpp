// Tests for least squares and the quadric fit (numerics/least_squares.hpp).
#include "numerics/least_squares.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "numerics/rng.hpp"

namespace cps::num {
namespace {

TEST(LeastSquares, ExactlyDeterminedMatchesSolve) {
  const Matrix a{{1.0, 2.0}, {3.0, -1.0}};
  const std::vector<double> b{5.0, 1.0};
  const auto x = least_squares(a, b);
  EXPECT_NEAR(x[0], 1.0, 1e-10);
  EXPECT_NEAR(x[1], 2.0, 1e-10);
}

TEST(LeastSquares, OverdeterminedConsistentSystem) {
  // Three points on the line y = 2x + 1 -> exact fit.
  const Matrix a{{0.0, 1.0}, {1.0, 1.0}, {2.0, 1.0}};
  const std::vector<double> b{1.0, 3.0, 5.0};
  const auto x = least_squares(a, b);
  EXPECT_NEAR(x[0], 2.0, 1e-10);
  EXPECT_NEAR(x[1], 1.0, 1e-10);
}

TEST(LeastSquares, MinimisesResidualOnInconsistentSystem) {
  // Classic averaging: single parameter fit to {1, 2, 3} -> mean 2.
  const Matrix a{{1.0}, {1.0}, {1.0}};
  const auto x = least_squares(a, {1.0, 2.0, 3.0});
  EXPECT_NEAR(x[0], 2.0, 1e-12);
}

TEST(LeastSquares, UnderdeterminedThrows) {
  EXPECT_THROW(least_squares(Matrix(1, 2), {1.0}), std::invalid_argument);
}

TEST(LeastSquares, RankDeficientThrows) {
  // Two identical columns.
  const Matrix a{{1.0, 1.0}, {2.0, 2.0}, {3.0, 3.0}};
  EXPECT_THROW(least_squares(a, {1.0, 2.0, 3.0}), std::domain_error);
}

TEST(LeastSquares, WrongRhsSizeThrows) {
  EXPECT_THROW(least_squares(Matrix(3, 2), {1.0}), std::invalid_argument);
}

TEST(LeastSquares, QrAgreesWithNormalEquations) {
  Rng rng(5);
  Matrix a(20, 3);
  std::vector<double> b(20);
  for (std::size_t r = 0; r < 20; ++r) {
    for (std::size_t c = 0; c < 3; ++c) a(r, c) = rng.uniform(-2.0, 2.0);
    b[r] = rng.uniform(-5.0, 5.0);
  }
  const auto x_qr = least_squares(a, b);
  const auto x_ne = least_squares_normal(a, b);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(x_qr[i], x_ne[i], 1e-8);
  }
}

TEST(QuadricFit, CurvatureFormulas) {
  // Paper Eqns. 12-13: g1,2 = a + c -/+ sqrt((a-c)^2 + b^2).
  const QuadricFit fit{2.0, 1.0, -1.0};
  const double root = std::sqrt(9.0 + 1.0);
  EXPECT_NEAR(fit.g1(), 1.0 - root, 1e-12);
  EXPECT_NEAR(fit.g2(), 1.0 + root, 1e-12);
  EXPECT_NEAR(fit.gaussian(), fit.g1() * fit.g2(), 1e-12);
  EXPECT_NEAR(fit.gaussian(), 1.0 - 10.0, 1e-12);  // (a+c)^2-((a-c)^2+b^2)
  EXPECT_NEAR(fit.mean(), 1.0, 1e-12);
}

TEST(QuadricFit, EvaluateMatchesPolynomial) {
  const QuadricFit fit{1.0, -2.0, 0.5};
  EXPECT_NEAR(fit.evaluate(2.0, 3.0), 4.0 - 12.0 + 4.5, 1e-12);
}

TEST(FitQuadric, TooFewSamplesThrows) {
  const std::vector<QuadricSample> s{{0.0, 0.0, 0.0}, {1.0, 0.0, 1.0}};
  EXPECT_THROW(fit_quadric(s), std::invalid_argument);
}

TEST(FitQuadric, DegenerateSamplesStayFinite) {
  // All samples on the x axis: b and c are unidentifiable; the ridge term
  // must still produce a finite fit with the right a.
  std::vector<QuadricSample> s;
  for (int i = -3; i <= 3; ++i) {
    const double x = i;
    s.push_back({x, 0.0, 2.0 * x * x});
  }
  const QuadricFit fit = fit_quadric(s);
  EXPECT_TRUE(std::isfinite(fit.a));
  EXPECT_TRUE(std::isfinite(fit.b));
  EXPECT_TRUE(std::isfinite(fit.c));
  EXPECT_NEAR(fit.a, 2.0, 1e-4);
}

// Property: the fit recovers exact quadric coefficients from disk samples.
class QuadricRecovery
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(QuadricRecovery, RecoversCoefficients) {
  const auto [a, b, c] = GetParam();
  std::vector<QuadricSample> samples;
  for (int i = -4; i <= 4; ++i) {
    for (int j = -4; j <= 4; ++j) {
      if (i * i + j * j > 16) continue;  // Disk mask, as a node senses.
      const double x = 0.5 * i;
      const double y = 0.5 * j;
      samples.push_back({x, y, a * x * x + b * x * y + c * y * y});
    }
  }
  const QuadricFit fit = fit_quadric(samples);
  EXPECT_NEAR(fit.a, a, 1e-6);
  EXPECT_NEAR(fit.b, b, 1e-6);
  EXPECT_NEAR(fit.c, c, 1e-6);
  // And the derived Gaussian curvature matches 4ac - b^2.
  EXPECT_NEAR(fit.gaussian(), 4.0 * a * c - b * b, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(
    Coefficients, QuadricRecovery,
    ::testing::Values(std::make_tuple(1.0, 0.0, 1.0),
                      std::make_tuple(-2.0, 0.0, -2.0),
                      std::make_tuple(1.0, 1.0, -1.0),
                      std::make_tuple(0.0, 2.0, 0.0),
                      std::make_tuple(3.5, -1.25, 0.75),
                      std::make_tuple(0.0, 0.0, 0.0),
                      std::make_tuple(1e-3, 2e-3, -1e-3)));

// Property: adding symmetric noise leaves coefficients near the truth.
TEST(FitQuadric, RobustToSmallNoise) {
  Rng rng(99);
  std::vector<QuadricSample> samples;
  for (int i = -5; i <= 5; ++i) {
    for (int j = -5; j <= 5; ++j) {
      const double x = i;
      const double y = j;
      const double z = 0.5 * x * x - 0.25 * x * y + y * y +
                       rng.normal(0.0, 1e-3);
      samples.push_back({x, y, z});
    }
  }
  const QuadricFit fit = fit_quadric(samples);
  EXPECT_NEAR(fit.a, 0.5, 1e-2);
  EXPECT_NEAR(fit.b, -0.25, 1e-2);
  EXPECT_NEAR(fit.c, 1.0, 1e-2);
}

}  // namespace
}  // namespace cps::num
