// Tests for convergecast routing (net/routing.hpp).
#include "net/routing.hpp"

#include <gtest/gtest.h>

#include "numerics/rng.hpp"

namespace cps::net {
namespace {

using geo::Vec2;

graph::GeometricGraph chain(int n) {
  std::vector<Vec2> pts;
  for (int i = 0; i < n; ++i) pts.push_back({i * 5.0, 0.0});
  return graph::GeometricGraph(pts, 6.0);
}

TEST(CollectionTree, BadSinkThrows) {
  const auto g = chain(3);
  EXPECT_THROW(CollectionTree(g, 3), std::out_of_range);
}

TEST(CollectionTree, ChainFromEndpoint) {
  const auto g = chain(5);
  const CollectionTree tree(g, 0);
  EXPECT_EQ(tree.sink(), 0u);
  EXPECT_EQ(tree.hops(0), 0u);
  EXPECT_EQ(tree.hops(4), 4u);
  EXPECT_EQ(tree.parent(0), CollectionTree::kNone);
  EXPECT_EQ(tree.parent(3), 2u);
  EXPECT_EQ(tree.depth(), 4u);
  EXPECT_EQ(tree.transmissions_per_round(), 0u + 1 + 2 + 3 + 4);
  EXPECT_EQ(tree.unreachable_count(), 0u);
  // Every node's subtree includes itself; the sink's covers everyone.
  EXPECT_EQ(tree.subtree_size(0), 5u);
  EXPECT_EQ(tree.subtree_size(4), 1u);
  EXPECT_EQ(tree.subtree_size(2), 3u);
}

TEST(CollectionTree, ChainFromMiddleHalvesDepth) {
  const auto g = chain(5);
  const CollectionTree tree(g, 2);
  EXPECT_EQ(tree.depth(), 2u);
  EXPECT_EQ(tree.transmissions_per_round(), 2u + 1 + 0 + 1 + 2);
}

TEST(CollectionTree, UnreachableNodesReported) {
  std::vector<Vec2> pts{{0.0, 0.0}, {5.0, 0.0}, {90.0, 90.0}};
  const graph::GeometricGraph g(pts, 6.0);
  const CollectionTree tree(g, 0);
  EXPECT_EQ(tree.unreachable_count(), 1u);
  EXPECT_EQ(tree.hops(2), CollectionTree::kNone);
  EXPECT_EQ(tree.parent(2), CollectionTree::kNone);
  EXPECT_EQ(tree.subtree_size(2), 0u);
  EXPECT_EQ(tree.subtree_size(0), 2u);
}

TEST(CollectionTree, ParentsAreOneHopCloser) {
  num::Rng rng(5);
  std::vector<Vec2> pts;
  for (int i = 0; i < 50; ++i) {
    pts.push_back({rng.uniform(0.0, 60.0), rng.uniform(0.0, 60.0)});
  }
  const graph::GeometricGraph g(pts, 15.0);
  const CollectionTree tree(g, 7);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (i == 7 || tree.hops(i) == CollectionTree::kNone) continue;
    const std::size_t p = tree.parent(i);
    ASSERT_NE(p, CollectionTree::kNone);
    EXPECT_EQ(tree.hops(p) + 1, tree.hops(i));
    EXPECT_TRUE(g.has_edge(i, p));
  }
}

TEST(CollectionTree, SubtreeSizesSumAtSink) {
  num::Rng rng(9);
  std::vector<Vec2> pts;
  for (int i = 0; i < 30; ++i) {
    pts.push_back({rng.uniform(0.0, 40.0), rng.uniform(0.0, 40.0)});
  }
  const graph::GeometricGraph g(pts, 15.0);
  const CollectionTree tree(g, 0);
  EXPECT_EQ(tree.subtree_size(0) + tree.unreachable_count(), pts.size());
}

TEST(BestSink, EmptyThrows) {
  const std::vector<Vec2> none;
  const graph::GeometricGraph g(none, 5.0);
  EXPECT_THROW(best_sink(g), std::invalid_argument);
}

TEST(BestSink, ChainPicksTheMiddle) {
  const auto g = chain(5);
  EXPECT_EQ(best_sink(g), 2u);
}

TEST(BestSink, PrefersReachabilityOverCost) {
  // A pair plus an isolated node: the best sink must come from the pair
  // (1 unreachable) rather than the isolate (2 unreachable).
  std::vector<Vec2> pts{{0.0, 0.0}, {5.0, 0.0}, {90.0, 90.0}};
  const graph::GeometricGraph g(pts, 6.0);
  EXPECT_LT(best_sink(g), 2u);
}

TEST(BestSink, NeverWorseThanAnyOtherSink) {
  num::Rng rng(13);
  std::vector<Vec2> pts;
  for (int i = 0; i < 25; ++i) {
    pts.push_back({rng.uniform(0.0, 50.0), rng.uniform(0.0, 50.0)});
  }
  const graph::GeometricGraph g(pts, 14.0);
  const std::size_t chosen = best_sink(g);
  const CollectionTree best(g, chosen);
  for (std::size_t sink = 0; sink < pts.size(); ++sink) {
    const CollectionTree other(g, sink);
    if (other.unreachable_count() < best.unreachable_count()) {
      FAIL() << "sink " << sink << " reaches more nodes";
    }
    if (other.unreachable_count() == best.unreachable_count()) {
      EXPECT_LE(best.transmissions_per_round(),
                other.transmissions_per_round());
    }
  }
}

}  // namespace
}  // namespace cps::net
