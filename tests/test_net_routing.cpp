// Tests for convergecast routing (net/routing.hpp).
#include "net/routing.hpp"

#include <gtest/gtest.h>

#include "numerics/rng.hpp"

namespace cps::net {
namespace {

using geo::Vec2;

graph::GeometricGraph chain(int n) {
  std::vector<Vec2> pts;
  for (int i = 0; i < n; ++i) pts.push_back({i * 5.0, 0.0});
  return graph::GeometricGraph(pts, 6.0);
}

TEST(CollectionTree, BadSinkThrows) {
  const auto g = chain(3);
  EXPECT_THROW(CollectionTree(g, 3), std::out_of_range);
}

TEST(CollectionTree, ChainFromEndpoint) {
  const auto g = chain(5);
  const CollectionTree tree(g, 0);
  EXPECT_EQ(tree.sink(), 0u);
  EXPECT_EQ(tree.hops(0), 0u);
  EXPECT_EQ(tree.hops(4), 4u);
  EXPECT_EQ(tree.parent(0), CollectionTree::kNone);
  EXPECT_EQ(tree.parent(3), 2u);
  EXPECT_EQ(tree.depth(), 4u);
  EXPECT_EQ(tree.transmissions_per_round(), 0u + 1 + 2 + 3 + 4);
  EXPECT_EQ(tree.unreachable_count(), 0u);
  // Every node's subtree includes itself; the sink's covers everyone.
  EXPECT_EQ(tree.subtree_size(0), 5u);
  EXPECT_EQ(tree.subtree_size(4), 1u);
  EXPECT_EQ(tree.subtree_size(2), 3u);
}

TEST(CollectionTree, ChainFromMiddleHalvesDepth) {
  const auto g = chain(5);
  const CollectionTree tree(g, 2);
  EXPECT_EQ(tree.depth(), 2u);
  EXPECT_EQ(tree.transmissions_per_round(), 2u + 1 + 0 + 1 + 2);
}

TEST(CollectionTree, UnreachableNodesReported) {
  std::vector<Vec2> pts{{0.0, 0.0}, {5.0, 0.0}, {90.0, 90.0}};
  const graph::GeometricGraph g(pts, 6.0);
  const CollectionTree tree(g, 0);
  EXPECT_EQ(tree.unreachable_count(), 1u);
  EXPECT_EQ(tree.hops(2), CollectionTree::kNone);
  EXPECT_EQ(tree.parent(2), CollectionTree::kNone);
  EXPECT_EQ(tree.subtree_size(2), 0u);
  EXPECT_EQ(tree.subtree_size(0), 2u);
}

TEST(CollectionTree, ParentsAreOneHopCloser) {
  num::Rng rng(5);
  std::vector<Vec2> pts;
  for (int i = 0; i < 50; ++i) {
    pts.push_back({rng.uniform(0.0, 60.0), rng.uniform(0.0, 60.0)});
  }
  const graph::GeometricGraph g(pts, 15.0);
  const CollectionTree tree(g, 7);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (i == 7 || tree.hops(i) == CollectionTree::kNone) continue;
    const std::size_t p = tree.parent(i);
    ASSERT_NE(p, CollectionTree::kNone);
    EXPECT_EQ(tree.hops(p) + 1, tree.hops(i));
    EXPECT_TRUE(g.has_edge(i, p));
  }
}

TEST(CollectionTree, SubtreeSizesSumAtSink) {
  num::Rng rng(9);
  std::vector<Vec2> pts;
  for (int i = 0; i < 30; ++i) {
    pts.push_back({rng.uniform(0.0, 40.0), rng.uniform(0.0, 40.0)});
  }
  const graph::GeometricGraph g(pts, 15.0);
  const CollectionTree tree(g, 0);
  EXPECT_EQ(tree.subtree_size(0) + tree.unreachable_count(), pts.size());
}

TEST(BestSink, EmptyThrows) {
  const std::vector<Vec2> none;
  const graph::GeometricGraph g(none, 5.0);
  EXPECT_THROW(best_sink(g), std::invalid_argument);
}

TEST(BestSink, ChainPicksTheMiddle) {
  const auto g = chain(5);
  EXPECT_EQ(best_sink(g), 2u);
}

TEST(BestSink, PrefersReachabilityOverCost) {
  // A pair plus an isolated node: the best sink must come from the pair
  // (1 unreachable) rather than the isolate (2 unreachable).
  std::vector<Vec2> pts{{0.0, 0.0}, {5.0, 0.0}, {90.0, 90.0}};
  const graph::GeometricGraph g(pts, 6.0);
  EXPECT_LT(best_sink(g), 2u);
}

TEST(BestSink, ReachabilityDominatesAnyTransmissionGap) {
  // Regression for the old weighted-sum cost (unreachable * 1e6 + tx):
  // once transmissions_per_round exceeds 1e6, a sink that strands MORE
  // nodes could win on raw cost.  Two far-apart components provoke it:
  //
  //  * a 2402-node path (spacing 5, radius 6): its best sink — the
  //    middle — still costs ~1.44e6 transmissions per round;
  //  * a 49x49 grid (2401 nodes, same spacing): its center sink costs
  //    only ~5.9e4 transmissions.
  //
  // A path sink strands the 2401 grid nodes, a grid sink strands the
  // 2402 path nodes, so reachability says "pick the path".  The old
  // formula said 2402e6 + 5.9e4 < 2401e6 + 1.44e6 and picked the grid.
  std::vector<Vec2> pts;
  for (int i = 0; i < 2402; ++i) pts.push_back({i * 5.0, 0.0});
  const std::size_t path_nodes = pts.size();
  for (int j = 0; j < 49; ++j) {
    for (int i = 0; i < 49; ++i) {
      pts.push_back({100000.0 + i * 5.0, 100000.0 + j * 5.0});
    }
  }
  const graph::GeometricGraph g(pts, 6.0);
  const std::size_t chosen = best_sink(g);
  EXPECT_LT(chosen, path_nodes) << "sink must come from the larger component";
  const CollectionTree tree(g, chosen);
  EXPECT_EQ(tree.unreachable_count(), pts.size() - path_nodes);
  EXPECT_GT(tree.transmissions_per_round(), std::size_t{1000000});
}

TEST(BestSink, NeverWorseThanAnyOtherSink) {
  num::Rng rng(13);
  std::vector<Vec2> pts;
  for (int i = 0; i < 25; ++i) {
    pts.push_back({rng.uniform(0.0, 50.0), rng.uniform(0.0, 50.0)});
  }
  const graph::GeometricGraph g(pts, 14.0);
  const std::size_t chosen = best_sink(g);
  const CollectionTree best(g, chosen);
  for (std::size_t sink = 0; sink < pts.size(); ++sink) {
    const CollectionTree other(g, sink);
    if (other.unreachable_count() < best.unreachable_count()) {
      FAIL() << "sink " << sink << " reaches more nodes";
    }
    if (other.unreachable_count() == best.unreachable_count()) {
      EXPECT_LE(best.transmissions_per_round(),
                other.transmissions_per_round());
    }
  }
}

TEST(RecoveryMonitor, EmptyGraphThrows) {
  RecoveryMonitor monitor({0.0, 0.0});
  const std::vector<Vec2> none;
  const graph::GeometricGraph g(none, 6.0);
  EXPECT_THROW(monitor.observe(g, 0), std::invalid_argument);
  EXPECT_EQ(monitor.tree(), nullptr);
}

TEST(RecoveryMonitor, RootsAtSurvivorNearestTheBasestation) {
  RecoveryMonitor monitor({0.0, 0.0});
  const auto& tree = monitor.observe(chain(4), 0);
  EXPECT_EQ(tree.sink(), 0u);  // Node 0 sits on the basestation.

  // The sink's host "dies": the tree re-homes to the nearest survivor.
  const std::vector<Vec2> survivors{{5.0, 0.0}, {10.0, 0.0}, {15.0, 0.0}};
  const auto& rehomed =
      monitor.observe(graph::GeometricGraph(survivors, 6.0), 1);
  EXPECT_EQ(rehomed.sink(), 0u);  // survivors[0] = (5, 0) is now closest.
  EXPECT_EQ(monitor.tree(), &rehomed);
  EXPECT_FALSE(monitor.in_outage());
  EXPECT_TRUE(monitor.recoveries().empty());
}

TEST(RecoveryMonitor, MeasuresOutageSpanInSlots) {
  RecoveryMonitor monitor({0.0, 0.0});
  const std::vector<Vec2> whole{{0.0, 0.0}, {5.0, 0.0}, {10.0, 0.0}};
  const std::vector<Vec2> split{{0.0, 0.0}, {5.0, 0.0}, {90.0, 90.0}};

  monitor.observe(graph::GeometricGraph(whole, 6.0), 0);
  EXPECT_FALSE(monitor.in_outage());

  monitor.observe(graph::GeometricGraph(split, 6.0), 1);  // Partitioned.
  EXPECT_TRUE(monitor.in_outage());
  monitor.observe(graph::GeometricGraph(split, 6.0), 2);  // Still.
  EXPECT_TRUE(monitor.in_outage());

  monitor.observe(graph::GeometricGraph(whole, 6.0), 3);  // Healed.
  EXPECT_FALSE(monitor.in_outage());
  ASSERT_EQ(monitor.recoveries().size(), 1u);
  EXPECT_EQ(monitor.recoveries()[0].outage_slot, 1u);
  EXPECT_EQ(monitor.recoveries()[0].recovered_slot, 3u);
  EXPECT_EQ(monitor.recoveries()[0].slots, 2u);

  // A second episode accumulates rather than overwrites.
  monitor.observe(graph::GeometricGraph(split, 6.0), 4);
  monitor.observe(graph::GeometricGraph(whole, 6.0), 5);
  ASSERT_EQ(monitor.recoveries().size(), 2u);
  EXPECT_EQ(monitor.recoveries()[1].slots, 1u);
}

}  // namespace
}  // namespace cps::net
