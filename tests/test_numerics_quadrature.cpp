// Tests for 2-D quadrature (numerics/quadrature.hpp).
#include "numerics/quadrature.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace cps::num {
namespace {

const Rect kUnit{0.0, 0.0, 1.0, 1.0};

TEST(Rect, Accessors) {
  const Rect r{1.0, 2.0, 4.0, 7.0};
  EXPECT_DOUBLE_EQ(r.width(), 3.0);
  EXPECT_DOUBLE_EQ(r.height(), 5.0);
  EXPECT_DOUBLE_EQ(r.area(), 15.0);
  EXPECT_TRUE(r.contains(2.0, 3.0));
  EXPECT_TRUE(r.contains(1.0, 2.0));  // Boundary inclusive.
  EXPECT_FALSE(r.contains(0.5, 3.0));
  EXPECT_FALSE(r.contains(2.0, 8.0));
}

TEST(Midpoint, ExactOnConstants) {
  const double v = integrate_midpoint(
      kUnit, [](double, double) { return 3.0; }, 4, 4);
  EXPECT_NEAR(v, 3.0, 1e-14);
}

TEST(Midpoint, ExactOnPlanes) {
  // Midpoint rule integrates linear functions exactly.
  const double v = integrate_midpoint(
      kUnit, [](double x, double y) { return 2.0 * x + 3.0 * y; }, 5, 7);
  EXPECT_NEAR(v, 1.0 + 1.5, 1e-13);
}

TEST(Midpoint, ConvergesOnSmoothIntegrand) {
  const auto g = [](double x, double y) {
    return std::sin(std::numbers::pi * x) * std::sin(std::numbers::pi * y);
  };
  const double exact = 4.0 / (std::numbers::pi * std::numbers::pi);
  const double coarse = integrate_midpoint(kUnit, g, 8, 8);
  const double fine = integrate_midpoint(kUnit, g, 64, 64);
  EXPECT_LT(std::abs(fine - exact), std::abs(coarse - exact));
  EXPECT_NEAR(fine, exact, 1e-4);
}

TEST(Midpoint, SecondOrderConvergenceRate) {
  const auto g = [](double x, double y) { return x * x * y * y; };
  const double exact = 1.0 / 9.0;
  const double e1 = std::abs(integrate_midpoint(kUnit, g, 10, 10) - exact);
  const double e2 = std::abs(integrate_midpoint(kUnit, g, 20, 20) - exact);
  // Halving h should cut the error by ~4x for C^2 integrands.
  EXPECT_NEAR(e1 / e2, 4.0, 0.5);
}

TEST(Midpoint, NonUnitRegion) {
  const Rect r{-2.0, 1.0, 2.0, 3.0};
  const double v = integrate_midpoint(
      r, [](double, double) { return 1.0; }, 3, 3);
  EXPECT_NEAR(v, r.area(), 1e-13);
}

TEST(Midpoint, InvalidArgumentsThrow) {
  EXPECT_THROW(integrate_midpoint(kUnit, [](double, double) { return 0.0; },
                                  0, 4),
               std::invalid_argument);
  EXPECT_THROW(integrate_midpoint(Rect{1.0, 0.0, 0.0, 1.0},
                                  [](double, double) { return 0.0; }, 4, 4),
               std::invalid_argument);
}

TEST(Trapezoid, ExactOnPlanes) {
  const double v = integrate_trapezoid(
      kUnit, [](double x, double y) { return x - y + 1.0; }, 6, 6);
  EXPECT_NEAR(v, 1.0, 1e-13);
}

TEST(Trapezoid, AgreesWithMidpointOnSmooth) {
  const auto g = [](double x, double y) { return std::exp(x * y); };
  const double m = integrate_midpoint(kUnit, g, 50, 50);
  const double t = integrate_trapezoid(kUnit, g, 50, 50);
  EXPECT_NEAR(m, t, 1e-3);
}

TEST(Trapezoid, InvalidArgumentsThrow) {
  EXPECT_THROW(integrate_trapezoid(kUnit, [](double, double) { return 0.0; },
                                   4, 0),
               std::invalid_argument);
}

// Parameterized: the |f| integrand used by the delta metric (piecewise C^1
// around the kink) still converges with resolution.
class AbsIntegrandSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AbsIntegrandSweep, AbsKinkConverges) {
  const std::size_t n = GetParam();
  // Integral of |x - 0.5| over the unit square = 0.25.
  const double v = integrate_midpoint(
      kUnit, [](double x, double) { return std::abs(x - 0.5); }, n, n);
  EXPECT_NEAR(v, 0.25, 1.0 / static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(Resolutions, AbsIntegrandSweep,
                         ::testing::Values(4u, 16u, 64u, 128u));

}  // namespace
}  // namespace cps::num
