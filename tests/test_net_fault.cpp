// Tests for fault injection and channel models (net/fault.hpp,
// net/link_model.hpp) and the MessageBus liveness/accounting semantics.
#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "net/fault.hpp"
#include "net/link_model.hpp"
#include "net/message_bus.hpp"
#include "obs/obs.hpp"

namespace cps::net {
namespace {

using geo::Vec2;

// --- FaultSchedule -------------------------------------------------------

TEST(FaultSchedule, EventsSortedAndQueriedBySlot) {
  FaultSchedule s;
  s.add_death(7, 2);
  s.add_death(3, 0);
  s.add_revival(7, 1);
  s.add_death(7, 1);
  EXPECT_EQ(s.size(), 4u);
  EXPECT_EQ(s.death_count(), 3u);
  EXPECT_EQ(s.last_slot(), 7u);

  ASSERT_EQ(s.events_at(3).size(), 1u);
  EXPECT_EQ(s.events_at(3)[0].node, 0u);
  EXPECT_TRUE(s.events_at(5).empty());

  const auto at7 = s.events_at(7);
  ASSERT_EQ(at7.size(), 3u);
  // Node order, deaths before revivals for the same node.
  EXPECT_EQ(at7[0].node, 1u);
  EXPECT_EQ(at7[0].kind, FaultKind::kDeath);
  EXPECT_EQ(at7[1].node, 1u);
  EXPECT_EQ(at7[1].kind, FaultKind::kRevival);
  EXPECT_EQ(at7[2].node, 2u);
}

TEST(FaultSchedule, EmptySchedule) {
  const FaultSchedule s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.death_count(), 0u);
  EXPECT_EQ(s.last_slot(), 0u);
  EXPECT_TRUE(s.events_at(0).empty());
}

TEST(FaultSchedule, RandomDeathsDeterministicPerSeed) {
  const auto a = FaultSchedule::random_deaths(50, 0.3, 5, 20, 42);
  const auto b = FaultSchedule::random_deaths(50, 0.3, 5, 20, 42);
  const auto c = FaultSchedule::random_deaths(50, 0.3, 5, 20, 43);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.events()[i].slot, b.events()[i].slot);
    EXPECT_EQ(a.events()[i].node, b.events()[i].node);
  }
  // A different seed yields a different schedule (overwhelmingly likely).
  bool differs = c.size() != a.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a.events()[i].slot != c.events()[i].slot ||
              a.events()[i].node != c.events()[i].node;
  }
  EXPECT_TRUE(differs);
}

TEST(FaultSchedule, RandomDeathsRespectsWindowAndBounds) {
  const auto s = FaultSchedule::random_deaths(200, 0.5, 10, 30, 7);
  EXPECT_GT(s.death_count(), 50u);   // ~100 expected.
  EXPECT_LT(s.death_count(), 150u);
  for (const auto& e : s.events()) {
    EXPECT_GE(e.slot, 10u);
    EXPECT_LE(e.slot, 30u);
    EXPECT_LT(e.node, 200u);
    EXPECT_EQ(e.kind, FaultKind::kDeath);
  }
  EXPECT_EQ(FaultSchedule::random_deaths(100, 0.0, 0, 10, 1).size(), 0u);
  EXPECT_EQ(FaultSchedule::random_deaths(100, 1.0, 0, 10, 1).size(), 100u);
  EXPECT_THROW(FaultSchedule::random_deaths(10, 1.5, 0, 10, 1),
               std::invalid_argument);
  EXPECT_THROW(FaultSchedule::random_deaths(10, 0.5, 10, 5, 1),
               std::invalid_argument);
}

// --- LinkModel implementations -------------------------------------------

TEST(DiskLink, MatchesDiskRadioBitForBit) {
  // The LinkModel default must reproduce the original radio exactly:
  // same seed, same attempt sequence, same outcomes.
  DiskRadio radio(10.0, 0.3, 99);
  DiskLink link(10.0, 0.3, 99);
  for (int i = 0; i < 5000; ++i) {
    const Vec2 from{0.0, 0.0};
    const Vec2 to{static_cast<double>(i % 12), 0.0};  // Some out of range.
    ASSERT_EQ(radio.transmit(from, to), link.transmit(0, 1, from, to));
  }
}

TEST(DiskLink, CloneForksIndependentState) {
  DiskLink link(10.0, 0.5, 3);
  auto copy = link.clone();
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(link.transmit(0, 1, {0.0, 0.0}, {1.0, 0.0}),
              copy->transmit(0, 1, {0.0, 0.0}, {1.0, 0.0}));
  }
}

TEST(DistanceLossLink, Validation) {
  EXPECT_THROW(DistanceLossLink(0.0, 0.5), std::invalid_argument);
  EXPECT_THROW(DistanceLossLink(10.0, 1.5), std::invalid_argument);
  EXPECT_THROW(DistanceLossLink(10.0, 0.5, 0.0), std::invalid_argument);
}

TEST(DistanceLossLink, LossGrowsWithDistance) {
  const DistanceLossLink link(10.0, 0.4, 2.0, 1);
  EXPECT_DOUBLE_EQ(link.loss_at(0.0), 0.0);
  EXPECT_DOUBLE_EQ(link.loss_at(10.0), 0.4);
  EXPECT_LT(link.loss_at(3.0), link.loss_at(7.0));
  EXPECT_DOUBLE_EQ(link.loss_at(50.0), 0.4);  // Clamped past the edge.
}

TEST(DistanceLossLink, DeliveryRateTracksDistance) {
  DistanceLossLink link(10.0, 1.0, 2.0, 5);
  int near = 0;
  int far = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    near += link.transmit(0, 1, {0.0, 0.0}, {2.0, 0.0}) ? 1 : 0;
    far += link.transmit(0, 1, {0.0, 0.0}, {9.5, 0.0}) ? 1 : 0;
  }
  // p(2m) = 0.04, p(9.5m) ~ 0.90.
  EXPECT_NEAR(near / static_cast<double>(n), 0.96, 0.03);
  EXPECT_NEAR(far / static_cast<double>(n), 0.10, 0.03);
  EXPECT_FALSE(link.transmit(0, 1, {0.0, 0.0}, {10.5, 0.0}));
}

TEST(GilbertElliottLink, Validation) {
  GilbertElliottLink::Params p;
  EXPECT_THROW(GilbertElliottLink(0.0, p), std::invalid_argument);
  p.loss_bad = 1.5;
  EXPECT_THROW(GilbertElliottLink(10.0, p), std::invalid_argument);
}

TEST(GilbertElliottLink, LossesComeInBursts) {
  // With slow state transitions and extreme per-state loss rates, the
  // outcome sequence must be far more "runny" than an i.i.d. channel of
  // the same average rate: count alternations between success and loss.
  GilbertElliottLink::Params p;
  p.p_good_to_bad = 0.02;
  p.p_bad_to_good = 0.02;
  p.loss_good = 0.0;
  p.loss_bad = 1.0;
  GilbertElliottLink link(10.0, p, 11);
  const int n = 4000;
  int losses = 0;
  int alternations = 0;
  bool last = true;
  for (int i = 0; i < n; ++i) {
    const bool ok = link.transmit(0, 1, {0.0, 0.0}, {1.0, 0.0});
    losses += ok ? 0 : 1;
    if (i > 0 && ok != last) ++alternations;
    last = ok;
  }
  ASSERT_GT(losses, n / 10);       // The bad state is actually visited.
  ASSERT_LT(losses, 9 * n / 10);   // ... and left again.
  // An i.i.d. channel with this loss rate alternates ~2*p*(1-p) per
  // attempt (>= 720 expected alternations at worst-case p=0.5 would be
  // ~2000; even at p=0.2 it is ~1280).  The Markov chain flips state
  // only ~2% of the time, so alternations stay in the low hundreds.
  EXPECT_LT(alternations, 400);
}

TEST(GilbertElliottLink, PerLinkStateIsIndependent) {
  GilbertElliottLink::Params p;
  p.p_good_to_bad = 1.0;  // First attempt on any link fades it...
  p.p_bad_to_good = 0.0;  // ...forever.
  p.loss_good = 0.0;
  p.loss_bad = 1.0;
  GilbertElliottLink link(10.0, p, 2);
  EXPECT_FALSE(link.transmit(0, 1, {0.0, 0.0}, {1.0, 0.0}));
  EXPECT_TRUE(link.link_is_bad(0, 1));
  EXPECT_FALSE(link.link_is_bad(1, 0));  // The reverse link is untouched.
  EXPECT_FALSE(link.link_is_bad(2, 3));
}

// --- MessageBus liveness -------------------------------------------------

TEST(MessageBus, DeadNodesNeitherSendNorReceive) {
  MessageBus<int> bus(3, DiskRadio(10.0));
  bus.set_position(0, {0.0, 0.0});
  bus.set_position(1, {5.0, 0.0});
  bus.set_position(2, {5.0, 5.0});
  EXPECT_EQ(bus.alive_count(), 3u);
  bus.set_alive(1, false);
  EXPECT_FALSE(bus.alive(1));
  EXPECT_EQ(bus.alive_count(), 2u);

  bus.broadcast(0, 10);
  bus.broadcast(1, 20);  // Dropped: dead sender.
  bus.step();
  EXPECT_TRUE(bus.inbox(1).empty());          // Dead receiver.
  ASSERT_EQ(bus.inbox(2).size(), 1u);         // Only node 0's message.
  EXPECT_EQ(bus.inbox(2)[0].from, 0u);
  EXPECT_EQ(bus.total_broadcasts(), 1u);      // Dead sends don't count.
  EXPECT_EQ(bus.neighbors_of(0), (std::vector<NodeId>{2}));
}

TEST(MessageBus, DeathBetweenBroadcastAndStepLosesTheMessage) {
  MessageBus<int> bus(2, DiskRadio(10.0));
  bus.set_position(0, {0.0, 0.0});
  bus.set_position(1, {5.0, 0.0});
  bus.broadcast(0, 7);
  bus.set_alive(0, false);  // Dies with the message in flight.
  bus.step();
  EXPECT_TRUE(bus.inbox(1).empty());
}

TEST(MessageBus, RevivalRestoresDelivery) {
  MessageBus<int> bus(2, DiskRadio(10.0));
  bus.set_position(0, {0.0, 0.0});
  bus.set_position(1, {5.0, 0.0});
  bus.set_alive(1, false);
  bus.broadcast(0, 1);
  bus.step();
  EXPECT_TRUE(bus.inbox(1).empty());
  bus.set_alive(1, true);
  bus.broadcast(0, 2);
  bus.step();
  ASSERT_EQ(bus.inbox(1).size(), 1u);
  EXPECT_EQ(bus.inbox(1)[0].message, 2);
}

TEST(MessageBus, SetAliveOutOfRangeThrows) {
  MessageBus<int> bus(2, DiskRadio(10.0));
  EXPECT_THROW(bus.set_alive(2, false), std::out_of_range);
  EXPECT_THROW(bus.alive(2), std::out_of_range);
}

TEST(MessageBus, CustomLinkModelDrivesDelivery) {
  GilbertElliottLink::Params p;
  p.p_good_to_bad = 1.0;
  p.p_bad_to_good = 0.0;
  p.loss_good = 0.0;
  p.loss_bad = 1.0;
  MessageBus<int> bus(2, std::make_unique<GilbertElliottLink>(10.0, p, 1));
  bus.set_position(0, {0.0, 0.0});
  bus.set_position(1, {5.0, 0.0});
  bus.broadcast(0, 1);
  bus.step();
  EXPECT_TRUE(bus.inbox(1).empty());  // Link faded on first use.
  EXPECT_THROW(MessageBus<int>(2, std::unique_ptr<LinkModel>{}),
               std::invalid_argument);
}

#if defined(CPS_OBS_ENABLED)
TEST(MessageBus, DeliveryAndFailureCountersAccountForEveryAttempt) {
  // Under a lossy radio every in-range attempt is either a delivery or a
  // delivery failure — the obs counters must balance exactly.
  obs::registry().reset();
  const bool was_enabled = obs::enabled();
  obs::set_enabled(true);
  auto& deliveries = obs::counter("net.bus.deliveries");
  auto& failures = obs::counter("net.bus.delivery_failures");
  const std::uint64_t deliveries_before = deliveries.value();
  const std::uint64_t failures_before = failures.value();

  MessageBus<int> bus(3, DiskRadio(10.0, 0.5, 77));
  bus.set_position(0, {0.0, 0.0});
  bus.set_position(1, {5.0, 0.0});   // In range of 0.
  bus.set_position(2, {50.0, 0.0});  // Out of range of both.
  const int rounds = 500;
  std::size_t received = 0;
  for (int i = 0; i < rounds; ++i) {
    bus.broadcast(0, i);
    bus.step();
    received += bus.inbox(1).size();
  }
  obs::set_enabled(was_enabled);

  const std::uint64_t delivered = deliveries.value() - deliveries_before;
  const std::uint64_t failed = failures.value() - failures_before;
  EXPECT_EQ(delivered, received);
  // Exactly one in-range receiver per round: outcomes must partition.
  EXPECT_EQ(delivered + failed, static_cast<std::uint64_t>(rounds));
  EXPECT_GT(failed, 0u);  // The 50% loss actually bit.
}
#endif  // CPS_OBS_ENABLED

}  // namespace
}  // namespace cps::net
