// Tests for relay planning (graph/relay.hpp) — FRA's L(G, r) and P(G, i).
#include "graph/relay.hpp"

#include <gtest/gtest.h>

#include "graph/geometric_graph.hpp"
#include "numerics/rng.hpp"

namespace cps::graph {
namespace {

using geo::Vec2;

TEST(RelaysForGap, Thresholds) {
  EXPECT_EQ(relays_for_gap(5.0, 10.0), 0u);
  EXPECT_EQ(relays_for_gap(10.0, 10.0), 0u);   // Exactly one hop.
  EXPECT_EQ(relays_for_gap(10.1, 10.0), 1u);
  EXPECT_EQ(relays_for_gap(20.0, 10.0), 1u);   // Exactly two hops.
  EXPECT_EQ(relays_for_gap(20.5, 10.0), 2u);
  EXPECT_EQ(relays_for_gap(95.0, 10.0), 9u);
}

TEST(RelaysForGap, InvalidRadiusThrows) {
  EXPECT_THROW(relays_for_gap(5.0, 0.0), std::invalid_argument);
}

TEST(RelayPositions, EvenSpacingWithinHopLength) {
  const Vec2 a{0.0, 0.0};
  const Vec2 b{30.0, 0.0};
  const auto relays = relay_positions(a, b, 2);
  ASSERT_EQ(relays.size(), 2u);
  EXPECT_NEAR(relays[0].x, 10.0, 1e-12);
  EXPECT_NEAR(relays[1].x, 20.0, 1e-12);
  // Chain hops are all <= gap / (count + 1).
  EXPECT_NEAR(geo::distance(a, relays[0]), 10.0, 1e-12);
  EXPECT_NEAR(geo::distance(relays[1], b), 10.0, 1e-12);
}

TEST(RelayPositions, ZeroRelays) {
  EXPECT_TRUE(relay_positions({0.0, 0.0}, {1.0, 1.0}, 0).empty());
}

TEST(PlanRelays, AlreadyConnectedNeedsNothing) {
  const std::vector<Vec2> pts{{0.0, 0.0}, {5.0, 0.0}, {10.0, 0.0}};
  const RelayPlan plan = plan_relays(pts, 6.0);
  EXPECT_EQ(plan.count, 0u);
  EXPECT_TRUE(plan.positions.empty());
}

TEST(PlanRelays, TrivialInputs) {
  EXPECT_EQ(plan_relays(std::vector<Vec2>{}, 5.0).count, 0u);
  EXPECT_EQ(plan_relays(std::vector<Vec2>{{1.0, 1.0}}, 5.0).count, 0u);
  EXPECT_THROW(plan_relays(std::vector<Vec2>{{0.0, 0.0}}, 0.0),
               std::invalid_argument);
}

TEST(PlanRelays, TwoIslandsBridged) {
  const std::vector<Vec2> pts{{0.0, 0.0}, {1.0, 0.0},
                              {35.0, 0.0}, {36.0, 0.0}};
  const RelayPlan plan = plan_relays(pts, 10.0);
  // Gap 34 m -> ceil(3.4) - 1 = 3 relays.
  EXPECT_EQ(plan.count, 3u);
  ASSERT_EQ(plan.positions.size(), 3u);
  // Plan + originals must form one component.
  std::vector<Vec2> all = pts;
  all.insert(all.end(), plan.positions.begin(), plan.positions.end());
  EXPECT_TRUE(GeometricGraph(all, 10.0).is_connected());
}

TEST(PlanRelays, ThreeIslandsUseMstNotAllPairs) {
  // Islands at 0, 30, 60 on a line: MST bridges 0-30 and 30-60 (2 + 2
  // relays), never the 60 m 0-to-60 bridge.
  const std::vector<Vec2> pts{{0.0, 0.0}, {30.0, 0.0}, {60.0, 0.0}};
  const RelayPlan plan = plan_relays(pts, 10.0);
  EXPECT_EQ(plan.count, 4u);
}

// Property: for random scatters, originals + planned relays are always one
// connected network, and the relay count is minimal along each MST bridge.
class PlanRelaysRandomSweep : public ::testing::TestWithParam<int> {};

TEST_P(PlanRelaysRandomSweep, PlannedNetworkIsConnected) {
  const int n = GetParam();
  num::Rng rng(static_cast<std::uint64_t>(n) * 13 + 1);
  const double rc = 10.0;
  std::vector<Vec2> pts;
  for (int i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
  }
  const RelayPlan plan = plan_relays(pts, rc);
  EXPECT_EQ(plan.positions.size(), plan.count);
  std::vector<Vec2> all = pts;
  all.insert(all.end(), plan.positions.begin(), plan.positions.end());
  EXPECT_TRUE(GeometricGraph(all, rc).is_connected())
      << "n=" << n << " relays=" << plan.count;
}

INSTANTIATE_TEST_SUITE_P(Sizes, PlanRelaysRandomSweep,
                         ::testing::Values(2, 3, 5, 10, 20, 50, 100));

}  // namespace
}  // namespace cps::graph
