// PlannerService: the concurrent deployment-query engine
// (core/planner_service.hpp).
//
// The load-bearing claims: every job result is bit-identical to the
// equivalent direct call at the same pool size (Score vs
// DeltaMetric::delta_of_deployment, Plan vs Planner::plan, WhatIf vs a
// fresh DeltaMetric::delta of the identically mutated triangulation);
// snapshots and what-if base states are shared, not rebuilt per job; and
// a failing job reports through its future instead of tearing down the
// batch.  The equivalence tests run at pool sizes 1 and 4 — CI's
// service-equivalence leg re-runs them under tsan with CPS_THREADS=4.
#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <vector>

#include "core/delta.hpp"
#include "core/fra.hpp"
#include "core/planner_service.hpp"
#include "core/reconstruction.hpp"
#include "field/analytic_fields.hpp"
#include "parallel/thread_pool.hpp"

namespace cps::core {
namespace {

const num::Rect kRegion{0.0, 0.0, 100.0, 100.0};
constexpr std::size_t kRes = 64;

std::shared_ptr<const field::Field> make_field() {
  return std::make_shared<field::PeaksField>(kRegion);
}

/// Pins the process pool for one scope; restores the default after.
struct PoolGuard {
  explicit PoolGuard(std::size_t n) { par::set_thread_count(n); }
  ~PoolGuard() { par::set_thread_count(0); }
};

TEST(PlannerService, ScoreMatchesDirectDelta) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    SCOPED_TRACE(threads);
    PoolGuard pool(threads);
    const auto field = make_field();
    const DeltaMetric metric(kRegion, kRes);
    PlannerService service;
    const auto snapshot = service.intern(field);
    std::vector<std::future<JobResult>> futures;
    std::vector<double> expected;
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      const auto d =
          RandomPlanner(seed).plan(*field, {kRegion, 20 + seed, 10.0});
      expected.push_back(metric.delta_of_deployment(
          *field, d.positions, CornerPolicy::kFieldValue));
      futures.push_back(service.submit(
          ScoreJob{snapshot, d, kRegion, kRes, CornerPolicy::kFieldValue}));
    }
    for (std::size_t i = 0; i < futures.size(); ++i) {
      const JobResult r = futures[i].get();
      ASSERT_TRUE(r.ok) << r.error;
      EXPECT_EQ(r.delta, expected[i]);
      EXPECT_GE(r.latency_ms, r.exec_ms);
    }
  }
}

TEST(PlannerService, PlanMatchesDirectPlanner) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    SCOPED_TRACE(threads);
    PoolGuard pool(threads);
    const auto field = make_field();
    PlannerService service;
    const auto snapshot = service.intern(field);

    const PlanRequest fra_req{kRegion, 15, 10.0, /*lattice=*/40};
    const PlanRequest rnd_req{kRegion, 30, 10.0, 0, /*seed=*/7};
    const PlanRequest fpp_req{kRegion, 25, 10.0, /*lattice=*/30};
    const PlanRequest grid_req{kRegion, 24, 10.0};

    auto f_fra = service.submit(PlanJob{snapshot, PlannerKind::kFra, fra_req});
    auto f_rnd =
        service.submit(PlanJob{snapshot, PlannerKind::kRandom, rnd_req});
    auto f_fpp = service.submit(
        PlanJob{snapshot, PlannerKind::kFarthestPoint, fpp_req});
    auto f_grid =
        service.submit(PlanJob{snapshot, PlannerKind::kGrid, grid_req,
                               /*score_resolution=*/kRes});

    EXPECT_EQ(f_fra.get().deployment.positions,
              FraPlanner().plan(*field, fra_req).positions);
    EXPECT_EQ(f_rnd.get().deployment.positions,
              RandomPlanner().plan(*field, rnd_req).positions);
    EXPECT_EQ(f_fpp.get().deployment.positions,
              FarthestPointPlanner().plan(*field, fpp_req).positions);
    const JobResult grid = f_grid.get();
    const auto direct_grid = GridPlanner().plan(*field, grid_req);
    EXPECT_EQ(grid.deployment.positions, direct_grid.positions);
    const DeltaMetric metric(kRegion, kRes);
    EXPECT_EQ(grid.delta,
              metric.delta_of_deployment(*field, direct_grid.positions,
                                         CornerPolicy::kFieldValue));
  }
}

TEST(PlannerService, WhatIfMatchesFreshDeltaOfMutatedSurface) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    SCOPED_TRACE(threads);
    PoolGuard pool(threads);
    const auto field = make_field();
    // Random interior positions: none coincides with a corner, so node i
    // maps to vertex kCorners + i in the replicated reconstruction below
    // (a FarthestPoint base would hit the corners and break that).
    const auto base = std::make_shared<Deployment>(
        RandomPlanner(3).plan(*field, {kRegion, 25, 10.0}));

    PlannerService service;
    const auto snapshot = service.intern(field);
    WhatIfJob move{snapshot, base, WhatIfJob::Op::kMove, 3,
                   {12.25, 47.5},  kRegion, kRes};
    WhatIfJob insert{snapshot, base, WhatIfJob::Op::kInsert, 0,
                     {71.5, 23.25}, kRegion, kRes};
    WhatIfJob remove{snapshot, base, WhatIfJob::Op::kRemove, 5,
                     {0.0, 0.0},    kRegion, kRes};
    auto f_move = service.submit(move);
    auto f_insert = service.submit(insert);
    auto f_remove = service.submit(remove);

    // Direct oracle: mutate a copy of the same reconstruction, score it
    // with a fresh full sweep.  Node i's vertex id is kCorners + i (the
    // corner scaffolding precedes the insertions; no duplicates here).
    const DeltaMetric metric(kRegion, kRes);
    const auto samples = take_samples(*field, base->positions);
    const geo::Delaunay dt_base = reconstruct_surface(
        samples, kRegion, CornerPolicy::kFieldValue, field.get());
    {
      geo::Delaunay dt = dt_base;
      dt.move_vertex(geo::Delaunay::kCorners + 3, {12.25, 47.5},
                     field->value({12.25, 47.5}));
      const JobResult r = f_move.get();
      ASSERT_TRUE(r.ok) << r.error;
      EXPECT_EQ(r.delta, metric.delta(*field, dt));
    }
    {
      geo::Delaunay dt = dt_base;
      dt.insert({71.5, 23.25}, field->value({71.5, 23.25}));
      const JobResult r = f_insert.get();
      ASSERT_TRUE(r.ok) << r.error;
      EXPECT_EQ(r.delta, metric.delta(*field, dt));
    }
    {
      geo::Delaunay dt = dt_base;
      dt.remove(geo::Delaunay::kCorners + 5);
      const JobResult r = f_remove.get();
      ASSERT_TRUE(r.ok) << r.error;
      EXPECT_EQ(r.delta, metric.delta(*field, dt));
    }
  }
}

TEST(PlannerService, BaseStateIsBuiltOnceAndShared) {
  PoolGuard pool(4);
  const auto field = make_field();
  const auto base = std::make_shared<Deployment>(
      GridPlanner::make_grid(kRegion, 16));
  PlannerService service;
  const auto snapshot = service.intern(field);
  std::vector<std::future<JobResult>> futures;
  for (std::size_t node = 0; node < 8; ++node) {
    futures.push_back(service.submit(WhatIfJob{
        snapshot, base, WhatIfJob::Op::kMove, node, {50.5, 50.5}, kRegion,
        kRes}));
  }
  for (auto& f : futures) {
    const JobResult r = f.get();
    ASSERT_TRUE(r.ok) << r.error;
  }
  const auto stats = service.stats();
  EXPECT_EQ(stats.base_state_misses, 1u);
  EXPECT_EQ(stats.base_state_hits, 7u);
  EXPECT_EQ(stats.whatif_jobs, 8u);
}

TEST(PlannerService, SnapshotInterningDeduplicatesByContentKey) {
  PlannerService service;
  const auto field = make_field();
  const auto a = service.intern(field);
  const auto b = service.intern(field);
  EXPECT_EQ(a.get(), b.get());  // Same snapshot object, not just same key.
  const auto stats = service.stats();
  EXPECT_EQ(stats.snapshot_misses, 1u);
  EXPECT_EQ(stats.snapshot_hits, 1u);
}

TEST(PlannerService, FailedJobsReportThroughTheirFuture) {
  PoolGuard pool(2);
  const auto field = make_field();
  const auto base = std::make_shared<Deployment>(
      GridPlanner::make_grid(kRegion, 9));
  PlannerService service;
  const auto snapshot = service.intern(field);

  // Out-of-region destination and out-of-range node index both fail their
  // own job only.
  auto f_outside = service.submit(WhatIfJob{
      snapshot, base, WhatIfJob::Op::kMove, 0, {500.0, 500.0}, kRegion,
      kRes});
  auto f_badnode = service.submit(WhatIfJob{
      snapshot, base, WhatIfJob::Op::kRemove, 99, {0.0, 0.0}, kRegion,
      kRes});
  auto f_nullfield = service.submit(ScoreJob{nullptr, *base, kRegion, kRes});
  const JobResult outside = f_outside.get();
  EXPECT_FALSE(outside.ok);
  EXPECT_FALSE(outside.error.empty());
  EXPECT_FALSE(f_badnode.get().ok);
  EXPECT_FALSE(f_nullfield.get().ok);

  // The service survives and keeps serving.
  auto f_ok = service.submit(ScoreJob{snapshot, *base, kRegion, kRes});
  EXPECT_TRUE(f_ok.get().ok);
  EXPECT_EQ(service.stats().errors, 3u);
}

TEST(PlannerService, DrainsBeyondMaxBatchAndWaitsIdle) {
  PoolGuard pool(4);
  PlannerService::Config config;
  config.max_batch = 4;
  PlannerService service(config);
  const auto snapshot = service.intern(make_field());
  const auto d = GridPlanner::make_grid(kRegion, 12);
  std::vector<std::future<JobResult>> futures;
  for (int i = 0; i < 10; ++i) {
    futures.push_back(
        service.submit(ScoreJob{snapshot, d, kRegion, /*resolution=*/16}));
  }
  service.wait_idle();
  EXPECT_EQ(service.queue_depth(), 0u);
  for (auto& f : futures) EXPECT_TRUE(f.get().ok);
  const auto stats = service.stats();
  EXPECT_EQ(stats.submitted, 10u);
  EXPECT_EQ(stats.completed, 10u);
  EXPECT_GE(stats.batches, 3u);
  EXPECT_LE(stats.max_batch_size, 4u);
}

TEST(PlannerService, DestructorDrainsOutstandingJobs) {
  std::vector<std::future<JobResult>> futures;
  {
    PlannerService service;
    const auto snapshot = service.intern(make_field());
    const auto d = GridPlanner::make_grid(kRegion, 8);
    for (int i = 0; i < 6; ++i) {
      futures.push_back(
          service.submit(ScoreJob{snapshot, d, kRegion, /*resolution=*/16}));
    }
  }  // No wait_idle: the destructor must finish every accepted job.
  for (auto& f : futures) EXPECT_TRUE(f.get().ok);
}

}  // namespace
}  // namespace cps::core
