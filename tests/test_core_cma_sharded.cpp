// Sharded-vs-unsharded equivalence for the CMA slot loop
// (core/cma_sharding.hpp + CmaConfig::sharding).
//
// The tile decomposition promises *bit-identity*: positions, learned
// neighbour tables, LCM chase counts, distance accumulators, and the
// drop-reason taxonomy must match the seed path exactly — per slot, at
// every thread count, for every tile/ghost geometry, under every link
// model, and across faults and tile migrations.  These tests fuzz that
// promise; any divergence is a bug in the matching or the fold order,
// never an acceptable approximation.
#include "core/cma.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/cma_sharding.hpp"
#include "field/analytic_fields.hpp"
#include "field/time_varying.hpp"
#include "numerics/rng.hpp"
#include "obs/obs.hpp"
#include "parallel/thread_pool.hpp"

namespace cps::core {
namespace {

const num::Rect kRegion{0.0, 0.0, 100.0, 100.0};

field::StaticTimeField static_env() {
  return field::StaticTimeField(std::make_shared<field::GaussianMixtureField>(
      0.5, std::vector<field::GaussianBump>{{{30.0, 30.0}, 3.0, 8.0},
                                            {{70.0, 60.0}, 2.5, 10.0}}));
}

/// Random but reproducible scatter over the whole region, so nodes span
/// many tiles and several sit right on tile boundaries.
std::vector<geo::Vec2> scatter(std::size_t n, std::uint64_t seed) {
  num::Rng rng(seed);
  std::vector<geo::Vec2> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(kRegion.x0, kRegion.x1),
                   rng.uniform(kRegion.y0, kRegion.y1)});
  }
  return pts;
}

CmaConfig base_config() {
  CmaConfig cfg;
  cfg.sample_spacing = 2.0;  // Coarse lattice: keep the fuzz sweeps fast.
  cfg.lcm = LcmMode::kPaper;
  return cfg;
}

enum class Link { kDiskLossless, kDiskLossy, kDistance, kGilbert };

std::unique_ptr<net::LinkModel> make_link(Link kind, double rc) {
  switch (kind) {
    case Link::kDiskLossless:
      return std::make_unique<net::DiskLink>(rc, 0.0, 17);
    case Link::kDiskLossy:
      return std::make_unique<net::DiskLink>(rc, 0.3, 17);
    case Link::kDistance:
      return std::make_unique<net::DistanceLossLink>(rc, 0.5, 2.0, 17);
    case Link::kGilbert:
      return std::make_unique<net::GilbertElliottLink>(
          rc, net::GilbertElliottLink::Params{}, 17);
  }
  return nullptr;
}

/// Drop-taxonomy + delivery counters that must be identical between the
/// sharded and unsharded runs (transmit_attempts is deliberately absent:
/// it is a cost metric and shrinks under matching).
const char* const kEquivalentCounters[] = {
    "net.bus.messages_sent",       "net.bus.deliveries",
    "net.bus.delivery_failures",   "net.bus.drops_total",
    "net.bus.drop.dead_sender",    "net.bus.drop.dead_receiver",
    "net.bus.drop.out_of_range",   "net.bus.drop.link_loss_draw",
    "net.bus.drop.ttl_expired",    "net.bus.beacon_delta_sent",
    "net.bus.beacon_full_sent",    "net.bus.beacon_delta_hits",
    "net.bus.beacon_payload_entries",
};

std::map<std::string, std::uint64_t> counter_snapshot() {
  std::map<std::string, std::uint64_t> out;
  for (const char* name : kEquivalentCounters) {
    out[name] = obs::counter(name).value();
  }
  return out;
}

struct RunResult {
  std::vector<std::vector<geo::Vec2>> positions_per_slot;
  std::vector<std::size_t> chases_per_slot;
  std::vector<double> max_move_per_slot;
  std::vector<std::vector<std::size_t>> known_per_slot;
  double total_distance = 0.0;
  std::size_t broadcasts = 0;
  std::map<std::string, std::uint64_t> counters;
  std::uint64_t transmit_attempts = 0;
};

struct RunSpec {
  std::size_t nodes = 40;
  std::size_t slots = 12;
  std::uint64_t seed = 5;
  Link link = Link::kDiskLossy;
  LcmMode lcm = LcmMode::kPaper;
  std::size_t ttl = 1;
  double tile_size = 0.0;
  double ghost_width = 0.0;
  bool faults = false;
  std::size_t threads = 1;
};

RunResult run_cma(const RunSpec& spec, ShardingMode mode) {
  par::set_thread_count(spec.threads);
  obs::set_enabled(true);
  obs::registry().reset();
  const auto env = static_env();
  CmaConfig cfg = base_config();
  cfg.lcm = spec.lcm;
  cfg.neighbor_ttl = spec.ttl;
  cfg.sharding = mode;
  cfg.tile_size = spec.tile_size;
  cfg.ghost_width = spec.ghost_width;
  CmaSimulation sim(env, kRegion, scatter(spec.nodes, spec.seed), cfg);
  sim.set_link_model(make_link(spec.link, cfg.rc));
  if (spec.faults) {
    net::FaultSchedule schedule;
    schedule.add_death(1, 2);
    schedule.add_death(3, spec.nodes / 2);
    schedule.add_death(5, spec.nodes - 1);
    schedule.add_revival(7, 2);
    schedule.add_revival(9, spec.nodes / 2);
    sim.set_fault_schedule(std::move(schedule));
  }
  RunResult result;
  for (std::size_t s = 0; s < spec.slots; ++s) {
    sim.step();
    result.positions_per_slot.push_back(sim.positions());
    result.chases_per_slot.push_back(sim.last_chase_count());
    result.max_move_per_slot.push_back(sim.last_max_displacement());
    std::vector<std::size_t> known(spec.nodes);
    for (std::size_t i = 0; i < spec.nodes; ++i) {
      known[i] = sim.known_neighbor_count(i);
    }
    result.known_per_slot.push_back(std::move(known));
  }
  result.total_distance = sim.total_distance_traveled();
  result.broadcasts = sim.total_broadcasts();
  result.counters = counter_snapshot();
  result.transmit_attempts = obs::counter("net.bus.transmit_attempts").value();
  obs::set_enabled(false);
  par::set_thread_count(0);
  return result;
}

/// Bitwise comparison of a sharded run against the unsharded oracle with
/// the same spec (the oracle always runs at one thread: the seed path).
void expect_equivalent(const RunSpec& spec) {
  RunSpec oracle_spec = spec;
  oracle_spec.threads = 1;
  const RunResult oracle = run_cma(oracle_spec, ShardingMode::kOff);
  const RunResult sharded = run_cma(spec, ShardingMode::kTiles);
  ASSERT_EQ(oracle.positions_per_slot.size(),
            sharded.positions_per_slot.size());
  for (std::size_t s = 0; s < oracle.positions_per_slot.size(); ++s) {
    for (std::size_t i = 0; i < spec.nodes; ++i) {
      EXPECT_EQ(oracle.positions_per_slot[s][i].x,
                sharded.positions_per_slot[s][i].x)
          << "slot " << s << " node " << i;
      EXPECT_EQ(oracle.positions_per_slot[s][i].y,
                sharded.positions_per_slot[s][i].y)
          << "slot " << s << " node " << i;
    }
    EXPECT_EQ(oracle.chases_per_slot[s], sharded.chases_per_slot[s])
        << "slot " << s;
    EXPECT_EQ(oracle.max_move_per_slot[s], sharded.max_move_per_slot[s])
        << "slot " << s;
    EXPECT_EQ(oracle.known_per_slot[s], sharded.known_per_slot[s])
        << "slot " << s;
  }
  EXPECT_EQ(oracle.total_distance, sharded.total_distance);
  EXPECT_EQ(oracle.broadcasts, sharded.broadcasts);
  EXPECT_EQ(oracle.counters, sharded.counters);
  // Matching probes only in-range pairs; the grid oracle probes whole
  // 3x3 cell neighbourhoods.  Equal would mean the matcher probed junk.
  EXPECT_LE(sharded.transmit_attempts, oracle.transmit_attempts);
}

TEST(CmaSharded, ConfigValidatesGhostWidth) {
  const auto env = static_env();
  CmaConfig cfg = base_config();
  cfg.sharding = ShardingMode::kTiles;
  cfg.ghost_width = 0.5 * cfg.rc;  // Ring narrower than the radio disk.
  EXPECT_THROW(CmaSimulation(env, kRegion, scatter(10, 3), cfg),
               std::invalid_argument);
}

TEST(CmaSharded, ShardGridValidatesParameters) {
  EXPECT_THROW(ShardGrid(kRegion, 0.0, 10.0), std::invalid_argument);
  EXPECT_THROW(ShardGrid(kRegion, 20.0, -1.0), std::invalid_argument);
}

TEST(CmaSharded, ShardGridRejectsRadiusBeyondGhost) {
  ShardGrid grid(kRegion, 20.0, 5.0);
  const std::vector<geo::Vec2> pts = scatter(8, 4);
  const std::vector<char> alive(pts.size(), 1);
  net::DiskLink wide(8.0, 0.0, 1);  // radius 8 > ghost 5
  EXPECT_THROW(grid.prepare(pts, alive, wide), std::logic_error);
}

TEST(CmaSharded, DefaultTilingMatchesOracleSerially) {
  expect_equivalent(RunSpec{});
}

TEST(CmaSharded, TileSizeSweep) {
  for (const double tile : {12.0, 25.0, 50.0, 500.0}) {
    RunSpec spec;
    spec.tile_size = tile;
    spec.seed = 11 + static_cast<std::uint64_t>(tile);
    expect_equivalent(spec);
  }
}

TEST(CmaSharded, GhostWidthSweep) {
  for (const double ghost : {10.0, 14.0, 30.0}) {
    RunSpec spec;
    spec.ghost_width = ghost;
    spec.seed = 23 + static_cast<std::uint64_t>(ghost);
    expect_equivalent(spec);
  }
}

TEST(CmaSharded, ThreadCountSweep) {
  for (const std::size_t threads : {1u, 2u, 3u, 4u}) {
    RunSpec spec;
    spec.threads = threads;
    spec.seed = 31 + threads;
    expect_equivalent(spec);
  }
}

TEST(CmaSharded, LinkModelSweep) {
  for (const Link link : {Link::kDiskLossless, Link::kDiskLossy,
                          Link::kDistance, Link::kGilbert}) {
    RunSpec spec;
    spec.link = link;
    spec.seed = 41 + static_cast<std::uint64_t>(link);
    spec.threads = 2;
    expect_equivalent(spec);
  }
}

TEST(CmaSharded, StrictLcmAndTtlSweep) {
  for (const std::size_t ttl : {std::size_t{1}, std::size_t{3}}) {
    RunSpec spec;
    spec.lcm = LcmMode::kStrict;
    spec.ttl = ttl;
    spec.seed = 53 + ttl;
    spec.threads = 4;
    expect_equivalent(spec);
  }
}

TEST(CmaSharded, FaultsWithBoundaryDeaths) {
  for (const std::size_t threads : {1u, 4u}) {
    RunSpec spec;
    spec.faults = true;
    spec.threads = threads;
    spec.slots = 14;
    spec.seed = 61 + threads;
    expect_equivalent(spec);
  }
}

TEST(CmaSharded, RandomizedFuzz) {
  num::Rng rng(97);
  for (int round = 0; round < 6; ++round) {
    RunSpec spec;
    spec.nodes = 20 + static_cast<std::size_t>(rng.uniform(0.0, 40.0));
    spec.slots = 6 + static_cast<std::size_t>(rng.uniform(0.0, 8.0));
    spec.seed = static_cast<std::uint64_t>(rng.uniform(1.0, 1e6));
    spec.link = static_cast<Link>(
        static_cast<int>(rng.uniform(0.0, 3.999)));
    spec.lcm = rng.bernoulli(0.5) ? LcmMode::kPaper : LcmMode::kStrict;
    spec.ttl = rng.bernoulli(0.5) ? 1 : 2;
    spec.tile_size = rng.bernoulli(0.5) ? 0.0 : rng.uniform(10.0, 60.0);
    spec.threads = 1 + static_cast<std::size_t>(rng.uniform(0.0, 3.999));
    spec.faults = rng.bernoulli(0.5);
    expect_equivalent(spec);
  }
}

TEST(CmaSharded, NodesMigrateAcrossTilesMidRun) {
  // A long, force-driven run over the default tiling must show tile
  // reassignments; migration is just positional re-ownership, so the
  // equivalence sweep above already covers its correctness — here we pin
  // that it actually happens (the test would be vacuous otherwise).
  par::set_thread_count(2);
  obs::set_enabled(true);
  obs::registry().reset();
  const auto env = static_env();
  CmaConfig cfg = base_config();
  cfg.sharding = ShardingMode::kTiles;
  cfg.tile_size = 12.0;  // Small tiles: short hop to the next one.
  CmaSimulation sim(env, kRegion, scatter(60, 71), cfg);
  sim.run(30);
#if defined(CPS_OBS_ENABLED)
  EXPECT_GT(obs::counter("core.cma.shard.migrations").value(), 0u);
#endif
  ASSERT_NE(sim.shard(), nullptr);
  EXPECT_GT(sim.shard()->tile_count(), 1u);
  obs::set_enabled(false);
  par::set_thread_count(0);
}

#if defined(CPS_OBS_ENABLED)
TEST(CmaSharded, BeaconDeltaCountersReconcile) {
  // Mode-independent delta accounting: sent flags split the beacon
  // traffic exactly, and every received beacon is either a delta hit or
  // a carried payload entry.  A converged run must actually produce
  // delta hits (stationary nodes re-beacon unchanged state).
  for (const ShardingMode mode : {ShardingMode::kOff, ShardingMode::kTiles}) {
    obs::set_enabled(true);
    obs::registry().reset();
    const auto env = static_env();
    CmaConfig cfg = base_config();
    cfg.sharding = mode;
    cfg.force_tolerance = 1e9;  // Balanced everywhere: nobody ever moves.
    CmaSimulation sim(env, kRegion, scatter(30, 83), cfg);
    sim.run(8);
    const std::uint64_t delta_sent =
        obs::counter("net.bus.beacon_delta_sent").value();
    const std::uint64_t full_sent =
        obs::counter("net.bus.beacon_full_sent").value();
    const std::uint64_t hits =
        obs::counter("net.bus.beacon_delta_hits").value();
    const std::uint64_t payload =
        obs::counter("net.bus.beacon_payload_entries").value();
    const std::uint64_t rx = obs::counter("net.bus.beacon_rx").value();
    // Beacons are half the broadcasts (the tell round is the other half).
    EXPECT_EQ(delta_sent + full_sent, sim.total_broadcasts() / 2);
    EXPECT_EQ(hits + payload, rx);
    // Slot 0 beacons are all full; every later one is a delta here.
    EXPECT_EQ(full_sent, 30u);
    EXPECT_EQ(delta_sent, 30u * 7u);
    EXPECT_GT(hits, 0u);
    obs::set_enabled(false);
  }
}
#endif  // CPS_OBS_ENABLED

TEST(CmaSharded, DenseTilesUseHashedMatching) {
  // 300 nodes over 2x2 big tiles puts every tile's candidate count far
  // past the hash cutoff, so this sweep exercises the per-tile
  // SpatialHash + pruned-cell path of the matcher (the small-n sweeps
  // above all take the plain scan).
  RunSpec spec;
  spec.nodes = 300;
  spec.slots = 4;
  spec.tile_size = 50.0;
  spec.threads = 2;
  spec.seed = 101;
  expect_equivalent(spec);
}

TEST(CmaSharded, SingleTileDegeneratesToGlobalMatch) {
  // Tile size beyond the region: one tile owns everything, the ghost
  // ring is empty, and the matching is just the all-pairs in-range set.
  RunSpec spec;
  spec.tile_size = 1000.0;
  spec.ghost_width = 10.0;
  spec.seed = 89;
  expect_equivalent(spec);
}

}  // namespace
}  // namespace cps::core
