// Tests for dense linear algebra (numerics/linalg.hpp).
#include "numerics/linalg.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "numerics/rng.hpp"

namespace cps::num {
namespace {

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(1, 2) = -4.0;
  EXPECT_DOUBLE_EQ(m(1, 2), -4.0);
}

TEST(Matrix, InitializerList) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, HalfZeroDimensionThrows) {
  EXPECT_THROW(Matrix(3, 0), std::invalid_argument);
  EXPECT_THROW(Matrix(0, 3), std::invalid_argument);
}

TEST(Matrix, AtBoundsChecked) {
  Matrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
  EXPECT_THROW(m.at(0, 2), std::out_of_range);
  EXPECT_NO_THROW(m.at(1, 1));
}

TEST(Matrix, Identity) {
  const Matrix id = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(id(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(Matrix, Transpose) {
  Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(Matrix, Multiply) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MultiplyDimensionMismatchThrows) {
  Matrix a(2, 3);
  Matrix b(2, 3);
  EXPECT_THROW(a * b, std::invalid_argument);
}

TEST(Matrix, AddSubtract) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{4.0, 3.0}, {2.0, 1.0}};
  const Matrix s = a + b;
  const Matrix d = a - b;
  EXPECT_DOUBLE_EQ(s(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(s(1, 1), 5.0);
  EXPECT_DOUBLE_EQ(d(0, 0), -3.0);
  EXPECT_DOUBLE_EQ(d(1, 1), 3.0);
}

TEST(Matrix, ApplyVector) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const auto y = a.apply({1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(Matrix, ApplyDimensionMismatchThrows) {
  Matrix a(2, 2);
  EXPECT_THROW(a.apply({1.0, 2.0, 3.0}), std::invalid_argument);
}

TEST(Matrix, FrobeniusNorm) {
  Matrix a{{3.0, 0.0}, {0.0, 4.0}};
  EXPECT_DOUBLE_EQ(a.frobenius_norm(), 5.0);
}

TEST(Solve, KnownSystem) {
  // x + 2y = 5, 3x - y = 1  ->  x = 1, y = 2.
  const auto x = solve(Matrix{{1.0, 2.0}, {3.0, -1.0}}, {5.0, 1.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Solve, RequiresPivoting) {
  // Leading zero forces a row swap.
  const auto x = solve(Matrix{{0.0, 1.0}, {1.0, 0.0}}, {3.0, 7.0});
  EXPECT_NEAR(x[0], 7.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Solve, SingularThrows) {
  EXPECT_THROW(solve(Matrix{{1.0, 2.0}, {2.0, 4.0}}, {1.0, 2.0}),
               std::domain_error);
}

TEST(Solve, NotSquareThrows) {
  EXPECT_THROW(solve(Matrix(2, 3), {1.0, 2.0}), std::invalid_argument);
}

TEST(Solve, WrongRhsSizeThrows) {
  EXPECT_THROW(solve(Matrix::identity(2), {1.0, 2.0, 3.0}),
               std::invalid_argument);
}

TEST(Determinant, KnownValues) {
  EXPECT_NEAR(determinant(Matrix{{1.0, 2.0}, {3.0, 4.0}}), -2.0, 1e-12);
  EXPECT_NEAR(determinant(Matrix::identity(4)), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(determinant(Matrix{{1.0, 2.0}, {2.0, 4.0}}), 0.0);
}

TEST(Inverse, RoundTrip) {
  const Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  const Matrix prod = a * inverse(a);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 2; ++c) {
      EXPECT_NEAR(prod(r, c), r == c ? 1.0 : 0.0, 1e-12);
    }
  }
}

TEST(Inverse, SingularThrows) {
  EXPECT_THROW(inverse(Matrix{{1.0, 1.0}, {1.0, 1.0}}), std::domain_error);
}

TEST(VectorOps, NormAndDot) {
  EXPECT_DOUBLE_EQ(norm2({3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(dot({1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}), 32.0);
  EXPECT_THROW(dot({1.0}, {1.0, 2.0}), std::invalid_argument);
}

// Property: for random well-conditioned systems, solve() residuals vanish.
class SolveRandomSweep : public ::testing::TestWithParam<int> {};

TEST_P(SolveRandomSweep, ResidualIsTiny) {
  const int n = GetParam();
  Rng rng(static_cast<std::uint64_t>(n) * 101 + 7);
  Matrix a(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      a(r, c) = rng.uniform(-1.0, 1.0);
    }
    a(r, r) += static_cast<double>(n);  // Diagonal dominance.
  }
  std::vector<double> b(static_cast<std::size_t>(n));
  for (auto& v : b) v = rng.uniform(-10.0, 10.0);
  const auto x = solve(a, b);
  const auto ax = a.apply(x);
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_NEAR(ax[i], b[i], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SolveRandomSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 32));

}  // namespace
}  // namespace cps::num
