// Equivalence suite for the cavity-local incremental δ engine
// (core/delta_incremental.hpp) and the CMA per-slot tracker
// (core/cma_delta.hpp):
//
//  * randomized fuzz — interleaved inserts, duplicate-tolerance hits
//    (z-changing and no-op), moves, and removals, with a cocircular
//    grid-aligned point mix, across the field zoo and 1–4 worker
//    threads; after EVERY event the tracker's value must be
//    bit-identical to a fresh kRaster sweep AND the kWalk oracle of the
//    same triangulation (the DESIGN.md §13 oracle protocol);
//  * retarget (reference swap) and batched z-update events against the
//    same oracles;
//  * rebase after a mid-stream thread-count change;
//  * the DeltaEngine::kIncremental dispatch (delta() through a
//    throwaway tracker) across both corner policies;
//  * CmaDeltaTracker: per-slot tracked δ bit-identical to a fresh sweep
//    of its own triangulation through deaths, revivals, moves, and a
//    position-aliased node pair.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/cma.hpp"
#include "core/cma_delta.hpp"
#include "core/delta.hpp"
#include "core/delta_incremental.hpp"
#include "core/fra.hpp"
#include "core/reconstruction.hpp"
#include "field/analytic_fields.hpp"
#include "field/time_varying.hpp"
#include "net/fault.hpp"
#include "numerics/rng.hpp"
#include "parallel/thread_pool.hpp"

namespace cps::core {
namespace {

const num::Rect kRegion{0.0, 0.0, 100.0, 100.0};

field::AnalyticField reference_surface() {
  return field::AnalyticField([](double x, double y) {
    return 10.0 + 0.05 * x * y / 100.0 + 3.0 * (x > 40 && x < 60) +
           2.0 * (y > 20 && y < 50);
  });
}

/// Restores the global worker count on scope exit so a failing test can't
/// poison later ones.
struct ThreadGuard {
  ~ThreadGuard() { par::set_thread_count(1); }
};

// --- Randomized event fuzz against both fresh oracles ---------------------

/// Drives one triangulation and one IncrementalDelta through `events`
/// random events, comparing against fresh kRaster and kWalk sweeps after
/// every single one.
void fuzz_events(const field::Field& f, std::uint64_t seed,
                 std::size_t events, std::size_t resolution) {
  DeltaMetric raster(kRegion, resolution);
  DeltaMetric walk(kRegion, resolution);
  walk.set_engine(DeltaEngine::kWalk);

  geo::Delaunay dt(kRegion);
  for (int corner = 0; corner < geo::Delaunay::kCorners; ++corner) {
    dt.set_vertex_z(corner, f.value(dt.vertex(corner).pos));
  }
  IncrementalDelta inc(raster, f, dt);

  num::Rng rng(seed);
  // Grid-aligned points produce cocircular quadruples (and exact region
  // corners / borders, so duplicate hits land on the scaffolding too).
  const auto random_point = [&]() -> geo::Vec2 {
    if (rng.uniform() < 0.35) {
      return {12.5 * static_cast<double>(rng.uniform_int(0, 8)),
              12.5 * static_cast<double>(rng.uniform_int(0, 8))};
    }
    return {rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)};
  };
  const auto random_z = [&]() { return rng.uniform(-10.0, 10.0); };

  std::vector<int> user;  // Alive non-corner vertices.
  const auto check = [&](std::size_t step, const char* what) {
    SCOPED_TRACE("event " + std::to_string(step) + " (" + what + ")");
    const double fresh = raster.delta(f, dt);
    ASSERT_EQ(inc.value(), fresh);        // Bitwise, not approximately.
    ASSERT_EQ(fresh, walk.delta(f, dt));  // And the walk oracle agrees.
  };

  for (std::size_t step = 0; step < events; ++step) {
    const double r = rng.uniform();
    const char* what = "";
    if (r < 0.45 || user.empty()) {
      what = "insert";
      const geo::InsertResult ins = dt.insert(random_point(), random_z());
      if (ins.inserted) user.push_back(ins.vertex);
      inc.apply(dt, ins);
    } else if (r < 0.60) {
      // Duplicate-tolerance hit on an existing vertex: half the time with
      // the same z (a true no-op), half with a new one (the z_changed
      // staleness event this PR's bugfix makes visible).
      const int v = user[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(user.size()) - 1))];
      const double z = rng.uniform() < 0.5 ? dt.vertex(v).z : random_z();
      what = "duplicate-hit";
      inc.apply(dt, dt.insert(dt.vertex(v).pos, z));
    } else if (r < 0.80) {
      what = "move";
      const std::size_t slot = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(user.size()) - 1));
      const geo::MoveResult moved =
          dt.move_vertex(user[slot], random_point(), random_z());
      user.erase(user.begin() + static_cast<std::ptrdiff_t>(slot));
      if (moved.inserted) user.push_back(moved.vertex);
      inc.apply(dt, moved);
    } else {
      what = "remove";
      const std::size_t slot = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(user.size()) - 1));
      const geo::RemoveResult removal = dt.remove(user[slot]);
      user.erase(user.begin() + static_cast<std::ptrdiff_t>(slot));
      inc.apply(dt, removal);
    }
    check(step, what);
  }

  EXPECT_EQ(inc.stats().events, events);
  // The whole point: strictly cheaper than `events` full sweeps (the
  // bench_perf gate demands >= 10x at scale; here the triangulation is
  // tiny, so the cavities are big and the bar is loose).
  EXPECT_LT(inc.stats().points_reevaluated,
            events * inc.stats().full_sweep_points);
}

TEST(IncrementalDeltaFuzz, MatchesBothOraclesAcrossThreads) {
  ThreadGuard guard;
  const auto f = reference_surface();
  for (const std::size_t threads : {1u, 2u, 3u, 4u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    par::set_thread_count(threads);
    fuzz_events(f, 100 + threads, 48, 40);
  }
}

TEST(IncrementalDeltaFuzz, FieldZoo) {
  ThreadGuard guard;
  const field::PeaksField peaks(kRegion);
  const field::GaussianMixtureField bumps(
      1.0, {{{20.0, 20.0}, 9.0, 3.0}, {{70.0, 55.0}, -2.0, 14.0}});
  const field::PlaneField plane(1.0, 0.25, -0.125);
  for (const std::size_t threads : {1u, 4u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    par::set_thread_count(threads);
    fuzz_events(peaks, 7 + threads, 32, 36);
    fuzz_events(bumps, 11 + threads, 32, 36);
    fuzz_events(plane, 13 + threads, 32, 36);
  }
}

// --- Reference swaps and batched z updates --------------------------------

TEST(IncrementalDelta, RetargetSwapsReferenceWithoutGeometryWork) {
  const auto a = reference_surface();
  const field::PeaksField b(kRegion);
  DeltaMetric metric(kRegion, 48);

  geo::Delaunay dt(kRegion);
  num::Rng rng(5);
  for (int i = 0; i < 25; ++i) {
    dt.insert({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)},
              rng.uniform(-5.0, 5.0));
  }
  IncrementalDelta inc(metric, a, dt);
  ASSERT_EQ(inc.value(), metric.delta(a, dt));

  inc.retarget(metric, b);
  EXPECT_EQ(inc.value(), metric.delta(b, dt));
  EXPECT_EQ(inc.stats().retargets, 1u);
  // The swap is fold-only: no lattice point was re-assigned.
  EXPECT_EQ(inc.stats().points_reevaluated, 0u);

  // Events keep folding against the new reference.
  inc.apply(dt, dt.insert({33.3, 44.4}, 2.5));
  EXPECT_EQ(inc.value(), metric.delta(b, dt));

  // A mismatched lattice is rejected.
  DeltaMetric other(kRegion, 32);
  EXPECT_THROW(inc.retarget(other, b), std::invalid_argument);
}

TEST(IncrementalDelta, BatchedZUpdatesMatchFreshSweep) {
  const auto f = reference_surface();
  DeltaMetric metric(kRegion, 48);
  geo::Delaunay dt(kRegion);
  num::Rng rng(9);
  std::vector<int> verts;
  for (int i = 0; i < 20; ++i) {
    const geo::InsertResult ins =
        dt.insert({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)},
                  rng.uniform(-5.0, 5.0));
    if (ins.inserted) verts.push_back(ins.vertex);
  }
  IncrementalDelta inc(metric, f, dt);

  // Re-value a handful of vertices (plus one corner), then fold the whole
  // batch as ONE event over the union of their stars.
  std::vector<int> stars;
  const auto touch = [&](int v, double z) {
    dt.set_vertex_z(v, z);
    const std::vector<int> star = dt.vertex_star(v);
    stars.insert(stars.end(), star.begin(), star.end());
  };
  touch(verts[2], 7.5);
  touch(verts[9], -3.25);
  touch(0, 1.75);  // Corner scaffolding.
  std::sort(stars.begin(), stars.end());
  stars.erase(std::unique(stars.begin(), stars.end()), stars.end());
  inc.apply_z_updates(dt, stars);

  EXPECT_EQ(inc.value(), metric.delta(f, dt));
  EXPECT_EQ(inc.stats().events, 1u);
}

TEST(IncrementalDelta, RebaseRecapturesChunkLayout) {
  ThreadGuard guard;
  const auto f = reference_surface();
  DeltaMetric metric(kRegion, 40);
  geo::Delaunay dt(kRegion);
  num::Rng rng(3);
  for (int i = 0; i < 15; ++i) {
    dt.insert({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)},
              rng.uniform(-5.0, 5.0));
  }

  par::set_thread_count(1);
  IncrementalDelta inc(metric, f, dt);
  ASSERT_EQ(inc.value(), metric.delta(f, dt));

  // Changing the worker count changes delta()'s chunk layout; the stored
  // partial sums are for the old layout, so the tracker must rebase.
  par::set_thread_count(4);
  inc.rebase(dt);
  EXPECT_EQ(inc.value(), metric.delta(f, dt));
  EXPECT_EQ(inc.stats().rebuilds, 2u);  // Construction + rebase.

  inc.apply(dt, dt.insert({12.0, 87.0}, 4.0));
  EXPECT_EQ(inc.value(), metric.delta(f, dt));
}

// --- DeltaEngine::kIncremental dispatch -----------------------------------

TEST(IncrementalDelta, EngineDispatchMatchesRasterAcrossPolicies) {
  const auto f = reference_surface();
  const auto samples = take_samples(
      f, std::vector<geo::Vec2>{{15.0, 25.0}, {60.0, 10.0}, {50.0, 50.0},
                                {80.0, 75.0}, {30.0, 90.0}});
  DeltaMetric raster(kRegion, 50);
  DeltaMetric incremental(kRegion, 50);
  incremental.set_engine(DeltaEngine::kIncremental);
  EXPECT_EQ(incremental.engine(), DeltaEngine::kIncremental);
  for (const auto policy :
       {CornerPolicy::kNearestSample, CornerPolicy::kFieldValue}) {
    SCOPED_TRACE("policy=" + std::to_string(static_cast<int>(policy)));
    EXPECT_EQ(incremental.delta_from_samples(f, samples, policy),
              raster.delta_from_samples(f, samples, policy));
  }
}

// --- FRA what-if tracking --------------------------------------------------

TEST(IncrementalDelta, FraTrackedTrajectoryMatchesDeploymentSweeps) {
  const auto f = reference_surface();
  DeltaMetric metric(kRegion, 64);

  FraConfig cfg;
  cfg.error_grid = 40;
  cfg.track_delta = &metric;
  FraPlanner planner(cfg);
  const FraResult plan =
      planner.plan_detailed(f, PlanRequest{kRegion, 40, 10.0});

  ASSERT_EQ(plan.delta_trajectory.size(), plan.steps.size());
  ASSERT_FALSE(plan.delta_trajectory.empty());
  // The headline contract fig7 relies on: the tracked final δ is the
  // delta_of_deployment value, bitwise — FRA's own triangulation IS the
  // kFieldValue reconstruction of its output.
  EXPECT_EQ(plan.final_delta,
            metric.delta_of_deployment(f, plan.deployment.positions,
                                       CornerPolicy::kFieldValue));
  EXPECT_EQ(plan.final_delta, plan.delta_trajectory.back());
  // And so is every prefix (spot-checked): the trajectory is the per-k
  // what-if series without per-k replanning.
  for (std::size_t i = 9; i < plan.steps.size(); i += 10) {
    SCOPED_TRACE("prefix " + std::to_string(i + 1));
    const std::vector<geo::Vec2> prefix(
        plan.deployment.positions.begin(),
        plan.deployment.positions.begin() + static_cast<std::ptrdiff_t>(i) +
            1);
    EXPECT_EQ(plan.delta_trajectory[i],
              metric.delta_of_deployment(f, prefix,
                                         CornerPolicy::kFieldValue));
  }
  EXPECT_EQ(plan.delta_stats.events, plan.steps.size());
  EXPECT_LT(plan.delta_stats.points_reevaluated,
            plan.delta_stats.events * plan.delta_stats.full_sweep_points);

  // Tracking must not perturb planning: the untracked plan is identical.
  FraConfig plain_cfg = cfg;
  plain_cfg.track_delta = nullptr;
  const FraResult plain =
      FraPlanner(plain_cfg).plan_detailed(f, PlanRequest{kRegion, 40, 10.0});
  ASSERT_EQ(plain.deployment.positions.size(),
            plan.deployment.positions.size());
  for (std::size_t i = 0; i < plain.deployment.positions.size(); ++i) {
    EXPECT_EQ(plain.deployment.positions[i].x,
              plan.deployment.positions[i].x);
    EXPECT_EQ(plain.deployment.positions[i].y,
              plan.deployment.positions[i].y);
  }
  EXPECT_TRUE(plain.delta_trajectory.empty());
}

// --- CmaDeltaTracker -------------------------------------------------------

TEST(CmaDeltaTracker, TracksOwnTriangulationBitExactlyThroughChurn) {
  const field::AnalyticTimeField env([](double x, double y, double t) {
    return 10.0 + 0.04 * x + 0.03 * y +
           3.0 * std::sin(0.05 * x + 0.3 * t) * std::cos(0.07 * y - 0.2 * t);
  });
  // A connected 3x3 grid plus one node stacked exactly on another: the
  // pair stays coincident (the repulsion kernel pushes both identically),
  // exercising the vertex-aliasing refcount path every slot.
  std::vector<geo::Vec2> pts;
  for (int j = 0; j < 3; ++j) {
    for (int i = 0; i < 3; ++i) {
      pts.push_back({40.0 + i * 6.0, 40.0 + j * 6.0});
    }
  }
  pts.push_back(pts[4]);

  CmaConfig cfg;
  CmaSimulation sim(env, kRegion, pts, cfg);
  net::FaultSchedule faults;
  faults.add_death(2, 4);
  faults.add_death(4, 7);
  faults.add_revival(6, 4);
  sim.set_fault_schedule(std::move(faults));

  DeltaMetric metric(kRegion, 40);
  CmaDeltaTracker tracker(sim, metric);
  // At construction the tracker's triangulation mirrors
  // reconstruct_surface(sense_at_nodes()) exactly, so even the end-to-end
  // pipeline value matches bitwise.
  ASSERT_EQ(tracker.value(), sim.current_delta(metric));

  for (std::size_t slot = 1; slot <= 12; ++slot) {
    SCOPED_TRACE("slot " + std::to_string(slot));
    sim.step();
    const double tracked = tracker.update(sim);
    // The contract: bit-identical to a fresh sweep of the tracker's OWN
    // triangulation (same point set as the from-scratch path, but its
    // Delaunay history differs, so only cocircular tie-breaks may vary).
    ASSERT_EQ(tracked,
              metric.delta(field::FieldSlice(env, sim.time()),
                           tracker.triangulation()));
    const double fresh = sim.current_delta(metric);
    EXPECT_NEAR(tracked, fresh, 0.1 * std::abs(fresh) + 1e-9);
  }

  EXPECT_EQ(tracker.stats().slots, 12u);
  EXPECT_EQ(tracker.stats().node_deaths, 2u);
  EXPECT_EQ(tracker.stats().node_revivals, 1u);
  EXPECT_GT(tracker.stats().node_moves, 0u);
  EXPECT_GT(tracker.stats().merges, 0u);  // The stacked pair.
  EXPECT_EQ(tracker.delta_stats().retargets, 12u);
  EXPECT_EQ(tracker.delta_stats().rebuilds, 1u);  // Construction only.
}

}  // namespace
}  // namespace cps::core
