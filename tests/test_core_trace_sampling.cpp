// Tests for CMA trace sampling (Section 7 future work: sampling along the
// nodes' movement traces instead of points only).
#include <gtest/gtest.h>

#include <memory>

#include "core/cma.hpp"
#include "core/planner.hpp"
#include "field/analytic_fields.hpp"
#include "field/time_varying.hpp"

namespace cps::core {
namespace {

const num::Rect kRegion{0.0, 0.0, 100.0, 100.0};

field::StaticTimeField static_env() {
  return field::StaticTimeField(std::make_shared<field::GaussianMixtureField>(
      0.5, std::vector<field::GaussianBump>{{{30.0, 30.0}, 3.0, 8.0},
                                            {{70.0, 60.0}, 2.5, 10.0}}));
}

CmaConfig tracing_config() {
  CmaConfig cfg;
  cfg.rc = 100.0 / 5.0 * 1.001;  // 25-node grid pitch.
  cfg.trace_sampling = true;
  cfg.lcm = LcmMode::kOff;  // Let nodes roam for meaningful traces.
  return cfg;
}

TEST(TraceSampling, DisabledByDefault) {
  const auto env = static_env();
  CmaSimulation sim(env, kRegion, GridPlanner::make_grid(kRegion, 25).positions,
                    CmaConfig{});
  sim.run(5);
  EXPECT_TRUE(sim.trace_samples().empty());
}

TEST(TraceSampling, LogsOneSamplePerNodePerSlot) {
  const auto env = static_env();
  CmaSimulation sim(env, kRegion, GridPlanner::make_grid(kRegion, 25).positions,
                    tracing_config());
  sim.run(4);
  EXPECT_EQ(sim.trace_samples().size(), 4u * 25u);
}

TEST(TraceSampling, StalenessWindowPrunesOldSamples) {
  const auto env = static_env();
  CmaConfig cfg = tracing_config();
  cfg.trace_staleness = 3.0;  // Keep only the last 3 minutes.
  CmaSimulation sim(env, kRegion, GridPlanner::make_grid(kRegion, 25).positions,
                    cfg);
  sim.run(10);
  // Slots logged at t = 9, 8, 7 (and 6 exactly at the horizon is pruned
  // by the strict comparison only if older): window is (t-3, t] around
  // the log times 7, 8, 9 -> 3 slots retained, plus boundary slot 6.
  EXPECT_LE(sim.trace_samples().size(), 4u * 25u);
  EXPECT_GE(sim.trace_samples().size(), 3u * 25u);
}

TEST(TraceSampling, SampleValuesMatchFieldAtLogTime) {
  // On a static field every logged z equals the field at the position.
  const auto env = static_env();
  CmaSimulation sim(env, kRegion, GridPlanner::make_grid(kRegion, 16).positions,
                    tracing_config());
  sim.run(6);
  for (const auto& s : sim.trace_samples()) {
    EXPECT_DOUBLE_EQ(s.z, env.value(s.position, 0.0));
  }
}

TEST(TraceSampling, TraceReconstructionAtLeastAsGoodAsPointOnStaticField) {
  // On a static field the trace adds strictly more true information, so
  // delta with the trace must not be (meaningfully) worse.
  const auto env = static_env();
  CmaSimulation sim(env, kRegion, GridPlanner::make_grid(kRegion, 25).positions,
                    tracing_config());
  sim.run(20);
  const DeltaMetric metric(kRegion, 50);
  const double point_only = sim.current_delta(metric);
  const double with_trace = sim.current_delta_with_trace(metric);
  EXPECT_LE(with_trace, point_only * 1.02);
}

TEST(TraceSampling, ImprovesDeltaAfterMovement) {
  // After the swarm has moved, the trail left behind covers territory the
  // instantaneous positions abandoned: trace reconstruction should win
  // clearly on a static field.
  const auto env = static_env();
  CmaConfig cfg = tracing_config();
  cfg.attraction_gain = 0.3;  // Encourage real movement.
  cfg.trace_staleness = 30.0;
  CmaSimulation sim(env, kRegion, GridPlanner::make_grid(kRegion, 25).positions,
                    cfg);
  sim.run(30);
  const DeltaMetric metric(kRegion, 50);
  EXPECT_LT(sim.current_delta_with_trace(metric),
            sim.current_delta(metric));
}

TEST(TraceSampling, FresherSamplesWinAtDuplicatedPositions) {
  // A node that returns to (or stays at) a position re-logs it; combined
  // reconstruction must carry the newest value.  On a time-varying field
  // the node's own current sample supersedes its stale trace entry.
  const field::AnalyticTimeField env(
      [](double, double, double t) { return t; });  // Uniform brightening.
  CmaConfig cfg = tracing_config();
  cfg.attraction_gain = 1e-9;  // Hold still: positions duplicate exactly.
  cfg.force_tolerance = 1e6;   // Force balance everywhere -> no movement.
  CmaSimulation sim(env, kRegion, GridPlanner::make_grid(kRegion, 9).positions,
                    cfg);
  sim.run(5);  // Now t = 5; trace holds z from t = 0..4; current z = 5.
  const DeltaMetric metric(kRegion, 30);
  // Exact reconstruction of the flat field z = 5 means delta ~ 0 despite
  // the stale trace entries underneath.
  EXPECT_NEAR(sim.current_delta_with_trace(metric), 0.0, 1e-6);
}

}  // namespace
}  // namespace cps::core
