// Tests for filtered geometric predicates (geometry/predicates.hpp).
#include "geometry/predicates.hpp"

#include <gtest/gtest.h>

#include "numerics/rng.hpp"

namespace cps::geo {
namespace {

TEST(Orient2d, BasicSigns) {
  const Vec2 a{0.0, 0.0};
  const Vec2 b{1.0, 0.0};
  EXPECT_EQ(orient2d(a, b, {0.0, 1.0}), 1);   // Left turn: CCW.
  EXPECT_EQ(orient2d(a, b, {0.0, -1.0}), -1);  // Right turn: CW.
  EXPECT_EQ(orient2d(a, b, {2.0, 0.0}), 0);   // Collinear.
}

TEST(Orient2d, ValueMatchesSignedDoubleArea) {
  const Vec2 a{0.0, 0.0};
  const Vec2 b{4.0, 0.0};
  const Vec2 c{0.0, 3.0};
  EXPECT_DOUBLE_EQ(orient2d_value(a, b, c), 12.0);
}

TEST(Orient2d, CyclicInvariance) {
  const Vec2 a{0.1, 0.2};
  const Vec2 b{3.7, -1.1};
  const Vec2 c{2.0, 5.5};
  EXPECT_EQ(orient2d(a, b, c), orient2d(b, c, a));
  EXPECT_EQ(orient2d(b, c, a), orient2d(c, a, b));
  EXPECT_EQ(orient2d(a, b, c), -orient2d(b, a, c));
}

TEST(Orient2d, NearlyCollinearIsZero) {
  // Points on a line up to double rounding: the filter must call this
  // degenerate rather than flip-flopping.
  const Vec2 a{0.0, 0.0};
  const Vec2 b{1e8, 1e8};
  const Vec2 c{5e7, 5e7};
  EXPECT_EQ(orient2d(a, b, c), 0);
}

TEST(Orient2d, GridPointsExact) {
  // Integer lattice inputs: results must be exact.
  EXPECT_EQ(orient2d({0.0, 0.0}, {10.0, 0.0}, {5.0, 1.0}), 1);
  EXPECT_EQ(orient2d({0.0, 0.0}, {10.0, 0.0}, {5.0, 0.0}), 0);
  EXPECT_EQ(orient2d({3.0, 3.0}, {7.0, 7.0}, {11.0, 11.0}), 0);
}

TEST(Incircle, StrictInterior) {
  // CCW unit-ish triangle; its circumcircle is centred at (0.5, 0.5).
  const Vec2 a{0.0, 0.0};
  const Vec2 b{1.0, 0.0};
  const Vec2 c{0.0, 1.0};
  EXPECT_EQ(incircle(a, b, c, {0.5, 0.5}), 1);
  EXPECT_EQ(incircle(a, b, c, {5.0, 5.0}), -1);
}

TEST(Incircle, CocircularIsZero) {
  // Four corners of a square are exactly cocircular.
  const Vec2 a{0.0, 0.0};
  const Vec2 b{1.0, 0.0};
  const Vec2 c{1.0, 1.0};
  EXPECT_EQ(incircle(a, b, c, {0.0, 1.0}), 0);
}

TEST(Incircle, PointOnEdgeChordIsInside) {
  // Any interior point of a chord lies strictly inside the circle — this
  // is what makes Bowyer-Watson handle on-edge insertions naturally.
  const Vec2 a{0.0, 0.0};
  const Vec2 b{2.0, 0.0};
  const Vec2 c{1.0, 2.0};
  EXPECT_EQ(incircle(a, b, c, {1.0, 0.0}), 1);
}

TEST(Incircle, VertexItselfIsOnCircle) {
  const Vec2 a{0.0, 0.0};
  const Vec2 b{2.0, 0.0};
  const Vec2 c{1.0, 2.0};
  EXPECT_EQ(incircle(a, b, c, a), 0);
  EXPECT_EQ(incircle(a, b, c, b), 0);
  EXPECT_EQ(incircle(a, b, c, c), 0);
}

// Property: incircle is consistent with an explicit circumcircle check on
// random triangles/query points.
TEST(Incircle, AgreesWithCircumcircleDistance) {
  num::Rng rng(2024);
  int checked = 0;
  for (int trial = 0; trial < 500; ++trial) {
    Vec2 a{rng.uniform(-10.0, 10.0), rng.uniform(-10.0, 10.0)};
    Vec2 b{rng.uniform(-10.0, 10.0), rng.uniform(-10.0, 10.0)};
    Vec2 c{rng.uniform(-10.0, 10.0), rng.uniform(-10.0, 10.0)};
    if (orient2d(a, b, c) <= 0) std::swap(b, c);  // Force CCW.
    if (orient2d(a, b, c) <= 0) continue;         // Degenerate: skip.
    const Vec2 d{rng.uniform(-10.0, 10.0), rng.uniform(-10.0, 10.0)};

    // Explicit circumcentre.
    const double a2 = a.norm_sq();
    const double b2 = b.norm_sq();
    const double c2 = c.norm_sq();
    const double det =
        2.0 * (a.x * (b.y - c.y) + b.x * (c.y - a.y) + c.x * (a.y - b.y));
    const Vec2 center{
        (a2 * (b.y - c.y) + b2 * (c.y - a.y) + c2 * (a.y - b.y)) / det,
        (a2 * (c.x - b.x) + b2 * (a.x - c.x) + c2 * (b.x - a.x)) / det};
    const double r2 = distance_sq(center, a);
    const double d2 = distance_sq(center, d);
    if (std::abs(d2 - r2) < 1e-6 * r2) continue;  // Too close to call.

    EXPECT_EQ(incircle(a, b, c, d), d2 < r2 ? 1 : -1)
        << "trial " << trial;
    ++checked;
  }
  EXPECT_GT(checked, 400);  // The skip paths must stay rare.
}

}  // namespace
}  // namespace cps::geo
