// Tests for the synthetic GreenOrbs trace and trace IO (trace/*).
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "trace/greenorbs.hpp"
#include "trace/trace_io.hpp"

namespace cps::trace {
namespace {

GreenOrbsConfig small_config() {
  GreenOrbsConfig cfg;
  cfg.gap_count = 5;
  return cfg;
}

TEST(Minutes, Conversion) {
  EXPECT_DOUBLE_EQ(minutes(10, 0), 600.0);
  EXPECT_DOUBLE_EQ(minutes(0, 45), 45.0);
  EXPECT_DOUBLE_EQ(minutes(17, 30), 1050.0);
}

TEST(GreenOrbsField, DeterministicForSeed) {
  const GreenOrbsField a(small_config());
  const GreenOrbsField b(small_config());
  for (int i = 0; i < 50; ++i) {
    const geo::Vec2 p{i * 1.7, i * 2.3};
    EXPECT_DOUBLE_EQ(a.value(p, 600.0), b.value(p, 600.0));
  }
}

TEST(GreenOrbsField, DifferentSeedsDiffer) {
  GreenOrbsConfig c1 = small_config();
  GreenOrbsConfig c2 = small_config();
  c2.seed = 99;
  const GreenOrbsField a(c1);
  const GreenOrbsField b(c2);
  int same = 0;
  for (int i = 0; i < 20; ++i) {
    if (a.value({i * 5.0, i * 4.0}, 600.0) ==
        b.value({i * 5.0, i * 4.0}, 600.0)) {
      ++same;
    }
  }
  EXPECT_LT(same, 3);
}

TEST(GreenOrbsField, DarkBeforeSunriseAfterSunset) {
  const GreenOrbsField f(small_config());
  EXPECT_DOUBLE_EQ(f.value({50.0, 50.0}, minutes(3, 0)), 0.0);
  EXPECT_DOUBLE_EQ(f.value({50.0, 50.0}, minutes(22, 0)), 0.0);
  EXPECT_GT(f.value({50.0, 50.0}, minutes(12, 0)), 0.0);
}

TEST(GreenOrbsField, EnvelopePeaksAtSolarNoon) {
  const GreenOrbsField f(small_config());
  const double noon = (f.config().sunrise + f.config().sunset) / 2.0;
  EXPECT_NEAR(f.envelope(noon), 1.0, 1e-12);
  EXPECT_LT(f.envelope(minutes(8, 0)), 1.0);
  EXPECT_DOUBLE_EQ(f.envelope(f.config().sunrise), 0.0);
}

TEST(GreenOrbsField, NeverNegative) {
  const GreenOrbsField f(small_config());
  for (int i = 0; i < 500; ++i) {
    const geo::Vec2 p{std::fmod(i * 13.7, 100.0), std::fmod(i * 7.1, 100.0)};
    ASSERT_GE(f.value(p, 500.0 + i), 0.0);
  }
}

TEST(GreenOrbsField, HasSpatialStructureAtMidday) {
  const GreenOrbsField f(small_config());
  double lo = 1e9;
  double hi = -1e9;
  for (int i = 0; i <= 20; ++i) {
    for (int j = 0; j <= 20; ++j) {
      const double v = f.value({i * 5.0, j * 5.0}, 600.0);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  EXPECT_GT(hi, 2.0 * std::max(lo, 0.1));  // Bright gaps over dim floor.
}

TEST(GreenOrbsField, TimeVariationIsGradual) {
  const GreenOrbsField f(small_config());
  const geo::Vec2 p{37.0, 61.0};
  const double v0 = f.value(p, 600.0);
  const double v1 = f.value(p, 601.0);   // One minute later.
  const double v60 = f.value(p, 660.0);  // One hour later.
  EXPECT_LT(std::abs(v1 - v0), 0.5);
  // Longer horizons may drift more; just require continuity ordering most
  // of the time, not strictly (flutter can cancel).
  EXPECT_GE(std::abs(v60 - v0) + 1e-9, 0.0);
}

TEST(GreenOrbsField, ConfigValidation) {
  GreenOrbsConfig bad = small_config();
  bad.gap_count = -1;
  EXPECT_THROW(GreenOrbsField{bad}, std::invalid_argument);
  bad = small_config();
  bad.amplitude_max = 0.1;  // Below amplitude_min.
  EXPECT_THROW(GreenOrbsField{bad}, std::invalid_argument);
  bad = small_config();
  bad.sigma_min = 0.0;
  EXPECT_THROW(GreenOrbsField{bad}, std::invalid_argument);
  bad = small_config();
  bad.sunrise = bad.sunset;
  EXPECT_THROW(GreenOrbsField{bad}, std::invalid_argument);
  bad = small_config();
  bad.flutter_fraction = 1.5;
  EXPECT_THROW(GreenOrbsField{bad}, std::invalid_argument);
  bad = small_config();
  bad.region = num::Rect{0.0, 0.0, -1.0, 1.0};
  EXPECT_THROW(GreenOrbsField{bad}, std::invalid_argument);
}

TEST(GreenOrbsField, SnapshotMatchesPointQueries) {
  const GreenOrbsField f(small_config());
  const auto grid = f.snapshot(600.0, 21, 21);
  for (std::size_t i = 0; i < 21; i += 5) {
    for (std::size_t j = 0; j < 21; j += 5) {
      const auto p = grid.sample_position(i, j);
      EXPECT_NEAR(grid.at(i, j), f.value(p, 600.0), 1e-12);
    }
  }
}

TEST(GreenOrbsField, RecordProducesExpectedFrames) {
  const GreenOrbsField f(small_config());
  const auto seq = f.record(600.0, 620.0, 5.0, 11, 11);
  EXPECT_EQ(seq.frame_count(), 5u);  // 600, 605, 610, 615, 620.
  EXPECT_DOUBLE_EQ(seq.first_time(), 600.0);
  EXPECT_DOUBLE_EQ(seq.last_time(), 620.0);
  EXPECT_THROW(f.record(600.0, 620.0, 0.0, 11, 11), std::invalid_argument);
  EXPECT_THROW(f.record(620.0, 600.0, 5.0, 11, 11), std::invalid_argument);
}

TEST(TraceIo, GridRoundTrip) {
  const GreenOrbsField f(small_config());
  const auto grid = f.snapshot(600.0, 13, 9);
  std::stringstream buffer;
  write_grid(buffer, grid);
  const auto loaded = read_grid(buffer);
  EXPECT_EQ(loaded.nx(), grid.nx());
  EXPECT_EQ(loaded.ny(), grid.ny());
  EXPECT_DOUBLE_EQ(loaded.bounds().x1, grid.bounds().x1);
  for (std::size_t j = 0; j < grid.ny(); ++j) {
    for (std::size_t i = 0; i < grid.nx(); ++i) {
      ASSERT_DOUBLE_EQ(loaded.at(i, j), grid.at(i, j));
    }
  }
}

TEST(TraceIo, TraceRoundTrip) {
  const GreenOrbsField f(small_config());
  const auto seq = f.record(600.0, 610.0, 5.0, 7, 7);
  std::stringstream buffer;
  write_trace(buffer, seq);
  const auto loaded = read_trace(buffer);
  ASSERT_EQ(loaded.frame_count(), seq.frame_count());
  for (std::size_t fi = 0; fi < seq.frame_count(); ++fi) {
    ASSERT_DOUBLE_EQ(loaded.timestamp(fi), seq.timestamp(fi));
  }
  // Values survive: spot-check interpolated queries.
  EXPECT_DOUBLE_EQ(loaded.value({33.0, 71.0}, 607.0),
                   seq.value({33.0, 71.0}, 607.0));
}

TEST(TraceIo, MalformedInputsThrow) {
  std::stringstream empty;
  EXPECT_THROW(read_grid(empty), std::runtime_error);

  std::stringstream bad_magic("# nonsense\n");
  EXPECT_THROW(read_grid(bad_magic), std::runtime_error);

  std::stringstream truncated(
      "# cps-grid v1\n# bounds 0 0 1 1\n# shape 3 3\n1,2,3\n");
  EXPECT_THROW(read_grid(truncated), std::runtime_error);

  std::stringstream ragged(
      "# cps-grid v1\n# bounds 0 0 1 1\n# shape 2 2\n1,2\n3\n");
  EXPECT_THROW(read_grid(ragged), std::runtime_error);

  std::stringstream too_wide(
      "# cps-grid v1\n# bounds 0 0 1 1\n# shape 2 2\n1,2,9\n3,4\n");
  EXPECT_THROW(read_grid(too_wide), std::runtime_error);
}

TEST(TraceIo, CrlfFilesRoundTrip) {
  // A trace that passed through a Windows editor or HTTP download gains
  // \r\n line endings; the reader must shrug them off.
  const GreenOrbsField f(small_config());
  const auto seq = f.record(600.0, 610.0, 5.0, 7, 7);
  std::stringstream buffer;
  write_trace(buffer, seq);
  std::string text = buffer.str();
  std::string crlf;
  crlf.reserve(text.size() * 2);
  for (const char c : text) {
    if (c == '\n') crlf += '\r';
    crlf += c;
  }
  std::stringstream converted(crlf);
  const auto loaded = read_trace(converted);
  ASSERT_EQ(loaded.frame_count(), seq.frame_count());
  for (std::size_t fi = 0; fi < seq.frame_count(); ++fi) {
    ASSERT_DOUBLE_EQ(loaded.timestamp(fi), seq.timestamp(fi));
  }
  EXPECT_DOUBLE_EQ(loaded.value({33.0, 71.0}, 607.0),
                   seq.value({33.0, 71.0}, 607.0));
}

TEST(TraceIo, MalformedCellsRejectedWithLocation) {
  // Trailing garbage after a parsable prefix must not be silently
  // truncated, and the error must say where to look.
  std::stringstream garbage(
      "# cps-grid v1\n# bounds 0 0 1 1\n# shape 2 2\n1,2\n3,1.5abc\n");
  try {
    read_grid(garbage);
    FAIL() << "expected malformed-input error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("row 2"), std::string::npos) << what;
    EXPECT_NE(what.find("column 2"), std::string::npos) << what;
  }

  std::stringstream unparsable(
      "# cps-grid v1\n# bounds 0 0 1 1\n# shape 2 2\nx,2\n3,4\n");
  EXPECT_THROW(read_grid(unparsable), std::runtime_error);

  std::stringstream empty_cell(
      "# cps-grid v1\n# bounds 0 0 1 1\n# shape 2 2\n1,\n3,4\n");
  EXPECT_THROW(read_grid(empty_cell), std::runtime_error);

  std::stringstream overflow(
      "# cps-grid v1\n# bounds 0 0 1 1\n# shape 2 2\n1,1e999999\n3,4\n");
  EXPECT_THROW(read_grid(overflow), std::runtime_error);
}

TEST(TraceIo, TruncatedTraceFrameRejected) {
  // Two frames promised, second frame cut off mid-grid.
  std::stringstream truncated(
      "# cps-trace v1\n# bounds 0 0 1 1\n# shape 2 2\n# frames 2\n"
      "# t 600\n1,2\n3,4\n# t 605\n5,6\n");
  EXPECT_THROW(read_trace(truncated), std::runtime_error);
}

TEST(TraceIo, WritersRestoreStreamPrecision) {
  const GreenOrbsField f(small_config());
  const auto grid = f.snapshot(600.0, 5, 5);
  const auto seq = f.record(600.0, 605.0, 5.0, 5, 5);
  std::stringstream out;
  out.precision(6);
  write_grid(out, grid);
  EXPECT_EQ(out.precision(), 6);
  write_trace(out, seq);
  EXPECT_EQ(out.precision(), 6);
  // The payload itself was still written at full double precision: a
  // round-trip through text reproduces the grid exactly.
  std::stringstream buffer;
  buffer.precision(3);
  write_grid(buffer, grid);
  const auto loaded = read_grid(buffer);
  for (std::size_t j = 0; j < grid.ny(); ++j) {
    for (std::size_t i = 0; i < grid.nx(); ++i) {
      ASSERT_DOUBLE_EQ(loaded.at(i, j), grid.at(i, j));
    }
  }
}

TEST(TraceIo, FileRoundTripAndMissingFile) {
  const GreenOrbsField f(small_config());
  const auto grid = f.snapshot(600.0, 5, 5);
  const std::string path = ::testing::TempDir() + "/cps_grid_test.csv";
  write_grid_file(path, grid);
  const auto loaded = read_grid_file(path);
  EXPECT_DOUBLE_EQ(loaded.at(2, 2), grid.at(2, 2));
  EXPECT_THROW(read_grid_file("/nonexistent/dir/file.csv"),
               std::runtime_error);
  EXPECT_THROW(write_grid_file("/nonexistent/dir/file.csv", grid),
               std::runtime_error);
}

}  // namespace
}  // namespace cps::trace
