// Tests for the Coordinated Movement Algorithm simulation (core/cma.hpp).
#include "core/cma.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/planner.hpp"
#include "field/analytic_fields.hpp"
#include "field/time_varying.hpp"

namespace cps::core {
namespace {

const num::Rect kRegion{0.0, 0.0, 100.0, 100.0};

std::shared_ptr<const field::Field> mixture_field() {
  return std::make_shared<field::GaussianMixtureField>(
      0.5, std::vector<field::GaussianBump>{{{30.0, 30.0}, 3.0, 8.0},
                                            {{70.0, 60.0}, 2.5, 10.0}});
}

field::StaticTimeField static_env() {
  return field::StaticTimeField(mixture_field());
}

CmaConfig fast_config() {
  CmaConfig cfg;
  cfg.sample_spacing = 1.0;
  return cfg;
}

// The initial grid is only connected when its pitch is <= Rc; match Rc to
// the pitch of a k-node grid over the 100 x 100 region (k = 100 gives the
// paper's Rc = 10).
CmaConfig config_for_grid(std::size_t k) {
  CmaConfig cfg = fast_config();
  const auto cols = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(k))));
  cfg.rc = 100.0 / static_cast<double>(cols) * 1.001;
  return cfg;
}

TEST(Cma, ConstructionValidation) {
  const auto env = static_env();
  EXPECT_THROW(CmaSimulation(env, kRegion, {}, fast_config()),
               std::invalid_argument);
  EXPECT_THROW(CmaSimulation(env, kRegion, {{200.0, 0.0}}, fast_config()),
               std::invalid_argument);
  CmaConfig bad = fast_config();
  bad.rs = 0.0;
  EXPECT_THROW(CmaSimulation(env, kRegion, {{5.0, 5.0}}, bad),
               std::invalid_argument);
  bad = fast_config();
  bad.dt = 0.0;
  EXPECT_THROW(CmaSimulation(env, kRegion, {{5.0, 5.0}}, bad),
               std::invalid_argument);
}

TEST(Cma, TimeAdvancesBySlot) {
  const auto env = static_env();
  CmaSimulation sim(env, kRegion, GridPlanner::make_grid(kRegion, 16).positions,
                    fast_config(), 600.0);
  EXPECT_DOUBLE_EQ(sim.time(), 600.0);
  sim.step();
  EXPECT_DOUBLE_EQ(sim.time(), 601.0);
  sim.run(4);
  EXPECT_DOUBLE_EQ(sim.time(), 605.0);
}

TEST(Cma, SpeedCapRespected) {
  const auto env = static_env();
  CmaSimulation sim(env, kRegion, GridPlanner::make_grid(kRegion, 25).positions,
                    fast_config());
  for (int i = 0; i < 10; ++i) {
    const auto before = sim.positions();
    sim.step();
    const auto& after = sim.positions();
    for (std::size_t n = 0; n < before.size(); ++n) {
      // v * dt = 1 m per slot (plus a hair of float slack).
      ASSERT_LE(geo::distance(before[n], after[n]), 1.0 + 1e-9);
    }
    EXPECT_LE(sim.last_max_displacement(), 1.0 + 1e-9);
  }
}

TEST(Cma, NodesStayInsideRegion) {
  const auto env = static_env();
  CmaSimulation sim(env, kRegion, GridPlanner::make_grid(kRegion, 36).positions,
                    fast_config());
  sim.run(20);
  for (const auto& p : sim.positions()) {
    EXPECT_TRUE(kRegion.contains(p.x, p.y));
  }
}

TEST(Cma, ConnectivityMaintainedOnStaticField) {
  // The OSTD constraint: the LCM must keep the disk graph connected every
  // slot, starting from the connected grid.
  const auto env = static_env();
  CmaSimulation sim(env, kRegion, GridPlanner::make_grid(kRegion, 49).positions,
                    config_for_grid(49));
  ASSERT_TRUE(sim.is_connected());
  for (int slot = 0; slot < 30; ++slot) {
    sim.step();
    ASSERT_TRUE(sim.is_connected()) << "slot " << slot;
  }
}

TEST(Cma, DeterministicForSeedAndStart) {
  const auto env = static_env();
  const auto init = GridPlanner::make_grid(kRegion, 16).positions;
  CmaSimulation a(env, kRegion, init, fast_config());
  CmaSimulation b(env, kRegion, init, fast_config());
  a.run(10);
  b.run(10);
  EXPECT_EQ(a.positions(), b.positions());
}

TEST(Cma, DeltaImprovesOverTimeOnStaticField) {
  // Fig. 10's qualitative behaviour on a frozen environment: moving toward
  // the curvature-weighted pattern reduces delta versus the initial grid.
  // The redistribution needs a free topology (see LcmMode): the strict
  // invariant pins a taut lattice, which StrictLcmTradesDeltaForSafety
  // checks separately.
  const auto env = static_env();
  const auto init = GridPlanner::make_grid(kRegion, 49).positions;
  CmaConfig cfg = config_for_grid(49);
  cfg.lcm = LcmMode::kOff;
  CmaSimulation sim(env, kRegion, init, cfg);
  const DeltaMetric metric(kRegion, 50);
  const double before = sim.current_delta(metric);
  sim.run(40);
  const double after = sim.current_delta(metric);
  EXPECT_LT(after, before);
}

TEST(Cma, StrictLcmTradesDeltaForSafety) {
  // The strict LCM may sacrifice abstraction quality, but never
  // connectivity; the free-topology run adapts more but fragments.
  const auto env = static_env();
  const auto init = GridPlanner::make_grid(kRegion, 49).positions;
  CmaConfig strict_cfg = config_for_grid(49);
  strict_cfg.lcm = LcmMode::kStrict;
  CmaConfig off_cfg = strict_cfg;
  off_cfg.lcm = LcmMode::kOff;
  CmaSimulation strict_sim(env, kRegion, init, strict_cfg);
  CmaSimulation off_sim(env, kRegion, init, off_cfg);
  const DeltaMetric metric(kRegion, 50);
  for (int slot = 0; slot < 40; ++slot) {
    strict_sim.step();
    off_sim.step();
    ASSERT_TRUE(strict_sim.is_connected()) << "slot " << slot;
  }
  // Free topology adapts at least as well as the constrained one.
  EXPECT_LE(off_sim.current_delta(metric),
            strict_sim.current_delta(metric) * 1.05);
}

TEST(Cma, EventuallySettlesOnStaticField) {
  // On a frozen field the abstraction quality stabilises (Fig. 10's
  // flattening): delta stops changing even though individual nodes may
  // keep micro-adjusting at the speed cap (the force model is undamped).
  const auto env = static_env();
  CmaSimulation sim(env, kRegion, GridPlanner::make_grid(kRegion, 25).positions,
                    config_for_grid(25));
  const DeltaMetric metric(kRegion, 50);
  sim.run(100);
  const double d100 = sim.current_delta(metric);
  sim.run(100);
  const double d200 = sim.current_delta(metric);
  EXPECT_NEAR(d200, d100, 0.15 * d100);
}

TEST(Cma, PaperLcmChasesAndMostlyHoldsTogether) {
  // The literal Fig. 4 rule is best effort: it fires chases and keeps a
  // dominant component, but cannot guarantee a connected graph under
  // concurrent movement (quantified by bench_fig10_delta_vs_time).
  const auto env = static_env();
  CmaConfig cfg = config_for_grid(49);
  cfg.lcm = LcmMode::kPaper;
  CmaSimulation sim(env, kRegion, GridPlanner::make_grid(kRegion, 49).positions,
                    cfg);
  sim.run(30);
  EXPECT_GE(sim.largest_component_fraction(), 0.5);
}

TEST(Cma, LargestComponentFractionIsOneWhenConnected) {
  const auto env = static_env();
  CmaSimulation sim(env, kRegion, GridPlanner::make_grid(kRegion, 100).positions,
                    config_for_grid(100));
  EXPECT_DOUBLE_EQ(sim.largest_component_fraction(), 1.0);
}

TEST(Cma, SenseAtNodesMatchesEnvironment) {
  const auto env = static_env();
  CmaSimulation sim(env, kRegion, GridPlanner::make_grid(kRegion, 9).positions,
                    fast_config(), 0.0);
  const auto samples = sim.sense_at_nodes();
  ASSERT_EQ(samples.size(), 9u);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(samples[i].position, sim.positions()[i]);
    EXPECT_DOUBLE_EQ(samples[i].z, env.value(samples[i].position, 0.0));
  }
}

TEST(Cma, ForcesExposedPerNode) {
  const auto env = static_env();
  CmaSimulation sim(env, kRegion, GridPlanner::make_grid(kRegion, 9).positions,
                    fast_config());
  sim.step();
  EXPECT_EQ(sim.last_forces().size(), 9u);
}

TEST(Cma, TimeVaryingEnvironmentTracksChange) {
  // A bump that jumps across the region between t=0 and t=60: nodes keep
  // maintaining connectivity and stay in-region while re-adapting.
  const field::AnalyticTimeField env([](double x, double y, double t) {
    const double cx = t < 30.0 ? 25.0 : 75.0;
    const double dx = x - cx;
    const double dy = y - 50.0;
    return 3.0 * std::exp(-(dx * dx + dy * dy) / 200.0);
  });
  CmaSimulation sim(env, kRegion, GridPlanner::make_grid(kRegion, 36).positions,
                    config_for_grid(36));
  for (int slot = 0; slot < 60; ++slot) {
    sim.step();
    ASSERT_TRUE(sim.is_connected()) << "slot " << slot;
  }
  for (const auto& p : sim.positions()) {
    EXPECT_TRUE(kRegion.contains(p.x, p.y));
  }
}

TEST(Cma, LossyRadioStillKeepsNetworkTogether) {
  CmaConfig cfg = config_for_grid(25);
  cfg.packet_loss = 0.2;
  const auto env = static_env();
  CmaSimulation sim(env, kRegion, GridPlanner::make_grid(kRegion, 25).positions,
                    cfg);
  sim.run(25);
  EXPECT_TRUE(sim.is_connected());
}

// Property sweep: connectivity invariant across node counts.
class CmaConnectivitySweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CmaConnectivitySweep, StaysConnected) {
  const auto env = static_env();
  CmaSimulation sim(env, kRegion,
                    GridPlanner::make_grid(kRegion, GetParam()).positions,
                    config_for_grid(GetParam()));
  for (int slot = 0; slot < 20; ++slot) {
    sim.step();
    ASSERT_TRUE(sim.is_connected())
        << "k=" << GetParam() << " slot=" << slot;
  }
}

INSTANTIATE_TEST_SUITE_P(NodeCounts, CmaConnectivitySweep,
                         ::testing::Values(9u, 16u, 36u, 64u, 100u));

}  // namespace
}  // namespace cps::core
