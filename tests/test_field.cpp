// Tests for environment models (field/*).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "field/analytic_fields.hpp"
#include "field/field.hpp"
#include "field/field_ops.hpp"
#include "field/grid_field.hpp"
#include "field/time_varying.hpp"

namespace cps::field {
namespace {

const num::Rect kRegion{0.0, 0.0, 100.0, 100.0};

TEST(AnalyticField, WrapsCallable) {
  const AnalyticField f([](double x, double y) { return x * y; });
  EXPECT_DOUBLE_EQ(f.value(3.0, 4.0), 12.0);
  EXPECT_DOUBLE_EQ(f.value({2.0, 5.0}), 10.0);
}

TEST(AnalyticField, EmptyCallableThrows) {
  EXPECT_THROW(AnalyticField(std::function<double(double, double)>{}),
               std::invalid_argument);
}

TEST(ConstantField, IsConstant) {
  const ConstantField f(2.5);
  EXPECT_DOUBLE_EQ(f.value(0.0, 0.0), 2.5);
  EXPECT_DOUBLE_EQ(f.value(1e6, -1e6), 2.5);
}

TEST(PlaneField, MatchesFormula) {
  const PlaneField f(1.0, 2.0, -3.0);
  EXPECT_DOUBLE_EQ(f.value(0.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(f.value(1.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(f.value(2.0, 0.5), 3.5);
}

TEST(QuadricField, CenteredQuadric) {
  const QuadricField f({10.0, 20.0}, 1.0, 0.5, -2.0);
  EXPECT_DOUBLE_EQ(f.value(10.0, 20.0), 0.0);  // Zero at centre.
  // At offset (1, 2): 1 + 0.5*2 - 2*4 = -6.
  EXPECT_DOUBLE_EQ(f.value(11.0, 22.0), -6.0);
}

TEST(PeaksField, NativeFormulaLandmarks) {
  // peaks(0, 0) = 3*exp(-1) - 0*... - (1/3)exp(-1) = (8/3) e^-1.
  EXPECT_NEAR(PeaksField::peaks(0.0, 0.0),
              3.0 * std::exp(-1.0) - (1.0 / 3.0) * std::exp(-1.0), 1e-12);
  // Far from the origin everything decays to ~0.
  EXPECT_NEAR(PeaksField::peaks(3.0, 3.0), 0.0, 1e-4);
}

TEST(PeaksField, DomainMappingCoversNativeRange) {
  const PeaksField f(kRegion);
  // Centre of the region maps to native (0, 0).
  EXPECT_NEAR(f.value(50.0, 50.0), PeaksField::peaks(0.0, 0.0), 1e-12);
  // Corner maps to native (-3, -3).
  EXPECT_NEAR(f.value(0.0, 0.0), PeaksField::peaks(-3.0, -3.0), 1e-12);
}

TEST(PeaksField, HasRealRelief) {
  const PeaksField f(kRegion);
  double lo = 1e9;
  double hi = -1e9;
  for (int i = 0; i <= 50; ++i) {
    for (int j = 0; j <= 50; ++j) {
      const double v = f.value(i * 2.0, j * 2.0);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  EXPECT_GT(hi, 5.0);   // Matlab peaks tops out around 8.1.
  EXPECT_LT(lo, -4.0);  // ... and bottoms around -6.5.
}

TEST(PeaksField, EmptyDomainThrows) {
  EXPECT_THROW(PeaksField(num::Rect{0.0, 0.0, 0.0, 1.0}),
               std::invalid_argument);
}

TEST(GaussianMixtureField, BaseAndBump) {
  const GaussianMixtureField f(1.0, {{{50.0, 50.0}, 2.0, 10.0}});
  EXPECT_NEAR(f.value(50.0, 50.0), 3.0, 1e-12);  // base + amplitude.
  // One sigma away: base + amplitude * exp(-1/2).
  EXPECT_NEAR(f.value(60.0, 50.0), 1.0 + 2.0 * std::exp(-0.5), 1e-12);
  // Far away: just base.
  EXPECT_NEAR(f.value(0.0, 0.0), 1.0, 1e-4);
}

TEST(GaussianMixtureField, InvalidSigmaThrows) {
  EXPECT_THROW(GaussianMixtureField(0.0, {{{0.0, 0.0}, 1.0, 0.0}}),
               std::invalid_argument);
}

TEST(GridField, ConstructionValidation) {
  EXPECT_THROW(GridField(kRegion, 1, 5), std::invalid_argument);
  EXPECT_THROW(GridField(num::Rect{0.0, 0.0, 0.0, 1.0}, 3, 3),
               std::invalid_argument);
  EXPECT_THROW(GridField(kRegion, 3, 3, std::vector<double>(8)),
               std::invalid_argument);
}

TEST(GridField, SamplePositionsSpanBounds) {
  const GridField g(kRegion, 11, 11);
  EXPECT_EQ(g.sample_position(0, 0), geo::Vec2(0.0, 0.0));
  EXPECT_EQ(g.sample_position(10, 10), geo::Vec2(100.0, 100.0));
  EXPECT_EQ(g.sample_position(5, 0), geo::Vec2(50.0, 0.0));
}

TEST(GridField, ValueExactAtSamplePoints) {
  const PlaneField plane(0.5, 0.1, -0.2);
  const GridField g = GridField::sample(plane, kRegion, 21, 21);
  for (std::size_t i = 0; i < 21; i += 4) {
    for (std::size_t j = 0; j < 21; j += 4) {
      const auto p = g.sample_position(i, j);
      EXPECT_NEAR(g.value(p), plane.value(p), 1e-12);
    }
  }
}

TEST(GridField, BilinearExactOnBilinearFunction) {
  // f = 2 + x + 3y + 0.05xy is bilinear: interpolation must be exact
  // everywhere, not only at samples.
  const AnalyticField f(
      [](double x, double y) { return 2.0 + x + 3.0 * y + 0.05 * x * y; });
  const GridField g = GridField::sample(f, kRegion, 26, 26);
  for (double x = 0.0; x <= 100.0; x += 7.3) {
    for (double y = 0.0; y <= 100.0; y += 9.1) {
      EXPECT_NEAR(g.value(x, y), f.value(x, y), 1e-9);
    }
  }
}

TEST(GridField, ClampsOutsideQueries) {
  const PlaneField plane(0.0, 1.0, 0.0);
  const GridField g = GridField::sample(plane, kRegion, 11, 11);
  EXPECT_NEAR(g.value(-5.0, 50.0), 0.0, 1e-12);    // Clamped to x = 0.
  EXPECT_NEAR(g.value(120.0, 50.0), 100.0, 1e-12);  // Clamped to x = 100.
}

TEST(GridField, SmallestGridInterpolatesEverywhere) {
  // A 2x2 grid has a single bilinear cell; every query lands in it and
  // the row kernel's i0 = min(cx, nx - 2) clamp must keep indices valid.
  const AnalyticField f(
      [](double x, double y) { return 1.0 + 0.02 * x - 0.01 * y; });
  const GridField g = GridField::sample(f, kRegion, 2, 2);
  for (double x = 0.0; x <= 100.0; x += 12.5) {
    for (double y = 0.0; y <= 100.0; y += 12.5) {
      EXPECT_NEAR(g.value(x, y), f.value(x, y), 1e-12);
    }
  }
}

TEST(GridField, BoundaryRowsAndColumnsMatchSamples) {
  // Queries exactly on the first/last grid row and column hit the weight
  // degeneracies tx = 0, ty = 0 and the cx = nx - 1 / cy = ny - 1 clamps;
  // they must reproduce the stored samples bit for bit.  Spacings of 10
  // and 25 are exactly representable, so the lattice arithmetic
  // round-trips and the interpolation weights are exact.
  const PeaksField relief(kRegion);
  const GridField g = GridField::sample(relief, kRegion, 11, 5);
  for (std::size_t i = 0; i < 11; ++i) {
    EXPECT_EQ(g.value(g.sample_position(i, 0)), g.at(i, 0)) << "bottom " << i;
    EXPECT_EQ(g.value(g.sample_position(i, 4)), g.at(i, 4)) << "top " << i;
  }
  for (std::size_t j = 0; j < 5; ++j) {
    EXPECT_EQ(g.value(g.sample_position(0, j)), g.at(0, j)) << "left " << j;
    EXPECT_EQ(g.value(g.sample_position(10, j)), g.at(10, j))
        << "right " << j;
  }
}

TEST(GridField, MinMaxAndSetters) {
  GridField g(kRegion, 3, 3);
  g.set(1, 2, 5.0);
  g.set(0, 0, -2.0);
  EXPECT_DOUBLE_EQ(g.at(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(g.min_value(), -2.0);
  EXPECT_DOUBLE_EQ(g.max_value(), 5.0);
  EXPECT_THROW(g.at(3, 0), std::out_of_range);
  EXPECT_THROW(g.set(0, 3, 0.0), std::out_of_range);
}

TEST(FieldOps, SumScaledTranslatedClamped) {
  const auto a = std::make_shared<ConstantField>(2.0);
  const auto b = std::make_shared<PlaneField>(0.0, 1.0, 0.0);
  const SumField sum(a, b);
  EXPECT_DOUBLE_EQ(sum.value(3.0, 0.0), 5.0);

  const ScaledField scaled(b, 2.0, 1.0);
  EXPECT_DOUBLE_EQ(scaled.value(3.0, 0.0), 7.0);

  const TranslatedField shifted(b, {10.0, 0.0});
  EXPECT_DOUBLE_EQ(shifted.value(3.0, 0.0), -7.0);  // Evaluates at x - 10.

  const ClampedField clamped(b, 0.0, 2.5);
  EXPECT_DOUBLE_EQ(clamped.value(10.0, 0.0), 2.5);
  EXPECT_DOUBLE_EQ(clamped.value(-5.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(clamped.value(1.0, 0.0), 1.0);
}

TEST(FieldOps, NullOperandsThrow) {
  const auto ok = std::make_shared<ConstantField>(0.0);
  EXPECT_THROW(SumField(nullptr, ok), std::invalid_argument);
  EXPECT_THROW(ScaledField(nullptr, 1.0), std::invalid_argument);
  EXPECT_THROW(TranslatedField(nullptr, {}), std::invalid_argument);
  EXPECT_THROW(ClampedField(nullptr, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(ClampedField(ok, 2.0, 1.0), std::invalid_argument);
}

TEST(FieldSlice, FreezesTime) {
  const AnalyticTimeField tv(
      [](double x, double, double t) { return x + 10.0 * t; });
  const FieldSlice at2(tv, 2.0);
  EXPECT_DOUBLE_EQ(at2.value(1.0, 0.0), 21.0);
  EXPECT_DOUBLE_EQ(at2.time(), 2.0);
}

TEST(AnalyticTimeField, Validation) {
  EXPECT_THROW(
      AnalyticTimeField(std::function<double(double, double, double)>{}),
      std::invalid_argument);
}

TEST(StaticTimeField, IgnoresTime) {
  const StaticTimeField f(std::make_shared<ConstantField>(4.0));
  EXPECT_DOUBLE_EQ(f.value({0.0, 0.0}, 0.0), 4.0);
  EXPECT_DOUBLE_EQ(f.value({0.0, 0.0}, 1e6), 4.0);
  EXPECT_THROW(StaticTimeField(nullptr), std::invalid_argument);
}

TEST(FrameSequenceField, LinearInTime) {
  std::vector<GridField> frames{
      GridField::sample(ConstantField(0.0), kRegion, 3, 3),
      GridField::sample(ConstantField(10.0), kRegion, 3, 3)};
  const FrameSequenceField seq(std::move(frames), {0.0, 10.0});
  EXPECT_DOUBLE_EQ(seq.value({50.0, 50.0}, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(seq.value({50.0, 50.0}, 10.0), 10.0);
  EXPECT_DOUBLE_EQ(seq.value({50.0, 50.0}, 2.5), 2.5);
  EXPECT_DOUBLE_EQ(seq.value({50.0, 50.0}, 7.5), 7.5);
}

TEST(FrameSequenceField, ClampsOutsideTimeRange) {
  std::vector<GridField> frames{
      GridField::sample(ConstantField(1.0), kRegion, 3, 3),
      GridField::sample(ConstantField(2.0), kRegion, 3, 3)};
  const FrameSequenceField seq(std::move(frames), {5.0, 6.0});
  EXPECT_DOUBLE_EQ(seq.value({0.0, 0.0}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(seq.value({0.0, 0.0}, 100.0), 2.0);
}

TEST(FrameSequenceField, SingleFrameIsStatic) {
  std::vector<GridField> frames{
      GridField::sample(ConstantField(3.0), kRegion, 3, 3)};
  const FrameSequenceField seq(std::move(frames), {0.0});
  EXPECT_DOUBLE_EQ(seq.value({1.0, 1.0}, -5.0), 3.0);
  EXPECT_DOUBLE_EQ(seq.value({1.0, 1.0}, 5.0), 3.0);
}

TEST(FrameSequenceField, Validation) {
  std::vector<GridField> two{
      GridField::sample(ConstantField(0.0), kRegion, 3, 3),
      GridField::sample(ConstantField(0.0), kRegion, 3, 3)};
  EXPECT_THROW(FrameSequenceField({}, {}), std::invalid_argument);
  EXPECT_THROW(FrameSequenceField(two, {0.0}), std::invalid_argument);
  auto frames = two;
  EXPECT_THROW(FrameSequenceField(std::move(frames), {1.0, 1.0}),
               std::invalid_argument);
  std::vector<GridField> mismatched{
      GridField::sample(ConstantField(0.0), kRegion, 3, 3),
      GridField::sample(ConstantField(0.0), kRegion, 4, 4)};
  EXPECT_THROW(FrameSequenceField(std::move(mismatched), {0.0, 1.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace cps::field
