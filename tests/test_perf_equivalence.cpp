// Bit-identity tests for the fast paths introduced by the perf PRs:
//
//  * FRA's indexed decrease-key heap engine vs the full lattice scan,
//    across every deterministic SelectionMeasure, both foresight modes,
//    and k from 10 to 2000 on fig5/fig6-style configs — including the
//    parked-entry affordability protocol and the storm-compaction
//    (flat-scan / Floyd-rebuild) transitions;
//  * the grid-pruned MessageBus vs the all-pairs probe, for all three
//    link models, under mid-run churn, at 1 and 4 worker threads;
//  * the per-model no-draw pruning contract the grid path relies on;
//  * a hard-coded golden for SelectionMeasure::kRandom pinning the
//    incremental free-list to the draw schedule of the original
//    rebuild-the-pool implementation (seed stability).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/cma.hpp"
#include "core/fra.hpp"
#include "field/analytic_fields.hpp"
#include "field/time_varying.hpp"
#include "net/fault.hpp"
#include "net/link_model.hpp"
#include "net/message_bus.hpp"
#include "obs/obs.hpp"
#include "parallel/thread_pool.hpp"

namespace cps {
namespace {

const num::Rect kRegion{0.0, 0.0, 100.0, 100.0};
constexpr double kRc = 10.0;

// --- FRA: heap engine vs scan engine -------------------------------------

/// A fig5/fig6-like reference surface: smooth trend plus sharp plateaus,
/// so local error, curvature, and their product all rank candidates
/// non-trivially.
field::AnalyticField reference_surface() {
  return field::AnalyticField([](double x, double y) {
    return 10.0 + 0.05 * x * y / 100.0 + 3.0 * (x > 40 && x < 60) +
           2.0 * (y > 20 && y < 50);
  });
}

core::FraResult plan_with_engine(core::SelectionEngine engine,
                                 core::SelectionMeasure measure,
                                 bool foresight, std::size_t k) {
  core::FraConfig cfg;  // error_grid = 100, the paper's lattice.
  cfg.selection_engine = engine;
  cfg.measure = measure;
  cfg.foresight = foresight;
  const auto f = reference_surface();
  return core::FraPlanner(cfg).plan_detailed(
      f, core::PlanRequest{kRegion, k, kRc});
}

void expect_identical(const core::FraResult& a, const core::FraResult& b) {
  ASSERT_EQ(a.steps.size(), b.steps.size());
  EXPECT_EQ(a.relay_count, b.relay_count);
  for (std::size_t i = 0; i < a.steps.size(); ++i) {
    // Exact equality: the engines must make the same choice, not merely
    // equally good ones.
    EXPECT_EQ(a.steps[i].position.x, b.steps[i].position.x) << "step " << i;
    EXPECT_EQ(a.steps[i].position.y, b.steps[i].position.y) << "step " << i;
    EXPECT_EQ(a.steps[i].score, b.steps[i].score) << "step " << i;
    EXPECT_EQ(a.steps[i].relay, b.steps[i].relay) << "step " << i;
  }
  ASSERT_EQ(a.deployment.positions.size(), b.deployment.positions.size());
  for (std::size_t i = 0; i < a.deployment.positions.size(); ++i) {
    EXPECT_EQ(a.deployment.positions[i].x, b.deployment.positions[i].x);
    EXPECT_EQ(a.deployment.positions[i].y, b.deployment.positions[i].y);
  }
}

TEST(FraEngineEquivalence, HeapMatchesScanAcrossMeasuresAndForesight) {
  using core::SelectionMeasure;
  for (const SelectionMeasure measure :
       {SelectionMeasure::kLocalError, SelectionMeasure::kCurvature,
        SelectionMeasure::kProduct}) {
    for (const bool foresight : {true, false}) {
      for (const std::size_t k : {std::size_t{30}, std::size_t{100}}) {
        SCOPED_TRACE("measure=" + std::to_string(static_cast<int>(measure)) +
                     " foresight=" + std::to_string(foresight) +
                     " k=" + std::to_string(k));
        expect_identical(plan_with_engine(core::SelectionEngine::kHeap,
                                          measure, foresight, k),
                         plan_with_engine(core::SelectionEngine::kScan,
                                          measure, foresight, k));
      }
    }
  }
}

TEST(FraEngineEquivalence, HeapMatchesScanAcrossKRange) {
  // The k sweep the indexed engine has to win everywhere: small plans
  // where the lazy-deletion heap used to lose to the scan, the paper's
  // canonical k = 100, and the large-k regime the heap was built for.
  // Identity is the acceptance bar; speed is gated by bench_perf.
  for (const std::size_t k :
       {std::size_t{10}, std::size_t{100}, std::size_t{500},
        std::size_t{2000}}) {
    SCOPED_TRACE("k=" + std::to_string(k));
    expect_identical(
        plan_with_engine(core::SelectionEngine::kHeap,
                         core::SelectionMeasure::kProduct, true, k),
        plan_with_engine(core::SelectionEngine::kScan,
                         core::SelectionMeasure::kProduct, true, k));
  }
}

TEST(FraEngineEquivalence, ParkedEntriesAreRestoredAcrossIterations) {
  // A tight relay budget (rc = 6, k = 30, foresight on) makes the heap's
  // top pops unaffordable in some iterations: those entries are parked
  // and must be re-inserted after the selection, or they would vanish
  // from later iterations where the budget would have admitted them.
  core::FraConfig cfg;
  cfg.foresight = true;
  const auto f = reference_surface();
  const core::PlanRequest request{kRegion, 30, 6.0};

  obs::set_enabled(true);
  obs::registry().reset();
  cfg.selection_engine = core::SelectionEngine::kHeap;
  const auto heap = core::FraPlanner(cfg).plan_detailed(f, request);
  const auto parked =
      obs::registry().counter("core.fra.heap_parked").value();
  cfg.selection_engine = core::SelectionEngine::kScan;
  const auto scan = core::FraPlanner(cfg).plan_detailed(f, request);

  // The config must actually exercise the parking protocol, and the
  // restore must keep the heap bit-identical to the affordability-aware
  // scan oracle.
  EXPECT_GT(parked, 0u);
  expect_identical(heap, scan);
}

TEST(FraEngineEquivalence, StormCompactionSurvivesRebucketFlood) {
  // Early k = 100 iterations on a coarse triangulation rebucket most of
  // the lattice per insert: displacement crosses the storm threshold, the
  // heap drops to flat argmax scans, and once inserts displace little it
  // compacts back via a Floyd rebuild.  Both transitions must happen and
  // neither may perturb a single selection.
  core::FraConfig cfg;
  cfg.foresight = true;
  const auto f = reference_surface();
  const core::PlanRequest request{kRegion, 100, kRc};

  obs::set_enabled(true);
  obs::registry().reset();
  cfg.selection_engine = core::SelectionEngine::kHeap;
  const auto heap = core::FraPlanner(cfg).plan_detailed(f, request);
  const auto flat_scans =
      obs::registry().counter("core.fra.heap_flat_scans").value();
  const auto rebuilds =
      obs::registry().counter("core.fra.heap_rebuilds").value();
  const auto stale =
      obs::registry().counter("core.fra.heap_stale_pops").value();
  cfg.selection_engine = core::SelectionEngine::kScan;
  const auto scan = core::FraPlanner(cfg).plan_detailed(f, request);

  EXPECT_GT(flat_scans, 0u);   // Storm mode engaged...
  EXPECT_GT(rebuilds, 0u);     // ...and compacted back out of it.
  EXPECT_EQ(stale, 0u);        // Indexed heap: stale pops are impossible.
  expect_identical(heap, scan);
}

TEST(FraEngineEquivalence, RandomMeasureIgnoresEngine) {
  // kRandom has its own incremental free-list; the engine knob must not
  // perturb its draw schedule.
  expect_identical(plan_with_engine(core::SelectionEngine::kHeap,
                                    core::SelectionMeasure::kRandom, true, 40),
                   plan_with_engine(core::SelectionEngine::kScan,
                                    core::SelectionMeasure::kRandom, true, 40));
}

// --- FRA: kRandom golden (seed stability across the free-list rewrite) ---

struct GoldenStep {
  double x, y;
  int relay;
};

core::FraResult plan_random_golden(bool foresight) {
  core::FraConfig cfg;
  cfg.error_grid = 40;
  cfg.measure = core::SelectionMeasure::kRandom;
  cfg.foresight = foresight;
  cfg.seed = 2026;
  const auto f = reference_surface();
  return core::FraPlanner(cfg).plan_detailed(
      f, core::PlanRequest{kRegion, 25, kRc});
}

void expect_matches_golden(const core::FraResult& result,
                           const std::vector<GoldenStep>& golden) {
  ASSERT_EQ(result.steps.size(), golden.size());
  for (std::size_t i = 0; i < golden.size(); ++i) {
    EXPECT_EQ(result.steps[i].position.x, golden[i].x) << "step " << i;
    EXPECT_EQ(result.steps[i].position.y, golden[i].y) << "step " << i;
    EXPECT_EQ(result.steps[i].relay, golden[i].relay != 0) << "step " << i;
  }
}

// Captured from the pre-heap implementation (rebuild-the-unused-pool every
// iteration) at error_grid = 40, seed = 2026, k = 25: the incremental
// free-list must reproduce this draw schedule exactly.
TEST(FraRandomGolden, ForesightOnSequenceIsStable) {
  const std::vector<GoldenStep> golden = {
      {100.00000000000001, 33.333333333333336, 0},
      {76.923076923076934, 94.871794871794876, 0},
      {0, 10.256410256410257, 0},
      {46.15384615384616, 23.07692307692308, 0},
      {89.743589743589752, 92.307692307692321, 0},
      {51.282051282051285, 92.307692307692321, 0},
      {38.461538461538467, 23.07692307692308, 0},
      {53.846153846153854, 87.179487179487182, 0},
      {91.025641025641036, 31.623931623931625, 1},
      {82.051282051282072, 29.914529914529918, 1},
      {73.076923076923094, 28.205128205128208, 1},
      {64.102564102564116, 26.495726495726501, 1},
      {55.128205128205131, 24.786324786324791, 1},
      {30.769230769230774, 20.512820512820515, 1},
      {23.07692307692308, 17.948717948717949, 1},
      {15.384615384615387, 15.384615384615387, 1},
      {7.6923076923076934, 12.820512820512821, 1},
      {98.290598290598297, 43.162393162393165, 1},
      {96.581196581196593, 52.991452991452995, 1},
      {94.87179487179489, 62.820512820512832, 1},
      {93.162393162393172, 72.649572649572661, 1},
      {91.452991452991455, 82.478632478632491, 1},
      {83.333333333333343, 93.589743589743591, 1},
      {69.230769230769241, 92.307692307692307, 1},
      {61.538461538461547, 89.743589743589752, 1},
  };
  const auto result = plan_random_golden(/*foresight=*/true);
  EXPECT_EQ(result.relay_count, 17u);
  expect_matches_golden(result, golden);
}

TEST(FraRandomGolden, ForesightOffSequenceIsStable) {
  const std::vector<GoldenStep> golden = {
      {100.00000000000001, 33.333333333333336, 0},
      {76.923076923076934, 94.871794871794876, 0},
      {0, 10.256410256410257, 0},
      {23.07692307692308, 56.410256410256416, 0},
      {79.487179487179489, 56.410256410256416, 0},
      {66.666666666666671, 61.538461538461547, 0},
      {100.00000000000001, 84.615384615384627, 0},
      {53.846153846153854, 61.538461538461547, 0},
      {97.435897435897445, 10.256410256410257, 0},
      {84.615384615384627, 84.615384615384627, 0},
      {10.256410256410257, 0, 0},
      {10.256410256410257, 5.1282051282051286, 0},
      {7.6923076923076934, 76.923076923076934, 0},
      {100.00000000000001, 17.948717948717949, 0},
      {48.717948717948723, 61.538461538461547, 0},
      {56.410256410256416, 61.538461538461547, 0},
      {7.6923076923076934, 58.974358974358978, 0},
      {43.589743589743591, 87.179487179487182, 0},
      {66.666666666666671, 71.794871794871796, 0},
      {71.794871794871796, 92.307692307692321, 0},
      {100.00000000000001, 61.538461538461547, 0},
      {71.794871794871796, 87.179487179487182, 0},
      {2.5641025641025643, 5.1282051282051286, 0},
      {89.743589743589752, 41.025641025641029, 0},
      {46.15384615384616, 43.589743589743591, 0},
  };
  const auto result = plan_random_golden(/*foresight=*/false);
  EXPECT_EQ(result.relay_count, 0u);
  expect_matches_golden(result, golden);
}

// --- MessageBus: grid-pruned vs all-pairs delivery ------------------------

std::unique_ptr<net::LinkModel> make_link(const std::string& model,
                                          double rc, std::uint64_t seed) {
  if (model == "disk") return std::make_unique<net::DiskLink>(rc, 0.3, seed);
  if (model == "distloss")
    return std::make_unique<net::DistanceLossLink>(rc, 0.8, 2.0, seed);
  return std::make_unique<net::GilbertElliottLink>(
      rc, net::GilbertElliottLink::Params{}, seed);
}

field::StaticTimeField cma_env() {
  return field::StaticTimeField(std::make_shared<field::AnalyticField>(
      [](double x, double y) {
        return 10.0 + 0.05 * x * y / 100.0 + 3.0 * (x > 40 && x < 60) +
               2.0 * (y > 20 && y < 50);
      }));
}

struct CmaRun {
  std::vector<geo::Vec2> positions;
  std::uint64_t deliveries = 0;
  std::uint64_t failures = 0;
  std::uint64_t sent = 0;
};

/// Runs CMA under a PR 3-style churn schedule with the given bus mode and
/// link model, returning trajectories plus the delivery counters.
CmaRun run_cma(const std::string& model, net::DeliveryMode mode) {
  const auto env = cma_env();
  core::CmaConfig cfg;
  cfg.rc = kRc * 1.0001;
  cfg.lcm = core::LcmMode::kPaper;
  const std::size_t n = 80;
  core::CmaSimulation sim(
      env, kRegion, core::GridPlanner::make_grid(kRegion, n).positions, cfg);
  sim.set_link_model(make_link(model, cfg.rc, /*seed=*/17));
  sim.set_delivery_mode(mode);
  sim.set_fault_schedule(
      net::FaultSchedule::random_deaths(n, 0.3, 2, 15, /*seed=*/5));

  obs::set_enabled(true);
  obs::registry().reset();
  sim.run(25);

  CmaRun out;
  out.positions = sim.positions();
  out.deliveries = obs::registry().counter("net.bus.deliveries").value();
  out.failures =
      obs::registry().counter("net.bus.delivery_failures").value();
  out.sent = obs::registry().counter("net.bus.messages_sent").value();
  return out;
}

void expect_same_run(const CmaRun& grid, const CmaRun& full) {
  EXPECT_EQ(grid.deliveries, full.deliveries);
  EXPECT_EQ(grid.failures, full.failures);
  EXPECT_EQ(grid.sent, full.sent);
  ASSERT_EQ(grid.positions.size(), full.positions.size());
  for (std::size_t i = 0; i < grid.positions.size(); ++i) {
    EXPECT_EQ(grid.positions[i].x, full.positions[i].x) << "node " << i;
    EXPECT_EQ(grid.positions[i].y, full.positions[i].y) << "node " << i;
  }
}

TEST(BusDeliveryEquivalence, GridMatchesFullUnderChurnAllModels) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    par::set_thread_count(threads);
    for (const std::string model : {"disk", "distloss", "gilbert"}) {
      SCOPED_TRACE("threads=" + std::to_string(threads) + " model=" + model);
      expect_same_run(run_cma(model, net::DeliveryMode::kGrid),
                      run_cma(model, net::DeliveryMode::kFull));
    }
  }
  par::set_thread_count(1);
}

TEST(BusDeliveryEquivalence, NeighborsOfMatchesFullAfterChurn) {
  net::MessageBus<int> grid_bus(30, net::DiskRadio(kRc, 0.0, 1));
  net::MessageBus<int> full_bus(30, net::DiskRadio(kRc, 0.0, 1));
  grid_bus.set_delivery_mode(net::DeliveryMode::kGrid);
  full_bus.set_delivery_mode(net::DeliveryMode::kFull);
  for (std::size_t i = 0; i < 30; ++i) {
    const geo::Vec2 p{static_cast<double>((i * 37) % 100),
                      static_cast<double>((i * 61) % 100)};
    grid_bus.set_position(i, p);
    full_bus.set_position(i, p);
  }
  for (const std::size_t dead : {std::size_t{3}, std::size_t{11}}) {
    grid_bus.set_alive(dead, false);
    full_bus.set_alive(dead, false);
  }
  for (std::size_t i = 0; i < 30; ++i) {
    EXPECT_EQ(grid_bus.neighbors_of(i), full_bus.neighbors_of(i))
        << "node " << i;
  }
}

// --- LinkModel: the no-draw pruning contract ------------------------------

TEST(LinkModelContract, MaxRangeCoversRadius) {
  for (const std::string model : {"disk", "distloss", "gilbert"}) {
    const auto link = make_link(model, kRc, 1);
    EXPECT_GE(link->max_range(), link->radius()) << model;
  }
}

// Two equal-seeded copies of each model run the same in-range attempt
// sequence, but one is additionally peppered with out-of-range attempts.
// If transmit() consumed randomness (or advanced per-link state) on an
// out-of-range pair, the in-range outcome streams would diverge — and the
// grid-pruned bus would not be bit-identical to the all-pairs probe.
TEST(LinkModelContract, OutOfRangeAttemptsConsumeNoRandomness) {
  for (const std::string model : {"disk", "distloss", "gilbert"}) {
    SCOPED_TRACE(model);
    const auto pruned = make_link(model, kRc, /*seed=*/42);
    const auto peppered = make_link(model, kRc, /*seed=*/42);
    const geo::Vec2 origin{0.0, 0.0};
    const geo::Vec2 far{kRc * 3.0, 0.0};
    for (int i = 0; i < 200; ++i) {
      // Cycle through in-range distances and several directed links so
      // per-link state (Gilbert-Elliott) is exercised too.
      const geo::Vec2 to{0.5 + (i % 19) * 0.5, 0.0};
      const net::NodeId a = i % 3;
      const net::NodeId b = 3 + i % 4;
      EXPECT_FALSE(peppered->transmit(a, b, origin, far)) << "attempt " << i;
      EXPECT_EQ(pruned->transmit(a, b, origin, to),
                peppered->transmit(a, b, origin, to))
          << "attempt " << i;
    }
  }
}

}  // namespace
}  // namespace cps
