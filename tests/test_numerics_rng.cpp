// Tests for the deterministic RNG (numerics/rng.hpp).
#include "numerics/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace cps::num {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ZeroSeedIsValid) {
  Rng r(0);
  EXPECT_NE(r.next_u64(), 0u);  // Must not be stuck in the all-zero state.
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-5.0, 3.0);
    ASSERT_GE(u, -5.0);
    ASSERT_LT(u, 3.0);
  }
}

TEST(Rng, UniformDegenerateRangeReturnsLo) {
  Rng r(7);
  EXPECT_DOUBLE_EQ(r.uniform(2.5, 2.5), 2.5);
}

TEST(Rng, UniformMeanIsCentered) {
  Rng r(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng r(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(2, 5);
    ASSERT_GE(v, 2);
    ASSERT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // All of 2, 3, 4, 5 should appear.
}

TEST(Rng, UniformIntSingleton) {
  Rng r(13);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.uniform_int(9, 9), 9);
}

TEST(Rng, NormalMomentsMatch) {
  Rng r(17);
  const int n = 100000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, NormalScaledMoments) {
  Rng r(19);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += r.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng r(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (r.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliExtremes) {
  Rng r(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent(31);
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng r(37);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  auto sorted = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleActuallyShuffles) {
  Rng r(41);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  const auto before = v;
  r.shuffle(v);
  EXPECT_NE(v, before);
}

TEST(Rng, ShuffleHandlesEmptyAndSingle) {
  Rng r(43);
  std::vector<int> empty;
  std::vector<int> one{5};
  r.shuffle(empty);
  r.shuffle(one);
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(one, std::vector<int>{5});
}

// Parameterized: the uniform mean stays centred for any seed.
class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, UniformMeanCenteredForAllSeeds) {
  Rng r(GetParam());
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ULL, 1ULL, 42ULL, 999983ULL,
                                           0xffffffffffffffffULL));

}  // namespace
}  // namespace cps::num
