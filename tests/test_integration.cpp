// Cross-module integration tests: the full pipelines the paper's
// evaluation runs, at unit-test scale.
#include <gtest/gtest.h>

#include <sstream>

#include "core/cma.hpp"
#include "core/cwd.hpp"
#include "core/delta.hpp"
#include "core/fra.hpp"
#include "core/planner.hpp"
#include "field/analytic_fields.hpp"
#include "field/field.hpp"
#include "graph/geometric_graph.hpp"
#include "trace/greenorbs.hpp"
#include "trace/trace_io.hpp"
#include "viz/ascii.hpp"

namespace cps {
namespace {

const num::Rect kRegion{0.0, 0.0, 100.0, 100.0};

trace::GreenOrbsConfig trace_config() {
  trace::GreenOrbsConfig cfg;
  cfg.gap_count = 6;
  return cfg;
}

TEST(Integration, OsdPipelineOnGreenOrbsFrame) {
  // Fig. 5-7 pipeline: freeze the synthetic GreenOrbs light field at
  // 10:00, plan with FRA, rebuild, and measure delta against random.
  const trace::GreenOrbsField env(trace_config());
  const field::FieldSlice frame(env, trace::minutes(10, 0));

  core::FraConfig fra_cfg;
  fra_cfg.error_grid = 50;
  core::FraPlanner fra(fra_cfg);
  core::RandomPlanner random(3);
  const core::PlanRequest request{kRegion, 40, 10.0};

  const auto fra_plan = fra.plan(frame, request);
  const auto random_plan = random.plan(frame, request);
  ASSERT_EQ(fra_plan.size(), 40u);
  EXPECT_TRUE(graph::GeometricGraph(fra_plan.positions, 10.0).is_connected());

  const core::DeltaMetric metric(kRegion, 50);
  const auto corners = core::CornerPolicy::kFieldValue;  // OSD knows f.
  const double fra_delta =
      metric.delta_of_deployment(frame, fra_plan.positions, corners);
  const double random_delta =
      metric.delta_of_deployment(frame, random_plan.positions, corners);
  EXPECT_LT(fra_delta, random_delta);
}

TEST(Integration, OstdPipelineOnRecordedTrace) {
  // Fig. 8-10 pipeline: record a trace, replay it through a
  // FrameSequenceField, run CMA from the connected grid, and check that
  // delta improves while connectivity holds.
  const trace::GreenOrbsField env(trace_config());
  const auto recorded =
      env.record(trace::minutes(10, 0), trace::minutes(10, 30), 5.0, 51, 51);

  core::CmaConfig cma_cfg;
  cma_cfg.rc = 10.0 * 1.0001;  // Paper setting (padded for float rounding).
  cma_cfg.lcm = core::LcmMode::kPaper;  // Fig. 10 runs the paper's rule.
  const auto grid = core::GridPlanner::make_grid(kRegion, 100).positions;
  core::CmaSimulation sim(recorded, kRegion, grid, cma_cfg,
                          trace::minutes(10, 0));
  const core::DeltaMetric metric(kRegion, 50);
  for (int slot = 0; slot < 30; ++slot) {
    sim.step();
    // The literal Fig. 4 rule is best effort; it keeps a sizable core
    // component but does fragment (quantified in EXPERIMENTS.md).
    ASSERT_GE(sim.largest_component_fraction(), 0.1) << "slot " << slot;
  }
  // The moving swarm must beat the counterfactual stationary grid measured
  // against the same (brightening) 10:30 frame — this isolates adaptation
  // from the diurnal magnitude growth.
  const field::FieldSlice final_frame(recorded, sim.time());
  EXPECT_LT(sim.current_delta(metric),
            metric.delta_of_deployment(final_frame, grid));
  EXPECT_DOUBLE_EQ(sim.time(), trace::minutes(10, 30));
}

TEST(Integration, TraceRoundTripPreservesPlanning) {
  // Persist a frame, reload it, and verify planners see the same world.
  const trace::GreenOrbsField env(trace_config());
  const auto frame = env.snapshot(trace::minutes(10, 0), 51, 51);
  std::stringstream buffer;
  trace::write_grid(buffer, frame);
  const auto reloaded = trace::read_grid(buffer);

  core::FraConfig cfg;
  cfg.error_grid = 40;
  core::FraPlanner planner(cfg);
  const core::PlanRequest request{kRegion, 20, 10.0};
  const auto from_original = planner.plan(frame, request);
  const auto from_reloaded = planner.plan(reloaded, request);
  EXPECT_EQ(from_original.positions, from_reloaded.positions);
}

TEST(Integration, CwdAndCmaAgreeQualitatively) {
  // CMA with only local info should land within a reasonable factor of
  // the centralised CWD reference on a static field (the paper reports
  // ~16% worse than FRA; we assert a generous 2x bound against CWD).
  const trace::GreenOrbsField env(trace_config());
  const field::FieldSlice frame(env, trace::minutes(10, 0));
  const field::StaticTimeField static_env(
      std::make_shared<field::FieldSlice>(frame));

  const core::DeltaMetric metric(kRegion, 50);

  core::CmaConfig cma_cfg;
  cma_cfg.rc = 12.5;  // Grid pitch for 64 nodes.
  cma_cfg.lcm = core::LcmMode::kOff;  // Match CWD's free topology.
  core::CmaSimulation sim(static_env, kRegion,
                          core::GridPlanner::make_grid(kRegion, 64).positions,
                          cma_cfg);
  sim.run(60);
  const double cma_delta = sim.current_delta(metric);

  core::CwdConfig cwd_cfg;
  cwd_cfg.rc = 12.5;
  cwd_cfg.rs = 5.0;
  const core::CwdSolver cwd(cwd_cfg);
  const double cwd_delta = metric.delta_of_deployment(
      frame, cwd.solve(frame, kRegion, 64).deployment.positions);

  EXPECT_LT(cma_delta, 2.0 * cwd_delta + 1e-9);
}

TEST(Integration, AsciiRenderOfRebuiltSurfaceRuns) {
  // Smoke test of the full "figure" path: plan, reconstruct, render.
  const trace::GreenOrbsField env(trace_config());
  const field::FieldSlice frame(env, trace::minutes(10, 0));
  core::FraConfig cfg;
  cfg.error_grid = 30;
  core::FraPlanner planner(cfg);
  const auto plan = planner.plan(frame, core::PlanRequest{kRegion, 15, 10.0});
  const auto dt = core::reconstruct_surface(
      core::take_samples(frame, plan.positions), kRegion);
  const field::AnalyticField rebuilt(
      [&dt](double x, double y) { return dt.interpolate({x, y}); });
  viz::AsciiOptions opt;
  opt.width = 40;
  opt.height = 16;
  const std::string art = viz::render_field(rebuilt, kRegion,
                                            plan.positions, opt);
  EXPECT_GT(art.size(), 40u * 16u);
  EXPECT_NE(art.find('o'), std::string::npos);
}

}  // namespace
}  // namespace cps
