// Tests for CMA's energy accounting (movement distance, broadcast count).
#include <gtest/gtest.h>

#include <memory>

#include "core/cma.hpp"
#include "core/planner.hpp"
#include "field/analytic_fields.hpp"
#include "field/time_varying.hpp"

namespace cps::core {
namespace {

const num::Rect kRegion{0.0, 0.0, 100.0, 100.0};

field::StaticTimeField bump_env() {
  return field::StaticTimeField(std::make_shared<field::GaussianMixtureField>(
      0.5, std::vector<field::GaussianBump>{{{60.0, 60.0}, 4.0, 10.0}}));
}

TEST(CmaEnergy, ZeroBeforeAnyStep) {
  const auto env = bump_env();
  CmaSimulation sim(env, kRegion, GridPlanner::make_grid(kRegion, 16).positions,
                    CmaConfig{});
  EXPECT_DOUBLE_EQ(sim.total_distance_traveled(), 0.0);
  EXPECT_EQ(sim.total_broadcasts(), 0u);
  EXPECT_DOUBLE_EQ(sim.distance_traveled(3), 0.0);
}

TEST(CmaEnergy, BroadcastsAreTwoPerNodePerSlot) {
  // Table 2: one beacon round plus one tell round each slot.
  const auto env = bump_env();
  CmaSimulation sim(env, kRegion, GridPlanner::make_grid(kRegion, 16).positions,
                    CmaConfig{});
  sim.run(7);
  EXPECT_EQ(sim.total_broadcasts(), 2u * 16u * 7u);
}

TEST(CmaEnergy, TotalIsSumOfPerNodeDistances) {
  const auto env = bump_env();
  CmaConfig cfg;
  cfg.rc = 100.0 / 4.0 * 1.001;
  cfg.lcm = LcmMode::kOff;
  CmaSimulation sim(env, kRegion, GridPlanner::make_grid(kRegion, 16).positions,
                    cfg);
  sim.run(15);
  double sum = 0.0;
  for (std::size_t i = 0; i < 16; ++i) sum += sim.distance_traveled(i);
  EXPECT_NEAR(sum, sim.total_distance_traveled(), 1e-9);
  EXPECT_GT(sum, 0.0);
}

TEST(CmaEnergy, DistanceBoundedBySpeedTimesTime) {
  const auto env = bump_env();
  CmaConfig cfg;
  cfg.lcm = LcmMode::kOff;
  CmaSimulation sim(env, kRegion, GridPlanner::make_grid(kRegion, 25).positions,
                    cfg);
  sim.run(20);
  for (std::size_t i = 0; i < 25; ++i) {
    // v * dt * slots, with a float hair.
    EXPECT_LE(sim.distance_traveled(i), 20.0 + 1e-9);
  }
  EXPECT_LE(sim.total_distance_traveled(), 25.0 * 20.0 + 1e-6);
}

TEST(CmaEnergy, StrictLcmMovesLessThanFreeTopology) {
  // The strict invariant pins the taut lattice: its energy budget is a
  // fraction of the free run's.
  const auto env = bump_env();
  const auto init = GridPlanner::make_grid(kRegion, 100).positions;
  CmaConfig strict_cfg;
  strict_cfg.rc = 10.0 * 1.0001;
  strict_cfg.lcm = LcmMode::kStrict;
  CmaConfig off_cfg = strict_cfg;
  off_cfg.lcm = LcmMode::kOff;
  CmaSimulation strict_sim(env, kRegion, init, strict_cfg);
  CmaSimulation off_sim(env, kRegion, init, off_cfg);
  strict_sim.run(20);
  off_sim.run(20);
  EXPECT_LT(strict_sim.total_distance_traveled(),
            off_sim.total_distance_traveled());
}

TEST(CmaEnergy, BalancedSwarmStopsSpendingMovementEnergy) {
  // Flat field, nodes far apart: no forces, no movement, but the radio
  // keeps beaconing (the idle-listening cost structure of real motes).
  const field::StaticTimeField env(
      std::make_shared<field::ConstantField>(1.0));
  CmaConfig cfg;
  cfg.lcm = LcmMode::kOff;
  CmaSimulation sim(env, kRegion, GridPlanner::make_grid(kRegion, 4).positions,
                    cfg);
  sim.run(10);
  EXPECT_DOUBLE_EQ(sim.total_distance_traveled(), 0.0);
  EXPECT_EQ(sim.total_broadcasts(), 2u * 4u * 10u);
}

}  // namespace
}  // namespace cps::core
