// Tests for the centralised CWD solver (core/cwd.hpp).
#include "core/cwd.hpp"

#include <gtest/gtest.h>

#include "core/curvature.hpp"
#include "core/delta.hpp"
#include "field/analytic_fields.hpp"

namespace cps::core {
namespace {

const num::Rect kRegion{0.0, 0.0, 100.0, 100.0};

CwdConfig fig3_config() {
  CwdConfig cfg;       // Defaults are the Fig. 3 setting (Rc = 30).
  cfg.max_iterations = 200;
  return cfg;
}

TEST(Cwd, Validation) {
  CwdConfig bad = fig3_config();
  bad.rc = 0.0;
  EXPECT_THROW(CwdSolver{bad}, std::invalid_argument);
  bad = fig3_config();
  bad.step_limit = 0.0;
  EXPECT_THROW(CwdSolver{bad}, std::invalid_argument);
  const CwdSolver ok(fig3_config());
  EXPECT_THROW(ok.solve(field::ConstantField(0.0), kRegion, 0),
               std::invalid_argument);
  EXPECT_THROW(ok.solve_from(field::ConstantField(0.0), kRegion, {}),
               std::invalid_argument);
}

TEST(Cwd, KeepsNodeCountAndRegion) {
  const field::PeaksField f(kRegion);
  const CwdSolver solver(fig3_config());
  const CwdResult result = solver.solve(f, kRegion, 16);
  ASSERT_EQ(result.deployment.size(), 16u);
  for (const auto& p : result.deployment.positions) {
    EXPECT_TRUE(kRegion.contains(p.x, p.y));
  }
  EXPECT_GT(result.iterations, 0u);
}

TEST(Cwd, FlatFieldRelaxesToSpreadPattern) {
  // Pure repulsion on a flat field pushes nodes apart: the minimum
  // pairwise distance must grow well beyond the initial 16-node grid's if
  // nodes started clustered.
  const field::ConstantField f(1.0);
  CwdConfig cfg = fig3_config();
  const CwdSolver solver(cfg);
  std::vector<geo::Vec2> clustered;
  for (int i = 0; i < 9; ++i) {
    clustered.push_back({45.0 + 2.0 * (i % 3), 45.0 + 2.0 * (i / 3)});
  }
  const CwdResult result = solver.solve_from(f, kRegion, clustered);
  double min_dist = 1e9;
  const auto& pos = result.deployment.positions;
  for (std::size_t i = 0; i < pos.size(); ++i) {
    for (std::size_t j = i + 1; j < pos.size(); ++j) {
      min_dist = std::min(min_dist, geo::distance(pos[i], pos[j]));
    }
  }
  EXPECT_GT(min_dist, 5.0);
}

TEST(Cwd, BeatsUniformDeltaOnPeaks) {
  // The Fig. 3 claim: 16 CWD nodes outline peaks better than the uniform
  // grid, measured end-to-end by delta after DT reconstruction.
  const field::PeaksField f(kRegion);
  const DeltaMetric metric(kRegion, 50);
  const auto uniform = GridPlanner::make_grid(kRegion, 16);
  const CwdSolver solver(fig3_config());
  const CwdResult cwd = solver.solve(f, kRegion, 16);
  const auto corners = CornerPolicy::kFieldValue;  // Known-surface demo.
  const double uniform_delta =
      metric.delta_of_deployment(f, uniform.positions, corners);
  const double cwd_delta =
      metric.delta_of_deployment(f, cwd.deployment.positions, corners);
  EXPECT_LT(cwd_delta, uniform_delta);
}

TEST(Cwd, TotalCapturedCurvatureRisesVsUniform) {
  // Eqn. 10's objective: the CWD pattern accumulates more |G| at node
  // positions than the uniform grid does.
  const field::PeaksField f(kRegion);
  const CurvatureEstimator est(10.0);
  const CwdSolver solver(fig3_config());
  const auto uniform = GridPlanner::make_grid(kRegion, 16).positions;
  const auto cwd = solver.solve(f, kRegion, 16).deployment.positions;
  double uniform_total = 0.0;
  double cwd_total = 0.0;
  for (std::size_t i = 0; i < 16; ++i) {
    uniform_total += std::abs(est.gaussian_at(f, uniform[i]));
    cwd_total += std::abs(est.gaussian_at(f, cwd[i]));
  }
  EXPECT_GT(cwd_total, uniform_total);
}

TEST(Cwd, DeterministicAcrossRuns) {
  const field::PeaksField f(kRegion);
  const CwdSolver solver(fig3_config());
  const auto a = solver.solve(f, kRegion, 9);
  const auto b = solver.solve(f, kRegion, 9);
  EXPECT_EQ(a.deployment.positions, b.deployment.positions);
  EXPECT_EQ(a.iterations, b.iterations);
}

}  // namespace
}  // namespace cps::core
