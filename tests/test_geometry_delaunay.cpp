// Tests for the incremental Delaunay triangulation (geometry/delaunay.hpp).
//
// The invariants checked here are the load-bearing ones for the paper's
// pipeline: valid topology after arbitrary insertion sequences, the empty-
// circumcircle property, exact region coverage (sum of areas == |A|), and
// exact piecewise-linear interpolation on planar fields.
#include "geometry/delaunay.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "numerics/rng.hpp"

namespace cps::geo {
namespace {

const num::Rect kRegion{0.0, 0.0, 100.0, 100.0};

TEST(Delaunay, SeedState) {
  const Delaunay dt(kRegion);
  EXPECT_EQ(dt.vertex_count(), 4u);
  EXPECT_EQ(dt.triangle_count(), 2u);
  EXPECT_TRUE(dt.validate_topology());
  EXPECT_TRUE(dt.is_delaunay());
  EXPECT_NEAR(dt.total_area(), kRegion.area(), 1e-9);
}

TEST(Delaunay, EmptyRegionThrows) {
  EXPECT_THROW(Delaunay(num::Rect{0.0, 0.0, 0.0, 10.0}),
               std::invalid_argument);
  EXPECT_THROW(Delaunay(num::Rect{5.0, 5.0, 1.0, 10.0}),
               std::invalid_argument);
}

TEST(Delaunay, SingleInteriorInsert) {
  Delaunay dt(kRegion);
  const InsertResult r = dt.insert({50.0, 50.0}, 7.0);
  EXPECT_TRUE(r.inserted);
  EXPECT_EQ(r.vertex, 4);
  // Point on the seed diagonal: both seed triangles die, four appear.
  EXPECT_EQ(dt.vertex_count(), 5u);
  EXPECT_TRUE(dt.validate_topology());
  EXPECT_TRUE(dt.is_delaunay());
  EXPECT_NEAR(dt.total_area(), kRegion.area(), 1e-9);
  EXPECT_DOUBLE_EQ(dt.vertex(4).z, 7.0);
}

TEST(Delaunay, OffDiagonalInsertSplitsOneTriangle) {
  Delaunay dt(kRegion);
  const InsertResult r = dt.insert({80.0, 20.0}, 1.0);
  EXPECT_TRUE(r.inserted);
  EXPECT_TRUE(dt.validate_topology());
  EXPECT_NEAR(dt.total_area(), kRegion.area(), 1e-9);
}

TEST(Delaunay, InsertOutsideThrows) {
  Delaunay dt(kRegion);
  EXPECT_THROW(dt.insert({150.0, 50.0}, 0.0), std::invalid_argument);
  EXPECT_THROW(dt.insert({50.0, -1.0}, 0.0), std::invalid_argument);
}

TEST(Delaunay, DuplicateInsertUpdatesZ) {
  Delaunay dt(kRegion);
  dt.insert({30.0, 40.0}, 1.0);
  const std::size_t tris = dt.triangle_count();
  const InsertResult r = dt.insert({30.0, 40.0}, 9.0);
  EXPECT_FALSE(r.inserted);
  EXPECT_EQ(r.vertex, 4);
  EXPECT_EQ(dt.triangle_count(), tris);
  EXPECT_DOUBLE_EQ(dt.vertex(4).z, 9.0);
}

TEST(Delaunay, DuplicateOfCornerUpdatesCorner) {
  Delaunay dt(kRegion);
  const InsertResult r = dt.insert({0.0, 0.0}, 3.5);
  EXPECT_FALSE(r.inserted);
  EXPECT_EQ(r.vertex, 0);
  EXPECT_DOUBLE_EQ(dt.vertex(0).z, 3.5);
}

TEST(Delaunay, InsertOnRegionEdge) {
  Delaunay dt(kRegion);
  const InsertResult r = dt.insert({50.0, 0.0}, 2.0);
  EXPECT_TRUE(r.inserted);
  EXPECT_TRUE(dt.validate_topology());
  EXPECT_TRUE(dt.is_delaunay());
  EXPECT_NEAR(dt.total_area(), kRegion.area(), 1e-9);
}

TEST(Delaunay, InsertResultReportsCavity) {
  Delaunay dt(kRegion);
  const InsertResult r = dt.insert({25.0, 10.0}, 0.0);
  ASSERT_TRUE(r.inserted);
  EXPECT_FALSE(r.removed_triangles.empty());
  EXPECT_FALSE(r.created_triangles.empty());
  // Removed triangles are dead; created ones alive.
  for (const int t : r.removed_triangles) EXPECT_FALSE(dt.triangle_alive(t));
  for (const int t : r.created_triangles) EXPECT_TRUE(dt.triangle_alive(t));
  // Euler bookkeeping for an interior cavity: created = removed + 2.
  EXPECT_EQ(r.created_triangles.size(), r.removed_triangles.size() + 2);
}

TEST(Delaunay, LocateFindsContainingTriangle) {
  Delaunay dt(kRegion);
  dt.insert({20.0, 30.0}, 0.0);
  dt.insert({70.0, 60.0}, 0.0);
  dt.insert({40.0, 80.0}, 0.0);
  for (const Vec2 p : {Vec2{10.0, 10.0}, Vec2{90.0, 90.0}, Vec2{50.0, 50.0},
                       Vec2{0.0, 0.0}, Vec2{100.0, 100.0}}) {
    const int tid = dt.locate(p);
    EXPECT_TRUE(dt.triangle_alive(tid));
    EXPECT_TRUE(dt.triangle_geometry(tid).contains(p, 1e-9));
  }
}

TEST(Delaunay, LocateOutsideThrows) {
  const Delaunay dt(kRegion);
  EXPECT_THROW(dt.locate({-5.0, 50.0}), std::invalid_argument);
}

TEST(Delaunay, SetVertexZValidation) {
  Delaunay dt(kRegion);
  dt.set_vertex_z(0, 4.0);
  EXPECT_DOUBLE_EQ(dt.vertex(0).z, 4.0);
  EXPECT_THROW(dt.set_vertex_z(99, 0.0), std::out_of_range);
}

TEST(Delaunay, InterpolationExactOnPlane) {
  // Pin the corners to a plane, insert points sampled from the same plane:
  // DT(x, y) must reproduce the plane everywhere.
  const auto plane = [](Vec2 p) { return 1.0 + 0.3 * p.x - 0.7 * p.y; };
  Delaunay dt(kRegion);
  for (int c = 0; c < Delaunay::kCorners; ++c) {
    dt.set_vertex_z(c, plane(dt.vertex(c).pos));
  }
  num::Rng rng(5);
  for (int i = 0; i < 40; ++i) {
    const Vec2 p{rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)};
    dt.insert(p, plane(p));
  }
  for (int i = 0; i < 200; ++i) {
    const Vec2 q{rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)};
    EXPECT_NEAR(dt.interpolate(q), plane(q), 1e-9);
  }
}

TEST(Delaunay, InterpolateReproducesVertexValues) {
  Delaunay dt(kRegion);
  num::Rng rng(11);
  std::vector<Vec2> pts;
  std::vector<double> zs;
  for (int i = 0; i < 30; ++i) {
    pts.push_back({rng.uniform(1.0, 99.0), rng.uniform(1.0, 99.0)});
    zs.push_back(rng.uniform(-5.0, 5.0));
    dt.insert(pts.back(), zs.back());
  }
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_NEAR(dt.interpolate(pts[i]), zs[i], 1e-9) << "vertex " << i;
  }
}

TEST(Delaunay, GridInsertionHandlesCocircularPoints) {
  // A regular lattice is the worst case for incircle ties; topology and
  // coverage must survive, and the result must still be Delaunay up to
  // cocircularity.
  Delaunay dt(kRegion);
  for (int i = 0; i <= 10; ++i) {
    for (int j = 0; j <= 10; ++j) {
      dt.insert({i * 10.0, j * 10.0}, static_cast<double>(i + j));
    }
  }
  EXPECT_TRUE(dt.validate_topology());
  EXPECT_TRUE(dt.is_delaunay());
  EXPECT_NEAR(dt.total_area(), kRegion.area(), 1e-6);
  // 11x11 lattice; the 4 corners merge with scaffolding vertices.
  EXPECT_EQ(dt.vertex_count(), 4u + 121u - 4u + 4u - 4u);
}

TEST(Delaunay, AliveTrianglesConsistentWithCount) {
  Delaunay dt(kRegion);
  num::Rng rng(13);
  for (int i = 0; i < 25; ++i) {
    dt.insert({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)}, 0.0);
  }
  EXPECT_EQ(dt.alive_triangles().size(), dt.triangle_count());
}

// Property sweep: random insertion sequences of various sizes keep every
// structural invariant.
class DelaunayRandomSweep : public ::testing::TestWithParam<int> {};

TEST_P(DelaunayRandomSweep, InvariantsHoldAfterRandomInsertions) {
  const int n = GetParam();
  Delaunay dt(kRegion);
  num::Rng rng(static_cast<std::uint64_t>(n) * 7919 + 3);
  for (int i = 0; i < n; ++i) {
    const Vec2 p{rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)};
    dt.insert(p, rng.uniform(-1.0, 1.0));
  }
  EXPECT_TRUE(dt.validate_topology());
  EXPECT_TRUE(dt.is_delaunay());
  EXPECT_NEAR(dt.total_area(), kRegion.area(), 1e-6);
  // Euler: for a triangulated convex region with V vertices (all on the
  // boundary or inside), T = 2 * V_interior + V_boundary - 2.  We check the
  // weaker but exact statement T <= 2V and V == 4 + inserted (all random
  // doubles distinct with probability ~1).
  EXPECT_EQ(dt.vertex_count(), 4u + static_cast<std::size_t>(n));
  EXPECT_LE(dt.triangle_count(), 2 * dt.vertex_count());
}

INSTANTIATE_TEST_SUITE_P(Sizes, DelaunayRandomSweep,
                         ::testing::Values(1, 2, 3, 5, 10, 50, 200, 500));

// Property sweep: clustered insertions (many near-duplicate points) are a
// stress case for cavity construction.
class DelaunayClusterSweep : public ::testing::TestWithParam<double> {};

TEST_P(DelaunayClusterSweep, TightClustersStayValid) {
  const double spread = GetParam();
  Delaunay dt(kRegion);
  num::Rng rng(777);
  for (int i = 0; i < 100; ++i) {
    const Vec2 p{50.0 + rng.normal(0.0, spread),
                 50.0 + rng.normal(0.0, spread)};
    if (!kRegion.contains(p.x, p.y)) continue;
    dt.insert(p, 0.0);
  }
  EXPECT_TRUE(dt.validate_topology());
  EXPECT_TRUE(dt.is_delaunay());
  EXPECT_NEAR(dt.total_area(), kRegion.area(), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Spreads, DelaunayClusterSweep,
                         ::testing::Values(0.01, 0.1, 1.0, 10.0));

}  // namespace
}  // namespace cps::geo
