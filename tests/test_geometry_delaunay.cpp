// Tests for the incremental Delaunay triangulation (geometry/delaunay.hpp).
//
// The invariants checked here are the load-bearing ones for the paper's
// pipeline: valid topology after arbitrary insertion sequences, the empty-
// circumcircle property, exact region coverage (sum of areas == |A|), and
// exact piecewise-linear interpolation on planar fields.
#include "geometry/delaunay.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "numerics/rng.hpp"

namespace cps::geo {
namespace {

const num::Rect kRegion{0.0, 0.0, 100.0, 100.0};

TEST(Delaunay, SeedState) {
  const Delaunay dt(kRegion);
  EXPECT_EQ(dt.vertex_count(), 4u);
  EXPECT_EQ(dt.triangle_count(), 2u);
  EXPECT_TRUE(dt.validate_topology());
  EXPECT_TRUE(dt.is_delaunay());
  EXPECT_NEAR(dt.total_area(), kRegion.area(), 1e-9);
}

TEST(Delaunay, EmptyRegionThrows) {
  EXPECT_THROW(Delaunay(num::Rect{0.0, 0.0, 0.0, 10.0}),
               std::invalid_argument);
  EXPECT_THROW(Delaunay(num::Rect{5.0, 5.0, 1.0, 10.0}),
               std::invalid_argument);
}

TEST(Delaunay, SingleInteriorInsert) {
  Delaunay dt(kRegion);
  const InsertResult r = dt.insert({50.0, 50.0}, 7.0);
  EXPECT_TRUE(r.inserted);
  EXPECT_EQ(r.vertex, 4);
  // Point on the seed diagonal: both seed triangles die, four appear.
  EXPECT_EQ(dt.vertex_count(), 5u);
  EXPECT_TRUE(dt.validate_topology());
  EXPECT_TRUE(dt.is_delaunay());
  EXPECT_NEAR(dt.total_area(), kRegion.area(), 1e-9);
  EXPECT_DOUBLE_EQ(dt.vertex(4).z, 7.0);
}

TEST(Delaunay, OffDiagonalInsertSplitsOneTriangle) {
  Delaunay dt(kRegion);
  const InsertResult r = dt.insert({80.0, 20.0}, 1.0);
  EXPECT_TRUE(r.inserted);
  EXPECT_TRUE(dt.validate_topology());
  EXPECT_NEAR(dt.total_area(), kRegion.area(), 1e-9);
}

TEST(Delaunay, InsertOutsideThrows) {
  Delaunay dt(kRegion);
  EXPECT_THROW(dt.insert({150.0, 50.0}, 0.0), std::invalid_argument);
  EXPECT_THROW(dt.insert({50.0, -1.0}, 0.0), std::invalid_argument);
}

TEST(Delaunay, DuplicateInsertUpdatesZ) {
  Delaunay dt(kRegion);
  dt.insert({30.0, 40.0}, 1.0);
  const std::size_t tris = dt.triangle_count();
  const InsertResult r = dt.insert({30.0, 40.0}, 9.0);
  EXPECT_FALSE(r.inserted);
  EXPECT_EQ(r.vertex, 4);
  EXPECT_EQ(dt.triangle_count(), tris);
  EXPECT_DOUBLE_EQ(dt.vertex(4).z, 9.0);
}

TEST(Delaunay, DuplicateOfCornerUpdatesCorner) {
  Delaunay dt(kRegion);
  const InsertResult r = dt.insert({0.0, 0.0}, 3.5);
  EXPECT_FALSE(r.inserted);
  EXPECT_EQ(r.vertex, 0);
  EXPECT_DOUBLE_EQ(dt.vertex(0).z, 3.5);
}

TEST(Delaunay, InsertOnRegionEdge) {
  Delaunay dt(kRegion);
  const InsertResult r = dt.insert({50.0, 0.0}, 2.0);
  EXPECT_TRUE(r.inserted);
  EXPECT_TRUE(dt.validate_topology());
  EXPECT_TRUE(dt.is_delaunay());
  EXPECT_NEAR(dt.total_area(), kRegion.area(), 1e-9);
}

TEST(Delaunay, InsertResultReportsCavity) {
  Delaunay dt(kRegion);
  const InsertResult r = dt.insert({25.0, 10.0}, 0.0);
  ASSERT_TRUE(r.inserted);
  EXPECT_FALSE(r.removed_triangles.empty());
  EXPECT_FALSE(r.created_triangles.empty());
  // Removed triangles are dead; created ones alive.
  for (const int t : r.removed_triangles) EXPECT_FALSE(dt.triangle_alive(t));
  for (const int t : r.created_triangles) EXPECT_TRUE(dt.triangle_alive(t));
  // Euler bookkeeping for an interior cavity: created = removed + 2.
  EXPECT_EQ(r.created_triangles.size(), r.removed_triangles.size() + 2);
}

TEST(Delaunay, LocateFindsContainingTriangle) {
  Delaunay dt(kRegion);
  dt.insert({20.0, 30.0}, 0.0);
  dt.insert({70.0, 60.0}, 0.0);
  dt.insert({40.0, 80.0}, 0.0);
  for (const Vec2 p : {Vec2{10.0, 10.0}, Vec2{90.0, 90.0}, Vec2{50.0, 50.0},
                       Vec2{0.0, 0.0}, Vec2{100.0, 100.0}}) {
    const int tid = dt.locate(p);
    EXPECT_TRUE(dt.triangle_alive(tid));
    EXPECT_TRUE(dt.triangle_geometry(tid).contains(p, 1e-9));
  }
}

TEST(Delaunay, LocateOutsideThrows) {
  const Delaunay dt(kRegion);
  EXPECT_THROW(dt.locate({-5.0, 50.0}), std::invalid_argument);
}

TEST(Delaunay, SetVertexZValidation) {
  Delaunay dt(kRegion);
  dt.set_vertex_z(0, 4.0);
  EXPECT_DOUBLE_EQ(dt.vertex(0).z, 4.0);
  EXPECT_THROW(dt.set_vertex_z(99, 0.0), std::out_of_range);
}

TEST(Delaunay, InterpolationExactOnPlane) {
  // Pin the corners to a plane, insert points sampled from the same plane:
  // DT(x, y) must reproduce the plane everywhere.
  const auto plane = [](Vec2 p) { return 1.0 + 0.3 * p.x - 0.7 * p.y; };
  Delaunay dt(kRegion);
  for (int c = 0; c < Delaunay::kCorners; ++c) {
    dt.set_vertex_z(c, plane(dt.vertex(c).pos));
  }
  num::Rng rng(5);
  for (int i = 0; i < 40; ++i) {
    const Vec2 p{rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)};
    dt.insert(p, plane(p));
  }
  for (int i = 0; i < 200; ++i) {
    const Vec2 q{rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)};
    EXPECT_NEAR(dt.interpolate(q), plane(q), 1e-9);
  }
}

TEST(Delaunay, InterpolateReproducesVertexValues) {
  Delaunay dt(kRegion);
  num::Rng rng(11);
  std::vector<Vec2> pts;
  std::vector<double> zs;
  for (int i = 0; i < 30; ++i) {
    pts.push_back({rng.uniform(1.0, 99.0), rng.uniform(1.0, 99.0)});
    zs.push_back(rng.uniform(-5.0, 5.0));
    dt.insert(pts.back(), zs.back());
  }
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_NEAR(dt.interpolate(pts[i]), zs[i], 1e-9) << "vertex " << i;
  }
}

TEST(Delaunay, GridInsertionHandlesCocircularPoints) {
  // A regular lattice is the worst case for incircle ties; topology and
  // coverage must survive, and the result must still be Delaunay up to
  // cocircularity.
  Delaunay dt(kRegion);
  for (int i = 0; i <= 10; ++i) {
    for (int j = 0; j <= 10; ++j) {
      dt.insert({i * 10.0, j * 10.0}, static_cast<double>(i + j));
    }
  }
  EXPECT_TRUE(dt.validate_topology());
  EXPECT_TRUE(dt.is_delaunay());
  EXPECT_NEAR(dt.total_area(), kRegion.area(), 1e-6);
  // 11x11 lattice; the 4 corners merge with scaffolding vertices.
  EXPECT_EQ(dt.vertex_count(), 4u + 121u - 4u + 4u - 4u);
}

TEST(Delaunay, AliveTrianglesConsistentWithCount) {
  Delaunay dt(kRegion);
  num::Rng rng(13);
  for (int i = 0; i < 25; ++i) {
    dt.insert({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)}, 0.0);
  }
  EXPECT_EQ(dt.alive_triangles().size(), dt.triangle_count());
}

// Property sweep: random insertion sequences of various sizes keep every
// structural invariant.
class DelaunayRandomSweep : public ::testing::TestWithParam<int> {};

TEST_P(DelaunayRandomSweep, InvariantsHoldAfterRandomInsertions) {
  const int n = GetParam();
  Delaunay dt(kRegion);
  num::Rng rng(static_cast<std::uint64_t>(n) * 7919 + 3);
  for (int i = 0; i < n; ++i) {
    const Vec2 p{rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)};
    dt.insert(p, rng.uniform(-1.0, 1.0));
  }
  EXPECT_TRUE(dt.validate_topology());
  EXPECT_TRUE(dt.is_delaunay());
  EXPECT_NEAR(dt.total_area(), kRegion.area(), 1e-6);
  // Euler: for a triangulated convex region with V vertices (all on the
  // boundary or inside), T = 2 * V_interior + V_boundary - 2.  We check the
  // weaker but exact statement T <= 2V and V == 4 + inserted (all random
  // doubles distinct with probability ~1).
  EXPECT_EQ(dt.vertex_count(), 4u + static_cast<std::size_t>(n));
  EXPECT_LE(dt.triangle_count(), 2 * dt.vertex_count());
}

INSTANTIATE_TEST_SUITE_P(Sizes, DelaunayRandomSweep,
                         ::testing::Values(1, 2, 3, 5, 10, 50, 200, 500));

// Property sweep: clustered insertions (many near-duplicate points) are a
// stress case for cavity construction.
class DelaunayClusterSweep : public ::testing::TestWithParam<double> {};

TEST_P(DelaunayClusterSweep, TightClustersStayValid) {
  const double spread = GetParam();
  Delaunay dt(kRegion);
  num::Rng rng(777);
  for (int i = 0; i < 100; ++i) {
    const Vec2 p{50.0 + rng.normal(0.0, spread),
                 50.0 + rng.normal(0.0, spread)};
    if (!kRegion.contains(p.x, p.y)) continue;
    dt.insert(p, 0.0);
  }
  EXPECT_TRUE(dt.validate_topology());
  EXPECT_TRUE(dt.is_delaunay());
  EXPECT_NEAR(dt.total_area(), kRegion.area(), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Spreads, DelaunayClusterSweep,
                         ::testing::Values(0.01, 0.1, 1.0, 10.0));

// --- Staleness regressions (ISSUE 8 satellites) ---

TEST(DelaunayStaleness, LocateHintSurvivesSlotRecycling) {
  // Regression: the shared remembering-walk hint used to keep pointing at a
  // triangle slot after free_triangle recycled it.  Drive the free list hard
  // enough that the hinted slot is freed and reallocated in a *different*
  // neighborhood, then locate() a point far from the recycled slot: with a
  // stale hint the walk starts from an unrelated triangle and (on adversarial
  // geometry) can fall back to the exhaustive scan or, worse, walk from a
  // dead record.  Post-fix the hint is reset whenever its slot is freed, so
  // it always satisfies the alive-or--1 invariant.
  Delaunay dt(kRegion);
  num::Rng rng(99);
  for (int i = 0; i < 300; ++i) {
    dt.insert({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)},
              rng.uniform(-1.0, 1.0));
    const int hint = dt.debug_locate_hint();
    ASSERT_TRUE(hint == -1 || dt.triangle_alive(hint))
        << "stale locate hint after insert " << i;
    // Exercise the hinted walk from an arbitrary far corner each round.
    const int tid = dt.locate({0.5, 99.5});
    EXPECT_TRUE(dt.triangle_alive(tid));
    EXPECT_TRUE(dt.triangle_geometry(tid).contains({0.5, 99.5}, 1e-9));
  }
  // Removal frees the whole star; if the hint pointed into it, it must have
  // been reset rather than left dangling at a soon-recycled slot.
  for (int v = static_cast<int>(dt.vertex_count()) - 1; v >= 200; --v) {
    dt.remove(v);
    const int hint = dt.debug_locate_hint();
    ASSERT_TRUE(hint == -1 || dt.triangle_alive(hint))
        << "stale locate hint after removing vertex " << v;
    const int tid = dt.locate({99.5, 0.5});
    EXPECT_TRUE(dt.triangle_geometry(tid).contains({99.5, 0.5}, 1e-9));
  }
  EXPECT_TRUE(dt.validate_topology());
}

TEST(DelaunayStaleness, DuplicateHitReportsZChange) {
  // Regression: a duplicate-tolerance hit used to return inserted=false with
  // empty cavity lists even though it rewrote the vertex's z — δ-caching
  // callers saw "nothing changed" while the surface moved over the star.
  Delaunay dt(kRegion);
  dt.insert({30.0, 40.0}, 1.0);
  dt.insert({60.0, 70.0}, 2.0);

  const InsertResult same = dt.insert({30.0, 40.0}, 1.0);
  EXPECT_FALSE(same.inserted);
  EXPECT_FALSE(same.z_changed) << "identical z must not report a change";
  EXPECT_TRUE(same.star_triangles.empty());

  const InsertResult hit = dt.insert({30.0, 40.0}, 9.0);
  EXPECT_FALSE(hit.inserted);
  EXPECT_TRUE(hit.z_changed);
  EXPECT_EQ(hit.vertex, 4);
  EXPECT_DOUBLE_EQ(dt.vertex(4).z, 9.0);
  // The report must cover exactly the updated vertex's star.
  ASSERT_FALSE(hit.star_triangles.empty());
  EXPECT_EQ(hit.star_triangles, dt.vertex_star(4));
  for (const int tid : hit.star_triangles) {
    ASSERT_TRUE(dt.triangle_alive(tid));
    const auto& t = dt.triangle(tid);
    EXPECT_TRUE(t.v[0] == 4 || t.v[1] == 4 || t.v[2] == 4);
  }
}

// --- Removal / relocation ---

TEST(DelaunayRemove, CornerAndDeadIdsRejected) {
  Delaunay dt(kRegion);
  const int v = dt.insert({50.0, 50.0}, 1.0).vertex;
  EXPECT_THROW(dt.remove(0), std::invalid_argument);
  EXPECT_THROW(dt.remove(3), std::invalid_argument);
  dt.remove(v);
  EXPECT_FALSE(dt.vertex_alive(v));
  EXPECT_THROW(dt.remove(v), std::invalid_argument);
  EXPECT_THROW(dt.vertex_star(v), std::invalid_argument);
}

TEST(DelaunayRemove, InteriorRemovalRestoresInvariants) {
  Delaunay dt(kRegion);
  num::Rng rng(21);
  for (int i = 0; i < 30; ++i) {
    dt.insert({rng.uniform(1.0, 99.0), rng.uniform(1.0, 99.0)},
              rng.uniform(-2.0, 2.0));
  }
  const std::size_t before = dt.triangle_count();
  const RemoveResult r = dt.remove(10);
  // Removed and created ids never overlap (alloc-before-free contract).
  for (const int a : r.removed_triangles) {
    EXPECT_FALSE(dt.triangle_alive(a));
    for (const int b : r.created_triangles) EXPECT_NE(a, b);
  }
  // An interior star of m triangles re-triangulates into m - 2 ears.
  EXPECT_EQ(r.created_triangles.size(), r.removed_triangles.size() - 2);
  EXPECT_EQ(dt.triangle_count(), before - 2);
  EXPECT_TRUE(dt.validate_topology());
  EXPECT_TRUE(dt.is_delaunay());
  EXPECT_NEAR(dt.total_area(), kRegion.area(), 1e-6);
}

TEST(DelaunayRemove, BorderVertexRemoval) {
  Delaunay dt(kRegion);
  dt.insert({50.0, 0.0}, 1.0);   // on the bottom border
  dt.insert({30.0, 40.0}, 2.0);
  dt.insert({70.0, 30.0}, 3.0);
  const RemoveResult r = dt.remove(4);
  EXPECT_FALSE(dt.vertex_alive(4));
  EXPECT_FALSE(r.created_triangles.empty());
  EXPECT_TRUE(dt.validate_topology());
  EXPECT_TRUE(dt.is_delaunay());
  EXPECT_NEAR(dt.total_area(), kRegion.area(), 1e-9);
}

TEST(DelaunayRemove, InsertRemoveChurnKeepsInvariants) {
  // Interleave inserts and removals so triangle slots and the free list are
  // churned; cocircular grid points keep the predicates honest.
  Delaunay dt(kRegion);
  num::Rng rng(31);
  std::vector<int> alive_ids;
  for (int round = 0; round < 200; ++round) {
    if (!alive_ids.empty() && rng.uniform(0.0, 1.0) < 0.4) {
      const std::size_t pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(alive_ids.size()) - 1));
      dt.remove(alive_ids[pick]);
      alive_ids.erase(alive_ids.begin() +
                      static_cast<std::ptrdiff_t>(pick));
    } else {
      const bool grid = rng.uniform(0.0, 1.0) < 0.3;
      const Vec2 p =
          grid ? Vec2{rng.uniform_int(0, 10) * 10.0,
                      rng.uniform_int(0, 10) * 10.0}
               : Vec2{rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)};
      const InsertResult ins = dt.insert(p, rng.uniform(-1.0, 1.0));
      if (ins.inserted) alive_ids.push_back(ins.vertex);
    }
    ASSERT_TRUE(dt.validate_topology()) << "round " << round;
    ASSERT_NEAR(dt.total_area(), kRegion.area(), 1e-6) << "round " << round;
  }
  EXPECT_TRUE(dt.is_delaunay());
}

TEST(DelaunayRemove, VertexStarMatchesBruteForce) {
  Delaunay dt(kRegion);
  num::Rng rng(41);
  for (int i = 0; i < 40; ++i) {
    dt.insert({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)}, 0.0);
  }
  for (int v = 0; v < static_cast<int>(dt.vertex_count()); ++v) {
    std::vector<int> expect;
    for (const int tid : dt.alive_triangles()) {
      const auto& t = dt.triangle(tid);
      if (t.v[0] == v || t.v[1] == v || t.v[2] == v) expect.push_back(tid);
    }
    std::vector<int> got = dt.vertex_star(v);
    EXPECT_EQ(got.size(), expect.size()) << "vertex " << v;
    std::sort(got.begin(), got.end());
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(got, expect) << "vertex " << v;
  }
}

TEST(DelaunayMove, MoveRelocatesAndReportsCoverage) {
  Delaunay dt(kRegion);
  num::Rng rng(51);
  for (int i = 0; i < 20; ++i) {
    dt.insert({rng.uniform(1.0, 99.0), rng.uniform(1.0, 99.0)},
              rng.uniform(-1.0, 1.0));
  }
  const MoveResult m = dt.move_vertex(7, {12.5, 87.5}, 3.25);
  EXPECT_TRUE(m.inserted);
  EXPECT_FALSE(dt.vertex_alive(7));
  EXPECT_TRUE(dt.vertex_alive(m.vertex));
  EXPECT_DOUBLE_EQ(dt.vertex(m.vertex).z, 3.25);
  EXPECT_NEAR(dt.interpolate({12.5, 87.5}), 3.25, 1e-12);
  for (const int tid : m.changed_triangles) {
    EXPECT_TRUE(dt.triangle_alive(tid)) << "changed tri " << tid;
  }
  // The new vertex's whole star must be inside the change report.
  std::vector<int> changed = m.changed_triangles;
  std::sort(changed.begin(), changed.end());
  for (const int tid : dt.vertex_star(m.vertex)) {
    EXPECT_TRUE(std::binary_search(changed.begin(), changed.end(), tid));
  }
  EXPECT_TRUE(dt.validate_topology());
  EXPECT_TRUE(dt.is_delaunay());
  EXPECT_NEAR(dt.total_area(), kRegion.area(), 1e-6);
}

TEST(DelaunayMove, MoveOntoExistingVertexDegeneratesToZUpdate) {
  Delaunay dt(kRegion);
  const int a = dt.insert({25.0, 25.0}, 1.0).vertex;
  const int b = dt.insert({75.0, 75.0}, 2.0).vertex;
  const MoveResult m = dt.move_vertex(a, {75.0, 75.0}, 5.0);
  EXPECT_FALSE(m.inserted);
  EXPECT_TRUE(m.z_changed);
  EXPECT_EQ(m.vertex, b);
  EXPECT_FALSE(dt.vertex_alive(a));
  EXPECT_DOUBLE_EQ(dt.vertex(b).z, 5.0);
  EXPECT_FALSE(m.changed_triangles.empty());
  EXPECT_TRUE(dt.validate_topology());
}

}  // namespace
}  // namespace cps::geo
