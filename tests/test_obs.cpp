// Tests for the observability layer (obs/*): registry semantics, histogram
// bucketing, scoped-timer nesting, trace output well-formedness, and the
// cost contract of the CPS_* macros while recording is disabled.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <new>
#include <sstream>
#include <string>

#include "obs/obs.hpp"

// --- Global allocation counter for the zero-allocation contract ----------
//
// Replacing global operator new/delete in the test binary lets us assert
// that disabled instrumentation macros never touch the heap.

namespace {
std::atomic<std::size_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace cps::obs {
namespace {

/// Arms/disarms recording for one test and restores the previous state.
class EnabledScope {
 public:
  explicit EnabledScope(bool on) : previous_(enabled()) { set_enabled(on); }
  ~EnabledScope() { set_enabled(previous_); }

 private:
  bool previous_;
};

TEST(Registry, SameNameReturnsSameMetric) {
  Counter& a = counter("test.registry.counter_identity");
  Counter& b = counter("test.registry.counter_identity");
  EXPECT_EQ(&a, &b);
  Histogram& h1 = histogram("test.registry.hist_identity");
  Histogram& h2 = histogram("test.registry.hist_identity");
  EXPECT_EQ(&h1, &h2);
}

TEST(Registry, KindMismatchThrows) {
  counter("test.registry.kind_clash");
  EXPECT_THROW(gauge("test.registry.kind_clash"), std::invalid_argument);
  EXPECT_THROW(histogram("test.registry.kind_clash"), std::invalid_argument);
}

TEST(Registry, NameSchemeEnforced) {
  EXPECT_TRUE(Registry::valid_name("layer.component.metric"));
  EXPECT_TRUE(Registry::valid_name("core.fra.plan_total"));
  EXPECT_FALSE(Registry::valid_name(""));
  EXPECT_FALSE(Registry::valid_name("nodots"));
  EXPECT_FALSE(Registry::valid_name(".leading.dot"));
  EXPECT_FALSE(Registry::valid_name("trailing.dot."));
  EXPECT_FALSE(Registry::valid_name("doubled..dot"));
  EXPECT_FALSE(Registry::valid_name("Upper.Case"));
  EXPECT_FALSE(Registry::valid_name("spa ce.metric"));
  EXPECT_THROW(counter("BAD NAME"), std::invalid_argument);
}

TEST(Registry, ResetZeroesButKeepsRegistrations) {
  Counter& c = counter("test.registry.reset_counter");
  c.add(5);
  Gauge& g = gauge("test.registry.reset_gauge");
  g.set(2.5);
  registry().reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  // The same reference is still live and usable.
  c.add(1);
  EXPECT_EQ(counter("test.registry.reset_counter").value(), 1u);
}

TEST(Registry, JsonSnapshotContainsMetrics) {
  counter("test.json.some_counter").add(7);
  gauge("test.json.some_gauge").set(1.5);
  histogram("test.json.some_hist").observe(3.0);
  std::ostringstream out;
  registry().write_json(out);
  const std::string s = out.str();
  EXPECT_EQ(s.front(), '{');
  EXPECT_NE(s.find("\"counters\""), std::string::npos);
  EXPECT_NE(s.find("\"test.json.some_counter\": 7"), std::string::npos);
  EXPECT_NE(s.find("\"test.json.some_gauge\": 1.5"), std::string::npos);
  EXPECT_NE(s.find("\"test.json.some_hist\""), std::string::npos);
  // Balanced braces/brackets — the cheap well-formedness invariant.
  long braces = 0;
  long brackets = 0;
  for (const char ch : s) {
    braces += ch == '{' ? 1 : ch == '}' ? -1 : 0;
    brackets += ch == '[' ? 1 : ch == ']' ? -1 : 0;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(Histogram, BucketBoundaries) {
  // ub(i) = 2^(i - 20); bucket i spans (ub(i-1), ub(i)].
  EXPECT_EQ(Histogram::bucket_upper_bound(20), 1.0);
  EXPECT_EQ(Histogram::bucket_upper_bound(21), 2.0);
  EXPECT_EQ(Histogram::bucket_upper_bound(19), 0.5);
  EXPECT_TRUE(std::isinf(
      Histogram::bucket_upper_bound(Histogram::kBucketCount - 1)));

  // Exact powers of two land in the bucket they bound.
  EXPECT_EQ(Histogram::bucket_index(1.0), 20u);
  EXPECT_EQ(Histogram::bucket_index(2.0), 21u);
  EXPECT_EQ(Histogram::bucket_index(0.5), 19u);
  // Just above a bound rolls into the next bucket.
  EXPECT_EQ(Histogram::bucket_index(1.0000001), 21u);
  EXPECT_EQ(Histogram::bucket_index(1.5), 21u);
  // Underflow and pathological inputs collapse into bucket 0.
  EXPECT_EQ(Histogram::bucket_index(0.0), 0u);
  EXPECT_EQ(Histogram::bucket_index(-3.0), 0u);
  EXPECT_EQ(Histogram::bucket_index(std::ldexp(1.0, -30)), 0u);
  EXPECT_EQ(Histogram::bucket_index(
                std::numeric_limits<double>::quiet_NaN()),
            0u);
  // Overflow saturates into the last bucket.
  EXPECT_EQ(Histogram::bucket_index(std::ldexp(1.0, 60)),
            Histogram::kBucketCount - 1);
  EXPECT_EQ(Histogram::bucket_index(
                std::numeric_limits<double>::infinity()),
            Histogram::kBucketCount - 1);

  // Every bucket index is consistent with its bounds.
  for (std::size_t i = 1; i + 1 < Histogram::kBucketCount; ++i) {
    const double ub = Histogram::bucket_upper_bound(i);
    EXPECT_EQ(Histogram::bucket_index(ub), i) << "at bucket " << i;
    EXPECT_EQ(Histogram::bucket_index(ub * 1.0000001), i + 1)
        << "above bucket " << i;
  }
}

TEST(Histogram, StatsAndQuantiles) {
  Histogram h;
  EXPECT_EQ(h.quantile(0.5), 0.0);  // Empty.
  h.observe(1.0);
  h.observe(2.0);
  h.observe(4.0);
  h.observe(1000.0);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 1007.0);
  EXPECT_EQ(h.min(), 1.0);
  EXPECT_EQ(h.max(), 1000.0);
  EXPECT_EQ(h.mean(), 1007.0 / 4.0);
  EXPECT_LE(h.quantile(0.5), 4.0);
  EXPECT_GE(h.quantile(0.5), 1.0);
  EXPECT_EQ(h.quantile(1.0), 1000.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
}

TEST(Timer, RecordsHistogramAndNestedTraceSlices) {
  EnabledScope armed(true);
  trace().clear();
  Histogram& outer = histogram("test.timer.outer");
  Histogram& inner = histogram("test.timer.inner");
  outer.reset();
  inner.reset();
  {
    ScopedTimer t_outer("test.timer.outer");
    {
      ScopedTimer t_inner("test.timer.inner");
    }
  }
  EXPECT_EQ(outer.count(), 1u);
  EXPECT_EQ(inner.count(), 1u);

  const auto events = trace().snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Scope exit order: inner closes (and records) first.
  const TraceEvent& ev_inner = events[0];
  const TraceEvent& ev_outer = events[1];
  EXPECT_STREQ(ev_inner.name, "test.timer.inner");
  EXPECT_STREQ(ev_outer.name, "test.timer.outer");
  EXPECT_EQ(ev_inner.phase, 'X');
  EXPECT_EQ(ev_outer.phase, 'X');
  // The inner slice nests inside the outer slice on the timeline.
  EXPECT_GE(ev_inner.ts_us, ev_outer.ts_us);
  EXPECT_LE(ev_inner.ts_us + ev_inner.dur_us,
            ev_outer.ts_us + ev_outer.dur_us);
}

TEST(Trace, ChromeJsonAndJsonlWellFormed) {
  EnabledScope armed(true);
  trace().clear();
  trace().counter("test.trace.some_counter", 42.0);
  trace().instant("test.trace.some_marker");
  {
    ScopedTimer t("test.trace.some_slice");
  }

  std::ostringstream chrome;
  trace().write_chrome_json(chrome);
  const std::string cj = chrome.str();
  EXPECT_EQ(cj.rfind("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [", 0),
            0u);
  EXPECT_NE(cj.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(cj.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(cj.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(cj.find("\"args\": {\"value\": 42}"), std::string::npos);
  long braces = 0;
  long brackets = 0;
  for (const char ch : cj) {
    braces += ch == '{' ? 1 : ch == '}' ? -1 : 0;
    brackets += ch == '[' ? 1 : ch == ']' ? -1 : 0;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);

  std::ostringstream jsonl;
  trace().write_jsonl(jsonl);
  std::istringstream lines(jsonl.str());
  std::string line;
  std::size_t line_count = 0;
  while (std::getline(lines, line)) {
    ++line_count;
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  EXPECT_EQ(line_count, 3u);
  trace().clear();
}

TEST(Trace, CapacityCapDropsAndCounts) {
  EnabledScope armed(true);
  trace().clear();
  trace().set_capacity(8);
  for (int i = 0; i < 100; ++i) trace().instant("test.trace.flood");
  trace().flush_current_thread();
  EXPECT_EQ(trace().snapshot().size(), 8u);
  EXPECT_EQ(trace().dropped(), 92u);
  trace().set_capacity(1u << 20);
  trace().clear();
}

TEST(Macros, DisabledRecordsNothing) {
  EnabledScope disarmed(false);
  Counter& c = counter("test.macros.untouched");
  c.reset();
  CPS_COUNT("test.macros.untouched", 3);
  CPS_TRACE_COUNTER("test.macros.trace_untouched", 1.0);
  CPS_TRACE_INSTANT("test.macros.marker_untouched");
  {
    CPS_TIMER("test.macros.timer_untouched");
  }
  EXPECT_EQ(c.value(), 0u);
}

TEST(Macros, ZeroAllocationWhileDisabled) {
  EnabledScope disarmed(false);
  const std::size_t before = g_alloc_count.load();
  for (int i = 0; i < 10000; ++i) {
    CPS_COUNT("test.alloc.counter", 1);
    CPS_GAUGE("test.alloc.gauge", 1.5);
    CPS_HIST("test.alloc.hist", 2.5);
    CPS_TRACE_COUNTER("test.alloc.trace", 3.5);
    CPS_TRACE_INSTANT("test.alloc.marker");
    CPS_TIMER("test.alloc.timer");
  }
  EXPECT_EQ(g_alloc_count.load(), before);
}

TEST(Macros, EnabledRecords) {
#if defined(CPS_OBS_ENABLED)
  EnabledScope armed(true);
  Counter& c = counter("test.macros.armed_counter");
  c.reset();
  CPS_COUNT("test.macros.armed_counter", 2);
  CPS_COUNT("test.macros.armed_counter", 3);
  EXPECT_EQ(c.value(), 5u);
  Histogram& h = histogram("test.macros.armed_hist");
  h.reset();
  CPS_HIST("test.macros.armed_hist", 1.25);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.sum(), 1.25);
#else
  // Compiled out: the macros must not record even while armed.
  EnabledScope armed(true);
  Counter& c = counter("test.macros.armed_counter");
  c.reset();
  CPS_COUNT("test.macros.armed_counter", 2);
  EXPECT_EQ(c.value(), 0u);
#endif
}

}  // namespace
}  // namespace cps::obs
