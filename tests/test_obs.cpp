// Tests for the observability layer (obs/*): registry semantics, histogram
// bucketing, scoped-timer nesting, trace output well-formedness, and the
// cost contract of the CPS_* macros while recording is disabled.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <new>
#include <sstream>
#include <string>

#include "obs/obs.hpp"

// --- Global allocation counter for the zero-allocation contract ----------
//
// Replacing global operator new/delete in the test binary lets us assert
// that disabled instrumentation macros never touch the heap.

namespace {
std::atomic<std::size_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace cps::obs {
namespace {

/// Arms/disarms recording for one test and restores the previous state.
class EnabledScope {
 public:
  explicit EnabledScope(bool on) : previous_(enabled()) { set_enabled(on); }
  ~EnabledScope() { set_enabled(previous_); }

 private:
  bool previous_;
};

TEST(Registry, SameNameReturnsSameMetric) {
  Counter& a = counter("test.registry.counter_identity");
  Counter& b = counter("test.registry.counter_identity");
  EXPECT_EQ(&a, &b);
  Histogram& h1 = histogram("test.registry.hist_identity");
  Histogram& h2 = histogram("test.registry.hist_identity");
  EXPECT_EQ(&h1, &h2);
}

TEST(Registry, KindMismatchThrows) {
  counter("test.registry.kind_clash");
  EXPECT_THROW(gauge("test.registry.kind_clash"), std::invalid_argument);
  EXPECT_THROW(histogram("test.registry.kind_clash"), std::invalid_argument);
}

TEST(Registry, NameSchemeEnforced) {
  EXPECT_TRUE(Registry::valid_name("layer.component.metric"));
  EXPECT_TRUE(Registry::valid_name("core.fra.plan_total"));
  EXPECT_FALSE(Registry::valid_name(""));
  EXPECT_FALSE(Registry::valid_name("nodots"));
  EXPECT_FALSE(Registry::valid_name(".leading.dot"));
  EXPECT_FALSE(Registry::valid_name("trailing.dot."));
  EXPECT_FALSE(Registry::valid_name("doubled..dot"));
  EXPECT_FALSE(Registry::valid_name("Upper.Case"));
  EXPECT_FALSE(Registry::valid_name("spa ce.metric"));
  EXPECT_THROW(counter("BAD NAME"), std::invalid_argument);
}

TEST(Registry, ResetZeroesButKeepsRegistrations) {
  Counter& c = counter("test.registry.reset_counter");
  c.add(5);
  Gauge& g = gauge("test.registry.reset_gauge");
  g.set(2.5);
  registry().reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  // The same reference is still live and usable.
  c.add(1);
  EXPECT_EQ(counter("test.registry.reset_counter").value(), 1u);
}

TEST(Registry, JsonSnapshotContainsMetrics) {
  counter("test.json.some_counter").add(7);
  gauge("test.json.some_gauge").set(1.5);
  histogram("test.json.some_hist").observe(3.0);
  std::ostringstream out;
  registry().write_json(out);
  const std::string s = out.str();
  EXPECT_EQ(s.front(), '{');
  EXPECT_NE(s.find("\"counters\""), std::string::npos);
  EXPECT_NE(s.find("\"test.json.some_counter\": 7"), std::string::npos);
  EXPECT_NE(s.find("\"test.json.some_gauge\": 1.5"), std::string::npos);
  EXPECT_NE(s.find("\"test.json.some_hist\""), std::string::npos);
  // Balanced braces/brackets — the cheap well-formedness invariant.
  long braces = 0;
  long brackets = 0;
  for (const char ch : s) {
    braces += ch == '{' ? 1 : ch == '}' ? -1 : 0;
    brackets += ch == '[' ? 1 : ch == ']' ? -1 : 0;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(Histogram, BucketBoundaries) {
  // ub(i) = 2^(i - 20); bucket i spans (ub(i-1), ub(i)].
  EXPECT_EQ(Histogram::bucket_upper_bound(20), 1.0);
  EXPECT_EQ(Histogram::bucket_upper_bound(21), 2.0);
  EXPECT_EQ(Histogram::bucket_upper_bound(19), 0.5);
  EXPECT_TRUE(std::isinf(
      Histogram::bucket_upper_bound(Histogram::kBucketCount - 1)));

  // Exact powers of two land in the bucket they bound.
  EXPECT_EQ(Histogram::bucket_index(1.0), 20u);
  EXPECT_EQ(Histogram::bucket_index(2.0), 21u);
  EXPECT_EQ(Histogram::bucket_index(0.5), 19u);
  // Just above a bound rolls into the next bucket.
  EXPECT_EQ(Histogram::bucket_index(1.0000001), 21u);
  EXPECT_EQ(Histogram::bucket_index(1.5), 21u);
  // Underflow and pathological inputs collapse into bucket 0.
  EXPECT_EQ(Histogram::bucket_index(0.0), 0u);
  EXPECT_EQ(Histogram::bucket_index(-3.0), 0u);
  EXPECT_EQ(Histogram::bucket_index(std::ldexp(1.0, -30)), 0u);
  EXPECT_EQ(Histogram::bucket_index(
                std::numeric_limits<double>::quiet_NaN()),
            0u);
  // Overflow saturates into the last bucket.
  EXPECT_EQ(Histogram::bucket_index(std::ldexp(1.0, 60)),
            Histogram::kBucketCount - 1);
  EXPECT_EQ(Histogram::bucket_index(
                std::numeric_limits<double>::infinity()),
            Histogram::kBucketCount - 1);

  // Every bucket index is consistent with its bounds.
  for (std::size_t i = 1; i + 1 < Histogram::kBucketCount; ++i) {
    const double ub = Histogram::bucket_upper_bound(i);
    EXPECT_EQ(Histogram::bucket_index(ub), i) << "at bucket " << i;
    EXPECT_EQ(Histogram::bucket_index(ub * 1.0000001), i + 1)
        << "above bucket " << i;
  }
}

TEST(Histogram, QuantileOnEmptyAndSingleBucket) {
  Histogram empty;
  // Every quantile of an empty histogram is 0 — no observations, no range.
  EXPECT_EQ(empty.quantile(0.0), 0.0);
  EXPECT_EQ(empty.quantile(0.5), 0.0);
  EXPECT_EQ(empty.quantile(0.99), 0.0);
  EXPECT_EQ(empty.quantile(1.0), 0.0);

  // All observations in one bucket: every quantile is clamped into the
  // observed [min, max] range, never the bucket's nominal bounds.
  Histogram single;
  single.observe(1.25);
  single.observe(1.5);
  single.observe(1.75);  // All land in bucket (1, 2].
  for (const double q : {0.0, 0.25, 0.5, 0.75, 0.99, 1.0}) {
    EXPECT_GE(single.quantile(q), 1.25) << "q=" << q;
    EXPECT_LE(single.quantile(q), 1.75) << "q=" << q;
  }
  EXPECT_EQ(single.quantile(1.0), 1.75);

  // One observation: every quantile IS that observation.
  Histogram one;
  one.observe(3.5);
  EXPECT_EQ(one.quantile(0.0), 3.5);
  EXPECT_EQ(one.quantile(0.5), 3.5);
  EXPECT_EQ(one.quantile(1.0), 3.5);
}

TEST(Histogram, StatsAndQuantiles) {
  Histogram h;
  EXPECT_EQ(h.quantile(0.5), 0.0);  // Empty.
  h.observe(1.0);
  h.observe(2.0);
  h.observe(4.0);
  h.observe(1000.0);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 1007.0);
  EXPECT_EQ(h.min(), 1.0);
  EXPECT_EQ(h.max(), 1000.0);
  EXPECT_EQ(h.mean(), 1007.0 / 4.0);
  EXPECT_LE(h.quantile(0.5), 4.0);
  EXPECT_GE(h.quantile(0.5), 1.0);
  EXPECT_EQ(h.quantile(1.0), 1000.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
}

TEST(Timer, RecordsHistogramAndNestedTraceSlices) {
  EnabledScope armed(true);
  trace().clear();
  Histogram& outer = histogram("test.timer.outer");
  Histogram& inner = histogram("test.timer.inner");
  outer.reset();
  inner.reset();
  {
    ScopedTimer t_outer("test.timer.outer");
    {
      ScopedTimer t_inner("test.timer.inner");
    }
  }
  EXPECT_EQ(outer.count(), 1u);
  EXPECT_EQ(inner.count(), 1u);

  const auto events = trace().snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Scope exit order: inner closes (and records) first.
  const TraceEvent& ev_inner = events[0];
  const TraceEvent& ev_outer = events[1];
  EXPECT_STREQ(ev_inner.name, "test.timer.inner");
  EXPECT_STREQ(ev_outer.name, "test.timer.outer");
  EXPECT_EQ(ev_inner.phase, 'X');
  EXPECT_EQ(ev_outer.phase, 'X');
  // The inner slice nests inside the outer slice on the timeline.
  EXPECT_GE(ev_inner.ts_us, ev_outer.ts_us);
  EXPECT_LE(ev_inner.ts_us + ev_inner.dur_us,
            ev_outer.ts_us + ev_outer.dur_us);
}

TEST(Trace, ChromeJsonAndJsonlWellFormed) {
  EnabledScope armed(true);
  trace().clear();
  trace().counter("test.trace.some_counter", 42.0);
  trace().instant("test.trace.some_marker");
  {
    ScopedTimer t("test.trace.some_slice");
  }

  std::ostringstream chrome;
  trace().write_chrome_json(chrome);
  const std::string cj = chrome.str();
  EXPECT_EQ(cj.rfind("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [", 0),
            0u);
  EXPECT_NE(cj.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(cj.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(cj.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(cj.find("\"args\": {\"value\": 42}"), std::string::npos);
  long braces = 0;
  long brackets = 0;
  for (const char ch : cj) {
    braces += ch == '{' ? 1 : ch == '}' ? -1 : 0;
    brackets += ch == '[' ? 1 : ch == ']' ? -1 : 0;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);

  std::ostringstream jsonl;
  trace().write_jsonl(jsonl);
  std::istringstream lines(jsonl.str());
  std::string line;
  std::size_t line_count = 0;
  while (std::getline(lines, line)) {
    ++line_count;
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  EXPECT_EQ(line_count, 3u);
  trace().clear();
}

TEST(Trace, CapacityCapDropsAndCounts) {
  EnabledScope armed(true);
  trace().clear();
  trace().set_capacity(8);
  for (int i = 0; i < 100; ++i) trace().instant("test.trace.flood");
  trace().flush_current_thread();
  EXPECT_EQ(trace().snapshot().size(), 8u);
  EXPECT_EQ(trace().dropped(), 92u);
  trace().set_capacity(1u << 20);
  trace().clear();
}

/// Arms the timeline for one test, restoring disarmed + cleared state.
class TimelineScope {
 public:
  TimelineScope() {
    timeline().clear();
    timeline().set_armed(true);
  }
  ~TimelineScope() {
    timeline().set_armed(false);
    timeline().clear();
  }
};

TEST(Timeline, DisarmedIsNoOp) {
  timeline().clear();
  timeline().set_armed(false);
  timeline().annotate("ignored", 1.0);
  timeline().sample("test.timeline.disarmed", 0);
  EXPECT_EQ(timeline().sample_count(), 0u);
}

TEST(Timeline, CounterDeltasArePerInterval) {
  EnabledScope armed(true);
  TimelineScope tl;
  Counter& c = counter("test.timeline.steps");
  c.reset();
  timeline().sample("test.timeline.baseline", 0);  // Baseline snapshot.

  c.add(3);
  timeline().sample("test.timeline.slot", 1);
  c.add(4);
  timeline().sample("test.timeline.slot", 2);
  timeline().sample("test.timeline.slot", 3);  // Nothing changed.

  ASSERT_EQ(timeline().sample_count(), 4u);
  const auto find_delta = [](const TimelineSample& s, const char* name) {
    for (const auto& [n, d] : s.counter_deltas) {
      if (n == name) return d;
    }
    return std::uint64_t{0};
  };
  EXPECT_EQ(find_delta(timeline().sample_at(1), "test.timeline.steps"), 3u);
  EXPECT_EQ(find_delta(timeline().sample_at(2), "test.timeline.steps"), 4u);
  EXPECT_EQ(find_delta(timeline().sample_at(3), "test.timeline.steps"), 0u);
  EXPECT_EQ(timeline().sample_at(3).counter_deltas.size(), 0u);
}

TEST(Timeline, ResetReportsValueSinceReset) {
  EnabledScope armed(true);
  TimelineScope tl;
  Counter& c = counter("test.timeline.reset_counter");
  c.reset();
  c.add(10);
  timeline().sample("test.timeline.slot", 0);
  // A reset between samples makes the current value smaller than the
  // previous snapshot; the delta is then everything since the reset.
  c.reset();
  c.add(2);
  timeline().sample("test.timeline.slot", 1);
  const TimelineSample& s = timeline().sample_at(1);
  ASSERT_EQ(s.counter_deltas.size(), 1u);
  EXPECT_EQ(s.counter_deltas[0].second, 2u);
}

TEST(Timeline, GaugeEmittedOnlyWhenBitsChange) {
  EnabledScope armed(true);
  TimelineScope tl;
  Gauge& g = gauge("test.timeline.some_gauge");
  g.set(1.5);
  timeline().sample("test.timeline.slot", 0);
  g.set(1.5);  // Same bits: no entry.
  timeline().sample("test.timeline.slot", 1);
  g.set(2.5);
  timeline().sample("test.timeline.slot", 2);

  const auto has_gauge = [](const TimelineSample& s, const char* name) {
    for (const auto& [n, v] : s.gauge_values) {
      if (n == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_gauge(timeline().sample_at(0),
                        "test.timeline.some_gauge"));
  EXPECT_FALSE(has_gauge(timeline().sample_at(1),
                         "test.timeline.some_gauge"));
  EXPECT_TRUE(has_gauge(timeline().sample_at(2),
                        "test.timeline.some_gauge"));
}

TEST(Timeline, HistogramBucketDeltasMerge) {
  EnabledScope armed(true);
  TimelineScope tl;
  Histogram& h = histogram("test.timeline.some_hist");
  h.reset();
  timeline().sample("test.timeline.baseline", 0);
  h.observe(1.5);  // Bucket (1, 2].
  h.observe(1.5);
  h.observe(3.0);  // Bucket (2, 4].
  timeline().sample("test.timeline.slot", 1);

  const TimelineSample& s = timeline().sample_at(1);
  const TimelineSample::HistDelta* hd = nullptr;
  for (const auto& d : s.hist_deltas) {
    if (d.name == "test.timeline.some_hist") hd = &d;
  }
  ASSERT_NE(hd, nullptr);
  EXPECT_EQ(hd->count_delta, 3u);
  std::uint64_t bucket_total = 0;
  for (const auto& [bucket, n] : hd->bucket_deltas) bucket_total += n;
  // Bucket deltas are mergeable: they sum to the count delta exactly.
  EXPECT_EQ(bucket_total, hd->count_delta);
  ASSERT_EQ(hd->bucket_deltas.size(), 2u);
  EXPECT_EQ(hd->bucket_deltas[0].first, Histogram::bucket_index(1.5));
  EXPECT_EQ(hd->bucket_deltas[0].second, 2u);
  EXPECT_EQ(hd->bucket_deltas[1].first, Histogram::bucket_index(3.0));
  EXPECT_EQ(hd->bucket_deltas[1].second, 1u);
}

TEST(Timeline, AnnotationsAttachToNextSampleOnly) {
  EnabledScope armed(true);
  TimelineScope tl;
  timeline().annotate("delta", 42.5);
  timeline().annotate("alive", 100.0);
  timeline().sample("test.timeline.slot", 7);
  timeline().sample("test.timeline.slot", 8);

  const TimelineSample& first = timeline().sample_at(0);
  EXPECT_EQ(first.index, 7);
  ASSERT_EQ(first.fields.size(), 2u);
  EXPECT_EQ(first.fields[0].first, "delta");
  EXPECT_EQ(first.fields[0].second, 42.5);
  EXPECT_EQ(first.fields[1].first, "alive");
  EXPECT_EQ(first.fields[1].second, 100.0);
  EXPECT_EQ(timeline().sample_at(1).fields.size(), 0u);
}

TEST(Timeline, DurationHistogramsAndExclusionsStayOut) {
  EnabledScope armed(true);
  TimelineScope tl;
  // Wall-time histograms (ScopedTimer) and explicitly excluded metrics are
  // environment-dependent; the timeline must never carry them.
  registry().duration_histogram("test.timeline.wall_hist").observe(1.0);
  counter("test.timeline.excluded_counter");
  registry().exclude_from_timeline("test.timeline.excluded_counter");
  timeline().sample("test.timeline.baseline", 0);
  registry().duration_histogram("test.timeline.wall_hist").observe(2.0);
  counter("test.timeline.excluded_counter").add(5);
  counter("test.timeline.included_counter").add(1);
  timeline().sample("test.timeline.slot", 1);

  const TimelineSample& s = timeline().sample_at(1);
  for (const auto& d : s.hist_deltas) {
    EXPECT_NE(d.name, "test.timeline.wall_hist");
  }
  bool saw_included = false;
  for (const auto& [n, v] : s.counter_deltas) {
    EXPECT_NE(n, "test.timeline.excluded_counter");
    saw_included |= n == "test.timeline.included_counter";
  }
  EXPECT_TRUE(saw_included);
}

TEST(Timeline, JsonlDeterministicAndWellFormed) {
  EnabledScope armed(true);
  const auto record_run = [] {
    TimelineScope tl;
    Counter& c = counter("test.timeline.jsonl_counter");
    c.reset();
    gauge("test.timeline.jsonl_gauge").set(0.0);
    histogram("test.timeline.jsonl_hist").reset();
    timeline().sample("test.timeline.baseline", 0);
    c.add(7);
    gauge("test.timeline.jsonl_gauge").set(2.25);
    histogram("test.timeline.jsonl_hist").observe(1.5);
    timeline().annotate("delta", 3.0625);
    timeline().sample("test.timeline.slot", 1);
    std::ostringstream out;
    timeline().write_jsonl(out);
    return out.str();
  };
  const std::string first = record_run();
  const std::string second = record_run();
  // Byte-identical across identical runs — the determinism contract the
  // cross-thread-count tests build on.
  EXPECT_EQ(first, second);

  std::istringstream lines(first);
  std::string line;
  std::size_t line_count = 0;
  while (std::getline(lines, line)) {
    ++line_count;
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  EXPECT_EQ(line_count, 2u);
  EXPECT_NE(first.find("\"label\": \"test.timeline.slot\""),
            std::string::npos);
  EXPECT_NE(first.find("\"delta\": 3.0625"), std::string::npos);
  EXPECT_NE(first.find("\"test.timeline.jsonl_counter\": 7"),
            std::string::npos);
}

TEST(Macros, DisabledRecordsNothing) {
  EnabledScope disarmed(false);
  Counter& c = counter("test.macros.untouched");
  c.reset();
  CPS_COUNT("test.macros.untouched", 3);
  CPS_TRACE_COUNTER("test.macros.trace_untouched", 1.0);
  CPS_TRACE_INSTANT("test.macros.marker_untouched");
  {
    CPS_TIMER("test.macros.timer_untouched");
  }
  EXPECT_EQ(c.value(), 0u);
}

TEST(Macros, ZeroAllocationWhileDisabled) {
  EnabledScope disarmed(false);
  const std::size_t before = g_alloc_count.load();
  for (int i = 0; i < 10000; ++i) {
    CPS_COUNT("test.alloc.counter", 1);
    CPS_GAUGE("test.alloc.gauge", 1.5);
    CPS_HIST("test.alloc.hist", 2.5);
    CPS_TRACE_COUNTER("test.alloc.trace", 3.5);
    CPS_TRACE_INSTANT("test.alloc.marker");
    CPS_TIMER("test.alloc.timer");
  }
  EXPECT_EQ(g_alloc_count.load(), before);
}

TEST(Macros, EnabledRecords) {
#if defined(CPS_OBS_ENABLED)
  EnabledScope armed(true);
  Counter& c = counter("test.macros.armed_counter");
  c.reset();
  CPS_COUNT("test.macros.armed_counter", 2);
  CPS_COUNT("test.macros.armed_counter", 3);
  EXPECT_EQ(c.value(), 5u);
  Histogram& h = histogram("test.macros.armed_hist");
  h.reset();
  CPS_HIST("test.macros.armed_hist", 1.25);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.sum(), 1.25);
#else
  // Compiled out: the macros must not record even while armed.
  EnabledScope armed(true);
  Counter& c = counter("test.macros.armed_counter");
  c.reset();
  CPS_COUNT("test.macros.armed_counter", 2);
  EXPECT_EQ(c.value(), 0u);
#endif
}

}  // namespace
}  // namespace cps::obs
