// End-to-end determinism contract of the parallel layer: the planners and
// metrics must produce the same bits at every pool size.  threads = 1 runs
// the exact serial loops; threads >= 2 chunk by (n, grain) only — never by
// thread count — and combine partials in chunk order, so any worker count
// reproduces the same results.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/cma.hpp"
#include "core/delta.hpp"
#include "core/fra.hpp"
#include "core/planner.hpp"
#include "core/reconstruction.hpp"
#include "field/analytic_fields.hpp"
#include "field/time_varying.hpp"
#include "graph/geometric_graph.hpp"
#include "numerics/rng.hpp"
#include "obs/obs.hpp"
#include "parallel/thread_pool.hpp"

namespace cps::core {
namespace {

const num::Rect kRegion{0.0, 0.0, 100.0, 100.0};

class ThreadScope {
 public:
  explicit ThreadScope(std::size_t n) { par::set_thread_count(n); }
  ~ThreadScope() { par::set_thread_count(0); }
};

field::GaussianMixtureField test_field() {
  return field::GaussianMixtureField(0.5, {{{25.0, 30.0}, 3.0, 8.0},
                                           {{70.0, 65.0}, 2.0, 12.0},
                                           {{45.0, 80.0}, 4.0, 6.0}});
}

TEST(ParallelDeterminism, FraDeploymentIdenticalAtEveryThreadCount) {
  const auto f = test_field();
  FraConfig cfg;
  cfg.error_grid = 50;
  std::vector<std::vector<geo::Vec2>> runs;
  for (const std::size_t threads : {1u, 2u, 3u, 4u}) {
    ThreadScope scope(threads);
    FraPlanner planner(cfg);
    runs.push_back(
        planner.plan(f, PlanRequest{kRegion, 40, 10.0}).positions);
  }
  for (std::size_t r = 1; r < runs.size(); ++r) {
    ASSERT_EQ(runs[r].size(), runs[0].size());
    for (std::size_t i = 0; i < runs[0].size(); ++i) {
      EXPECT_EQ(runs[r][i].x, runs[0][i].x) << "run " << r << " node " << i;
      EXPECT_EQ(runs[r][i].y, runs[0][i].y) << "run " << r << " node " << i;
    }
  }
}

TEST(ParallelDeterminism, FraCurvatureMeasureIdenticalAcrossThreadCounts) {
  const auto f = test_field();
  FraConfig cfg;
  cfg.error_grid = 30;
  cfg.measure = SelectionMeasure::kProduct;
  std::vector<std::vector<geo::Vec2>> runs;
  for (const std::size_t threads : {1u, 3u}) {
    ThreadScope scope(threads);
    FraPlanner planner(cfg);
    runs.push_back(
        planner.plan(f, PlanRequest{kRegion, 15, 10.0}).positions);
  }
  EXPECT_EQ(runs[0], runs[1]);
}

TEST(ParallelDeterminism, CmaTrajectoriesIdenticalAcrossThreadCounts) {
  const auto shared = std::make_shared<field::GaussianMixtureField>(
      0.5, std::vector<field::GaussianBump>{{{30.0, 30.0}, 3.0, 8.0},
                                            {{70.0, 60.0}, 2.5, 10.0}});
  CmaConfig cfg;
  cfg.sample_spacing = 1.0;
  cfg.rc = 100.0 / 5.0 * 1.001;  // Keep the 25-node grid connected.
  std::vector<std::vector<geo::Vec2>> runs;
  for (const std::size_t threads : {1u, 2u, 4u}) {
    ThreadScope scope(threads);
    const field::StaticTimeField env(shared);
    CmaSimulation sim(env, kRegion,
                      GridPlanner::make_grid(kRegion, 25).positions, cfg);
    sim.run(25);
    runs.push_back(sim.positions());
  }
  for (std::size_t r = 1; r < runs.size(); ++r) {
    ASSERT_EQ(runs[r].size(), runs[0].size());
    for (std::size_t i = 0; i < runs[0].size(); ++i) {
      EXPECT_EQ(runs[r][i].x, runs[0][i].x) << "run " << r << " node " << i;
      EXPECT_EQ(runs[r][i].y, runs[0][i].y) << "run " << r << " node " << i;
    }
  }
}

TEST(ParallelDeterminism, GeometricGraphMatchesAllPairsOracle) {
  num::Rng rng(77);
  std::vector<geo::Vec2> pts(250);
  for (auto& p : pts) {
    p = {rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)};
  }
  const double radius = 9.0;
  const double r2 = radius * radius;
  for (const std::size_t threads : {1u, 4u}) {
    ThreadScope scope(threads);
    const graph::GeometricGraph g(pts, radius);
    std::size_t oracle_edges = 0;
    for (std::size_t i = 0; i < pts.size(); ++i) {
      std::vector<std::size_t> oracle;
      for (std::size_t j = 0; j < pts.size(); ++j) {
        if (i != j && geo::distance_sq(pts[i], pts[j]) <= r2) {
          oracle.push_back(j);
        }
      }
      oracle_edges += oracle.size();
      EXPECT_EQ(g.neighbors(i), oracle) << "node " << i;
    }
    EXPECT_EQ(g.edge_count(), oracle_edges / 2);
  }
}

TEST(ParallelDeterminism, DeltaMetricIdenticalAcrossMultithreadedCounts) {
  const auto f = test_field();
  const DeltaMetric metric(kRegion, 100);
  const auto grid = GridPlanner::make_grid(kRegion, 36);
  const auto samples = take_samples(f, grid.positions);
  par::set_thread_count(2);
  const double at2 = metric.delta_from_samples(f, samples);
  par::set_thread_count(4);
  const double at4 = metric.delta_from_samples(f, samples);
  par::set_thread_count(1);
  const double at1 = metric.delta_from_samples(f, samples);
  par::set_thread_count(0);
  EXPECT_EQ(at2, at4);  // Same chunk layout: same bits.
  // threads = 1 accumulates in one chain rather than per-chunk partials;
  // agreement is to rounding, not bits.
  EXPECT_NEAR(at1, at2, 1e-9 * std::abs(at1));
}

// With the telemetry timeline armed the delta reductions switch onto the
// chunk-pinned path (par::parallel_reduce_chunked), which folds the SAME
// chunk layout serially at threads = 1 instead of the single-chain
// shortcut — so the annotated δ value, and every counter delta the sample
// carries (walk steps depend on per-chunk hint chains), are bit-identical
// at EVERY thread count, including 1.
TEST(ParallelDeterminism, ArmedTimelineDeltaIdenticalAtEveryThreadCount) {
  const auto f = test_field();
  DeltaMetric metric(kRegion, 100);
  const auto grid = GridPlanner::make_grid(kRegion, 36);
  const auto samples = take_samples(f, grid.positions);

  const bool obs_was_enabled = obs::enabled();
  obs::set_enabled(true);
  std::vector<double> values;
  std::vector<std::vector<std::pair<std::string, double>>> fields;
  std::vector<std::vector<std::pair<std::string, std::uint64_t>>> counters;
  for (const std::size_t threads : {1u, 2u, 4u}) {
    ThreadScope scope(threads);
    obs::registry().reset();  // Per-run counts: first-sample deltas match.
    // The reference cache is content-keyed and on by default, so the
    // second run would hit where the first missed; empty it so every
    // thread count does identical work (including the miss+fill path).
    metric.clear_reference_cache();
    obs::timeline().clear();
    obs::timeline().set_armed(true);
    values.push_back(metric.delta_from_samples(f, samples));
    obs::timeline().set_armed(false);
#if defined(CPS_OBS_ENABLED)
    ASSERT_EQ(obs::timeline().sample_count(), 1u) << threads << " threads";
    fields.push_back(obs::timeline().sample_at(0).fields);
    counters.push_back(obs::timeline().sample_at(0).counter_deltas);
#endif
    obs::timeline().clear();
  }
  obs::set_enabled(obs_was_enabled);

  EXPECT_EQ(values[0], values[1]);
  EXPECT_EQ(values[1], values[2]);
#if defined(CPS_OBS_ENABLED)
  EXPECT_EQ(fields[0], fields[1]);
  EXPECT_EQ(fields[1], fields[2]);
  EXPECT_EQ(counters[0], counters[1]);
  EXPECT_EQ(counters[1], counters[2]);
#endif
}

TEST(ParallelDeterminism, DeltaBetweenIdenticalAcrossMultithreadedCounts) {
  const auto f = test_field();
  const field::GaussianMixtureField g(
      0.3, {{{40.0, 40.0}, 2.0, 9.0}, {{60.0, 70.0}, 1.5, 11.0}});
  const DeltaMetric metric(kRegion, 100);
  par::set_thread_count(2);
  const double at2 = metric.delta_between(f, g);
  par::set_thread_count(5);
  const double at5 = metric.delta_between(f, g);
  par::set_thread_count(0);
  EXPECT_EQ(at2, at5);
}

}  // namespace
}  // namespace cps::core
