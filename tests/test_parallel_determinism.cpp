// End-to-end determinism contract of the parallel layer: the planners and
// metrics must produce the same bits at every pool size.  threads = 1 runs
// the exact serial loops; threads >= 2 chunk by (n, grain) only — never by
// thread count — and combine partials in chunk order, so any worker count
// reproduces the same results.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "core/cma.hpp"
#include "core/delta.hpp"
#include "core/fra.hpp"
#include "core/planner.hpp"
#include "core/reconstruction.hpp"
#include "field/analytic_fields.hpp"
#include "field/time_varying.hpp"
#include "graph/geometric_graph.hpp"
#include "numerics/rng.hpp"
#include "parallel/thread_pool.hpp"

namespace cps::core {
namespace {

const num::Rect kRegion{0.0, 0.0, 100.0, 100.0};

class ThreadScope {
 public:
  explicit ThreadScope(std::size_t n) { par::set_thread_count(n); }
  ~ThreadScope() { par::set_thread_count(0); }
};

field::GaussianMixtureField test_field() {
  return field::GaussianMixtureField(0.5, {{{25.0, 30.0}, 3.0, 8.0},
                                           {{70.0, 65.0}, 2.0, 12.0},
                                           {{45.0, 80.0}, 4.0, 6.0}});
}

TEST(ParallelDeterminism, FraDeploymentIdenticalAtEveryThreadCount) {
  const auto f = test_field();
  FraConfig cfg;
  cfg.error_grid = 50;
  std::vector<std::vector<geo::Vec2>> runs;
  for (const std::size_t threads : {1u, 2u, 3u, 4u}) {
    ThreadScope scope(threads);
    FraPlanner planner(cfg);
    runs.push_back(
        planner.plan(f, PlanRequest{kRegion, 40, 10.0}).positions);
  }
  for (std::size_t r = 1; r < runs.size(); ++r) {
    ASSERT_EQ(runs[r].size(), runs[0].size());
    for (std::size_t i = 0; i < runs[0].size(); ++i) {
      EXPECT_EQ(runs[r][i].x, runs[0][i].x) << "run " << r << " node " << i;
      EXPECT_EQ(runs[r][i].y, runs[0][i].y) << "run " << r << " node " << i;
    }
  }
}

TEST(ParallelDeterminism, FraCurvatureMeasureIdenticalAcrossThreadCounts) {
  const auto f = test_field();
  FraConfig cfg;
  cfg.error_grid = 30;
  cfg.measure = SelectionMeasure::kProduct;
  std::vector<std::vector<geo::Vec2>> runs;
  for (const std::size_t threads : {1u, 3u}) {
    ThreadScope scope(threads);
    FraPlanner planner(cfg);
    runs.push_back(
        planner.plan(f, PlanRequest{kRegion, 15, 10.0}).positions);
  }
  EXPECT_EQ(runs[0], runs[1]);
}

TEST(ParallelDeterminism, CmaTrajectoriesIdenticalAcrossThreadCounts) {
  const auto shared = std::make_shared<field::GaussianMixtureField>(
      0.5, std::vector<field::GaussianBump>{{{30.0, 30.0}, 3.0, 8.0},
                                            {{70.0, 60.0}, 2.5, 10.0}});
  CmaConfig cfg;
  cfg.sample_spacing = 1.0;
  cfg.rc = 100.0 / 5.0 * 1.001;  // Keep the 25-node grid connected.
  std::vector<std::vector<geo::Vec2>> runs;
  for (const std::size_t threads : {1u, 2u, 4u}) {
    ThreadScope scope(threads);
    const field::StaticTimeField env(shared);
    CmaSimulation sim(env, kRegion,
                      GridPlanner::make_grid(kRegion, 25).positions, cfg);
    sim.run(25);
    runs.push_back(sim.positions());
  }
  for (std::size_t r = 1; r < runs.size(); ++r) {
    ASSERT_EQ(runs[r].size(), runs[0].size());
    for (std::size_t i = 0; i < runs[0].size(); ++i) {
      EXPECT_EQ(runs[r][i].x, runs[0][i].x) << "run " << r << " node " << i;
      EXPECT_EQ(runs[r][i].y, runs[0][i].y) << "run " << r << " node " << i;
    }
  }
}

TEST(ParallelDeterminism, GeometricGraphMatchesAllPairsOracle) {
  num::Rng rng(77);
  std::vector<geo::Vec2> pts(250);
  for (auto& p : pts) {
    p = {rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)};
  }
  const double radius = 9.0;
  const double r2 = radius * radius;
  for (const std::size_t threads : {1u, 4u}) {
    ThreadScope scope(threads);
    const graph::GeometricGraph g(pts, radius);
    std::size_t oracle_edges = 0;
    for (std::size_t i = 0; i < pts.size(); ++i) {
      std::vector<std::size_t> oracle;
      for (std::size_t j = 0; j < pts.size(); ++j) {
        if (i != j && geo::distance_sq(pts[i], pts[j]) <= r2) {
          oracle.push_back(j);
        }
      }
      oracle_edges += oracle.size();
      EXPECT_EQ(g.neighbors(i), oracle) << "node " << i;
    }
    EXPECT_EQ(g.edge_count(), oracle_edges / 2);
  }
}

TEST(ParallelDeterminism, DeltaMetricIdenticalAcrossMultithreadedCounts) {
  const auto f = test_field();
  const DeltaMetric metric(kRegion, 100);
  const auto grid = GridPlanner::make_grid(kRegion, 36);
  const auto samples = take_samples(f, grid.positions);
  par::set_thread_count(2);
  const double at2 = metric.delta_from_samples(f, samples);
  par::set_thread_count(4);
  const double at4 = metric.delta_from_samples(f, samples);
  par::set_thread_count(1);
  const double at1 = metric.delta_from_samples(f, samples);
  par::set_thread_count(0);
  EXPECT_EQ(at2, at4);  // Same chunk layout: same bits.
  // threads = 1 accumulates in one chain rather than per-chunk partials;
  // agreement is to rounding, not bits.
  EXPECT_NEAR(at1, at2, 1e-9 * std::abs(at1));
}

TEST(ParallelDeterminism, DeltaBetweenIdenticalAcrossMultithreadedCounts) {
  const auto f = test_field();
  const field::GaussianMixtureField g(
      0.3, {{{40.0, 40.0}, 2.0, 9.0}, {{60.0, 70.0}, 1.5, 11.0}});
  const DeltaMetric metric(kRegion, 100);
  par::set_thread_count(2);
  const double at2 = metric.delta_between(f, g);
  par::set_thread_count(5);
  const double at5 = metric.delta_between(f, g);
  par::set_thread_count(0);
  EXPECT_EQ(at2, at5);
}

}  // namespace
}  // namespace cps::core
