// Tests for the parallel substrate (parallel/*): thread-pool scheduling,
// the determinism contract of parallel_for / parallel_reduce, exception
// propagation, nested-region behaviour, the spatial hash against a brute
// force oracle, and obs counter correctness under concurrent updates.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "geometry/vec2.hpp"
#include "numerics/rng.hpp"
#include "obs/obs.hpp"
#include "parallel/spatial_hash.hpp"
#include "parallel/thread_pool.hpp"

namespace cps::par {
namespace {

/// Pins the process pool to `n` workers for one test, restoring the
/// automatic sizing afterwards.
class ThreadScope {
 public:
  explicit ThreadScope(std::size_t n) { set_thread_count(n); }
  ~ThreadScope() { set_thread_count(0); }
};

TEST(ThreadPool, HardwareThreadsIsPositive) {
  EXPECT_GE(hardware_threads(), 1u);
}

TEST(ThreadPool, SetThreadCountIsObserved) {
  ThreadScope scope(3);
  EXPECT_EQ(thread_count(), 3u);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  for (const std::size_t threads : {1u, 2u, 3u, 5u}) {
    ThreadScope scope(threads);
    for (const std::size_t n : {0u, 1u, 7u, 1000u, 4097u}) {
      std::vector<int> hits(n, 0);
      parallel_for(n, [&](std::size_t i) { ++hits[i]; }, /*grain=*/64);
      EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                              [](int h) { return h == 1; }))
          << "threads=" << threads << " n=" << n;
    }
  }
}

TEST(ParallelForChunks, ChunksPartitionTheRangeInOrderWithinEachChunk) {
  ThreadScope scope(4);
  const std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for_chunks(
      n,
      [&](std::size_t begin, std::size_t end) {
        ASSERT_LT(begin, end);
        for (std::size_t i = begin; i < end; ++i) {
          hits[i].fetch_add(1, std::memory_order_relaxed);
        }
      },
      /*grain=*/37);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ParallelReduce, ExactIntegerSumAtEveryThreadCount) {
  const std::size_t n = 12345;
  const std::uint64_t expected = static_cast<std::uint64_t>(n) * (n - 1) / 2;
  for (const std::size_t threads : {1u, 2u, 3u, 4u}) {
    ThreadScope scope(threads);
    const std::uint64_t sum = parallel_reduce(
        n, std::uint64_t{0},
        [](std::size_t begin, std::size_t end) {
          std::uint64_t s = 0;
          for (std::size_t i = begin; i < end; ++i) s += i;
          return s;
        },
        [](std::uint64_t a, std::uint64_t b) { return a + b; });
    EXPECT_EQ(sum, expected) << "threads=" << threads;
  }
}

TEST(ParallelReduce, FloatSumBitsIdenticalAcrossMultithreadedCounts) {
  // The chunk layout depends only on (n, grain) and partials combine in
  // ascending chunk order, so any thread count >= 2 must produce the same
  // rounding sequence — identical bits, not just close values.
  const std::size_t n = 10007;
  const auto run = [&] {
    return parallel_reduce(
        n, 0.0,
        [](std::size_t begin, std::size_t end) {
          double s = 0.0;
          for (std::size_t i = begin; i < end; ++i) {
            s += std::sin(static_cast<double>(i)) * 1e-3;
          }
          return s;
        },
        [](double a, double b) { return a + b; });
  };
  set_thread_count(2);
  const double at2 = run();
  for (const std::size_t threads : {3u, 4u, 7u}) {
    set_thread_count(threads);
    const double at_n = run();
    EXPECT_EQ(std::memcmp(&at2, &at_n, sizeof(double)), 0)
        << "threads=" << threads << " " << at2 << " vs " << at_n;
  }
  set_thread_count(0);
}

TEST(ParallelReduce, FirstMaxArgmaxIdenticalAtEveryThreadCount) {
  // The FRA selection reduction: strict > within a chunk plus a
  // chunk-ordered "later wins only when strictly greater" combine keeps
  // the lowest-index maximum at every thread count, including 1.
  struct Best {
    double score;
    std::size_t idx;
  };
  const std::size_t n = 5000;
  std::vector<double> scores(n);
  num::Rng rng(99);
  for (auto& s : scores) s = rng.uniform(0.0, 1.0);
  scores[1234] = 2.0;
  scores[4321] = 2.0;  // Duplicate max: the first one must win.
  std::vector<std::size_t> winners;
  for (const std::size_t threads : {1u, 2u, 3u, 4u}) {
    ThreadScope scope(threads);
    const Best found = parallel_reduce(
        n, Best{-1.0, n},
        [&](std::size_t begin, std::size_t end) {
          Best local{-1.0, n};
          for (std::size_t i = begin; i < end; ++i) {
            if (scores[i] > local.score) local = Best{scores[i], i};
          }
          return local;
        },
        [](Best a, Best b) { return b.score > a.score ? b : a; });
    winners.push_back(found.idx);
  }
  for (const std::size_t w : winners) EXPECT_EQ(w, 1234u);
}

TEST(ParallelFor, ExceptionsPropagateToTheCaller) {
  ThreadScope scope(4);
  EXPECT_THROW(
      parallel_for(1000,
                   [](std::size_t i) {
                     if (i == 777) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
  // The pool must survive a throwing region and keep scheduling.
  std::atomic<std::size_t> count{0};
  parallel_for(100, [&](std::size_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 100u);
}

TEST(ParallelFor, NestedRegionsRunInlineWithoutDeadlock) {
  ThreadScope scope(4);
  std::vector<std::atomic<int>> hits(64 * 64);
  parallel_for(64, [&](std::size_t i) {
    parallel_for(64, [&](std::size_t j) {
      hits[i * 64 + j].fetch_add(1, std::memory_order_relaxed);
    });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ObsCounters, ExactUnderConcurrentUpdates) {
  // The obs layer is advertised as safe inside parallel regions: n
  // concurrent add(1) calls must land exactly n.
  ThreadScope scope(4);
  obs::Counter& c = obs::counter("test.parallel.concurrent_counter");
  c.reset();
  const std::size_t n = 100000;
  parallel_for(n, [&](std::size_t) { c.add(1); }, /*grain=*/128);
  EXPECT_EQ(c.value(), n);

  obs::Histogram& h = obs::histogram("test.parallel.concurrent_hist");
  h.reset();
  const bool was_enabled = obs::enabled();
  obs::set_enabled(true);
  parallel_for(n, [&](std::size_t) { CPS_HIST("test.parallel.concurrent_hist", 1.0); },
               /*grain=*/128);
  obs::set_enabled(was_enabled);
#if defined(CPS_OBS_ENABLED)
  EXPECT_EQ(h.count(), n);
#endif
}

// --- Spatial hash ---------------------------------------------------------

std::vector<geo::Vec2> random_points(std::size_t n, std::uint64_t seed) {
  num::Rng rng(seed);
  std::vector<geo::Vec2> pts(n);
  for (auto& p : pts) p = {rng.uniform(0.0, 100.0), rng.uniform(0.0, 80.0)};
  return pts;
}

TEST(SpatialHash, RejectsNonPositiveCellSize) {
  const std::vector<geo::Vec2> pts = {{0.0, 0.0}};
  EXPECT_THROW(SpatialHash(pts, 0.0), std::invalid_argument);
  EXPECT_THROW(SpatialHash(pts, -1.0), std::invalid_argument);
}

TEST(SpatialHash, EmptyPointSetYieldsNothing) {
  const SpatialHash hash(std::vector<geo::Vec2>{}, 5.0);
  EXPECT_EQ(hash.cell_count(), 0u);
  std::size_t visits = 0;
  hash.for_each_candidate({50.0, 50.0}, 10.0,
                          [&](std::uint32_t) { ++visits; });
  EXPECT_EQ(visits, 0u);
}

TEST(SpatialHash, EveryPointLandsInExactlyOneCell) {
  const auto pts = random_points(500, 11);
  const SpatialHash hash(pts, 7.0);
  std::vector<int> seen(pts.size(), 0);
  for (std::size_t c = 0; c < hash.cell_count(); ++c) {
    std::uint32_t prev = 0;
    bool first = true;
    for (const std::uint32_t id : hash.cell_members(c)) {
      ++seen[id];
      if (!first) EXPECT_LT(prev, id);  // Ascending inside each cell.
      prev = id;
      first = false;
    }
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(),
                          [](int s) { return s == 1; }));
}

TEST(SpatialHash, RadiusQueriesMatchBruteForce) {
  const auto pts = random_points(400, 23);
  for (const double cell : {2.0, 7.0, 25.0}) {
    const SpatialHash hash(pts, cell);
    num::Rng rng(5);
    for (int q = 0; q < 50; ++q) {
      const geo::Vec2 p{rng.uniform(-10.0, 110.0), rng.uniform(-10.0, 90.0)};
      const double radius = rng.uniform(0.5, 20.0);
      std::vector<std::uint32_t> found;
      hash.for_each_candidate(p, radius, [&](std::uint32_t id) {
        if (geo::distance(pts[id], p) <= radius) found.push_back(id);
      });
      std::sort(found.begin(), found.end());
      std::vector<std::uint32_t> expected;
      for (std::size_t i = 0; i < pts.size(); ++i) {
        if (geo::distance(pts[i], p) <= radius) {
          expected.push_back(static_cast<std::uint32_t>(i));
        }
      }
      EXPECT_EQ(found, expected) << "cell=" << cell << " radius=" << radius;
    }
  }
}

TEST(SpatialHash, CellDistanceIsALowerBoundOnMemberDistances) {
  const auto pts = random_points(300, 31);
  const SpatialHash hash(pts, 6.0);
  num::Rng rng(17);
  for (int q = 0; q < 30; ++q) {
    const geo::Vec2 p{rng.uniform(-20.0, 120.0), rng.uniform(-20.0, 100.0)};
    for (std::size_t c = 0; c < hash.cell_count(); ++c) {
      const double bound = hash.cell_distance_sq(p, c);
      for (const std::uint32_t id : hash.cell_members(c)) {
        EXPECT_LE(bound, geo::distance_sq(pts[id], p) + 1e-9);
      }
    }
  }
}

}  // namespace
}  // namespace cps::par
