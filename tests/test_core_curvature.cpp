// Tests for local curvature estimation (core/curvature.hpp).
#include "core/curvature.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <tuple>

#include "field/analytic_fields.hpp"

namespace cps::core {
namespace {

TEST(SensingPatch, Validation) {
  const field::ConstantField f(0.0);
  EXPECT_THROW(SensingPatch(f, {0.0, 0.0}, 0.0), std::invalid_argument);
  EXPECT_THROW(SensingPatch(f, {0.0, 0.0}, 5.0, 0.0), std::invalid_argument);
  // Radius below the lattice pitch leaves a single sample.
  EXPECT_THROW(SensingPatch(f, {0.0, 0.0}, 0.4, 1.0), std::invalid_argument);
}

TEST(SensingPatch, SampleCountApproximatesDiskArea) {
  // The paper's m = floor(pi Rs^2): lattice points in the disk track the
  // area (Gauss circle problem, within a few percent at Rs = 5).
  const field::ConstantField f(0.0);
  const SensingPatch patch(f, {50.0, 50.0}, 5.0);
  const double expected = std::numbers::pi * 25.0;
  EXPECT_NEAR(static_cast<double>(patch.sample_count()), expected, 5.0);
}

TEST(SensingPatch, SamplesInsideDisk) {
  const field::ConstantField f(0.0);
  const SensingPatch patch(f, {50.0, 50.0}, 5.0);
  for (const auto& s : patch.samples()) {
    ASSERT_LE(geo::distance(s.position, {50.0, 50.0}), 5.0 + 1e-12);
  }
}

TEST(SensingPatch, FlatFieldHasZeroCurvature) {
  const field::PlaneField f(3.0, 0.5, -0.2);  // Planes bend nowhere.
  const SensingPatch patch(f, {50.0, 50.0}, 5.0);
  EXPECT_NEAR(patch.gaussian(), 0.0, 1e-9);
  EXPECT_NEAR(patch.mean_abs_gaussian(), 0.0, 1e-9);
}

TEST(SensingPatch, PeakDetectionOnBump) {
  // A Gaussian bump centred 3 m east of the node: the curvature peak in
  // the sensing disk should be at/near the bump centre.
  const field::GaussianMixtureField f(0.0, {{{53.0, 50.0}, 5.0, 2.0}});
  const SensingPatch patch(f, {50.0, 50.0}, 5.0);
  const auto peak = patch.peak_curvature();
  ASSERT_TRUE(peak.has_value());
  EXPECT_NEAR(peak->position.x, 53.0, 1.5);
  EXPECT_NEAR(peak->position.y, 50.0, 1.5);
  EXPECT_GT(peak->gaussian_abs, 0.0);
}

TEST(SensingPatch, MeanAbsGaussianPositiveOnCurvedField) {
  const field::PeaksField f(num::Rect{0.0, 0.0, 100.0, 100.0});
  const SensingPatch patch(f, {50.0, 50.0}, 5.0);
  EXPECT_GT(patch.mean_abs_gaussian(), 0.0);
}

// Property: the quadric fit recovers exact coefficients for quadric fields
// regardless of where the node sits.
class QuadricFieldRecovery
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(QuadricFieldRecovery, FitMatchesFieldCoefficients) {
  const auto [a, b, c] = GetParam();
  const geo::Vec2 center{40.0, 60.0};
  const field::QuadricField f(center, a, b, c);
  const SensingPatch patch(f, center, 5.0);
  EXPECT_NEAR(patch.quadric().a, a, 1e-6);
  EXPECT_NEAR(patch.quadric().b, b, 1e-6);
  EXPECT_NEAR(patch.quadric().c, c, 1e-6);
  EXPECT_NEAR(patch.gaussian(), 4.0 * a * c - b * b, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(
    Coefficients, QuadricFieldRecovery,
    ::testing::Values(std::make_tuple(0.5, 0.0, 0.5),
                      std::make_tuple(-1.0, 0.0, 1.0),
                      std::make_tuple(0.2, 0.3, -0.4),
                      std::make_tuple(0.0, 0.0, 0.0),
                      std::make_tuple(2.0, -1.0, 2.0)));

TEST(CurvatureEstimator, Validation) {
  EXPECT_THROW(CurvatureEstimator(0.0), std::invalid_argument);
  EXPECT_THROW(CurvatureEstimator(5.0, -1.0), std::invalid_argument);
}

TEST(CurvatureEstimator, MatchesSensingPatch) {
  const field::PeaksField f(num::Rect{0.0, 0.0, 100.0, 100.0});
  const CurvatureEstimator est(5.0);
  const SensingPatch patch(f, {30.0, 70.0}, 5.0);
  EXPECT_DOUBLE_EQ(est.gaussian_at(f, {30.0, 70.0}), patch.gaussian());
}

TEST(CurvatureEstimator, GridShapeAndNonNegativity) {
  const field::PeaksField f(num::Rect{0.0, 0.0, 100.0, 100.0});
  const CurvatureEstimator est(5.0);
  const auto grid =
      est.abs_gaussian_grid(f, num::Rect{10.0, 10.0, 90.0, 90.0}, 9, 7);
  EXPECT_EQ(grid.size(), 63u);
  for (const double g : grid) ASSERT_GE(g, 0.0);
  EXPECT_THROW(est.abs_gaussian_grid(f, num::Rect{0.0, 0.0, 1.0, 1.0}, 1, 5),
               std::invalid_argument);
}

TEST(CurvatureEstimator, CurvatureHigherAtPeakThanOnFlank) {
  // peaks' relief concentrates curvature near its bumps; far corners of
  // the domain are nearly flat.
  const num::Rect region{0.0, 0.0, 100.0, 100.0};
  const field::PeaksField f(region);
  const CurvatureEstimator est(5.0);
  const double at_center = std::abs(est.gaussian_at(f, {50.0, 50.0}));
  const double at_corner = std::abs(est.gaussian_at(f, {2.0, 2.0}));
  EXPECT_GT(at_center, 10.0 * at_corner);
}

}  // namespace
}  // namespace cps::core
