// Bit-identity tests for the batched-evaluation PR:
//
//  * Field::value_row vs per-point value() across the whole field zoo
//    (analytic, grid, time-varying slices, the GreenOrbs trace) — the
//    batch kernels may hoist row-invariant work but must keep every
//    per-point expression bit-identical;
//  * DeltaMetric's raster span engine vs the locate-walk oracle, across
//    corner policies, degenerate sample sets (collinear, duplicates),
//    and 1 / 4 worker threads;
//  * the content-keyed reference-lattice cache (on by default): cached
//    sweeps must reproduce the uncached bits exactly, copies must not
//    share entries, keys must track parameters / slice time / mutation,
//    and a recycled allocation must never resurrect a dead entry.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/delta.hpp"
#include "core/planner.hpp"
#include "core/reconstruction.hpp"
#include "field/analytic_fields.hpp"
#include "field/grid_field.hpp"
#include "field/time_varying.hpp"
#include "parallel/thread_pool.hpp"
#include "trace/greenorbs.hpp"

namespace cps {
namespace {

const num::Rect kRegion{0.0, 0.0, 100.0, 100.0};

// --- value_row vs scalar value() -----------------------------------------

/// Rows chosen to hit interior lattice rows, exact sample rows, and the
/// clamped boundary rows of grid-backed fields.
const double kRows[] = {0.0, 0.5, 13.37, 50.0, 99.5, 100.0};

std::vector<double> abscissae() {
  std::vector<double> xs;
  for (double x = 0.0; x <= 100.0; x += 1.7) xs.push_back(x);
  xs.push_back(100.0);  // Exactly the right edge (clamp path).
  return xs;
}

void expect_row_matches_scalar(const field::Field& f, const char* label) {
  const std::vector<double> xs = abscissae();
  std::vector<double> batch(xs.size());
  for (const double y : kRows) {
    SCOPED_TRACE(std::string(label) + " y=" + std::to_string(y));
    f.value_row(y, xs, batch.data());
    for (std::size_t i = 0; i < xs.size(); ++i) {
      EXPECT_EQ(batch[i], f.value(xs[i], y)) << "x=" << xs[i];
    }
  }
}

TEST(ValueRowEquivalence, AnalyticZooMatchesScalar) {
  expect_row_matches_scalar(
      field::AnalyticField(
          [](double x, double y) { return 0.3 * x - 0.7 * y + x * y / 97.0; }),
      "analytic");
  expect_row_matches_scalar(field::ConstantField(4.25), "constant");
  expect_row_matches_scalar(field::PlaneField(1.0, 0.25, -0.125), "plane");
  expect_row_matches_scalar(
      field::QuadricField({30.0, 60.0}, 0.01, -0.002, 0.005), "quadric");
  expect_row_matches_scalar(field::PeaksField(kRegion), "peaks");
  expect_row_matches_scalar(
      field::GaussianMixtureField(1.0, {{{20.0, 20.0}, 9.0, 3.0},
                                        {{70.0, 55.0}, -2.0, 14.0}}),
      "gaussians");
}

TEST(ValueRowEquivalence, GridFieldMatchesScalar) {
  const field::PeaksField relief(kRegion);
  const field::GridField g = field::GridField::sample(relief, kRegion, 37, 29);
  expect_row_matches_scalar(g, "grid");
}

TEST(ValueRowEquivalence, TimeVaryingSlicesMatchScalar) {
  const trace::GreenOrbsField orbs{trace::GreenOrbsConfig{}};
  expect_row_matches_scalar(
      field::FieldSlice(orbs, trace::minutes(10, 0)), "greenorbs");

  const field::StaticTimeField still(
      std::make_shared<field::PeaksField>(kRegion));
  expect_row_matches_scalar(field::FieldSlice(still, 5.0), "static");

  // Two-frame sequence sliced strictly between the keyframes: the blend
  // kernel (scratch hi-row buffer) must reproduce the scalar blend bits.
  std::vector<field::GridField> frames;
  frames.push_back(orbs.snapshot(trace::minutes(9, 0), 41, 41));
  frames.push_back(orbs.snapshot(trace::minutes(11, 0), 41, 41));
  const field::FrameSequenceField seq(std::move(frames), {0.0, 10.0});
  expect_row_matches_scalar(field::FieldSlice(seq, 3.75), "frameseq");
}

// --- DeltaEngine: raster spans vs the locate-walk oracle ------------------

field::AnalyticField reference_surface() {
  return field::AnalyticField([](double x, double y) {
    return 10.0 + 0.05 * x * y / 100.0 + 3.0 * (x > 40 && x < 60) +
           2.0 * (y > 20 && y < 50);
  });
}

double delta_with_engine(const field::Field& f,
                         std::span<const geo::Vec2> positions,
                         core::DeltaEngine engine, core::CornerPolicy policy,
                         std::size_t resolution = 64) {
  core::DeltaMetric metric(kRegion, resolution);
  metric.set_engine(engine);
  return metric.delta_of_deployment(f, positions, policy);
}

TEST(DeltaEngineEquivalence, RasterMatchesWalkAcrossPoliciesAndThreads) {
  const auto f = reference_surface();
  const auto plan =
      core::RandomPlanner(7).plan(f, core::PlanRequest{kRegion, 50, 10.0});
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    par::set_thread_count(threads);
    for (const auto policy : {core::CornerPolicy::kNearestSample,
                              core::CornerPolicy::kFieldValue}) {
      SCOPED_TRACE("threads=" + std::to_string(threads) + " policy=" +
                   std::to_string(static_cast<int>(policy)));
      const double walk = delta_with_engine(f, plan.positions,
                                            core::DeltaEngine::kWalk, policy);
      const double raster = delta_with_engine(
          f, plan.positions, core::DeltaEngine::kRaster, policy);
      EXPECT_EQ(walk, raster);  // Bitwise, not approximately.
    }
  }
  par::set_thread_count(1);
}

TEST(DeltaEngineEquivalence, DegenerateSampleSets) {
  const auto f = reference_surface();
  // Collinear interior points (sliver triangles against the corners) and
  // exact duplicates: the raster pre-pass must agree with the walk on
  // whatever triangulation reconstruction produces.
  const std::vector<std::vector<geo::Vec2>> cases = {
      {{25.0, 50.0}, {50.0, 50.0}, {75.0, 50.0}},           // Collinear.
      {{30.0, 30.0}, {30.0, 30.0}, {60.0, 70.0}},           // Duplicate.
      {{50.0, 50.0}},                                       // Single point.
      {},                                                   // Corners only.
  };
  for (std::size_t c = 0; c < cases.size(); ++c) {
    SCOPED_TRACE("case " + std::to_string(c));
    const double walk =
        delta_with_engine(f, cases[c], core::DeltaEngine::kWalk,
                          core::CornerPolicy::kFieldValue);
    const double raster =
        delta_with_engine(f, cases[c], core::DeltaEngine::kRaster,
                          core::CornerPolicy::kFieldValue);
    EXPECT_EQ(walk, raster);
  }
}

TEST(DeltaEngineEquivalence, ResolutionOneLattice) {
  // A 1x1 evaluation lattice: one midpoint, one span row.  Both engines
  // must survive it and agree.
  const auto f = reference_surface();
  core::DeltaMetric walk_metric(kRegion, 1);
  walk_metric.set_engine(core::DeltaEngine::kWalk);
  core::DeltaMetric raster_metric(kRegion, 1);
  raster_metric.set_engine(core::DeltaEngine::kRaster);
  const auto dt = core::reconstruct_surface(
      {}, kRegion, core::CornerPolicy::kFieldValue, &f);
  EXPECT_EQ(walk_metric.delta(f, dt), raster_metric.delta(f, dt));
  EXPECT_GT(raster_metric.delta(f, dt), 0.0);
}

// --- Reference-lattice cache ----------------------------------------------

TEST(ReferenceCache, CachedSweepReproducesUncachedBits) {
  const trace::GreenOrbsField orbs{trace::GreenOrbsConfig{}};
  const field::FieldSlice frame(orbs, trace::minutes(10, 0));

  std::vector<std::vector<geo::Vec2>> deployments;
  for (std::size_t i = 0; i < 4; ++i) {
    deployments.push_back(
        core::RandomPlanner(40 + i)
            .plan(frame, core::PlanRequest{kRegion, 30, 10.0})
            .positions);
  }

  core::DeltaMetric plain(kRegion, 50);
  plain.set_reference_cache_capacity(0);  // The truly-uncached baseline.
  core::DeltaMetric cached(kRegion, 50);
  cached.set_reference_cache_capacity(4);
  EXPECT_EQ(cached.reference_cache_size(), 0u);
  for (std::size_t i = 0; i < deployments.size(); ++i) {
    SCOPED_TRACE("deployment " + std::to_string(i));
    const double want = plain.delta_of_deployment(
        frame, deployments[i], core::CornerPolicy::kFieldValue);
    const double got = cached.delta_of_deployment(
        frame, deployments[i], core::CornerPolicy::kFieldValue);
    EXPECT_EQ(want, got);
  }
  // One frame evaluated four times: a single cache entry.
  EXPECT_EQ(cached.reference_cache_size(), 1u);

  // Fresh slice temporaries of the same frame must hit the same entry
  // (keying is underlying-field + time, not slice address).
  const double again = cached.delta_of_deployment(
      field::FieldSlice(orbs, trace::minutes(10, 0)), deployments[0],
      core::CornerPolicy::kFieldValue);
  EXPECT_EQ(again, plain.delta_of_deployment(frame, deployments[0],
                                             core::CornerPolicy::kFieldValue));
  EXPECT_EQ(cached.reference_cache_size(), 1u);

  // A different time is a different entry.
  const field::FieldSlice other(orbs, trace::minutes(14, 0));
  cached.delta_of_deployment(other, deployments[0],
                             core::CornerPolicy::kFieldValue);
  EXPECT_EQ(cached.reference_cache_size(), 2u);

  cached.clear_reference_cache();
  EXPECT_EQ(cached.reference_cache_size(), 0u);
}

TEST(ReferenceCache, ContentKeysTrackIdentityParametersAndMutation) {
  // Equal-parameter analytic fields share a key (so fig7-style sweeps
  // that rebuild the reference each evaluation still hit) ...
  const trace::GreenOrbsField a{trace::GreenOrbsConfig{}};
  const trace::GreenOrbsField b{trace::GreenOrbsConfig{}};
  EXPECT_EQ(a.content_key(), b.content_key());
  // ... different parameters do not ...
  trace::GreenOrbsConfig other;
  other.seed = 7;
  EXPECT_NE(a.content_key(), trace::GreenOrbsField{other}.content_key());
  // ... a slice folds its time into the underlying key ...
  const field::FieldSlice at10(a, trace::minutes(10, 0));
  const field::FieldSlice same(b, trace::minutes(10, 0));
  const field::FieldSlice at14(a, trace::minutes(14, 0));
  EXPECT_EQ(at10.content_key(), same.content_key());
  EXPECT_NE(at10.content_key(), at14.content_key());
  // ... and mutating a grid retires its old key.
  field::GridField grid(kRegion, 4, 4);
  const std::uint64_t before = grid.content_key();
  grid.set(1, 1, 3.5);
  EXPECT_NE(grid.content_key(), before);
}

TEST(ReferenceCache, RecycledAllocationCannotResurrectDeadEntry) {
  // The ABA hazard that kept the PR 5 cache opt-in: destroy a cached
  // reference, let the allocator hand its storage to a different field,
  // and evaluate again.  Address-keyed caching would serve the dead
  // field's lattice; content keys are never reused, so the second field
  // must miss and produce its own (different) delta.
  core::DeltaMetric metric(kRegion, 30);  // Cache on by default.
  const std::vector<geo::Vec2> probe{{50.0, 50.0}, {20.0, 80.0}};
  std::vector<double> deltas;
  for (const double fill : {1.0, 5.0}) {
    auto f = std::make_unique<field::GridField>(
        kRegion, 4, 4,
        std::vector<double>(16, fill));
    deltas.push_back(metric.delta_of_deployment(
        *f, probe, core::CornerPolicy::kFieldValue));
    // f destroyed here; the next GridField may reuse the allocation.
  }
  core::DeltaMetric fresh(kRegion, 30);
  fresh.set_reference_cache_capacity(0);
  const field::GridField five(kRegion, 4, 4, std::vector<double>(16, 5.0));
  EXPECT_NE(deltas[0], deltas[1]);
  EXPECT_EQ(deltas[1],
            fresh.delta_of_deployment(five, probe,
                                      core::CornerPolicy::kFieldValue));
}

TEST(ReferenceCache, CopiesShareConfigurationButNotEntries) {
  const trace::GreenOrbsField orbs{trace::GreenOrbsConfig{}};
  const field::FieldSlice frame(orbs, trace::minutes(10, 0));
  core::DeltaMetric metric(kRegion, 30);
  metric.set_reference_cache_capacity(2);
  metric.delta_of_deployment(frame, std::vector<geo::Vec2>{{50.0, 50.0}},
                             core::CornerPolicy::kFieldValue);
  ASSERT_EQ(metric.reference_cache_size(), 1u);

  const core::DeltaMetric copy(metric);
  EXPECT_EQ(copy.reference_cache_capacity(), 2u);
  EXPECT_EQ(copy.reference_cache_size(), 0u);
  EXPECT_EQ(copy.engine(), metric.engine());

  // Eviction: capacity 2, three distinct frames.
  for (const int minute : {20, 40, 59}) {
    metric.delta_of_deployment(
        field::FieldSlice(orbs, trace::minutes(10, minute)),
        std::vector<geo::Vec2>{{50.0, 50.0}},
        core::CornerPolicy::kFieldValue);
  }
  EXPECT_EQ(metric.reference_cache_size(), 2u);
}

}  // namespace
}  // namespace cps
