// Tests for the delta quality metric (core/delta.hpp).
#include "core/delta.hpp"

#include <gtest/gtest.h>

#include "core/planner.hpp"
#include "field/analytic_fields.hpp"
#include "numerics/rng.hpp"

namespace cps::core {
namespace {

const num::Rect kRegion{0.0, 0.0, 100.0, 100.0};

TEST(DeltaMetric, Validation) {
  EXPECT_THROW(DeltaMetric(num::Rect{0.0, 0.0, 0.0, 1.0}),
               std::invalid_argument);
  EXPECT_THROW(DeltaMetric(kRegion, 0), std::invalid_argument);
}

TEST(DeltaMetric, ZeroForExactReconstruction) {
  // Plane + exact-corner reconstruction: DT == f everywhere, delta == 0.
  const field::PlaneField f(1.0, 0.2, -0.1);
  const auto dt = reconstruct_surface({}, kRegion,
                                      CornerPolicy::kFieldValue, &f);
  const DeltaMetric metric(kRegion, 50);
  EXPECT_NEAR(metric.delta(f, dt), 0.0, 1e-9);
}

TEST(DeltaMetric, ConstantOffsetIntegratesToVolume) {
  // f = 3, rebuilt surface = 0 everywhere: delta = 3 * area.
  const field::ConstantField f(3.0);
  const auto dt = reconstruct_surface({}, kRegion);  // Flat at 0.
  const DeltaMetric metric(kRegion, 40);
  EXPECT_NEAR(metric.delta(f, dt), 3.0 * kRegion.area(), 1e-6);
}

TEST(DeltaMetric, AbsoluteNotSigned) {
  // A surface that is +1 on half the region and -1 on the other half must
  // integrate to area, not zero.
  const field::AnalyticField f(
      [](double x, double) { return x < 50.0 ? 1.0 : -1.0; });
  const auto dt = reconstruct_surface({}, kRegion);
  const DeltaMetric metric(kRegion, 100);
  EXPECT_NEAR(metric.delta(f, dt), kRegion.area(), 1.0);
}

TEST(DeltaMetric, DeltaBetweenIsSymmetric) {
  const field::PlaneField a(0.0, 0.1, 0.0);
  const field::ConstantField b(2.0);
  const DeltaMetric metric(kRegion, 60);
  EXPECT_NEAR(metric.delta_between(a, b), metric.delta_between(b, a), 1e-9);
  EXPECT_NEAR(metric.delta_between(a, a), 0.0, 1e-12);
}

TEST(DeltaMetric, DeploymentPipelineMatchesManualPath) {
  const field::PeaksField f(kRegion);
  const auto grid = GridPlanner::make_grid(kRegion, 16);
  const DeltaMetric metric(kRegion, 50);
  const auto samples = take_samples(f, grid.positions);
  EXPECT_NEAR(metric.delta_of_deployment(f, grid.positions),
              metric.delta_from_samples(f, samples), 1e-9);
}

TEST(DeltaMetric, MoreSamplesOfSameFieldDoNotHurtMuch) {
  // Denser uniform sampling of a smooth surface should reduce delta
  // substantially (16 -> 100 nodes).
  const field::PeaksField f(kRegion);
  const DeltaMetric metric(kRegion, 60);
  const double d16 =
      metric.delta_of_deployment(f, GridPlanner::make_grid(kRegion, 16)
                                        .positions);
  const double d100 =
      metric.delta_of_deployment(f, GridPlanner::make_grid(kRegion, 100)
                                        .positions);
  EXPECT_LT(d100, d16 * 0.7);
}

TEST(DeltaMetric, MeanAbsErrorNormalisation) {
  const DeltaMetric metric(kRegion, 10);
  EXPECT_DOUBLE_EQ(metric.mean_abs_error(10000.0), 1.0);
  EXPECT_DOUBLE_EQ(metric.mean_abs_error(0.0), 0.0);
}

TEST(DeltaMetric, ResolutionConvergence) {
  // Delta estimates at rising resolutions converge to each other.
  const field::PeaksField f(kRegion);
  const auto deployment = GridPlanner::make_grid(kRegion, 25);
  const double d50 =
      DeltaMetric(kRegion, 50).delta_of_deployment(f, deployment.positions);
  const double d100 =
      DeltaMetric(kRegion, 100).delta_of_deployment(f, deployment.positions);
  const double d200 =
      DeltaMetric(kRegion, 200).delta_of_deployment(f, deployment.positions);
  EXPECT_LT(std::abs(d200 - d100), std::abs(d100 - d50) + 1.0);
  EXPECT_NEAR(d100, d200, 0.05 * d200);
}

}  // namespace
}  // namespace cps::core
