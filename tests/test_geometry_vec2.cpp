// Tests for the plane vector type (geometry/vec2.hpp).
#include "geometry/vec2.hpp"

#include <gtest/gtest.h>

#include <numbers>

namespace cps::geo {
namespace {

TEST(Vec2, Arithmetic) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{3.0, -1.0};
  EXPECT_EQ(a + b, Vec2(4.0, 1.0));
  EXPECT_EQ(a - b, Vec2(-2.0, 3.0));
  EXPECT_EQ(a * 2.0, Vec2(2.0, 4.0));
  EXPECT_EQ(2.0 * a, Vec2(2.0, 4.0));
  EXPECT_EQ(a / 2.0, Vec2(0.5, 1.0));
  EXPECT_EQ(-a, Vec2(-1.0, -2.0));
}

TEST(Vec2, CompoundAssignment) {
  Vec2 v{1.0, 1.0};
  v += {2.0, 3.0};
  EXPECT_EQ(v, Vec2(3.0, 4.0));
  v -= {1.0, 1.0};
  EXPECT_EQ(v, Vec2(2.0, 3.0));
  v *= 3.0;
  EXPECT_EQ(v, Vec2(6.0, 9.0));
}

TEST(Vec2, DotAndCross) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(a.dot(b), 11.0);
  EXPECT_DOUBLE_EQ(a.cross(b), -2.0);
  EXPECT_DOUBLE_EQ(b.cross(a), 2.0);  // Antisymmetric.
}

TEST(Vec2, Norms) {
  const Vec2 v{3.0, 4.0};
  EXPECT_DOUBLE_EQ(v.norm_sq(), 25.0);
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
}

TEST(Vec2, NormalizedUnitLength) {
  const Vec2 v{3.0, 4.0};
  const Vec2 u = v.normalized();
  EXPECT_NEAR(u.norm(), 1.0, 1e-15);
  EXPECT_NEAR(u.x, 0.6, 1e-15);
  EXPECT_NEAR(u.y, 0.8, 1e-15);
}

TEST(Vec2, NormalizedZeroVectorIsZero) {
  const Vec2 z{};
  EXPECT_EQ(z.normalized(), Vec2(0.0, 0.0));
}

TEST(Vec2, RotationQuarterTurn) {
  const Vec2 v{1.0, 0.0};
  const Vec2 r = v.rotated(std::numbers::pi / 2.0);
  EXPECT_NEAR(r.x, 0.0, 1e-15);
  EXPECT_NEAR(r.y, 1.0, 1e-15);
}

TEST(Vec2, RotationPreservesNorm) {
  const Vec2 v{2.0, -3.0};
  EXPECT_NEAR(v.rotated(1.234).norm(), v.norm(), 1e-12);
}

TEST(Vec2, DistanceHelpers) {
  const Vec2 a{0.0, 0.0};
  const Vec2 b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(distance_sq(a, b), 25.0);
}

TEST(Vec2, LerpEndpointsAndMiddle) {
  const Vec2 a{0.0, 0.0};
  const Vec2 b{10.0, 20.0};
  EXPECT_EQ(lerp(a, b, 0.0), a);
  EXPECT_EQ(lerp(a, b, 1.0), b);
  EXPECT_EQ(lerp(a, b, 0.5), Vec2(5.0, 10.0));
}

TEST(Vec2, Midpoint) {
  EXPECT_EQ(midpoint({1.0, 2.0}, {3.0, 6.0}), Vec2(2.0, 4.0));
}

}  // namespace
}  // namespace cps::geo
