// Tests for the disjoint-set forest (graph/union_find.hpp).
#include "graph/union_find.hpp"

#include <gtest/gtest.h>

#include "numerics/rng.hpp"

namespace cps::graph {
namespace {

TEST(UnionFind, InitiallyAllSingletons) {
  UnionFind uf(5);
  EXPECT_EQ(uf.size(), 5u);
  EXPECT_EQ(uf.set_count(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(uf.find(i), i);
    EXPECT_EQ(uf.set_size(i), 1u);
  }
}

TEST(UnionFind, UniteMergesAndReports) {
  UnionFind uf(4);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_FALSE(uf.unite(0, 1));  // Already merged.
  EXPECT_TRUE(uf.connected(0, 1));
  EXPECT_FALSE(uf.connected(0, 2));
  EXPECT_EQ(uf.set_count(), 3u);
  EXPECT_EQ(uf.set_size(1), 2u);
}

TEST(UnionFind, TransitiveConnectivity) {
  UnionFind uf(6);
  uf.unite(0, 1);
  uf.unite(2, 3);
  uf.unite(1, 2);
  EXPECT_TRUE(uf.connected(0, 3));
  EXPECT_FALSE(uf.connected(0, 4));
  EXPECT_EQ(uf.set_count(), 3u);  // {0,1,2,3}, {4}, {5}.
  EXPECT_EQ(uf.set_size(3), 4u);
}

TEST(UnionFind, ChainCollapsesToOneSet) {
  const std::size_t n = 1000;
  UnionFind uf(n);
  for (std::size_t i = 0; i + 1 < n; ++i) uf.unite(i, i + 1);
  EXPECT_EQ(uf.set_count(), 1u);
  EXPECT_TRUE(uf.connected(0, n - 1));
  EXPECT_EQ(uf.set_size(0), n);
}

TEST(UnionFind, OutOfRangeThrows) {
  UnionFind uf(3);
  EXPECT_THROW(uf.find(3), std::out_of_range);
  EXPECT_THROW(uf.unite(0, 5), std::out_of_range);
}

TEST(UnionFind, SetCountPlusMergesIsInvariant) {
  // Every successful unite reduces set_count by exactly one.
  num::Rng rng(3);
  UnionFind uf(50);
  std::size_t merges = 0;
  for (int i = 0; i < 500; ++i) {
    const auto a = static_cast<std::size_t>(rng.uniform_int(0, 49));
    const auto b = static_cast<std::size_t>(rng.uniform_int(0, 49));
    if (a == b) continue;
    if (uf.unite(a, b)) ++merges;
    ASSERT_EQ(uf.set_count() + merges, 50u);
  }
}

TEST(UnionFind, SizesSumToTotal) {
  num::Rng rng(9);
  UnionFind uf(40);
  for (int i = 0; i < 60; ++i) {
    uf.unite(static_cast<std::size_t>(rng.uniform_int(0, 39)),
             static_cast<std::size_t>(rng.uniform_int(0, 39)));
  }
  // Sum each root's size exactly once.
  std::size_t total = 0;
  for (std::size_t i = 0; i < 40; ++i) {
    if (uf.find(i) == i) total += uf.set_size(i);
  }
  EXPECT_EQ(total, 40u);
}

}  // namespace
}  // namespace cps::graph
