// Tests for the message drop-reason taxonomy (net/link_model.hpp
// count_drops + MessageBus per-message accounting + CMA neighbour-table
// aging): per-reason counters must decompose the aggregate exactly, agree
// between delivery modes, and line up with the legacy aggregate names.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/cma.hpp"
#include "field/analytic_fields.hpp"
#include "field/time_varying.hpp"
#include "net/fault.hpp"
#include "net/link_model.hpp"
#include "net/message_bus.hpp"
#include "obs/obs.hpp"

namespace cps::net {
namespace {

using geo::Vec2;

std::uint64_t cval(const char* name) { return obs::counter(name).value(); }

/// The five per-reason counters plus the aggregates they must reconcile
/// with, read from the process registry.
struct DropCounts {
  std::uint64_t dead_sender;
  std::uint64_t dead_receiver;
  std::uint64_t out_of_range;
  std::uint64_t link_loss_draw;
  std::uint64_t ttl_expired;
  std::uint64_t total;
  std::uint64_t legacy_failures;
  std::uint64_t legacy_dead_broadcasts;

  static DropCounts read() {
    return DropCounts{cval("net.bus.drop.dead_sender"),
                      cval("net.bus.drop.dead_receiver"),
                      cval("net.bus.drop.out_of_range"),
                      cval("net.bus.drop.link_loss_draw"),
                      cval("net.bus.drop.ttl_expired"),
                      cval("net.bus.drops_total"),
                      cval("net.bus.delivery_failures"),
                      cval("net.bus.dead_broadcasts")};
  }

  std::uint64_t reason_sum() const {
    return dead_sender + dead_receiver + out_of_range + link_loss_draw +
           ttl_expired;
  }
};

/// Arms obs recording and zeroes the registry for one test.
struct ObsScope {
  ObsScope() {
    obs::set_enabled(true);
    obs::registry().reset();
  }
  ~ObsScope() { obs::set_enabled(false); }
};

TEST(DropReason, NamesAreStable) {
  EXPECT_STREQ(drop_reason_name(DropReason::kDeadSender), "dead_sender");
  EXPECT_STREQ(drop_reason_name(DropReason::kDeadReceiver), "dead_receiver");
  EXPECT_STREQ(drop_reason_name(DropReason::kOutOfRange), "out_of_range");
  EXPECT_STREQ(drop_reason_name(DropReason::kLinkLossDraw),
               "link_loss_draw");
  EXPECT_STREQ(drop_reason_name(DropReason::kTtlExpired), "ttl_expired");
}

#if defined(CPS_OBS_ENABLED)

/// 6 nodes: 0..2 clustered (mutually in range of Rc = 10), 3 far away,
/// 4 and 5 clustered with each other but out of range of the rest.
MessageBus<int> make_bus(DeliveryMode mode, double loss) {
  MessageBus<int> bus(6, std::make_unique<DiskLink>(10.0, loss, 42));
  bus.set_delivery_mode(mode);
  bus.set_position(0, {10.0, 10.0});
  bus.set_position(1, {14.0, 10.0});
  bus.set_position(2, {10.0, 14.0});
  bus.set_position(3, {80.0, 80.0});
  bus.set_position(4, {40.0, 40.0});
  bus.set_position(5, {44.0, 40.0});
  return bus;
}

// One slot with every reason except ttl_expired represented; the reasons
// must sum to the aggregate and line up with the legacy counters.
void run_mixed_slot(DeliveryMode mode) {
  MessageBus<int> bus = make_bus(mode, /*loss=*/0.5);
  bus.set_alive(2, false);       // A dead receiver for node 0/1 traffic.
  bus.broadcast(2, 99);          // Dead at broadcast: dead_sender.
  bus.broadcast(0, 1);           // Reaches 1; 2 dead, 3/4/5 out of range.
  bus.broadcast(5, 2);           // Reaches 4 only.
  bus.broadcast(3, 3);           // Isolated: everything out of range.
  bus.set_alive(3, false);       // Dies with its message in flight.
  bus.step();
}

TEST(DropCounters, ReasonsDecomposeTotalExactly) {
  ObsScope obs;
  run_mixed_slot(DeliveryMode::kGrid);
  const DropCounts c = DropCounts::read();
  // alive_now = 4 (nodes 0, 1, 4, 5); two alive-sender messages from the
  // cluster senders plus... node 3's message died with it.
  EXPECT_EQ(c.dead_sender, 2u);  // Dead broadcast + died in flight.
  EXPECT_EQ(c.dead_receiver, 4u);  // 2 dead nodes x 2 delivered messages.
  EXPECT_GT(c.out_of_range, 0u);
  EXPECT_EQ(c.ttl_expired, 0u);  // No neighbour tables on a raw bus.
  EXPECT_EQ(c.reason_sum(), c.total);
  EXPECT_EQ(c.link_loss_draw, c.legacy_failures);
  EXPECT_EQ(c.dead_sender,
            c.legacy_dead_broadcasts + 1u);  // +1 died-in-flight.
}

TEST(DropCounters, GridAndFullModesAgreePerReason) {
  DropCounts grid{};
  DropCounts full{};
  {
    ObsScope obs;
    run_mixed_slot(DeliveryMode::kGrid);
    grid = DropCounts::read();
  }
  {
    ObsScope obs;
    run_mixed_slot(DeliveryMode::kFull);
    full = DropCounts::read();
  }
  EXPECT_EQ(grid.dead_sender, full.dead_sender);
  EXPECT_EQ(grid.dead_receiver, full.dead_receiver);
  EXPECT_EQ(grid.out_of_range, full.out_of_range);
  EXPECT_EQ(grid.link_loss_draw, full.link_loss_draw);
  EXPECT_EQ(grid.ttl_expired, full.ttl_expired);
  EXPECT_EQ(grid.total, full.total);
}

TEST(DropCounters, LossFreeChannelDrawsNothing) {
  ObsScope obs;
  MessageBus<int> bus = make_bus(DeliveryMode::kGrid, /*loss=*/0.0);
  for (NodeId from = 0; from < bus.node_count(); ++from) {
    bus.broadcast(from, static_cast<int>(from));
  }
  bus.step();
  const DropCounts c = DropCounts::read();
  EXPECT_EQ(c.link_loss_draw, 0u);
  EXPECT_EQ(c.dead_sender, 0u);
  EXPECT_EQ(c.dead_receiver, 0u);
  // 6 senders x 5 potential receivers, minus the in-range deliveries.
  EXPECT_EQ(c.out_of_range, 30u - cval("net.bus.deliveries"));
  EXPECT_EQ(c.reason_sum(), c.total);
}

// A CMA run under a fault schedule exercises every reason, including
// ttl_expired from the beacon-learned neighbour tables aging out dead
// neighbours; the decomposition must still be exact.
TEST(DropCounters, CmaFaultRunDecomposesExactly) {
  ObsScope obs;
  const field::StaticTimeField env(
      std::make_shared<field::GaussianMixtureField>(
          0.5, std::vector<field::GaussianBump>{{{30.0, 30.0}, 3.0, 8.0},
                                                {{70.0, 60.0}, 2.5, 10.0}}));
  std::vector<Vec2> nodes;
  for (int j = 0; j < 4; ++j) {
    for (int i = 0; i < 4; ++i) {
      nodes.push_back({35.0 + i * 6.0, 35.0 + j * 6.0});
    }
  }
  core::CmaConfig cfg;
  cfg.sample_spacing = 1.0;
  cfg.neighbor_ttl = 3;  // Entries coast, then age out: ttl_expired > 0.
  core::CmaSimulation sim(env, num::Rect{0.0, 0.0, 100.0, 100.0}, nodes,
                          cfg);
  sim.set_fault_schedule(
      FaultSchedule::random_deaths(nodes.size(), 0.4, 2, 10, 7));
  sim.set_link_model(std::make_unique<DiskLink>(cfg.rc, 0.1, cfg.seed));
  sim.run(15);

  const DropCounts c = DropCounts::read();
  EXPECT_EQ(c.reason_sum(), c.total);
  EXPECT_EQ(c.link_loss_draw, c.legacy_failures);
  EXPECT_GT(c.total, 0u);
  EXPECT_GT(c.ttl_expired, 0u);
  EXPECT_GT(c.dead_receiver, 0u);
}

#endif  // CPS_OBS_ENABLED

}  // namespace
}  // namespace cps::net
