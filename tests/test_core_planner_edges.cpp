// Planner edge cases and the unified PlanRequest (core/planner.hpp):
// zero budgets, budgets exceeding the candidate lattice, degenerate
// (zero-area / zero-width) regions, and the per-request lattice/seed
// overrides that let a long-lived service vary what used to be planner
// constructor state.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/fra.hpp"
#include "core/planner.hpp"
#include "field/analytic_fields.hpp"

namespace cps::core {
namespace {

const num::Rect kRegion{0.0, 0.0, 100.0, 100.0};
const field::ConstantField kFlat(0.0);

void expect_in_region(const Deployment& d, const num::Rect& region) {
  for (const auto& p : d.positions) {
    EXPECT_TRUE(region.contains(p.x, p.y)) << p.x << "," << p.y;
  }
}

TEST(PlannerEdges, ZeroBudgetIsEmptyForEveryPlanner) {
  const PlanRequest request{kRegion, 0, 10.0};
  EXPECT_TRUE(RandomPlanner().plan(kFlat, request).empty());
  EXPECT_TRUE(GridPlanner().plan(kFlat, request).empty());
  EXPECT_TRUE(FarthestPointPlanner().plan(kFlat, request).empty());
  EXPECT_TRUE(FraPlanner().plan(kFlat, request).empty());
}

TEST(PlannerEdges, FarthestPointBudgetExceedingLatticeStopsShort) {
  // A 2x2 candidate lattice has 4 distinct positions; with the centre
  // start that is 5 placements, after which every candidate coincides
  // with a placed node and the planner must stop rather than repeat.
  FarthestPointPlanner planner(2);
  const auto d = planner.plan(kFlat, {kRegion, 10, 10.0});
  EXPECT_EQ(d.size(), 5u);
  expect_in_region(d, kRegion);
  for (std::size_t i = 0; i < d.size(); ++i) {
    for (std::size_t j = i + 1; j < d.size(); ++j) {
      EXPECT_NE(d.positions[i], d.positions[j]);
    }
  }
}

TEST(PlannerEdges, ZeroAreaRegion) {
  const num::Rect point{5.0, 5.0, 5.0, 5.0};
  const auto random = RandomPlanner().plan(kFlat, {point, 8, 10.0});
  EXPECT_EQ(random.size(), 8u);
  expect_in_region(random, point);

  const auto grid = GridPlanner().plan(kFlat, {point, 8, 10.0});
  EXPECT_EQ(grid.size(), 8u);
  expect_in_region(grid, point);

  // Every candidate collapses onto the centre: one placement, then the
  // lattice is exhausted.
  const auto farthest = FarthestPointPlanner().plan(kFlat, {point, 8, 10.0});
  EXPECT_EQ(farthest.size(), 1u);
  expect_in_region(farthest, point);
}

TEST(PlannerEdges, ZeroWidthLineRegion) {
  const num::Rect line{20.0, 10.0, 20.0, 90.0};
  const auto random = RandomPlanner().plan(kFlat, {line, 6, 10.0});
  EXPECT_EQ(random.size(), 6u);
  expect_in_region(random, line);

  const auto grid = GridPlanner().plan(kFlat, {line, 6, 10.0});
  EXPECT_EQ(grid.size(), 6u);
  expect_in_region(grid, line);

  const auto farthest =
      FarthestPointPlanner().plan(kFlat, {line, 6, 10.0, /*lattice=*/5});
  EXPECT_LE(farthest.size(), 6u);
  EXPECT_GE(farthest.size(), 1u);
  expect_in_region(farthest, line);
}

TEST(PlannerEdges, RequestSeedOverridesConstructorSeed) {
  const auto via_ctor = RandomPlanner(7).plan(kFlat, {kRegion, 20, 10.0});
  const auto via_request =
      RandomPlanner().plan(kFlat, {kRegion, 20, 10.0, 0, /*seed=*/7});
  EXPECT_EQ(via_ctor.positions, via_request.positions);
  // Different seeds actually differ (the override is not a no-op).
  const auto other =
      RandomPlanner().plan(kFlat, {kRegion, 20, 10.0, 0, /*seed=*/8});
  EXPECT_NE(via_request.positions, other.positions);
}

TEST(PlannerEdges, RequestLatticeOverridesConstructorLattice) {
  const auto via_ctor = FarthestPointPlanner(13).plan(kFlat, {kRegion, 9, 10.0});
  const auto via_request =
      FarthestPointPlanner().plan(kFlat, {kRegion, 9, 10.0, /*lattice=*/13});
  EXPECT_EQ(via_ctor.positions, via_request.positions);
  EXPECT_THROW(
      FarthestPointPlanner().plan(kFlat, {kRegion, 9, 10.0, /*lattice=*/1}),
      std::invalid_argument);
}

TEST(PlannerEdges, FraHonoursRequestLatticeAndSeed) {
  const field::PeaksField peaks(kRegion);
  FraConfig coarse;
  coarse.error_grid = 40;
  const auto via_config =
      FraPlanner(coarse).plan(peaks, {kRegion, 12, 10.0});
  const auto via_request =
      FraPlanner().plan(peaks, {kRegion, 12, 10.0, /*lattice=*/40});
  EXPECT_EQ(via_config.positions, via_request.positions);
  EXPECT_THROW(FraPlanner().plan(peaks, {kRegion, 12, 10.0, /*lattice=*/1}),
               std::invalid_argument);

  FraConfig random_measure;
  random_measure.measure = SelectionMeasure::kRandom;
  random_measure.foresight = false;
  FraConfig seeded = random_measure;
  seeded.seed = 9;
  const auto seed_via_config =
      FraPlanner(seeded).plan(peaks, {kRegion, 10, 10.0});
  const auto seed_via_request = FraPlanner(random_measure)
                                    .plan(peaks, {kRegion, 10, 10.0, 0,
                                                  /*seed=*/9});
  EXPECT_EQ(seed_via_config.positions, seed_via_request.positions);
}

}  // namespace
}  // namespace cps::core
