// Tests for the radio model and message bus (net/*).
#include <gtest/gtest.h>

#include <string>

#include "net/message_bus.hpp"
#include "net/radio.hpp"

namespace cps::net {
namespace {

using geo::Vec2;

TEST(DiskRadio, RangeRule) {
  const DiskRadio radio(10.0);
  EXPECT_TRUE(radio.in_range({0.0, 0.0}, {10.0, 0.0}));  // <= Rc.
  EXPECT_TRUE(radio.in_range({0.0, 0.0}, {6.0, 8.0}));
  EXPECT_FALSE(radio.in_range({0.0, 0.0}, {10.1, 0.0}));
}

TEST(DiskRadio, Validation) {
  EXPECT_THROW(DiskRadio(0.0), std::invalid_argument);
  EXPECT_THROW(DiskRadio(10.0, -0.1), std::invalid_argument);
  EXPECT_THROW(DiskRadio(10.0, 1.1), std::invalid_argument);
}

TEST(DiskRadio, LosslessTransmitMatchesRange) {
  DiskRadio radio(10.0);
  EXPECT_TRUE(radio.transmit({0.0, 0.0}, {5.0, 0.0}));
  EXPECT_FALSE(radio.transmit({0.0, 0.0}, {50.0, 0.0}));
}

TEST(DiskRadio, LossyTransmitDropsApproximatelyAtRate) {
  DiskRadio radio(10.0, 0.25, 42);
  int delivered = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (radio.transmit({0.0, 0.0}, {1.0, 0.0})) ++delivered;
  }
  EXPECT_NEAR(static_cast<double>(delivered) / n, 0.75, 0.02);
}

TEST(MessageBus, DeliversToInRangeOnly) {
  MessageBus<std::string> bus(3, DiskRadio(10.0));
  bus.set_position(0, {0.0, 0.0});
  bus.set_position(1, {5.0, 0.0});
  bus.set_position(2, {50.0, 0.0});
  bus.broadcast(0, "hello");
  bus.step();
  ASSERT_EQ(bus.inbox(1).size(), 1u);
  EXPECT_EQ(bus.inbox(1)[0].from, 0u);
  EXPECT_EQ(bus.inbox(1)[0].message, "hello");
  EXPECT_TRUE(bus.inbox(2).empty());
  EXPECT_TRUE(bus.inbox(0).empty());  // No self-delivery.
}

TEST(MessageBus, StepClearsPreviousInboxes) {
  MessageBus<int> bus(2, DiskRadio(10.0));
  bus.set_position(0, {0.0, 0.0});
  bus.set_position(1, {1.0, 0.0});
  bus.broadcast(0, 1);
  bus.step();
  ASSERT_EQ(bus.inbox(1).size(), 1u);
  bus.step();  // Nothing queued.
  EXPECT_TRUE(bus.inbox(1).empty());
}

TEST(MessageBus, MultipleSendersAggregate) {
  MessageBus<int> bus(3, DiskRadio(10.0));
  bus.set_position(0, {0.0, 0.0});
  bus.set_position(1, {5.0, 0.0});
  bus.set_position(2, {5.0, 5.0});
  bus.broadcast(0, 10);
  bus.broadcast(1, 20);
  bus.step();
  EXPECT_EQ(bus.inbox(2).size(), 2u);
  EXPECT_EQ(bus.inbox(0).size(), 1u);
  EXPECT_EQ(bus.inbox(0)[0].message, 20);
}

TEST(MessageBus, UsesSendTimePosition) {
  // A message queued before the sender moved is ranged from where it was
  // sent (the slot model: transmissions happen during the slot).
  MessageBus<int> bus(2, DiskRadio(10.0));
  bus.set_position(0, {0.0, 0.0});
  bus.set_position(1, {8.0, 0.0});
  bus.broadcast(0, 5);
  bus.set_position(0, {100.0, 0.0});  // Sender teleports away.
  bus.step();
  EXPECT_EQ(bus.inbox(1).size(), 1u);  // Still delivered.
}

TEST(MessageBus, NeighborsOfUsesCurrentPositions) {
  MessageBus<int> bus(3, DiskRadio(10.0));
  bus.set_position(0, {0.0, 0.0});
  bus.set_position(1, {9.0, 0.0});
  bus.set_position(2, {30.0, 0.0});
  EXPECT_EQ(bus.neighbors_of(0), (std::vector<NodeId>{1}));
  EXPECT_EQ(bus.neighbors_of(2), (std::vector<NodeId>{}));
  bus.set_position(2, {15.0, 0.0});
  EXPECT_EQ(bus.neighbors_of(1), (std::vector<NodeId>{0, 2}));
}

TEST(MessageBus, OutOfRangeIdsThrow) {
  MessageBus<int> bus(2, DiskRadio(10.0));
  EXPECT_THROW(bus.broadcast(2, 0), std::out_of_range);
  EXPECT_THROW(bus.set_position(5, {0.0, 0.0}), std::out_of_range);
  EXPECT_THROW(bus.inbox(9), std::out_of_range);
}

TEST(MessageBus, LossyBusDropsSomeDeliveries) {
  MessageBus<int> bus(2, DiskRadio(10.0, 0.5, 7));
  bus.set_position(0, {0.0, 0.0});
  bus.set_position(1, {1.0, 0.0});
  int delivered = 0;
  for (int i = 0; i < 1000; ++i) {
    bus.broadcast(0, i);
    bus.step();
    delivered += static_cast<int>(bus.inbox(1).size());
  }
  EXPECT_GT(delivered, 350);
  EXPECT_LT(delivered, 650);
}

}  // namespace
}  // namespace cps::net
