// Tests for CMA under fault injection and degraded neighbour knowledge
// (core/cma.hpp + net/fault.hpp + net/link_model.hpp).
#include "core/cma.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "field/analytic_fields.hpp"
#include "field/time_varying.hpp"

namespace cps::core {
namespace {

const num::Rect kRegion{0.0, 0.0, 100.0, 100.0};

field::StaticTimeField static_env() {
  return field::StaticTimeField(std::make_shared<field::GaussianMixtureField>(
      0.5, std::vector<field::GaussianBump>{{{30.0, 30.0}, 3.0, 8.0},
                                            {{70.0, 60.0}, 2.5, 10.0}}));
}

/// A 3x3 connected grid of nodes with pitch well inside Rc = 10.
std::vector<geo::Vec2> small_grid() {
  std::vector<geo::Vec2> pts;
  for (int j = 0; j < 3; ++j) {
    for (int i = 0; i < 3; ++i) {
      pts.push_back({40.0 + i * 6.0, 40.0 + j * 6.0});
    }
  }
  return pts;
}

CmaConfig fast_config() {
  CmaConfig cfg;
  cfg.sample_spacing = 1.0;
  return cfg;
}

TEST(CmaFaults, ConfigValidatesNeighborTtl) {
  const auto env = static_env();
  CmaConfig bad = fast_config();
  bad.neighbor_ttl = 0;
  EXPECT_THROW(CmaSimulation(env, kRegion, small_grid(), bad),
               std::invalid_argument);
}

TEST(CmaFaults, ScheduleValidatesNodeIndices) {
  const auto env = static_env();
  CmaSimulation sim(env, kRegion, small_grid(), fast_config());
  net::FaultSchedule bad;
  bad.add_death(0, 99);
  EXPECT_THROW(sim.set_fault_schedule(std::move(bad)), std::invalid_argument);
}

TEST(CmaFaults, EmptyScheduleIsBitIdenticalToBaseline) {
  const auto env = static_env();
  CmaSimulation plain(env, kRegion, small_grid(), fast_config());
  CmaSimulation faulted(env, kRegion, small_grid(), fast_config());
  faulted.set_fault_schedule(net::FaultSchedule{});
  faulted.set_link_model(
      std::make_unique<net::DiskLink>(fast_config().rc, 0.0,
                                      fast_config().seed));
  plain.run(10);
  faulted.run(10);
  ASSERT_EQ(plain.positions().size(), faulted.positions().size());
  for (std::size_t i = 0; i < plain.positions().size(); ++i) {
    EXPECT_EQ(plain.positions()[i].x, faulted.positions()[i].x);
    EXPECT_EQ(plain.positions()[i].y, faulted.positions()[i].y);
  }
  EXPECT_EQ(plain.total_broadcasts(), faulted.total_broadcasts());
}

TEST(CmaFaults, DeathFreezesNodeAndShrinksSurvivors) {
  const auto env = static_env();
  CmaSimulation sim(env, kRegion, small_grid(), fast_config());
  net::FaultSchedule schedule;
  schedule.add_death(2, 4);  // Center node dies at slot 2.
  sim.set_fault_schedule(std::move(schedule));

  sim.run(2);  // Slots 0, 1: everyone alive.
  EXPECT_EQ(sim.alive_count(), 9u);
  EXPECT_TRUE(sim.is_alive(4));

  sim.step();  // Slot 2: the death applies before the node moves.
  EXPECT_EQ(sim.alive_count(), 8u);
  EXPECT_FALSE(sim.is_alive(4));
  EXPECT_EQ(sim.deaths_applied(), 1u);

  const geo::Vec2 frozen = sim.positions()[4];
  const double traveled = sim.distance_traveled(4);
  sim.run(5);
  EXPECT_EQ(sim.positions()[4].x, frozen.x);  // Carcass never moves...
  EXPECT_EQ(sim.positions()[4].y, frozen.y);
  EXPECT_EQ(sim.distance_traveled(4), traveled);  // ...or spends energy.
  EXPECT_EQ(sim.alive_positions().size(), 8u);
  EXPECT_EQ(sim.sense_at_nodes().size(), 8u);  // Dead sensors are silent.
}

TEST(CmaFaults, RevivalRejoinsTheProtocol) {
  const auto env = static_env();
  CmaSimulation sim(env, kRegion, small_grid(), fast_config());
  net::FaultSchedule schedule;
  schedule.add_death(1, 0);
  schedule.add_revival(4, 0);
  sim.set_fault_schedule(std::move(schedule));
  sim.run(2);
  EXPECT_FALSE(sim.is_alive(0));
  sim.run(3);  // Slot 4 applies the revival.
  EXPECT_TRUE(sim.is_alive(0));
  EXPECT_EQ(sim.alive_count(), 9u);
  // The revived node hears beacons again within a slot.
  sim.step();
  EXPECT_GT(sim.known_neighbor_count(0), 0u);
}

TEST(CmaFaults, DeterministicUnderChurnAndLossyLinks) {
  const auto env = static_env();
  const auto schedule =
      net::FaultSchedule::random_deaths(9, 0.3, 1, 5, 2024);
  std::vector<std::vector<geo::Vec2>> finals;
  std::vector<std::size_t> alive_counts;
  for (int rep = 0; rep < 2; ++rep) {
    CmaSimulation sim(env, kRegion, small_grid(), fast_config());
    net::GilbertElliottLink::Params p;
    p.loss_bad = 1.0;
    sim.set_link_model(
        std::make_unique<net::GilbertElliottLink>(fast_config().rc, p, 5));
    sim.set_fault_schedule(schedule);
    sim.run(8);
    finals.push_back(sim.positions());
    alive_counts.push_back(sim.alive_count());
  }
  EXPECT_EQ(alive_counts[0], alive_counts[1]);
  for (std::size_t i = 0; i < finals[0].size(); ++i) {
    EXPECT_EQ(finals[0][i].x, finals[1][i].x);
    EXPECT_EQ(finals[0][i].y, finals[1][i].y);
  }
}

TEST(CmaFaults, NeighborTtlCoastsThroughLostBeacons) {
  // Two nodes in range on a clean channel that then fades out
  // completely: with TTL 1 the neighbour vanishes on the first lost
  // beacon, with TTL 4 it survives three more slots.
  const auto env = static_env();
  const std::vector<geo::Vec2> pair{{40.0, 40.0}, {46.0, 40.0}};
  for (const std::size_t ttl : {std::size_t{1}, std::size_t{4}}) {
    CmaConfig cfg = fast_config();
    cfg.neighbor_ttl = ttl;
    cfg.velocity = 0.0;  // Hold positions so only knowledge changes.
    CmaSimulation sim(env, kRegion, pair, cfg);

    sim.step();  // Slot 0: first beacons arrive over the clean default.
    ASSERT_EQ(sim.known_neighbor_count(0), 1u) << "ttl " << ttl;
    // The channel dies: every transmission from here on is lost.
    sim.set_link_model(std::make_unique<net::DiskLink>(cfg.rc, 1.0, 1));
    sim.step();  // Slot 1: beacons lost.
    if (ttl == 1) {
      EXPECT_EQ(sim.known_neighbor_count(0), 0u);
    } else {
      EXPECT_EQ(sim.known_neighbor_count(0), 1u);
      sim.step();  // Slot 2.
      sim.step();  // Slot 3: slot-0 entry still within TTL 4.
      EXPECT_EQ(sim.known_neighbor_count(0), 1u);
      sim.step();  // Slot 4: aged out.
      EXPECT_EQ(sim.known_neighbor_count(0), 0u);
    }
  }
}

TEST(CmaFaults, DeadNeighborAgesOutOfTables) {
  const auto env = static_env();
  const std::vector<geo::Vec2> pair{{40.0, 40.0}, {46.0, 40.0}};
  CmaConfig cfg = fast_config();
  cfg.neighbor_ttl = 3;
  cfg.velocity = 0.0;
  CmaSimulation sim(env, kRegion, pair, cfg);
  net::FaultSchedule schedule;
  schedule.add_death(2, 1);
  sim.set_fault_schedule(std::move(schedule));

  sim.run(2);  // Slots 0-1: both alive, tables warm.
  EXPECT_EQ(sim.known_neighbor_count(0), 1u);
  sim.step();  // Slot 2: node 1 dies; its last beacon is still fresh.
  EXPECT_EQ(sim.known_neighbor_count(0), 1u);
  sim.step();  // Slot 3: still within TTL.
  EXPECT_EQ(sim.known_neighbor_count(0), 1u);
  sim.step();  // Slot 4: the dead neighbour finally ages out.
  EXPECT_EQ(sim.known_neighbor_count(0), 0u);
  EXPECT_EQ(sim.known_neighbor_count(1), 0u);  // Dead nodes know nothing.
}

TEST(CmaFaults, SurvivorConnectivityMetricsIgnoreTheDead) {
  // A 2-node "network" where one node sits far away: killing it makes
  // the survivor graph trivially connected.
  const auto env = static_env();
  const std::vector<geo::Vec2> pts{{10.0, 10.0}, {90.0, 90.0}};
  CmaConfig cfg = fast_config();
  cfg.velocity = 0.0;
  CmaSimulation sim(env, kRegion, pts, cfg);
  EXPECT_FALSE(sim.is_connected());
  EXPECT_EQ(sim.component_count(), 2u);
  EXPECT_DOUBLE_EQ(sim.largest_component_fraction(), 0.5);

  net::FaultSchedule schedule;
  schedule.add_death(0, 1);
  sim.set_fault_schedule(std::move(schedule));
  sim.step();
  EXPECT_TRUE(sim.is_connected());
  EXPECT_EQ(sim.component_count(), 1u);
  EXPECT_DOUBLE_EQ(sim.largest_component_fraction(), 1.0);
}

}  // namespace
}  // namespace cps::core
