// Tests for rendering and exporters (viz/*).
#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "field/analytic_fields.hpp"
#include "field/grid_field.hpp"
#include "viz/ascii.hpp"
#include "viz/exporters.hpp"
#include "viz/series.hpp"

namespace cps::viz {
namespace {

const num::Rect kRegion{0.0, 0.0, 100.0, 100.0};

std::size_t count_lines(const std::string& s) {
  std::size_t n = 0;
  for (const char c : s) {
    if (c == '\n') ++n;
  }
  return n;
}

TEST(RenderField, DimensionsWithBorder) {
  const field::ConstantField f(1.0);
  AsciiOptions opt;
  opt.width = 20;
  opt.height = 8;
  const std::string out = render_field(f, kRegion, {}, opt);
  EXPECT_EQ(count_lines(out), 10u);  // 8 rows + 2 border lines.
  // Each body line: '|' + 20 chars + '|'.
  const auto first_newline = out.find('\n');
  EXPECT_EQ(first_newline, 22u);
}

TEST(RenderField, BorderlessDimensions) {
  const field::ConstantField f(0.0);
  AsciiOptions opt;
  opt.width = 10;
  opt.height = 4;
  opt.border = false;
  const std::string out = render_field(f, kRegion, {}, opt);
  EXPECT_EQ(count_lines(out), 4u);
}

TEST(RenderField, GradientUsesRampExtremes) {
  const field::PlaneField f(0.0, 1.0, 0.0);  // Bright to the east.
  AsciiOptions opt;
  opt.width = 30;
  opt.height = 6;
  opt.border = false;
  const std::string out = render_field(f, kRegion, {}, opt);
  EXPECT_NE(out.find(' '), std::string::npos);  // Low end of the ramp.
  EXPECT_NE(out.find('@'), std::string::npos);  // High end of the ramp.
}

TEST(RenderField, NodeOverlayMarksPositions) {
  const field::ConstantField f(0.0);
  const std::vector<geo::Vec2> nodes{{50.0, 50.0}};
  AsciiOptions opt;
  opt.width = 11;
  opt.height = 11;
  const std::string out = render_field(f, kRegion, nodes, opt);
  EXPECT_NE(out.find('o'), std::string::npos);
}

TEST(RenderField, FixedRangeSuppressesAutoScale) {
  const field::ConstantField f(5.0);
  AsciiOptions opt;
  opt.width = 5;
  opt.height = 3;
  opt.border = false;
  opt.range_min = 0.0;
  opt.range_max = 10.0;
  // 5.0 in [0, 10] is mid-ramp, not the extremes.
  const std::string out = render_field(f, kRegion, {}, opt);
  EXPECT_EQ(out.find('@'), std::string::npos);
  EXPECT_EQ(out.find(' '), std::string::npos);
}

TEST(RenderField, Validation) {
  const field::ConstantField f(0.0);
  AsciiOptions opt;
  opt.width = 1;
  EXPECT_THROW(render_field(f, kRegion, {}, opt), std::invalid_argument);
  EXPECT_THROW(render_field(f, num::Rect{0.0, 0.0, 0.0, 1.0}, {}, {}),
               std::invalid_argument);
}

TEST(RenderTopology, MarksNodesOnDots) {
  const std::vector<geo::Vec2> nodes{{0.0, 0.0}, {99.0, 99.0}};
  AsciiOptions opt;
  opt.width = 10;
  opt.height = 10;
  opt.border = false;
  const std::string out = render_topology(kRegion, nodes, opt);
  EXPECT_NE(out.find('o'), std::string::npos);
  EXPECT_NE(out.find('.'), std::string::npos);
}

TEST(RenderTopology, OutOfRegionNodesIgnored) {
  const std::vector<geo::Vec2> nodes{{500.0, 500.0}};
  AsciiOptions opt;
  opt.width = 6;
  opt.height = 6;
  opt.border = false;
  const std::string out = render_topology(kRegion, nodes, opt);
  EXPECT_EQ(out.find('o'), std::string::npos);
}

TEST(Exporters, CsvMatrixShape) {
  field::GridField g(kRegion, 3, 2);
  g.set(0, 0, 1.0);
  g.set(2, 1, 6.5);
  std::stringstream out;
  write_csv_matrix(out, g);
  std::string line;
  std::getline(out, line);
  EXPECT_EQ(line, "1,0,0");
  std::getline(out, line);
  EXPECT_EQ(line, "0,0,6.5");
}

TEST(Exporters, PositionsCsv) {
  const std::vector<geo::Vec2> pts{{1.5, 2.5}, {3.0, 4.0}};
  std::stringstream out;
  write_positions_csv(out, pts);
  std::string line;
  std::getline(out, line);
  EXPECT_EQ(line, "x,y");
  std::getline(out, line);
  EXPECT_EQ(line, "1.5,2.5");
}

TEST(Exporters, PgmHeaderAndSize) {
  const field::GridField g(kRegion, 4, 3);
  std::stringstream out;
  write_pgm(out, g);
  const std::string data = out.str();
  EXPECT_EQ(data.rfind("P5\n4 3\n255\n", 0), 0u);
  EXPECT_EQ(data.size(), std::string("P5\n4 3\n255\n").size() + 12u);
}

TEST(Exporters, PgmScalesToFullRange) {
  field::GridField g(kRegion, 2, 2);
  g.set(0, 0, -1.0);
  g.set(1, 1, 3.0);
  std::stringstream out;
  write_pgm(out, g);
  const std::string data = out.str();
  const std::string body = data.substr(data.find("255\n") + 4);
  ASSERT_EQ(body.size(), 4u);
  // Max value -> 255, min -> 0 somewhere in the payload.
  EXPECT_NE(body.find('\xff'), std::string::npos);
  EXPECT_NE(body.find('\x00'), std::string::npos);
}

TEST(Exporters, FileErrorsThrow) {
  const field::GridField g(kRegion, 2, 2);
  EXPECT_THROW(write_csv_matrix_file("/nonexistent/x.csv", g),
               std::runtime_error);
  EXPECT_THROW(write_pgm_file("/nonexistent/x.pgm", g), std::runtime_error);
}

TEST(Series, FormatTableAlignsColumns) {
  const std::vector<Series> cols{{"k", {1.0, 10.0}}, {"delta", {0.5, 0.25}}};
  const std::string out = format_table(cols, 2);
  std::stringstream ss(out);
  std::string header;
  std::getline(ss, header);
  EXPECT_NE(header.find("k"), std::string::npos);
  EXPECT_NE(header.find("delta"), std::string::npos);
  std::string row;
  std::getline(ss, row);
  EXPECT_NE(row.find("1.00"), std::string::npos);
  EXPECT_NE(row.find("0.50"), std::string::npos);
}

TEST(Series, FormatTableValidation) {
  const std::vector<Series> ragged{{"a", {1.0}}, {"b", {1.0, 2.0}}};
  EXPECT_THROW(format_table(ragged), std::invalid_argument);
  EXPECT_EQ(format_table({}), "");
}

TEST(Series, FormatTableNanRendersPlaceholder) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<Series> cols{{"delta", {1.0, nan, 3.0}}};
  const std::string out = format_table(cols, 2);
  EXPECT_EQ(out.find("nan"), std::string::npos);
  EXPECT_NE(out.find('-'), std::string::npos);
  EXPECT_NE(out.find("1.00"), std::string::npos);
  EXPECT_NE(out.find("3.00"), std::string::npos);
}

TEST(Series, SparklineNanRendersPlaceholder) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::string mixed = sparkline(std::vector<double>{0.0, nan, 1.0});
  EXPECT_NE(mixed.find("·"), std::string::npos);
  EXPECT_NE(mixed.find("▁"), std::string::npos);
  EXPECT_NE(mixed.find("█"), std::string::npos);
  // All-NaN series: placeholders only, no block glyphs, no crash.
  const std::string all_nan = sparkline(std::vector<double>{nan, nan});
  EXPECT_EQ(all_nan.find("▁"), std::string::npos);
  EXPECT_EQ(all_nan, "··");
}

TEST(Series, SummarizeSkipsNan) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::string s = summarize("x", std::vector<double>{1.0, nan, 3.0});
  EXPECT_NE(s.find("min=1"), std::string::npos);
  EXPECT_NE(s.find("max=3"), std::string::npos);
  EXPECT_NE(s.find("mean=2"), std::string::npos);
  EXPECT_NE(s.find("nan=1"), std::string::npos);
  EXPECT_NE(summarize("x", std::vector<double>{nan}).find("(all-nan)"),
            std::string::npos);
}

TEST(Series, SparklineShape) {
  const std::vector<double> v{0.0, 1.0, 2.0, 3.0};
  const std::string s = sparkline(v);
  EXPECT_FALSE(s.empty());
  EXPECT_EQ(sparkline({}), "");
  // Monotone series: first glyph is the lowest block, last the highest.
  EXPECT_EQ(s.substr(0, 3), "▁");
  EXPECT_EQ(s.substr(s.size() - 3), "█");
}

TEST(Series, SummarizeContent) {
  const std::vector<double> v{1.0, 3.0};
  const std::string s = summarize("delta", v);
  EXPECT_NE(s.find("delta:"), std::string::npos);
  EXPECT_NE(s.find("min=1"), std::string::npos);
  EXPECT_NE(s.find("max=3"), std::string::npos);
  EXPECT_NE(s.find("mean=2"), std::string::npos);
  EXPECT_NE(s.find("n=2"), std::string::npos);
  EXPECT_NE(summarize("x", {}).find("(empty)"), std::string::npos);
}

}  // namespace
}  // namespace cps::viz
