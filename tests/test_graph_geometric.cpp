// Tests for disk graphs (graph/geometric_graph.hpp).
#include "graph/geometric_graph.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "numerics/rng.hpp"

namespace cps::graph {
namespace {

using geo::Vec2;

TEST(GeometricGraph, EdgesAtExactRadius) {
  // The paper's rule is distance <= Rc: a pair exactly at Rc is connected.
  const std::vector<Vec2> pts{{0.0, 0.0}, {10.0, 0.0}, {25.0, 0.0}};
  const GeometricGraph g(pts, 10.0);
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 2));
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(GeometricGraph, InvalidRadiusThrows) {
  const std::vector<Vec2> pts{{0.0, 0.0}};
  EXPECT_THROW(GeometricGraph(pts, 0.0), std::invalid_argument);
  EXPECT_THROW(GeometricGraph(pts, -1.0), std::invalid_argument);
}

TEST(GeometricGraph, NeighborsSortedAndSymmetric) {
  const std::vector<Vec2> pts{{0.0, 0.0}, {5.0, 0.0}, {0.0, 5.0},
                              {50.0, 50.0}};
  const GeometricGraph g(pts, 8.0);
  EXPECT_EQ(g.neighbors(0), (std::vector<std::size_t>{1, 2}));
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(3), 0u);
  for (std::size_t i = 0; i < 4; ++i) {
    for (const std::size_t j : g.neighbors(i)) {
      EXPECT_TRUE(g.has_edge(j, i));
    }
  }
}

TEST(GeometricGraph, EmptyAndSingletonGraphs) {
  const std::vector<Vec2> none;
  const GeometricGraph g0(none, 1.0);
  EXPECT_EQ(g0.component_count(), 0u);
  EXPECT_TRUE(g0.is_connected());  // Vacuously.

  const std::vector<Vec2> one{{3.0, 3.0}};
  const GeometricGraph g1(one, 1.0);
  EXPECT_EQ(g1.component_count(), 1u);
  EXPECT_TRUE(g1.is_connected());
}

TEST(GeometricGraph, ComponentsPartitionNodes) {
  // Two clusters of 2 plus an isolated node.
  const std::vector<Vec2> pts{{0.0, 0.0}, {1.0, 0.0},   // Component 0.
                              {50.0, 0.0}, {51.0, 0.0},  // Component 1.
                              {100.0, 100.0}};          // Component 2.
  const GeometricGraph g(pts, 2.0);
  EXPECT_EQ(g.component_count(), 3u);
  EXPECT_FALSE(g.is_connected());
  const auto comps = g.components();
  ASSERT_EQ(comps.size(), 3u);
  EXPECT_EQ(comps[0], (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(comps[1], (std::vector<std::size_t>{2, 3}));
  EXPECT_EQ(comps[2], (std::vector<std::size_t>{4}));
  const auto labels = g.component_labels();
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_NE(labels[1], labels[2]);
}

TEST(GeometricGraph, ChainIsConnected) {
  std::vector<Vec2> pts;
  for (int i = 0; i < 20; ++i) pts.push_back({i * 9.9, 0.0});
  const GeometricGraph g(pts, 10.0);
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(g.component_count(), 1u);
}

TEST(GeometricGraph, BfsHopsAlongChain) {
  std::vector<Vec2> pts;
  for (int i = 0; i < 5; ++i) pts.push_back({i * 10.0, 0.0});
  pts.push_back({200.0, 0.0});  // Unreachable.
  const GeometricGraph g(pts, 10.0);
  const auto hops = g.bfs_hops(0);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(hops[i], i);
  EXPECT_EQ(hops[5], std::numeric_limits<std::size_t>::max());
  EXPECT_THROW(g.bfs_hops(99), std::out_of_range);
}

TEST(GeometricGraph, GridPitchEqualRadiusIsConnected) {
  // The CMA initial state: 10 x 10 grid, 10 m pitch, Rc = 10.
  std::vector<Vec2> pts;
  for (int r = 0; r < 10; ++r) {
    for (int c = 0; c < 10; ++c) {
      pts.push_back({5.0 + c * 10.0, 5.0 + r * 10.0});
    }
  }
  const GeometricGraph g(pts, 10.0);
  EXPECT_TRUE(g.is_connected());
  // Interior node: exactly 4 axis neighbours (diagonal is 14.1 > Rc).
  // Node (1,1) has index 11.
  EXPECT_EQ(g.degree(11), 4u);
}

// Property: component labels agree with pairwise reachability via BFS.
class GeometricGraphRandomSweep : public ::testing::TestWithParam<double> {};

TEST_P(GeometricGraphRandomSweep, LabelsMatchReachability) {
  const double radius = GetParam();
  num::Rng rng(static_cast<std::uint64_t>(radius * 100));
  std::vector<Vec2> pts;
  for (int i = 0; i < 60; ++i) {
    pts.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
  }
  const GeometricGraph g(pts, radius);
  const auto labels = g.component_labels();
  const auto hops = g.bfs_hops(0);
  constexpr auto kInf = std::numeric_limits<std::size_t>::max();
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(labels[i] == labels[0], hops[i] != kInf) << "node " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Radii, GeometricGraphRandomSweep,
                         ::testing::Values(5.0, 10.0, 20.0, 40.0, 150.0));

}  // namespace
}  // namespace cps::graph
