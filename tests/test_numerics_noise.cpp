// Tests for value noise (numerics/noise.hpp).
#include "numerics/noise.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cps::num {
namespace {

TEST(ValueNoise, DeterministicForSeed) {
  const ValueNoise a(42, 0.1);
  const ValueNoise b(42, 0.1);
  for (int i = 0; i < 50; ++i) {
    const double x = 0.37 * i;
    const double y = 1.91 * i;
    EXPECT_DOUBLE_EQ(a.sample(x, y), b.sample(x, y));
  }
}

TEST(ValueNoise, DifferentSeedsDiffer) {
  const ValueNoise a(1, 0.1);
  const ValueNoise b(2, 0.1);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.sample(0.3 * i, 0.7 * i) == b.sample(0.3 * i, 0.7 * i)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(ValueNoise, OutputBounded) {
  const ValueNoise n(7, 0.05);
  for (int i = 0; i < 2000; ++i) {
    const double v = n.sample(i * 0.631, i * 0.377);
    ASSERT_GE(v, -1.0001);
    ASSERT_LE(v, 1.0001);
  }
}

TEST(ValueNoise, SmoothAtFineScale) {
  // Adjacent queries well inside one lattice cell should be close.
  const ValueNoise n(11, 0.01);  // 100-unit cells.
  const double v1 = n.sample(50.0, 50.0);
  const double v2 = n.sample(50.5, 50.0);
  EXPECT_LT(std::abs(v1 - v2), 0.1);
}

TEST(ValueNoise, VariesAcrossCells) {
  const ValueNoise n(13, 0.5);  // 2-unit cells.
  double lo = 1e9;
  double hi = -1e9;
  for (int i = 0; i < 100; ++i) {
    const double v = n.sample(i * 2.13, i * 3.71);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_GT(hi - lo, 0.5);  // Real variation, not a constant.
}

TEST(ValueNoise, InvalidFrequencyThrows) {
  EXPECT_THROW(ValueNoise(1, 0.0), std::invalid_argument);
  EXPECT_THROW(ValueNoise(1, -0.5), std::invalid_argument);
}

TEST(ValueNoise, FbmBoundedAndDeterministic) {
  const ValueNoise n(17, 0.05);
  for (int i = 0; i < 500; ++i) {
    const double v = n.fbm(i * 0.91, i * 0.53, 4);
    ASSERT_GE(v, -1.0001);
    ASSERT_LE(v, 1.0001);
  }
  EXPECT_DOUBLE_EQ(n.fbm(3.0, 4.0, 4), n.fbm(3.0, 4.0, 4));
}

TEST(ValueNoise, FbmSingleOctaveEqualsSample) {
  const ValueNoise n(19, 0.07);
  EXPECT_DOUBLE_EQ(n.fbm(2.5, 7.5, 1), n.sample(2.5, 7.5));
}

TEST(ValueNoise, FbmValidation) {
  const ValueNoise n(23, 0.1);
  EXPECT_THROW(n.fbm(0.0, 0.0, 0), std::invalid_argument);
  EXPECT_THROW(n.fbm(0.0, 0.0, -2), std::invalid_argument);
}

}  // namespace
}  // namespace cps::num
