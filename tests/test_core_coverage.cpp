// Tests for sensing-coverage metrics (core/coverage.hpp).
#include "core/coverage.hpp"

#include <gtest/gtest.h>

#include <numbers>

#include "core/planner.hpp"

namespace cps::core {
namespace {

const num::Rect kRegion{0.0, 0.0, 100.0, 100.0};

TEST(Coverage, Validation) {
  const std::vector<geo::Vec2> one{{50.0, 50.0}};
  EXPECT_THROW(coverage_fraction(one, 0.0, kRegion), std::invalid_argument);
  EXPECT_THROW(coverage_fraction(one, 5.0, kRegion, 0),
               std::invalid_argument);
  EXPECT_THROW(coverage_fraction(one, 5.0, num::Rect{0.0, 0.0, 0.0, 1.0}),
               std::invalid_argument);
}

TEST(Coverage, EmptyDeploymentCoversNothing) {
  EXPECT_DOUBLE_EQ(coverage_fraction({}, 5.0, kRegion), 0.0);
  EXPECT_DOUBLE_EQ(covered_area({}, 5.0, kRegion), 0.0);
}

TEST(Coverage, SingleInteriorNodeMatchesDiskArea) {
  const std::vector<geo::Vec2> one{{50.0, 50.0}};
  const double measured = covered_area(one, 10.0, kRegion, 1, 200);
  const double exact = std::numbers::pi * 100.0;
  EXPECT_NEAR(measured, exact, 0.02 * exact);
}

TEST(Coverage, CornerNodeCoversQuarterDisk) {
  const std::vector<geo::Vec2> one{{0.0, 0.0}};
  const double measured = covered_area(one, 20.0, kRegion, 1, 200);
  const double exact = std::numbers::pi * 400.0 / 4.0;
  EXPECT_NEAR(measured, exact, 0.03 * exact);
}

TEST(Coverage, HugeRadiusCoversEverything) {
  const std::vector<geo::Vec2> one{{50.0, 50.0}};
  EXPECT_DOUBLE_EQ(coverage_fraction(one, 200.0, kRegion), 1.0);
}

TEST(Coverage, MultiplicityZeroIsWholeRegion) {
  EXPECT_DOUBLE_EQ(covered_area({}, 5.0, kRegion, 0), kRegion.area());
}

TEST(Coverage, RedundantCoverageNeedsOverlap) {
  // Two distant nodes: multiplicity-2 coverage is zero.
  const std::vector<geo::Vec2> apart{{20.0, 20.0}, {80.0, 80.0}};
  EXPECT_DOUBLE_EQ(covered_area(apart, 10.0, kRegion, 2), 0.0);
  // Two coincident nodes: multiplicity-2 equals multiplicity-1.
  const std::vector<geo::Vec2> twin{{50.0, 50.0}, {50.0, 50.0}};
  EXPECT_NEAR(covered_area(twin, 10.0, kRegion, 2),
              covered_area(twin, 10.0, kRegion, 1), 1e-9);
}

TEST(Coverage, MonotoneInNodeCount) {
  double previous = 0.0;
  for (const std::size_t k : {4u, 16u, 64u, 144u}) {
    const auto grid = GridPlanner::make_grid(kRegion, k);
    const double f = coverage_fraction(grid.positions, 5.0, kRegion, 80);
    EXPECT_GE(f, previous);
    previous = f;
  }
  EXPECT_GT(previous, 0.9);  // 144 nodes at Rs = 5 nearly blanket 100x100.
}

TEST(Coverage, PaperSaturationStory) {
  // Fig. 7's explanation: around k = 125 with Rs = 5 the region is
  // "almost fully" covered.  (Disk packing puts the perfect-cover bound
  // at ~127 nodes; the square grid needs more, so "almost" is right.)
  const auto grid = GridPlanner::make_grid(kRegion, 125);
  const double f = coverage_fraction(grid.positions, 5.0, kRegion, 100);
  EXPECT_GT(f, 0.75);
  EXPECT_LT(f, 1.0);
}

}  // namespace
}  // namespace cps::core
