// Tests for statistics helpers (numerics/stats.hpp).
#include "numerics/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "numerics/rng.hpp"

namespace cps::num {
namespace {

TEST(RunningStats, EmptyState) {
  const RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_TRUE(std::isinf(s.min()));
  EXPECT_TRUE(std::isinf(s.max()));
}

TEST(RunningStats, MatchesDirectComputation) {
  const std::vector<double> data{1.0, 4.0, 2.0, 8.0, 5.0, 7.0};
  RunningStats s;
  for (const double x : data) s.add(x);
  EXPECT_EQ(s.count(), data.size());
  EXPECT_NEAR(s.mean(), 4.5, 1e-12);
  // Sample variance with n-1 denominator.
  double var = 0.0;
  for (const double x : data) var += (x - 4.5) * (x - 4.5);
  var /= static_cast<double>(data.size() - 1);
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(var), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 8.0);
}

TEST(RunningStats, SingleSampleVarianceIsZero) {
  RunningStats s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng(3);
  RunningStats whole;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(2.0, 3.0);
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_NEAR(b.mean(), 1.5, 1e-12);
}

TEST(Percentile, InterpolatesLinearly) {
  const std::vector<double> data{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(data, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(data, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(data, 50.0), 25.0);
}

TEST(Percentile, UnsortedInputHandled) {
  const std::vector<double> data{30.0, 10.0, 40.0, 20.0};
  EXPECT_DOUBLE_EQ(percentile(data, 100.0), 40.0);
}

TEST(Percentile, Validation) {
  EXPECT_THROW(percentile({}, 50.0), std::invalid_argument);
  EXPECT_THROW(percentile(std::vector<double>{1.0}, -1.0),
               std::invalid_argument);
  EXPECT_THROW(percentile(std::vector<double>{1.0}, 101.0),
               std::invalid_argument);
}

TEST(Mean, BasicAndValidation) {
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{1.0, 2.0, 3.0}), 2.0);
  EXPECT_THROW(mean({}), std::invalid_argument);
}

TEST(Rmse, KnownValue) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{1.0, 4.0, 3.0};
  EXPECT_NEAR(rmse(a, b), std::sqrt(4.0 / 3.0), 1e-12);
}

TEST(Rmse, Validation) {
  EXPECT_THROW(rmse(std::vector<double>{1.0}, std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
  EXPECT_THROW(rmse({}, {}), std::invalid_argument);
}

TEST(Pearson, PerfectCorrelation) {
  const std::vector<double> a{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> up{2.0, 4.0, 6.0, 8.0};
  const std::vector<double> down{8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(pearson(a, up), 1.0, 1e-12);
  EXPECT_NEAR(pearson(a, down), -1.0, 1e-12);
}

TEST(Pearson, Validation) {
  const std::vector<double> flat{1.0, 1.0, 1.0};
  const std::vector<double> v{1.0, 2.0, 3.0};
  EXPECT_THROW(pearson(flat, v), std::invalid_argument);
  EXPECT_THROW(pearson(std::vector<double>{1.0}, std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(ConvergenceIndex, FindsSettlingPoint) {
  // Settles at index 3 within 5% of the final value.
  const std::vector<double> series{10.0, 5.0, 2.0, 1.01, 1.0, 1.0, 1.0};
  EXPECT_EQ(convergence_index(series, 0.05), 3u);
}

TEST(ConvergenceIndex, NeverSettled) {
  const std::vector<double> series{4.0, 3.0, 2.0, 1.0};
  // Each step is a >20% move relative to the final value 1.0, so only the
  // last element is inside the band.
  EXPECT_EQ(convergence_index(series, 0.05), 3u);
}

TEST(ConvergenceIndex, ConstantSeriesSettlesImmediately) {
  const std::vector<double> series{2.0, 2.0, 2.0};
  EXPECT_EQ(convergence_index(series, 0.01), 0u);
}

TEST(ConvergenceIndex, EmptySeries) {
  EXPECT_EQ(convergence_index({}, 0.05), 0u);
}

}  // namespace
}  // namespace cps::num
