// Tests for triangle utilities (geometry/triangle.hpp).
#include "geometry/triangle.hpp"

#include <gtest/gtest.h>

namespace cps::geo {
namespace {

const Triangle kRight({0.0, 0.0}, {4.0, 0.0}, {0.0, 3.0});

TEST(Triangle, Areas) {
  EXPECT_DOUBLE_EQ(kRight.signed_area(), 6.0);
  EXPECT_DOUBLE_EQ(kRight.area(), 6.0);
  const Triangle cw({0.0, 0.0}, {0.0, 3.0}, {4.0, 0.0});
  EXPECT_DOUBLE_EQ(cw.signed_area(), -6.0);
  EXPECT_DOUBLE_EQ(cw.area(), 6.0);
}

TEST(Triangle, VertexAccess) {
  EXPECT_EQ(kRight.a(), Vec2(0.0, 0.0));
  EXPECT_EQ(kRight.b(), Vec2(4.0, 0.0));
  EXPECT_EQ(kRight.c(), Vec2(0.0, 3.0));
  EXPECT_EQ(kRight.vertex(2), kRight.c());
}

TEST(Triangle, Degenerate) {
  const Triangle line({0.0, 0.0}, {1.0, 1.0}, {2.0, 2.0});
  EXPECT_TRUE(line.degenerate());
  EXPECT_FALSE(kRight.degenerate());
  const Triangle point({1.0, 1.0}, {1.0, 1.0}, {1.0, 1.0});
  EXPECT_TRUE(point.degenerate());
}

TEST(Triangle, BarycentricAtVertices) {
  const Barycentric w0 = kRight.barycentric(kRight.a());
  EXPECT_NEAR(w0.w0, 1.0, 1e-12);
  EXPECT_NEAR(w0.w1, 0.0, 1e-12);
  EXPECT_NEAR(w0.w2, 0.0, 1e-12);
  const Barycentric w2 = kRight.barycentric(kRight.c());
  EXPECT_NEAR(w2.w2, 1.0, 1e-12);
}

TEST(Triangle, BarycentricSumsToOne) {
  const Barycentric w = kRight.barycentric({1.0, 1.0});
  EXPECT_NEAR(w.w0 + w.w1 + w.w2, 1.0, 1e-12);
  EXPECT_TRUE(w.inside());
}

TEST(Triangle, BarycentricCentroid) {
  const Barycentric w = kRight.barycentric(kRight.centroid());
  EXPECT_NEAR(w.w0, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(w.w1, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(w.w2, 1.0 / 3.0, 1e-12);
}

TEST(Triangle, ContainsInteriorBoundaryExterior) {
  EXPECT_TRUE(kRight.contains({1.0, 1.0}));
  EXPECT_TRUE(kRight.contains({2.0, 0.0}));  // On an edge.
  EXPECT_TRUE(kRight.contains({0.0, 0.0}));  // At a vertex.
  EXPECT_FALSE(kRight.contains({4.0, 3.0}));
  EXPECT_FALSE(kRight.contains({-0.1, 0.0}));
}

TEST(Triangle, CircumcircleRightTriangle) {
  // For a right triangle the circumcentre is the hypotenuse midpoint.
  const auto cc = kRight.circumcircle();
  ASSERT_TRUE(cc.has_value());
  EXPECT_NEAR(cc->center.x, 2.0, 1e-12);
  EXPECT_NEAR(cc->center.y, 1.5, 1e-12);
  EXPECT_NEAR(cc->radius_sq, 6.25, 1e-12);
}

TEST(Triangle, CircumcircleEquidistantFromVertices) {
  const Triangle t({1.0, 2.0}, {5.0, 1.0}, {3.0, 7.0});
  const auto cc = t.circumcircle();
  ASSERT_TRUE(cc.has_value());
  EXPECT_NEAR(distance_sq(cc->center, t.a()), cc->radius_sq, 1e-9);
  EXPECT_NEAR(distance_sq(cc->center, t.b()), cc->radius_sq, 1e-9);
  EXPECT_NEAR(distance_sq(cc->center, t.c()), cc->radius_sq, 1e-9);
}

TEST(Triangle, CircumcircleDegenerateIsNull) {
  const Triangle line({0.0, 0.0}, {1.0, 1.0}, {2.0, 2.0});
  EXPECT_FALSE(line.circumcircle().has_value());
}

TEST(Triangle, LongestEdge) {
  EXPECT_DOUBLE_EQ(kRight.longest_edge(), 5.0);  // The hypotenuse.
}

TEST(InterpolateLinear, ExactOnPlane) {
  // Values from z = 2 + 3x - y must be reproduced everywhere.
  const auto plane = [](Vec2 p) { return 2.0 + 3.0 * p.x - p.y; };
  const Triangle t({0.0, 0.0}, {4.0, 0.0}, {0.0, 3.0});
  const double za = plane(t.a());
  const double zb = plane(t.b());
  const double zc = plane(t.c());
  for (const Vec2 p : {Vec2{1.0, 1.0}, Vec2{0.5, 2.0}, Vec2{3.0, 0.5},
                       t.centroid()}) {
    EXPECT_NEAR(interpolate_linear(t, za, zb, zc, p), plane(p), 1e-12);
  }
}

TEST(InterpolateLinear, VertexValuesReproduced) {
  const Triangle t({0.0, 0.0}, {1.0, 0.0}, {0.0, 1.0});
  EXPECT_NEAR(interpolate_linear(t, 7.0, -2.0, 5.0, t.a()), 7.0, 1e-12);
  EXPECT_NEAR(interpolate_linear(t, 7.0, -2.0, 5.0, t.b()), -2.0, 1e-12);
  EXPECT_NEAR(interpolate_linear(t, 7.0, -2.0, 5.0, t.c()), 5.0, 1e-12);
}

TEST(InterpolateLinear, LinearExtrapolationOutside) {
  const Triangle t({0.0, 0.0}, {1.0, 0.0}, {0.0, 1.0});
  // Plane z = x: at (2, 0), well outside, extrapolates to 2.
  EXPECT_NEAR(interpolate_linear(t, 0.0, 1.0, 0.0, {2.0, 0.0}), 2.0, 1e-12);
}

}  // namespace
}  // namespace cps::geo
