// Tests for the Foresighted Refinement Algorithm (core/fra.hpp).
#include "core/fra.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/delta.hpp"
#include "field/analytic_fields.hpp"
#include "graph/geometric_graph.hpp"

namespace cps::core {
namespace {

const num::Rect kRegion{0.0, 0.0, 100.0, 100.0};

field::GaussianMixtureField test_field() {
  // A GreenOrbs-like mixture: three bright patches over a dim base.
  return field::GaussianMixtureField(0.5, {{{25.0, 30.0}, 3.0, 8.0},
                                           {{70.0, 65.0}, 2.0, 12.0},
                                           {{45.0, 80.0}, 4.0, 6.0}});
}

FraConfig fast_config() {
  FraConfig cfg;
  cfg.error_grid = 50;  // Faster than the paper's 100 for unit tests.
  return cfg;
}

PlanRequest request(std::size_t k, double rc = 10.0) {
  return PlanRequest{kRegion, k, rc};
}

TEST(Fra, ConfigValidation) {
  FraConfig bad;
  bad.error_grid = 1;
  EXPECT_THROW(FraPlanner{bad}, std::invalid_argument);
  bad = FraConfig{};
  bad.curvature_radius = 0.0;
  EXPECT_THROW(FraPlanner{bad}, std::invalid_argument);
  FraPlanner ok{fast_config()};
  EXPECT_THROW(ok.plan(test_field(), request(5, 0.0)),
               std::invalid_argument);
}

TEST(Fra, ZeroBudgetIsEmpty) {
  FraPlanner planner(fast_config());
  EXPECT_TRUE(planner.plan(test_field(), request(0)).empty());
}

TEST(Fra, ProducesExactlyKDistinctPositionsInRegion) {
  FraPlanner planner(fast_config());
  const auto f = test_field();
  const Deployment d = planner.plan(f, request(40));
  ASSERT_EQ(d.size(), 40u);
  std::set<std::pair<double, double>> unique;
  for (const auto& p : d.positions) {
    EXPECT_TRUE(kRegion.contains(p.x, p.y));
    unique.insert({p.x, p.y});
  }
  EXPECT_EQ(unique.size(), 40u);
}

TEST(Fra, FirstSelectionIsGlobalMaxError) {
  // With an empty triangulation (corners pinned to f), the largest local
  // error on the mixture sits at the strongest off-plane feature; the
  // first chosen point must carry the maximal score of all steps.
  FraPlanner planner(fast_config());
  const auto result = planner.plan_detailed(test_field(), request(10));
  ASSERT_FALSE(result.steps.empty());
  for (const auto& step : result.steps) {
    EXPECT_LE(step.score, result.steps.front().score + 1e-12);
  }
}

TEST(Fra, DeploymentIsConnected) {
  FraPlanner planner(fast_config());
  const Deployment d = planner.plan(test_field(), request(30));
  EXPECT_TRUE(graph::GeometricGraph(d.positions, 10.0).is_connected());
}

TEST(Fra, ForesightOffCanDisconnect) {
  // Pure greedy refinement chases the three separated bumps; with Rc = 10
  // the result is (virtually always) a disconnected topology — which is
  // exactly why the foresight step exists.
  FraConfig cfg = fast_config();
  cfg.foresight = false;
  FraPlanner planner(cfg);
  const Deployment d = planner.plan(test_field(), request(12));
  EXPECT_FALSE(graph::GeometricGraph(d.positions, 10.0).is_connected());
}

TEST(Fra, RelayStepsAreFlaggedAndCounted) {
  FraPlanner planner(fast_config());
  const auto result = planner.plan_detailed(test_field(), request(30));
  std::size_t flagged = 0;
  for (const auto& s : result.steps) flagged += s.relay ? 1u : 0u;
  EXPECT_EQ(flagged, result.relay_count);
  EXPECT_GT(result.relay_count, 0u);  // Bumps are farther apart than Rc.
  EXPECT_EQ(result.steps.size(), result.deployment.size());
}

TEST(Fra, DeltaImprovesWithBudget) {
  FraPlanner planner(fast_config());
  const auto f = test_field();
  const DeltaMetric metric(kRegion, 50);
  const auto corners = CornerPolicy::kFieldValue;  // OSD knows f.
  const double d10 = metric.delta_of_deployment(
      f, planner.plan(f, request(10)).positions, corners);
  const double d60 = metric.delta_of_deployment(
      f, planner.plan(f, request(60)).positions, corners);
  EXPECT_LT(d60, d10);
}

TEST(Fra, BeatsRandomBaselineAtModestK) {
  // The Fig. 7 headline: FRA's delta well under random scatter's for
  // small/medium k.  Averaged over a few random seeds for stability.
  const auto f = test_field();
  const DeltaMetric metric(kRegion, 50);
  FraPlanner fra(fast_config());
  const auto corners = CornerPolicy::kFieldValue;  // OSD knows f.
  const double fra_delta = metric.delta_of_deployment(
      f, fra.plan(f, request(30)).positions, corners);
  double random_delta = 0.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    RandomPlanner random(seed);
    random_delta += metric.delta_of_deployment(
        f, random.plan(f, request(30)).positions, corners);
  }
  random_delta /= 5.0;
  EXPECT_LT(fra_delta, random_delta);
}

TEST(Fra, SelectionMeasuresAllProduceValidPlans) {
  const auto f = test_field();
  for (const auto measure :
       {SelectionMeasure::kLocalError, SelectionMeasure::kCurvature,
        SelectionMeasure::kProduct, SelectionMeasure::kRandom}) {
    FraConfig cfg = fast_config();
    cfg.measure = measure;
    cfg.error_grid = 30;  // Curvature grids are expensive; keep tests fast.
    FraPlanner planner(cfg);
    const Deployment d = planner.plan(f, request(15));
    EXPECT_EQ(d.size(), 15u);
    EXPECT_TRUE(graph::GeometricGraph(d.positions, 10.0).is_connected());
  }
}

TEST(Fra, RandomMeasureIsSeedDeterministic) {
  FraConfig cfg = fast_config();
  cfg.measure = SelectionMeasure::kRandom;
  cfg.seed = 123;
  FraPlanner a(cfg);
  FraPlanner b(cfg);
  const auto f = test_field();
  EXPECT_EQ(a.plan(f, request(10)).positions,
            b.plan(f, request(10)).positions);
}

TEST(Fra, RelayInsertionKeepsCandidateBucketsConsistent) {
  // Regression: place_relays used to insert relay vertices into the DT
  // without running the Garland-Heckbert displaced-candidate update, so
  // every candidate bucketed under a triangle the relay's cavity destroyed
  // kept a dead (soon recycled) triangle id and a stale error.  The
  // planner audits bucket consistency at the end of every plan; any relay
  // run must leave zero stale candidates.
  FraPlanner planner(fast_config());
  const auto result = planner.plan_detailed(test_field(), request(30));
  EXPECT_GT(result.relay_count, 0u);  // The scenario must exercise relays.
  EXPECT_EQ(result.stale_candidates, 0u);
}

TEST(Fra, BucketsStayConsistentThroughRelayThenContinue) {
  // A sparse lattice with a tight radius exhausts the affordable
  // candidates mid-plan (no affordable candidate -> connect -> continue
  // refining), the worst case for stale buckets: selections after the
  // relay burst consult the rebucketed errors.
  FraConfig cfg = fast_config();
  cfg.error_grid = 12;
  FraPlanner planner(cfg);
  const auto result = planner.plan_detailed(test_field(), request(30, 4.0));
  EXPECT_GT(result.relay_count, 0u);
  EXPECT_EQ(result.stale_candidates, 0u);
  // At least one refinement selection must come after a relay, otherwise
  // this test would not distinguish trailing-relay plans from the
  // relay-then-continue path it is meant to pin down.
  bool relay_seen = false;
  bool selection_after_relay = false;
  for (const auto& step : result.steps) {
    relay_seen = relay_seen || step.relay;
    selection_after_relay =
        selection_after_relay || (relay_seen && !step.relay);
  }
  EXPECT_TRUE(selection_after_relay);
}

// Property sweep: connectivity holds across budgets (the paper's k range).
class FraBudgetSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FraBudgetSweep, ConnectedAtEveryBudget) {
  const std::size_t k = GetParam();
  FraPlanner planner(fast_config());
  const Deployment d = planner.plan(test_field(), request(k));
  EXPECT_EQ(d.size(), k);
  EXPECT_TRUE(graph::GeometricGraph(d.positions, 10.0).is_connected())
      << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Budgets, FraBudgetSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 10u, 20u, 50u,
                                           80u));

}  // namespace
}  // namespace cps::core
