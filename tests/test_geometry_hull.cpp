// Tests for convex hull utilities (geometry/hull.hpp).
#include "geometry/hull.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "geometry/predicates.hpp"
#include "numerics/rng.hpp"

namespace cps::geo {
namespace {

TEST(ConvexHull, DegenerateInputs) {
  EXPECT_TRUE(convex_hull(std::vector<Vec2>{}).empty());
  const std::vector<Vec2> one{{1.0, 2.0}};
  EXPECT_EQ(convex_hull(one).size(), 1u);
  const std::vector<Vec2> dup{{1.0, 2.0}, {1.0, 2.0}};
  EXPECT_EQ(convex_hull(dup).size(), 1u);
  const std::vector<Vec2> two{{0.0, 0.0}, {1.0, 1.0}};
  EXPECT_EQ(convex_hull(two).size(), 2u);
}

TEST(ConvexHull, SquareWithInteriorPoint) {
  const std::vector<Vec2> pts{{0.0, 0.0}, {10.0, 0.0}, {10.0, 10.0},
                              {0.0, 10.0}, {5.0, 5.0}};
  const auto hull = convex_hull(pts);
  ASSERT_EQ(hull.size(), 4u);
  // Interior point excluded; all corners present.
  for (const Vec2 corner : {Vec2{0.0, 0.0}, Vec2{10.0, 0.0},
                            Vec2{10.0, 10.0}, Vec2{0.0, 10.0}}) {
    EXPECT_NE(std::find(hull.begin(), hull.end(), corner), hull.end());
  }
}

TEST(ConvexHull, CollinearBoundaryPointsDropped) {
  const std::vector<Vec2> pts{{0.0, 0.0}, {5.0, 0.0}, {10.0, 0.0},
                              {10.0, 10.0}, {0.0, 10.0}};
  const auto hull = convex_hull(pts);
  EXPECT_EQ(hull.size(), 4u);
  EXPECT_EQ(std::find(hull.begin(), hull.end(), Vec2(5.0, 0.0)), hull.end());
}

TEST(ConvexHull, AllCollinearReducesToEndpoints) {
  const std::vector<Vec2> pts{{0.0, 0.0}, {1.0, 1.0}, {2.0, 2.0},
                              {3.0, 3.0}};
  const auto hull = convex_hull(pts);
  // A fully collinear set has no 2-D hull; monotone chain leaves the two
  // extremes.
  EXPECT_EQ(hull.size(), 2u);
}

TEST(ConvexHull, OutputIsCounterClockwiseAndConvex) {
  num::Rng rng(5);
  std::vector<Vec2> pts;
  for (int i = 0; i < 100; ++i) {
    pts.push_back({rng.uniform(0.0, 50.0), rng.uniform(0.0, 50.0)});
  }
  const auto hull = convex_hull(pts);
  ASSERT_GE(hull.size(), 3u);
  for (std::size_t i = 0; i < hull.size(); ++i) {
    const Vec2 a = hull[i];
    const Vec2 b = hull[(i + 1) % hull.size()];
    const Vec2 c = hull[(i + 2) % hull.size()];
    EXPECT_GT(orient2d(a, b, c), 0) << "turn " << i;
  }
}

TEST(ConvexHull, ContainsEveryInputPoint) {
  num::Rng rng(7);
  std::vector<Vec2> pts;
  for (int i = 0; i < 60; ++i) {
    pts.push_back({rng.uniform(0.0, 20.0), rng.uniform(0.0, 20.0)});
  }
  const auto hull = convex_hull(pts);
  for (const auto& p : pts) {
    for (std::size_t i = 0; i < hull.size(); ++i) {
      const Vec2 a = hull[i];
      const Vec2 b = hull[(i + 1) % hull.size()];
      ASSERT_GE(orient2d(a, b, p), 0) << "point outside hull edge " << i;
    }
  }
}

TEST(PolygonArea, KnownShapes) {
  const std::vector<Vec2> square{{0.0, 0.0}, {4.0, 0.0}, {4.0, 4.0},
                                 {0.0, 4.0}};
  EXPECT_DOUBLE_EQ(polygon_area(square), 16.0);
  const std::vector<Vec2> triangle{{0.0, 0.0}, {6.0, 0.0}, {0.0, 8.0}};
  EXPECT_DOUBLE_EQ(polygon_area(triangle), 24.0);
  // Clockwise is negative.
  const std::vector<Vec2> cw{{0.0, 0.0}, {0.0, 4.0}, {4.0, 4.0},
                             {4.0, 0.0}};
  EXPECT_DOUBLE_EQ(polygon_area(cw), -16.0);
  EXPECT_DOUBLE_EQ(polygon_area(std::vector<Vec2>{}), 0.0);
  EXPECT_DOUBLE_EQ(polygon_area(std::vector<Vec2>{{1.0, 1.0}, {2.0, 2.0}}),
                   0.0);
}

TEST(PolygonArea, HullAreaBoundedByRegion) {
  num::Rng rng(11);
  std::vector<Vec2> pts;
  for (int i = 0; i < 80; ++i) {
    pts.push_back({rng.uniform(0.0, 30.0), rng.uniform(0.0, 30.0)});
  }
  const double area = polygon_area(convex_hull(pts));
  EXPECT_GT(area, 0.0);
  EXPECT_LE(area, 900.0);
}

}  // namespace
}  // namespace cps::geo
