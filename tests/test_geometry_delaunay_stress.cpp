// Adversarial stress tests for the Delaunay triangulation: degenerate
// configurations (cocircular rings, collinear runs, boundary chains) that
// the filtered predicates and the cavity construction must survive.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "geometry/delaunay.hpp"
#include "numerics/rng.hpp"

namespace cps::geo {
namespace {

const num::Rect kRegion{0.0, 0.0, 100.0, 100.0};

void expect_sound(const Delaunay& dt) {
  EXPECT_TRUE(dt.validate_topology());
  EXPECT_TRUE(dt.is_delaunay());
  EXPECT_NEAR(dt.total_area(), kRegion.area(), 1e-6);
}

TEST(DelaunayStress, CocircularRing) {
  // Many points on one circle: every quadruple is cocircular.
  Delaunay dt(kRegion);
  const int n = 24;
  for (int i = 0; i < n; ++i) {
    const double angle = 2.0 * std::numbers::pi * i / n;
    dt.insert({50.0 + 30.0 * std::cos(angle), 50.0 + 30.0 * std::sin(angle)},
              0.0);
  }
  expect_sound(dt);
}

TEST(DelaunayStress, TwoConcentricRings) {
  Delaunay dt(kRegion);
  for (const double radius : {15.0, 35.0}) {
    for (int i = 0; i < 16; ++i) {
      const double angle = 2.0 * std::numbers::pi * i / 16 + 0.1;
      dt.insert({50.0 + radius * std::cos(angle),
                 50.0 + radius * std::sin(angle)},
                0.0);
    }
  }
  expect_sound(dt);
}

TEST(DelaunayStress, CollinearRunThroughInterior) {
  Delaunay dt(kRegion);
  for (int i = 1; i < 40; ++i) {
    dt.insert({i * 2.5, i * 2.5}, 0.0);  // Points on the main diagonal.
  }
  expect_sound(dt);
}

TEST(DelaunayStress, HorizontalAndVerticalRuns) {
  Delaunay dt(kRegion);
  for (int i = 1; i < 20; ++i) dt.insert({i * 5.0, 50.0}, 0.0);
  for (int i = 1; i < 20; ++i) dt.insert({50.0, i * 5.0}, 0.0);
  expect_sound(dt);
}

TEST(DelaunayStress, AllFourBordersPopulated) {
  Delaunay dt(kRegion);
  for (int i = 1; i < 10; ++i) {
    const double s = i * 10.0;
    dt.insert({s, 0.0}, 0.0);
    dt.insert({s, 100.0}, 0.0);
    dt.insert({0.0, s}, 0.0);
    dt.insert({100.0, s}, 0.0);
  }
  expect_sound(dt);
  // 4 corners + 36 border points.
  EXPECT_EQ(dt.vertex_count(), 40u);
}

TEST(DelaunayStress, BorderPointsThenInterior) {
  Delaunay dt(kRegion);
  for (int i = 1; i < 10; ++i) dt.insert({i * 10.0, 0.0}, 0.0);
  num::Rng rng(3);
  for (int i = 0; i < 60; ++i) {
    dt.insert({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)}, 0.0);
  }
  expect_sound(dt);
}

TEST(DelaunayStress, NearDuplicateJitterCluster) {
  Delaunay dt(kRegion);
  num::Rng rng(17);
  for (int i = 0; i < 200; ++i) {
    dt.insert({50.0 + rng.uniform(-1e-5, 1e-5),
               50.0 + rng.uniform(-1e-5, 1e-5)},
              0.0, /*duplicate_tol=*/1e-7);
  }
  EXPECT_TRUE(dt.validate_topology());
  EXPECT_NEAR(dt.total_area(), kRegion.area(), 1e-6);
}

TEST(DelaunayStress, FineGridHammer) {
  // 21 x 21 exact lattice: thousands of cocircular quadruples plus
  // on-edge insertions everywhere.
  Delaunay dt(kRegion);
  for (int i = 0; i <= 20; ++i) {
    for (int j = 0; j <= 20; ++j) {
      dt.insert({i * 5.0, j * 5.0}, static_cast<double>(i * j));
    }
  }
  expect_sound(dt);
  // Interpolation at lattice points reproduces the samples.
  EXPECT_NEAR(dt.interpolate({25.0, 35.0}), 5.0 * 7.0, 1e-9);
}

TEST(DelaunayStress, AlternatingExtremesOfZ) {
  // Structural soundness is independent of z values.
  Delaunay dt(kRegion);
  num::Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    dt.insert({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)},
              (i % 2 == 0) ? 1e12 : -1e12);
  }
  expect_sound(dt);
}

}  // namespace
}  // namespace cps::geo
