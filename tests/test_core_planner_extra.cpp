// Tests for the farthest-point coverage baseline
// (core/planner.hpp::FarthestPointPlanner).
#include <gtest/gtest.h>

#include "core/delta.hpp"
#include "core/planner.hpp"
#include "field/analytic_fields.hpp"

namespace cps::core {
namespace {

const num::Rect kRegion{0.0, 0.0, 100.0, 100.0};
const field::ConstantField kFlat(0.0);

TEST(FarthestPoint, Validation) {
  EXPECT_THROW(FarthestPointPlanner{1}, std::invalid_argument);
}

TEST(FarthestPoint, StartsAtCenter) {
  FarthestPointPlanner planner;
  const auto d = planner.plan(kFlat, {kRegion, 1, 10.0});
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d.positions[0], geo::Vec2(50.0, 50.0));
}

TEST(FarthestPoint, SecondPickIsACorner) {
  FarthestPointPlanner planner;
  const auto d = planner.plan(kFlat, {kRegion, 2, 10.0});
  ASSERT_EQ(d.size(), 2u);
  const auto p = d.positions[1];
  EXPECT_TRUE((p.x == 0.0 || p.x == 100.0) && (p.y == 0.0 || p.y == 100.0))
      << p.x << "," << p.y;
}

TEST(FarthestPoint, ZeroBudget) {
  FarthestPointPlanner planner;
  EXPECT_TRUE(planner.plan(kFlat, {kRegion, 0, 10.0}).empty());
}

TEST(FarthestPoint, PositionsDistinctAndInRegion) {
  FarthestPointPlanner planner;
  const auto d = planner.plan(kFlat, {kRegion, 40, 10.0});
  ASSERT_EQ(d.size(), 40u);
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_TRUE(kRegion.contains(d.positions[i].x, d.positions[i].y));
    for (std::size_t j = i + 1; j < d.size(); ++j) {
      EXPECT_GT(geo::distance(d.positions[i], d.positions[j]), 1e-9);
    }
  }
}

TEST(FarthestPoint, MinPairwiseDistanceBeatsRandom) {
  // The whole point of max-min placement: its packing radius dominates a
  // random scatter's.
  FarthestPointPlanner farthest;
  RandomPlanner random(5);
  const auto request = PlanRequest{kRegion, 25, 10.0};
  const auto df = farthest.plan(kFlat, request);
  const auto dr = random.plan(kFlat, request);
  const auto min_dist = [](const Deployment& d) {
    double best = 1e18;
    for (std::size_t i = 0; i < d.size(); ++i) {
      for (std::size_t j = i + 1; j < d.size(); ++j) {
        best = std::min(best, geo::distance(d.positions[i], d.positions[j]));
      }
    }
    return best;
  };
  EXPECT_GT(min_dist(df), min_dist(dr));
}

TEST(FarthestPoint, CoverageBaselineBeatsRandomOnDelta) {
  // Field-blind but evenly spread: on a structured field it should at
  // least match random scatter, usually beat it.
  const field::PeaksField peaks(kRegion);
  const DeltaMetric metric(kRegion, 50);
  const auto corners = CornerPolicy::kFieldValue;
  FarthestPointPlanner farthest;
  const double d_far = metric.delta_of_deployment(
      peaks, farthest.plan(peaks, {kRegion, 36, 10.0}).positions, corners);
  double d_rnd = 0.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    RandomPlanner random(seed);
    d_rnd += metric.delta_of_deployment(
        peaks, random.plan(peaks, {kRegion, 36, 10.0}).positions, corners);
  }
  d_rnd /= 5.0;
  EXPECT_LT(d_far, d_rnd);
}

TEST(FarthestPoint, DeterministicAcrossCalls) {
  FarthestPointPlanner a;
  FarthestPointPlanner b;
  EXPECT_EQ(a.plan(kFlat, {kRegion, 20, 10.0}).positions,
            b.plan(kFlat, {kRegion, 20, 10.0}).positions);
}

}  // namespace
}  // namespace cps::core
