// Fig. 6 — surface rebuilt by FRA with k = 100 stationary nodes.
//
// With an adequate budget "most nodes can be distributed in the positions
// with high local errors", so the rebuilt surface is much smoother and
// almost all tiny fluctuations are captured (paper, Section 6.2).
#include <cstdio>

#include "common.hpp"
#include "core/fra.hpp"
#include "core/reconstruction.hpp"
#include "field/analytic_fields.hpp"
#include "graph/geometric_graph.hpp"
#include "viz/exporters.hpp"

int main(int argc, char** argv) {
  using namespace cps;
  bench::ObsSession obs_session("fig6_fra_k100");
  bench::configure_threads(argc, argv);
  bench::print_header("Fig. 6", "FRA rebuilt surface, k = 100, Rc = 10");

  const auto env = bench::canonical_field();
  const field::FieldSlice frame(env, bench::reference_time());
  const core::DeltaMetric metric = bench::canonical_metric();

  core::FraConfig cfg;
  core::FraPlanner planner(cfg);
  const core::FraResult result = planner.plan_detailed(
      frame, core::PlanRequest{bench::kRegion, 100, bench::kRc});

  const graph::GeometricGraph topology(result.deployment.positions,
                                       bench::kRc);
  std::printf("(a) topology of the 100-node CPS network "
              "(%zu refinement nodes + %zu relays, connected=%s):\n%s\n",
              result.deployment.size() - result.relay_count,
              result.relay_count,
              topology.is_connected() ? "yes" : "NO",
              bench::render(frame, result.deployment.positions).c_str());

  const auto dt = core::reconstruct_surface(
      core::take_samples(frame, result.deployment.positions), bench::kRegion,
      core::CornerPolicy::kFieldValue, &frame);
  const field::AnalyticField rebuilt(
      [&dt](double x, double y) { return dt.interpolate({x, y}); });
  std::printf("(b) rebuilt virtual surface:\n%s\n",
              bench::render(rebuilt).c_str());

  const double delta = metric.delta(frame, dt);
  std::printf("delta = %.1f (mean abs error %.3f KLux per m^2)\n", delta,
              metric.mean_abs_error(delta));
  std::printf("paper expectation: much better and smoother than k = 30; "
              "compare bench_fig5's delta\n");

  const std::string dir = bench::output_dir();
  viz::write_positions_csv_file(dir + "/fig6_positions.csv",
                                result.deployment.positions);
  std::printf("exported: %s/fig6_positions.csv\n", dir.c_str());
  return 0;
}
