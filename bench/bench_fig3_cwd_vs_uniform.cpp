// Fig. 3 — uniform vs curvature-weighted distribution on Matlab peaks.
//
// The paper places 16 nodes on the Peaks(100) surface with Rc = 30 and
// contrasts the uniform grid (Fig. 3b) with the curvature-weighted pattern
// (Fig. 3c), arguing the CWD nodes "outline the surface obviously more
// clear".  This harness computes both patterns, prints the topologies, and
// quantifies the claim end-to-end: delta after Delaunay reconstruction and
// the total |Gaussian curvature| captured at node positions (Eqn. 10).
#include <cstdio>

#include "common.hpp"
#include "core/curvature.hpp"
#include "core/cwd.hpp"
#include "field/analytic_fields.hpp"
#include "viz/exporters.hpp"

int main(int argc, char** argv) {
  using namespace cps;
  bench::ObsSession obs_session("fig3_cwd_vs_uniform");
  bench::configure_threads(argc, argv);
  bench::print_header("Fig. 3",
                      "uniform vs curvature-weighted, 16 nodes on peaks");

  const field::PeaksField peaks(bench::kRegion);
  const core::DeltaMetric metric = bench::canonical_metric();
  constexpr std::size_t kNodes = 16;
  constexpr double kFig3Rc = 30.0;  // The figure's communication range.

  const auto uniform = core::GridPlanner::make_grid(bench::kRegion, kNodes);

  core::CwdConfig cwd_cfg;  // Defaults carry rc = 30 (the Fig. 3 setting).
  cwd_cfg.rc = kFig3Rc;
  const core::CwdSolver solver(cwd_cfg);
  const core::CwdResult cwd = solver.solve(peaks, bench::kRegion, kNodes);

  std::printf("Peaks(100) reference surface:\n%s\n",
              bench::render(peaks).c_str());
  std::printf("(b) uniform distribution topology:\n%s\n",
              bench::render(peaks, uniform.positions).c_str());
  std::printf("(c) curvature-weighted distribution topology "
              "(%zu relaxation iterations%s):\n%s\n",
              cwd.iterations, cwd.converged ? ", converged" : "",
              bench::render(peaks, cwd.deployment.positions).c_str());

  const auto corners = core::CornerPolicy::kFieldValue;
  const double d_uniform =
      metric.delta_of_deployment(peaks, uniform.positions, corners);
  const double d_cwd =
      metric.delta_of_deployment(peaks, cwd.deployment.positions, corners);

  const core::CurvatureEstimator estimator(10.0);
  double g_uniform = 0.0;
  double g_cwd = 0.0;
  for (std::size_t i = 0; i < kNodes; ++i) {
    g_uniform += std::abs(estimator.gaussian_at(peaks, uniform.positions[i]));
    g_cwd += std::abs(
        estimator.gaussian_at(peaks, cwd.deployment.positions[i]));
  }

  std::printf("pattern    delta      sum|G| at nodes\n");
  std::printf("uniform    %8.1f   %10.4f\n", d_uniform, g_uniform);
  std::printf("CWD        %8.1f   %10.4f\n", d_cwd, g_cwd);
  std::printf("\npaper expectation: CWD outlines the surface better "
              "(lower delta, higher captured curvature)\n");
  std::printf("measured: delta ratio CWD/uniform = %.2f, curvature ratio "
              "= %.2f\n",
              d_cwd / d_uniform, g_cwd / g_uniform);

  const std::string dir = bench::output_dir();
  viz::write_positions_csv_file(dir + "/fig3_uniform.csv", uniform.positions);
  viz::write_positions_csv_file(dir + "/fig3_cwd.csv",
                                cwd.deployment.positions);
  std::printf("exported: %s/fig3_{uniform,cwd}.csv\n", dir.c_str());
  return 0;
}
