// Extension F — trace sampling of mobile nodes (the paper's Section 7
// future work).
//
// Mobile nodes leave a trail of measurements behind them; reconstruction
// can use that trail instead of only the k instantaneous positions.  On a
// static field the trail is pure profit; on a time-varying field stale
// trail values mislead — the staleness window is the dial between the
// two, which this bench sweeps.
#include <cstdio>
#include <vector>

#include <memory>

#include "common.hpp"
#include "core/cma.hpp"
#include "field/time_varying.hpp"
#include "viz/series.hpp"

namespace {

double run(const cps::field::TimeVaryingField& env, double staleness,
           bool with_trace, cps::core::DeltaMetric& metric) {
  using namespace cps;
  core::CmaConfig cfg;
  cfg.rc = bench::kRc * 1.0001;
  cfg.lcm = core::LcmMode::kPaper;
  cfg.trace_sampling = true;
  cfg.trace_staleness = staleness;
  core::CmaSimulation sim(
      env, bench::kRegion,
      core::GridPlanner::make_grid(bench::kRegion, 100).positions, cfg,
      cps::trace::minutes(10, 0));
  sim.run(30);
  return with_trace ? sim.current_delta_with_trace(metric)
                    : sim.current_delta(metric);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cps;
  bench::ObsSession obs_session("extension_trace_sampling");
  bench::configure_threads(argc, argv);
  bench::print_header("Extension F",
                      "point vs trace sampling for mobile nodes");

  const auto env = bench::canonical_field();
  const auto recorded = env.record(trace::minutes(10, 0),
                                   trace::minutes(10, 30), 5.0, 101, 101);
  // A frozen counterpart isolates the staleness effect: same field, no
  // flutter/drift, so trail values never go bad.
  const auto frozen = std::make_shared<field::FieldSlice>(
      recorded, trace::minutes(10, 0));
  const field::StaticTimeField frozen_env(frozen);
  core::DeltaMetric metric = bench::canonical_metric();

  const double point_varying = run(recorded, 1.0, false, metric);
  const double point_static = run(frozen_env, 1.0, false, metric);
  std::printf("point sampling (k=100 instantaneous positions):\n");
  std::printf("  time-varying field: delta@10:30 = %.1f\n", point_varying);
  std::printf("  frozen field:       delta@+30m  = %.1f\n\n", point_static);

  std::printf("staleness(min)  frozen: trace delta (vs point)   "
              "varying: trace delta (vs point)\n");
  for (const double staleness : {2.0, 5.0, 10.0, 20.0, 30.0}) {
    const double st = run(frozen_env, staleness, true, metric);
    const double tv = run(recorded, staleness, true, metric);
    std::printf("%13.0f  %12.1f (%+6.1f%%)          %12.1f (%+6.1f%%)\n",
                staleness, st,
                100.0 * (st - point_static) / point_static, tv,
                100.0 * (tv - point_varying) / point_varying);
  }
  std::printf("\nreading: on the frozen field the trail is pure profit "
              "(more true samples, delta drops monotonically with the "
              "window).  On the real fluttering field even minutes-old "
              "values are wrong enough to hurt: the canopy flutter's "
              "coherence time is shorter than the sampling trail — trace "
              "sampling is only a win when the environment changes slower "
              "than the nodes move, which is why the paper leaves it as "
              "future work rather than a free improvement.\n");
  return 0;
}
