// Figs. 8 & 9 — CMA movement snapshots at 10:00 and 10:25.
//
// 100 mobile nodes start from the connected grid (Fig. 8a), run CMA on the
// replayed trace, and by 10:25 "barely move since they almost stay at the
// positions with curvature-weighted balance" (Fig. 9).  The rebuilt
// surfaces (Figs. 8b, 9b) approach the referential shape over time.
#include <cstdio>

#include "common.hpp"
#include "core/cma.hpp"
#include "core/reconstruction.hpp"
#include "field/analytic_fields.hpp"
#include "viz/exporters.hpp"

namespace {

void show_snapshot(const char* figure, const cps::core::CmaSimulation& sim,
                   const cps::field::TimeVaryingField& env,
                   const cps::core::DeltaMetric& metric) {
  using namespace cps;
  const field::FieldSlice now(env, sim.time());
  std::printf("%s (t = %02d:%02d)\n", figure,
              static_cast<int>(sim.time()) / 60,
              static_cast<int>(sim.time()) % 60);
  std::printf("(a) node distribution:\n%s\n",
              bench::render(now, sim.positions()).c_str());
  const auto dt = core::reconstruct_surface(sim.sense_at_nodes(),
                                            bench::kRegion);
  const field::AnalyticField rebuilt(
      [&dt](double x, double y) { return dt.interpolate({x, y}); });
  std::printf("(b) rebuilt virtual surface:\n%s\n",
              bench::render(rebuilt).c_str());
  std::printf("delta = %.1f, largest component = %.0f%% of nodes, "
              "last max move = %.2f m\n\n",
              sim.current_delta(metric),
              100.0 * sim.largest_component_fraction(),
              sim.last_max_displacement());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cps;
  bench::ObsSession obs_session("fig8_9_cma_snapshots");
  bench::configure_threads(argc, argv);
  bench::print_header("Figs. 8-9", "CMA snapshots, 100 mobile nodes");

  const auto env = bench::canonical_field();
  const auto recorded = env.record(trace::minutes(10, 0),
                                   trace::minutes(10, 45), 5.0, 101, 101);
  const core::DeltaMetric metric = bench::canonical_metric();

  core::CmaConfig cfg;  // Rc = 10, Rs = 5, v = 1 m/min, beta = 2.
  cfg.rc = bench::kRc * 1.0001;  // Keep the pitch-10 grid connected.
  cfg.lcm = core::LcmMode::kPaper;  // The paper's Fig. 4 rule.
  core::CmaSimulation sim(recorded, bench::kRegion,
                          core::GridPlanner::make_grid(bench::kRegion, 100)
                              .positions,
                          cfg, trace::minutes(10, 0));

  show_snapshot("Fig. 8", sim, recorded, metric);
  const std::string dir = bench::output_dir();
  viz::write_positions_csv_file(dir + "/fig8_positions_1000.csv",
                                sim.positions());

  sim.run(25);  // 10:00 -> 10:25.
  show_snapshot("Fig. 9", sim, recorded, metric);
  viz::write_positions_csv_file(dir + "/fig9_positions_1025.csv",
                                sim.positions());

  std::printf("paper expectation: by 10:25 the distribution has settled "
              "near the curvature-weighted balance and the rebuilt surface "
              "approaches the reference\n");
  std::printf("exported: %s/fig{8,9}_positions_*.csv\n", dir.c_str());
  return 0;
}
