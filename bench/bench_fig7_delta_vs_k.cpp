// Fig. 7 — delta versus node budget k: FRA against random deployment.
//
// The paper sweeps k from 1 to 200 and reports (a) FRA "obviously better
// than random distribution when k < 125" and (b) both curves converging
// to a nearly constant delta once the nodes effectively cover the region
// (k >= ~125).  This harness regenerates the two series (random averaged
// over seeds), prints the table + sparklines, and checks both claims.
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "core/coverage.hpp"
#include "core/fra.hpp"
#include "viz/series.hpp"

int main(int argc, char** argv) {
  using namespace cps;
  bench::ObsSession obs_session("fig7_delta_vs_k");
  bench::configure_threads(argc, argv);
  bench::print_header("Fig. 7", "delta vs k (1..200), FRA vs random");

  const auto env = bench::canonical_field();
  const field::FieldSlice frame(env, bench::reference_time());
  const core::DeltaMetric metric = bench::canonical_metric();
  const auto corners = core::CornerPolicy::kFieldValue;  // OSD knows f.

  const std::vector<std::size_t> budgets{1,  5,   10,  20,  30,  40, 50,
                                         75, 100, 125, 150, 175, 200};
  constexpr int kRandomSeeds = 5;

  viz::Series k_col{"k", {}};
  viz::Series fra_col{"FRA", {}};
  viz::Series rnd_col{"random(avg5)", {}};
  viz::Series relay_col{"relays", {}};
  viz::Series cover_col{"coverage", {}};

  core::FraConfig cfg;  // Paper lattice: 100 x 100 candidates.
  // The FRA series reads the planner's cavity-local δ tracker instead of
  // re-sweeping the lattice per budget: plan.final_delta is bit-identical
  // to delta_of_deployment(frame, positions, kFieldValue) by the tracker's
  // oracle protocol (FraConfig::track_delta), so the table is unchanged.
  cfg.track_delta = &metric;
  core::FraPlanner fra(cfg);
  for (const std::size_t k : budgets) {
    const core::FraResult plan = fra.plan_detailed(
        frame, core::PlanRequest{bench::kRegion, k, bench::kRc});
    const double d_fra = plan.final_delta;

    double d_rnd = 0.0;
    for (int seed = 1; seed <= kRandomSeeds; ++seed) {
      core::RandomPlanner random(static_cast<std::uint64_t>(seed));
      d_rnd += metric.delta_of_deployment(
          frame,
          random.plan(frame, core::PlanRequest{bench::kRegion, k, bench::kRc})
              .positions,
          corners);
    }
    d_rnd /= kRandomSeeds;

    k_col.values.push_back(static_cast<double>(k));
    fra_col.values.push_back(d_fra);
    rnd_col.values.push_back(d_rnd);
    relay_col.values.push_back(static_cast<double>(plan.relay_count));
    cover_col.values.push_back(core::coverage_fraction(
        plan.deployment.positions, bench::kRs, bench::kRegion, 60));
  }

  const std::vector<viz::Series> table{k_col, fra_col, rnd_col, relay_col,
                                       cover_col};
  std::printf("%s\n", viz::format_table(table, 1).c_str());
  std::printf("FRA:    %s\n", viz::sparkline(fra_col.values).c_str());
  std::printf("random: %s\n", viz::sparkline(rnd_col.values).c_str());

  // Claim checks (shape, not absolute numbers).
  int wins = 0;
  int comparisons = 0;
  for (std::size_t i = 0; i < k_col.values.size(); ++i) {
    if (k_col.values[i] >= 20 && k_col.values[i] < 125) {
      ++comparisons;
      if (fra_col.values[i] < rnd_col.values[i]) ++wins;
    }
  }
  const double saturation =
      fra_col.values[fra_col.values.size() - 1] /
      fra_col.values[fra_col.values.size() - 3];  // k=200 vs k=150.
  std::printf("\npaper expectation: FRA < random for moderate k; both "
              "flatten once coverage saturates (~k=125)\n");
  std::printf("coverage column: fraction of the region within Rs of an FRA "
              "node — the saturation mechanism made measurable\n");
  std::printf("measured: FRA wins %d/%d comparisons in k=[20,125); "
              "delta(k=200)/delta(k=150) = %.2f (flattening)\n",
              wins, comparisons, saturation);
  return 0;
}
