// Ablation A — FRA's connectivity foresight on vs off.
//
// Quantifies the cost of the connectivity constraint (Definition 3.1):
// pure greedy refinement gives lower delta but disconnected topologies;
// the foresight step spends part of the budget on relays to buy a
// connected network.  This is the trade the paper's Fig. 5 alludes to
// ("the others are used to organize a connected network").
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "core/fra.hpp"
#include "graph/geometric_graph.hpp"
#include "viz/series.hpp"

int main(int argc, char** argv) {
  using namespace cps;
  bench::ObsSession obs_session("ablation_foresight");
  bench::configure_threads(argc, argv);
  bench::print_header("Ablation A", "FRA foresight on/off vs delta");

  const auto env = bench::canonical_field();
  const field::FieldSlice frame(env, bench::reference_time());
  const core::DeltaMetric metric = bench::canonical_metric();
  const auto corners = core::CornerPolicy::kFieldValue;

  viz::Series k_col{"k", {}};
  viz::Series on_col{"delta(on)", {}};
  viz::Series off_col{"delta(off)", {}};
  viz::Series relay_col{"relays(on)", {}};
  viz::Series comps_col{"components(off)", {}};

  for (const std::size_t k : {10u, 20u, 30u, 50u, 75u, 100u, 150u}) {
    core::FraConfig on_cfg;
    core::FraPlanner with(on_cfg);
    core::FraConfig off_cfg;
    off_cfg.foresight = false;
    core::FraPlanner without(off_cfg);

    const auto request = core::PlanRequest{bench::kRegion, k, bench::kRc};
    const auto plan_on = with.plan_detailed(frame, request);
    const auto plan_off = without.plan_detailed(frame, request);

    k_col.values.push_back(static_cast<double>(k));
    on_col.values.push_back(metric.delta_of_deployment(
        frame, plan_on.deployment.positions, corners));
    off_col.values.push_back(metric.delta_of_deployment(
        frame, plan_off.deployment.positions, corners));
    relay_col.values.push_back(static_cast<double>(plan_on.relay_count));
    comps_col.values.push_back(static_cast<double>(
        graph::GeometricGraph(plan_off.deployment.positions, bench::kRc)
            .component_count()));
  }

  const std::vector<viz::Series> table{k_col, on_col, off_col, relay_col,
                                       comps_col};
  std::printf("%s\n", viz::format_table(table, 1).c_str());
  std::printf("reading: foresight pays a delta premium (relays sample "
              "along lines) and buys a single-component network; greedy "
              "alone fragments into several components.\n");
  return 0;
}
