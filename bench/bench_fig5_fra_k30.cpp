// Fig. 5 — surface rebuilt by FRA with k = 30 stationary nodes.
//
// The paper's reading of this figure: with only 30 nodes "a few nodes
// serve the abstraction task, [while] the others are used to organize a
// connected network due to the connectivity constraint", so the rebuilt
// surface captures the general shape but loses detail fluctuations.
#include <cstdio>

#include "common.hpp"
#include "core/fra.hpp"
#include "core/reconstruction.hpp"
#include "field/analytic_fields.hpp"
#include "graph/geometric_graph.hpp"
#include "viz/exporters.hpp"

int main(int argc, char** argv) {
  using namespace cps;
  bench::ObsSession obs_session("fig5_fra_k30");
  bench::configure_threads(argc, argv);
  bench::print_header("Fig. 5", "FRA rebuilt surface, k = 30, Rc = 10");

  const auto env = bench::canonical_field();
  const field::FieldSlice frame(env, bench::reference_time());
  const core::DeltaMetric metric = bench::canonical_metric();

  core::FraConfig cfg;  // error_grid = 100, the paper's lattice.
  core::FraPlanner planner(cfg);
  const core::FraResult result = [&] {
    CPS_TIMER("bench.fig5.plan");
    return planner.plan_detailed(
        frame, core::PlanRequest{bench::kRegion, 30, bench::kRc});
  }();

  const graph::GeometricGraph topology(result.deployment.positions,
                                       bench::kRc);
  std::printf("(a) topology of the 30-node CPS network "
              "(%zu refinement nodes + %zu relays, connected=%s):\n%s\n",
              result.deployment.size() - result.relay_count,
              result.relay_count,
              topology.is_connected() ? "yes" : "NO",
              bench::render(frame, result.deployment.positions).c_str());

  const auto dt = [&] {
    CPS_TIMER("bench.fig5.reconstruct");
    return core::reconstruct_surface(
        core::take_samples(frame, result.deployment.positions),
        bench::kRegion, core::CornerPolicy::kFieldValue, &frame);
  }();
  const field::AnalyticField rebuilt(
      [&dt](double x, double y) { return dt.interpolate({x, y}); });
  std::printf("(b) rebuilt virtual surface:\n%s\n",
              bench::render(rebuilt).c_str());

  const double delta = [&] {
    CPS_TIMER("bench.fig5.delta");
    return metric.delta(frame, dt);
  }();
  std::printf("delta = %.1f (mean abs error %.3f KLux per m^2)\n", delta,
              metric.mean_abs_error(delta));
  std::printf("paper expectation: general shape rebuilt, detail "
              "fluctuations lost (compare Fig. 6's k = 100)\n");

  const std::string dir = bench::output_dir();
  viz::write_positions_csv_file(dir + "/fig5_positions.csv",
                                result.deployment.positions);
  std::printf("exported: %s/fig5_positions.csv\n", dir.c_str());
  return 0;
}
