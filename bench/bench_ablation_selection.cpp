// Ablation C — FRA's refinement selection measure.
//
// Section 4.2 justifies local error by citing Garland & Heckbert's
// comparison of local error, curvature, product, and other measures.
// This sweep reruns that comparison inside FRA on the GreenOrbs-like
// frame: which measure should the greedy refinement maximise?
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "core/fra.hpp"
#include "viz/series.hpp"

int main(int argc, char** argv) {
  using namespace cps;
  bench::ObsSession obs_session("ablation_selection");
  bench::configure_threads(argc, argv);
  bench::print_header("Ablation C", "FRA selection measure comparison");

  const auto env = bench::canonical_field();
  const field::FieldSlice frame(env, bench::reference_time());
  const core::DeltaMetric metric = bench::canonical_metric();
  const auto corners = core::CornerPolicy::kFieldValue;

  struct Measure {
    const char* name;
    core::SelectionMeasure value;
  };
  const std::vector<Measure> measures{
      {"local-error", core::SelectionMeasure::kLocalError},
      {"curvature", core::SelectionMeasure::kCurvature},
      {"product", core::SelectionMeasure::kProduct},
      {"random", core::SelectionMeasure::kRandom},
  };

  viz::Series k_col{"k", {}};
  for (const std::size_t k : {20u, 40u, 75u, 125u}) {
    k_col.values.push_back(static_cast<double>(k));
  }
  std::vector<viz::Series> columns{k_col};

  for (const auto& measure : measures) {
    viz::Series col{measure.name, {}};
    for (const double k : k_col.values) {
      core::FraConfig cfg;
      // The curvature grid costs a quadric fit per lattice point; halve
      // the lattice for the expensive measures to keep the bench brisk.
      cfg.error_grid = 50;
      cfg.measure = measure.value;
      cfg.curvature_radius = bench::kRs;
      core::FraPlanner planner(cfg);
      const auto plan = planner.plan(
          frame, core::PlanRequest{bench::kRegion,
                                   static_cast<std::size_t>(k), bench::kRc});
      col.values.push_back(
          metric.delta_of_deployment(frame, plan.positions, corners));
    }
    columns.push_back(std::move(col));
  }

  std::printf("%s\n", viz::format_table(columns, 1).c_str());
  std::printf("reading: the paper (after Garland-Heckbert) picks local "
              "error — expect it at or near the lowest delta per row, "
              "with random as the sanity floor.\n");
  return 0;
}
