// Fig. 1 — the referential environment surface.
//
// The paper visualises the GreenOrbs light condition over a 100 x 100 m^2
// window at 10:00 AM, Nov 24 2009 as a bird-view heat-map and a 3-D
// virtual surface.  This harness generates the synthetic stand-in field
// (substitution table, DESIGN.md), prints its bird-view, summarises the
// surface statistics, and exports the frame as CSV + PGM for re-plotting.
#include <cstdio>

#include "common.hpp"
#include "field/grid_field.hpp"
#include "trace/trace_io.hpp"
#include "viz/exporters.hpp"
#include "viz/series.hpp"

int main(int argc, char** argv) {
  using namespace cps;
  bench::ObsSession obs_session("fig1_reference_surface");
  bench::configure_threads(argc, argv);
  bench::print_header("Fig. 1", "referential light surface at 10:00");

  const auto env = bench::canonical_field();
  const field::FieldSlice frame(env, bench::reference_time());
  const auto grid = env.snapshot(bench::reference_time(), 101, 101);

  std::printf("Bird-view (dark = dim forest floor, bright = canopy gap):\n%s\n",
              bench::render(frame).c_str());
  std::printf("surface stats: min=%.3f KLux max=%.3f KLux\n",
              grid.min_value(), grid.max_value());

  // Cross-sections give the "3-D surface" impression in text form.
  for (const double y : {25.0, 50.0, 75.0}) {
    std::vector<double> row;
    for (int i = 0; i <= 100; i += 2) {
      row.push_back(frame.value(static_cast<double>(i), y));
    }
    std::printf("z(x, y=%2.0f): %s\n", y, viz::sparkline(row).c_str());
  }

  const std::string dir = bench::output_dir();
  viz::write_csv_matrix_file(dir + "/fig1_surface.csv", grid);
  viz::write_pgm_file(dir + "/fig1_surface.pgm", grid);
  trace::write_grid_file(dir + "/fig1_frame.cpsgrid", grid);
  std::printf("\nexported: %s/fig1_surface.{csv,pgm}, fig1_frame.cpsgrid\n",
              dir.c_str());
  return 0;
}
