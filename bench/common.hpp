// Shared workload definitions for the figure-reproduction benches.
//
// Every bench harness reproduces one figure of the paper's evaluation
// (Section 6) against the same canonical setting:
//   * region A = 100 x 100 m^2,
//   * synthetic GreenOrbs-like light trace (see cps::trace and the
//     substitution table in DESIGN.md), frozen/replayed around 10:00,
//   * Rc = 10 m, Rs = 5 m, v = 1 m/min, beta = 2 (Section 6.1).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "core/delta.hpp"
#include "core/planner.hpp"
#include "field/field.hpp"
#include "numerics/quadrature.hpp"
#include "obs/obs.hpp"
#include "parallel/thread_pool.hpp"
#include "trace/greenorbs.hpp"
#include "viz/ascii.hpp"

namespace cps::bench {

inline const num::Rect kRegion{0.0, 0.0, 100.0, 100.0};
inline constexpr double kRc = 10.0;
inline constexpr double kRs = 5.0;
inline constexpr std::size_t kDeltaResolution = 100;  // sqrt(A) lattice.

/// The canonical synthetic trace (seeded with the paper's trace date).
inline trace::GreenOrbsConfig canonical_trace_config() {
  trace::GreenOrbsConfig cfg;  // Defaults documented in trace/greenorbs.hpp.
  return cfg;
}

inline trace::GreenOrbsField canonical_field() {
  return trace::GreenOrbsField(canonical_trace_config());
}

/// 10:00 AM — the instant of the paper's Fig. 1 reference surface.
inline double reference_time() { return trace::minutes(10, 0); }

inline core::DeltaMetric canonical_metric() {
  return core::DeltaMetric(kRegion, kDeltaResolution);
}

/// Output directory for CSV/PGM artefacts the figures can be re-plotted
/// from.  Created on demand; failures to create are reported, not fatal.
inline std::string output_dir() {
  const std::string dir = "bench_out";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) std::printf("note: cannot create %s: %s\n", dir.c_str(),
                      ec.message().c_str());
  return dir;
}

/// Arms the obs layer for one bench run and writes its artefacts on exit:
///
///  * `<output_dir>/<name>_metrics.json` — the full metrics registry
///    (per-phase wall-time histograms from the CPS_TIMER scopes, plus the
///    FRA/CMA/geometry/net counters), always written.  The footer carries
///    the trace-truncation tally ("trace": {"events", "dropped"}) so a
///    capped trace is visibly incomplete.
///  * `<output_dir>/<name>_timeline.jsonl` — the slot-scoped telemetry
///    timeline (one delta sample per phase boundary), written when any
///    samples were recorded.
///  * the file named by env CPS_TRACE_OUT (Chrome trace JSON; open in
///    chrome://tracing or https://ui.perfetto.dev), only when the variable
///    is set.  CPS_TRACE_JSONL names an optional JSONL sidecar stream.
///
/// Construct it first thing in main() so every instrumented phase lands in
/// the sidecar.  Under CPS_OBS=OFF builds the sidecar still appears but
/// carries only whatever non-macro instrumentation ran (typically empty
/// sections) — the bench itself is then measurement-free by construction.
class ObsSession {
 public:
  explicit ObsSession(std::string name) : name_(std::move(name)) {
    obs::set_enabled(true);
    obs::registry().reset();
    obs::trace().clear();
#if defined(CPS_OBS_ENABLED)
    // Arm only in instrumented builds: an armed timeline switches the
    // delta reductions onto the chunk-pinned path, and obs-off benches
    // must keep the seed-identical serial shortcut.
    obs::timeline().clear();
    obs::timeline().set_armed(true);
#endif
  }

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  ~ObsSession() { finish(); }

  /// Idempotent; called by the destructor.
  void finish() {
    if (finished_) return;
    finished_ = true;
    obs::timeline().set_armed(false);
    const std::uint64_t trace_dropped = obs::trace().dropped();
    if (trace_dropped > 0) {
      std::fprintf(stderr,
                   "warning: trace truncated — %llu events dropped past the "
                   "capacity cap; the trace sidecar is incomplete\n",
                   static_cast<unsigned long long>(trace_dropped));
    }
    const std::string metrics_path =
        output_dir() + "/" + name_ + "_metrics.json";
    std::ofstream metrics(metrics_path);
    if (metrics) {
      const std::string footer =
          "\"trace\": {\"events\": " +
          std::to_string(obs::trace().snapshot().size()) +
          ", \"dropped\": " + std::to_string(trace_dropped) + "}";
      obs::registry().write_json(metrics, footer);
      std::printf("metrics sidecar: %s\n", metrics_path.c_str());
    } else {
      std::printf("note: cannot write %s\n", metrics_path.c_str());
    }
    if (obs::timeline().sample_count() > 0) {
      const std::string timeline_path =
          output_dir() + "/" + name_ + "_timeline.jsonl";
      std::ofstream timeline(timeline_path);
      if (timeline) {
        obs::timeline().write_jsonl(timeline);
        std::printf("timeline sidecar: %s (%zu samples)\n",
                    timeline_path.c_str(), obs::timeline().sample_count());
      } else {
        std::printf("note: cannot write %s\n", timeline_path.c_str());
      }
    }
    write_trace_if_requested("CPS_TRACE_OUT", /*jsonl=*/false);
    write_trace_if_requested("CPS_TRACE_JSONL", /*jsonl=*/true);
  }

 private:
  void write_trace_if_requested(const char* env, bool jsonl) {
    const char* path = std::getenv(env);
    if (path == nullptr || *path == '\0') return;
    std::ofstream out(path);
    if (!out) {
      std::printf("note: cannot write %s\n", path);
      return;
    }
    if (jsonl) {
      obs::trace().write_jsonl(out);
    } else {
      obs::trace().write_chrome_json(out);
    }
    std::printf("trace (%s): %s\n", jsonl ? "jsonl" : "chrome://tracing",
                path);
  }

  std::string name_;
  bool finished_ = false;
};

/// Parses `--threads N` / `--threads=N` and arms the process-wide worker
/// pool (0 or absent = auto: env CPS_THREADS, else hardware concurrency).
/// Call it right after constructing ObsSession — the session's registry
/// reset would otherwise drop the pool-size gauge recorded here, and the
/// sidecar should always say how many workers produced its numbers.
inline void configure_threads(int argc, char** argv) {
  long threads = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      threads = std::atol(argv[++i]);
    } else if (arg.rfind("--threads=", 0) == 0) {
      threads = std::atol(arg.c_str() + 10);
    }
  }
  par::set_thread_count(threads < 0 ? 0
                                    : static_cast<std::size_t>(threads));
  // The pool size describes the host, not the workload: keep it out of
  // the timeline so --threads 1 and --threads 4 stay byte-identical.
  obs::registry().exclude_from_timeline("parallel.pool.threads");
  CPS_GAUGE("parallel.pool.threads", par::thread_count());
  std::printf("threads: %zu\n", par::thread_count());
}

inline void print_header(const char* figure, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure, description);
  std::printf("==============================================================\n");
}

/// Renders a field with node overlay at the standard bench size.
inline std::string render(const field::Field& f,
                          std::span<const geo::Vec2> nodes = {}) {
  viz::AsciiOptions opt;
  opt.width = 60;
  opt.height = 24;
  return viz::render_field(f, kRegion, nodes, opt);
}

}  // namespace cps::bench
