// Shared workload definitions for the figure-reproduction benches.
//
// Every bench harness reproduces one figure of the paper's evaluation
// (Section 6) against the same canonical setting:
//   * region A = 100 x 100 m^2,
//   * synthetic GreenOrbs-like light trace (see cps::trace and the
//     substitution table in DESIGN.md), frozen/replayed around 10:00,
//   * Rc = 10 m, Rs = 5 m, v = 1 m/min, beta = 2 (Section 6.1).
#pragma once

#include <cstdio>
#include <filesystem>
#include <string>

#include "core/delta.hpp"
#include "core/planner.hpp"
#include "field/field.hpp"
#include "numerics/quadrature.hpp"
#include "trace/greenorbs.hpp"
#include "viz/ascii.hpp"

namespace cps::bench {

inline const num::Rect kRegion{0.0, 0.0, 100.0, 100.0};
inline constexpr double kRc = 10.0;
inline constexpr double kRs = 5.0;
inline constexpr std::size_t kDeltaResolution = 100;  // sqrt(A) lattice.

/// The canonical synthetic trace (seeded with the paper's trace date).
inline trace::GreenOrbsConfig canonical_trace_config() {
  trace::GreenOrbsConfig cfg;  // Defaults documented in trace/greenorbs.hpp.
  return cfg;
}

inline trace::GreenOrbsField canonical_field() {
  return trace::GreenOrbsField(canonical_trace_config());
}

/// 10:00 AM — the instant of the paper's Fig. 1 reference surface.
inline double reference_time() { return trace::minutes(10, 0); }

inline core::DeltaMetric canonical_metric() {
  return core::DeltaMetric(kRegion, kDeltaResolution);
}

/// Output directory for CSV/PGM artefacts the figures can be re-plotted
/// from.  Created on demand; failures to create are reported, not fatal.
inline std::string output_dir() {
  const std::string dir = "bench_out";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) std::printf("note: cannot create %s: %s\n", dir.c_str(),
                      ec.message().c_str());
  return dir;
}

inline void print_header(const char* figure, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure, description);
  std::printf("==============================================================\n");
}

/// Renders a field with node overlay at the standard bench size.
inline std::string render(const field::Field& f,
                          std::span<const geo::Vec2> nodes = {}) {
  viz::AsciiOptions opt;
  opt.width = 60;
  opt.height = 24;
  return viz::render_field(f, kRegion, nodes, opt);
}

}  // namespace cps::bench
