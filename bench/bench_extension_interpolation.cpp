// Extension E — interpolator comparison (Delaunay vs IDW vs nearest).
//
// Section 3.1 adopts Delaunay triangulation because it is "widely used in
// computer vision"; this bench backs that choice with numbers, across
// both a structure-aware deployment (FRA) and a blind one (random).
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "core/fra.hpp"
#include "core/interpolation.hpp"
#include "viz/series.hpp"

int main(int argc, char** argv) {
  using namespace cps;
  bench::ObsSession obs_session("extension_interpolation");
  bench::configure_threads(argc, argv);
  bench::print_header("Extension E",
                      "interpolators: Delaunay vs IDW vs nearest");

  const auto env = bench::canonical_field();
  const field::FieldSlice frame(env, bench::reference_time());
  const core::DeltaMetric metric = bench::canonical_metric();

  core::FraConfig cfg;
  cfg.error_grid = 50;
  core::FraPlanner fra(cfg);
  core::RandomPlanner random(17);

  struct Row {
    const char* planner;
    std::size_t k;
    std::vector<core::Sample> samples;
  };
  std::vector<Row> rows;
  for (const std::size_t k : {30u, 100u}) {
    const auto request = core::PlanRequest{bench::kRegion, k, bench::kRc};
    rows.push_back({"FRA", k,
                    core::take_samples(frame,
                                       fra.plan(frame, request).positions)});
    rows.push_back({"random", k,
                    core::take_samples(
                        frame, random.plan(frame, request).positions)});
  }

  std::printf("planner   k    Delaunay      IDW(p=2)   nearest\n");
  for (const auto& row : rows) {
    const auto dt = core::make_delaunay_surface(
        row.samples, bench::kRegion, core::CornerPolicy::kFieldValue,
        &frame);
    const core::IdwField idw(row.samples);
    const core::NearestField nearest(row.samples);
    std::printf("%-8s %3zu  %9.1f  %9.1f  %9.1f\n", row.planner, row.k,
                metric.delta_between(frame, *dt),
                metric.delta_between(frame, idw),
                metric.delta_between(frame, nearest));
  }
  std::printf("\nreading: piecewise-linear Delaunay should dominate both "
              "baselines at every budget, most clearly under the "
              "structure-aware FRA samples — the paper's interpolator "
              "choice is the right one.\n");
  return 0;
}
