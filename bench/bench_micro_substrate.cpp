// Micro-benchmarks of the substrate hot paths (google-benchmark).
//
// These are throughput sanity checks, not figure reproductions: Delaunay
// insertion/location/interpolation (the inner loop of FRA and the delta
// metric), the curvature pipeline (the inner loop of CMA), relay planning
// (FRA's foresight), and trace evaluation.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>

#include "parallel/thread_pool.hpp"

#include "core/curvature.hpp"
#include "core/delta.hpp"
#include "core/fra.hpp"
#include "core/planner.hpp"
#include "field/analytic_fields.hpp"
#include "geometry/delaunay.hpp"
#include "graph/relay.hpp"
#include "numerics/rng.hpp"
#include "trace/greenorbs.hpp"

namespace {

using namespace cps;

const num::Rect kRegion{0.0, 0.0, 100.0, 100.0};

void BM_DelaunayInsert(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  num::Rng rng(42);
  std::vector<geo::Vec2> points;
  points.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    points.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
  }
  for (auto _ : state) {
    geo::Delaunay dt(kRegion);
    for (const auto& p : points) dt.insert(p, 0.0);
    benchmark::DoNotOptimize(dt.triangle_count());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DelaunayInsert)->Arg(50)->Arg(200)->Arg(1000);

void BM_DelaunayLocate(benchmark::State& state) {
  num::Rng rng(7);
  geo::Delaunay dt(kRegion);
  for (int i = 0; i < 500; ++i) {
    dt.insert({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)}, 0.0);
  }
  double x = 1.0;
  for (auto _ : state) {
    x = x >= 99.0 ? 1.0 : x + 0.37;
    benchmark::DoNotOptimize(dt.locate({x, 100.0 - x}));
  }
}
BENCHMARK(BM_DelaunayLocate);

void BM_DelaunayInterpolate(benchmark::State& state) {
  num::Rng rng(7);
  geo::Delaunay dt(kRegion);
  for (int i = 0; i < 500; ++i) {
    dt.insert({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)},
              rng.uniform(-1.0, 1.0));
  }
  double x = 1.0;
  for (auto _ : state) {
    x = x >= 99.0 ? 1.0 : x + 0.37;
    benchmark::DoNotOptimize(dt.interpolate({x, x}));
  }
}
BENCHMARK(BM_DelaunayInterpolate);

void BM_QuadricFit(benchmark::State& state) {
  num::Rng rng(3);
  std::vector<num::QuadricSample> samples;
  for (int i = -5; i <= 5; ++i) {
    for (int j = -5; j <= 5; ++j) {
      if (i * i + j * j > 25) continue;
      samples.push_back({static_cast<double>(i), static_cast<double>(j),
                         rng.uniform(-1.0, 1.0)});
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(num::fit_quadric(samples));
  }
}
BENCHMARK(BM_QuadricFit);

void BM_SensingPatch(benchmark::State& state) {
  const field::PeaksField peaks(kRegion);
  double x = 10.0;
  for (auto _ : state) {
    x = x >= 90.0 ? 10.0 : x + 0.73;
    const core::SensingPatch patch(peaks, {x, 105.0 - x}, 5.0);
    benchmark::DoNotOptimize(patch.gaussian());
  }
}
BENCHMARK(BM_SensingPatch);

void BM_DeltaMetric(benchmark::State& state) {
  const field::PeaksField peaks(kRegion);
  const auto grid = core::GridPlanner::make_grid(kRegion, 64);
  const auto samples = core::take_samples(peaks, grid.positions);
  const core::DeltaMetric metric(kRegion,
                                 static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(metric.delta_from_samples(peaks, samples));
  }
}
BENCHMARK(BM_DeltaMetric)->Arg(50)->Arg(100);

void BM_RelayPlanning(benchmark::State& state) {
  num::Rng rng(13);
  std::vector<geo::Vec2> nodes;
  for (int i = 0; i < 60; ++i) {
    nodes.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::plan_relays(nodes, 10.0));
  }
}
BENCHMARK(BM_RelayPlanning);

void BM_GreenOrbsValue(benchmark::State& state) {
  const trace::GreenOrbsField env{trace::GreenOrbsConfig{}};
  double x = 0.0;
  for (auto _ : state) {
    x = x >= 100.0 ? 0.0 : x + 0.11;
    benchmark::DoNotOptimize(env.value({x, 100.0 - x}, 600.0 + x));
  }
}
BENCHMARK(BM_GreenOrbsValue);

void BM_FraPlanK30(benchmark::State& state) {
  const field::PeaksField peaks(kRegion);
  core::FraConfig cfg;
  cfg.error_grid = 50;
  for (auto _ : state) {
    core::FraPlanner planner(cfg);
    benchmark::DoNotOptimize(
        planner.plan(peaks, core::PlanRequest{kRegion, 30, 10.0}));
  }
}
BENCHMARK(BM_FraPlanK30);

}  // namespace

// Custom main (instead of benchmark_main): strip our --threads flag from
// argv before google-benchmark sees it, arm the pool, then run.
int main(int argc, char** argv) {
  long threads = 0;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      threads = std::atol(argv[++i]);
    } else if (arg.rfind("--threads=", 0) == 0) {
      threads = std::atol(arg.c_str() + 10);
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  cps::par::set_thread_count(
      threads < 0 ? 0 : static_cast<std::size_t>(threads));
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
