// Ablation B — the beta weighting of Eqn. 18 (attraction vs repulsion).
//
// The paper fixes beta = 2 empirically.  This sweep shows why the knob
// matters: small beta lets attraction collapse the swarm onto curvature
// features (delta suffers from coverage holes), large beta approaches a
// pure blanket distribution (delta approaches the static grid's).
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "core/cma.hpp"
#include "viz/series.hpp"

int main(int argc, char** argv) {
  using namespace cps;
  bench::ObsSession obs_session("ablation_beta");
  bench::configure_threads(argc, argv);
  bench::print_header("Ablation B", "CMA beta sweep (Eqn. 18)");

  const auto env = bench::canonical_field();
  const auto recorded = env.record(trace::minutes(10, 0),
                                   trace::minutes(10, 30), 5.0, 101, 101);
  const core::DeltaMetric metric = bench::canonical_metric();
  const auto grid = core::GridPlanner::make_grid(bench::kRegion, 100);

  viz::Series beta_col{"beta", {}};
  viz::Series delta_col{"delta@10:30", {}};
  viz::Series frac_col{"largest-comp", {}};
  viz::Series move_col{"last-move", {}};

  for (const double beta : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    core::CmaConfig cfg;
    cfg.rc = bench::kRc * 1.0001;
    cfg.beta = beta;
    cfg.lcm = core::LcmMode::kPaper;
    core::CmaSimulation sim(recorded, bench::kRegion, grid.positions, cfg,
                            trace::minutes(10, 0));
    sim.run(30);
    beta_col.values.push_back(beta);
    delta_col.values.push_back(sim.current_delta(metric));
    frac_col.values.push_back(sim.largest_component_fraction());
    move_col.values.push_back(sim.last_max_displacement());
  }

  const field::FieldSlice frame_1030(recorded, trace::minutes(10, 30));
  std::printf("stationary-grid reference delta @10:30 = %.1f\n\n",
              metric.delta_of_deployment(frame_1030, grid.positions));
  const std::vector<viz::Series> table{beta_col, delta_col, frac_col,
                                       move_col};
  std::printf("%s\n", viz::format_table(table, 2).c_str());
  std::printf("reading: beta trades abstraction quality against swarm "
              "cohesion; the paper's beta = 2 sits in the balanced "
              "middle.\n");
  return 0;
}
