// Extension H — failure injection: what survives when nodes die?
//
// Forest deployments lose nodes (battery, weather, wildlife).  This bench
// kills a random fraction of each deployment and measures what remains:
// the abstraction quality of the surviving samples and the connectivity
// of the surviving radio graph.  FRA's relay chains are the suspected
// weak point (every chain node is an articulation point — Extension G).
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "core/fra.hpp"
#include "graph/geometric_graph.hpp"
#include "numerics/rng.hpp"
#include "numerics/stats.hpp"

namespace {

/// Survivors of killing each node independently with probability p.
std::vector<cps::geo::Vec2> survivors(
    const std::vector<cps::geo::Vec2>& nodes, double death_probability,
    cps::num::Rng& rng) {
  std::vector<cps::geo::Vec2> alive;
  for (const auto& n : nodes) {
    if (!rng.bernoulli(death_probability)) alive.push_back(n);
  }
  return alive;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cps;
  bench::ObsSession obs_session("extension_resilience");
  bench::configure_threads(argc, argv);
  bench::print_header("Extension H", "node-failure resilience");

  const auto env = bench::canonical_field();
  const field::FieldSlice frame(env, bench::reference_time());
  const core::DeltaMetric metric = bench::canonical_metric();
  const auto corners = core::CornerPolicy::kFieldValue;
  constexpr std::size_t kBudget = 100;
  constexpr int kTrials = 10;

  core::FraConfig cfg;
  core::FraPlanner fra(cfg);
  const auto fra_nodes =
      fra.plan(frame, core::PlanRequest{bench::kRegion, kBudget, bench::kRc})
          .positions;
  const auto grid_nodes =
      core::GridPlanner::make_grid(bench::kRegion, kBudget).positions;

  std::printf("deployment  death%%   delta(mean)   still-connected   "
              "largest-component\n");
  for (const double p : {0.0, 0.1, 0.2, 0.3}) {
    struct Entry {
      const char* name;
      const std::vector<geo::Vec2>* nodes;
    };
    for (const Entry& e : {Entry{"FRA", &fra_nodes},
                           Entry{"grid", &grid_nodes}}) {
      num::Rng rng(20100607 + static_cast<std::uint64_t>(p * 100));
      num::RunningStats delta_stats;
      int connected_trials = 0;
      num::RunningStats component_stats;
      for (int trial = 0; trial < kTrials; ++trial) {
        const auto alive = survivors(*e.nodes, p, rng);
        if (alive.empty()) continue;
        delta_stats.add(
            metric.delta_of_deployment(frame, alive, corners));
        const graph::GeometricGraph g(alive, bench::kRc);
        connected_trials += g.is_connected() ? 1 : 0;
        std::size_t largest = 0;
        for (const auto& comp : g.components()) {
          largest = std::max(largest, comp.size());
        }
        component_stats.add(static_cast<double>(largest) /
                            static_cast<double>(alive.size()));
      }
      std::printf("%-10s  %4.0f%%  %12.1f   %8d/%d          %.2f\n",
                  e.name, 100.0 * p, delta_stats.mean(), connected_trials,
                  kTrials, component_stats.mean());
    }
  }
  std::printf("\nreading: FRA degrades gracefully on delta (its surviving "
              "samples still sit at informative positions) but its relay "
              "chains shatter the network at modest death rates, while the "
              "redundant grid holds together — minimal connectivity is "
              "brittle connectivity.\n");
  return 0;
}
