// Extension H — failure injection: what survives when nodes die?
//
// Forest deployments lose nodes (battery, weather, wildlife).  Two sweeps:
//
//  Part 1 (static): kill a random fraction of each deployment *before*
//  any run and measure what remains — the abstraction quality of the
//  surviving samples and the connectivity of the surviving radio graph.
//  FRA's relay chains are the suspected weak point (every chain node is
//  an articulation point — Extension G).
//
//  Part 2 (mid-run churn): kill nodes *during* CMA via a deterministic
//  FaultSchedule, under three channel models (the paper's i.i.d. disk,
//  distance-dependent loss, Gilbert–Elliott bursty fades).  Per death
//  event the sweep reports survivor delta, survivor component count, and
//  — via RecoveryMonitor — how many slots the convergecast tree needs to
//  reach every survivor again.  Everything is seeded: same seed, same
//  churn, same numbers.
#include <cstdio>
#include <memory>
#include <vector>

#include "common.hpp"
#include "core/cma.hpp"
#include "core/coverage.hpp"
#include "core/fra.hpp"
#include "graph/geometric_graph.hpp"
#include "net/fault.hpp"
#include "net/link_model.hpp"
#include "net/routing.hpp"
#include "numerics/rng.hpp"
#include "numerics/stats.hpp"

namespace {

/// Survivors of killing each node independently with probability p.
std::vector<cps::geo::Vec2> survivors(
    const std::vector<cps::geo::Vec2>& nodes, double death_probability,
    cps::num::Rng& rng) {
  std::vector<cps::geo::Vec2> alive;
  for (const auto& n : nodes) {
    if (!rng.bernoulli(death_probability)) alive.push_back(n);
  }
  return alive;
}

struct ChannelCase {
  const char* name;
  std::unique_ptr<cps::net::LinkModel> (*make)();
};

std::unique_ptr<cps::net::LinkModel> make_disk() {
  // The paper's channel with a mild i.i.d. loss floor.
  return std::make_unique<cps::net::DiskLink>(cps::bench::kRc, 0.05,
                                              20100607);
}

std::unique_ptr<cps::net::LinkModel> make_distance() {
  // Clean at contact, 40% loss at the edge of the disk.
  return std::make_unique<cps::net::DistanceLossLink>(cps::bench::kRc, 0.4,
                                                      2.0, 20100607);
}

std::unique_ptr<cps::net::LinkModel> make_bursty() {
  cps::net::GilbertElliottLink::Params p;
  p.p_good_to_bad = 0.05;
  p.p_bad_to_good = 0.2;
  p.loss_good = 0.02;
  p.loss_bad = 0.9;
  return std::make_unique<cps::net::GilbertElliottLink>(cps::bench::kRc, p,
                                                        20100607);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cps;
  bench::ObsSession obs_session("extension_resilience");
  bench::configure_threads(argc, argv);
  bench::print_header("Extension H", "node-failure resilience");

  const auto env = bench::canonical_field();
  const field::FieldSlice frame(env, bench::reference_time());
  const core::DeltaMetric metric = bench::canonical_metric();
  const auto corners = core::CornerPolicy::kFieldValue;
  constexpr std::size_t kBudget = 100;
  constexpr int kTrials = 10;

  core::FraConfig cfg;
  core::FraPlanner fra(cfg);
  const auto fra_nodes =
      fra.plan(frame, core::PlanRequest{bench::kRegion, kBudget, bench::kRc})
          .positions;
  const auto grid_nodes =
      core::GridPlanner::make_grid(bench::kRegion, kBudget).positions;

  std::printf("--- part 1: pre-run death sweep ---------------------------\n");
  std::printf("deployment  death%%   delta(mean)   still-connected   "
              "largest-component\n");
  for (const double p : {0.0, 0.1, 0.2, 0.3}) {
    struct Entry {
      const char* name;
      const std::vector<geo::Vec2>* nodes;
    };
    for (const Entry& e : {Entry{"FRA", &fra_nodes},
                           Entry{"grid", &grid_nodes}}) {
      num::Rng rng(20100607 + static_cast<std::uint64_t>(p * 100));
      num::RunningStats delta_stats;
      int connected_trials = 0;
      num::RunningStats component_stats;
      for (int trial = 0; trial < kTrials; ++trial) {
        const auto alive = survivors(*e.nodes, p, rng);
        if (alive.empty()) continue;
        delta_stats.add(
            metric.delta_of_deployment(frame, alive, corners));
        const graph::GeometricGraph g(alive, bench::kRc);
        connected_trials += g.is_connected() ? 1 : 0;
        std::size_t largest = 0;
        for (const auto& comp : g.components()) {
          largest = std::max(largest, comp.size());
        }
        component_stats.add(static_cast<double>(largest) /
                            static_cast<double>(alive.size()));
      }
      std::printf("%-10s  %4.0f%%  %12.1f   %8d/%d          %.2f\n",
                  e.name, 100.0 * p, delta_stats.mean(), connected_trials,
                  kTrials, component_stats.mean());
    }
  }

  std::printf("\n--- part 2: mid-run churn under lossy channels ------------\n");
  constexpr std::size_t kSlots = 60;
  constexpr std::size_t kChurnFirst = 10;
  constexpr std::size_t kChurnLast = 40;
  constexpr double kDeathProbability = 0.15;
  constexpr std::uint64_t kChurnSeed = 20100607;

  // The same churn replays against every channel: the channel changes
  // what the protocol *knows*, never who dies.
  const auto schedule = net::FaultSchedule::random_deaths(
      kBudget, kDeathProbability, kChurnFirst, kChurnLast, kChurnSeed);
  std::printf("schedule: %zu deaths in slots [%zu, %zu] (seed %llu)\n",
              schedule.death_count(), kChurnFirst, kChurnLast,
              static_cast<unsigned long long>(kChurnSeed));

  const ChannelCase channels[] = {
      {"disk-iid", &make_disk},
      {"distance", &make_distance},
      {"bursty-GE", &make_bursty},
  };
  for (const ChannelCase& channel : channels) {
    core::CmaConfig sim_cfg;
    sim_cfg.lcm = core::LcmMode::kPaper;
    sim_cfg.neighbor_ttl = 3;  // Coast through lost beacons for 2 slots.
    sim_cfg.seed = 20100607;
    core::CmaSimulation sim(env, bench::kRegion, fra_nodes, sim_cfg,
                            bench::reference_time());
    sim.set_link_model(channel.make());
    sim.set_fault_schedule(schedule);

    // Basestation fixed where the initial deployment's best sink sits;
    // the tree re-homes to the nearest survivor when that node dies.
    const graph::GeometricGraph initial(fra_nodes, bench::kRc);
    net::RecoveryMonitor monitor(
        initial.position(net::best_sink(initial)));

    std::printf("\nchannel %-9s  slot   node  alive  delta      components  "
                "tree-unreachable\n", channel.name);
    for (std::size_t slot = 0; slot < kSlots; ++slot) {
      sim.step();
      const graph::GeometricGraph alive_graph(sim.alive_positions(),
                                              bench::kRc);
      const auto& tree = monitor.observe(alive_graph, slot);
      for (const auto& event : schedule.events_at(slot)) {
        if (event.kind != net::FaultKind::kDeath) continue;
        std::printf("%-18s %5zu  %5zu  %5zu  %9.1f  %10zu  %16zu\n", "",
                    slot, event.node, sim.alive_count(),
                    sim.current_delta(metric), sim.component_count(),
                    tree.unreachable_count());
      }
    }
    const double coverage = core::coverage_fraction(
        sim.alive_positions(), bench::kRs, bench::kRegion);
    std::printf("  end: alive %zu/%zu, delta %.1f, coverage %.2f, "
                "components %zu, broadcasts %zu\n",
                sim.alive_count(), sim.node_count(),
                sim.current_delta(metric), coverage, sim.component_count(),
                sim.total_broadcasts());
    if (monitor.recoveries().empty() && !monitor.in_outage()) {
      std::printf("  tree: never partitioned\n");
    }
    for (const auto& r : monitor.recoveries()) {
      std::printf("  tree: outage at slot %zu recovered in %zu slots\n",
                  r.outage_slot, r.slots);
    }
    if (monitor.in_outage()) {
      std::printf("  tree: still partitioned at end of run\n");
    }
  }

  std::printf("\nreading: FRA degrades gracefully on delta (its surviving "
              "samples still sit at informative positions) but its relay "
              "chains shatter the network at modest death rates, while the "
              "redundant grid holds together — minimal connectivity is "
              "brittle connectivity.  Mid-run churn adds the time axis: "
              "bursty fades delay what the protocol knows, and the "
              "convergecast tree's recovery time measures how long the "
              "basestation flies blind after each death.\n");
  return 0;
}
