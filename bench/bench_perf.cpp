// Perf-trajectory harness: the one binary that measures the quadratic
// hot paths and their replacements side by side.
//
// Sweeps
//   * FRA planning at k in {100, 500, 2000} (quick: {50, 100, 200}) with
//     both selection engines (indexed decrease-key heap vs full lattice
//     scan), and
//   * CMA at N in {100, 400, 1000} nodes (quick: {60, 150}) for 200 slots
//     (quick: 50) under each link model (disk / distance-loss /
//     Gilbert-Elliott) with both bus delivery modes (grid-pruned vs
//     all-pairs),
//   * sharded CMA at N = 10000 (quick: 2000) on a constant-density region
//     (side = sqrt(N / 0.1), the paper's ~0.1 nodes/m^2) with the
//     tile-sharded slot schedule against the unsharded grid-pruned seed
//     path — bit-identical trajectories and drop taxonomy required, with
//     a paired-ratio `speedup_vs_unsharded` and a `shard_degraded` hard
//     gate (< 1.0 fails --check, the win-margin precedent),
//   * delta evaluation of one FRA deployment at resolution 256 with both
//     point-location engines (per-point remembering walk vs triangle
//     raster spans), and a fig10-style sweep of several deployments
//     against one frame with the reference-lattice cache on,
//   * a planner-service job mix — the same deterministic Score / Plan /
//     WhatIf jobs submitted to a PlannerService at pool sizes 1 and 4 AND
//     run as a serial loop of direct calls (fresh full re-sweep per
//     what-if) — bit-identical deltas and deployments required, with
//     throughput (jobs/s), per-job latency percentiles, a paired-ratio
//     `speedup_vs_serial`, and a `service_degraded` hard gate (< 1.0
//     fails --check),
// and emits BENCH_perf.json with wall times AND the algorithmic counters
// (transmit attempts per slot, candidates scanned per iteration, MST
// recomputes, heap pushes / stale pops, grid cells probed, point-location
// walks, batched rows, reference-cache hits), plus a `machine` block
// (hardware threads, CPS_THREADS, pool size, default engines) so the perf
// trajectory is comparable across runners.
//
// The counters — not the wall times — are the primary regression signal:
// they are deterministic, thread-count independent, and machine
// independent, so a checked-in BENCH_baseline.json can gate CI (--check
// fails on any counter more than 10% above baseline) without flaking on
// noisy runners.  Wall time is gated too, but coarsely: each record is
// repeat-sampled (--repeats, default 3) and the exact order-statistic
// p50/p99 over the retained samples must stay under baseline * band, with
// multiplicative bands (stored in the baseline's `latency_gate`) chosen
// to absorb runner noise — the latency gate catches order-of-magnitude
// blowups, not percent-level drift.  --check additionally enforces
// absolute gates independent of the baseline's numbers: any record
// flagged `heap_degraded`, `delta_degraded`, `shard_degraded`, or
// `service_degraded` fails, and fra.k100's `win_margin_vs_scan` must
// stay >= 1.0 — the heap engine earns its default by never losing to the
// scan it replaced, and the sharded CMA schedule and the planner service
// likewise must never lose to the seed paths they replaced.  Each margin
// is the median of per-repeat paired ratios (e.g. scan_i / heap_i) over
// interleaved samples, so machine drift cancels pairwise instead of
// biasing the engine measured first.
//
// Every paired sweep doubles as an equivalence oracle: heap-vs-scan must
// select bit-identical deployments and grid-vs-full must produce
// bit-identical node trajectories, delivery counters, and per-reason drop
// counters, or the bench exits non-zero.
//
// Flags: --quick (CI-sized sweep), --out PATH (default BENCH_perf.json),
// --check BASELINE.json (compare counters + latency percentiles),
// --repeats N (latency samples per record, default 3), --threads N.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <future>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common.hpp"
#include "core/cma.hpp"
#include "core/cma_sharding.hpp"
#include "core/delta.hpp"
#include "core/fra.hpp"
#include "core/planner.hpp"
#include "core/planner_service.hpp"
#include "core/reconstruction.hpp"
#include "field/analytic_fields.hpp"
#include "field/time_varying.hpp"
#include "geometry/delaunay.hpp"
#include "json_mini.hpp"
#include "net/link_model.hpp"

namespace {

using namespace cps;

// One sweep point: an id, a wall time, the raw counters that describe the
// algorithmic work done, and a few derived per-unit rates for reading.
struct Record {
  std::string id;
  double wall_ms = 0.0;
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> derived;

  /// Wall-time distribution over the --repeats runs of this record.
  /// Percentiles are exact order statistics over the retained samples —
  /// with n this small (the --repeats count) a bucketed estimator is the
  /// wrong tool: obs::Histogram's power-of-two buckets can move a
  /// 3-sample p50 by ~2x between identical runs.  The histogram remains
  /// the estimator for the telemetry timeline and the service layer,
  /// which stream unbounded sample counts and cannot retain them.
  struct Latency {
    std::uint64_t samples = 0;
    double p50_ms = 0.0;
    double p90_ms = 0.0;
    double p99_ms = 0.0;
    double mean_ms = 0.0;
    double min_ms = 0.0;
    double max_ms = 0.0;
  };
  Latency latency;

  std::uint64_t counter(const std::string& name) const {
    for (const auto& [n, v] : counters)
      if (n == name) return v;
    return 0;
  }

  const double* derived_value(const std::string& name) const {
    for (const auto& [n, v] : derived)
      if (n == name) return &v;
    return nullptr;
  }
};

/// Nearest-rank order statistic over sorted samples: the smallest sample
/// with at least a q fraction of the distribution at or below it
/// (rank = ceil(q * n), clamped to [1, n]).  Exact for any n.
double exact_quantile(const std::vector<double>& sorted, double q) {
  const std::size_t n = sorted.size();
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(n)));
  return sorted[std::min(n - 1, rank == 0 ? 0 : rank - 1)];
}

/// Sorts the retained samples into a record's exact percentile summary.
void finalize_latency(Record& rec, std::vector<double> samples) {
  double sum = 0.0;
  for (const double s : samples) sum += s;
  std::sort(samples.begin(), samples.end());
  rec.latency.samples = samples.size();
  rec.latency.p50_ms = exact_quantile(samples, 0.5);
  rec.latency.p90_ms = exact_quantile(samples, 0.9);
  rec.latency.p99_ms = exact_quantile(samples, 0.99);
  rec.latency.mean_ms = sum / static_cast<double>(samples.size());
  rec.latency.min_ms = samples.front();
  rec.latency.max_ms = samples.back();
}

// Runs one record builder `repeats` times, retaining every run's wall
// time; keeps the last run's counters/outputs (they are deterministic, so
// every repeat agrees) and attaches the exact percentile summary.
template <typename F>
Record timed_repeat(std::size_t repeats, F&& run_once) {
  std::vector<double> samples;
  samples.reserve(repeats);
  // One untimed warmup run per record: cold caches and page faults
  // otherwise land in the first sample's percentiles.
  Record rec = run_once();
  for (std::size_t r = 0; r < repeats; ++r) {
    rec = run_once();
    samples.push_back(rec.wall_ms);
  }
  finalize_latency(rec, std::move(samples));
  return rec;
}

// A/B variant for engine pairs: interleaves the two builders' samples
// (a, b, a, b, ...) after one warmup each, so both engines see the same
// machine epoch.  Block ordering (all of A, then all of B) lets slow
// drift — frequency ramps, allocator growth across a long bench — bias
// whichever block runs first by more than the structural delta the
// win-margin gate watches at k = 100.  When `pair_ratios` is given it
// receives b_i / a_i per repeat: adjacent samples share an epoch, so the
// median of those paired ratios estimates the A-vs-B margin with the
// drift cancelled — much tighter than the ratio of independent p50s.
template <typename FA, typename FB>
std::pair<Record, Record> timed_repeat_pair(
    std::size_t repeats, FA&& run_a, FB&& run_b,
    std::vector<double>* pair_ratios = nullptr) {
  std::vector<double> sa, sb;
  sa.reserve(repeats);
  sb.reserve(repeats);
  Record ra = run_a();
  Record rb = run_b();
  for (std::size_t r = 0; r < repeats; ++r) {
    ra = run_a();
    sa.push_back(ra.wall_ms);
    rb = run_b();
    sb.push_back(rb.wall_ms);
  }
  if (pair_ratios) {
    for (std::size_t r = 0; r < repeats; ++r) {
      pair_ratios->push_back(sa[r] == 0.0 ? 0.0 : sb[r] / sa[r]);
    }
  }
  finalize_latency(ra, std::move(sa));
  finalize_latency(rb, std::move(sb));
  return {std::move(ra), std::move(rb)};
}

std::uint64_t cval(const char* name) {
  return obs::registry().counter(name).value();
}

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double ratio(double num, double den) { return den == 0.0 ? 0.0 : num / den; }

// --- FRA sweep -----------------------------------------------------------

Record run_fra(const field::Field& frame, std::size_t k,
               core::SelectionEngine engine,
               std::vector<geo::Vec2>& positions_out) {
  Record rec;
  rec.id = "fra.k" + std::to_string(k) + "." +
           (engine == core::SelectionEngine::kHeap ? "heap" : "scan");

  core::FraConfig cfg;  // error_grid = 100, the paper's lattice.
  cfg.selection_engine = engine;
  core::FraPlanner planner(cfg);

  obs::registry().reset();
  const double t0 = now_ms();
  const core::FraResult result = planner.plan_detailed(
      frame, core::PlanRequest{bench::kRegion, k, bench::kRc});
  rec.wall_ms = now_ms() - t0;
  positions_out = result.deployment.positions;

  for (const char* name :
       {"core.fra.iterations", "core.fra.candidates_scanned",
        "core.fra.heap_pushes", "core.fra.heap_pops",
        "core.fra.heap_updates", "core.fra.heap_rebuilds",
        "core.fra.heap_flat_scans", "core.fra.heap_stale_pops",
        "core.fra.heap_parked", "core.fra.candidates_rebucketed",
        "core.fra.mst_recomputes", "core.fra.foresight_triggers",
        "graph.relay.mst_recomputes"}) {
    rec.counters.emplace_back(name, cval(name));
  }

  const double iters =
      static_cast<double>(std::max<std::uint64_t>(1, cval("core.fra.iterations")));
  // The comparable work rate: candidates examined per selection.  The
  // scan touches the whole lattice every iteration; the heap touches what
  // it pops plus whatever its storm-mode flat scans swept (the indexed
  // heap folds those into candidates_scanned, which the heap engine
  // otherwise leaves at zero).
  const std::uint64_t examined =
      engine == core::SelectionEngine::kHeap
          ? cval("core.fra.heap_pops") + cval("core.fra.candidates_scanned")
          : cval("core.fra.candidates_scanned");
  rec.derived.emplace_back("scans_per_iteration",
                           static_cast<double>(examined) / iters);
  if (engine == core::SelectionEngine::kHeap) {
    const double pops =
        static_cast<double>(std::max<std::uint64_t>(1, cval("core.fra.heap_pops")));
    const double stale_ratio =
        static_cast<double>(cval("core.fra.heap_stale_pops")) / pops;
    rec.derived.emplace_back("stale_pop_ratio", stale_ratio);
    // The indexed decrease-key heap holds one live entry per candidate —
    // stale pops are structurally impossible, so a nonzero ratio means
    // the engine regressed to lazy deletion.  --check makes this flag a
    // hard failure (see check_against_baseline).
    if (stale_ratio > 0.9) {
      rec.derived.emplace_back("heap_degraded", 1.0);
      std::fprintf(stderr,
                   "warning: %s heap degraded — stale_pop_ratio %.3f > 0.9 "
                   "(core.fra.heap_stale_pop_ratio)\n",
                   rec.id.c_str(), stale_ratio);
    }
  }
  return rec;
}

// --- CMA sweep -----------------------------------------------------------

std::unique_ptr<net::LinkModel> make_link(const std::string& model,
                                          double rc) {
  constexpr std::uint64_t kSeed = 11;  // Same seed across delivery modes.
  if (model == "disk") return std::make_unique<net::DiskLink>(rc, 0.05, kSeed);
  if (model == "distloss")
    return std::make_unique<net::DistanceLossLink>(rc, 0.5, 2.0, kSeed);
  return std::make_unique<net::GilbertElliottLink>(
      rc, net::GilbertElliottLink::Params{}, kSeed);
}

Record run_cma(const field::TimeVaryingField& env, std::size_t n,
               const std::string& model, net::DeliveryMode mode,
               std::size_t slots, std::vector<geo::Vec2>& positions_out) {
  Record rec;
  rec.id = "cma.n" + std::to_string(n) + "." + model + "." +
           (mode == net::DeliveryMode::kGrid ? "grid" : "full");

  core::CmaConfig cfg;  // Rc = 10, Rs = 5, v = 1 m/min, beta = 2.
  cfg.rc = bench::kRc * 1.0001;  // Keep the pitch grids connected.
  cfg.lcm = core::LcmMode::kPaper;
  core::CmaSimulation sim(env, bench::kRegion,
                          core::GridPlanner::make_grid(bench::kRegion, n)
                              .positions,
                          cfg, trace::minutes(10, 0));
  sim.set_link_model(make_link(model, cfg.rc));
  sim.set_delivery_mode(mode);

  obs::registry().reset();
  const double t0 = now_ms();
  sim.run(slots);
  rec.wall_ms = now_ms() - t0;
  positions_out = sim.positions();

  for (const char* name :
       {"net.bus.transmit_attempts", "net.bus.deliveries",
        "net.bus.delivery_failures", "net.bus.messages_sent",
        "net.bus.grid_rebuilds", "net.bus.drops_total",
        "net.bus.drop.dead_sender", "net.bus.drop.dead_receiver",
        "net.bus.drop.out_of_range", "net.bus.drop.link_loss_draw",
        "net.bus.drop.ttl_expired"}) {
    rec.counters.emplace_back(name, cval(name));
  }
  rec.derived.emplace_back(
      "attempts_per_slot",
      static_cast<double>(cval("net.bus.transmit_attempts")) /
          static_cast<double>(slots));
  if (mode == net::DeliveryMode::kGrid) {
    rec.derived.emplace_back(
        "cells_probed_mean",
        obs::registry().histogram("net.bus.cells_probed").mean());
  }
  return rec;
}

// --- Sharded CMA sweep ---------------------------------------------------

// Constant-density scaling: the canonical 100 x 100 region saturates near
// N = 1000 at the paper's ~0.1 nodes/m^2, so the sharded points grow the
// region (side = sqrt(N / 0.1)) instead of packing the nodes — tile count
// rises with N while per-tile radio degree stays at the paper's ~31.
num::Rect shard_region(std::size_t n) {
  const double side = std::sqrt(static_cast<double>(n) / 0.1);
  return num::Rect{0.0, 0.0, side, side};
}

// A static Gaussian-mixture environment scaled to the region.  Analytic
// rather than a recorded GreenOrbs window: the recorded frames cover only
// the canonical region, and a static frame keeps per-sample cost flat so
// the sweep isolates the slot-schedule / bus-delivery difference.
field::StaticTimeField shard_env(const num::Rect& region) {
  const double w = region.width();
  const double h = region.height();
  std::vector<field::GaussianBump> bumps;
  bumps.push_back({{region.x0 + 0.30 * w, region.y0 + 0.30 * h}, 60.0,
                   0.12 * w});
  bumps.push_back({{region.x0 + 0.72 * w, region.y0 + 0.58 * h}, 45.0,
                   0.09 * w});
  bumps.push_back({{region.x0 + 0.45 * w, region.y0 + 0.82 * h}, 30.0,
                   0.15 * w});
  return field::StaticTimeField(
      std::make_shared<field::GaussianMixtureField>(20.0, std::move(bumps)));
}

Record run_cma_sharded(const field::TimeVaryingField& env,
                       const num::Rect& region, std::size_t n,
                       std::size_t slots, bool sharded,
                       std::vector<geo::Vec2>& positions_out) {
  Record rec;
  rec.id = "cma.n" + std::to_string(n) + ".disk." +
           (sharded ? "sharded" : "unsharded");

  core::CmaConfig cfg;
  cfg.rc = bench::kRc * 1.0001;  // Keep the pitch grids connected.
  cfg.lcm = core::LcmMode::kPaper;
  // Coarser sensing lattice than the figure benches: at N = 10000 a 1 m
  // pitch would make sensing dominate the slot and mask the bus delta
  // this sweep measures.
  cfg.sample_spacing = 2.5;
  if (sharded) cfg.sharding = core::ShardingMode::kTiles;
  core::CmaSimulation sim(env, region,
                          core::GridPlanner::make_grid(region, n).positions,
                          cfg, trace::minutes(10, 0));
  sim.set_link_model(make_link("disk", cfg.rc));

  obs::registry().reset();
  const double t0 = now_ms();
  sim.run(slots);
  rec.wall_ms = now_ms() - t0;
  positions_out = sim.positions();

  for (const char* name :
       {"net.bus.transmit_attempts", "net.bus.deliveries",
        "net.bus.delivery_failures", "net.bus.messages_sent",
        "net.bus.drops_total", "net.bus.drop.dead_sender",
        "net.bus.drop.dead_receiver", "net.bus.drop.out_of_range",
        "net.bus.drop.link_loss_draw", "net.bus.drop.ttl_expired",
        "net.bus.beacon_delta_sent", "net.bus.beacon_full_sent",
        "net.bus.beacon_delta_hits", "net.bus.beacon_payload_entries",
        "core.cma.shard.migrations", "core.cma.shard.ghost_exchanged",
        "core.cma.shard.match_pairs"}) {
    rec.counters.emplace_back(name, cval(name));
  }
  rec.derived.emplace_back(
      "attempts_per_slot",
      static_cast<double>(cval("net.bus.transmit_attempts")) /
          static_cast<double>(slots));
  rec.derived.emplace_back(
      "inbox_high_water_mean",
      obs::registry().histogram("net.bus.inbox_high_water").mean());
  if (sharded) {
    rec.derived.emplace_back(
        "ghost_fraction_of_pairs",
        ratio(static_cast<double>(cval("core.cma.shard.ghost_exchanged")),
              static_cast<double>(cval("core.cma.shard.match_pairs"))));
  }
  return rec;
}

// --- Delta-eval sweep ----------------------------------------------------

Record run_delta_eval(const field::Field& frame,
                      const std::vector<geo::Vec2>& positions,
                      std::size_t resolution, core::DeltaEngine engine,
                      double& delta_out) {
  Record rec;
  rec.id = "delta.res" + std::to_string(resolution) + "." +
           (engine == core::DeltaEngine::kRaster ? "raster" : "walk");

  core::DeltaMetric metric(bench::kRegion, resolution);
  metric.set_engine(engine);

  obs::registry().reset();
  const double t0 = now_ms();
  delta_out = metric.delta_of_deployment(frame, positions,
                                         core::CornerPolicy::kFieldValue);
  rec.wall_ms = now_ms() - t0;

  for (const char* name :
       {"geometry.delaunay.locates", "geometry.delaunay.walk_steps",
        "core.delta.batch_rows", "core.delta.raster_spans",
        "core.delta.raster_fast_assigns",
        "core.delta.raster_fallback_locates"}) {
    rec.counters.emplace_back(name, cval(name));
  }
  const double points =
      static_cast<double>(resolution) * static_cast<double>(resolution);
  rec.derived.emplace_back(
      "locates_per_point",
      static_cast<double>(cval("geometry.delaunay.locates")) / points);
  return rec;
}

// FRA planning with the cavity-local δ tracker attached: every insertion's
// cavity report re-rasters only the lattice rows it touched, so the
// trajectory costs O(changed area) per step where the from-scratch path
// would re-sweep all res² points per probe.  --check hard-gates the
// savings ratio at 10x (`delta_degraded`, see check_against_baseline).
Record run_delta_incremental(const field::Field& frame, std::size_t k,
                             std::size_t resolution, double& delta_out,
                             std::vector<geo::Vec2>& positions_out) {
  Record rec;
  rec.id = "delta.incremental.k" + std::to_string(k) + ".res" +
           std::to_string(resolution);

  core::DeltaMetric metric(bench::kRegion, resolution);
  core::FraConfig cfg;
  cfg.track_delta = &metric;
  core::FraPlanner planner(cfg);

  obs::registry().reset();
  const double t0 = now_ms();
  const core::FraResult result = planner.plan_detailed(
      frame, core::PlanRequest{bench::kRegion, k, bench::kRc});
  rec.wall_ms = now_ms() - t0;
  delta_out = result.final_delta;
  positions_out = result.deployment.positions;

  for (const char* name :
       {"core.delta.inc_events", "core.delta.inc_points",
        "core.delta.inc_rows", "core.delta.inc_keep_assigns",
        "core.delta.inc_relocates", "core.delta.inc_rebuilds",
        "core.delta.inc_retargets", "geometry.delaunay.locates"}) {
    rec.counters.emplace_back(name, cval(name));
  }

  const auto& ds = result.delta_stats;
  const double events =
      static_cast<double>(std::max<std::size_t>(ds.events, 1));
  rec.derived.emplace_back(
      "points_per_event",
      static_cast<double>(ds.points_reevaluated) / events);
  // What the per-step what-if sweeps would have cost from scratch versus
  // what the tracker actually re-evaluated.
  const double savings = ratio(static_cast<double>(ds.events) *
                                   static_cast<double>(ds.full_sweep_points),
                               static_cast<double>(ds.points_reevaluated));
  rec.derived.emplace_back("full_sweep_savings", savings);
  if (savings < 10.0) {
    rec.derived.emplace_back("delta_degraded", 1.0);
    std::fprintf(stderr,
                 "warning: %s incremental engine degraded — "
                 "full_sweep_savings %.1fx < 10x\n",
                 rec.id.c_str(), savings);
  }
  return rec;
}

Record run_delta_refcache_sweep(
    const field::Field& frame,
    const std::vector<std::vector<geo::Vec2>>& deployments,
    std::vector<double>& deltas_out) {
  Record rec;
  rec.id = "delta.refcache.m" + std::to_string(deployments.size());

  core::DeltaMetric metric = bench::canonical_metric();
  // Content-keyed caching is on by default; pin the capacity anyway so the
  // record measures a fixed configuration even if the default moves.
  metric.set_reference_cache_capacity(8);

  obs::registry().reset();
  const double t0 = now_ms();
  deltas_out.clear();
  for (const auto& positions : deployments) {
    deltas_out.push_back(metric.delta_of_deployment(
        frame, positions, core::CornerPolicy::kFieldValue));
  }
  rec.wall_ms = now_ms() - t0;

  for (const char* name :
       {"core.delta.ref_cache_hits", "core.delta.ref_cache_misses",
        "core.delta.batch_rows", "geometry.delaunay.locates"}) {
    rec.counters.emplace_back(name, cval(name));
  }
  rec.derived.emplace_back(
      "hit_ratio",
      ratio(static_cast<double>(cval("core.delta.ref_cache_hits")),
            static_cast<double>(cval("core.delta.ref_cache_hits") +
                                cval("core.delta.ref_cache_misses"))));
  return rec;
}

// --- Service mix ---------------------------------------------------------

// One deterministic job mix, submitted twice per thread count: through the
// PlannerService (run_service_mix) and as a serial loop of the equivalent
// direct calls (run_serial_mix).  The serial loop is both the throughput
// baseline and the bit-identity oracle: Score jobs against
// DeltaMetric::delta_of_deployment, Plan jobs against Planner::plan, and
// WhatIf jobs against a fresh DeltaMetric::delta of the identically
// mutated base triangulation — the full re-sweep the service's
// cavity-local IncrementalDelta path must match bit-for-bit and beat
// structurally (O(changed area) vs O(lattice) per query), which is why
// the speedup gate holds even on a single-core runner.
struct ServiceMix {
  std::shared_ptr<const field::Field> field;
  std::shared_ptr<const core::Deployment> base;  ///< what-if base.
  std::vector<core::Deployment> scores;
  std::vector<std::pair<core::PlannerKind, core::PlanRequest>> plans;
  struct WhatIf {
    core::WhatIfJob::Op op;
    std::size_t node;
    geo::Vec2 to;
  };
  std::vector<WhatIf> whatifs;

  std::size_t total() const {
    return scores.size() + plans.size() + whatifs.size();
  }
};

ServiceMix make_service_mix(bool quick,
                            std::shared_ptr<const field::Field> field) {
  ServiceMix mix;
  mix.field = std::move(field);
  // Interior base positions: none coincides with a region corner, so
  // base node i maps to vertex kCorners + i in the reconstruction (the
  // same invariant tests/test_service.cpp leans on).
  constexpr std::size_t kBaseK = 40;
  mix.base = std::make_shared<core::Deployment>(core::RandomPlanner(3).plan(
      *mix.field, core::PlanRequest{bench::kRegion, kBaseK, bench::kRc}));

  const std::size_t n_scores = quick ? 6 : 10;
  for (std::size_t i = 0; i < n_scores; ++i) {
    mix.scores.push_back(core::RandomPlanner(200 + i).plan(
        *mix.field, core::PlanRequest{bench::kRegion, 40, bench::kRc}));
  }

  // One plan per engine, exercising the unified PlanRequest overrides
  // (per-request seed for Random, per-request lattice for FarthestPoint).
  mix.plans.emplace_back(core::PlannerKind::kFra,
                         core::PlanRequest{bench::kRegion, 12, bench::kRc});
  mix.plans.emplace_back(
      core::PlannerKind::kRandom,
      core::PlanRequest{bench::kRegion, 40, bench::kRc, 0, /*seed=*/11});
  mix.plans.emplace_back(core::PlannerKind::kGrid,
                         core::PlanRequest{bench::kRegion, 36, bench::kRc});
  mix.plans.emplace_back(
      core::PlannerKind::kFarthestPoint,
      core::PlanRequest{bench::kRegion, 20, bench::kRc, /*lattice=*/30});
  if (!quick) {
    mix.plans.emplace_back(
        core::PlannerKind::kRandom,
        core::PlanRequest{bench::kRegion, 40, bench::kRc, 0, /*seed=*/12});
    mix.plans.emplace_back(
        core::PlannerKind::kFarthestPoint,
        core::PlanRequest{bench::kRegion, 24, bench::kRc, /*lattice=*/40});
  }

  // What-if traffic dominates the mix, as it would in production: many
  // cheap probes against one shared base.  Destinations are interior and
  // distinct from every base position, cycling move / insert / remove.
  const std::size_t n_whatifs = quick ? 24 : 64;
  for (std::size_t i = 0; i < n_whatifs; ++i) {
    ServiceMix::WhatIf w;
    w.to = {8.0 + static_cast<double>((i * 37) % 83) + 0.375,
            6.0 + static_cast<double>((i * 53) % 89) + 0.625};
    switch (i % 3) {
      case 0:
        w.op = core::WhatIfJob::Op::kMove;
        w.node = (i * 5) % kBaseK;
        break;
      case 1:
        w.op = core::WhatIfJob::Op::kInsert;
        w.node = 0;
        break;
      default:
        w.op = core::WhatIfJob::Op::kRemove;
        w.node = (i * 7 + 3) % kBaseK;
        break;
    }
    mix.whatifs.push_back(w);
  }
  return mix;
}

/// Per-job-type duration histogram summary captured from the obs registry
/// at the end of a service run (the serial half of the pair resets the
/// registry, so this must be read inside run_service_mix).
struct ServiceObs {
  struct HistSummary {
    std::uint64_t count = 0;
    double p50_us = 0.0, p90_us = 0.0, p99_us = 0.0, mean_us = 0.0;
  };
  HistSummary hists[3];  // score, plan, whatif — kServiceHistNames order.
};

constexpr const char* kServiceHistNames[3] = {
    "service.job.score_us", "service.job.plan_us", "service.job.whatif_us"};

Record run_service_mix(const ServiceMix& mix, std::size_t threads,
                       std::vector<double>& deltas_out,
                       std::vector<std::vector<geo::Vec2>>& plans_out,
                       bool& all_ok, ServiceObs& sobs) {
  Record rec;
  rec.id = "service.mix.t" + std::to_string(threads);

  obs::registry().reset();
  core::PlannerService service;
  const auto snapshot = service.intern(mix.field);
  // Prewarm the shared reference lattice: the one cache miss lands here,
  // deterministically, instead of racing inside the first batch.
  service.prewarm(snapshot, bench::kRegion, bench::kDeltaResolution);

  const double t0 = now_ms();
  std::vector<std::future<core::JobResult>> futures;
  futures.reserve(mix.total());
  for (const auto& d : mix.scores) {
    futures.push_back(service.submit(core::ScoreJob{
        snapshot, d, bench::kRegion, bench::kDeltaResolution}));
  }
  for (const auto& [kind, request] : mix.plans) {
    futures.push_back(service.submit(core::PlanJob{
        snapshot, kind, request,
        /*score_resolution=*/bench::kDeltaResolution}));
  }
  for (const auto& w : mix.whatifs) {
    futures.push_back(service.submit(
        core::WhatIfJob{snapshot, mix.base, w.op, w.node, w.to,
                        bench::kRegion, bench::kDeltaResolution}));
  }

  deltas_out.clear();
  plans_out.clear();
  all_ok = true;
  std::vector<double> job_latencies;
  job_latencies.reserve(futures.size());
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const core::JobResult r = futures[i].get();
    if (!r.ok) {
      std::fprintf(stderr, "%s: job %zu failed: %s\n", rec.id.c_str(), i,
                   r.error.c_str());
      all_ok = false;
    }
    deltas_out.push_back(r.delta);
    if (i >= mix.scores.size() &&
        i < mix.scores.size() + mix.plans.size()) {
      plans_out.push_back(r.deployment.positions);
    }
    job_latencies.push_back(r.latency_ms);
  }
  rec.wall_ms = now_ms() - t0;

  for (const char* name :
       {"service.jobs.submitted", "service.jobs.completed",
        "service.jobs.score", "service.jobs.plan", "service.jobs.whatif",
        "service.snapshot.hits", "service.snapshot.misses",
        "service.base_state.hits", "service.base_state.misses",
        "core.delta.ref_cache_hits", "core.delta.ref_cache_misses",
        "core.delta.inc_events", "core.delta.inc_points"}) {
    rec.counters.emplace_back(name, cval(name));
  }
  rec.derived.emplace_back(
      "throughput_jps",
      ratio(static_cast<double>(mix.total()), rec.wall_ms / 1000.0));
  std::sort(job_latencies.begin(), job_latencies.end());
  rec.derived.emplace_back("job_latency_p50_ms",
                           exact_quantile(job_latencies, 0.5));
  rec.derived.emplace_back("job_latency_p99_ms",
                           exact_quantile(job_latencies, 0.99));

  for (std::size_t h = 0; h < 3; ++h) {
    const obs::Histogram& hist =
        obs::registry().duration_histogram(kServiceHistNames[h]);
    sobs.hists[h].count = hist.count();
    sobs.hists[h].p50_us = hist.quantile(0.5);
    sobs.hists[h].p90_us = hist.quantile(0.9);
    sobs.hists[h].p99_us = hist.quantile(0.99);
    sobs.hists[h].mean_us = hist.mean();
  }
  return rec;
}

Record run_serial_mix(const ServiceMix& mix, std::size_t threads,
                      std::vector<double>& deltas_out,
                      std::vector<std::vector<geo::Vec2>>& plans_out) {
  Record rec;
  rec.id = "service.mix.t" + std::to_string(threads) + ".serial";

  obs::registry().reset();
  core::DeltaMetric metric(bench::kRegion, bench::kDeltaResolution);
  metric.reference_lattice(*mix.field);  // Same prewarm as the service.

  const double t0 = now_ms();
  deltas_out.clear();
  plans_out.clear();
  for (const auto& d : mix.scores) {
    deltas_out.push_back(metric.delta_of_deployment(
        *mix.field, d.positions, core::CornerPolicy::kFieldValue));
  }
  for (const auto& [kind, request] : mix.plans) {
    core::Deployment d;
    switch (kind) {
      case core::PlannerKind::kFra:
        d = core::FraPlanner().plan(*mix.field, request);
        break;
      case core::PlannerKind::kRandom:
        d = core::RandomPlanner().plan(*mix.field, request);
        break;
      case core::PlannerKind::kGrid:
        d = core::GridPlanner().plan(*mix.field, request);
        break;
      case core::PlannerKind::kFarthestPoint:
        d = core::FarthestPointPlanner().plan(*mix.field, request);
        break;
    }
    deltas_out.push_back(metric.delta_of_deployment(
        *mix.field, d.positions, core::CornerPolicy::kFieldValue));
    plans_out.push_back(std::move(d.positions));
  }
  // What-ifs the pre-service way: copy the base triangulation, mutate,
  // full re-sweep.  This is the oracle protocol (DESIGN.md §13/§15) and
  // the cost model the service's incremental path is gated against.
  const auto samples = core::take_samples(*mix.field, mix.base->positions);
  const geo::Delaunay dt_base = core::reconstruct_surface(
      samples, bench::kRegion, core::CornerPolicy::kFieldValue,
      mix.field.get());
  for (const auto& w : mix.whatifs) {
    geo::Delaunay dt = dt_base;
    switch (w.op) {
      case core::WhatIfJob::Op::kMove:
        dt.move_vertex(geo::Delaunay::kCorners + w.node, w.to,
                       mix.field->value(w.to));
        break;
      case core::WhatIfJob::Op::kInsert:
        dt.insert(w.to, mix.field->value(w.to));
        break;
      case core::WhatIfJob::Op::kRemove:
        dt.remove(geo::Delaunay::kCorners + w.node);
        break;
    }
    deltas_out.push_back(metric.delta(*mix.field, dt));
  }
  rec.wall_ms = now_ms() - t0;

  for (const char* name :
       {"core.delta.ref_cache_hits", "core.delta.ref_cache_misses",
        "geometry.delaunay.locates"}) {
    rec.counters.emplace_back(name, cval(name));
  }
  rec.derived.emplace_back(
      "throughput_jps",
      ratio(static_cast<double>(mix.total()), rec.wall_ms / 1000.0));
  return rec;
}

/// The service.* sidecar CI uploads next to BENCH_perf.json: per thread
/// count, the service record's counters/derived plus the per-job-type
/// duration histogram summaries (which the main JSON does not carry).
void write_service_sidecar(
    const std::string& path, const std::string& mode,
    const std::vector<std::tuple<std::size_t, Record, ServiceObs>>& runs) {
  std::ofstream out(path);
  if (!out) {
    std::printf("note: cannot write %s\n", path.c_str());
    return;
  }
  out.precision(17);
  out << "{\n";
  out << "  \"schema\": \"cps.bench_perf.service.v1\",\n";
  out << "  \"mode\": \"" << mode << "\",\n";
  out << "  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& [threads, rec, sobs] = runs[i];
    out << "    {\n";
    out << "      \"threads\": " << threads << ",\n";
    out << "      \"wall_ms\": " << rec.wall_ms << ",\n";
    out << "      \"counters\": {";
    for (std::size_t j = 0; j < rec.counters.size(); ++j) {
      out << (j == 0 ? "\n" : ",\n") << "        \""
          << rec.counters[j].first << "\": " << rec.counters[j].second;
    }
    out << "\n      },\n";
    out << "      \"derived\": {";
    for (std::size_t j = 0; j < rec.derived.size(); ++j) {
      out << (j == 0 ? "\n" : ",\n") << "        \""
          << rec.derived[j].first << "\": " << rec.derived[j].second;
    }
    out << "\n      },\n";
    out << "      \"job_histograms\": {";
    for (std::size_t h = 0; h < 3; ++h) {
      const auto& s = sobs.hists[h];
      out << (h == 0 ? "\n" : ",\n") << "        \"" << kServiceHistNames[h]
          << "\": {\"count\": " << s.count << ", \"p50_us\": " << s.p50_us
          << ", \"p90_us\": " << s.p90_us << ", \"p99_us\": " << s.p99_us
          << ", \"mean_us\": " << s.mean_us << "}";
    }
    out << "\n      }\n";
    out << "    }" << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
}

// --- Equivalence oracles -------------------------------------------------

bool same_positions(const std::vector<geo::Vec2>& a,
                    const std::vector<geo::Vec2>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].x != b[i].x || a[i].y != b[i].y) return false;
  return true;
}

// --- JSON output ---------------------------------------------------------

void write_json(std::ostream& out, const std::string& mode,
                const std::vector<Record>& records) {
  out.precision(17);
  const char* threads_env = std::getenv("CPS_THREADS");
  out << "{\n";
  out << "  \"schema\": \"cps.bench_perf.v1\",\n";
  out << "  \"mode\": \"" << mode << "\",\n";
  out << "  \"threads\": " << par::thread_count() << ",\n";
  // Machine context for cross-runner comparison of the wall times; the
  // baseline gate reads only `records[].counters`, so none of this
  // affects CI.
  out << "  \"machine\": {\n";
  out << "    \"hardware_threads\": " << par::hardware_threads() << ",\n";
  out << "    \"cps_threads_env\": \""
      << (threads_env != nullptr ? threads_env : "") << "\",\n";
  out << "    \"pool_threads\": " << par::thread_count() << ",\n";
  // Build-configuration stamps: records from a Debug, simd-off, or
  // cold-cache build are not comparable to Release numbers, so say which
  // one produced this file.
#if defined(CPS_SIMD_ENABLED)
  out << "    \"simd\": true,\n";
#else
  out << "    \"simd\": false,\n";
#endif
#if defined(CPS_BENCH_BUILD_TYPE)
  out << "    \"build_type\": \"" << CPS_BENCH_BUILD_TYPE << "\",\n";
#else
  out << "    \"build_type\": \"\",\n";
#endif
#if defined(CPS_BENCH_CCACHE)
  out << "    \"ccache\": \"" << CPS_BENCH_CCACHE << "\",\n";
#else
  out << "    \"ccache\": \"unknown\",\n";
#endif
  out << "    \"engines\": {\n";
  out << "      \"fra_selection\": \"heap\",\n";
  out << "      \"bus_delivery\": \"grid\",\n";
  out << "      \"delta_point_location\": \"raster\"\n";
  out << "    }\n";
  out << "  },\n";
  // Multiplicative tolerance bands for the latency gate, stored with the
  // baseline so the thresholds travel with the numbers they bound.  The
  // percentiles are exact order statistics now, so the bands only have to
  // absorb runner noise (shared CI machines still jitter plenty) — they
  // used to also cover histogram bucket quantisation.
  out << "  \"latency_gate\": {\"p50_band\": 3.0, \"p99_band\": 5.0},\n";
  out << "  \"records\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    out << "    {\n";
    out << "      \"id\": \"" << r.id << "\",\n";
    out << "      \"wall_ms\": " << r.wall_ms << ",\n";
    if (r.latency.samples > 0) {
      out << "      \"latency\": {\"samples\": " << r.latency.samples
          << ", \"p50_ms\": " << r.latency.p50_ms
          << ", \"p90_ms\": " << r.latency.p90_ms
          << ", \"p99_ms\": " << r.latency.p99_ms
          << ", \"mean_ms\": " << r.latency.mean_ms
          << ", \"min_ms\": " << r.latency.min_ms
          << ", \"max_ms\": " << r.latency.max_ms << "},\n";
    }
    out << "      \"counters\": {";
    for (std::size_t j = 0; j < r.counters.size(); ++j) {
      out << (j == 0 ? "\n" : ",\n") << "        \"" << r.counters[j].first
          << "\": " << r.counters[j].second;
    }
    out << "\n      },\n";
    out << "      \"derived\": {";
    for (std::size_t j = 0; j < r.derived.size(); ++j) {
      out << (j == 0 ? "\n" : ",\n") << "        \"" << r.derived[j].first
          << "\": " << r.derived[j].second;
    }
    out << "\n      }\n";
    out << "    }" << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
}

// --- Baseline gate -------------------------------------------------------

// Counters are deterministic, so "regression" is sharp: any counter more
// than 10% above its checked-in baseline fails.  Decreases pass (that is
// an improvement — refresh the baseline to lock it in).  Latency
// percentiles are gated with the baseline's own tolerance bands
// (latency_gate) when both sides carry latency data; old baselines
// without it gate counters only.
int check_against_baseline(const std::string& path,
                           const std::vector<Record>& records) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_perf: cannot read baseline %s\n",
                 path.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  bench::Json baseline;
  try {
    baseline = bench::JsonParser::parse(buf.str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_perf: baseline %s: %s\n", path.c_str(),
                 e.what());
    return 1;
  }

  std::map<std::string, const Record*> by_id;
  for (const Record& r : records) by_id[r.id] = &r;

  double p50_band = 3.0;
  double p99_band = 5.0;
  if (baseline.has("latency_gate")) {
    const bench::Json& gate = baseline.at("latency_gate");
    if (gate.has("p50_band")) p50_band = gate.at("p50_band").number;
    if (gate.has("p99_band")) p99_band = gate.at("p99_band").number;
  }

  int regressions = 0;
  std::size_t compared = 0;
  std::size_t latency_compared = 0;
  for (const bench::Json& base_rec : baseline.at("records").array) {
    const std::string& id = base_rec.at("id").string;
    const auto it = by_id.find(id);
    if (it == by_id.end()) {
      std::fprintf(stderr, "REGRESSION %s: record missing from this run "
                           "(baseline and run modes must match)\n",
                   id.c_str());
      ++regressions;
      continue;
    }
    for (const auto& [name, base_val] : base_rec.at("counters").object) {
      const double base = base_val.number;
      const double cur = static_cast<double>(it->second->counter(name));
      ++compared;
      if (cur > base * 1.10 + 0.5) {
        std::fprintf(stderr,
                     "REGRESSION %s: %s = %.0f exceeds baseline %.0f "
                     "by more than 10%%\n",
                     id.c_str(), name.c_str(), cur, base);
        ++regressions;
      }
    }
    if (base_rec.has("latency") && it->second->latency.samples > 0) {
      const bench::Json& base_lat = base_rec.at("latency");
      // +1 ms of absolute slack: sub-millisecond records quantise into
      // the same few histogram buckets regardless of real speed, so a
      // pure multiplicative band would flake on them.
      const auto gate_percentile = [&](const char* key, double cur,
                                       double band) {
        if (!base_lat.has(key)) return;
        const double base = base_lat.at(key).number;
        ++latency_compared;
        if (cur > base * band + 1.0) {
          std::fprintf(stderr,
                       "REGRESSION %s: %s = %.2f ms exceeds baseline "
                       "%.2f ms by more than %.1fx\n",
                       id.c_str(), key, cur, base, band);
          ++regressions;
        }
      };
      gate_percentile("p50_ms", it->second->latency.p50_ms, p50_band);
      gate_percentile("p99_ms", it->second->latency.p99_ms, p99_band);
    }
  }
  // Absolute FRA gates, independent of the baseline's numbers.  A
  // degraded heap (stale-pop dominated selection) is a hard failure: the
  // indexed engine cannot produce stale pops, so the flag means the
  // engine itself regressed.  And at the canonical k = 100 — the point
  // the lazy-deletion heap used to lose — the heap must not fall behind
  // the scan it replaced.
  for (const Record& r : records) {
    if (const double* flag = r.derived_value("heap_degraded");
        flag != nullptr && *flag != 0.0) {
      std::fprintf(stderr,
                   "REGRESSION %s: heap_degraded is set — selection heap "
                   "fell back to stale-pop-dominated behaviour\n",
                   r.id.c_str());
      ++regressions;
    }
    // The cavity-local δ tracker's reason to exist is the O(changed area)
    // bound: re-evaluating fewer than 10x under the per-event full-sweep
    // cost means the cavity scoping regressed, regardless of wall time.
    if (const double* flag = r.derived_value("delta_degraded");
        flag != nullptr && *flag != 0.0) {
      std::fprintf(stderr,
                   "REGRESSION %s: delta_degraded is set — incremental "
                   "tracker re-evaluated more than 1/10 of the full-sweep "
                   "lattice work\n",
                   r.id.c_str());
      ++regressions;
    }
    // Same contract for the tile-sharded CMA schedule: matching once per
    // slot and transmitting only in-range pairs must beat the per-message
    // grid probe, or the sharding layer has regressed structurally.
    if (const double* flag = r.derived_value("shard_degraded");
        flag != nullptr && *flag != 0.0) {
      std::fprintf(stderr,
                   "REGRESSION %s: shard_degraded is set — the tile-sharded "
                   "schedule lost to the unsharded seed path\n",
                   r.id.c_str());
      ++regressions;
    }
    // And for the planner service: its what-if path is cavity-local by
    // construction, so losing to a serial loop of full re-sweeps means
    // the service layer itself (batching, snapshot sharing, base-state
    // cache) regressed, regardless of the runner's core count.
    if (const double* flag = r.derived_value("service_degraded");
        flag != nullptr && *flag != 0.0) {
      std::fprintf(stderr,
                   "REGRESSION %s: service_degraded is set — the planner "
                   "service lost to the serial direct-call loop\n",
                   r.id.c_str());
      ++regressions;
    }
    if (r.id == "fra.k100.heap") {
      if (const double* margin = r.derived_value("win_margin_vs_scan");
          margin != nullptr && *margin < 1.0) {
        std::fprintf(stderr,
                     "REGRESSION %s: win_margin_vs_scan %.3f < 1.0 — heap "
                     "engine lost to the scan oracle at k=100\n",
                     r.id.c_str(), *margin);
        ++regressions;
      }
    }
  }
  std::printf("baseline check: %zu counters and %zu latency percentiles "
              "compared against %s, %d regression(s)\n",
              compared, latency_compared, path.c_str(), regressions);
  return regressions == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ObsSession obs_session("perf");
  bench::configure_threads(argc, argv);

  bool quick = false;
  std::string out_path = "BENCH_perf.json";
  std::string baseline_path;
  std::size_t repeats = 3;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--repeats") == 0 && i + 1 < argc) {
      repeats = static_cast<std::size_t>(
          std::max(1L, std::atol(argv[++i])));
    }
  }
  bench::print_header("Perf trajectory",
                      quick ? "quadratic-path counters (quick sweep)"
                            : "quadratic-path counters (full sweep)");

  // k = 100 rides in both modes: it is the paper's canonical density AND
  // the size the lazy-deletion heap used to lose, so the quick (CI) sweep
  // must cover it for the win-margin gate to bite.
  const std::vector<std::size_t> fra_ks =
      quick ? std::vector<std::size_t>{50, 100, 200}
            : std::vector<std::size_t>{100, 500, 2000};
  const std::vector<std::size_t> cma_ns =
      quick ? std::vector<std::size_t>{60, 150}
            : std::vector<std::size_t>{100, 400, 1000};
  const std::size_t slots = quick ? 50 : 200;

  const auto env = bench::canonical_field();
  const field::FieldSlice frame(env, bench::reference_time());
  // Pre-record the window CMA will replay so field lookups are cheap and
  // identical across every (model, mode) pair.
  const auto recorded =
      env.record(trace::minutes(10, 0),
                 trace::minutes(10, 0) + static_cast<double>(slots) + 1.0,
                 5.0, 101, 101);

  std::vector<Record> records;
  int failures = 0;

  // FRA: heap vs scan, bit-identical deployments required.  The pair is
  // sampled with extra repeats: FRA records are milliseconds (unlike the
  // CMA blocks), and the k=100 win margin gates on them, so the added
  // samples are cheap insurance against container noise.
  const std::size_t fra_repeats = std::max<std::size_t>(repeats, 7);
  for (const std::size_t k : fra_ks) {
    std::vector<geo::Vec2> heap_pos, scan_pos;
    std::vector<double> pair_ratios;
    // Build records as locals and push copies: references into `records`
    // would dangle when a later push_back reallocates the vector.
    auto [heap, scan] = timed_repeat_pair(
        fra_repeats,
        [&] {
          return run_fra(frame, k, core::SelectionEngine::kHeap, heap_pos);
        },
        [&] {
          return run_fra(frame, k, core::SelectionEngine::kScan, scan_pos);
        },
        &pair_ratios);
    // Heap-over-scan speedup as the median of per-repeat paired ratios
    // (scan_i / heap_i); > 1 means the heap won.  --check hard-gates this
    // at k = 100 (see check_against_baseline).
    std::sort(pair_ratios.begin(), pair_ratios.end());
    heap.derived.emplace_back("win_margin_vs_scan",
                              exact_quantile(pair_ratios, 0.5));
    records.push_back(heap);
    records.push_back(scan);
    if (!same_positions(heap_pos, scan_pos)) {
      std::fprintf(stderr,
                   "EQUIVALENCE FAILURE fra.k%zu: heap and scan engines "
                   "selected different deployments\n",
                   k);
      ++failures;
    }
    std::printf(
        "fra k=%-5zu scans/iter: scan %.0f -> heap %.1f (%.0fx), "
        "wall %.1f ms -> %.1f ms\n",
        k, scan.derived[0].second, heap.derived[0].second,
        ratio(scan.derived[0].second, heap.derived[0].second), scan.wall_ms,
        heap.wall_ms);
  }

  // CMA: grid vs full per link model — same trajectories, same delivery
  // counters, fewer transmit attempts.
  for (const std::size_t n : cma_ns) {
    for (const std::string model : {"disk", "distloss", "gilbert"}) {
      std::vector<geo::Vec2> grid_pos, full_pos;
      const Record grid = timed_repeat(repeats, [&] {
        return run_cma(recorded, n, model, net::DeliveryMode::kGrid, slots,
                       grid_pos);
      });
      records.push_back(grid);
      const Record full = timed_repeat(repeats, [&] {
        return run_cma(recorded, n, model, net::DeliveryMode::kFull, slots,
                       full_pos);
      });
      records.push_back(full);
      if (!same_positions(grid_pos, full_pos)) {
        std::fprintf(stderr,
                     "EQUIVALENCE FAILURE cma.n%zu.%s: grid and full "
                     "delivery produced different trajectories\n",
                     n, model.c_str());
        ++failures;
      }
      for (const char* name : {"net.bus.deliveries",
                               "net.bus.delivery_failures",
                               "net.bus.messages_sent",
                               "net.bus.drops_total",
                               "net.bus.drop.dead_sender",
                               "net.bus.drop.dead_receiver",
                               "net.bus.drop.out_of_range",
                               "net.bus.drop.link_loss_draw",
                               "net.bus.drop.ttl_expired"}) {
        if (grid.counter(name) != full.counter(name)) {
          std::fprintf(stderr,
                       "EQUIVALENCE FAILURE cma.n%zu.%s: %s differs "
                       "(grid %llu vs full %llu)\n",
                       n, model.c_str(), name,
                       static_cast<unsigned long long>(grid.counter(name)),
                       static_cast<unsigned long long>(full.counter(name)));
          ++failures;
        }
      }
      std::printf(
          "cma n=%-5zu %-8s attempts/slot: full %.0f -> grid %.0f "
          "(%.1fx), wall %.0f ms -> %.0f ms\n",
          n, model.c_str(), full.derived[0].second, grid.derived[0].second,
          ratio(full.derived[0].second, grid.derived[0].second),
          full.wall_ms, grid.wall_ms);
    }
  }

  // Sharded CMA: the tile-sharded slot schedule against the unsharded
  // grid-pruned seed path at production scale.  Interleaved pair sampling
  // (the FRA win-margin protocol): speedup_vs_unsharded is the median of
  // per-repeat paired ratios, so machine drift cancels pairwise.  The pair
  // doubles as the bit-identity oracle — same trajectories, same delivery
  // and drop-taxonomy counters, fewer transmit attempts.
  {
    const std::size_t shard_n = quick ? 2000 : 10000;
    const std::size_t shard_slots = quick ? 6 : 10;
    const num::Rect region = shard_region(shard_n);
    const auto env = shard_env(region);
    std::vector<geo::Vec2> sharded_pos, unsharded_pos;
    std::vector<double> pair_ratios;
    auto [sharded, unsharded] = timed_repeat_pair(
        repeats,
        [&] {
          return run_cma_sharded(env, region, shard_n, shard_slots,
                                 /*sharded=*/true, sharded_pos);
        },
        [&] {
          return run_cma_sharded(env, region, shard_n, shard_slots,
                                 /*sharded=*/false, unsharded_pos);
        },
        &pair_ratios);
    std::sort(pair_ratios.begin(), pair_ratios.end());
    const double speedup = exact_quantile(pair_ratios, 0.5);
    sharded.derived.emplace_back("speedup_vs_unsharded", speedup);
    sharded.derived.emplace_back(
        "attempt_reduction_vs_unsharded",
        ratio(static_cast<double>(
                  unsharded.counter("net.bus.transmit_attempts")),
              static_cast<double>(
                  sharded.counter("net.bus.transmit_attempts"))));
    // The sharded schedule earns its keep or fails loudly: matching once
    // per slot (reused by both rounds) and transmitting only in-range
    // pairs must not lose to the per-message grid probe it bypasses.
    if (speedup < 1.0) {
      sharded.derived.emplace_back("shard_degraded", 1.0);
      std::fprintf(stderr,
                   "warning: %s shard degraded — speedup_vs_unsharded "
                   "%.3f < 1.0\n",
                   sharded.id.c_str(), speedup);
    }
    records.push_back(sharded);
    records.push_back(unsharded);
    if (!same_positions(sharded_pos, unsharded_pos)) {
      std::fprintf(stderr,
                   "EQUIVALENCE FAILURE cma.n%zu.disk.sharded: sharded and "
                   "unsharded schedules produced different trajectories\n",
                   shard_n);
      ++failures;
    }
    for (const char* name : {"net.bus.deliveries",
                             "net.bus.delivery_failures",
                             "net.bus.messages_sent",
                             "net.bus.drops_total",
                             "net.bus.drop.dead_sender",
                             "net.bus.drop.dead_receiver",
                             "net.bus.drop.out_of_range",
                             "net.bus.drop.link_loss_draw",
                             "net.bus.drop.ttl_expired",
                             "net.bus.beacon_delta_sent",
                             "net.bus.beacon_full_sent",
                             "net.bus.beacon_delta_hits",
                             "net.bus.beacon_payload_entries"}) {
      if (sharded.counter(name) != unsharded.counter(name)) {
        std::fprintf(
            stderr,
            "EQUIVALENCE FAILURE cma.n%zu.disk.sharded: %s differs "
            "(sharded %llu vs unsharded %llu)\n",
            shard_n, name,
            static_cast<unsigned long long>(sharded.counter(name)),
            static_cast<unsigned long long>(unsharded.counter(name)));
        ++failures;
      }
    }
    std::printf(
        "cma n=%-5zu sharded  attempts/slot: unsharded %.0f -> sharded "
        "%.0f (%.1fx), speedup x%.2f, wall %.0f ms -> %.0f ms\n",
        shard_n, unsharded.derived[0].second, sharded.derived[0].second,
        ratio(unsharded.derived[0].second, sharded.derived[0].second),
        speedup, unsharded.wall_ms, sharded.wall_ms);
  }

  // Delta evaluation: one FRA deployment, both point-location engines,
  // bit-identical deltas required.  Resolution 256 keeps the lattice big
  // enough that the walk engine's per-point locates dominate.
  {
    core::FraPlanner planner;  // Heap engine, the default.
    const core::Deployment plan = planner.plan(
        frame, core::PlanRequest{bench::kRegion, 200, bench::kRc});
    const std::size_t res = 256;
    double delta_walk = 0.0;
    double delta_raster = 0.0;
    const Record walk = timed_repeat(repeats, [&] {
      return run_delta_eval(frame, plan.positions, res,
                            core::DeltaEngine::kWalk, delta_walk);
    });
    records.push_back(walk);
    const Record raster = timed_repeat(repeats, [&] {
      return run_delta_eval(frame, plan.positions, res,
                            core::DeltaEngine::kRaster, delta_raster);
    });
    records.push_back(raster);
    if (delta_walk != delta_raster) {
      std::fprintf(stderr,
                   "EQUIVALENCE FAILURE delta.res%zu: walk %.17g vs raster "
                   "%.17g\n",
                   res, delta_walk, delta_raster);
      ++failures;
    }
    std::printf(
        "delta res=%-4zu locates: walk %llu -> raster %llu (%.0fx), "
        "wall %.1f ms -> %.1f ms\n",
        res,
        static_cast<unsigned long long>(
            walk.counter("geometry.delaunay.locates")),
        static_cast<unsigned long long>(
            raster.counter("geometry.delaunay.locates")),
        ratio(static_cast<double>(walk.counter("geometry.delaunay.locates")),
              static_cast<double>(
                  raster.counter("geometry.delaunay.locates"))),
        walk.wall_ms, raster.wall_ms);

    // Cavity-local tracker: the same plan with FraConfig::track_delta set
    // yields the same deployment, and its final tracked value must be
    // bit-identical to the full raster sweep just measured — that is the
    // tracker's oracle protocol (DESIGN.md §13).
    double delta_inc = 0.0;
    std::vector<geo::Vec2> inc_pos;
    const Record inc = timed_repeat(repeats, [&] {
      return run_delta_incremental(frame, 200, res, delta_inc, inc_pos);
    });
    records.push_back(inc);
    if (!same_positions(inc_pos, plan.positions)) {
      std::fprintf(stderr,
                   "EQUIVALENCE FAILURE %s: tracked plan selected a "
                   "different deployment than the untracked plan\n",
                   inc.id.c_str());
      ++failures;
    }
    if (delta_inc != delta_raster) {
      std::fprintf(stderr,
                   "EQUIVALENCE FAILURE %s: tracked %.17g vs full raster "
                   "sweep %.17g\n",
                   inc.id.c_str(), delta_inc, delta_raster);
      ++failures;
    }
    const double* savings = inc.derived_value("full_sweep_savings");
    std::printf(
        "delta incremental k=200 res=%zu: %llu events re-evaluated %llu "
        "lattice points (%.1fx fewer than per-event full sweeps)\n",
        res,
        static_cast<unsigned long long>(
            inc.counter("core.delta.inc_events")),
        static_cast<unsigned long long>(
            inc.counter("core.delta.inc_points")),
        savings != nullptr ? *savings : 0.0);
  }

  // Reference-lattice cache: the fig10-style sweep — several deployments
  // evaluated against one frame must sample the reference once and stay
  // bit-identical to the uncached metric.
  {
    constexpr std::size_t kDeployments = 6;
    std::vector<std::vector<geo::Vec2>> deployments;
    for (std::size_t i = 0; i < kDeployments; ++i) {
      core::RandomPlanner rnd(100 + i);
      deployments.push_back(
          rnd.plan(frame, core::PlanRequest{bench::kRegion, 60, bench::kRc})
              .positions);
    }
    std::vector<double> uncached_deltas;
    {
      const core::DeltaMetric plain = bench::canonical_metric();
      for (const auto& positions : deployments) {
        uncached_deltas.push_back(plain.delta_of_deployment(
            frame, positions, core::CornerPolicy::kFieldValue));
      }
    }
    std::vector<double> cached_deltas;
    const Record sweep = timed_repeat(repeats, [&] {
      return run_delta_refcache_sweep(frame, deployments, cached_deltas);
    });
    records.push_back(sweep);
    for (std::size_t i = 0; i < kDeployments; ++i) {
      if (cached_deltas[i] != uncached_deltas[i]) {
        std::fprintf(stderr,
                     "EQUIVALENCE FAILURE %s: deployment %zu cached %.17g "
                     "vs uncached %.17g\n",
                     sweep.id.c_str(), i, cached_deltas[i],
                     uncached_deltas[i]);
        ++failures;
      }
    }
    std::printf(
        "delta refcache m=%zu: %llu hit(s), %llu miss(es), "
        "batched rows %llu\n",
        kDeployments,
        static_cast<unsigned long long>(
            sweep.counter("core.delta.ref_cache_hits")),
        static_cast<unsigned long long>(
            sweep.counter("core.delta.ref_cache_misses")),
        static_cast<unsigned long long>(
            sweep.counter("core.delta.batch_rows")));
  }

  // Planner service: the same deterministic job mix through the service
  // (batched on the pool) and as a serial loop of direct calls, at pool
  // sizes 1 and 4.  The serial half doubles as the bit-identity oracle.
  // The timeline stays disarmed across the whole section: concurrent jobs
  // would interleave counter deltas across intervals meaninglessly, and
  // the service's determinism contract (DESIGN.md §15) excludes armed
  // concurrent batches.
  {
#if defined(CPS_OBS_ENABLED)
    obs::timeline().set_armed(false);
#endif
    const std::size_t prev_threads = par::thread_count();
    const ServiceMix mix = make_service_mix(
        quick,
        std::make_shared<field::FieldSlice>(env, bench::reference_time()));
    std::vector<std::tuple<std::size_t, Record, ServiceObs>> service_runs;
    for (const std::size_t t : {std::size_t{1}, std::size_t{4}}) {
      par::set_thread_count(t);
      std::vector<double> service_deltas, serial_deltas;
      std::vector<std::vector<geo::Vec2>> service_plans, serial_plans;
      bool service_ok = true;
      ServiceObs sobs;
      std::vector<double> pair_ratios;
      auto [service, serial] = timed_repeat_pair(
          repeats,
          [&] {
            return run_service_mix(mix, t, service_deltas, service_plans,
                                   service_ok, sobs);
          },
          [&] {
            return run_serial_mix(mix, t, serial_deltas, serial_plans);
          },
          &pair_ratios);
      std::sort(pair_ratios.begin(), pair_ratios.end());
      const double speedup = exact_quantile(pair_ratios, 0.5);
      service.derived.emplace_back("speedup_vs_serial", speedup);
      if (speedup < 1.0) {
        service.derived.emplace_back("service_degraded", 1.0);
        std::fprintf(stderr,
                     "warning: %s service degraded — speedup_vs_serial "
                     "%.3f < 1.0\n",
                     service.id.c_str(), speedup);
      }
      if (!service_ok) {
        std::fprintf(stderr,
                     "EQUIVALENCE FAILURE %s: one or more jobs reported "
                     "errors\n",
                     service.id.c_str());
        ++failures;
      }
      if (service_deltas.size() != serial_deltas.size()) {
        std::fprintf(stderr,
                     "EQUIVALENCE FAILURE %s: %zu results vs %zu direct\n",
                     service.id.c_str(), service_deltas.size(),
                     serial_deltas.size());
        ++failures;
      } else {
        for (std::size_t i = 0; i < service_deltas.size(); ++i) {
          if (service_deltas[i] != serial_deltas[i]) {
            std::fprintf(stderr,
                         "EQUIVALENCE FAILURE %s: job %zu delta %.17g vs "
                         "direct %.17g\n",
                         service.id.c_str(), i, service_deltas[i],
                         serial_deltas[i]);
            ++failures;
          }
        }
      }
      if (service_plans.size() != serial_plans.size()) {
        std::fprintf(stderr,
                     "EQUIVALENCE FAILURE %s: %zu plans vs %zu direct\n",
                     service.id.c_str(), service_plans.size(),
                     serial_plans.size());
        ++failures;
      } else {
        for (std::size_t i = 0; i < service_plans.size(); ++i) {
          if (!same_positions(service_plans[i], serial_plans[i])) {
            std::fprintf(stderr,
                         "EQUIVALENCE FAILURE %s: plan %zu selected a "
                         "different deployment than the direct planner\n",
                         service.id.c_str(), i);
            ++failures;
          }
        }
      }
      const double* p50 = service.derived_value("job_latency_p50_ms");
      const double* p99 = service.derived_value("job_latency_p99_ms");
      std::printf(
          "service t=%zu %zu jobs: %.0f jobs/s (x%.2f vs serial), "
          "job p50 %.2f ms p99 %.2f ms, wall %.0f ms -> %.0f ms\n",
          t, mix.total(),
          service.derived_value("throughput_jps") != nullptr
              ? *service.derived_value("throughput_jps")
              : 0.0,
          speedup, p50 != nullptr ? *p50 : 0.0, p99 != nullptr ? *p99 : 0.0,
          serial.wall_ms, service.wall_ms);
      records.push_back(service);
      records.push_back(serial);
      service_runs.emplace_back(t, std::move(service), sobs);
    }
    par::set_thread_count(prev_threads);
#if defined(CPS_OBS_ENABLED)
    obs::timeline().set_armed(true);
#endif
    write_service_sidecar(bench::output_dir() + "/perf_service_metrics.json",
                          quick ? "quick" : "full", service_runs);
  }

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "bench_perf: cannot write %s\n", out_path.c_str());
    return 1;
  }
  write_json(out, quick ? "quick" : "full", records);
  std::printf("wrote %s (%zu records)\n", out_path.c_str(), records.size());

  if (failures > 0) {
    std::fprintf(stderr, "bench_perf: %d equivalence failure(s)\n", failures);
    return 1;
  }
  if (!baseline_path.empty()) {
    return check_against_baseline(baseline_path, records);
  }
  return 0;
}
