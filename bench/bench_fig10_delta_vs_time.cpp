// Fig. 10 — delta versus time for 100 mobile nodes running CMA.
//
// The paper's claims: delta decreases gradually from 10:00, the movement
// converges from ~10:30, and the converged CMA delta is only ~16% above
// FRA's (the price of purely local information).
//
// This harness reproduces the series for all three LCM variants (see
// core/cma.hpp): the paper's literal chase rule, the strict midpoint-disk
// invariant, and no maintenance at all — because a key reproduction
// finding (EXPERIMENTS.md) is that the paper's published curve is only
// reachable when the connectivity constraint is enforced loosely: the
// literal rule fragments the radio graph while delta drops, and the
// provably-safe rule keeps the graph connected but pins the taut lattice.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string_view>
#include <vector>

#include "common.hpp"
#include "core/cma.hpp"
#include "core/cma_delta.hpp"
#include "core/fra.hpp"
#include "numerics/stats.hpp"
#include "viz/series.hpp"

int main(int argc, char** argv) {
  using namespace cps;
  bench::ObsSession obs_session("fig10_delta_vs_time");
  bench::configure_threads(argc, argv);
  // Opt-in: measure the per-slot series through the cavity-local
  // CmaDeltaTracker (one persistent triangulation fed churn events)
  // instead of a from-scratch reconstruction + sweep per slot.  The
  // tracked series matches its own triangulation bit-exactly but its
  // Delaunay history differs from the from-scratch path, so cocircular
  // tie-breaks may differ — hence a flag, not the default.
  bool incremental = false;
  for (int a = 1; a < argc; ++a) {
    if (std::string_view(argv[a]) == "--incremental") incremental = true;
  }
  bench::print_header("Fig. 10", "delta vs time, CMA 10:00 -> 10:45");
  if (incremental) {
    std::printf("(incremental: per-slot delta via CmaDeltaTracker)\n");
  }

  const auto env = bench::canonical_field();
  const auto recorded = env.record(trace::minutes(10, 0),
                                   trace::minutes(10, 45), 5.0, 101, 101);
  const core::DeltaMetric metric = bench::canonical_metric();

  // FRA reference (the paper compares the converged CMA against it).
  core::FraConfig fra_cfg;
  core::FraPlanner fra(fra_cfg);
  const field::FieldSlice frame_1045(recorded, trace::minutes(10, 45));
  const double fra_delta = metric.delta_of_deployment(
      frame_1045,
      fra.plan(frame_1045, core::PlanRequest{bench::kRegion, 100, bench::kRc})
          .positions,
      core::CornerPolicy::kFieldValue);

  struct Variant {
    const char* name;
    core::LcmMode mode;
  };
  const std::vector<Variant> variants{
      {"paper-LCM", core::LcmMode::kPaper},
      {"strict-LCM", core::LcmMode::kStrict},
      {"no-LCM", core::LcmMode::kOff},
  };

  viz::Series time_col{"minute", {}};
  for (int t = 0; t <= 45; ++t) {
    time_col.values.push_back(static_cast<double>(t));
  }
  std::vector<viz::Series> columns{time_col};
  std::vector<viz::Series> conn_columns{time_col};

  for (const auto& variant : variants) {
    core::CmaConfig cfg;
    cfg.rc = bench::kRc * 1.0001;  // Keep the pitch-10 grid connected.
    cfg.lcm = variant.mode;
    core::CmaSimulation sim(
        recorded, bench::kRegion,
        core::GridPlanner::make_grid(bench::kRegion, 100).positions, cfg,
        trace::minutes(10, 0));
    viz::Series deltas{variant.name, {}};
    viz::Series connected{variant.name, {}};
    std::unique_ptr<core::CmaDeltaTracker> tracker;
    if (incremental) {
      tracker = std::make_unique<core::CmaDeltaTracker>(sim, metric);
    }
    deltas.values.push_back(incremental ? tracker->value()
                                        : sim.current_delta(metric));
    connected.values.push_back(sim.largest_component_fraction());
    for (int t = 1; t <= 45; ++t) {
      sim.step();
      deltas.values.push_back(incremental ? tracker->update(sim)
                                          : sim.current_delta(metric));
      connected.values.push_back(sim.largest_component_fraction());
    }
    if (tracker != nullptr) {
      const auto& ts = tracker->stats();
      const auto& ds = tracker->delta_stats();
      const double full = static_cast<double>(ds.events) *
                          static_cast<double>(ds.full_sweep_points);
      std::printf(
          "%-10s incremental: %zu moves, %zu deaths, %zu revivals; "
          "%zu delta events re-evaluated %zu lattice points "
          "(%.1fx fewer than per-event full sweeps; + %zu reference "
          "retargets)\n",
          variant.name, ts.node_moves, ts.node_deaths, ts.node_revivals,
          ds.events, ds.points_reevaluated,
          full / static_cast<double>(
                     std::max<std::size_t>(ds.points_reevaluated, 1)),
          ds.retargets);
    }
    columns.push_back(std::move(deltas));
    conn_columns.push_back(std::move(connected));
  }

  std::printf("delta(t), minutes after 10:00 (FRA reference = %.1f):\n%s\n",
              fra_delta, viz::format_table(columns, 1).c_str());
  std::printf("largest-component fraction (connectivity health):\n%s\n",
              viz::format_table(conn_columns, 2).c_str());

  for (std::size_t v = 1; v < columns.size(); ++v) {
    const auto& series = columns[v].values;
    const std::size_t settle = num::convergence_index(series, 0.08);
    std::printf("%-10s delta: start=%.1f end=%.1f (%.0f%% of start), "
                "settles ~minute %zu, end/FRA = %.2f; sparkline %s\n",
                columns[v].name.c_str(), series.front(), series.back(),
                100.0 * series.back() / series.front(), settle,
                series.back() / fra_delta,
                viz::sparkline(series).c_str());
  }
  std::printf("\npaper expectation: delta decreases gradually, converges "
              "~30 minutes in, settling near FRA + 16%%\n");
  return 0;
}
