// Extension G — a stronger baseline panel for Fig. 7.
//
// The paper compares FRA only against random scatter.  This bench adds
// the uniform grid and greedy farthest-point (max-min) coverage — the
// standard field-blind placements — and reports connectivity health
// (components, articulation points) alongside delta, which the paper's
// comparison leaves implicit.
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "core/fra.hpp"
#include "graph/connectivity.hpp"
#include "viz/series.hpp"

int main(int argc, char** argv) {
  using namespace cps;
  bench::ObsSession obs_session("extension_baselines");
  bench::configure_threads(argc, argv);
  bench::print_header("Extension G", "baseline panel: delta + robustness");

  const auto env = bench::canonical_field();
  const field::FieldSlice frame(env, bench::reference_time());
  const core::DeltaMetric metric = bench::canonical_metric();
  const auto corners = core::CornerPolicy::kFieldValue;

  core::FraConfig cfg;
  core::FraPlanner fra(cfg);
  core::RandomPlanner random(23);
  core::GridPlanner grid;
  core::FarthestPointPlanner farthest;

  struct Entry {
    const char* name;
    core::Planner* planner;
  };
  std::vector<Entry> planners{{"FRA", &fra},
                              {"random", &random},
                              {"grid", &grid},
                              {"farthest", &farthest}};

  for (const std::size_t k : {30u, 60u, 100u}) {
    std::printf("k = %zu\n", k);
    std::printf("  planner    delta   components  articulation-points\n");
    for (const auto& entry : planners) {
      const auto plan = entry.planner->plan(
          frame, core::PlanRequest{bench::kRegion, k, bench::kRc});
      const graph::GeometricGraph g(plan.positions, bench::kRc);
      std::printf("  %-9s %7.1f  %10zu  %19zu\n", entry.name,
                  metric.delta_of_deployment(frame, plan.positions, corners),
                  g.component_count(),
                  graph::single_point_of_failure_count(g));
    }
    std::printf("\n");
  }
  std::printf("reading: FRA should beat every field-blind baseline on "
              "delta while being the only single-component topology; its "
              "relay chains, however, are articulation-point heavy — the "
              "robustness cost of minimal connectivity, invisible in the "
              "paper's Fig. 7.\n");
  return 0;
}
