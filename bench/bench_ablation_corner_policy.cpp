// Ablation D — reconstruction corner policy.
//
// The Delaunay scaffolding corners need z values; DESIGN.md argues OSD
// evaluations may pin them from the (known) referential surface while a
// mobile deployment can only extrapolate from its nearest sample.  This
// sweep measures how much that choice matters per planner — clustered
// deployments (FRA at small k) are hurt badly by nearest-sample corners,
// spread ones barely notice.
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "core/fra.hpp"
#include "viz/series.hpp"

int main(int argc, char** argv) {
  using namespace cps;
  bench::ObsSession obs_session("ablation_corner_policy");
  bench::configure_threads(argc, argv);
  bench::print_header("Ablation D", "corner policy: nearest-sample vs field");

  const auto env = bench::canonical_field();
  const field::FieldSlice frame(env, bench::reference_time());
  const core::DeltaMetric metric = bench::canonical_metric();

  viz::Series k_col{"k", {}};
  viz::Series fra_near{"FRA(nearest)", {}};
  viz::Series fra_field{"FRA(field)", {}};
  viz::Series rnd_near{"rand(nearest)", {}};
  viz::Series rnd_field{"rand(field)", {}};

  core::FraConfig cfg;
  cfg.error_grid = 50;
  core::FraPlanner fra(cfg);
  core::RandomPlanner random(11);
  for (const std::size_t k : {20u, 40u, 100u}) {
    const auto request = core::PlanRequest{bench::kRegion, k, bench::kRc};
    const auto fra_plan = fra.plan(frame, request);
    const auto rnd_plan = random.plan(frame, request);
    k_col.values.push_back(static_cast<double>(k));
    fra_near.values.push_back(metric.delta_of_deployment(
        frame, fra_plan.positions, core::CornerPolicy::kNearestSample));
    fra_field.values.push_back(metric.delta_of_deployment(
        frame, fra_plan.positions, core::CornerPolicy::kFieldValue));
    rnd_near.values.push_back(metric.delta_of_deployment(
        frame, rnd_plan.positions, core::CornerPolicy::kNearestSample));
    rnd_field.values.push_back(metric.delta_of_deployment(
        frame, rnd_plan.positions, core::CornerPolicy::kFieldValue));
  }

  const std::vector<viz::Series> table{k_col, fra_near, fra_field, rnd_near,
                                       rnd_field};
  std::printf("%s\n", viz::format_table(table, 1).c_str());
  std::printf("reading: nearest-sample corners punish clustered layouts "
              "(small-k FRA) by extrapolating a cluster's value across "
              "the whole region; with known-field corners the planner "
              "ranking matches the paper's Fig. 7.\n");
  return 0;
}
