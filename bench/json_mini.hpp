// Minimal recursive-descent JSON reader for the perf-trajectory gate.
//
// bench_perf --check parses a checked-in BENCH_baseline.json and compares
// its algorithmic counters against a fresh in-process run.  The baseline
// is machine-written by bench_perf itself (no escapes beyond \" in keys,
// plain numbers), so this reader supports exactly standard JSON with
// doubles for all numbers — counters stay far below 2^53, where doubles
// are exact.  It is a tool-side helper: nothing in src/ depends on it.
#pragma once

#include <cctype>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace cps::bench {

/// One parsed JSON value (tree-owning; copies are deep).
struct Json {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Json> array;
  std::map<std::string, Json> object;

  bool has(const std::string& key) const {
    return kind == Kind::kObject && object.count(key) > 0;
  }
  const Json& at(const std::string& key) const {
    if (!has(key)) throw std::runtime_error("json: missing key " + key);
    return object.at(key);
  }
};

/// Parses one JSON document; std::runtime_error on malformed input.
class JsonParser {
 public:
  static Json parse(const std::string& text) {
    JsonParser p(text);
    const Json v = p.value();
    p.skip_ws();
    if (p.pos_ != text.size()) throw std::runtime_error("json: trailing data");
    return v;
  }

 private:
  explicit JsonParser(const std::string& text) : text_(text) {}

  [[noreturn]] void fail(const char* what) const {
    throw std::runtime_error("json: " + std::string(what) + " at byte " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Json value() {
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"': {
        Json v;
        v.kind = Json::Kind::kString;
        v.string = string();
        return v;
      }
      case 't':
      case 'f': {
        Json v;
        v.kind = Json::Kind::kBool;
        v.boolean = text_[pos_] == 't';
        if (!consume_literal(v.boolean ? "true" : "false")) fail("literal");
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail("literal");
        return Json{};
      }
      default:
        return number();
    }
  }

  Json object() {
    expect('{');
    Json v;
    v.kind = Json::Kind::kObject;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      const std::string key = string();
      expect(':');
      v.object.emplace(key, value());
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected , or }");
    }
  }

  Json array() {
    expect('[');
    Json v;
    v.kind = Json::Kind::kArray;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected , or ]");
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("bad escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          default: fail("unsupported escape");  // \uXXXX never emitted here.
        }
      } else {
        out.push_back(c);
      }
    }
    fail("unterminated string");
  }

  Json number() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected number");
    Json v;
    v.kind = Json::Kind::kNumber;
    std::size_t used = 0;
    v.number = std::stod(text_.substr(start, pos_ - start), &used);
    if (used != pos_ - start) fail("malformed number");
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace cps::bench
