// Uniform-grid spatial index for 2D radius queries.
//
// The limited-range-interaction structure the paper's workloads share —
// disk-graph adjacency (Definition 3.1), CMA neighbour tables, FRA's
// nearest-placed-node pricing — is "find everything within r of p".  The
// all-pairs O(n^2) scans that answered it in the seed become the hot path
// at production scale; this index answers each query in O(points in the
// 3x3 cell neighbourhood) after an O(n) counting-sort build.
//
// Layout is CSR: point ids bucketed by cell, cells row-major over the
// bounding box, ids ascending inside each cell.  The build and every
// iteration order are fully deterministic, so callers can preserve
// bit-identical results versus the scans they replace.  The index is
// immutable after construction and safe for concurrent queries.
//
// Cell sizing: pass the query radius (or the dominant one).  Queries with
// radius <= cell_size visit at most 9 cells; larger radii degrade
// gracefully to the covering cell rectangle.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "geometry/vec2.hpp"
#include "numerics/quadrature.hpp"

namespace cps::par {

class SpatialHash {
 public:
  /// Indexes `points` with square cells of side `cell_size` (> 0,
  /// std::invalid_argument otherwise) over their bounding box.  Empty
  /// point sets are valid (all queries yield nothing).
  SpatialHash(std::span<const geo::Vec2> points, double cell_size)
      : cell_(cell_size) {
    if (!(cell_size > 0.0)) {
      throw std::invalid_argument("SpatialHash: cell_size <= 0");
    }
    if (points.empty()) {
      nx_ = ny_ = 0;
      starts_.assign(1, 0);
      return;
    }
    double min_x = points[0].x, max_x = points[0].x;
    double min_y = points[0].y, max_y = points[0].y;
    for (const auto& p : points) {
      min_x = std::min(min_x, p.x);
      max_x = std::max(max_x, p.x);
      min_y = std::min(min_y, p.y);
      max_y = std::max(max_y, p.y);
    }
    x0_ = min_x;
    y0_ = min_y;
    nx_ = grid_extent(max_x - min_x);
    ny_ = grid_extent(max_y - min_y);

    // Counting sort by cell id; iterating points in index order keeps ids
    // ascending inside every cell.
    const std::size_t cells = nx_ * ny_;
    std::vector<std::uint32_t> cell_of(points.size());
    starts_.assign(cells + 1, 0);
    for (std::size_t i = 0; i < points.size(); ++i) {
      cell_of[i] = static_cast<std::uint32_t>(
          cell_index(col_of(points[i].x), row_of(points[i].y)));
      ++starts_[cell_of[i] + 1];
    }
    for (std::size_t c = 0; c < cells; ++c) starts_[c + 1] += starts_[c];
    ids_.resize(points.size());
    std::vector<std::uint32_t> cursor(starts_.begin(), starts_.end() - 1);
    for (std::size_t i = 0; i < points.size(); ++i) {
      ids_[cursor[cell_of[i]]++] = static_cast<std::uint32_t>(i);
    }
  }

  std::size_t cell_count() const noexcept { return nx_ * ny_; }
  std::size_t cols() const noexcept { return nx_; }
  std::size_t rows() const noexcept { return ny_; }
  double cell_size() const noexcept { return cell_; }

  /// Point ids bucketed in cell c (ascending).
  std::span<const std::uint32_t> cell_members(std::size_t c) const {
    return {ids_.data() + starts_[c], ids_.data() + starts_[c + 1]};
  }

  /// Geometric bounds of cell c (closed rectangle).
  num::Rect cell_bounds(std::size_t c) const noexcept {
    const std::size_t col = c % nx_;
    const std::size_t row = c / nx_;
    return num::Rect{x0_ + static_cast<double>(col) * cell_,
                     y0_ + static_cast<double>(row) * cell_,
                     x0_ + static_cast<double>(col + 1) * cell_,
                     y0_ + static_cast<double>(row + 1) * cell_};
  }

  /// Squared distance from p to the closed rectangle of cell c (0 inside).
  double cell_distance_sq(geo::Vec2 p, std::size_t c) const noexcept {
    const num::Rect b = cell_bounds(c);
    const double dx =
        p.x < b.x0 ? b.x0 - p.x : (p.x > b.x1 ? p.x - b.x1 : 0.0);
    const double dy =
        p.y < b.y0 ? b.y0 - p.y : (p.y > b.y1 ? p.y - b.y1 : 0.0);
    return dx * dx + dy * dy;
  }

  /// Calls fn(id) for every indexed point whose cell intersects the disk
  /// (p, radius) — a superset of the points within `radius`; callers apply
  /// the exact distance test.  Cells are visited row-major, ids ascending
  /// within each cell, so the visit order is deterministic.
  template <typename Fn>
  void for_each_candidate(geo::Vec2 p, double radius, Fn&& fn) const {
    if (ids_.empty()) return;
    const std::size_t c0 = col_of(p.x - radius);
    const std::size_t c1 = col_of(p.x + radius);
    const std::size_t r0 = row_of(p.y - radius);
    const std::size_t r1 = row_of(p.y + radius);
    for (std::size_t row = r0; row <= r1; ++row) {
      for (std::size_t col = c0; col <= c1; ++col) {
        for (const std::uint32_t id : cell_members(cell_index(col, row))) {
          fn(id);
        }
      }
    }
  }

  /// Appends to `out` the ids of every indexed point whose cell intersects
  /// the disk (p, radius) — the same candidate superset for_each_candidate
  /// visits — and returns the number of cells probed.  Ids arrive cell by
  /// cell (row-major, ascending within each cell); callers needing a
  /// globally ascending order sort the result.
  std::size_t collect_candidates(geo::Vec2 p, double radius,
                                 std::vector<std::uint32_t>& out) const {
    if (ids_.empty()) return 0;
    const std::size_t c0 = col_of(p.x - radius);
    const std::size_t c1 = col_of(p.x + radius);
    const std::size_t r0 = row_of(p.y - radius);
    const std::size_t r1 = row_of(p.y + radius);
    std::size_t cells = 0;
    for (std::size_t row = r0; row <= r1; ++row) {
      for (std::size_t col = c0; col <= c1; ++col) {
        ++cells;
        const auto members = cell_members(cell_index(col, row));
        out.insert(out.end(), members.begin(), members.end());
      }
    }
    return cells;
  }

  /// Like collect_candidates, but skips whole cells whose closed rectangle
  /// lies strictly outside the disk (p, radius) — typically the corner
  /// cells of the 3x3 neighbourhood, ~15% of candidates at uniform
  /// density.  Still a superset of the points within `radius`: callers
  /// apply the exact distance test.  Returns the number of cells whose
  /// members were appended.
  std::size_t collect_candidates_pruned(
      geo::Vec2 p, double radius, std::vector<std::uint32_t>& out) const {
    if (ids_.empty()) return 0;
    const std::size_t c0 = col_of(p.x - radius);
    const std::size_t c1 = col_of(p.x + radius);
    const std::size_t r0 = row_of(p.y - radius);
    const std::size_t r1 = row_of(p.y + radius);
    const double r_sq = radius * radius;
    std::size_t cells = 0;
    for (std::size_t row = r0; row <= r1; ++row) {
      for (std::size_t col = c0; col <= c1; ++col) {
        const std::size_t c = cell_index(col, row);
        if (cell_distance_sq(p, c) > r_sq) continue;
        ++cells;
        const auto members = cell_members(c);
        out.insert(out.end(), members.begin(), members.end());
      }
    }
    return cells;
  }

 private:
  std::size_t grid_extent(double span) const noexcept {
    const double cells = std::floor(span / cell_) + 1.0;
    return cells < 1.0 ? 1 : static_cast<std::size_t>(cells);
  }

  std::size_t col_of(double x) const noexcept {
    const double c = std::floor((x - x0_) / cell_);
    if (!(c > 0.0)) return 0;
    const auto i = static_cast<std::size_t>(c);
    return i >= nx_ ? nx_ - 1 : i;
  }

  std::size_t row_of(double y) const noexcept {
    const double r = std::floor((y - y0_) / cell_);
    if (!(r > 0.0)) return 0;
    const auto i = static_cast<std::size_t>(r);
    return i >= ny_ ? ny_ - 1 : i;
  }

  std::size_t cell_index(std::size_t col, std::size_t row) const noexcept {
    return row * nx_ + col;
  }

  double cell_ = 1.0;
  double x0_ = 0.0;
  double y0_ = 0.0;
  std::size_t nx_ = 0;
  std::size_t ny_ = 0;
  std::vector<std::uint32_t> starts_;  // CSR offsets, size cells + 1.
  std::vector<std::uint32_t> ids_;     // Point ids grouped by cell.
};

}  // namespace cps::par
