#include "parallel/thread_pool.hpp"

#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "obs/obs.hpp"

namespace cps::par {
namespace {

// True while the current thread is executing a pool chunk; run() calls
// made from such a context (nested parallelism) execute inline instead of
// deadlocking on the single-region pool.
thread_local bool t_in_region = false;

std::size_t env_thread_count() noexcept {
  const char* e = std::getenv("CPS_THREADS");
  if (e == nullptr || *e == '\0') return 0;
  char* end = nullptr;
  const unsigned long v = std::strtoul(e, &end, 10);
  if (end == e || v == 0) return 0;
  return static_cast<std::size_t>(v);
}

}  // namespace

std::size_t hardware_threads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

struct ThreadPool::Impl {
  std::mutex mu;
  std::condition_variable work_cv;   // Workers park here between regions.
  std::condition_variable done_cv;   // run() waits for region completion.
  std::vector<std::thread> workers;

  // Region state.  Written by run() under mu while no worker is draining
  // (run() returns only once `active` is back to 0, so a worker can never
  // observe the next region's fields mid-write).  One region at a time;
  // concurrent run() callers serialise on region_mu.
  std::mutex region_mu;
  std::uint64_t generation = 0;      // Guarded by mu.
  void (*fn)(void*, std::size_t) = nullptr;
  void* ctx = nullptr;
  std::size_t chunk_count = 0;
  std::atomic<std::size_t> next_chunk{0};
  std::size_t completed = 0;         // Guarded by mu.
  std::size_t active = 0;            // Workers inside drain(); guarded by mu.
  std::exception_ptr first_error;    // Guarded by mu.
  bool stop = false;                 // Guarded by mu.

  // Pulls chunks off the shared counter until the region is exhausted.
  // Works on a snapshot of the region taken under mu, so a worker that
  // overslept one region can never read fields the next region's setup is
  // writing.  Exceptions are recorded (first wins) and the drain continues
  // so `completed` still reaches the chunk count.
  void drain(void (*f)(void*, std::size_t), void* c, std::size_t count) {
    for (;;) {
      const std::size_t chunk =
          next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= count) break;
      t_in_region = true;
      try {
        f(c, chunk);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        if (!first_error) first_error = std::current_exception();
      }
      t_in_region = false;
      {
        std::lock_guard<std::mutex> lock(mu);
        if (++completed == count) done_cv.notify_all();
      }
    }
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      void (*f)(void*, std::size_t) = nullptr;
      void* c = nullptr;
      std::size_t count = 0;
      {
        std::unique_lock<std::mutex> lock(mu);
        work_cv.wait(lock, [&] { return stop || generation != seen; });
        if (stop) return;
        seen = generation;
        f = fn;
        c = ctx;
        count = chunk_count;
        if (count == 0) continue;  // Region already fully drained and closed.
        ++active;
      }
      drain(f, c, count);
      {
        std::lock_guard<std::mutex> lock(mu);
        if (--active == 0) done_cv.notify_all();
      }
    }
  }
};

ThreadPool::ThreadPool(std::size_t threads)
    : impl_(new Impl), threads_(threads == 0 ? 1 : threads) {
  impl_->workers.reserve(threads_ - 1);
  for (std::size_t i = 0; i + 1 < threads_; ++i) {
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->stop = true;
  }
  impl_->work_cv.notify_all();
  for (auto& w : impl_->workers) w.join();
  delete impl_;
}

void ThreadPool::run(std::size_t chunk_count, void (*fn)(void*, std::size_t),
                     void* ctx) {
  if (chunk_count == 0) return;
  if (threads_ == 1 || t_in_region) {
    // Serial pool or nested region: execute inline, in chunk order.
    for (std::size_t c = 0; c < chunk_count; ++c) fn(ctx, c);
    return;
  }
#if defined(CPS_OBS_ENABLED)
  // Scheduler metrics describe the host's worker count, not the workload:
  // a serial pool runs regions inline and counts nothing.  Keep them out
  // of the timeline or its output would differ across --threads values.
  static const bool timeline_excluded = [] {
    obs::registry().exclude_from_timeline("parallel.pool.regions");
    obs::registry().exclude_from_timeline("parallel.pool.chunks");
    obs::registry().exclude_from_timeline("parallel.pool.threads");
    return true;
  }();
  (void)timeline_excluded;
#endif
  CPS_COUNT("parallel.pool.regions", 1);
  CPS_COUNT("parallel.pool.chunks", chunk_count);
  std::lock_guard<std::mutex> region(impl_->region_mu);
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->fn = fn;
    impl_->ctx = ctx;
    impl_->chunk_count = chunk_count;
    impl_->next_chunk.store(0, std::memory_order_relaxed);
    impl_->completed = 0;
    impl_->first_error = nullptr;
    ++impl_->generation;
  }
  impl_->work_cv.notify_all();
  impl_->drain(fn, ctx, chunk_count);  // The caller is a worker too.
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(impl_->mu);
    // Wait for every chunk to finish AND every worker to leave the drain
    // loop, so the next region's setup cannot race a straggler's reads.
    impl_->done_cv.wait(lock, [&] {
      return impl_->completed == impl_->chunk_count && impl_->active == 0;
    });
    error = impl_->first_error;
    // Close the region: a worker that oversleeps the notify sees count 0
    // and goes straight back to waiting.
    impl_->fn = nullptr;
    impl_->ctx = nullptr;
    impl_->chunk_count = 0;
  }
  if (error) std::rethrow_exception(error);
}

namespace {

struct ProcessPool {
  std::mutex mu;
  std::unique_ptr<ThreadPool> pool;
  std::size_t override_count = 0;  // 0 = auto (env, else hardware).

  std::size_t resolved() {
    if (override_count != 0) return override_count;
    const std::size_t env = env_thread_count();
    return env != 0 ? env : hardware_threads();
  }

  static ProcessPool& instance() {
    static ProcessPool p;
    return p;
  }
};

}  // namespace

ThreadPool& ThreadPool::process_pool() {
  ProcessPool& p = ProcessPool::instance();
  std::lock_guard<std::mutex> lock(p.mu);
  const std::size_t want = p.resolved();
  if (!p.pool || p.pool->thread_count() != want) {
    p.pool.reset();  // Join any old workers before spawning anew.
    p.pool = std::make_unique<ThreadPool>(want);
    // Host property, not workload: never in the timeline (see run()).
    obs::registry().exclude_from_timeline("parallel.pool.threads");
    CPS_GAUGE("parallel.pool.threads", want);
  }
  return *p.pool;
}

void set_thread_count(std::size_t n) {
  ProcessPool& p = ProcessPool::instance();
  std::lock_guard<std::mutex> lock(p.mu);
  p.override_count = n;
  // The pool itself is (re)built lazily by process_pool().
}

std::size_t thread_count() {
  ProcessPool& p = ProcessPool::instance();
  std::lock_guard<std::mutex> lock(p.mu);
  return p.resolved();
}

}  // namespace cps::par
