// Lane-parallelism annotations for the row kernels.
//
// CPS_SIMD expands to `#pragma omp simd` when the build compiles with
// -fopenmp-simd (see the CPS_SIMD option in the top-level CMakeLists).
// The pragma form needs no OpenMP runtime and spawns no threads — it only
// licenses the compiler to run loop iterations in vector lanes.
//
// Bit-identity contract.  Every annotated loop must satisfy:
//   * element-wise writes only — out[i] depends on index i alone, never on
//     out[j] for j != i (no reductions, no recurrences: a vectorized
//     reduction reorders floating-point addition and changes the result);
//   * the lane body is the exact scalar expression — IEEE-754 +, -, *, /
//     and sqrt are correctly rounded, so a vector lane computing the same
//     expression yields the same bits as the scalar loop;
//   * no libm transcendentals inside the loop — vectorized std::exp &co
//     route to libmvec whose results are NOT bit-identical to scalar libm.
//     Kernels split transcendentals out: a CPS_SIMD loop fills the
//     argument buffer, a plain scalar loop applies exp.
// Accumulations (delta sums, quadrature) therefore stay in their original
// serial order and only the per-element work vectorizes.
//
// The tree builds with -ffp-contract default on a baseline x86-64 target
// (SSE2, no FMA instruction), so contraction cannot introduce fused
// multiply-adds behind the scalar oracle's back; do not add -march flags
// that would change that without revisiting this contract.
#pragma once

#if defined(CPS_SIMD_ENABLED)
#define CPS_SIMD _Pragma("omp simd")
#else
#define CPS_SIMD
#endif
