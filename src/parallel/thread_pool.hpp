// Process-wide fixed thread pool with deterministic parallel loops.
//
// The parallel substrate the ROADMAP's scaling PRs stand on.  Design
// constraints, in priority order:
//
//  * Determinism.  `threads == 1` executes the exact serial loop inline —
//    bit-identical to uninstrumented serial code, zero pool involvement.
//    For `threads >= 2`, work is split into chunks whose layout depends
//    only on the problem size and the grain (never on the thread count),
//    and parallel_reduce combines per-chunk partials in ascending chunk
//    order on the calling thread.  A reduction therefore returns the same
//    bits for every thread count >= 2, and differs from the serial result
//    only where floating-point association differs (sums; argmax-style
//    reductions are exact at any thread count).
//  * No work stealing, no task graph: one blocking parallel region at a
//    time, chunks handed out through a single atomic counter.  The calling
//    thread participates, so `threads == n` means n workers total, not
//    n + 1.  Nested parallel regions run inline on the caller (no
//    deadlock, no oversubscription).
//  * Reuse.  Workers are spawned once per process (first use) and parked
//    on a condition variable between regions; a parallel region costs two
//    lock/notify handshakes, not thread churn.
//
// Sizing: `set_thread_count(n)` > env `CPS_THREADS` > hardware
// concurrency.  Call set_thread_count at startup (benches: --threads);
// resizing tears the old pool down and is NOT safe concurrently with
// in-flight parallel regions.
#pragma once

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

namespace cps::par {

/// max(1, std::thread::hardware_concurrency()).
std::size_t hardware_threads() noexcept;

/// Fixed-size blocking pool.  Most code should use the free functions
/// below (which share the process-wide instance); standalone instances
/// are for tests.
class ThreadPool {
 public:
  /// Spawns `threads - 1` workers (the caller is the remaining one).
  /// `threads` is clamped to >= 1.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const noexcept { return threads_; }

  /// Runs fn(ctx, chunk) for every chunk in [0, chunk_count), distributing
  /// chunks over the pool; the calling thread participates and the call
  /// blocks until every chunk completed.  The first exception thrown by a
  /// chunk is rethrown on the caller after the region drains.  Calls from
  /// inside a running chunk execute inline on the caller.
  void run(std::size_t chunk_count, void (*fn)(void*, std::size_t),
           void* ctx);

  template <typename F>
  void run(std::size_t chunk_count, F&& f) {
    run(
        chunk_count,
        [](void* ctx, std::size_t chunk) {
          (*static_cast<std::remove_reference_t<F>*>(ctx))(chunk);
        },
        const_cast<void*>(static_cast<const void*>(&f)));
  }

  /// The process-wide pool, created on first use with the configured size.
  static ThreadPool& process_pool();

 private:
  struct Impl;
  Impl* impl_;
  std::size_t threads_ = 1;
};

/// Overrides the process-wide pool size; 0 restores the default
/// (CPS_THREADS env, else hardware).  Recreates the pool if the size
/// changed.  Not safe concurrently with running parallel regions.
void set_thread_count(std::size_t n);

/// Resolved size the process-wide pool has (or would be created with).
std::size_t thread_count();

namespace detail {

/// Chunk grain used when callers pass 0.  Fixed (never derived from the
/// thread count) so chunk layout — and therefore reduction order — is a
/// function of the problem size alone.
inline constexpr std::size_t kDefaultGrain = 256;

inline std::size_t resolve_grain(std::size_t grain) noexcept {
  return grain == 0 ? kDefaultGrain : grain;
}

}  // namespace detail

/// Parallel loop: fn(i) for i in [0, n).  `grain` indices per chunk
/// (default detail::kDefaultGrain).  threads == 1 runs the plain serial
/// loop inline.
template <typename Fn>
void parallel_for(std::size_t n, Fn&& fn, std::size_t grain = 0) {
  if (n == 0) return;
  ThreadPool& pool = ThreadPool::process_pool();
  if (pool.thread_count() == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const std::size_t g = detail::resolve_grain(grain);
  const std::size_t chunks = (n + g - 1) / g;
  pool.run(chunks, [&](std::size_t c) {
    const std::size_t begin = c * g;
    const std::size_t end = begin + g < n ? begin + g : n;
    for (std::size_t i = begin; i < end; ++i) fn(i);
  });
}

/// Parallel loop over index ranges: fn(begin, end) per chunk.  Useful when
/// the body carries chunk-local state (e.g. a point-location hint).
/// threads == 1 runs fn(0, n) inline — the exact serial pass.
template <typename Fn>
void parallel_for_chunks(std::size_t n, Fn&& fn, std::size_t grain = 0) {
  if (n == 0) return;
  ThreadPool& pool = ThreadPool::process_pool();
  if (pool.thread_count() == 1) {
    fn(std::size_t{0}, n);
    return;
  }
  const std::size_t g = detail::resolve_grain(grain);
  const std::size_t chunks = (n + g - 1) / g;
  pool.run(chunks, [&](std::size_t c) {
    const std::size_t begin = c * g;
    fn(begin, begin + g < n ? begin + g : n);
  });
}

/// Ordered parallel reduction.  `map(begin, end)` folds one chunk
/// serially; partials are combined as combine(acc, partial) in ascending
/// chunk order on the calling thread — deterministic for every thread
/// count.  threads == 1 computes combine(identity, map(0, n)) inline.
template <typename T, typename Map, typename Combine>
T parallel_reduce(std::size_t n, T identity, Map&& map, Combine&& combine,
                  std::size_t grain = 0) {
  if (n == 0) return identity;
  ThreadPool& pool = ThreadPool::process_pool();
  if (pool.thread_count() == 1) {
    return combine(std::move(identity), map(std::size_t{0}, n));
  }
  const std::size_t g = detail::resolve_grain(grain);
  const std::size_t chunks = (n + g - 1) / g;
  std::vector<T> partial(chunks, identity);
  pool.run(chunks, [&](std::size_t c) {
    const std::size_t begin = c * g;
    partial[c] = map(begin, begin + g < n ? begin + g : n);
  });
  T acc = std::move(identity);
  for (std::size_t c = 0; c < chunks; ++c) {
    acc = combine(std::move(acc), std::move(partial[c]));
  }
  return acc;
}

/// parallel_reduce with the chunk layout pinned at EVERY thread count:
/// threads == 1 folds the same (n, grain) chunks serially in ascending
/// order instead of taking the single-chain serial shortcut, so the
/// result — float association, chunk-local state like point-location
/// hints, and any counters the map records — is bit-identical to every
/// multithreaded run.  Telemetry paths use this while the timeline is
/// armed; the plain parallel_reduce serial shortcut stays bit-identical
/// to the original serial code and remains the default everywhere else.
template <typename T, typename Map, typename Combine>
T parallel_reduce_chunked(std::size_t n, T identity, Map&& map,
                          Combine&& combine, std::size_t grain = 0) {
  if (n == 0) return identity;
  ThreadPool& pool = ThreadPool::process_pool();
  if (pool.thread_count() != 1) {
    return parallel_reduce(n, std::move(identity), std::forward<Map>(map),
                           std::forward<Combine>(combine), grain);
  }
  const std::size_t g = detail::resolve_grain(grain);
  T acc = std::move(identity);
  for (std::size_t begin = 0; begin < n; begin += g) {
    acc = combine(std::move(acc), map(begin, begin + g < n ? begin + g : n));
  }
  return acc;
}

}  // namespace cps::par
