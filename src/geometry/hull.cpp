#include "geometry/hull.hpp"

#include <algorithm>

#include "geometry/predicates.hpp"

namespace cps::geo {

std::vector<Vec2> convex_hull(std::span<const Vec2> points) {
  std::vector<Vec2> pts(points.begin(), points.end());
  std::sort(pts.begin(), pts.end(), [](Vec2 a, Vec2 b) {
    return a.x < b.x || (a.x == b.x && a.y < b.y);
  });
  pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
  if (pts.size() < 3) return pts;

  // Monotone chain: lower hull then upper hull.
  std::vector<Vec2> hull(2 * pts.size());
  std::size_t h = 0;
  for (const auto& p : pts) {  // Lower.
    while (h >= 2 && orient2d(hull[h - 2], hull[h - 1], p) <= 0) --h;
    hull[h++] = p;
  }
  const std::size_t lower = h + 1;
  for (auto it = pts.rbegin() + 1; it != pts.rend(); ++it) {  // Upper.
    while (h >= lower && orient2d(hull[h - 2], hull[h - 1], *it) <= 0) --h;
    hull[h++] = *it;
  }
  hull.resize(h - 1);  // Last point repeats the first.
  return hull;
}

double polygon_area(std::span<const Vec2> polygon) {
  if (polygon.size() < 3) return 0.0;
  double twice = 0.0;
  for (std::size_t i = 0; i < polygon.size(); ++i) {
    const Vec2 a = polygon[i];
    const Vec2 b = polygon[(i + 1) % polygon.size()];
    twice += a.cross(b);
  }
  return 0.5 * twice;
}

}  // namespace cps::geo
