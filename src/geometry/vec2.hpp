// Plane vector/point type shared by every geometric subsystem.
#pragma once

#include <cmath>

namespace cps::geo {

/// 2-D point / vector with value semantics.  Interpreted as a position on
/// the region plane (metres) or as a displacement/force, depending on
/// context.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double x_, double y_) noexcept : x(x_), y(y_) {}

  constexpr Vec2 operator+(Vec2 o) const noexcept { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const noexcept { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const noexcept { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const noexcept { return {x / s, y / s}; }
  constexpr Vec2 operator-() const noexcept { return {-x, -y}; }

  constexpr Vec2& operator+=(Vec2 o) noexcept {
    x += o.x;
    y += o.y;
    return *this;
  }
  constexpr Vec2& operator-=(Vec2 o) noexcept {
    x -= o.x;
    y -= o.y;
    return *this;
  }
  constexpr Vec2& operator*=(double s) noexcept {
    x *= s;
    y *= s;
    return *this;
  }

  constexpr bool operator==(const Vec2&) const noexcept = default;

  constexpr double dot(Vec2 o) const noexcept { return x * o.x + y * o.y; }

  /// Z-component of the 3-D cross product (signed parallelogram area).
  constexpr double cross(Vec2 o) const noexcept { return x * o.y - y * o.x; }

  constexpr double norm_sq() const noexcept { return x * x + y * y; }
  double norm() const noexcept { return std::sqrt(norm_sq()); }

  /// Unit vector in the same direction; returns {0,0} for the zero vector
  /// so force integrators never divide by zero.
  Vec2 normalized() const noexcept {
    const double n = norm();
    return n > 0.0 ? Vec2{x / n, y / n} : Vec2{};
  }

  /// Counter-clockwise rotation by `radians`.
  Vec2 rotated(double radians) const noexcept {
    const double c = std::cos(radians);
    const double s = std::sin(radians);
    return {x * c - y * s, x * s + y * c};
  }
};

constexpr Vec2 operator*(double s, Vec2 v) noexcept { return v * s; }

inline double distance(Vec2 a, Vec2 b) noexcept { return (a - b).norm(); }
inline constexpr double distance_sq(Vec2 a, Vec2 b) noexcept {
  return (a - b).norm_sq();
}

/// Linear interpolation a + t (b - a).
inline constexpr Vec2 lerp(Vec2 a, Vec2 b, double t) noexcept {
  return a + (b - a) * t;
}

/// Midpoint of the segment ab.
inline constexpr Vec2 midpoint(Vec2 a, Vec2 b) noexcept {
  return {(a.x + b.x) * 0.5, (a.y + b.y) * 0.5};
}

}  // namespace cps::geo
