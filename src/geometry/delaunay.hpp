// Incremental Delaunay triangulation of a rectangular region.
//
// This is the interpolation engine the paper builds everything on: the
// rebuilt surface z* = DT(x, y) is the piecewise-linear interpolant over
// the Delaunay triangulation of the sample positions (Section 3.1), and
// FRA's refinement loop (Table 1) inserts one max-error vertex at a time.
//
// Design choices:
//  * The triangulation is seeded with the four region corners, so it covers
//    the rectangle exactly at all times and every in-region query point has
//    a containing triangle — no super-triangle cleanup, no NaN holes at the
//    hull like Matlab's griddata.  The corners are interpolation
//    scaffolding; planners decide what z to pin there (see
//    core/reconstruction).
//  * Bowyer-Watson insertion with triangle adjacency and a remembering walk
//    for point location.  Each insert reports the removed and created
//    triangle ids so callers (FRA) can re-bucket their sample points in
//    O(cavity) instead of O(region).
//  * Predicates are the filtered ones from geometry/predicates.hpp, so
//    grid-aligned (cocircular) inputs stay consistent: a point reported
//    *on* a circumcircle is left out of the cavity, which still yields a
//    valid (if non-unique) Delaunay triangulation.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "geometry/triangle.hpp"
#include "geometry/vec2.hpp"
#include "numerics/quadrature.hpp"

namespace cps::geo {

/// A triangulation vertex: position plus the sampled environment value
/// carried for piecewise-linear surface evaluation.
struct DtVertex {
  Vec2 pos;
  double z = 0.0;
};

/// Triangle record.  `v` lists vertex ids in CCW order; `nbr[i]` is the id
/// of the triangle sharing the edge opposite `v[i]` (-1 on the region
/// boundary).  Dead records are recycled through a free list.
struct DtTriangle {
  std::array<int, 3> v{-1, -1, -1};
  std::array<int, 3> nbr{-1, -1, -1};
  bool alive = false;
};

/// Outcome of an insertion.
struct InsertResult {
  /// Id of the vertex now at the requested position (existing id when the
  /// point duplicated a previous vertex).
  int vertex = -1;
  /// False when the point coincided with an existing vertex and nothing
  /// changed structurally.
  bool inserted = false;
  /// True when a duplicate-tolerance hit rewrote the existing vertex's z
  /// to a different value: the topology is untouched but the interpolated
  /// surface changed over the vertex's star.  δ-caching callers that only
  /// watch the cavity lists would silently under-report without this flag
  /// (the staleness bug this field closes).
  bool z_changed = false;
  /// The updated vertex's incident triangles when z_changed — exactly the
  /// region over which the surface moved.  Empty otherwise.
  std::vector<int> star_triangles;
  /// Triangles destroyed / created by this insertion (empty when
  /// !inserted).
  std::vector<int> removed_triangles;
  std::vector<int> created_triangles;
};

/// Outcome of a vertex removal.
struct RemoveResult {
  int vertex = -1;  ///< The now-dead vertex id (slots are never reused).
  /// The removed vertex's former star / the ear-clipped hole fan.  Ids in
  /// the two lists never overlap (ears are allocated before the star is
  /// freed), and the created triangles cover exactly the star's region.
  std::vector<int> removed_triangles;
  std::vector<int> created_triangles;
};

/// Outcome of a relocation (remove + insert fused into one report).
struct MoveResult {
  /// Vertex id now holding the moved sample: a fresh id normally, an
  /// existing vertex's id when the destination duplicated one.
  int vertex = -1;
  /// False when the destination coincided with an existing vertex (the
  /// move degenerated to a removal plus a z update on that vertex).
  bool inserted = false;
  /// See InsertResult::z_changed — set on the duplicate-destination path.
  bool z_changed = false;
  /// Every triangle alive *now* whose region the move touched: the hole
  /// fan of the removal (minus any ears the insertion re-removed), the
  /// insertion's fan, and the duplicate path's star.  Their union covers
  /// both the old star's region and the new cavity's, which is the
  /// contract incremental δ consumers re-raster against.
  std::vector<int> changed_triangles;
};

/// Incremental Delaunay triangulation over a rectangle.
class Delaunay {
 public:
  /// Number of scaffolding corner vertices (ids 0..3, CCW from (x0, y0)).
  static constexpr int kCorners = 4;

  /// Seeds the triangulation with the four corners of `bounds` (z = 0; use
  /// set_vertex_z to pin corner values).  Throws std::invalid_argument for
  /// an empty or inverted rectangle.
  explicit Delaunay(const num::Rect& bounds);

  /// Inserts a sample at p with value z.  Points within `duplicate_tol` of
  /// an existing vertex update that vertex's z instead of inserting.
  /// Throws std::invalid_argument when p lies outside the region.
  InsertResult insert(Vec2 p, double z, double duplicate_tol = 1e-9);

  /// Removes a previously inserted vertex and re-triangulates its star's
  /// hole with a Delaunay ear-clipping fan.  The vertex slot stays
  /// allocated (ids are stable) but turns dead: vertex_alive(id) is false
  /// and the id can no longer be removed or moved.  Throws
  /// std::invalid_argument for corner scaffolding ids (the rectangle must
  /// stay covered) or already-dead ids.
  RemoveResult remove(int vertex);

  /// remove(vertex) followed by insert(p, z, duplicate_tol), fused into a
  /// single change report whose changed_triangles cover both the old star
  /// and the new cavity (see MoveResult).  Same preconditions as the two
  /// steps.
  MoveResult move_vertex(int vertex, Vec2 p, double z,
                         double duplicate_tol = 1e-9);

  const num::Rect& bounds() const noexcept { return bounds_; }

  std::size_t vertex_count() const noexcept { return vertices_.size(); }
  const DtVertex& vertex(int id) const { return vertices_.at(
      static_cast<std::size_t>(id)); }
  /// False once remove() has retired the id.  Dead vertices keep their
  /// last pos/z for inspection but belong to no alive triangle.
  bool vertex_alive(int id) const {
    return vertex_alive_.at(static_cast<std::size_t>(id)) != 0;
  }
  void set_vertex_z(int id, double z);

  /// Alive triangles incident to `vertex`, in CCW ring order around it.
  /// Throws std::invalid_argument for dead ids.  O(star + locate).
  std::vector<int> vertex_star(int vertex) const;

  /// Total number of triangle slots; use triangle_alive to filter.
  std::size_t triangle_slots() const noexcept { return triangles_.size(); }
  std::size_t triangle_count() const noexcept { return alive_count_; }
  bool triangle_alive(int id) const {
    return triangles_.at(static_cast<std::size_t>(id)).alive;
  }
  const DtTriangle& triangle(int id) const {
    return triangles_.at(static_cast<std::size_t>(id));
  }
  /// Geometric view of an alive triangle.
  Triangle triangle_geometry(int id) const;

  /// Ids of all alive triangles (freshly collected each call).
  std::vector<int> alive_triangles() const;

  /// Id of the alive triangle containing p (ties on shared edges resolved
  /// arbitrarily but deterministically).  `hint` accelerates the walk.
  /// Throws std::invalid_argument when p is outside the region.
  int locate(Vec2 p, int hint = -1) const;

  /// Like locate(), but never reads or updates the shared walk hint:
  /// callers thread their own hint (-1 = canonical start, the first alive
  /// triangle).  Safe to call concurrently from any number of threads as
  /// long as no insert() runs; for a point strictly inside a triangle the
  /// result is hint-independent.
  int locate_from(Vec2 p, int hint) const;

  /// Piecewise-linear surface value DT(p).
  double interpolate(Vec2 p) const;

  // --- Validation hooks (used by tests; O(V*T) where noted) ---

  /// Structural soundness: CCW triangles, symmetric adjacency, boundary
  /// edges only on the region border.
  bool validate_topology() const;

  /// Empty-circumcircle property over all alive triangles and all vertices
  /// (O(V*T)); cocircular points are tolerated.
  bool is_delaunay() const;

  /// Sum of alive triangle areas (should equal bounds().area()).
  double total_area() const;

  /// The shared remembering-walk hint (for staleness regression tests).
  /// Invariant: -1, or an alive triangle — free_triangle resets a hint
  /// that references the slot it frees, so a recycled slot can never be
  /// walked from as if it were the old neighborhood.
  int debug_locate_hint() const noexcept { return locate_hint_; }

 private:
  int alloc_triangle();
  void free_triangle(int id);
  bool in_cavity(int tri, Vec2 p) const;
  int walk_from(int start, Vec2 p) const;
  /// vertex_star plus the ordered link chain: chain[i] holds the link
  /// vertex and the triangle outside edge (chain[i], chain[i+1]) (-1 on
  /// the region border).  For a border vertex the closing edge's outside
  /// is -1 and the chain's closing segment runs along the border.
  struct LinkEdge {
    int vertex;
    int outside;
  };
  std::vector<int> collect_star(int vertex, std::vector<LinkEdge>* chain)
      const;

  num::Rect bounds_;
  std::vector<DtVertex> vertices_;
  std::vector<char> vertex_alive_;
  std::vector<DtTriangle> triangles_;
  std::vector<int> free_list_;
  std::size_t alive_count_ = 0;
  mutable int locate_hint_ = 0;

  // Epoch-stamped scratch for cavity classification (avoids clearing).
  mutable std::vector<unsigned> cavity_epoch_;
  mutable std::vector<char> cavity_state_;
  mutable unsigned epoch_ = 0;
};

}  // namespace cps::geo
