#include "geometry/predicates.hpp"

#include <cmath>
#include <limits>

namespace cps::geo {
namespace {

// Static filter bounds from Shewchuk's "Adaptive Precision Floating-Point
// Arithmetic and Fast Robust Geometric Predicates": (3 + 16e)e for
// orient2d and (10 + 96e)e for incircle, where e is half the type's
// epsilon (Shewchuk's machine epsilon convention).  Deriving them from
// numeric_limits keeps the long-double retry correct on platforms where
// long double is 80-bit x87, 128-bit quad, double-double — or plain
// double (MSVC, some ARM ABIs), where a hardcoded 1e-19 would claim
// precision the type does not have and turn near-degenerate cases into
// wrong nonzero signs.
template <typename F>
constexpr F machine_eps = std::numeric_limits<F>::epsilon() / F(2);

template <typename F>
constexpr F orient_bound = (F(3) + F(16) * machine_eps<F>)*machine_eps<F>;

template <typename F>
constexpr F incircle_bound =
    (F(10) + F(96) * machine_eps<F>)*machine_eps<F>;

// The retry only helps when long double actually carries more mantissa
// bits than double.
constexpr bool kLongDoubleAddsPrecision =
    std::numeric_limits<long double>::digits >
    std::numeric_limits<double>::digits;

template <typename F>
int orient_impl(F ax, F ay, F bx, F by, F cx, F cy, F err_bound) noexcept {
  const F detl = (bx - ax) * (cy - ay);
  const F detr = (by - ay) * (cx - ax);
  const F det = detl - detr;
  const F detsum = std::abs(detl) + std::abs(detr);
  if (std::abs(det) > err_bound * detsum) return det > 0 ? 1 : -1;
  return 0;  // Ambiguous at this precision.
}

template <typename F>
int incircle_impl(F ax, F ay, F bx, F by, F cx, F cy, F dx, F dy,
                  F err_bound) noexcept {
  const F adx = ax - dx;
  const F ady = ay - dy;
  const F bdx = bx - dx;
  const F bdy = by - dy;
  const F cdx = cx - dx;
  const F cdy = cy - dy;

  const F bdxcdy = bdx * cdy;
  const F cdxbdy = cdx * bdy;
  const F alift = adx * adx + ady * ady;

  const F cdxady = cdx * ady;
  const F adxcdy = adx * cdy;
  const F blift = bdx * bdx + bdy * bdy;

  const F adxbdy = adx * bdy;
  const F bdxady = bdx * ady;
  const F clift = cdx * cdx + cdy * cdy;

  const F det = alift * (bdxcdy - cdxbdy) + blift * (cdxady - adxcdy) +
                clift * (adxbdy - bdxady);

  const F permanent = (std::abs(bdxcdy) + std::abs(cdxbdy)) * alift +
                      (std::abs(cdxady) + std::abs(adxcdy)) * blift +
                      (std::abs(adxbdy) + std::abs(bdxady)) * clift;
  if (std::abs(det) > err_bound * permanent) return det > 0 ? 1 : -1;
  return 0;
}

}  // namespace

double orient2d_value(Vec2 a, Vec2 b, Vec2 c) noexcept {
  return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
}

int orient2d(Vec2 a, Vec2 b, Vec2 c) noexcept {
  const int fast = orient_impl<double>(a.x, a.y, b.x, b.y, c.x, c.y,
                                       orient_bound<double>);
  if (fast != 0) return fast;
  if (!kLongDoubleAddsPrecision) return 0;
  // Retry at extended precision; a result still inside the long-double error
  // bound is genuinely (or as good as) collinear.
  return orient_impl<long double>(a.x, a.y, b.x, b.y, c.x, c.y,
                                  orient_bound<long double>);
}

int incircle(Vec2 a, Vec2 b, Vec2 c, Vec2 d) noexcept {
  const int fast = incircle_impl<double>(a.x, a.y, b.x, b.y, c.x, c.y, d.x,
                                         d.y, incircle_bound<double>);
  if (fast != 0) return fast;
  if (!kLongDoubleAddsPrecision) return 0;
  return incircle_impl<long double>(a.x, a.y, b.x, b.y, c.x, c.y, d.x, d.y,
                                    incircle_bound<long double>);
}

}  // namespace cps::geo
