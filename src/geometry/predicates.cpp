#include "geometry/predicates.hpp"

#include <cmath>

namespace cps::geo {
namespace {

// Static filter constants from Shewchuk's "Adaptive Precision Floating-Point
// Arithmetic and Fast Robust Geometric Predicates" (scaled for double).
constexpr double kOrientErrBound = 3.3306690621773724e-16;
constexpr double kIncircleErrBound = 1.1102230246251577e-15;

template <typename F>
int orient_impl(F ax, F ay, F bx, F by, F cx, F cy, F err_bound) noexcept {
  const F detl = (bx - ax) * (cy - ay);
  const F detr = (by - ay) * (cx - ax);
  const F det = detl - detr;
  const F detsum = std::abs(detl) + std::abs(detr);
  if (std::abs(det) > err_bound * detsum) return det > 0 ? 1 : -1;
  return 0;  // Ambiguous at this precision.
}

template <typename F>
int incircle_impl(F ax, F ay, F bx, F by, F cx, F cy, F dx, F dy,
                  F err_bound) noexcept {
  const F adx = ax - dx;
  const F ady = ay - dy;
  const F bdx = bx - dx;
  const F bdy = by - dy;
  const F cdx = cx - dx;
  const F cdy = cy - dy;

  const F bdxcdy = bdx * cdy;
  const F cdxbdy = cdx * bdy;
  const F alift = adx * adx + ady * ady;

  const F cdxady = cdx * ady;
  const F adxcdy = adx * cdy;
  const F blift = bdx * bdx + bdy * bdy;

  const F adxbdy = adx * bdy;
  const F bdxady = bdx * ady;
  const F clift = cdx * cdx + cdy * cdy;

  const F det = alift * (bdxcdy - cdxbdy) + blift * (cdxady - adxcdy) +
                clift * (adxbdy - bdxady);

  const F permanent = (std::abs(bdxcdy) + std::abs(cdxbdy)) * alift +
                      (std::abs(cdxady) + std::abs(adxcdy)) * blift +
                      (std::abs(adxbdy) + std::abs(bdxady)) * clift;
  if (std::abs(det) > err_bound * permanent) return det > 0 ? 1 : -1;
  return 0;
}

}  // namespace

double orient2d_value(Vec2 a, Vec2 b, Vec2 c) noexcept {
  return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
}

int orient2d(Vec2 a, Vec2 b, Vec2 c) noexcept {
  const int fast = orient_impl<double>(a.x, a.y, b.x, b.y, c.x, c.y,
                                       kOrientErrBound);
  if (fast != 0) return fast;
  // Retry at extended precision; a result still inside the long-double error
  // bound is genuinely (or as good as) collinear.
  return orient_impl<long double>(a.x, a.y, b.x, b.y, c.x, c.y,
                                  static_cast<long double>(1e-19));
}

int incircle(Vec2 a, Vec2 b, Vec2 c, Vec2 d) noexcept {
  const int fast = incircle_impl<double>(a.x, a.y, b.x, b.y, c.x, c.y, d.x,
                                         d.y, kIncircleErrBound);
  if (fast != 0) return fast;
  return incircle_impl<long double>(a.x, a.y, b.x, b.y, c.x, c.y, d.x, d.y,
                                    static_cast<long double>(1e-18));
}

}  // namespace cps::geo
