// Geometric predicates with static floating-point filters.
//
// The library triangulates grid-aligned sample positions, which are exactly
// the inputs that defeat naive double-precision predicates (many collinear
// and cocircular quadruples).  Each predicate first evaluates in double with
// a Shewchuk-style static error bound; ambiguous cases are re-evaluated in
// long double, and results still inside the long-double error bound are
// reported as degenerate (0).  That is not fully exact arithmetic, but the
// triangulation only needs *consistent, conservative* answers: a cocircular
// quadruple reported as "on the circle" keeps Bowyer-Watson cavities valid
// (the point is simply not pulled into the cavity).
#pragma once

#include "geometry/vec2.hpp"

namespace cps::geo {

/// Sign of the signed area of triangle (a, b, c):
/// +1 when counter-clockwise, -1 when clockwise, 0 when (near-)collinear.
int orient2d(Vec2 a, Vec2 b, Vec2 c) noexcept;

/// Raw signed doubled area (no filtering); useful when magnitude matters.
double orient2d_value(Vec2 a, Vec2 b, Vec2 c) noexcept;

/// Sign of the incircle determinant for CCW triangle (a, b, c):
/// +1 when d is strictly inside the circumcircle, -1 strictly outside,
/// 0 when (near-)cocircular.  The caller must pass a CCW triangle;
/// orientation is not re-checked here (hot path).
int incircle(Vec2 a, Vec2 b, Vec2 c, Vec2 d) noexcept;

}  // namespace cps::geo
