// Triangle utilities: barycentric coordinates, containment, circumcircles.
#pragma once

#include <array>
#include <optional>

#include "geometry/vec2.hpp"

namespace cps::geo {

/// Barycentric coordinates (w0, w1, w2) of a query point with respect to a
/// triangle; they sum to 1 for non-degenerate triangles.
struct Barycentric {
  double w0 = 0.0;
  double w1 = 0.0;
  double w2 = 0.0;

  /// True when the point is inside or on the triangle boundary
  /// (all weights >= -tol).
  bool inside(double tol = 1e-12) const noexcept {
    return w0 >= -tol && w1 >= -tol && w2 >= -tol;
  }
};

/// Circumcircle centre and squared radius.
struct Circumcircle {
  Vec2 center;
  double radius_sq = 0.0;
};

/// Immutable triangle over three points.  No orientation requirement unless
/// a member says otherwise.
class Triangle {
 public:
  constexpr Triangle(Vec2 a, Vec2 b, Vec2 c) noexcept : v_{a, b, c} {}

  constexpr Vec2 a() const noexcept { return v_[0]; }
  constexpr Vec2 b() const noexcept { return v_[1]; }
  constexpr Vec2 c() const noexcept { return v_[2]; }
  constexpr Vec2 vertex(int i) const noexcept {
    return v_[static_cast<std::size_t>(i)];
  }

  /// Signed area (positive for counter-clockwise winding).
  double signed_area() const noexcept;
  double area() const noexcept;

  /// Degenerate when |signed area| is below `tol` times the squared size.
  bool degenerate(double tol = 1e-12) const noexcept;

  /// Barycentric coordinates of p.  For degenerate triangles all weights
  /// are returned as +inf-free garbage guarded by `degenerate()`; callers
  /// must check degeneracy first (the Delaunay structure never stores
  /// degenerate triangles).
  Barycentric barycentric(Vec2 p) const noexcept;

  /// True if p lies inside or on the boundary.
  bool contains(Vec2 p, double tol = 1e-9) const noexcept;

  /// Circumcircle; std::nullopt for degenerate triangles.
  std::optional<Circumcircle> circumcircle() const noexcept;

  Vec2 centroid() const noexcept {
    return (v_[0] + v_[1] + v_[2]) / 3.0;
  }

  /// Length of the longest edge.
  double longest_edge() const noexcept;

 private:
  std::array<Vec2, 3> v_;
};

/// Linearly interpolates values (za, zb, zc) attached to the triangle's
/// vertices at point p (piecewise-linear surface evaluation).  p should be
/// inside the triangle; outside points are linearly extrapolated.
double interpolate_linear(const Triangle& t, double za, double zb, double zc,
                          Vec2 p) noexcept;

}  // namespace cps::geo
