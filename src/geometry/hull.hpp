// Convex hull (Andrew monotone chain) — deployment footprint analysis.
#pragma once

#include <span>
#include <vector>

#include "geometry/vec2.hpp"

namespace cps::geo {

/// Convex hull of a point set, counter-clockwise, starting from the
/// lexicographically smallest point; collinear boundary points are
/// dropped.  Degenerate inputs return what exists: fewer than 3 distinct
/// points yield those points.
std::vector<Vec2> convex_hull(std::span<const Vec2> points);

/// Area of a simple polygon given in order (shoelace; positive for CCW).
double polygon_area(std::span<const Vec2> polygon);

}  // namespace cps::geo
