#include "geometry/delaunay.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "geometry/predicates.hpp"
#include "obs/obs.hpp"

namespace cps::geo {
namespace {

constexpr double kBoundsTol = 1e-9;

}  // namespace

Delaunay::Delaunay(const num::Rect& bounds) : bounds_(bounds) {
  if (bounds.width() <= 0.0 || bounds.height() <= 0.0) {
    throw std::invalid_argument("Delaunay: empty region");
  }
  vertices_ = {
      {{bounds.x0, bounds.y0}, 0.0},
      {{bounds.x1, bounds.y0}, 0.0},
      {{bounds.x1, bounds.y1}, 0.0},
      {{bounds.x0, bounds.y1}, 0.0},
  };
  // Two seed triangles split by the (0, 2) diagonal, both CCW.
  triangles_.resize(2);
  triangles_[0] = DtTriangle{{0, 1, 2}, {-1, 1, -1}, true};
  triangles_[1] = DtTriangle{{0, 2, 3}, {-1, -1, 0}, true};
  alive_count_ = 2;
  cavity_epoch_.assign(2, 0);
  cavity_state_.assign(2, 0);
}

int Delaunay::alloc_triangle() {
  if (!free_list_.empty()) {
    const int id = free_list_.back();
    free_list_.pop_back();
    triangles_[static_cast<std::size_t>(id)].alive = true;
    ++alive_count_;
    return id;
  }
  triangles_.push_back(DtTriangle{});
  triangles_.back().alive = true;
  cavity_epoch_.push_back(0);
  cavity_state_.push_back(0);
  ++alive_count_;
  return static_cast<int>(triangles_.size()) - 1;
}

void Delaunay::free_triangle(int id) {
  auto& t = triangles_[static_cast<std::size_t>(id)];
  t.alive = false;
  t.nbr = {-1, -1, -1};
  free_list_.push_back(id);
  --alive_count_;
}

Triangle Delaunay::triangle_geometry(int id) const {
  const auto& t = triangles_.at(static_cast<std::size_t>(id));
  if (!t.alive) throw std::invalid_argument("triangle_geometry: dead id");
  return Triangle(vertices_[static_cast<std::size_t>(t.v[0])].pos,
                  vertices_[static_cast<std::size_t>(t.v[1])].pos,
                  vertices_[static_cast<std::size_t>(t.v[2])].pos);
}

std::vector<int> Delaunay::alive_triangles() const {
  std::vector<int> out;
  out.reserve(alive_count_);
  for (std::size_t i = 0; i < triangles_.size(); ++i) {
    if (triangles_[i].alive) out.push_back(static_cast<int>(i));
  }
  return out;
}

void Delaunay::set_vertex_z(int id, double z) {
  vertices_.at(static_cast<std::size_t>(id)).z = z;
}

int Delaunay::walk_from(int start, Vec2 p) const {
  int current = start;
  int previous = -1;
  CPS_COUNT("geometry.delaunay.locates", 1);
  // A straight walk over a Delaunay triangulation of a convex region
  // terminates; the step cap only guards against degenerate adjacency bugs.
  const std::size_t max_steps = 4 * triangles_.size() + 16;
  for (std::size_t step = 0; step < max_steps; ++step) {
    CPS_COUNT("geometry.delaunay.walk_steps", 1);
    const auto& t = triangles_[static_cast<std::size_t>(current)];
    int next = -1;
    bool inside = true;
    for (int e = 0; e < 3; ++e) {
      const Vec2 a =
          vertices_[static_cast<std::size_t>(t.v[(e + 1) % 3])].pos;
      const Vec2 b =
          vertices_[static_cast<std::size_t>(t.v[(e + 2) % 3])].pos;
      if (orient2d(a, b, p) < 0) {
        inside = false;
        const int candidate = t.nbr[static_cast<std::size_t>(e)];
        if (candidate != -1 && candidate != previous) {
          next = candidate;
          break;
        }
      }
    }
    if (inside) return current;
    if (next == -1) break;  // Fall through to the exhaustive scan.
    previous = current;
    current = next;
  }
  // Exhaustive fallback — hit only under adversarial degeneracy.
  for (std::size_t i = 0; i < triangles_.size(); ++i) {
    if (!triangles_[i].alive) continue;
    if (triangle_geometry(static_cast<int>(i)).contains(p)) {
      return static_cast<int>(i);
    }
  }
  throw std::logic_error("Delaunay::locate: walk failed for in-region point");
}

int Delaunay::locate(Vec2 p, int hint) const {
  const int found = locate_from(
      p, hint < 0 || hint >= static_cast<int>(triangles_.size()) ||
                 !triangles_[static_cast<std::size_t>(hint)].alive
             ? locate_hint_
             : hint);
  locate_hint_ = found;
  return found;
}

int Delaunay::locate_from(Vec2 p, int hint) const {
  if (p.x < bounds_.x0 - kBoundsTol || p.x > bounds_.x1 + kBoundsTol ||
      p.y < bounds_.y0 - kBoundsTol || p.y > bounds_.y1 + kBoundsTol) {
    throw std::invalid_argument("Delaunay::locate: point outside region");
  }
  const Vec2 q{std::clamp(p.x, bounds_.x0, bounds_.x1),
               std::clamp(p.y, bounds_.y0, bounds_.y1)};
  int start = hint;
  if (start < 0 || start >= static_cast<int>(triangles_.size()) ||
      !triangles_[static_cast<std::size_t>(start)].alive) {
    start = -1;
    for (std::size_t i = 0; i < triangles_.size(); ++i) {
      if (triangles_[i].alive) {
        start = static_cast<int>(i);
        break;
      }
    }
  }
  return walk_from(start, q);
}

double Delaunay::interpolate(Vec2 p) const {
  const int tid = locate(p);
  const auto& t = triangles_[static_cast<std::size_t>(tid)];
  return interpolate_linear(
      triangle_geometry(tid), vertices_[static_cast<std::size_t>(t.v[0])].z,
      vertices_[static_cast<std::size_t>(t.v[1])].z,
      vertices_[static_cast<std::size_t>(t.v[2])].z, p);
}

bool Delaunay::in_cavity(int tri, Vec2 p) const {
  if (cavity_epoch_[static_cast<std::size_t>(tri)] == epoch_) {
    return cavity_state_[static_cast<std::size_t>(tri)] == 1;
  }
  const auto& t = triangles_[static_cast<std::size_t>(tri)];
  CPS_COUNT("geometry.delaunay.incircle_calls", 1);
  const bool in =
      incircle(vertices_[static_cast<std::size_t>(t.v[0])].pos,
               vertices_[static_cast<std::size_t>(t.v[1])].pos,
               vertices_[static_cast<std::size_t>(t.v[2])].pos, p) > 0;
  cavity_epoch_[static_cast<std::size_t>(tri)] = epoch_;
  cavity_state_[static_cast<std::size_t>(tri)] = in ? 1 : 0;
  return in;
}

InsertResult Delaunay::insert(Vec2 p, double z, double duplicate_tol) {
  const int containing = locate(p);  // Validates bounds.
  InsertResult result;

  // Duplicate check against the containing triangle's vertices: a
  // coincident point always lands in a triangle incident to the original.
  {
    const auto& t = triangles_[static_cast<std::size_t>(containing)];
    for (const int vid : t.v) {
      if (distance(vertices_[static_cast<std::size_t>(vid)].pos, p) <=
          duplicate_tol) {
        vertices_[static_cast<std::size_t>(vid)].z = z;
        result.vertex = vid;
        result.inserted = false;
        return result;
      }
    }
  }

  const int new_vertex = static_cast<int>(vertices_.size());
  vertices_.push_back(DtVertex{p, z});

  // Grow the cavity from the containing triangle.  The containing triangle
  // is force-included: mathematically p (strictly inside or on an edge of
  // it) is strictly inside its circumcircle, but the filtered predicate may
  // report a near-degenerate case as "on".
  ++epoch_;
  if (epoch_ == 0) {  // Wrapped: reset stamps.
    std::fill(cavity_epoch_.begin(), cavity_epoch_.end(), 0u);
    epoch_ = 1;
  }
  cavity_epoch_[static_cast<std::size_t>(containing)] = epoch_;
  cavity_state_[static_cast<std::size_t>(containing)] = 1;

  std::vector<int> cavity{containing};
  struct BoundaryEdge {
    int a;        // Edge endpoints, CCW as seen from inside the cavity.
    int b;
    int outside;  // Triangle beyond the edge (-1 on the region border).
  };
  std::vector<BoundaryEdge> boundary;
  for (std::size_t idx = 0; idx < cavity.size(); ++idx) {
    const int tid = cavity[idx];
    const auto t = triangles_[static_cast<std::size_t>(tid)];  // Copy: the
    // vector may reallocate later, and we only read this snapshot.
    for (int e = 0; e < 3; ++e) {
      const int n = t.nbr[static_cast<std::size_t>(e)];
      bool neighbor_in = false;
      if (n != -1) {
        // A neighbour not yet stamped this epoch is being classified for
        // the first time; that is exactly when it may join the frontier.
        const bool first_visit =
            cavity_epoch_[static_cast<std::size_t>(n)] != epoch_;
        neighbor_in = in_cavity(n, p);
        if (neighbor_in && first_visit) cavity.push_back(n);
      }
      if (!neighbor_in) {
        boundary.push_back(
            BoundaryEdge{t.v[static_cast<std::size_t>((e + 1) % 3)],
                         t.v[static_cast<std::size_t>((e + 2) % 3)], n});
      }
    }
  }

  // A point on a region-border edge leaves that edge on the cavity
  // boundary but collinear with p; the (p, a, b) triangle it would spawn is
  // degenerate.  Drop such edges — the fan then forms an open chain whose
  // two dangling (p, endpoint) edges lie on the region border.
  std::erase_if(boundary, [&](const BoundaryEdge& edge) {
    return orient2d(vertices_[static_cast<std::size_t>(edge.a)].pos,
                    vertices_[static_cast<std::size_t>(edge.b)].pos, p) == 0;
  });

  // Retriangulate: one new triangle (p, a, b) per boundary edge.  New
  // triangles are allocated before the cavity is freed so that ids in
  // `removed_triangles` and `created_triangles` never overlap (callers
  // re-bucket samples keyed by these ids).
  std::unordered_map<int, int> tri_starting_at;  // a -> new triangle id
  std::unordered_map<int, int> tri_ending_at;    // b -> new triangle id
  tri_starting_at.reserve(boundary.size());
  tri_ending_at.reserve(boundary.size());

  std::vector<int> created;
  created.reserve(boundary.size());
  for (const auto& edge : boundary) {
    const int tid = alloc_triangle();
    auto& t = triangles_[static_cast<std::size_t>(tid)];
    t.v = {new_vertex, edge.a, edge.b};
    t.nbr = {edge.outside, -1, -1};
    created.push_back(tid);
    tri_starting_at[edge.a] = tid;
    tri_ending_at[edge.b] = tid;
    // Re-point the outside triangle's adjacency at the replacement.
    if (edge.outside != -1) {
      auto& out = triangles_[static_cast<std::size_t>(edge.outside)];
      for (int e = 0; e < 3; ++e) {
        const int va = out.v[static_cast<std::size_t>((e + 1) % 3)];
        const int vb = out.v[static_cast<std::size_t>((e + 2) % 3)];
        if ((va == edge.b && vb == edge.a) || (va == edge.a && vb == edge.b)) {
          out.nbr[static_cast<std::size_t>(e)] = tid;
          break;
        }
      }
    }
  }

  // Stitch the fan: triangle (p, a, b) meets the next one across edge
  // (p, b) and the previous across edge (p, a).  A missing link means the
  // chain is open there (p landed on the region border) and that edge lies
  // on the border: -1.
  for (std::size_t i = 0; i < boundary.size(); ++i) {
    const auto& edge = boundary[i];
    auto& t = triangles_[static_cast<std::size_t>(created[i])];
    const auto next = tri_starting_at.find(edge.b);
    const auto prev = tri_ending_at.find(edge.a);
    t.nbr[1] = next == tri_starting_at.end() ? -1 : next->second;
    t.nbr[2] = prev == tri_ending_at.end() ? -1 : prev->second;
  }

  for (const int tid : cavity) free_triangle(tid);

  // Bowyer-Watson re-triangulates cavities instead of flipping edges; the
  // cavity size is the flip-count equivalent (a cavity of c triangles
  // replaced by a fan of c + 2 corresponds to c - 1 Lawson flips).
  CPS_COUNT("geometry.delaunay.inserts", 1);
  CPS_COUNT("geometry.delaunay.cavity_triangles", cavity.size());
  CPS_COUNT("geometry.delaunay.created_triangles", created.size());

  locate_hint_ = created.empty() ? locate_hint_ : created.front();
  result.vertex = new_vertex;
  result.inserted = true;
  result.removed_triangles = std::move(cavity);
  result.created_triangles = std::move(created);
  return result;
}

bool Delaunay::validate_topology() const {
  for (std::size_t i = 0; i < triangles_.size(); ++i) {
    const auto& t = triangles_[i];
    if (!t.alive) continue;
    const Vec2 a = vertices_[static_cast<std::size_t>(t.v[0])].pos;
    const Vec2 b = vertices_[static_cast<std::size_t>(t.v[1])].pos;
    const Vec2 c = vertices_[static_cast<std::size_t>(t.v[2])].pos;
    if (orient2d(a, b, c) <= 0) return false;
    for (int e = 0; e < 3; ++e) {
      const int n = t.nbr[static_cast<std::size_t>(e)];
      if (n == -1) continue;
      if (n < 0 || n >= static_cast<int>(triangles_.size())) return false;
      const auto& u = triangles_[static_cast<std::size_t>(n)];
      if (!u.alive) return false;
      bool mutual = false;
      for (int f = 0; f < 3; ++f) {
        if (u.nbr[static_cast<std::size_t>(f)] == static_cast<int>(i)) {
          const int va = u.v[static_cast<std::size_t>((f + 1) % 3)];
          const int vb = u.v[static_cast<std::size_t>((f + 2) % 3)];
          const int wa = t.v[static_cast<std::size_t>((e + 1) % 3)];
          const int wb = t.v[static_cast<std::size_t>((e + 2) % 3)];
          if ((va == wb && vb == wa) || (va == wa && vb == wb)) mutual = true;
        }
      }
      if (!mutual) return false;
    }
  }
  return true;
}

bool Delaunay::is_delaunay() const {
  const auto alive = alive_triangles();
  for (const int tid : alive) {
    const auto& t = triangles_[static_cast<std::size_t>(tid)];
    const Vec2 a = vertices_[static_cast<std::size_t>(t.v[0])].pos;
    const Vec2 b = vertices_[static_cast<std::size_t>(t.v[1])].pos;
    const Vec2 c = vertices_[static_cast<std::size_t>(t.v[2])].pos;
    for (std::size_t v = 0; v < vertices_.size(); ++v) {
      const int vid = static_cast<int>(v);
      if (vid == t.v[0] || vid == t.v[1] || vid == t.v[2]) continue;
      if (incircle(a, b, c, vertices_[v].pos) > 0) return false;
    }
  }
  return true;
}

double Delaunay::total_area() const {
  double sum = 0.0;
  for (const int tid : alive_triangles()) {
    sum += triangle_geometry(tid).area();
  }
  return sum;
}

}  // namespace cps::geo
