#include "geometry/delaunay.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "geometry/predicates.hpp"
#include "obs/obs.hpp"

namespace cps::geo {
namespace {

constexpr double kBoundsTol = 1e-9;

}  // namespace

Delaunay::Delaunay(const num::Rect& bounds) : bounds_(bounds) {
  if (bounds.width() <= 0.0 || bounds.height() <= 0.0) {
    throw std::invalid_argument("Delaunay: empty region");
  }
  vertices_ = {
      {{bounds.x0, bounds.y0}, 0.0},
      {{bounds.x1, bounds.y0}, 0.0},
      {{bounds.x1, bounds.y1}, 0.0},
      {{bounds.x0, bounds.y1}, 0.0},
  };
  vertex_alive_.assign(vertices_.size(), 1);
  // Two seed triangles split by the (0, 2) diagonal, both CCW.
  triangles_.resize(2);
  triangles_[0] = DtTriangle{{0, 1, 2}, {-1, 1, -1}, true};
  triangles_[1] = DtTriangle{{0, 2, 3}, {-1, -1, 0}, true};
  alive_count_ = 2;
  cavity_epoch_.assign(2, 0);
  cavity_state_.assign(2, 0);
}

int Delaunay::alloc_triangle() {
  if (!free_list_.empty()) {
    const int id = free_list_.back();
    free_list_.pop_back();
    triangles_[static_cast<std::size_t>(id)].alive = true;
    ++alive_count_;
    return id;
  }
  triangles_.push_back(DtTriangle{});
  triangles_.back().alive = true;
  cavity_epoch_.push_back(0);
  cavity_state_.push_back(0);
  ++alive_count_;
  return static_cast<int>(triangles_.size()) - 1;
}

void Delaunay::free_triangle(int id) {
  auto& t = triangles_[static_cast<std::size_t>(id)];
  t.alive = false;
  t.nbr = {-1, -1, -1};
  free_list_.push_back(id);
  --alive_count_;
  // A shared walk hint referencing the freed slot must not survive: the
  // free list recycles slots, and a later locate() would otherwise walk
  // from whatever unrelated triangle reuses this id.  insert() refreshes
  // the hint after its frees, but remove() relies on this reset.
  if (locate_hint_ == id) locate_hint_ = -1;
}

Triangle Delaunay::triangle_geometry(int id) const {
  const auto& t = triangles_.at(static_cast<std::size_t>(id));
  if (!t.alive) throw std::invalid_argument("triangle_geometry: dead id");
  return Triangle(vertices_[static_cast<std::size_t>(t.v[0])].pos,
                  vertices_[static_cast<std::size_t>(t.v[1])].pos,
                  vertices_[static_cast<std::size_t>(t.v[2])].pos);
}

std::vector<int> Delaunay::alive_triangles() const {
  std::vector<int> out;
  out.reserve(alive_count_);
  for (std::size_t i = 0; i < triangles_.size(); ++i) {
    if (triangles_[i].alive) out.push_back(static_cast<int>(i));
  }
  return out;
}

void Delaunay::set_vertex_z(int id, double z) {
  vertices_.at(static_cast<std::size_t>(id)).z = z;
}

int Delaunay::walk_from(int start, Vec2 p) const {
  int current = start;
  int previous = -1;
  CPS_COUNT("geometry.delaunay.locates", 1);
  // A straight walk over a Delaunay triangulation of a convex region
  // terminates; the step cap only guards against degenerate adjacency bugs.
  const std::size_t max_steps = 4 * triangles_.size() + 16;
  for (std::size_t step = 0; step < max_steps; ++step) {
    CPS_COUNT("geometry.delaunay.walk_steps", 1);
    const auto& t = triangles_[static_cast<std::size_t>(current)];
    int next = -1;
    bool inside = true;
    for (int e = 0; e < 3; ++e) {
      const Vec2 a =
          vertices_[static_cast<std::size_t>(t.v[(e + 1) % 3])].pos;
      const Vec2 b =
          vertices_[static_cast<std::size_t>(t.v[(e + 2) % 3])].pos;
      if (orient2d(a, b, p) < 0) {
        inside = false;
        const int candidate = t.nbr[static_cast<std::size_t>(e)];
        if (candidate != -1 && candidate != previous) {
          next = candidate;
          break;
        }
      }
    }
    if (inside) return current;
    if (next == -1) break;  // Fall through to the exhaustive scan.
    previous = current;
    current = next;
  }
  // Exhaustive fallback — hit only under adversarial degeneracy.
  for (std::size_t i = 0; i < triangles_.size(); ++i) {
    if (!triangles_[i].alive) continue;
    if (triangle_geometry(static_cast<int>(i)).contains(p)) {
      return static_cast<int>(i);
    }
  }
  throw std::logic_error("Delaunay::locate: walk failed for in-region point");
}

int Delaunay::locate(Vec2 p, int hint) const {
  const int found = locate_from(
      p, hint < 0 || hint >= static_cast<int>(triangles_.size()) ||
                 !triangles_[static_cast<std::size_t>(hint)].alive
             ? locate_hint_
             : hint);
  locate_hint_ = found;
  return found;
}

int Delaunay::locate_from(Vec2 p, int hint) const {
  if (p.x < bounds_.x0 - kBoundsTol || p.x > bounds_.x1 + kBoundsTol ||
      p.y < bounds_.y0 - kBoundsTol || p.y > bounds_.y1 + kBoundsTol) {
    throw std::invalid_argument("Delaunay::locate: point outside region");
  }
  const Vec2 q{std::clamp(p.x, bounds_.x0, bounds_.x1),
               std::clamp(p.y, bounds_.y0, bounds_.y1)};
  int start = hint;
  if (start < 0 || start >= static_cast<int>(triangles_.size()) ||
      !triangles_[static_cast<std::size_t>(start)].alive) {
    start = -1;
    for (std::size_t i = 0; i < triangles_.size(); ++i) {
      if (triangles_[i].alive) {
        start = static_cast<int>(i);
        break;
      }
    }
  }
  return walk_from(start, q);
}

double Delaunay::interpolate(Vec2 p) const {
  const int tid = locate(p);
  const auto& t = triangles_[static_cast<std::size_t>(tid)];
  return interpolate_linear(
      triangle_geometry(tid), vertices_[static_cast<std::size_t>(t.v[0])].z,
      vertices_[static_cast<std::size_t>(t.v[1])].z,
      vertices_[static_cast<std::size_t>(t.v[2])].z, p);
}

bool Delaunay::in_cavity(int tri, Vec2 p) const {
  if (cavity_epoch_[static_cast<std::size_t>(tri)] == epoch_) {
    return cavity_state_[static_cast<std::size_t>(tri)] == 1;
  }
  const auto& t = triangles_[static_cast<std::size_t>(tri)];
  CPS_COUNT("geometry.delaunay.incircle_calls", 1);
  const bool in =
      incircle(vertices_[static_cast<std::size_t>(t.v[0])].pos,
               vertices_[static_cast<std::size_t>(t.v[1])].pos,
               vertices_[static_cast<std::size_t>(t.v[2])].pos, p) > 0;
  cavity_epoch_[static_cast<std::size_t>(tri)] = epoch_;
  cavity_state_[static_cast<std::size_t>(tri)] = in ? 1 : 0;
  return in;
}

InsertResult Delaunay::insert(Vec2 p, double z, double duplicate_tol) {
  const int containing = locate(p);  // Validates bounds.
  InsertResult result;

  // Duplicate check against the containing triangle's vertices: a
  // coincident point always lands in a triangle incident to the original.
  {
    const auto& t = triangles_[static_cast<std::size_t>(containing)];
    for (const int vid : t.v) {
      if (distance(vertices_[static_cast<std::size_t>(vid)].pos, p) <=
          duplicate_tol) {
        const double old_z = vertices_[static_cast<std::size_t>(vid)].z;
        vertices_[static_cast<std::size_t>(vid)].z = z;
        result.vertex = vid;
        result.inserted = false;
        // The topology did not change, but a different z moves the
        // interpolated surface over the vertex's whole star.  Value
        // compare: a +-0.0 swap cannot change any interpolated bit's
        // absolute difference, and reporting it would cost a star walk.
        result.z_changed = z != old_z;
        if (result.z_changed) {
          result.star_triangles = vertex_star(vid);
          CPS_COUNT("geometry.delaunay.duplicate_z_updates", 1);
        }
        return result;
      }
    }
  }

  const int new_vertex = static_cast<int>(vertices_.size());
  vertices_.push_back(DtVertex{p, z});
  vertex_alive_.push_back(1);

  // Grow the cavity from the containing triangle.  The containing triangle
  // is force-included: mathematically p (strictly inside or on an edge of
  // it) is strictly inside its circumcircle, but the filtered predicate may
  // report a near-degenerate case as "on".
  ++epoch_;
  if (epoch_ == 0) {  // Wrapped: reset stamps.
    std::fill(cavity_epoch_.begin(), cavity_epoch_.end(), 0u);
    epoch_ = 1;
  }
  cavity_epoch_[static_cast<std::size_t>(containing)] = epoch_;
  cavity_state_[static_cast<std::size_t>(containing)] = 1;

  std::vector<int> cavity{containing};
  struct BoundaryEdge {
    int a;        // Edge endpoints, CCW as seen from inside the cavity.
    int b;
    int outside;  // Triangle beyond the edge (-1 on the region border).
  };
  std::vector<BoundaryEdge> boundary;
  for (std::size_t idx = 0; idx < cavity.size(); ++idx) {
    const int tid = cavity[idx];
    const auto t = triangles_[static_cast<std::size_t>(tid)];  // Copy: the
    // vector may reallocate later, and we only read this snapshot.
    for (int e = 0; e < 3; ++e) {
      const int n = t.nbr[static_cast<std::size_t>(e)];
      bool neighbor_in = false;
      if (n != -1) {
        // A neighbour not yet stamped this epoch is being classified for
        // the first time; that is exactly when it may join the frontier.
        const bool first_visit =
            cavity_epoch_[static_cast<std::size_t>(n)] != epoch_;
        neighbor_in = in_cavity(n, p);
        if (neighbor_in && first_visit) cavity.push_back(n);
      }
      if (!neighbor_in) {
        boundary.push_back(
            BoundaryEdge{t.v[static_cast<std::size_t>((e + 1) % 3)],
                         t.v[static_cast<std::size_t>((e + 2) % 3)], n});
      }
    }
  }

  // A point on a region-border edge leaves that edge on the cavity
  // boundary but collinear with p; the (p, a, b) triangle it would spawn is
  // degenerate.  Drop such edges — the fan then forms an open chain whose
  // two dangling (p, endpoint) edges lie on the region border.
  std::erase_if(boundary, [&](const BoundaryEdge& edge) {
    return orient2d(vertices_[static_cast<std::size_t>(edge.a)].pos,
                    vertices_[static_cast<std::size_t>(edge.b)].pos, p) == 0;
  });

  // Retriangulate: one new triangle (p, a, b) per boundary edge.  New
  // triangles are allocated before the cavity is freed so that ids in
  // `removed_triangles` and `created_triangles` never overlap (callers
  // re-bucket samples keyed by these ids).
  std::unordered_map<int, int> tri_starting_at;  // a -> new triangle id
  std::unordered_map<int, int> tri_ending_at;    // b -> new triangle id
  tri_starting_at.reserve(boundary.size());
  tri_ending_at.reserve(boundary.size());

  std::vector<int> created;
  created.reserve(boundary.size());
  for (const auto& edge : boundary) {
    const int tid = alloc_triangle();
    auto& t = triangles_[static_cast<std::size_t>(tid)];
    t.v = {new_vertex, edge.a, edge.b};
    t.nbr = {edge.outside, -1, -1};
    created.push_back(tid);
    tri_starting_at[edge.a] = tid;
    tri_ending_at[edge.b] = tid;
    // Re-point the outside triangle's adjacency at the replacement.
    if (edge.outside != -1) {
      auto& out = triangles_[static_cast<std::size_t>(edge.outside)];
      for (int e = 0; e < 3; ++e) {
        const int va = out.v[static_cast<std::size_t>((e + 1) % 3)];
        const int vb = out.v[static_cast<std::size_t>((e + 2) % 3)];
        if ((va == edge.b && vb == edge.a) || (va == edge.a && vb == edge.b)) {
          out.nbr[static_cast<std::size_t>(e)] = tid;
          break;
        }
      }
    }
  }

  // Stitch the fan: triangle (p, a, b) meets the next one across edge
  // (p, b) and the previous across edge (p, a).  A missing link means the
  // chain is open there (p landed on the region border) and that edge lies
  // on the border: -1.
  for (std::size_t i = 0; i < boundary.size(); ++i) {
    const auto& edge = boundary[i];
    auto& t = triangles_[static_cast<std::size_t>(created[i])];
    const auto next = tri_starting_at.find(edge.b);
    const auto prev = tri_ending_at.find(edge.a);
    t.nbr[1] = next == tri_starting_at.end() ? -1 : next->second;
    t.nbr[2] = prev == tri_ending_at.end() ? -1 : prev->second;
  }

  for (const int tid : cavity) free_triangle(tid);

  // Bowyer-Watson re-triangulates cavities instead of flipping edges; the
  // cavity size is the flip-count equivalent (a cavity of c triangles
  // replaced by a fan of c + 2 corresponds to c - 1 Lawson flips).
  CPS_COUNT("geometry.delaunay.inserts", 1);
  CPS_COUNT("geometry.delaunay.cavity_triangles", cavity.size());
  CPS_COUNT("geometry.delaunay.created_triangles", created.size());

  locate_hint_ = created.empty() ? locate_hint_ : created.front();
  result.vertex = new_vertex;
  result.inserted = true;
  result.removed_triangles = std::move(cavity);
  result.created_triangles = std::move(created);
  return result;
}

std::vector<int> Delaunay::collect_star(int vertex,
                                        std::vector<LinkEdge>* chain) const {
  if (vertex < 0 || vertex >= static_cast<int>(vertices_.size()) ||
      vertex_alive_[static_cast<std::size_t>(vertex)] == 0) {
    throw std::invalid_argument("Delaunay::vertex_star: dead vertex id");
  }
  // Seed triangle: the walk lands on a triangle whose closure contains the
  // vertex position, which in a valid triangulation is always incident to
  // the vertex (an edge of a non-incident triangle cannot pass through a
  // vertex).  The scan fallback guards degenerate geometry anyway.
  int seed = locate_from(vertices_[static_cast<std::size_t>(vertex)].pos, -1);
  const auto incident = [&](int tid) {
    const auto& t = triangles_[static_cast<std::size_t>(tid)];
    return t.v[0] == vertex || t.v[1] == vertex || t.v[2] == vertex;
  };
  if (!incident(seed)) {
    seed = -1;
    for (std::size_t i = 0; i < triangles_.size(); ++i) {
      if (triangles_[i].alive && incident(static_cast<int>(i))) {
        seed = static_cast<int>(i);
        break;
      }
    }
    if (seed == -1) {
      throw std::logic_error("Delaunay::vertex_star: no incident triangle");
    }
  }
  const auto local_index = [&](int tid) {
    const auto& t = triangles_[static_cast<std::size_t>(tid)];
    for (int i = 0; i < 3; ++i) {
      if (t.v[static_cast<std::size_t>(i)] == vertex) return i;
    }
    throw std::logic_error("Delaunay::vertex_star: lost incidence");
  };
  // Walk the ring CCW: triangle (v, a, b) hands over across edge (v, b)
  // (the neighbor opposite a).  A -1 crossing means v lies on the region
  // border; the ring is then an open fan walked backwards too.
  std::vector<int> star;
  std::vector<int> link;  // link[i] = a of star[i]; one extra b at the end
                          // when the fan is open.
  int current = seed;
  bool open = false;
  do {
    star.push_back(current);
    const int i = local_index(current);
    const auto& t = triangles_[static_cast<std::size_t>(current)];
    link.push_back(t.v[static_cast<std::size_t>((i + 1) % 3)]);
    const int next = t.nbr[static_cast<std::size_t>((i + 1) % 3)];
    if (next == -1) {
      link.push_back(t.v[static_cast<std::size_t>((i + 2) % 3)]);
      open = true;
      break;
    }
    current = next;
  } while (current != seed);
  if (open) {
    // Walk backwards from the seed across edge (v, a) until the border.
    current = seed;
    for (;;) {
      const int i = local_index(current);
      const auto& t = triangles_[static_cast<std::size_t>(current)];
      const int prev = t.nbr[static_cast<std::size_t>((i + 2) % 3)];
      if (prev == -1) break;
      const int pi = local_index(prev);
      const auto& pt = triangles_[static_cast<std::size_t>(prev)];
      star.insert(star.begin(), prev);
      link.insert(link.begin(), pt.v[static_cast<std::size_t>((pi + 1) % 3)]);
      current = prev;
    }
  }
  if (chain != nullptr) {
    // chain[j] pairs link vertex a_j with the triangle beyond link edge
    // (a_j, a_{j+1}) — star[j]'s neighbor opposite v.  A closed ring's
    // chain closes itself; an open fan closes with the border segment
    // (collinear through v), outside -1.
    chain->clear();
    chain->reserve(link.size());
    for (std::size_t j = 0; j < star.size(); ++j) {
      const int tid = star[j];
      const int i = local_index(tid);
      chain->push_back(LinkEdge{
          link[j],
          triangles_[static_cast<std::size_t>(tid)]
              .nbr[static_cast<std::size_t>(i)]});
    }
    if (open) chain->push_back(LinkEdge{link.back(), -1});
  }
  return star;
}

std::vector<int> Delaunay::vertex_star(int vertex) const {
  return collect_star(vertex, nullptr);
}

RemoveResult Delaunay::remove(int vertex) {
  if (vertex < kCorners) {
    throw std::invalid_argument(
        "Delaunay::remove: corner scaffolding cannot be removed");
  }
  RemoveResult result;
  result.vertex = vertex;
  std::vector<LinkEdge> chain;
  result.removed_triangles = collect_star(vertex, &chain);  // Validates id.

  // Re-points `tid`'s adjacency across the (va, vb) edge at `to`.  Serves
  // both the original outside triangles and freshly clipped ears.
  const auto patch = [&](int tid, int va, int vb, int to) {
    if (tid == -1) return;
    auto& t = triangles_[static_cast<std::size_t>(tid)];
    for (int e = 0; e < 3; ++e) {
      const int wa = t.v[static_cast<std::size_t>((e + 1) % 3)];
      const int wb = t.v[static_cast<std::size_t>((e + 2) % 3)];
      if ((wa == va && wb == vb) || (wa == vb && wb == va)) {
        t.nbr[static_cast<std::size_t>(e)] = to;
        return;
      }
    }
    throw std::logic_error("Delaunay::remove: adjacency patch missed");
  };
  const auto pos_of = [&](int vid) {
    return vertices_[static_cast<std::size_t>(vid)].pos;
  };

  // Ear-clip the hole polygon (the link chain, CCW around the removed
  // vertex; border fans close with a collinear border segment).  An ear is
  // clipped only when it is CCW and no other chain vertex lies strictly
  // inside its circumcircle — the Delaunay ear rule, which restores the
  // empty-circumcircle property over the hole.  Cocircular degeneracies
  // can starve that rule, so a second pass accepts any CCW ear whose
  // closed triangle is empty of chain vertices (still a valid, if
  // non-unique, triangulation).  New ears are allocated before the star is
  // freed so removed/created ids never overlap.
  std::vector<int> created;
  created.reserve(chain.size() > 2 ? chain.size() - 2 : 0);
  const auto clip_at = [&](std::size_t j) {
    const std::size_t m = chain.size();
    const std::size_t jp = (j + m - 1) % m;
    const std::size_t jn = (j + 1) % m;
    const int tid = alloc_triangle();
    auto& t = triangles_[static_cast<std::size_t>(tid)];
    t.v = {chain[jp].vertex, chain[j].vertex, chain[jn].vertex};
    t.nbr = {chain[j].outside, -1, chain[jp].outside};
    patch(chain[j].outside, chain[j].vertex, chain[jn].vertex, tid);
    patch(chain[jp].outside, chain[jp].vertex, chain[j].vertex, tid);
    created.push_back(tid);
    chain[jp].outside = tid;  // Edge (jp, jn) now borders the new ear.
    chain.erase(chain.begin() + static_cast<std::ptrdiff_t>(j));
  };
  while (chain.size() > 3) {
    const std::size_t m = chain.size();
    std::size_t pick = m;
    for (std::size_t j = 0; j < m && pick == m; ++j) {
      const Vec2 a = pos_of(chain[(j + m - 1) % m].vertex);
      const Vec2 b = pos_of(chain[j].vertex);
      const Vec2 c = pos_of(chain[(j + 1) % m].vertex);
      if (orient2d(a, b, c) <= 0) continue;
      bool delaunay = true;
      for (std::size_t w = 0; w < m && delaunay; ++w) {
        if (w == j || w == (j + m - 1) % m || w == (j + 1) % m) continue;
        CPS_COUNT("geometry.delaunay.incircle_calls", 1);
        if (incircle(a, b, c, pos_of(chain[w].vertex)) > 0) delaunay = false;
      }
      if (delaunay) pick = j;
    }
    if (pick == m) {
      // Cocircular starvation: fall back to plain ear validity (CCW and
      // no chain vertex inside or on the closed ear triangle).
      for (std::size_t j = 0; j < m && pick == m; ++j) {
        const Vec2 a = pos_of(chain[(j + m - 1) % m].vertex);
        const Vec2 b = pos_of(chain[j].vertex);
        const Vec2 c = pos_of(chain[(j + 1) % m].vertex);
        if (orient2d(a, b, c) <= 0) continue;
        bool empty = true;
        for (std::size_t w = 0; w < m && empty; ++w) {
          if (w == j || w == (j + m - 1) % m || w == (j + 1) % m) continue;
          const Vec2 q = pos_of(chain[w].vertex);
          if (orient2d(a, b, q) >= 0 && orient2d(b, c, q) >= 0 &&
              orient2d(c, a, q) >= 0) {
            empty = false;
          }
        }
        if (empty) pick = j;
      }
    }
    if (pick == m) {
      throw std::logic_error("Delaunay::remove: no clippable ear");
    }
    clip_at(pick);
  }
  {
    // Last triangle fills the remaining hole; all three edges patch.
    const int tid = alloc_triangle();
    auto& t = triangles_[static_cast<std::size_t>(tid)];
    t.v = {chain[0].vertex, chain[1].vertex, chain[2].vertex};
    t.nbr = {chain[1].outside, chain[2].outside, chain[0].outside};
    patch(chain[0].outside, chain[0].vertex, chain[1].vertex, tid);
    patch(chain[1].outside, chain[1].vertex, chain[2].vertex, tid);
    patch(chain[2].outside, chain[2].vertex, chain[0].vertex, tid);
    created.push_back(tid);
  }

  // No explicit hint refresh here: free_triangle's stale-hint guard resets
  // locate_hint_ iff the star contained it, which is exactly the invariant
  // the next locate() needs (alive or -1).
  for (const int tid : result.removed_triangles) free_triangle(tid);
  vertex_alive_[static_cast<std::size_t>(vertex)] = 0;

  CPS_COUNT("geometry.delaunay.removes", 1);
  CPS_COUNT("geometry.delaunay.star_triangles",
            result.removed_triangles.size());
  result.created_triangles = std::move(created);
  return result;
}

MoveResult Delaunay::move_vertex(int vertex, Vec2 p, double z,
                                 double duplicate_tol) {
  MoveResult result;
  const RemoveResult removal = remove(vertex);
  const InsertResult ins = insert(p, z, duplicate_tol);
  result.vertex = ins.vertex;
  result.inserted = ins.inserted;
  result.z_changed = ins.z_changed;
  // Every alive triangle the move touched: the removal's hole fan (any
  // ear re-removed by the insertion is covered by the insertion's own
  // fan), the insertion's fan, and the duplicate path's star.  A freed
  // ear slot may have been recycled as an insertion triangle, so the
  // union is deduplicated.
  result.changed_triangles.reserve(removal.created_triangles.size() +
                                   ins.created_triangles.size() +
                                   ins.star_triangles.size());
  for (const int tid : removal.created_triangles) {
    if (triangles_[static_cast<std::size_t>(tid)].alive) {
      result.changed_triangles.push_back(tid);
    }
  }
  result.changed_triangles.insert(result.changed_triangles.end(),
                                  ins.created_triangles.begin(),
                                  ins.created_triangles.end());
  result.changed_triangles.insert(result.changed_triangles.end(),
                                  ins.star_triangles.begin(),
                                  ins.star_triangles.end());
  std::sort(result.changed_triangles.begin(), result.changed_triangles.end());
  result.changed_triangles.erase(std::unique(result.changed_triangles.begin(),
                                             result.changed_triangles.end()),
                                 result.changed_triangles.end());
  return result;
}

bool Delaunay::validate_topology() const {
  for (std::size_t i = 0; i < triangles_.size(); ++i) {
    const auto& t = triangles_[i];
    if (!t.alive) continue;
    const Vec2 a = vertices_[static_cast<std::size_t>(t.v[0])].pos;
    const Vec2 b = vertices_[static_cast<std::size_t>(t.v[1])].pos;
    const Vec2 c = vertices_[static_cast<std::size_t>(t.v[2])].pos;
    if (orient2d(a, b, c) <= 0) return false;
    for (int e = 0; e < 3; ++e) {
      const int n = t.nbr[static_cast<std::size_t>(e)];
      if (n == -1) continue;
      if (n < 0 || n >= static_cast<int>(triangles_.size())) return false;
      const auto& u = triangles_[static_cast<std::size_t>(n)];
      if (!u.alive) return false;
      bool mutual = false;
      for (int f = 0; f < 3; ++f) {
        if (u.nbr[static_cast<std::size_t>(f)] == static_cast<int>(i)) {
          const int va = u.v[static_cast<std::size_t>((f + 1) % 3)];
          const int vb = u.v[static_cast<std::size_t>((f + 2) % 3)];
          const int wa = t.v[static_cast<std::size_t>((e + 1) % 3)];
          const int wb = t.v[static_cast<std::size_t>((e + 2) % 3)];
          if ((va == wb && vb == wa) || (va == wa && vb == wb)) mutual = true;
        }
      }
      if (!mutual) return false;
    }
  }
  return true;
}

bool Delaunay::is_delaunay() const {
  const auto alive = alive_triangles();
  for (const int tid : alive) {
    const auto& t = triangles_[static_cast<std::size_t>(tid)];
    const Vec2 a = vertices_[static_cast<std::size_t>(t.v[0])].pos;
    const Vec2 b = vertices_[static_cast<std::size_t>(t.v[1])].pos;
    const Vec2 c = vertices_[static_cast<std::size_t>(t.v[2])].pos;
    for (std::size_t v = 0; v < vertices_.size(); ++v) {
      const int vid = static_cast<int>(v);
      if (vid == t.v[0] || vid == t.v[1] || vid == t.v[2]) continue;
      // Removed vertices keep their last position but belong to no alive
      // triangle; the empty-circumcircle property quantifies over the
      // triangulation's actual point set only.
      if (vertex_alive_[v] == 0) continue;
      if (incircle(a, b, c, vertices_[v].pos) > 0) return false;
    }
  }
  return true;
}

double Delaunay::total_area() const {
  double sum = 0.0;
  for (const int tid : alive_triangles()) {
    sum += triangle_geometry(tid).area();
  }
  return sum;
}

}  // namespace cps::geo
