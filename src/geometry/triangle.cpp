#include "geometry/triangle.hpp"

#include <algorithm>
#include <cmath>

#include "geometry/predicates.hpp"

namespace cps::geo {

double Triangle::signed_area() const noexcept {
  return 0.5 * orient2d_value(v_[0], v_[1], v_[2]);
}

double Triangle::area() const noexcept { return std::abs(signed_area()); }

bool Triangle::degenerate(double tol) const noexcept {
  const double scale = std::max({distance_sq(v_[0], v_[1]),
                                 distance_sq(v_[1], v_[2]),
                                 distance_sq(v_[2], v_[0])});
  return std::abs(signed_area()) <= tol * std::max(scale, 1e-300);
}

Barycentric Triangle::barycentric(Vec2 p) const noexcept {
  const double total = orient2d_value(v_[0], v_[1], v_[2]);
  if (total == 0.0) return {};
  const double w0 = orient2d_value(p, v_[1], v_[2]) / total;
  const double w1 = orient2d_value(v_[0], p, v_[2]) / total;
  return {w0, w1, 1.0 - w0 - w1};
}

bool Triangle::contains(Vec2 p, double tol) const noexcept {
  return barycentric(p).inside(tol);
}

std::optional<Circumcircle> Triangle::circumcircle() const noexcept {
  const double d = 2.0 * orient2d_value(v_[0], v_[1], v_[2]);
  if (d == 0.0) return std::nullopt;
  const Vec2 a = v_[0];
  const Vec2 b = v_[1];
  const Vec2 c = v_[2];
  const double a2 = a.norm_sq();
  const double b2 = b.norm_sq();
  const double c2 = c.norm_sq();
  const Vec2 center{
      (a2 * (b.y - c.y) + b2 * (c.y - a.y) + c2 * (a.y - b.y)) / d,
      (a2 * (c.x - b.x) + b2 * (a.x - c.x) + c2 * (b.x - a.x)) / d};
  return Circumcircle{center, distance_sq(center, a)};
}

double Triangle::longest_edge() const noexcept {
  return std::sqrt(std::max({distance_sq(v_[0], v_[1]),
                             distance_sq(v_[1], v_[2]),
                             distance_sq(v_[2], v_[0])}));
}

double interpolate_linear(const Triangle& t, double za, double zb, double zc,
                          Vec2 p) noexcept {
  const Barycentric w = t.barycentric(p);
  return w.w0 * za + w.w1 * zb + w.w2 * zc;
}

}  // namespace cps::geo
