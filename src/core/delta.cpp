#include "core/delta.hpp"

#include "core/delta_detail.hpp"
#include "core/delta_incremental.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <list>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "geometry/predicates.hpp"
#include "obs/obs.hpp"
#include "parallel/simd.hpp"
#include "parallel/thread_pool.hpp"

namespace cps::core {
namespace {

// Row-sweep reduction used by both point-location engines.  While the
// telemetry timeline is armed the chunk layout is pinned at every thread
// count (parallel_reduce_chunked) so the annotated δ, the walk-hint
// counters, and therefore the timeline JSONL are bit-identical across
// --threads values; disarmed runs keep parallel_reduce's serial shortcut,
// bit-identical to the original serial evaluation.
template <typename Map>
double reduce_rows(std::size_t n, Map&& map) {
  const auto combine = [](double a, double b) { return a + b; };
  if (obs::timeline().armed()) {
    return par::parallel_reduce_chunked(n, 0.0, std::forward<Map>(map),
                                        combine, /*grain=*/4);
  }
  return par::parallel_reduce(n, 0.0, std::forward<Map>(map), combine,
                              /*grain=*/4);
}

double interpolate_in(const geo::Delaunay& dt, int tri, geo::Vec2 p) {
  const auto& t = dt.triangle(tri);
  return geo::interpolate_linear(dt.triangle_geometry(tri),
                                 dt.vertex(t.v[0]).z, dt.vertex(t.v[1]).z,
                                 dt.vertex(t.v[2]).z, p);
}

// RowSpan, TriangleSoA, strictly_inside, and the span-emission guard
// formulas moved to core/delta_detail.hpp so the incremental engine shares
// the raster's exact arithmetic (the bit-identity contract).
using detail::RowSpan;
using detail::TriangleSoA;
using detail::strictly_inside;

}  // namespace

struct DeltaMetric::RefCache {
  using Key = std::uint64_t;
  struct Entry {
    Key key;
    std::shared_ptr<const std::vector<double>> rows;
  };

  /// One independently locked LRU list.  With a single shard (the
  /// default) this is exactly the original PR 7 cache; the service's
  /// shared mode splits the key space over several shards so concurrent
  /// queries on different fields do not serialise on one mutex.
  struct Shard {
    mutable std::mutex mutex;
    std::list<Entry> entries;  // Front = most recently used.
  };

  /// The field's content key IS the cache key: parameter hashes for the
  /// analytic zoo (equal-parameter fields share entries), never-reused
  /// instance ids elsewhere, and FieldSlice folds its slice time in.
  /// Nothing address-derived — a recycled allocation cannot resurrect a
  /// dead field's entry (the PR 5 ABA hazard that kept the cache opt-in).
  static Key key_for(const field::Field& reference) {
    return reference.content_key();
  }

  explicit RefCache(std::size_t shard_count = 1) {
    shards.reserve(shard_count > 0 ? shard_count : 1);
    for (std::size_t s = 0; s < (shard_count > 0 ? shard_count : 1); ++s) {
      shards.push_back(std::make_unique<Shard>());
    }
  }

  /// Deterministic key -> shard map (Fibonacci multiplicative mix: the
  /// content key's low bits can be structured, e.g. sequential instance
  /// ids).
  Shard& shard_for(Key key) const {
    const std::uint64_t mixed = key * 0x9E3779B97F4A7C15ull;
    return *shards[static_cast<std::size_t>(mixed >> 32) % shards.size()];
  }

  std::size_t capacity = kDefaultReferenceCacheCapacity;  // Per shard.
  std::vector<std::unique_ptr<Shard>> shards;
};

DeltaMetric::DeltaMetric(const num::Rect& region, std::size_t resolution)
    : region_(region),
      resolution_(resolution),
      cache_(std::make_unique<RefCache>()) {
  if (region.width() <= 0.0 || region.height() <= 0.0) {
    throw std::invalid_argument("DeltaMetric: empty region");
  }
  if (resolution == 0) throw std::invalid_argument("DeltaMetric: resolution");
}

DeltaMetric::~DeltaMetric() = default;
DeltaMetric::DeltaMetric(DeltaMetric&&) noexcept = default;
DeltaMetric& DeltaMetric::operator=(DeltaMetric&&) noexcept = default;

DeltaMetric::DeltaMetric(const DeltaMetric& other)
    : region_(other.region_),
      resolution_(other.resolution_),
      engine_(other.engine_),
      cache_(std::make_unique<RefCache>(other.cache_->shards.size())) {
  cache_->capacity = other.cache_->capacity;
}

DeltaMetric& DeltaMetric::operator=(const DeltaMetric& other) {
  if (this == &other) return *this;
  region_ = other.region_;
  resolution_ = other.resolution_;
  engine_ = other.engine_;
  cache_ = std::make_unique<RefCache>(other.cache_->shards.size());
  cache_->capacity = other.cache_->capacity;
  return *this;
}

void DeltaMetric::set_reference_cache_capacity(std::size_t max_entries) {
  cache_->capacity = max_entries;
  for (auto& shard : cache_->shards) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    while (shard->entries.size() > max_entries) shard->entries.pop_back();
  }
}

std::size_t DeltaMetric::reference_cache_capacity() const noexcept {
  return cache_->capacity;
}

void DeltaMetric::set_reference_cache_shards(std::size_t shards) {
  if (shards == 0) {
    throw std::invalid_argument("DeltaMetric: reference cache shards == 0");
  }
  const std::size_t capacity = cache_->capacity;
  cache_ = std::make_unique<RefCache>(shards);
  cache_->capacity = capacity;
}

std::size_t DeltaMetric::reference_cache_shards() const noexcept {
  return cache_->shards.size();
}

std::size_t DeltaMetric::reference_cache_size() const {
  std::size_t total = 0;
  for (const auto& shard : cache_->shards) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->entries.size();
  }
  return total;
}

void DeltaMetric::clear_reference_cache() {
  for (auto& shard : cache_->shards) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    shard->entries.clear();
  }
}

std::shared_ptr<const std::vector<double>>
DeltaMetric::cached_reference_lattice(const field::Field& reference,
                                      const num::MidpointLattice& lat) const {
  if (cache_->capacity == 0) return nullptr;
  const RefCache::Key key = RefCache::key_for(reference);
  RefCache::Shard& shard = cache_->shard_for(key);
  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    for (auto it = shard.entries.begin(); it != shard.entries.end(); ++it) {
      if (it->key == key) {
        shard.entries.splice(shard.entries.begin(), shard.entries, it);
        CPS_COUNT("core.delta.ref_cache_hits", 1);
        return shard.entries.front().rows;
      }
    }
  }
  CPS_COUNT("core.delta.ref_cache_misses", 1);
  // Fill outside the lock: row-parallel, each row written by exactly one
  // chunk, so the buffer's contents are thread-count independent.
  auto rows = std::make_shared<std::vector<double>>(resolution_ * resolution_);
  par::parallel_for_chunks(
      resolution_,
      [&](std::size_t row_begin, std::size_t row_end) {
        for (std::size_t j = row_begin; j < row_end; ++j) {
          reference.value_row(lat.y(j), lat.xs(),
                              rows->data() + j * resolution_);
          CPS_COUNT("core.delta.batch_rows", 1);
        }
      },
      /*grain=*/4);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  // A racing fill may have inserted the same key meanwhile; reuse it so
  // every caller shares one buffer.
  for (auto it = shard.entries.begin(); it != shard.entries.end(); ++it) {
    if (it->key == key) {
      shard.entries.splice(shard.entries.begin(), shard.entries, it);
      return shard.entries.front().rows;
    }
  }
  shard.entries.push_front(RefCache::Entry{key, rows});
  while (shard.entries.size() > cache_->capacity) shard.entries.pop_back();
  return rows;
}

double DeltaMetric::delta(const field::Field& reference,
                          const geo::Delaunay& dt) const {
  const num::MidpointLattice lat(region_, resolution_, resolution_);
  double value;
  if (engine_ == DeltaEngine::kIncremental) {
    // A stateless call has no event stream to consume: build the tracker
    // from scratch against this triangulation and read its running total.
    // This keeps the engine enum total (sweeps can select kIncremental
    // uniformly) and doubles as the from-scratch oracle entry point; the
    // savings come from holding an IncrementalDelta across events instead.
    value = IncrementalDelta(*this, reference, dt).value();
  } else {
    const auto cached = cached_reference_lattice(reference, lat);
    const double* ref_lattice = cached ? cached->data() : nullptr;
    const double sum = engine_ == DeltaEngine::kRaster
                           ? delta_raster(reference, dt, lat, ref_lattice)
                           : delta_walk(reference, dt, lat, ref_lattice);
    value = sum * lat.hx() * lat.hy();
  }
  // δ-evaluation boundary for the telemetry timeline: the figure drivers
  // sample δ sparsely (every few slots), so each evaluation gets its own
  // sample carrying the value; counters between two evaluations attribute
  // cache/raster work to the right evaluation interval.
#if defined(CPS_OBS_ENABLED)
  if (obs::timeline().armed()) {
    static std::atomic<std::int64_t> eval_seq{0};
    CPS_TIMELINE_ANNOTATE("delta", value);
    CPS_TIMELINE_SAMPLE("core.delta.eval",
                        eval_seq.fetch_add(1, std::memory_order_relaxed));
  }
#endif
  return value;
}

double DeltaMetric::delta_walk(const field::Field& reference,
                               const geo::Delaunay& dt,
                               const num::MidpointLattice& lat,
                               const double* ref_lattice) const {
  // Row sweep with a remembering walk: consecutive point locations walk
  // from the previous cell's triangle, making each walk O(1) on coherent
  // rows.  Each chunk threads its own hint and partial sums combine in
  // ascending chunk order, so any thread count reproduces the same bits.
  // The reference field is sampled one batched row at a time (or read from
  // the memoized lattice — same bits either way).
  const std::span<const double> xs = lat.xs();
  return reduce_rows(
      resolution_,
      [&](std::size_t row_begin, std::size_t row_end) {
        double s = 0.0;
        int hint = -1;
        std::vector<double> row_buf;
        if (ref_lattice == nullptr) row_buf.resize(resolution_);
        for (std::size_t j = row_begin; j < row_end; ++j) {
          const double y = lat.y(j);
          const double* ref;
          if (ref_lattice != nullptr) {
            ref = ref_lattice + j * resolution_;
          } else {
            reference.value_row(y, xs, row_buf.data());
            CPS_COUNT("core.delta.batch_rows", 1);
            ref = row_buf.data();
          }
          for (std::size_t i = 0; i < resolution_; ++i) {
            const geo::Vec2 p{xs[i], y};
            hint = dt.locate_from(p, hint);
            s += std::abs(ref[i] - interpolate_in(dt, hint, p));
          }
        }
        return s;
      });
}

double DeltaMetric::delta_raster(const field::Field& reference,
                                 const geo::Delaunay& dt,
                                 const num::MidpointLattice& lat,
                                 const double* ref_lattice) const {
  // Scan-convert every alive triangle into per-row candidate column spans
  // once (O(triangles x covered rows) instead of resolution^2 walks), then
  // sweep each row assigning strictly-interior points from the span
  // candidates.  Points on an edge or vertex — where closed containment is
  // ambiguous and locate_from's answer is hint-dependent — fall back to
  // locate_from seeded with exactly the hint the walk engine would carry
  // at that point (fast assignments equal the walk result, so the hint
  // chain replays bit-for-bit), keeping assignments identical to kWalk.
  const std::span<const double> xs = lat.xs();
  const auto res = static_cast<long>(resolution_);
  const std::vector<int> alive = dt.alive_triangles();
  TriangleSoA soa;
  soa.build(dt, alive);
  std::vector<std::vector<RowSpan>> row_spans(resolution_);
  std::size_t spans_emitted = 0;
  for (std::size_t slot = 0; slot < alive.size(); ++slot) {
    const int tid = alive[slot];
    detail::for_each_covered_range(
        soa.a(static_cast<std::uint32_t>(slot)),
        soa.b(static_cast<std::uint32_t>(slot)),
        soa.c(static_cast<std::uint32_t>(slot)), region_, lat, res,
        [&](long j, long ilo, long ihi) {
          row_spans[static_cast<std::size_t>(j)].push_back(
              RowSpan{tid, static_cast<std::uint32_t>(slot),
                      static_cast<int>(ilo), static_cast<int>(ihi)});
          ++spans_emitted;
        });
  }
  for (auto& spans : row_spans) {
    std::sort(spans.begin(), spans.end(),
              [](const RowSpan& l, const RowSpan& r) {
                return l.ilo != r.ilo ? l.ilo < r.ilo : l.tri < r.tri;
              });
  }
  CPS_COUNT("core.delta.raster_spans", spans_emitted);

  return reduce_rows(
      resolution_,
      [&](std::size_t row_begin, std::size_t row_end) {
        double s = 0.0;
        int hint = -1;
        std::size_t fast = 0;
        std::size_t fallback = 0;
        std::vector<double> row_buf;
        if (ref_lattice == nullptr) row_buf.resize(resolution_);
        std::vector<RowSpan> active;
        std::vector<std::uint32_t> slots(resolution_);
        std::vector<double> diffs(resolution_);
        for (std::size_t j = row_begin; j < row_end; ++j) {
          const double y = lat.y(j);
          const double* ref;
          if (ref_lattice != nullptr) {
            ref = ref_lattice + j * resolution_;
          } else {
            reference.value_row(y, xs, row_buf.data());
            CPS_COUNT("core.delta.batch_rows", 1);
            ref = row_buf.data();
          }
          // Phase 1 — assignment: the span sweep decides each point's
          // triangle (SoA slot), threading the same hint chain as before
          // so fallback walks replay bit-for-bit.
          const auto& spans = row_spans[j];
          std::size_t next = 0;
          active.clear();
          for (std::size_t i = 0; i < resolution_; ++i) {
            const int col = static_cast<int>(i);
            while (next < spans.size() && spans[next].ilo <= col) {
              active.push_back(spans[next++]);
            }
            const geo::Vec2 p{xs[i], y};
            int assigned = -1;
            std::uint32_t slot = 0;
            for (std::size_t k = 0; k < active.size();) {
              if (active[k].ihi < col) {
                active[k] = active.back();
                active.pop_back();
                continue;
              }
              if (strictly_inside(soa, active[k].slot, p)) {
                assigned = active[k].tri;
                slot = active[k].slot;
                break;
              }
              ++k;
            }
            if (assigned < 0) {
              assigned = dt.locate_from(p, hint);
              slot = soa.slot_of[static_cast<std::size_t>(assigned)];
              ++fallback;
            } else {
              ++fast;
            }
            hint = assigned;
            slots[i] = slot;
          }
          // Phase 2 — interpolation: interpolate_linear's exact
          // expression (barycentric via orient2d_value over the hoisted
          // denominator) gathered from the SoA mirror; element-wise, so
          // it vectorizes.  The degenerate-denominator guard replays the
          // scalar path's all-zero-weights result (never taken for a
          // Delaunay triangulation, which stores no degenerate
          // triangles).
          CPS_SIMD
          for (std::size_t i = 0; i < resolution_; ++i) {
            const std::uint32_t t = slots[i];
            const double px = xs[i];
            const double total = soa.total[t];
            const double w0 = ((soa.bx[t] - px) * (soa.cy[t] - y) -
                               (soa.by[t] - y) * (soa.cx[t] - px)) /
                              total;
            const double w1 = ((px - soa.ax[t]) * (soa.cy[t] - soa.ay[t]) -
                               (y - soa.ay[t]) * (soa.cx[t] - soa.ax[t])) /
                              total;
            const double w2 = 1.0 - w0 - w1;
            const double z =
                w0 * soa.za[t] + w1 * soa.zb[t] + w2 * soa.zc[t];
            diffs[i] = std::abs(ref[i] - (total == 0.0 ? 0.0 : z));
          }
          // Phase 3 — accumulation, kept serial in point order: the sum's
          // rounding sequence is part of the bit-identity contract.
          for (std::size_t i = 0; i < resolution_; ++i) s += diffs[i];
        }
        CPS_COUNT("core.delta.raster_fast_assigns", fast);
        CPS_COUNT("core.delta.raster_fallback_locates", fallback);
        return s;
      });
}

std::shared_ptr<const std::vector<double>> DeltaMetric::reference_lattice(
    const field::Field& reference) const {
  const num::MidpointLattice lat(region_, resolution_, resolution_);
  if (auto cached = cached_reference_lattice(reference, lat)) return cached;
  // Caching disabled: build a private buffer with the same row-batched
  // sampling (same bits; the incremental engine needs the lattice either
  // way, it just doesn't get shared).
  auto rows = std::make_shared<std::vector<double>>(resolution_ * resolution_);
  par::parallel_for_chunks(
      resolution_,
      [&](std::size_t row_begin, std::size_t row_end) {
        for (std::size_t j = row_begin; j < row_end; ++j) {
          reference.value_row(lat.y(j), lat.xs(),
                              rows->data() + j * resolution_);
          CPS_COUNT("core.delta.batch_rows", 1);
        }
      },
      /*grain=*/4);
  return rows;
}

double DeltaMetric::delta_from_samples(const field::Field& reference,
                                       std::span<const Sample> samples,
                                       CornerPolicy policy) const {
  const geo::Delaunay dt =
      reconstruct_surface(samples, region_, policy, &reference);
  return delta(reference, dt);
}

double DeltaMetric::delta_of_deployment(const field::Field& reference,
                                        std::span<const geo::Vec2> positions,
                                        CornerPolicy policy) const {
  return delta_from_samples(reference, take_samples(reference, positions),
                            policy);
}

double DeltaMetric::delta_between(const field::Field& a,
                                  const field::Field& b) const {
  // Same lattice and accumulation order as num::integrate_midpoint (via
  // the shared MidpointLattice), but row-parallel with batched sampling:
  // fields are pure reads, chunk partials combine in order.
  const num::MidpointLattice lat(region_, resolution_, resolution_);
  const std::span<const double> xs = lat.xs();
  const double sum = par::parallel_reduce(
      resolution_, 0.0,
      [&](std::size_t row_begin, std::size_t row_end) {
        double s = 0.0;
        std::vector<double> row_a(resolution_);
        std::vector<double> row_b(resolution_);
        std::vector<double> diffs(resolution_);
        for (std::size_t j = row_begin; j < row_end; ++j) {
          const double y = lat.y(j);
          a.value_row(y, xs, row_a.data());
          b.value_row(y, xs, row_b.data());
          CPS_COUNT("core.delta.batch_rows", 2);
          const double* pa = row_a.data();
          const double* pb = row_b.data();
          double* pd = diffs.data();
          CPS_SIMD
          for (std::size_t i = 0; i < resolution_; ++i) {
            pd[i] = std::abs(pa[i] - pb[i]);
          }
          // Summed serially in point order — bit-identity contract.
          for (std::size_t i = 0; i < resolution_; ++i) s += pd[i];
        }
        return s;
      },
      [](double a_, double b_) { return a_ + b_; }, /*grain=*/4);
  return sum * lat.hx() * lat.hy();
}

double DeltaMetric::mean_abs_error(double delta_value) const noexcept {
  return delta_value / region_.area();
}

}  // namespace cps::core
