#include "core/delta.hpp"

#include <cmath>
#include <stdexcept>

#include "parallel/thread_pool.hpp"

namespace cps::core {
namespace {

double interpolate_in(const geo::Delaunay& dt, int tri, geo::Vec2 p) {
  const auto& t = dt.triangle(tri);
  return geo::interpolate_linear(dt.triangle_geometry(tri),
                                 dt.vertex(t.v[0]).z, dt.vertex(t.v[1]).z,
                                 dt.vertex(t.v[2]).z, p);
}

}  // namespace

DeltaMetric::DeltaMetric(const num::Rect& region, std::size_t resolution)
    : region_(region), resolution_(resolution) {
  if (region.width() <= 0.0 || region.height() <= 0.0) {
    throw std::invalid_argument("DeltaMetric: empty region");
  }
  if (resolution == 0) throw std::invalid_argument("DeltaMetric: resolution");
}

double DeltaMetric::delta(const field::Field& reference,
                          const geo::Delaunay& dt) const {
  // Manual midpoint loop (rather than integrate_midpoint) so consecutive
  // point locations walk from the previous cell's triangle — row-coherent
  // queries make each walk O(1).  The sweep runs in parallel over whole
  // rows via locate_from (the shared-hint-free walk): each chunk threads
  // its own hint, and partial sums are combined in ascending chunk order,
  // so any given thread count reproduces the same bits.
  const double hx = region_.width() / static_cast<double>(resolution_);
  const double hy = region_.height() / static_cast<double>(resolution_);
  const double sum = par::parallel_reduce(
      resolution_, 0.0,
      [&](std::size_t row_begin, std::size_t row_end) {
        double s = 0.0;
        int hint = -1;
        for (std::size_t j = row_begin; j < row_end; ++j) {
          const double y = region_.y0 + (static_cast<double>(j) + 0.5) * hy;
          for (std::size_t i = 0; i < resolution_; ++i) {
            const double x =
                region_.x0 + (static_cast<double>(i) + 0.5) * hx;
            hint = dt.locate_from({x, y}, hint);
            s += std::abs(reference.value(x, y) -
                          interpolate_in(dt, hint, {x, y}));
          }
        }
        return s;
      },
      [](double a, double b) { return a + b; }, /*grain=*/4);
  return sum * hx * hy;
}

double DeltaMetric::delta_from_samples(const field::Field& reference,
                                       std::span<const Sample> samples,
                                       CornerPolicy policy) const {
  const geo::Delaunay dt =
      reconstruct_surface(samples, region_, policy, &reference);
  return delta(reference, dt);
}

double DeltaMetric::delta_of_deployment(const field::Field& reference,
                                        std::span<const geo::Vec2> positions,
                                        CornerPolicy policy) const {
  return delta_from_samples(reference, take_samples(reference, positions),
                            policy);
}

double DeltaMetric::delta_between(const field::Field& a,
                                  const field::Field& b) const {
  // Same grid and accumulation order as num::integrate_midpoint, but
  // row-parallel: fields are pure reads, chunk partials combine in order.
  const double hx = region_.width() / static_cast<double>(resolution_);
  const double hy = region_.height() / static_cast<double>(resolution_);
  const double sum = par::parallel_reduce(
      resolution_, 0.0,
      [&](std::size_t row_begin, std::size_t row_end) {
        double s = 0.0;
        for (std::size_t j = row_begin; j < row_end; ++j) {
          const double y = region_.y0 + (static_cast<double>(j) + 0.5) * hy;
          for (std::size_t i = 0; i < resolution_; ++i) {
            const double x =
                region_.x0 + (static_cast<double>(i) + 0.5) * hx;
            s += std::abs(a.value(x, y) - b.value(x, y));
          }
        }
        return s;
      },
      [](double a_, double b_) { return a_ + b_; }, /*grain=*/4);
  return sum * hx * hy;
}

double DeltaMetric::mean_abs_error(double delta_value) const noexcept {
  return delta_value / region_.area();
}

}  // namespace cps::core
