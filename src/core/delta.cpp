#include "core/delta.hpp"

#include <cmath>
#include <stdexcept>

namespace cps::core {

DeltaMetric::DeltaMetric(const num::Rect& region, std::size_t resolution)
    : region_(region), resolution_(resolution) {
  if (region.width() <= 0.0 || region.height() <= 0.0) {
    throw std::invalid_argument("DeltaMetric: empty region");
  }
  if (resolution == 0) throw std::invalid_argument("DeltaMetric: resolution");
}

double DeltaMetric::delta(const field::Field& reference,
                          const geo::Delaunay& dt) const {
  // Manual midpoint loop (rather than integrate_midpoint) so consecutive
  // locate() calls walk from the previous cell's triangle — row-coherent
  // queries make each walk O(1).
  const double hx = region_.width() / static_cast<double>(resolution_);
  const double hy = region_.height() / static_cast<double>(resolution_);
  double sum = 0.0;
  for (std::size_t j = 0; j < resolution_; ++j) {
    const double y = region_.y0 + (static_cast<double>(j) + 0.5) * hy;
    for (std::size_t i = 0; i < resolution_; ++i) {
      const double x = region_.x0 + (static_cast<double>(i) + 0.5) * hx;
      sum += std::abs(reference.value(x, y) - dt.interpolate({x, y}));
    }
  }
  return sum * hx * hy;
}

double DeltaMetric::delta_from_samples(const field::Field& reference,
                                       std::span<const Sample> samples,
                                       CornerPolicy policy) const {
  const geo::Delaunay dt =
      reconstruct_surface(samples, region_, policy, &reference);
  return delta(reference, dt);
}

double DeltaMetric::delta_of_deployment(const field::Field& reference,
                                        std::span<const geo::Vec2> positions,
                                        CornerPolicy policy) const {
  return delta_from_samples(reference, take_samples(reference, positions),
                            policy);
}

double DeltaMetric::delta_between(const field::Field& a,
                                  const field::Field& b) const {
  return num::integrate_midpoint(
      region_,
      [&](double x, double y) { return std::abs(a.value(x, y) - b.value(x, y)); },
      resolution_, resolution_);
}

double DeltaMetric::mean_abs_error(double delta_value) const noexcept {
  return delta_value / region_.area();
}

}  // namespace cps::core
