#include "core/cma_sharding.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/obs.hpp"
#include "parallel/thread_pool.hpp"

namespace cps::core {
namespace {

/// Candidate sets below this size are matched by a plain scan; above it a
/// per-tile SpatialHash pays for its build.  At the paper's density the
/// scan wins for boundary tiles and the hash for interior ones.
constexpr std::size_t kHashCutoff = 64;

/// Squared distance from p to the closed rectangle (0 inside).
double rect_distance_sq(geo::Vec2 p, const num::Rect& r) noexcept {
  const double dx = p.x < r.x0 ? r.x0 - p.x : (p.x > r.x1 ? p.x - r.x1 : 0.0);
  const double dy = p.y < r.y0 ? r.y0 - p.y : (p.y > r.y1 ? p.y - r.y1 : 0.0);
  return dx * dx + dy * dy;
}

}  // namespace

ShardGrid::ShardGrid(const num::Rect& region, double tile_size,
                     double ghost_width)
    : region_(region), ghost_(ghost_width) {
  if (!(tile_size > 0.0) || !(ghost_width > 0.0)) {
    throw std::invalid_argument("ShardGrid: tile_size and ghost_width > 0");
  }
  // The 3x3 ghost coverage argument needs side >= ghost: anything within
  // ghost of a tile rectangle then lies in the tile or a direct
  // neighbour.
  const double side = std::max(tile_size, ghost_width);
  const double w = region.x1 - region.x0;
  const double h = region.y1 - region.y0;
  cols_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::floor(w / side)));
  rows_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::floor(h / side)));
  // Stretch the sides so cols_ x rows_ tiles cover the region exactly;
  // stretching keeps them >= side, never below.
  sx_ = w > 0.0 ? w / static_cast<double>(cols_) : 1.0;
  sy_ = h > 0.0 ? h / static_cast<double>(rows_) : 1.0;
  tiles_.resize(cols_ * rows_);
}

std::size_t ShardGrid::tile_of(geo::Vec2 p) const noexcept {
  // floor + clamp: a node exactly on a shared edge belongs to the
  // higher-index tile, uniquely and position-deterministically.
  double c = std::floor((p.x - region_.x0) / sx_);
  double r = std::floor((p.y - region_.y0) / sy_);
  std::size_t col = c > 0.0 ? static_cast<std::size_t>(c) : 0;
  std::size_t row = r > 0.0 ? static_cast<std::size_t>(r) : 0;
  if (col >= cols_) col = cols_ - 1;
  if (row >= rows_) row = rows_ - 1;
  return row * cols_ + col;
}

num::Rect ShardGrid::tile_rect(std::size_t t) const noexcept {
  const std::size_t col = t % cols_;
  const std::size_t row = t / cols_;
  return num::Rect{region_.x0 + static_cast<double>(col) * sx_,
                   region_.y0 + static_cast<double>(row) * sy_,
                   region_.x0 + static_cast<double>(col + 1) * sx_,
                   region_.y0 + static_cast<double>(row + 1) * sy_};
}

void ShardGrid::prepare(std::span<const geo::Vec2> positions,
                        std::span<const char> alive,
                        const net::LinkModel& link) {
  const std::size_t n = positions.size();
  const double radius = link.radius();
  if (radius > ghost_) {
    throw std::logic_error(
        "ShardGrid: link radius exceeds the ghost-ring width");
  }

  // --- Ownership: recomputed from scratch; a changed tile is a
  // migration (the node's state travels with it implicitly — everything
  // is indexed by node id, not by tile). ---
  const bool first = node_tile_.size() != n;
  prev_tile_.swap(node_tile_);
  node_tile_.resize(n);
  std::size_t migrations = 0;
  for (std::size_t i = 0; i < n; ++i) {
    node_tile_[i] = static_cast<std::uint32_t>(tile_of(positions[i]));
    if (!first && node_tile_[i] != prev_tile_[i]) ++migrations;
  }

  // Counting sort into the owned CSR; iterating ids ascending keeps every
  // tile's owned list ascending.
  const std::size_t tiles = tiles_.size();
  owned_starts_.assign(tiles + 1, 0);
  for (std::size_t i = 0; i < n; ++i) ++owned_starts_[node_tile_[i] + 1];
  for (std::size_t t = 0; t < tiles; ++t) {
    owned_starts_[t + 1] += owned_starts_[t];
  }
  owned_ids_.resize(n);
  std::vector<std::uint32_t> cursor(owned_starts_.begin(),
                                    owned_starts_.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    owned_ids_[cursor[node_tile_[i]]++] = static_cast<std::uint32_t>(i);
  }

  // --- Ghost exchange + matching, tile-parallel.  Tiles touch only their
  // own buffers and the per-sender slices of their owned nodes, so the
  // region is race-free; all outputs are pure functions of (positions,
  // alive, radius). ---
  recv_start_.resize(n);
  recv_count_.resize(n);
  par::parallel_for_chunks(
      tiles,
      [&](std::size_t t0, std::size_t t1) {
        for (std::size_t t = t0; t < t1; ++t) {
          match_tile(t, positions, alive, radius);
        }
      },
      /*grain=*/1);

  // Deterministic fold of the per-tile tallies, ascending tile order.
  std::size_t ghosts = 0;
  std::size_t pairs = 0;
  for (const Tile& tile : tiles_) {
    ghosts += tile.ghost_count;
    pairs += tile.pairs.size();
  }
  last_migrations_ = migrations;
  last_ghosts_ = ghosts;
  last_pairs_ = pairs;
  CPS_GAUGE("core.cma.shard.tiles", static_cast<double>(tiles));
  CPS_COUNT("core.cma.shard.migrations", migrations);
  CPS_COUNT("core.cma.shard.ghost_exchanged", ghosts);
  CPS_COUNT("core.cma.shard.match_pairs", pairs);
}

void ShardGrid::match_tile(std::size_t t,
                           std::span<const geo::Vec2> positions,
                           std::span<const char> alive, double radius) {
  Tile& tile = tiles_[t];
  const num::Rect rect = tile_rect(t);
  const std::size_t col = t % cols_;
  const std::size_t row = t / cols_;
  const double ghost_sq = ghost_ * ghost_;

  // Candidates: this tile's living nodes plus the 3x3 neighbourhood's
  // living nodes within the ghost ring.  Collected tile by tile, then
  // sorted into the global ascending-id order the matched-delivery
  // contract requires.
  tile.candidates.clear();
  tile.ghost_count = 0;
  for (std::size_t dr = row == 0 ? 1 : 0; dr <= 2; ++dr) {
    const std::size_t nrow = row + dr - 1;
    if (nrow >= rows_) continue;
    for (std::size_t dc = col == 0 ? 1 : 0; dc <= 2; ++dc) {
      const std::size_t ncol = col + dc - 1;
      if (ncol >= cols_) continue;
      const bool own = nrow == row && ncol == col;
      for (const std::uint32_t id : owned(nrow * cols_ + ncol)) {
        if (!alive[id]) continue;
        if (!own) {
          if (rect_distance_sq(positions[id], rect) > ghost_sq) continue;
          ++tile.ghost_count;
        }
        tile.candidates.push_back(id);
      }
    }
  }
  std::sort(tile.candidates.begin(), tile.candidates.end());
  tile.cand_pos.clear();
  tile.cand_pos.reserve(tile.candidates.size());
  for (const std::uint32_t id : tile.candidates) {
    tile.cand_pos.push_back(positions[id]);
  }

  // Match every living owned sender against the candidates.  The
  // in-range predicate is LinkModel::in_range verbatim (distance_sq vs
  // radius^2), so the pair set equals the set of probes that could ever
  // deliver or draw.
  const double r_sq = radius * radius;
  tile.pairs.clear();
  const bool use_hash = tile.candidates.size() > kHashCutoff;
  if (use_hash) {
    tile.hash.emplace(std::span<const geo::Vec2>(tile.cand_pos), radius);
  } else {
    tile.hash.reset();
  }
  for (const std::uint32_t s : owned(t)) {
    recv_start_[s] = static_cast<std::uint32_t>(tile.pairs.size());
    recv_count_[s] = 0;
    if (!alive[s]) continue;
    const geo::Vec2 ps = positions[s];
    const std::size_t before = tile.pairs.size();
    if (use_hash) {
      tile.scratch.clear();
      tile.hash->collect_candidates_pruned(ps, radius, tile.scratch);
      // Compact candidate indices are ascending within each cell only;
      // re-sort for the global ascending-id emission (compact order ==
      // id order because candidates are id-sorted).
      std::sort(tile.scratch.begin(), tile.scratch.end());
      for (const std::uint32_t k : tile.scratch) {
        const std::uint32_t j = tile.candidates[k];
        if (j == s) continue;
        if (geo::distance_sq(ps, tile.cand_pos[k]) <= r_sq) {
          tile.pairs.push_back(j);
        }
      }
    } else {
      for (std::size_t k = 0; k < tile.candidates.size(); ++k) {
        const std::uint32_t j = tile.candidates[k];
        if (j == s) continue;
        if (geo::distance_sq(ps, tile.cand_pos[k]) <= r_sq) {
          tile.pairs.push_back(j);
        }
      }
    }
    recv_count_[s] = static_cast<std::uint32_t>(tile.pairs.size() - before);
  }
}

}  // namespace cps::core
