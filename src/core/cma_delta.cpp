#include "core/cma_delta.hpp"

#include <algorithm>
#include <limits>

namespace cps::core {

namespace {

/// reconstruct_surface's corner rule: nearest living sample, ties to the
/// latest (== highest node index, matching latest-insertion-wins).  0.0
/// with no living nodes, like folding over an empty sample list.
double nearest_sample_z(const CmaSimulation& sim, const field::Field& slice,
                        geo::Vec2 corner) {
  double best = std::numeric_limits<double>::infinity();
  double z = 0.0;
  for (std::size_t i = 0; i < sim.node_count(); ++i) {
    if (!sim.is_alive(i)) continue;
    const geo::Vec2 p = sim.positions()[i];
    const double d2 = geo::distance_sq(corner, p);
    if (d2 <= best) {
      best = d2;
      z = slice.value(p);
    }
  }
  return z;
}

}  // namespace

CmaDeltaTracker::CmaDeltaTracker(const CmaSimulation& sim,
                                 const DeltaMetric& metric)
    : metric_(&metric),
      dt_(metric.region()),
      slice_time_(sim.time()),
      node_vid_(sim.node_count(), -1),
      node_pos_(sim.positions()) {
  const field::FieldSlice slice(sim.environment(), slice_time_);
  // Mirror reconstruct_surface(sense_at_nodes()): living samples inserted
  // in node order, then the corner scaffolding overwritten by the
  // nearest-sample rule.
  for (std::size_t i = 0; i < sim.node_count(); ++i) {
    if (!sim.is_alive(i)) continue;
    const geo::Vec2 p = node_pos_[i];
    const geo::InsertResult ins = dt_.insert(p, slice.value(p));
    acquire(i, ins.vertex);
  }
  for (int corner = 0; corner < geo::Delaunay::kCorners; ++corner) {
    dt_.set_vertex_z(corner,
                     nearest_sample_z(sim, slice, dt_.vertex(corner).pos));
  }
  delta_ = std::make_unique<IncrementalDelta>(metric, slice, dt_);
}

double CmaDeltaTracker::sense(const CmaSimulation& sim, geo::Vec2 p) const {
  return field::FieldSlice(sim.environment(), slice_time_).value(p);
}

void CmaDeltaTracker::acquire(std::size_t node, int vid) {
  node_vid_[node] = vid;
  if (++vid_refs_[vid] > 1) ++stats_.merges;
}

void CmaDeltaTracker::release(std::size_t node) {
  const int vid = node_vid_[node];
  node_vid_[node] = -1;
  auto it = vid_refs_.find(vid);
  if (--it->second > 0) return;
  vid_refs_.erase(it);
  // Corner scaffolding is permanent: a node that aliased a corner leaves
  // the vertex behind (its z is re-derived by refresh_corners anyway).
  if (vid < geo::Delaunay::kCorners) return;
  const geo::RemoveResult removal = dt_.remove(vid);
  delta_->apply(dt_, removal);
}

void CmaDeltaTracker::refresh_corners(const CmaSimulation& sim) {
  const field::FieldSlice slice(sim.environment(), slice_time_);
  std::vector<int> stars;
  for (int corner = 0; corner < geo::Delaunay::kCorners; ++corner) {
    const double z = nearest_sample_z(sim, slice, dt_.vertex(corner).pos);
    if (z == dt_.vertex(corner).z) continue;
    dt_.set_vertex_z(corner, z);
    const std::vector<int> star = dt_.vertex_star(corner);
    stars.insert(stars.end(), star.begin(), star.end());
  }
  if (stars.empty()) return;
  std::sort(stars.begin(), stars.end());
  stars.erase(std::unique(stars.begin(), stars.end()), stars.end());
  delta_->apply_z_updates(dt_, stars);
}

double CmaDeltaTracker::update(const CmaSimulation& sim) {
  ++stats_.slots;
  // Reference first: the slice advanced, so re-fold the stored surface
  // against it once (cheap, no geometry); the slot's events then fold
  // their dirty regions against the already-current reference.
  slice_time_ = sim.time();
  const field::FieldSlice slice(sim.environment(), slice_time_);
  delta_->retarget(*metric_, slice);

  for (std::size_t i = 0; i < sim.node_count(); ++i) {
    const bool alive = sim.is_alive(i);
    const bool was_alive = node_vid_[i] != -1;
    const geo::Vec2 p = sim.positions()[i];
    if (was_alive && !alive) {
      release(i);
      ++stats_.node_deaths;
      continue;
    }
    if (!was_alive) {
      node_pos_[i] = p;
      if (!alive) continue;
      const geo::InsertResult ins = dt_.insert(p, slice.value(p));
      delta_->apply(dt_, ins);
      acquire(i, ins.vertex);
      ++stats_.node_revivals;
      continue;
    }
    if (p.x == node_pos_[i].x && p.y == node_pos_[i].y) continue;
    // The node moved.  A solely-held non-corner vertex relocates as one
    // fused event; an aliased (or corner) vertex stays for its other
    // holders and the node re-inserts at the destination.
    const int vid = node_vid_[i];
    node_pos_[i] = p;
    ++stats_.node_moves;
    if (vid >= geo::Delaunay::kCorners && vid_refs_[vid] == 1) {
      const geo::MoveResult moved = dt_.move_vertex(vid, p, slice.value(p));
      delta_->apply(dt_, moved);
      vid_refs_.erase(vid);
      acquire(i, moved.vertex);
    } else {
      release(i);
      const geo::InsertResult ins = dt_.insert(p, slice.value(p));
      delta_->apply(dt_, ins);
      acquire(i, ins.vertex);
    }
  }

  // Batched sensor refresh: unmoved living nodes re-sense the advanced
  // slice; every vertex whose z actually moved contributes its star to
  // one z-update event.  (Moved/revived nodes carried fresh z already;
  // aliased duplicates see the stored z equal and skip.)
  std::vector<int> stars;
  for (std::size_t i = 0; i < sim.node_count(); ++i) {
    const int vid = node_vid_[i];
    if (vid < geo::Delaunay::kCorners) continue;  // Dead (-1) or corner.
    const double z = slice.value(node_pos_[i]);
    if (z == dt_.vertex(vid).z) continue;
    dt_.set_vertex_z(vid, z);
    const std::vector<int> star = dt_.vertex_star(vid);
    stars.insert(stars.end(), star.begin(), star.end());
  }
  if (!stars.empty()) {
    std::sort(stars.begin(), stars.end());
    stars.erase(std::unique(stars.begin(), stars.end()), stars.end());
    delta_->apply_z_updates(dt_, stars);
  }

  refresh_corners(sim);
  return delta_->value();
}

}  // namespace cps::core
