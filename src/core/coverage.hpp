// Sensing-coverage metrics.
//
// The paper explains Fig. 7's flattening by coverage saturation: "the
// total coverage of these nodes [k >= 125] almost fully cover the
// region".  These helpers turn that explanation into a measurement: the
// fraction of the region within sensing range of at least one node, and
// the budget at which a deployment family saturates.
#pragma once

#include <cstddef>
#include <span>

#include "geometry/vec2.hpp"
#include "numerics/quadrature.hpp"

namespace cps::core {

/// Fraction of `region` (by area, midpoint-sampled on a resolution^2
/// lattice) within `sensing_radius` of at least one node.  Returns 0 for
/// an empty deployment; throws std::invalid_argument for a non-positive
/// radius/resolution or an empty region.
double coverage_fraction(std::span<const geo::Vec2> nodes,
                         double sensing_radius, const num::Rect& region,
                         std::size_t resolution = 100);

/// Area (m^2) covered by at least `multiplicity` nodes — multiplicity 2
/// quantifies sensing redundancy.
double covered_area(std::span<const geo::Vec2> nodes, double sensing_radius,
                    const num::Rect& region, std::size_t multiplicity = 1,
                    std::size_t resolution = 100);

}  // namespace cps::core
