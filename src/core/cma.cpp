#include "core/cma.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "core/cma_sharding.hpp"
#include "core/curvature.hpp"
#include "core/reconstruction.hpp"
#include "graph/geometric_graph.hpp"
#include "obs/obs.hpp"
#include "parallel/thread_pool.hpp"

namespace cps::core {

CmaSimulation::CmaSimulation(const field::TimeVaryingField& environment,
                             const num::Rect& region,
                             std::vector<geo::Vec2> initial,
                             const CmaConfig& config, double start_time)
    : environment_(&environment),
      region_(region),
      config_(config),
      positions_(std::move(initial)),
      bus_(positions_.size(),
           net::DiskRadio(config.rc, config.packet_loss, config.seed)),
      time_(start_time) {
  if (positions_.empty()) {
    throw std::invalid_argument("CmaSimulation: no nodes");
  }
  if (config.rs <= 0.0 || config.rc <= 0.0 || config.velocity < 0.0 ||
      config.dt <= 0.0 || config.force_gain <= 0.0 ||
      config.neighbor_ttl == 0) {
    throw std::invalid_argument("CmaSimulation: bad config");
  }
  for (const auto& p : positions_) {
    if (!region.contains(p.x, p.y)) {
      throw std::invalid_argument("CmaSimulation: node outside region");
    }
  }
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    bus_.set_position(i, positions_[i]);
  }
  last_forces_.resize(positions_.size());
  distance_traveled_.resize(positions_.size(), 0.0);
  alive_.assign(positions_.size(), 1);
  alive_count_ = positions_.size();
  known_.resize(positions_.size());
  prev_beacon_.resize(positions_.size());
  beacon_cache_.resize(positions_.size());
  if (config.sharding == ShardingMode::kTiles) {
    const double ghost = config.ghost_width > 0.0
                             ? config.ghost_width
                             : std::max(config.rs, config.rc);
    if (ghost < config.rc) {
      throw std::invalid_argument(
          "CmaSimulation: ghost_width below the communication radius");
    }
    const double side = config.tile_size > 0.0
                            ? std::max(config.tile_size, ghost)
                            : 2.0 * std::max(config.rs, config.rc);
    shard_ = std::make_unique<ShardGrid>(region, side, ghost);
  }
}

CmaSimulation::~CmaSimulation() = default;

template <typename Body>
void CmaSimulation::for_each_node(Body&& body, std::size_t grain) {
  if (shard_) {
    // One chunk per tile: the chunk layout depends only on the tiling,
    // never the thread count, and every body is pure per-node — results
    // are identical to the global map below.
    par::parallel_for_chunks(
        shard_->tile_count(),
        [&](std::size_t t0, std::size_t t1) {
          for (std::size_t t = t0; t < t1; ++t) {
            for (const std::uint32_t id : shard_->owned(t)) {
              body(static_cast<std::size_t>(id));
            }
          }
        },
        /*grain=*/1);
  } else {
    par::parallel_for(positions_.size(), body, grain);
  }
}

void CmaSimulation::deliver_round() {
  if (shard_) {
    bus_.step_matched(
        [this](net::NodeId from) { return shard_->receivers_of(from); });
  } else {
    bus_.step();
  }
}

void CmaSimulation::set_fault_schedule(net::FaultSchedule schedule) {
  for (const auto& event : schedule.events()) {
    if (event.node >= positions_.size()) {
      throw std::invalid_argument("CmaSimulation: fault event node index");
    }
  }
  faults_ = std::move(schedule);
}

void CmaSimulation::apply_faults(std::size_t slot) {
  for (const auto& event : faults_.events_at(slot)) {
    const std::size_t i = event.node;
    if (event.kind == net::FaultKind::kDeath) {
      if (!alive_[i]) continue;  // Already dead: idempotent.
      alive_[i] = 0;
      --alive_count_;
      ++deaths_applied_;
      bus_.set_alive(i, false);
      known_[i].clear();
      last_forces_[i] = ForceBreakdown{};
      // A dead radio forgets its beacon history: the first beacon after
      // a revival is always a full one.
      prev_beacon_[i].valid = false;
      beacon_cache_[i].clear();
      CPS_COUNT("core.cma.node_deaths", 1);
    } else {
      if (alive_[i]) continue;
      alive_[i] = 1;
      ++alive_count_;
      bus_.set_alive(i, true);
      // A revived node rejoins with blank protocol state; neighbours
      // relearn it (and it them) from the next beacon round.
      known_[i].clear();
      prev_beacon_[i].valid = false;
      beacon_cache_[i].clear();
      CPS_COUNT("core.cma.node_revivals", 1);
    }
  }
  CPS_GAUGE("core.cma.alive_nodes", static_cast<double>(alive_count_));
}

std::vector<std::vector<NeighborInfo>> CmaSimulation::refresh_neighbor_tables(
    std::size_t slot) {
  const std::size_t n = positions_.size();
  std::vector<std::vector<NeighborInfo>> tables(n);
  // Delta-compression accounting (Message::delta) runs only while the
  // registry is armed: it feeds counters, never the trajectory.
  const bool account = obs::enabled();
  const auto fold_node = [&](std::size_t i) {
    if (!alive_[i]) {
      known_[i].clear();
      beacon_cache_[i].clear();
      return;
    }
    // Age out entries first (an entry from slot s is valid through slot
    // s + ttl - 1), then fold in this slot's beacons.  With ttl == 1 the
    // prune empties the table every slot and the projection reproduces
    // the fresh-beacons-only tables of the original implementation,
    // entry order included.
    auto& table = known_[i];
    const std::size_t aged_out =
        std::erase_if(table, [&](const KnownNeighbor& k) {
          return slot - k.last_seen >= config_.neighbor_ttl;
        });
    net::count_drops(net::DropReason::kTtlExpired, aged_out);
    auto& cache = beacon_cache_[i];
    if (account && !cache.empty()) {
      // Entries that long lost beacon continuity can never hit again
      // (hits need the stamp of the sender's *previous* beacon slot).
      std::erase_if(cache, [&](const auto& e) {
        return e.second + 8 <= slot;
      });
    }
    for (const auto& delivery : bus_.inbox(i)) {
      if (delivery.message.kind != Message::Kind::kBeacon) continue;
      if (account) {
        CPS_COUNT("net.bus.beacon_rx", 1);
        std::size_t* stamp = nullptr;
        for (auto& e : cache) {
          if (e.first == delivery.from) {
            stamp = &e.second;
            break;
          }
        }
        // A hit means this receiver already holds the state the delta
        // refers to: the payload entry was redundant.  Misses (first
        // contact, or the prev beacon was lost here) still need the
        // carried state — the repair path that keeps the scheme safe
        // under loss and death.
        if (delivery.message.delta && stamp != nullptr &&
            *stamp == delivery.message.prev_slot) {
          CPS_COUNT("net.bus.beacon_delta_hits", 1);
        } else {
          CPS_COUNT("net.bus.beacon_payload_entries", 1);
        }
        if (stamp != nullptr) {
          *stamp = slot;
        } else {
          cache.emplace_back(delivery.from, slot);
        }
      }
      const NeighborInfo info{delivery.message.position,
                              delivery.message.gaussian_abs};
      bool found = false;
      for (auto& k : table) {
        if (k.id == delivery.from) {
          k.info = info;
          k.last_seen = slot;
          found = true;
          break;
        }
      }
      if (!found) table.push_back(KnownNeighbor{delivery.from, info, slot});
    }
    CPS_HIST("core.cma.neighbor_table_size",
             static_cast<double>(table.size()));
    tables[i].reserve(table.size());
    for (const auto& k : table) tables[i].push_back(k.info);
  };
  if (shard_) {
    for_each_node(fold_node, 1);
  } else {
    for (std::size_t i = 0; i < n; ++i) fold_node(i);
  }
  return tables;
}

void CmaSimulation::clamp_to_region(geo::Vec2& p) const noexcept {
  p.x = std::clamp(p.x, region_.x0, region_.x1);
  p.y = std::clamp(p.y, region_.y0, region_.y1);
}

void CmaSimulation::step() {
  CPS_TIMER("core.cma.step_total");
  CPS_COUNT("core.cma.steps", 1);
  const std::size_t n = positions_.size();
  const field::FieldSlice now(*environment_, time_);

  // --- 0. Fault injection: this slot's scheduled deaths/revivals. ---
  apply_faults(steps_run_);

  // Sharded: retile after the faults so ownership and the radio matching
  // see this slot's liveness; nodes that crossed a tile edge last slot
  // migrate here.  One matching serves both bus rounds — positions are
  // frozen within the slot.
  if (shard_) {
    CPS_TIMER("core.cma.shard_prepare");
    shard_->prepare(positions_, alive_, bus_.link());
  }

  // --- 1. Sense(Rs): local curvature estimation (Table 2 lines 2-3). ---
  std::vector<double> gaussian_abs(n, 0.0);
  std::vector<double> mean_abs(n, 0.0);
  std::vector<std::optional<PeakInfo>> peaks(n);
  {
    CPS_TIMER("core.cma.sense");
    // Each node's patch fit reads only the (const-thread-safe) field and
    // writes only its own slots, so Sense(Rs) is a parallel map.  A patch
    // fit is ~100 field samples plus a least-squares solve: grain 1.
    for_each_node(
        [&](std::size_t i) {
          if (!alive_[i]) return;  // Dead sensors sense nothing.
          const SensingPatch patch(now, positions_[i], config_.rs,
                                   config_.sample_spacing);
          gaussian_abs[i] = std::abs(patch.gaussian());
          mean_abs[i] = patch.mean_abs_gaussian();
          CPS_HIST("core.cma.fit_residual", patch.rms_residual());
          if (const auto peak = patch.peak_curvature()) {
            geo::Vec2 pos = peak->position;
            clamp_to_region(pos);  // Never steer a node through the fence.
            peaks[i] = PeakInfo{pos, peak->gaussian_abs};
          }
        },
        /*grain=*/1);
  }

  // Trace sampling (Section 7 future work): log this slot's measurement
  // at each node's pre-move position, then age out stale entries.
  if (config_.trace_sampling) {
    for (std::size_t i = 0; i < n; ++i) {
      if (!alive_[i]) continue;
      trace_log_.push_back(
          TimedSample{Sample{positions_[i], now.value(positions_[i])},
                      time_});
    }
    const double horizon = time_ - config_.trace_staleness;
    std::erase_if(trace_log_, [horizon](const TimedSample& s) {
      return s.time < horizon;
    });
  }

  // --- 2. Beacon round (Table 2 lines 4-5). ---
  // Neighbour tables come from what the channel actually delivered, aged
  // by the staleness TTL — never from the bus's oracle topology — so a
  // lost beacon or a dead neighbour degrades knowledge instead of state.
  std::vector<std::vector<NeighborInfo>> tables;
  {
    CPS_TIMER("core.cma.beacon_round");
    for (std::size_t i = 0; i < n; ++i) {
      if (!alive_[i]) continue;
      Message beacon;
      beacon.kind = Message::Kind::kBeacon;
      beacon.position = positions_[i];
      beacon.gaussian_abs = gaussian_abs[i];
      // Delta-compression flag: unchanged state since the previous
      // beacon.  The state is still carried (accounting only, see
      // Message::delta), so the scheme is mode- and loss-safe by
      // construction; bitwise equality keeps the flag deterministic.
      const BeaconEcho& prev = prev_beacon_[i];
      beacon.delta = prev.valid && prev.position.x == positions_[i].x &&
                     prev.position.y == positions_[i].y &&
                     prev.gaussian_abs == gaussian_abs[i];
      beacon.prev_slot = prev.slot;
      if (beacon.delta) {
        CPS_COUNT("net.bus.beacon_delta_sent", 1);
      } else {
        CPS_COUNT("net.bus.beacon_full_sent", 1);
      }
      prev_beacon_[i] =
          BeaconEcho{positions_[i], gaussian_abs[i], steps_run_, true};
      bus_.broadcast(i, std::move(beacon));
    }
    deliver_round();
    tables = refresh_neighbor_tables(steps_run_);
  }

  // --- 3. Forces and desired destinations (Table 2 lines 6-18). ---
  ForceConfig force_config;
  force_config.rc = config_.rc;
  force_config.beta = config_.beta;
  force_config.normalize_curvature = config_.normalize_curvature;
  force_config.attraction_gain = config_.attraction_gain;
  force_config.repulsion_equilibrium = config_.repulsion_equilibrium;
  std::vector<geo::Vec2> destination = positions_;
  {
    CPS_TIMER("core.cma.forces");
    // Pure per-node computation over this slot's frozen tables; writes
    // are per-index (last_forces_[i], destination[i]) — parallel map.
    for_each_node(
        [&](std::size_t i) {
          if (!alive_[i]) return;  // Dead nodes plan no moves.
          const ForceBreakdown forces = compute_forces(
              positions_[i], peaks[i], tables[i], mean_abs[i], force_config);
          last_forces_[i] = forces;
          CPS_HIST("core.cma.force_f1", forces.f1.norm());
          CPS_HIST("core.cma.force_f2", forces.f2.norm());
          CPS_HIST("core.cma.force_fr", forces.fr.norm());
          CPS_HIST("core.cma.force_fs", forces.fs.norm());
          const double magnitude = forces.fs.norm();
          if (magnitude <= config_.force_tolerance) return;  // stop(ni).
          // Table 2 line 16 points the destination Rs along Fs; the gain
          // maps force units to metres and the sensing radius caps the
          // ambition.
          const double reach =
              std::min(config_.rs, magnitude * config_.force_gain);
          destination[i] = positions_[i] + forces.fs.normalized() * reach;
          clamp_to_region(destination[i]);
        },
        /*grain=*/16);
  }

  // --- 4. tell round + LCM (Table 2 lines 17-21, Fig. 4). ---
  // The told destination is the waypoint actually reachable this slot
  // (speed-capped), not the full force target up to Rs away: neighbours
  // judge link survival on real post-slot geometry, so the chase rule
  // fires only for links genuinely about to break.
  const double told_step =
      config_.velocity * config_.dt *
      (config_.lcm == LcmMode::kStrict ? config_.speed_fraction : 1.0);
  {
    CPS_TIMER("core.cma.tell_round");
    for (std::size_t i = 0; i < n; ++i) {
      if (!alive_[i]) continue;
      Message tell;
      tell.kind = Message::Kind::kTell;
      tell.position = positions_[i];
      const geo::Vec2 leg = destination[i] - positions_[i];
      const double len = leg.norm();
      tell.destination = len <= told_step
                             ? destination[i]
                             : positions_[i] + leg * (told_step / len);
      tell.table =
          std::make_shared<const std::vector<NeighborInfo>>(tables[i]);
      bus_.broadcast(i, std::move(tell));
    }
    deliver_round();
  }

  // The LCM variants (see LcmMode).  Strict mode trades speed for a
  // provable per-slot connectivity invariant; paper mode is the literal
  // Fig. 4 chase rule at full speed, best effort.
  const double max_step =
      config_.velocity * config_.dt *
      (config_.lcm == LcmMode::kStrict ? config_.speed_fraction : 1.0);
  std::vector<geo::Vec2> final_target = destination;
  last_chases_ = 0;

  {
    CPS_TIMER("core.cma.lcm");
    if (config_.lcm == LcmMode::kStrict) {
      apply_strict_lcm(tables, destination, max_step, final_target);
    } else if (config_.lcm == LcmMode::kPaper) {
      apply_paper_lcm(destination, final_target);
    }
  }

  // --- 5. Move toward the resolved targets, capped by the speed limit. ---
  last_max_move_ = 0.0;
  {
    CPS_TIMER("core.cma.move");
    // The per-node displacement is pure; the accumulators (max move, the
    // distance sums) are order-sensitive floats, so the sharded schedule
    // computes displacements tile-parallel and folds them serially in
    // node-id order — the exact association of the loop below.
    const auto resolve_next = [&](std::size_t i) {
      const geo::Vec2 leg = final_target[i] - positions_[i];
      const double len = leg.norm();
      geo::Vec2 next = len <= max_step
                           ? final_target[i]
                           : positions_[i] + leg * (max_step / len);
      clamp_to_region(next);
      return next;
    };
    if (shard_) {
      std::vector<geo::Vec2> next(n);
      std::vector<double> moved(n, 0.0);
      for_each_node(
          [&](std::size_t i) {
            if (!alive_[i]) return;
            next[i] = resolve_next(i);
            moved[i] = geo::distance(positions_[i], next[i]);
          },
          /*grain=*/64);
      for (std::size_t i = 0; i < n; ++i) {
        if (!alive_[i]) continue;  // Carcasses stay where they fell.
        last_max_move_ = std::max(last_max_move_, moved[i]);
        distance_traveled_[i] += moved[i];
        total_distance_ += moved[i];
        positions_[i] = next[i];
        bus_.set_position(i, positions_[i]);
      }
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        if (!alive_[i]) continue;  // Carcasses stay where they fell.
        const geo::Vec2 next = resolve_next(i);
        const double moved = geo::distance(positions_[i], next);
        last_max_move_ = std::max(last_max_move_, moved);
        distance_traveled_[i] += moved;
        total_distance_ += moved;
        positions_[i] = next;
        bus_.set_position(i, positions_[i]);
      }
    }
  }

  // Per-round trajectory (the Figs. 8-10 quantities): LCM interventions,
  // the largest single move, and the cumulative energy proxy.
  CPS_COUNT("core.cma.lcm_chases", last_chases_);
  CPS_HIST("core.cma.max_move", last_max_move_);
  CPS_GAUGE("core.cma.total_distance", total_distance_);
  CPS_TRACE_COUNTER("core.cma.lcm_chases", last_chases_);
  CPS_TRACE_COUNTER("core.cma.max_move", last_max_move_);

  // Slot boundary: one timeline sample carrying this slot's context plus
  // the per-slot deltas of every counter/histogram touched above (beacon
  // deliveries, per-reason drops, force histograms, ...).  The annotation
  // macros evaluate their value expressions only while armed, so the
  // component census costs nothing in figure runs.
  CPS_TIMELINE_ANNOTATE("alive", alive_count_);
  CPS_TIMELINE_ANNOTATE("components", component_count());
  CPS_TIMELINE_ANNOTATE("chases", last_chases_);
  CPS_TIMELINE_ANNOTATE("max_move", last_max_move_);
  CPS_TIMELINE_SAMPLE("core.cma.slot", steps_run_);

  time_ += config_.dt;
  ++steps_run_;
}


template <typename NodeTarget>
void CmaSimulation::resolve_lcm_targets(NodeTarget&& node_target,
                                        std::vector<geo::Vec2>& final_target) {
  const std::size_t n = positions_.size();
  if (!shard_) {
    for (std::size_t i = 0; i < n; ++i) {
      if (const auto target = node_target(i)) {
        ++last_chases_;
        final_target[i] = *target;
      }
    }
    return;
  }
  // Tile-parallel: node_target is pure and final_target writes are
  // per-index.  Chases are tallied per tile and folded in ascending tile
  // order — an integer sum, so the count matches the serial loop exactly.
  std::vector<std::size_t> chases(shard_->tile_count(), 0);
  par::parallel_for_chunks(
      shard_->tile_count(),
      [&](std::size_t t0, std::size_t t1) {
        for (std::size_t t = t0; t < t1; ++t) {
          for (const std::uint32_t id : shard_->owned(t)) {
            if (const auto target = node_target(id)) {
              ++chases[t];
              final_target[id] = *target;
            }
          }
        }
      },
      /*grain=*/1);
  for (const std::size_t c : chases) last_chases_ += c;
}

void CmaSimulation::apply_strict_lcm(
    const std::vector<std::vector<NeighborInfo>>& tables,
    const std::vector<geo::Vec2>& destination, double max_step,
    std::vector<geo::Vec2>& final_target) {
  // Bridgeless single-hop links are *critical* and must survive the slot.
  // Survival is enforced with the midpoint-disk construction: both
  // endpoints stay within r of the link midpoint m = (pi + pj) / 2, so by
  // the triangle inequality the post-move distance is at most 2r.  Each
  // node projects its force destination into the intersection of its
  // critical disks (cyclic projection); when the intersection is empty
  // (opposing taut links) staying put is always safe.  Links may tear only
  // across margin-safe bridges: a bridge-path link of length
  // <= Rc - 2 * max_step cannot break within the slot, so the tear leaves
  // the endpoints provably connected.
  const double slack = std::min(std::max(max_step, 1e-6), 0.1 * config_.rc);
  const double safe = config_.rc - 2.0 * max_step;
  struct Anchor {
    geo::Vec2 midpoint;
    double radius;
  };
  static const std::vector<NeighborInfo> kEmptyTable;
  // Pure per-node resolution: the clamped override target, or nullopt
  // when unconstrained.  Shared by the serial and tile-parallel
  // schedules below.
  const auto node_target = [&](std::size_t i) -> std::optional<geo::Vec2> {
    if (!alive_[i]) return std::nullopt;
    std::vector<Anchor> anchors;
    for (const auto& delivery : bus_.inbox(i)) {
      const Message& tell = delivery.message;
      if (tell.kind != Message::Kind::kTell) continue;
      const geo::Vec2 partner = tell.position;
      const double d = geo::distance(positions_[i], partner);
      if (d > config_.rc) continue;
      bool bridged = false;
      if (safe > 0.0) {
        const std::vector<NeighborInfo>& tell_table =
            tell.table ? *tell.table : kEmptyTable;
        for (const auto& common : tables[i]) {
          // The partner itself cannot be its own bridge.
          if (geo::distance(common.position, partner) < 1e-9) continue;
          if (geo::distance(common.position, positions_[i]) > safe) continue;
          if (geo::distance(common.position, partner) <= safe) {
            bridged = true;  // One-hop bridge with margin.
            break;
          }
          for (const auto& far : tell_table) {
            if (geo::distance(far.position, positions_[i]) < 1e-9) continue;
            if (geo::distance(far.position, partner) > safe) continue;
            if (geo::distance(far.position, common.position) <= safe) {
              bridged = true;  // Two-hop bridge via (common, far).
              break;
            }
          }
          if (bridged) break;
        }
      }
      if (!bridged) {
        // Pull taut critical links below the tear-safety threshold so
        // they can serve as bridge paths for their neighbours next slot.
        const double relaxed = config_.rc - 2.0 * max_step - 0.2 * slack;
        anchors.push_back(Anchor{geo::midpoint(positions_[i], partner),
                                 std::max(0.5 * relaxed,
                                          0.5 * d - 0.3 * slack)});
      }
    }
    if (anchors.empty()) return std::nullopt;

    geo::Vec2 target = destination[i];
    bool constrained = false;
    for (int pass = 0; pass < 12; ++pass) {
      bool moved = false;
      for (const auto& a : anchors) {
        const geo::Vec2 off = target - a.midpoint;
        if (off.norm() > a.radius) {
          target = a.midpoint + off.normalized() * a.radius;
          moved = true;
          constrained = true;
        }
      }
      if (!moved) break;
    }
    // Cyclic projection approximates the disk intersection; when the
    // intersection is empty (opposing taut links) or unconverged, staying
    // put is always safe: the node sits exactly d/2 from every midpoint.
    for (const auto& a : anchors) {
      if (geo::distance(target, a.midpoint) > a.radius + 1e-9) {
        target = positions_[i];
        constrained = true;
        break;
      }
    }
    if (!constrained) return std::nullopt;
    clamp_to_region(target);
    return target;
  };
  resolve_lcm_targets(node_target, final_target);
}

void CmaSimulation::apply_paper_lcm(
    const std::vector<geo::Vec2>& /*destination*/,
    std::vector<geo::Vec2>& final_target) {
  // Table 2 lines 19-21, verbatim: on receiving tell(nd2, N2), if ni can
  // reach neither nd2 directly nor some nj2 in N2, it abandons its own
  // plan and moves to hold d(ni, nd2) = Rc.  With several such movers it
  // chases the most endangered link.  Best effort by construction.
  static const std::vector<NeighborInfo> kEmptyTable;
  const auto node_target = [&](std::size_t i) -> std::optional<geo::Vec2> {
    if (!alive_[i]) return std::nullopt;
    double worst = -1.0;
    geo::Vec2 worst_destination;
    for (const auto& delivery : bus_.inbox(i)) {
      const Message& tell = delivery.message;
      if (tell.kind != Message::Kind::kTell) continue;
      if (geo::distance(positions_[i], tell.position) > config_.rc) continue;
      const double after = geo::distance(positions_[i], tell.destination);
      if (after <= config_.rc) continue;  // Still reaches the mover.
      bool via_common = false;
      for (const auto& common : tell.table ? *tell.table : kEmptyTable) {
        if (geo::distance(positions_[i], common.position) <= config_.rc &&
            geo::distance(common.position, tell.destination) <= config_.rc) {
          via_common = true;
          break;
        }
      }
      if (via_common) continue;
      if (after > worst) {
        worst = after;
        worst_destination = tell.destination;
      }
    }
    if (worst < 0.0) return std::nullopt;
    const geo::Vec2 away = positions_[i] - worst_destination;
    geo::Vec2 target =
        worst_destination + (away.norm() > 0.0
                                 ? away.normalized() * config_.rc
                                 : geo::Vec2{config_.rc, 0.0});
    clamp_to_region(target);
    return target;
  };
  resolve_lcm_targets(node_target, final_target);
}

void CmaSimulation::run(std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) step();
}

std::vector<geo::Vec2> CmaSimulation::alive_positions() const {
  std::vector<geo::Vec2> out;
  out.reserve(alive_count_);
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    if (alive_[i]) out.push_back(positions_[i]);
  }
  return out;
}

bool CmaSimulation::is_connected() const {
  return graph::GeometricGraph(alive_positions(), config_.rc).is_connected();
}

double CmaSimulation::largest_component_fraction() const {
  const auto alive = alive_positions();
  const graph::GeometricGraph g(alive, config_.rc);
  std::size_t largest = 0;
  for (const auto& comp : g.components()) {
    largest = std::max(largest, comp.size());
  }
  return alive.empty() ? 1.0
                       : static_cast<double>(largest) /
                             static_cast<double>(alive.size());
}

std::size_t CmaSimulation::component_count() const {
  return graph::GeometricGraph(alive_positions(), config_.rc)
      .component_count();
}

std::vector<Sample> CmaSimulation::sense_at_nodes() const {
  const field::FieldSlice now(*environment_, time_);
  return take_samples(now, alive_positions());
}

double CmaSimulation::current_delta(const DeltaMetric& metric) const {
  const field::FieldSlice now(*environment_, time_);
  return metric.delta_from_samples(now, sense_at_nodes());
}

std::vector<Sample> CmaSimulation::trace_samples() const {
  std::vector<Sample> out;
  out.reserve(trace_log_.size());
  for (const auto& entry : trace_log_) out.push_back(entry.sample);
  return out;
}

double CmaSimulation::current_delta_with_trace(
    const DeltaMetric& metric) const {
  // Older samples first: reconstruct_surface resolves duplicate positions
  // by letting the later insertion win, so fresher data takes precedence.
  std::vector<Sample> combined = trace_samples();
  const auto current = sense_at_nodes();
  combined.insert(combined.end(), current.begin(), current.end());
  const field::FieldSlice now(*environment_, time_);
  return metric.delta_from_samples(now, combined);
}

}  // namespace cps::core
