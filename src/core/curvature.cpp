#include "core/curvature.hpp"

#include <cmath>
#include <span>
#include <stdexcept>
#include <vector>

#include "obs/obs.hpp"

namespace cps::core {
namespace {

// Lattice half-width in cells for a disk of `radius` at `spacing` pitch.
int half_cells(double radius, double spacing) {
  return static_cast<int>(std::floor(radius / spacing));
}

}  // namespace

SensingPatch::SensingPatch(const field::Field& f, geo::Vec2 center,
                           double radius, double spacing)
    : center_(center), radius_(radius), spacing_(spacing) {
  if (radius <= 0.0) throw std::invalid_argument("SensingPatch: radius");
  if (spacing <= 0.0) throw std::invalid_argument("SensingPatch: spacing");

  const int h = half_cells(radius, spacing);
  const int side = 2 * h + 1;
  const double r2 = radius * radius;

  // Sense the whole square lattice once; `inside` masks the disk.  The
  // square grid keeps finite-difference stencils trivial to address.
  // The disk's intersection with a lattice row is one contiguous column
  // interval, so each row is a single batched value_row call over that
  // interval (bit-identical to per-point sensing by the batch contract);
  // the in-disk test itself touches no field values.
  std::vector<double> z(static_cast<std::size_t>(side * side), 0.0);
  std::vector<char> inside(static_cast<std::size_t>(side * side), 0);
  const auto idx = [side](int i, int j) {
    return static_cast<std::size_t>(j * side + i);
  };
  std::vector<double> xs(static_cast<std::size_t>(side));
  for (int i = 0; i < side; ++i) {
    xs[static_cast<std::size_t>(i)] =
        center.x + static_cast<double>(i - h) * spacing;
  }
  for (int j = 0; j < side; ++j) {
    const double oy = static_cast<double>(j - h) * spacing;
    const double y = center.y + oy;
    int ilo = -1;
    int ihi = -1;
    for (int i = 0; i < side; ++i) {
      const double ox = static_cast<double>(i - h) * spacing;
      if (ox * ox + oy * oy > r2) continue;
      if (ilo < 0) ilo = i;
      ihi = i;
    }
    if (ilo < 0) continue;
    const auto count = static_cast<std::size_t>(ihi - ilo + 1);
    f.value_row(y,
                std::span<const double>(xs).subspan(
                    static_cast<std::size_t>(ilo), count),
                &z[idx(ilo, j)]);
    CPS_COUNT("core.curvature.batch_rows", 1);
    for (int i = ilo; i <= ihi; ++i) {
      inside[idx(i, j)] = 1;
      samples_.push_back(
          Sample{geo::Vec2{xs[static_cast<std::size_t>(i)], y}, z[idx(i, j)]});
    }
  }
  if (samples_.size() < 3) {
    throw std::invalid_argument("SensingPatch: fewer than 3 lattice points");
  }

  // Quadric fit in node-local coordinates (Eqn. 11): dz relative to the
  // node's own measurement.
  const double z_center = f.value(center);
  std::vector<num::QuadricSample> qs;
  qs.reserve(samples_.size());
  for (const auto& s : samples_) {
    qs.push_back(num::QuadricSample{s.position.x - center.x,
                                    s.position.y - center.y,
                                    s.z - z_center});
  }
  fit_ = num::fit_quadric(qs);
  double sq_sum = 0.0;
  for (const auto& s : qs) {
    const double r = s.dz - fit_.evaluate(s.dx, s.dy);
    sq_sum += r * r;
  }
  rms_residual_ = std::sqrt(sq_sum / static_cast<double>(qs.size()));

  // Finite-difference Gaussian curvature on interior lattice points.  For a
  // graph surface z(x, y), G's numerator is zxx * zyy - zxy^2; the paper's
  // variance-ratio definition drops the metric denominator, and so do we.
  const double s2 = spacing * spacing;
  double abs_sum = 0.0;
  std::size_t abs_count = 0;
  double best = -1.0;
  geo::Vec2 best_pos = center;
  for (int j = 1; j + 1 < side; ++j) {
    for (int i = 1; i + 1 < side; ++i) {
      if (!inside[idx(i, j)] || !inside[idx(i - 1, j)] ||
          !inside[idx(i + 1, j)] || !inside[idx(i, j - 1)] ||
          !inside[idx(i, j + 1)] || !inside[idx(i - 1, j - 1)] ||
          !inside[idx(i + 1, j - 1)] || !inside[idx(i - 1, j + 1)] ||
          !inside[idx(i + 1, j + 1)]) {
        continue;
      }
      const double zxx =
          (z[idx(i + 1, j)] - 2.0 * z[idx(i, j)] + z[idx(i - 1, j)]) / s2;
      const double zyy =
          (z[idx(i, j + 1)] - 2.0 * z[idx(i, j)] + z[idx(i, j - 1)]) / s2;
      const double zxy = (z[idx(i + 1, j + 1)] - z[idx(i + 1, j - 1)] -
                          z[idx(i - 1, j + 1)] + z[idx(i - 1, j - 1)]) /
                         (4.0 * s2);
      const double g = std::abs(zxx * zyy - zxy * zxy);
      abs_sum += g;
      ++abs_count;
      if (g > best) {
        best = g;
        best_pos = center + geo::Vec2{static_cast<double>(i - h) * spacing,
                                      static_cast<double>(j - h) * spacing};
      }
    }
  }
  if (abs_count > 0) {
    mean_abs_gaussian_ = abs_sum / static_cast<double>(abs_count);
    peak_ = Peak{best_pos, best};
  }
}

CurvatureEstimator::CurvatureEstimator(double sensing_radius, double spacing)
    : radius_(sensing_radius), spacing_(spacing) {
  if (sensing_radius <= 0.0) {
    throw std::invalid_argument("CurvatureEstimator: radius");
  }
  if (spacing <= 0.0) throw std::invalid_argument("CurvatureEstimator: spacing");
}

num::QuadricFit CurvatureEstimator::fit_at(const field::Field& f,
                                           geo::Vec2 p) const {
  return SensingPatch(f, p, radius_, spacing_).quadric();
}

double CurvatureEstimator::gaussian_at(const field::Field& f,
                                       geo::Vec2 p) const {
  return fit_at(f, p).gaussian();
}

std::vector<double> CurvatureEstimator::abs_gaussian_grid(
    const field::Field& f, const num::Rect& region, std::size_t nx,
    std::size_t ny) const {
  if (nx < 2 || ny < 2) {
    throw std::invalid_argument("abs_gaussian_grid: nx, ny >= 2");
  }
  std::vector<double> out;
  out.reserve(nx * ny);
  const double dx = region.width() / static_cast<double>(nx - 1);
  const double dy = region.height() / static_cast<double>(ny - 1);
  for (std::size_t j = 0; j < ny; ++j) {
    for (std::size_t i = 0; i < nx; ++i) {
      const geo::Vec2 p{region.x0 + static_cast<double>(i) * dx,
                        region.y0 + static_cast<double>(j) * dy};
      out.push_back(std::abs(gaussian_at(f, p)));
    }
  }
  return out;
}

}  // namespace cps::core
