// Surface reconstruction: samples -> Delaunay-interpolated surface.
//
// This is the paper's environment-rebuilding step (Section 3.1): the
// sampled data at the k node positions are rendered into the virtual
// surface z* = DT(x, y) by Delaunay triangulation.  The triangulation is
// corner-seeded so it covers the whole region; the corner policy decides
// what value the scaffolding corners carry.
#pragma once

#include <span>

#include "core/types.hpp"
#include "field/field.hpp"
#include "geometry/delaunay.hpp"
#include "numerics/quadrature.hpp"

namespace cps::core {

/// How to value the four corner scaffolding vertices.
enum class CornerPolicy {
  /// Corner takes the z of the nearest sample — the only information a
  /// real deployment has.  Default for all planners and CMA.
  kNearestSample,
  /// Corner takes the referential field's true value; used by tests that
  /// want interpolation error isolated from corner extrapolation error.
  kFieldValue,
};

/// Builds the rebuilt surface DT from samples.  With kFieldValue,
/// `reference` must be non-null (std::invalid_argument otherwise); samples
/// may be empty (the surface is then flat at the corner values, or 0 when
/// there are no samples under kNearestSample).
geo::Delaunay reconstruct_surface(std::span<const Sample> samples,
                                  const num::Rect& region,
                                  CornerPolicy policy =
                                      CornerPolicy::kNearestSample,
                                  const field::Field* reference = nullptr);

/// Samples `f` at the deployment's positions (the act of sensing).
std::vector<Sample> take_samples(const field::Field& f,
                                 std::span<const geo::Vec2> positions);

}  // namespace cps::core
