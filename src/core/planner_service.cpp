#include "core/planner_service.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <tuple>
#include <utility>
#include <variant>
#include <vector>

#include "core/delta.hpp"
#include "core/delta_incremental.hpp"
#include "core/fra.hpp"
#include "geometry/delaunay.hpp"
#include "obs/obs.hpp"
#include "parallel/thread_pool.hpp"

namespace cps::core {
namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// Shared-metric identity: the exact region bits plus the resolution.
using MetricKey = std::tuple<std::uint64_t, std::uint64_t, std::uint64_t,
                             std::uint64_t, std::size_t>;

MetricKey metric_key(const num::Rect& region, std::size_t resolution) {
  return {std::bit_cast<std::uint64_t>(region.x0),
          std::bit_cast<std::uint64_t>(region.y0),
          std::bit_cast<std::uint64_t>(region.x1),
          std::bit_cast<std::uint64_t>(region.y1), resolution};
}

/// Cached what-if substrate: the base deployment's triangulation, the
/// running cavity-local δ tracker over it, and the node-index -> vertex-id
/// map the mutation ops address nodes through.  Copyable by design — each
/// WhatIf job mutates a private copy, never the shared original.
struct BaseState {
  geo::Delaunay dt;
  IncrementalDelta inc;
  std::vector<int> vertex_of_node;
};

/// Per-key build slot.  The entry mutex is a leaf lock: the first
/// requester builds the state while holding it (the build's nested
/// parallel loops run inline inside the job's pool chunk, touching no
/// other lock), later requesters block on it and then share the result.
/// This cannot deadlock under the pool's serial inline execution the way
/// a future-based handoff could (a job waiting on a future only a
/// later-ordered job would fulfil).
struct BaseEntry {
  std::mutex mu;
  std::shared_ptr<const BaseState> state;
};

std::uint64_t base_state_key(const WhatIfJob& job) {
  namespace fk = field::fieldkey;
  std::uint64_t key = job.field->key();
  key = fk::combine(key, fk::bits(job.region.x0));
  key = fk::combine(key, fk::bits(job.region.y0));
  key = fk::combine(key, fk::bits(job.region.x1));
  key = fk::combine(key, fk::bits(job.region.y1));
  key = fk::combine(key, job.resolution);
  key = fk::combine(key, static_cast<std::uint64_t>(job.policy));
  for (const auto& p : job.base->positions) {
    key = fk::combine(key, fk::bits(p.x));
    key = fk::combine(key, fk::bits(p.y));
  }
  return key;
}

}  // namespace

struct PlannerService::Impl {
  struct Pending {
    std::variant<ScoreJob, PlanJob, WhatIfJob> job;
    std::promise<JobResult> promise;
    Clock::time_point submitted;
  };

  explicit Impl(const Config& config) : config(config) {
    if (this->config.max_batch == 0) this->config.max_batch = 1;
    if (this->config.cache_shards == 0) this->config.cache_shards = 1;
    if (this->config.base_state_capacity == 0) {
      this->config.base_state_capacity = 1;
    }
    // Queue occupancy is timing-dependent; keep it out of the timeline's
    // bit-identical JSONL no matter when a consumer arms it.
    obs::registry().exclude_from_timeline("service.queue.depth");
    dispatcher = std::thread([this] { dispatch_loop(); });
  }

  ~Impl() {
    {
      const std::lock_guard<std::mutex> lock(mu);
      stop = true;
    }
    cv.notify_all();
    dispatcher.join();
  }

  std::future<JobResult> enqueue(
      std::variant<ScoreJob, PlanJob, WhatIfJob>&& job) {
    Pending pending;
    pending.job = std::move(job);
    pending.submitted = Clock::now();
    std::future<JobResult> future = pending.promise.get_future();
    std::size_t depth = 0;
    {
      const std::lock_guard<std::mutex> lock(mu);
      queue.push_back(std::move(pending));
      depth = queue.size();
    }
    submitted.fetch_add(1, std::memory_order_relaxed);
    CPS_COUNT("service.jobs.submitted", 1);
    CPS_GAUGE("service.queue.depth", depth);
    cv.notify_one();
    return future;
  }

  void dispatch_loop() {
    for (;;) {
      std::vector<Pending> batch;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [this] { return stop || !queue.empty(); });
        if (queue.empty()) break;  // stop requested and fully drained.
        const std::size_t n = std::min(queue.size(), config.max_batch);
        batch.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
          batch.push_back(std::move(queue.front()));
          queue.pop_front();
        }
        in_flight += n;
        CPS_GAUGE("service.queue.depth", queue.size());
      }
      batches.fetch_add(1, std::memory_order_relaxed);
      std::uint64_t high = max_batch_size.load(std::memory_order_relaxed);
      while (high < batch.size() &&
             !max_batch_size.compare_exchange_weak(
                 high, batch.size(), std::memory_order_relaxed)) {
      }
      // One parallel region, one job per chunk.  A job's own parallel
      // loops nest inline on its worker with the pool's fixed chunk
      // layout, which is what makes results bit-identical to direct
      // calls (see the header's determinism contract).
      par::parallel_for(
          batch.size(), [&](std::size_t i) { execute(batch[i]); },
          /*grain=*/1);
      {
        const std::lock_guard<std::mutex> lock(mu);
        in_flight -= batch.size();
        if (queue.empty() && in_flight == 0) idle_cv.notify_all();
      }
    }
  }

  void execute(Pending& pending) {
    const Clock::time_point start = Clock::now();
    JobResult result;
    try {
      std::visit([&](auto& job) { run_job(job, result); }, pending.job);
    } catch (const std::exception& e) {
      result.ok = false;
      result.error = e.what();
    } catch (...) {
      result.ok = false;
      result.error = "unknown error";
    }
    if (!result.ok) errors.fetch_add(1, std::memory_order_relaxed);
    const Clock::time_point end = Clock::now();
    result.exec_ms = ms_between(start, end);
    result.latency_ms = ms_between(pending.submitted, end);
    completed.fetch_add(1, std::memory_order_relaxed);
    CPS_COUNT("service.jobs.completed", 1);
#if defined(CPS_OBS_ENABLED)
    if (obs::enabled()) {
      static const char* const kJobHist[] = {"service.job.score_us",
                                             "service.job.plan_us",
                                             "service.job.whatif_us"};
      obs::registry()
          .duration_histogram(kJobHist[pending.job.index()])
          .observe(result.exec_ms * 1000.0);
    }
#endif
    pending.promise.set_value(std::move(result));
  }

  void run_job(ScoreJob& job, JobResult& result) {
    if (job.field == nullptr) {
      throw std::invalid_argument("ScoreJob: null field snapshot");
    }
    score_jobs.fetch_add(1, std::memory_order_relaxed);
    CPS_COUNT("service.jobs.score", 1);
    result.delta = metric_for(job.region, job.resolution)
                       .delta_of_deployment(job.field->field(),
                                            job.deployment.positions,
                                            job.policy);
  }

  void run_job(PlanJob& job, JobResult& result) {
    if (job.field == nullptr) {
      throw std::invalid_argument("PlanJob: null field snapshot");
    }
    plan_jobs.fetch_add(1, std::memory_order_relaxed);
    CPS_COUNT("service.jobs.plan", 1);
    const field::Field& reference = job.field->field();
    Deployment deployment;
    switch (job.planner) {
      case PlannerKind::kFra:
        deployment = FraPlanner().plan(reference, job.request);
        break;
      case PlannerKind::kRandom:
        deployment = RandomPlanner().plan(reference, job.request);
        break;
      case PlannerKind::kGrid:
        deployment = GridPlanner().plan(reference, job.request);
        break;
      case PlannerKind::kFarthestPoint:
        deployment = FarthestPointPlanner().plan(reference, job.request);
        break;
    }
    if (job.score_resolution != 0) {
      result.delta = metric_for(job.request.region, job.score_resolution)
                         .delta_of_deployment(reference, deployment.positions,
                                              job.policy);
    }
    result.deployment = std::move(deployment);
  }

  void run_job(WhatIfJob& job, JobResult& result) {
    if (job.field == nullptr) {
      throw std::invalid_argument("WhatIfJob: null field snapshot");
    }
    if (job.base == nullptr) {
      throw std::invalid_argument("WhatIfJob: null base deployment");
    }
    whatif_jobs.fetch_add(1, std::memory_order_relaxed);
    CPS_COUNT("service.jobs.whatif", 1);
    const std::shared_ptr<const BaseState> base = base_state_for(job);
    BaseState local(*base);  // Private copy; the shared base never mutates.
    const field::Field& reference = job.field->field();
    switch (job.op) {
      case WhatIfJob::Op::kMove: {
        const auto report = local.dt.move_vertex(
            node_vertex(local, job.node), job.to, reference.value(job.to));
        local.inc.apply(local.dt, report);
        break;
      }
      case WhatIfJob::Op::kInsert: {
        const auto report = local.dt.insert(job.to, reference.value(job.to));
        local.inc.apply(local.dt, report);
        break;
      }
      case WhatIfJob::Op::kRemove: {
        const auto report = local.dt.remove(node_vertex(local, job.node));
        local.inc.apply(local.dt, report);
        break;
      }
    }
    result.delta = local.inc.value();
  }

  static int node_vertex(const BaseState& state, std::size_t node) {
    if (node >= state.vertex_of_node.size()) {
      throw std::invalid_argument("WhatIfJob: node index out of range");
    }
    return state.vertex_of_node[node];
  }

  DeltaMetric& metric_for(const num::Rect& region, std::size_t resolution) {
    const MetricKey key = metric_key(region, resolution);
    const std::lock_guard<std::mutex> lock(metrics_mu);
    std::unique_ptr<DeltaMetric>& slot = metrics[key];
    if (slot == nullptr) {
      slot = std::make_unique<DeltaMetric>(region, resolution);
      slot->set_reference_cache_shards(config.cache_shards);
    }
    return *slot;  // Map nodes are stable; the metric itself never moves.
  }

  std::shared_ptr<const BaseState> base_state_for(const WhatIfJob& job) {
    const std::uint64_t key = base_state_key(job);
    std::shared_ptr<BaseEntry> entry;
    {
      const std::lock_guard<std::mutex> lock(base_mu);
      auto it = base_entries.find(key);
      if (it == base_entries.end()) {
        entry = std::make_shared<BaseEntry>();
        base_entries.emplace(key, entry);
        base_order.push_back(key);
        while (base_order.size() > config.base_state_capacity) {
          base_entries.erase(base_order.front());
          base_order.pop_front();
        }
      } else {
        entry = it->second;
      }
    }
    const std::lock_guard<std::mutex> lock(entry->mu);
    if (entry->state == nullptr) {
      base_state_misses.fetch_add(1, std::memory_order_relaxed);
      CPS_COUNT("service.base_state.misses", 1);
      entry->state = build_base_state(job);
    } else {
      base_state_hits.fetch_add(1, std::memory_order_relaxed);
      CPS_COUNT("service.base_state.hits", 1);
    }
    return entry->state;
  }

  /// Replicates reconstruct_surface (core/reconstruction.cpp) — same
  /// insertion order, same corner valuation, therefore the same bits —
  /// while recording each node's vertex id for the mutation ops.
  std::shared_ptr<const BaseState> build_base_state(const WhatIfJob& job) {
    const field::Field& reference = job.field->field();
    const std::vector<Sample> samples =
        take_samples(reference, job.base->positions);
    geo::Delaunay dt(job.region);
    std::vector<int> vertex_of_node;
    vertex_of_node.reserve(samples.size());
    for (const auto& s : samples) {
      vertex_of_node.push_back(dt.insert(s.position, s.z).vertex);
    }
    for (int corner = 0; corner < geo::Delaunay::kCorners; ++corner) {
      const geo::Vec2 cp = dt.vertex(corner).pos;
      if (job.policy == CornerPolicy::kFieldValue) {
        dt.set_vertex_z(corner, reference.value(cp));
        continue;
      }
      double best = std::numeric_limits<double>::infinity();
      double z = 0.0;
      for (const auto& s : samples) {
        const double d2 = geo::distance_sq(cp, s.position);
        if (d2 <= best) {
          best = d2;
          z = s.z;
        }
      }
      dt.set_vertex_z(corner, z);
    }
    IncrementalDelta inc(metric_for(job.region, job.resolution), reference,
                         dt);
    return std::make_shared<const BaseState>(BaseState{
        std::move(dt), std::move(inc), std::move(vertex_of_node)});
  }

  Config config;

  mutable std::mutex mu;
  std::condition_variable cv;
  std::condition_variable idle_cv;
  std::deque<Pending> queue;
  std::size_t in_flight = 0;
  bool stop = false;
  std::thread dispatcher;

  std::mutex snapshots_mu;
  std::map<std::uint64_t, FieldSnapshotPtr> snapshots;

  std::mutex metrics_mu;
  std::map<MetricKey, std::unique_ptr<DeltaMetric>> metrics;

  std::mutex base_mu;
  std::map<std::uint64_t, std::shared_ptr<BaseEntry>> base_entries;
  std::deque<std::uint64_t> base_order;  // FIFO eviction order.

  std::atomic<std::uint64_t> submitted{0};
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> errors{0};
  std::atomic<std::uint64_t> score_jobs{0};
  std::atomic<std::uint64_t> plan_jobs{0};
  std::atomic<std::uint64_t> whatif_jobs{0};
  std::atomic<std::uint64_t> snapshot_hits{0};
  std::atomic<std::uint64_t> snapshot_misses{0};
  std::atomic<std::uint64_t> base_state_hits{0};
  std::atomic<std::uint64_t> base_state_misses{0};
  std::atomic<std::uint64_t> batches{0};
  std::atomic<std::uint64_t> max_batch_size{0};
};

PlannerService::PlannerService() : PlannerService(Config{}) {}

PlannerService::PlannerService(Config config)
    : config_(config), impl_(std::make_unique<Impl>(config)) {
  config_ = impl_->config;  // Reflect the clamped values.
}

PlannerService::~PlannerService() = default;

FieldSnapshotPtr PlannerService::intern(
    std::shared_ptr<const field::Field> field) {
  auto snapshot = std::make_shared<const FieldSnapshot>(std::move(field));
  const std::lock_guard<std::mutex> lock(impl_->snapshots_mu);
  auto it = impl_->snapshots.find(snapshot->key());
  if (it != impl_->snapshots.end()) {
    impl_->snapshot_hits.fetch_add(1, std::memory_order_relaxed);
    CPS_COUNT("service.snapshot.hits", 1);
    return it->second;
  }
  impl_->snapshot_misses.fetch_add(1, std::memory_order_relaxed);
  CPS_COUNT("service.snapshot.misses", 1);
  impl_->snapshots.emplace(snapshot->key(), snapshot);
  return snapshot;
}

std::future<JobResult> PlannerService::submit(ScoreJob job) {
  return impl_->enqueue(std::move(job));
}

std::future<JobResult> PlannerService::submit(PlanJob job) {
  return impl_->enqueue(std::move(job));
}

std::future<JobResult> PlannerService::submit(WhatIfJob job) {
  return impl_->enqueue(std::move(job));
}

void PlannerService::prewarm(const FieldSnapshotPtr& field,
                             const num::Rect& region,
                             std::size_t resolution) {
  if (field == nullptr) {
    throw std::invalid_argument("prewarm: null field snapshot");
  }
  // reference_lattice fills (or touches) the shared cache entry; the
  // returned pin is dropped — the cache keeps the buffer alive.
  impl_->metric_for(region, resolution).reference_lattice(field->field());
}

void PlannerService::wait_idle() {
  std::unique_lock<std::mutex> lock(impl_->mu);
  impl_->idle_cv.wait(lock, [this] {
    return impl_->queue.empty() && impl_->in_flight == 0;
  });
}

std::size_t PlannerService::queue_depth() const {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->queue.size();
}

PlannerService::Stats PlannerService::stats() const {
  Stats s;
  s.submitted = impl_->submitted.load(std::memory_order_relaxed);
  s.completed = impl_->completed.load(std::memory_order_relaxed);
  s.errors = impl_->errors.load(std::memory_order_relaxed);
  s.score_jobs = impl_->score_jobs.load(std::memory_order_relaxed);
  s.plan_jobs = impl_->plan_jobs.load(std::memory_order_relaxed);
  s.whatif_jobs = impl_->whatif_jobs.load(std::memory_order_relaxed);
  s.snapshot_hits = impl_->snapshot_hits.load(std::memory_order_relaxed);
  s.snapshot_misses = impl_->snapshot_misses.load(std::memory_order_relaxed);
  s.base_state_hits = impl_->base_state_hits.load(std::memory_order_relaxed);
  s.base_state_misses =
      impl_->base_state_misses.load(std::memory_order_relaxed);
  s.batches = impl_->batches.load(std::memory_order_relaxed);
  s.max_batch_size = impl_->max_batch_size.load(std::memory_order_relaxed);
  return s;
}

}  // namespace cps::core
