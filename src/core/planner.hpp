// Deployment planners: the strategy interface plus the paper's baselines.
//
// A planner answers the OSD question (Definition 3.1): given the
// referential surface f, the region A, the node budget k, and the
// communication radius Rc, choose the k node positions.  FRA (core/fra.hpp)
// is the paper's contribution; RandomPlanner is the baseline of Fig. 7 and
// GridPlanner is the uniform-distribution comparison of Fig. 3 (and CMA's
// initial state).
#pragma once

#include <cstdint>

#include "core/types.hpp"
#include "field/field.hpp"
#include "numerics/quadrature.hpp"

namespace cps::core {

/// Common planner inputs.
///
/// `lattice` and `seed` let a caller vary per-request what used to be
/// planner constructor state (a long-lived service cannot rebuild planners
/// per job).  Both use 0 as "not set": the planner falls back to its
/// configured value, so existing positional initializers keep their exact
/// pre-unification behaviour.
struct PlanRequest {
  num::Rect region{0.0, 0.0, 100.0, 100.0};
  std::size_t k = 0;      ///< Node budget.
  double rc = 10.0;       ///< Communication radius.
  /// Candidate-lattice density per axis for lattice-based planners
  /// (FarthestPointPlanner candidates, FRA's error grid).  Must be >= 2
  /// when set; 0 means "use the planner's configured density".
  std::size_t lattice = 0;
  /// RNG seed for stochastic planners (RandomPlanner, FRA's kRandom
  /// measure).  0 means "use the planner's configured seed".
  std::uint64_t seed = 0;
};

/// Strategy interface.  Implementations must return at most k positions,
/// all inside the region.
class Planner {
 public:
  virtual ~Planner() = default;

  /// Plans a deployment against the referential surface.
  virtual Deployment plan(const field::Field& reference,
                          const PlanRequest& request) = 0;
};

/// Uniform-random scatter (the "widely used method in WSN study" the paper
/// compares against in Fig. 7).  Ignores the reference surface; makes no
/// connectivity promise.  The constructor seed is the fallback when
/// PlanRequest::seed is 0.
class RandomPlanner final : public Planner {
 public:
  explicit RandomPlanner(std::uint64_t seed = 1) noexcept : seed_(seed) {}

  Deployment plan(const field::Field& reference,
                  const PlanRequest& request) override;

 private:
  std::uint64_t seed_;
};

/// Greedy farthest-point ("max-min distance") placement: each node goes
/// to the lattice position maximising the distance to all previously
/// placed nodes — the classic 2-approximation for k-center coverage and a
/// stronger field-blind baseline than random scatter.  Makes no
/// connectivity promise (like RandomPlanner).
class FarthestPointPlanner final : public Planner {
 public:
  /// `lattice` is candidate positions per axis (>= 2); the fallback when
  /// PlanRequest::lattice is 0.
  explicit FarthestPointPlanner(std::size_t lattice = 50);

  Deployment plan(const field::Field& reference,
                  const PlanRequest& request) override;

 private:
  std::size_t lattice_;
};

/// Near-square grid ("uniform distribution", Fig. 3(b); also CMA's
/// connected initial state, Fig. 8(a)).  Rows x cols is the most-square
/// factorisation covering k; nodes sit at cell centres, so for k = 100 on
/// a 100 x 100 region the pitch is 10 m — exactly Rc in the paper's
/// setting, which keeps the grid connected.
class GridPlanner final : public Planner {
 public:
  Deployment plan(const field::Field& reference,
                  const PlanRequest& request) override;

  /// The grid itself, independent of any field.
  static Deployment make_grid(const num::Rect& region, std::size_t k);
};

}  // namespace cps::core
