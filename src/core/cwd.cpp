#include "core/cwd.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/curvature.hpp"
#include "core/forces.hpp"

namespace cps::core {

CwdSolver::CwdSolver(const CwdConfig& config) : config_(config) {
  if (config.rc <= 0.0 || config.rs <= 0.0 || config.step_limit <= 0.0 ||
      config.force_gain <= 0.0 || config.sample_spacing <= 0.0 ||
      config.step_decay <= 0.0 || config.step_decay > 1.0) {
    throw std::invalid_argument("CwdSolver: bad config");
  }
}

CwdResult CwdSolver::solve(const field::Field& reference,
                           const num::Rect& region, std::size_t k) const {
  if (k == 0) throw std::invalid_argument("CwdSolver: k == 0");
  return solve_from(reference, region,
                    GridPlanner::make_grid(region, k).positions);
}

CwdResult CwdSolver::solve_from(const field::Field& reference,
                                const num::Rect& region,
                                std::vector<geo::Vec2> initial) const {
  if (initial.empty()) throw std::invalid_argument("CwdSolver: no nodes");
  std::vector<geo::Vec2> pos = std::move(initial);
  const std::size_t n = pos.size();
  ForceConfig force_config;
  force_config.rc = config_.rc;
  force_config.beta = config_.beta;
  force_config.normalize_curvature = config_.normalize_curvature;
  force_config.attraction_gain = config_.attraction_gain;
  force_config.repulsion_equilibrium = config_.repulsion_equilibrium;

  CwdResult result;
  double step_limit = config_.step_limit;
  for (std::size_t iter = 0; iter < config_.max_iterations; ++iter) {
    // Per-node sensing (identical information to CMA, minus the radio).
    std::vector<double> mean_abs(n, 0.0);
    std::vector<std::optional<PeakInfo>> peaks(n);
    std::vector<double> gaussian_abs(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const SensingPatch patch(reference, pos[i], config_.rs,
                               config_.sample_spacing);
      gaussian_abs[i] = std::abs(patch.gaussian());
      mean_abs[i] = patch.mean_abs_gaussian();
      if (const auto peak = patch.peak_curvature()) {
        peaks[i] = PeakInfo{peak->position, peak->gaussian_abs};
      }
    }

    double max_move = 0.0;
    std::vector<geo::Vec2> next = pos;
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<NeighborInfo> table;
      for (std::size_t j = 0; j < n; ++j) {
        if (j != i && geo::distance(pos[i], pos[j]) <= config_.rc) {
          table.push_back(NeighborInfo{pos[j], gaussian_abs[j]});
        }
      }
      const ForceBreakdown forces = compute_forces(
          pos[i], peaks[i], table, mean_abs[i], force_config);
      const double magnitude = forces.fs.norm();
      if (magnitude <= config_.tolerance) continue;
      const double step = std::min(step_limit,
                                   magnitude * config_.force_gain);
      next[i] = pos[i] + forces.fs.normalized() * step;
      next[i].x = std::clamp(next[i].x, region.x0, region.x1);
      next[i].y = std::clamp(next[i].y, region.y0, region.y1);
      max_move = std::max(max_move, geo::distance(pos[i], next[i]));
    }
    pos = std::move(next);
    step_limit *= config_.step_decay;
    result.iterations = iter + 1;
    if (max_move < config_.tolerance) {
      result.converged = true;
      break;
    }
  }
  result.deployment.positions = std::move(pos);
  return result;
}

}  // namespace cps::core
