#include "core/interpolation.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace cps::core {

IdwField::IdwField(std::span<const Sample> samples, double power)
    : samples_(samples.begin(), samples.end()), power_(power) {
  if (samples_.empty()) throw std::invalid_argument("IdwField: no samples");
  if (power <= 0.0) throw std::invalid_argument("IdwField: power <= 0");
}

double IdwField::do_value(geo::Vec2 p) const {
  double weight_sum = 0.0;
  double value_sum = 0.0;
  for (const auto& s : samples_) {
    const double d2 = geo::distance_sq(p, s.position);
    if (d2 < 1e-18) return s.z;  // Exact at (and immediately around) samples.
    // w = d^-power, computed via d2^(power/2) to avoid a sqrt.
    const double w = 1.0 / std::pow(d2, 0.5 * power_);
    weight_sum += w;
    value_sum += w * s.z;
  }
  return value_sum / weight_sum;
}

NearestField::NearestField(std::span<const Sample> samples)
    : samples_(samples.begin(), samples.end()) {
  if (samples_.empty()) {
    throw std::invalid_argument("NearestField: no samples");
  }
}

double NearestField::do_value(geo::Vec2 p) const {
  double best = std::numeric_limits<double>::infinity();
  double z = 0.0;
  for (const auto& s : samples_) {
    const double d2 = geo::distance_sq(p, s.position);
    if (d2 < best) {
      best = d2;
      z = s.z;
    }
  }
  return z;
}

std::shared_ptr<const field::Field> make_delaunay_surface(
    std::span<const Sample> samples, const num::Rect& region,
    CornerPolicy policy, const field::Field* reference) {
  return std::make_shared<DelaunayField>(
      reconstruct_surface(samples, region, policy, reference));
}

}  // namespace cps::core
