#include "core/coverage.hpp"

#include <stdexcept>

namespace cps::core {
namespace {

void validate(double radius, const num::Rect& region,
              std::size_t resolution) {
  if (radius <= 0.0) throw std::invalid_argument("coverage: radius <= 0");
  if (resolution == 0) throw std::invalid_argument("coverage: resolution");
  if (region.width() <= 0.0 || region.height() <= 0.0) {
    throw std::invalid_argument("coverage: empty region");
  }
}

}  // namespace

double covered_area(std::span<const geo::Vec2> nodes, double sensing_radius,
                    const num::Rect& region, std::size_t multiplicity,
                    std::size_t resolution) {
  validate(sensing_radius, region, resolution);
  if (multiplicity == 0) return region.area();
  if (nodes.empty()) return 0.0;
  const double r2 = sensing_radius * sensing_radius;
  const double hx = region.width() / static_cast<double>(resolution);
  const double hy = region.height() / static_cast<double>(resolution);
  std::size_t covered = 0;
  for (std::size_t j = 0; j < resolution; ++j) {
    const double y = region.y0 + (static_cast<double>(j) + 0.5) * hy;
    for (std::size_t i = 0; i < resolution; ++i) {
      const geo::Vec2 p{region.x0 + (static_cast<double>(i) + 0.5) * hx, y};
      std::size_t hits = 0;
      for (const auto& n : nodes) {
        if (geo::distance_sq(p, n) <= r2 && ++hits >= multiplicity) break;
      }
      if (hits >= multiplicity) ++covered;
    }
  }
  return static_cast<double>(covered) * hx * hy;
}

double coverage_fraction(std::span<const geo::Vec2> nodes,
                         double sensing_radius, const num::Rect& region,
                         std::size_t resolution) {
  return covered_area(nodes, sensing_radius, region, 1, resolution) /
         region.area();
}

}  // namespace cps::core
