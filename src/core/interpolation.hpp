// Alternative surface interpolators.
//
// The paper settles on Delaunay triangulation for rebuilding z* from the
// sampled data (Section 3.1) after noting that least squares, polygon
// meshes, and other interpolation methods are common in the vision
// literature.  This module makes the interpolator a first-class, swappable
// piece: the Delaunay surface as an owning Field, plus inverse-distance
// weighting and nearest-neighbour baselines, so the choice the paper takes
// for granted can be measured (bench_ablation_interpolation).
#pragma once

#include <memory>
#include <span>

#include "core/reconstruction.hpp"
#include "core/types.hpp"
#include "field/field.hpp"
#include "geometry/delaunay.hpp"
#include "numerics/quadrature.hpp"

namespace cps::core {

/// The paper's rebuilt surface z* = DT(x, y), packaged as an owning Field
/// so it can flow through anything that consumes environments (renderers,
/// the delta metric's delta_between, field combinators).
class DelaunayField final : public field::Field {
 public:
  /// Takes ownership of a built triangulation.
  explicit DelaunayField(geo::Delaunay dt) noexcept : dt_(std::move(dt)) {}

  const geo::Delaunay& triangulation() const noexcept { return dt_; }

 private:
  // Not dt_.interpolate(): Fields must be const-thread-safe (parallel
  // delta sweeps evaluate them concurrently), so the location walk uses
  // locate_from, which never touches the triangulation's shared hint.
  double do_value(geo::Vec2 p) const override {
    const int tri = dt_.locate_from(p, -1);
    const auto& t = dt_.triangle(tri);
    return geo::interpolate_linear(dt_.triangle_geometry(tri),
                                   dt_.vertex(t.v[0]).z,
                                   dt_.vertex(t.v[1]).z,
                                   dt_.vertex(t.v[2]).z, p);
  }

  geo::Delaunay dt_;
};

/// Inverse-distance-weighted (Shepard) interpolation:
///   z*(p) = sum_i w_i z_i / sum_i w_i,  w_i = 1 / d(p, p_i)^power.
/// Exact at sample positions; tends to the sample mean far away.
class IdwField final : public field::Field {
 public:
  /// Requires at least one sample and power > 0
  /// (std::invalid_argument otherwise).
  IdwField(std::span<const Sample> samples, double power = 2.0);

  double power() const noexcept { return power_; }
  std::size_t sample_count() const noexcept { return samples_.size(); }

 private:
  double do_value(geo::Vec2 p) const override;

  std::vector<Sample> samples_;
  double power_;
};

/// Nearest-neighbour (Voronoi) interpolation: z*(p) is the value of the
/// closest sample.  The crudest baseline; piecewise constant.
class NearestField final : public field::Field {
 public:
  /// Requires at least one sample (std::invalid_argument otherwise).
  explicit NearestField(std::span<const Sample> samples);

  std::size_t sample_count() const noexcept { return samples_.size(); }

 private:
  double do_value(geo::Vec2 p) const override;

  std::vector<Sample> samples_;
};

/// Convenience: reconstruct_surface + DelaunayField in one call.
std::shared_ptr<const field::Field> make_delaunay_surface(
    std::span<const Sample> samples, const num::Rect& region,
    CornerPolicy policy = CornerPolicy::kNearestSample,
    const field::Field* reference = nullptr);

}  // namespace cps::core
