// Shared scan-conversion machinery for the δ engines (core/delta.cpp and
// core/delta_incremental.cpp).
//
// kRaster and kIncremental must assign lattice points to triangles — and
// interpolate them — through the *same* arithmetic, or their sums drift by
// a bit and the oracle protocol (incremental ≡ fresh raster ≡ walk,
// bitwise) collapses.  Everything here is therefore exactly the code the
// raster engine ran before the split: the SoA mirror copies coordinates
// verbatim, the guard-range formulas keep their float expressions
// unreordered, and the interpolation helper replays interpolate_linear's
// barycentric expression term for term.  Edit with a bit-identity test in
// hand (tests/test_delta_incremental.cpp).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "geometry/delaunay.hpp"
#include "geometry/predicates.hpp"
#include "numerics/quadrature.hpp"

namespace cps::core::detail {

/// One triangle's column interval on one lattice row (inclusive, with a
/// one-column conservative guard on each end — precision only affects how
/// many candidates a point tests, never which triangle it is assigned).
/// `slot` indexes the TriangleSoA mirror built for the same sweep.
struct RowSpan {
  int tri = -1;
  std::uint32_t slot = 0;
  int ilo = 0;
  int ihi = -1;
};

/// Structure-of-arrays mirror of the alive triangles: vertex coordinates,
/// vertex z values, and the hoisted barycentric denominator
/// orient2d_value(a, b, c) — one flat array per component, so the row
/// sweep's containment tests and interpolations stream 8-byte lanes
/// instead of chasing Delaunay vertex records through triangle indices.
/// Coordinates are copied verbatim and the interpolation below replays
/// interpolate_linear's exact expression on them, so assignments and δ
/// contributions stay bit-identical to the pointer-chasing form.
struct TriangleSoA {
  std::vector<double> ax, ay, bx, by, cx, cy;
  std::vector<double> za, zb, zc;
  std::vector<double> total;              // orient2d_value(a, b, c).
  std::vector<std::uint32_t> slot_of;     // Triangle id -> slot.

  void build(const geo::Delaunay& dt, const std::vector<int>& alive) {
    const std::size_t n = alive.size();
    ax.resize(n); ay.resize(n); bx.resize(n); by.resize(n);
    cx.resize(n); cy.resize(n); za.resize(n); zb.resize(n); zc.resize(n);
    total.resize(n);
    slot_of.assign(dt.triangle_slots(), 0);
    for (std::size_t s = 0; s < n; ++s) {
      const int tid = alive[s];
      const auto& t = dt.triangle(tid);
      const geo::Vec2 a = dt.vertex(t.v[0]).pos;
      const geo::Vec2 b = dt.vertex(t.v[1]).pos;
      const geo::Vec2 c = dt.vertex(t.v[2]).pos;
      ax[s] = a.x; ay[s] = a.y;
      bx[s] = b.x; by[s] = b.y;
      cx[s] = c.x; cy[s] = c.y;
      za[s] = dt.vertex(t.v[0]).z;
      zb[s] = dt.vertex(t.v[1]).z;
      zc[s] = dt.vertex(t.v[2]).z;
      total[s] = geo::orient2d_value(a, b, c);
      slot_of[static_cast<std::size_t>(tid)] =
          static_cast<std::uint32_t>(s);
    }
  }

  geo::Vec2 a(std::uint32_t s) const noexcept { return {ax[s], ay[s]}; }
  geo::Vec2 b(std::uint32_t s) const noexcept { return {bx[s], by[s]}; }
  geo::Vec2 c(std::uint32_t s) const noexcept { return {cx[s], cy[s]}; }
};

/// True when p is strictly inside the triangle at SoA slot s: every walk
/// edge predicate is strictly positive.  These are the same filtered
/// orient2d calls, in the same (B,C), (C,A), (A,B) edge order, that
/// Delaunay::walk_from evaluates, on coordinates copied verbatim into the
/// mirror — so a strict pass here guarantees the walk's closed-containment
/// test accepts this triangle and rejects every other (p is on no edge,
/// and triangle interiors are disjoint), i.e. locate_from returns this
/// triangle for ANY hint.
inline bool strictly_inside(const TriangleSoA& soa, std::uint32_t s,
                            geo::Vec2 p) {
  if (geo::orient2d(soa.b(s), soa.c(s), p) <= 0) return false;
  if (geo::orient2d(soa.c(s), soa.a(s), p) <= 0) return false;
  return geo::orient2d(soa.a(s), soa.b(s), p) > 0;
}

/// strictly_inside against the triangulation's own records: the same three
/// predicates on the same doubles (the SoA copies coordinates verbatim),
/// for callers that track assignments across topology changes and have no
/// current SoA mirror.
inline bool strictly_inside(const geo::Delaunay& dt, int tid, geo::Vec2 p) {
  const auto& t = dt.triangle(tid);
  const geo::Vec2 a = dt.vertex(t.v[0]).pos;
  const geo::Vec2 b = dt.vertex(t.v[1]).pos;
  const geo::Vec2 c = dt.vertex(t.v[2]).pos;
  if (geo::orient2d(b, c, p) <= 0) return false;
  if (geo::orient2d(c, a, p) <= 0) return false;
  return geo::orient2d(a, b, p) > 0;
}

/// The raster phase-2 interpolation expression (barycentric weights via
/// the hoisted orient2d_value denominator), term for term — callers that
/// recompute a single point's contribution get the same bits the SIMD row
/// loop produced.  The degenerate-denominator guard replays the scalar
/// interpolate_linear all-zero-weights result.
inline double interpolate_point(double ax, double ay, double bx, double by,
                                double cx, double cy, double za, double zb,
                                double zc, double total, double px,
                                double py) {
  const double w0 = ((bx - px) * (cy - py) - (by - py) * (cx - px)) / total;
  const double w1 =
      ((px - ax) * (cy - ay) - (py - ay) * (cx - ax)) / total;
  const double w2 = 1.0 - w0 - w1;
  const double z = w0 * za + w1 * zb + w2 * zc;
  return total == 0.0 ? 0.0 : z;
}

/// interpolate_point fed from the triangulation's records (verbatim the
/// doubles a SoA mirror would hold).
inline double interpolate_point(const geo::Delaunay& dt, int tid,
                                geo::Vec2 p) {
  const auto& t = dt.triangle(tid);
  const geo::Vec2 a = dt.vertex(t.v[0]).pos;
  const geo::Vec2 b = dt.vertex(t.v[1]).pos;
  const geo::Vec2 c = dt.vertex(t.v[2]).pos;
  return interpolate_point(a.x, a.y, b.x, b.y, c.x, c.y,
                           dt.vertex(t.v[0]).z, dt.vertex(t.v[1]).z,
                           dt.vertex(t.v[2]).z, geo::orient2d_value(a, b, c),
                           p.x, p.y);
}

/// Scan-converts one triangle into per-row inclusive column ranges over
/// the midpoint lattice and calls sink(j, ilo, ihi) for every non-empty
/// row.  Midpoint rows are y0 + (j + 0.5) hy; the ±1 row/column guard
/// absorbs any rounding in the inverse map, so emitted ranges are a
/// conservative superset of the triangle's closed coverage.  This is the
/// raster engine's span-emission loop verbatim; the incremental engine
/// reuses it to mark dirty cells, which is what makes "dirty region ⊇
/// raster coverage of the changed triangles" hold by construction.
template <typename Sink>
void for_each_covered_range(geo::Vec2 a, geo::Vec2 b, geo::Vec2 c,
                            const num::Rect& region,
                            const num::MidpointLattice& lat, long res,
                            Sink&& sink) {
  const double hx = lat.hx();
  const double hy = lat.hy();
  const double ymin = std::min({a.y, b.y, c.y});
  const double ymax = std::max({a.y, b.y, c.y});
  const long jlo = std::max(
      0L, static_cast<long>(std::floor((ymin - region.y0) / hy - 0.5)) - 1);
  const long jhi = std::min(
      res - 1,
      static_cast<long>(std::ceil((ymax - region.y0) / hy - 0.5)) + 1);
  for (long j = jlo; j <= jhi; ++j) {
    const double y = lat.y(static_cast<std::size_t>(j));
    double xlo = std::numeric_limits<double>::infinity();
    double xhi = -xlo;
    const geo::Vec2 edges[3][2] = {{a, b}, {b, c}, {c, a}};
    for (const auto& edge : edges) {
      const geo::Vec2 p = edge[0];
      const geo::Vec2 q = edge[1];
      if (std::min(p.y, q.y) > y || std::max(p.y, q.y) < y) continue;
      if (p.y == q.y) {
        xlo = std::min({xlo, p.x, q.x});
        xhi = std::max({xhi, p.x, q.x});
      } else {
        const double t = (y - p.y) / (q.y - p.y);
        const double x = p.x + t * (q.x - p.x);
        xlo = std::min(xlo, x);
        xhi = std::max(xhi, x);
      }
    }
    if (xhi < xlo) continue;  // Row inside the guard band only.
    const long ilo = std::max(
        0L, static_cast<long>(std::floor((xlo - region.x0) / hx - 0.5)) - 1);
    const long ihi = std::min(
        res - 1,
        static_cast<long>(std::ceil((xhi - region.x0) / hx - 0.5)) + 1);
    if (ilo > ihi) continue;
    sink(j, ilo, ihi);
  }
}

}  // namespace cps::core::detail
