// Foresighted Refinement Algorithm (Section 4.2, Table 1).
//
// FRA answers the (NP-hard) OSD problem heuristically with a
// coarse-to-fine greedy refinement:
//
//   1. Seed the triangulation with the region split into two triangles and
//      compute the local error |f - DT| at every lattice position.
//   2. FORESIGHT: count the connected components of the disk graph over
//      the positions selected so far; if the remaining budget k - i is
//      exactly what it takes to stitch the components together (relays
//      spaced <= Rc along the component MST — L(G, Rc) of Table 1), spend
//      the rest of the budget on those relays and stop.
//   3. Otherwise select the position with maximal local error, insert it
//      into the Delaunay triangulation, and update local errors — only
//      positions inside the retriangulated cavity can have changed, so the
//      update is O(cavity), the Garland-Heckbert structure.
//
// The selection measure is pluggable (local error, curvature, their
// product, random) to reproduce the Garland comparison the paper cites
// when motivating local error; see bench_ablation_selection.
#pragma once

#include <cstdint>
#include <vector>

#include "core/delta_incremental.hpp"
#include "core/planner.hpp"
#include "core/types.hpp"

namespace cps::core {

/// What the refinement greedily maximises.
enum class SelectionMeasure {
  kLocalError,  ///< |f - DT| at the candidate (the paper's choice).
  kCurvature,   ///< |Gaussian curvature| of f at the candidate.
  kProduct,     ///< Local error times curvature.
  kRandom,      ///< Uniformly random unused candidate (sanity floor).
};

/// How the per-iteration argmax over the candidate lattice is computed.
///
/// kHeap (default) keeps an *indexed* max-heap with at most one entry per
/// unused candidate: a position array maps candidates to heap slots, so
/// the Garland–Heckbert rebucket re-ranks a displaced candidate with a
/// decrease/increase-key sift instead of pushing a duplicate, and every
/// pop is live by construction (no stale entries to revalidate).  When an
/// insertion's cavity displaces a large fraction of the lattice — the
/// early-iteration storms that made the PR 4 lazy-deletion heap lose to
/// the scan at small k — the heap is invalidated wholesale, selections
/// are served by a flat argmax over the structure-of-arrays score mirror,
/// and one Floyd build restores the heap once cavities shrink.
/// Valid-but-unaffordable pops are parked and restored after the
/// selection (affordability is iteration-dependent).  kScan is the full
/// parallel_reduce lattice scan, O(k n), kept compiled in as the
/// equivalence oracle.  Every path — heap pop, storm fallback, oracle
/// scan — computes the identical (score desc, index asc) argmax, so the
/// engines produce bit-identical selections; SelectionMeasure::kRandom
/// ignores the engine and uses its own incremental free-list.
enum class SelectionEngine { kScan, kHeap };

/// FRA tuning knobs.
struct FraConfig {
  /// Candidate lattice density per axis (the paper's sqrt(A) x sqrt(A)
  /// positions; 100 for the GreenOrbs window).
  std::size_t error_grid = 100;
  /// Enable the connectivity foresight step (off = pure greedy, the
  /// ablation of bench_ablation_foresight).
  bool foresight = true;
  SelectionMeasure measure = SelectionMeasure::kLocalError;
  /// Sensing radius used by the curvature-based selection measures.
  double curvature_radius = 5.0;
  /// Seed for SelectionMeasure::kRandom.
  std::uint64_t seed = 1;
  /// Argmax engine (see SelectionEngine); results are bit-identical.
  SelectionEngine selection_engine = SelectionEngine::kHeap;
  /// When set, plan_detailed() feeds every insertion's cavity report into
  /// a cavity-local IncrementalDelta over this metric and records the
  /// what-if δ trajectory (FraResult::delta_trajectory / final_delta) —
  /// O(changed area) per step instead of a full O(res²) sweep per probe.
  /// The final value is bit-identical to
  /// metric.delta_of_deployment(reference, positions, kFieldValue): FRA's
  /// own triangulation IS that reconstruction (same insertion order, same
  /// f-valued corners).  The metric must outlive the plan call.  Null
  /// (the default) skips tracking entirely.
  const DeltaMetric* track_delta = nullptr;
};

/// One selection the algorithm made, in order.
struct FraStep {
  geo::Vec2 position;
  double score = 0.0;  ///< Measure value at selection time (0 for relays).
  bool relay = false;  ///< True when placed by the foresight step.
};

/// Full planning record.
struct FraResult {
  Deployment deployment;
  std::vector<FraStep> steps;
  std::size_t relay_count = 0;
  /// Candidates whose triangle bucket was inconsistent (dead, reused, or
  /// not containing the candidate) when planning finished.  Always 0 for
  /// a correct Garland-Heckbert update; exposed so tests can catch a
  /// reintroduction of the stale-bucket-after-relay-insertion bug.
  std::size_t stale_candidates = 0;
  /// Tracked δ after each step (parallel to `steps`; empty unless
  /// FraConfig::track_delta is set).
  std::vector<double> delta_trajectory;
  /// The last trajectory entry (δ of the finished deployment; 0 with no
  /// tracking or an empty plan) — what fig7 reads instead of re-running
  /// delta_of_deployment per budget.
  double final_delta = 0.0;
  /// Work accounting of the tracker (zeros unless tracking): the
  /// bench_perf `delta.incremental` savings gate reads these.
  IncrementalDelta::Stats delta_stats;
};

/// The planner.  Thread-compatible: each plan() call is independent.
class FraPlanner final : public Planner {
 public:
  explicit FraPlanner(const FraConfig& config = {});

  Deployment plan(const field::Field& reference,
                  const PlanRequest& request) override;

  /// plan() plus the per-step record benches and tests introspect.
  FraResult plan_detailed(const field::Field& reference,
                          const PlanRequest& request);

  const FraConfig& config() const noexcept { return config_; }

 private:
  FraConfig config_;
};

}  // namespace cps::core
