// Coordinated Movement Algorithm (Section 5.3, Table 2).
//
// Each slot, every mobile node — with strictly local knowledge — runs:
//
//   1. Sense(Rs): sample the environment on the lattice inside its sensing
//      disk and estimate its Gaussian curvature (SensingPatch).
//   2. Tx/Rx: broadcast a beacon (position, |G|) and collect the beacons of
//      single-hop neighbours (MessageBus round one).
//   3. Compute the virtual forces F1, F2, Fr and the resultant Fs
//      (core/forces.hpp); derive a desired destination along Fs.
//   4. tell/Rxtell: broadcast the planned destination plus the neighbour
//      table (MessageBus round two).  The Local Connectivity Mechanism
//      (Fig. 4): a node that could reach a mover before, but can reach
//      neither the mover's destination directly nor any node of the
//      mover's neighbour table, abandons its own plan and chases the mover
//      to distance Rc.
//   5. Move, capped by the physical speed v * dt.  Chasers move after
//      movers and aim at the mover's realised position, which (speeds
//      being equal) restores the link every slot.
//
// The simulation is slot-synchronous and fully deterministic for a given
// seed; nodes never read the environment outside their sensing disk and
// never learn non-neighbour state — the distribution emerges, as in the
// paper, from local rules only.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/delta.hpp"
#include "core/forces.hpp"
#include "core/types.hpp"
#include "field/field.hpp"
#include "net/fault.hpp"
#include "net/link_model.hpp"
#include "net/message_bus.hpp"
#include "numerics/quadrature.hpp"

namespace cps::core {

class ShardGrid;

/// Connectivity-maintenance variants.
enum class LcmMode {
  /// Provable per-slot invariant: bridgeless links are held by midpoint
  /// disks; links may tear only across margin-safe (two-hop) bridges.  A
  /// taut full-coverage lattice is nearly rigid under this rule, so the
  /// distribution adapts slowly (the price of the guarantee).
  kStrict,
  /// The paper's literal Fig. 4 rule: a node that can reach neither a
  /// mover's destination nor any member of its neighbour table abandons
  /// its plan and chases the mover to distance Rc.  Best-effort only —
  /// concurrent movers can transiently fragment the graph (the benches
  /// report the connectivity rate alongside delta).
  kPaper,
  /// No connectivity maintenance (upper-bound ablation).
  kOff,
};

/// How step() schedules the slot's work over the region.
enum class ShardingMode {
  /// The seed path, compiled in as the equivalence oracle (the
  /// selection_engine / DeltaEngine precedent): global parallel maps per
  /// phase, bus delivery via MessageBus::step().
  kOff,
  /// Spatial sharding (cma_sharding.hpp): tiles of side >= max(Rs, Rc)
  /// own their nodes plus a ghost ring; each tile runs
  /// sense/beacon-fold/force/LCM/move locally on the thread pool and the
  /// bus delivers over the tiles' precomputed in-range matches
  /// (step_matched).  Bit-identical to kOff — positions, inbox order,
  /// drop taxonomy — at every thread count.
  kTiles,
};

/// CMA parameters (defaults = the paper's simulation setting).
struct CmaConfig {
  double rc = 10.0;            ///< Communication radius, metres.
  double rs = 5.0;             ///< Sensing radius, metres.
  double sample_spacing = 1.0;  ///< Sensing lattice pitch, metres.
  double beta = 2.0;           ///< Eqn. 18 repulsion weight.
  double velocity = 1.0;       ///< Max speed, metres per minute.
  double dt = 1.0;             ///< Slot length, minutes.
  /// Metres of desired displacement per unit of |Fs|; the destination is
  /// further capped by Rs (Table 2 line 16) and by v * dt physically.
  double force_gain = 1.0;
  /// |Fs| below this is treated as balanced (Table 2 line 13).
  double force_tolerance = 1e-3;
  /// Beacon/tell loss probability (0 in the paper; robustness knob).
  double packet_loss = 0.0;
  bool normalize_curvature = true;  ///< See core/forces.hpp.
  double attraction_gain = 0.1;     ///< See ForceConfig::attraction_gain.
  /// See ForceConfig::repulsion_equilibrium.
  double repulsion_equilibrium = 0.9;
  /// Fraction of v * dt actually used per slot under kStrict.  The LCM's
  /// tear-safety threshold is Rc - 2 * step: slower slots leave more link
  /// margin, so more links qualify as safe bridge paths and the topology
  /// can adapt.  1.0 reproduces the raw speed cap but freezes a taut
  /// lattice; 0.5 trades half the speed for tearability (see DESIGN.md).
  /// Ignored by kPaper/kOff (full speed).
  double speed_fraction = 0.5;
  /// Connectivity-maintenance variant (see LcmMode).
  LcmMode lcm = LcmMode::kStrict;
  /// Section 7 future work, "trace sampling of mobile nodes": when true,
  /// every node also logs one sample per slot at its current position, and
  /// reconstruction can draw on the recent movement trace instead of only
  /// the k instantaneous positions.
  bool trace_sampling = false;
  /// Trace samples older than this many minutes are discarded — in a
  /// time-varying environment stale values mislead the reconstruction.
  double trace_staleness = 10.0;
  /// Slots a beacon-learned neighbour survives in the table without a
  /// fresh beacon.  1 (the default) reproduces the paper's behaviour —
  /// only this slot's beacons count — so a single lost beacon makes the
  /// neighbour invisible for the slot.  Larger values let LCM and force
  /// decisions coast through lost beacons and notice dead neighbours only
  /// after the TTL lapses: the graceful-degradation knob.  Must be >= 1.
  std::size_t neighbor_ttl = 1;
  std::uint64_t seed = 7;      ///< Radio-loss randomness only.
  /// Slot scheduling strategy (see ShardingMode).  kTiles requires the
  /// link radius to stay within the ghost-ring width.
  ShardingMode sharding = ShardingMode::kOff;
  /// Requested tile side, metres; <= 0 picks 2 * max(rs, rc).  Clamped up
  /// to the ghost width (the 3x3 coverage requirement).
  double tile_size = 0.0;
  /// Ghost-ring width, metres; <= 0 picks max(rs, rc).  Must be >= rc.
  double ghost_width = 0.0;
};

/// Slot-synchronous simulation of k mobile nodes running CMA.
class CmaSimulation {
 public:
  /// `initial` must be non-empty with all positions inside `region`;
  /// throws std::invalid_argument otherwise.  `start_time` is the first
  /// slot's timestamp (minutes).  The environment reference is kept, not
  /// copied: it must outlive the simulation.
  CmaSimulation(const field::TimeVaryingField& environment,
                const num::Rect& region, std::vector<geo::Vec2> initial,
                const CmaConfig& config, double start_time = 0.0);
  ~CmaSimulation();  // Out of line: ShardGrid is incomplete here.

  /// Installs a mid-run fault schedule.  Event slots are simulation slots
  /// counted from the *next* step(): events for slot s are applied at the
  /// start of the (s+1)-th remaining step.  Replaces any prior schedule;
  /// an empty schedule leaves the run untouched.  Call before run().
  void set_fault_schedule(net::FaultSchedule schedule);

  /// Replaces the channel model behind the beacon/tell rounds (default:
  /// the paper's disk radio with config.packet_loss).  Call before the
  /// first step() for a fully reproducible run.
  void set_link_model(std::unique_ptr<net::LinkModel> link) {
    bus_.set_link(std::move(link));
  }

  /// Selects the bus's receiver-enumeration strategy (delivery is
  /// bit-identical either way; kFull is the equivalence oracle, kGrid the
  /// default O(N * avg_degree) path — see net::DeliveryMode).
  void set_delivery_mode(net::DeliveryMode mode) noexcept {
    bus_.set_delivery_mode(mode);
  }

  /// Advances one slot (dt minutes).
  void step();

  /// Advances `n` slots.
  void run(std::size_t n);

  double time() const noexcept { return time_; }

  /// The sensed environment (kept by reference; see the constructor).
  /// CmaDeltaTracker slices it per slot to retarget its reference.
  const field::TimeVaryingField& environment() const noexcept {
    return *environment_;
  }

  std::size_t node_count() const noexcept { return positions_.size(); }
  const std::vector<geo::Vec2>& positions() const noexcept {
    return positions_;
  }
  const CmaConfig& config() const noexcept { return config_; }

  /// False once a scheduled death has hit node `i` (until a revival).
  /// Dead nodes stop sensing, transmitting, receiving, and moving; their
  /// last position is kept (a dark carcass in the field).
  bool is_alive(std::size_t i) const { return alive_.at(i) != 0; }

  /// Living nodes right now (== node_count() before any death).
  std::size_t alive_count() const noexcept { return alive_count_; }

  /// Positions of the living nodes, in node order — the survivor
  /// deployment all degradation metrics are computed over.
  std::vector<geo::Vec2> alive_positions() const;

  /// Deaths applied so far (revivals do not subtract).
  std::size_t deaths_applied() const noexcept { return deaths_applied_; }

  /// Beacon-learned neighbours node `i` currently believes in (entries
  /// within the staleness TTL) — may lag reality under loss or death.
  std::size_t known_neighbor_count(std::size_t i) const {
    return known_.at(i).size();
  }

  /// Largest single-node displacement in the last step() (0 before any).
  double last_max_displacement() const noexcept { return last_max_move_; }

  /// True when the last step moved every node less than `tol` metres.
  bool converged(double tol = 1e-2) const noexcept {
    return steps_run_ > 0 && last_max_move_ < tol;
  }

  /// Disk-graph connectivity of the current *living* positions (the OSTD
  /// constraint; the LCM is supposed to keep this true).  Before any
  /// death this is exactly the full-deployment connectivity.
  bool is_connected() const;

  /// Fraction of living nodes inside their largest connected component
  /// (1.0 when connected); the health statistic the Fig. 10 bench
  /// reports for the best-effort paper LCM.
  double largest_component_fraction() const;

  /// Connected components of the survivor disk graph (0 when all dead).
  std::size_t component_count() const;

  /// Number of LCM chase overrides in the last step.
  std::size_t last_chase_count() const noexcept { return last_chases_; }

  /// Current measurements z_i = f(p_i, t) of the *living* nodes — dead
  /// sensors report nothing, so survivor delta is the honest metric.
  std::vector<Sample> sense_at_nodes() const;

  /// Samples logged along the nodes' movement traces within the staleness
  /// window (empty unless config.trace_sampling).  Values are as sensed at
  /// log time — deliberately stale under a changing environment.
  std::vector<Sample> trace_samples() const;

  /// Like current_delta, but reconstruction also uses trace_samples();
  /// fresher samples at duplicated positions win.
  double current_delta_with_trace(const DeltaMetric& metric) const;

  /// End-to-end quality right now: sense, rebuild, measure against the
  /// environment frozen at the current time.
  double current_delta(const DeltaMetric& metric) const;

  /// Per-node force breakdown of the last step (for tests/benches).
  const std::vector<ForceBreakdown>& last_forces() const noexcept {
    return last_forces_;
  }

  /// Metres travelled by all nodes so far — the movement-energy proxy
  /// behind the paper's "assume the energy is sufficient".
  double total_distance_traveled() const noexcept { return total_distance_; }

  /// Metres travelled by one node.
  double distance_traveled(std::size_t node) const {
    return distance_traveled_.at(node);
  }

  /// Beacon + tell broadcasts issued so far (radio-energy proxy).
  std::size_t total_broadcasts() const noexcept {
    return bus_.total_broadcasts();
  }

  /// True when the slot loop runs the tile-sharded schedule.
  bool sharded() const noexcept { return shard_ != nullptr; }

  /// The tile decomposition (null unless sharded) — read-only stats for
  /// tests and benches (tile_count, last_migrations, ...).
  const ShardGrid* shard() const noexcept { return shard_.get(); }

 private:
  /// Broadcast payload: a beacon in round one, a tell in round two.
  struct Message {
    enum class Kind { kBeacon, kTell } kind = Kind::kBeacon;
    geo::Vec2 position;        // Sender position (beacon) or same (tell).
    double gaussian_abs = 0.0;  // Beacon curvature.
    geo::Vec2 destination;     // Tell: planned destination.
    /// Tell: sender's neighbour table.  Shared immutable payload: one
    /// copy per broadcast instead of one per delivery — the dominant
    /// allocation churn of the bus at production degree.
    std::shared_ptr<const std::vector<NeighborInfo>> table;
    /// Beacon: (position, gaussian_abs) are unchanged since the sender's
    /// previous beacon, sent in slot prev_slot.  Delta-compression
    /// accounting only — the state is still carried, so trajectories are
    /// unaffected; a receiver whose decompression cache holds the
    /// prev_slot beacon would not have needed the payload entry (counted
    /// as net.bus.beacon_delta_hits vs beacon_payload_entries).
    bool delta = false;
    std::size_t prev_slot = 0;
  };

  void clamp_to_region(geo::Vec2& p) const noexcept;

  /// Strict midpoint-disk connectivity maintenance (LcmMode::kStrict).
  void apply_strict_lcm(const std::vector<std::vector<NeighborInfo>>& tables,
                        const std::vector<geo::Vec2>& destination,
                        double max_step,
                        std::vector<geo::Vec2>& final_target);

  /// Literal Fig. 4 chase rule (LcmMode::kPaper).
  void apply_paper_lcm(const std::vector<geo::Vec2>& destination,
                       std::vector<geo::Vec2>& final_target);

  /// Applies a pure per-node LCM resolution (node_target(i) -> clamped
  /// override target or nullopt) to final_target and counts the chases:
  /// serially in id order when unsharded, tile-parallel with a
  /// deterministic per-tile chase fold when sharded.
  template <typename NodeTarget>
  void resolve_lcm_targets(NodeTarget&& node_target,
                           std::vector<geo::Vec2>& final_target);

  struct TimedSample {
    Sample sample;
    double time = 0.0;
  };

  /// One beacon-learned neighbour-table entry with its freshness stamp.
  struct KnownNeighbor {
    net::NodeId id = 0;
    NeighborInfo info;
    std::size_t last_seen = 0;  ///< Slot the last beacon arrived in.
  };

  /// Applies the fault events scheduled for `slot`.
  void apply_faults(std::size_t slot);

  /// Folds this slot's received beacons into the persistent per-node
  /// neighbour tables and drops entries past the staleness TTL; returns
  /// the projected per-node NeighborInfo tables for the force/LCM stages.
  std::vector<std::vector<NeighborInfo>> refresh_neighbor_tables(
      std::size_t slot);

  /// Delivers the queued bus round: step_matched over the tile matching
  /// when sharded, plain step() otherwise.
  void deliver_round();

  /// Runs body(i) for every node: a global parallel map when unsharded,
  /// a tile-parallel sweep over owned nodes when sharded.  Bodies must be
  /// pure per-node (disjoint writes, atomic counters only).
  template <typename Body>
  void for_each_node(Body&& body, std::size_t grain);

  /// Last beacon each node sent, for the delta-compression flag.
  struct BeaconEcho {
    geo::Vec2 position;
    double gaussian_abs = 0.0;
    std::size_t slot = 0;
    bool valid = false;
  };

  const field::TimeVaryingField* environment_;
  num::Rect region_;
  CmaConfig config_;
  std::vector<geo::Vec2> positions_;
  net::MessageBus<Message> bus_;
  double time_ = 0.0;
  std::size_t steps_run_ = 0;
  double last_max_move_ = 0.0;
  std::size_t last_chases_ = 0;
  std::vector<ForceBreakdown> last_forces_;
  std::vector<TimedSample> trace_log_;
  std::vector<double> distance_traveled_;
  double total_distance_ = 0.0;
  net::FaultSchedule faults_;
  std::vector<char> alive_;
  std::size_t alive_count_ = 0;
  std::size_t deaths_applied_ = 0;
  std::vector<std::vector<KnownNeighbor>> known_;
  /// Tile decomposition; non-null iff config.sharding == kTiles.
  std::unique_ptr<ShardGrid> shard_;
  std::vector<BeaconEcho> prev_beacon_;
  /// Per-receiver link-layer decompression cache: (sender, slot its last
  /// beacon arrived in).  Accounting only (see Message::delta); pruned of
  /// stale entries as beacons fold in.
  std::vector<std::vector<std::pair<net::NodeId, std::size_t>>>
      beacon_cache_;
};

}  // namespace cps::core
