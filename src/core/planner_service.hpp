// Planner-as-a-service: a long-lived, concurrent deployment-query engine.
//
// The ROADMAP's north star is a production system answering heavy what-if
// traffic — "where does δ go if node 17 moves here?" — not a one-shot
// batch binary.  PlannerService is that front-end: callers submit Score /
// Plan / WhatIf jobs and get futures; a dispatcher thread drains the
// queue in batches and executes each batch as one parallel region on the
// process-wide par::ThreadPool (one job per chunk, a job's own nested
// parallel loops run inline on its worker).
//
// Determinism contract (DESIGN.md §15): every job result is bit-identical
// to the equivalent direct call — Planner::plan for Plan jobs,
// DeltaMetric::delta_of_deployment for Score jobs, and a fresh
// DeltaMetric::delta of the identically mutated triangulation for WhatIf
// jobs — at the same pool size.  This falls out of the pool's nesting
// rule: a nested region inside a running chunk executes the same fixed
// chunk layout inline with partials combined in ascending order, which is
// exactly what the direct top-level call does.  Shared state never feeds
// back into results: field snapshots are immutable, the sharded reference
// cache memoizes bit-identical buffers, and each WhatIf job mutates a
// private copy of the cached base triangulation.  Two rules bound the
// contract: do not resize the pool while a service instance is alive (a
// cached base state's IncrementalDelta captured the chunk layout at
// build), and do not run concurrent batches with the telemetry timeline
// armed (per-interval counter attribution across concurrent jobs is
// meaningless; the service's own metrics are timeline-safe — see
// obs notes below).
//
// obs wiring (all under the service.* namespace): service.jobs.*
// counters are deterministic totals; service.queue.depth is a gauge
// marked timeline-excluded (queue occupancy is timing-dependent); the
// per-job-type duration histograms service.job.{score,plan,whatif}_us go
// through Registry::duration_histogram, which timeline-excludes them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <string>

#include "core/field_snapshot.hpp"
#include "core/planner.hpp"
#include "core/reconstruction.hpp"
#include "core/types.hpp"
#include "geometry/vec2.hpp"
#include "numerics/quadrature.hpp"

namespace cps::core {

/// Which planning engine a PlanJob runs.
enum class PlannerKind { kFra, kRandom, kGrid, kFarthestPoint };

/// Score an existing deployment: δ of the surface its samples rebuild.
struct ScoreJob {
  FieldSnapshotPtr field;
  Deployment deployment;
  num::Rect region{0.0, 0.0, 100.0, 100.0};
  std::size_t resolution = 100;  ///< δ lattice density per axis.
  CornerPolicy policy = CornerPolicy::kFieldValue;
};

/// Plan a deployment.  The unified PlanRequest carries everything that
/// varies per job (region, k, rc, lattice, seed), so one job type serves
/// every engine; stochastic/lattice planners read request.seed /
/// request.lattice with their built-in defaults as fallback.
struct PlanJob {
  FieldSnapshotPtr field;
  PlannerKind planner = PlannerKind::kFra;
  PlanRequest request;
  /// When nonzero the planned deployment is also scored (δ at this
  /// resolution over request.region) into JobResult::delta.
  std::size_t score_resolution = 0;
  CornerPolicy policy = CornerPolicy::kFieldValue;
};

/// Incremental what-if: δ after one mutation of a base deployment,
/// scored via a cavity-local IncrementalDelta over a cached base state.
/// Jobs sharing the same (field, base, region, resolution, policy) share
/// one base triangulation + tracker, built once; each job copies it and
/// applies its own mutation, so the cost per query is O(changed area).
///
/// Corner semantics: the base surface's corners are valued at base-build
/// time and are NOT re-derived after the mutation.  Under kFieldValue
/// (the default) that is exact; under kNearestSample a mutation that
/// changes a corner's nearest sample would not be reflected — prefer
/// kFieldValue for what-if traffic.
struct WhatIfJob {
  enum class Op { kMove, kInsert, kRemove };

  FieldSnapshotPtr field;
  /// Base deployment, shared across the jobs that probe it.
  std::shared_ptr<const Deployment> base;
  Op op = Op::kMove;
  std::size_t node = 0;     ///< Index into base->positions (kMove/kRemove).
  geo::Vec2 to{0.0, 0.0};   ///< Destination (kMove/kInsert).
  num::Rect region{0.0, 0.0, 100.0, 100.0};
  std::size_t resolution = 100;
  CornerPolicy policy = CornerPolicy::kFieldValue;
};

/// What a job's future resolves to.  A job that threw reports ok = false
/// with the exception message instead of tearing down the batch.
struct JobResult {
  bool ok = true;
  std::string error;
  /// δ for Score/WhatIf jobs (and Plan jobs with score_resolution set).
  double delta = 0.0;
  /// The planned deployment (Plan jobs only).
  Deployment deployment;
  /// Submit-to-completion wall time (includes queue wait).
  double latency_ms = 0.0;
  /// Execution-only wall time.
  double exec_ms = 0.0;
};

/// The service.  Thread-safe: submit from any number of threads.
class PlannerService {
 public:
  struct Config {
    /// Jobs drained per dispatch round; each round is one parallel
    /// region over its jobs.
    std::size_t max_batch = 64;
    /// Reference-cache shards on the service's shared DeltaMetrics
    /// (DeltaMetric::set_reference_cache_shards).
    std::size_t cache_shards = 8;
    /// Cached WhatIf base states kept (FIFO eviction).
    std::size_t base_state_capacity = 8;
  };

  /// Lifetime totals (plain counts, independent of the obs build flags —
  /// tests assert sharing behaviour through these).
  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t errors = 0;
    std::uint64_t score_jobs = 0;
    std::uint64_t plan_jobs = 0;
    std::uint64_t whatif_jobs = 0;
    std::uint64_t snapshot_hits = 0;
    std::uint64_t snapshot_misses = 0;
    std::uint64_t base_state_hits = 0;
    std::uint64_t base_state_misses = 0;
    std::uint64_t batches = 0;
    std::uint64_t max_batch_size = 0;
  };

  PlannerService();
  explicit PlannerService(Config config);
  /// Drains every submitted job, then joins the dispatcher.
  ~PlannerService();
  PlannerService(const PlannerService&) = delete;
  PlannerService& operator=(const PlannerService&) = delete;

  /// Wraps (or reuses) an immutable snapshot of `field`, interned by
  /// content key: interning the same content twice returns the same
  /// snapshot, so its reference lattice is shared across all jobs.
  FieldSnapshotPtr intern(std::shared_ptr<const field::Field> field);

  std::future<JobResult> submit(ScoreJob job);
  std::future<JobResult> submit(PlanJob job);
  std::future<JobResult> submit(WhatIfJob job);

  /// Pins `field`'s sampled reference lattice for (region, resolution)
  /// into the service's shared metric cache — per-snapshot pinning.
  /// Optional: a cold query fills the cache itself; prewarming makes
  /// every subsequent concurrent lookup a deterministic hit (the bench's
  /// counter gate relies on this).
  void prewarm(const FieldSnapshotPtr& field, const num::Rect& region,
               std::size_t resolution);

  /// Blocks until every job submitted so far has completed.
  void wait_idle();

  /// Queued-but-not-yet-dispatched jobs right now.
  std::size_t queue_depth() const;

  Stats stats() const;

  const Config& config() const noexcept { return config_; }

 private:
  struct Impl;

  Config config_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace cps::core
