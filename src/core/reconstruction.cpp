#include "core/reconstruction.hpp"

#include <limits>
#include <stdexcept>

namespace cps::core {

geo::Delaunay reconstruct_surface(std::span<const Sample> samples,
                                  const num::Rect& region,
                                  CornerPolicy policy,
                                  const field::Field* reference) {
  if (policy == CornerPolicy::kFieldValue && reference == nullptr) {
    throw std::invalid_argument(
        "reconstruct_surface: kFieldValue needs a reference field");
  }
  geo::Delaunay dt(region);
  for (const auto& s : samples) dt.insert(s.position, s.z);

  for (int corner = 0; corner < geo::Delaunay::kCorners; ++corner) {
    const geo::Vec2 cp = dt.vertex(corner).pos;
    if (policy == CornerPolicy::kFieldValue) {
      dt.set_vertex_z(corner, reference->value(cp));
      continue;
    }
    double best = std::numeric_limits<double>::infinity();
    double z = 0.0;
    for (const auto& s : samples) {
      const double d2 = geo::distance_sq(cp, s.position);
      // <= so ties resolve to the latest sample, matching the insert
      // semantics where a re-sampled position carries its newest value.
      if (d2 <= best) {
        best = d2;
        z = s.z;
      }
    }
    dt.set_vertex_z(corner, z);
  }
  return dt;
}

std::vector<Sample> take_samples(const field::Field& f,
                                 std::span<const geo::Vec2> positions) {
  std::vector<Sample> out;
  out.reserve(positions.size());
  for (const auto& p : positions) out.push_back(Sample{p, f.value(p)});
  return out;
}

}  // namespace cps::core
