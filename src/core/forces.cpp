#include "core/forces.hpp"

#include <algorithm>
#include <cmath>

namespace cps::core {

geo::Vec2 peak_attraction(geo::Vec2 node, const PeakInfo& peak,
                          double weight_scale) noexcept {
  return (peak.position - node) * (peak.gaussian_abs * weight_scale);
}

geo::Vec2 neighbor_attraction(geo::Vec2 node,
                              std::span<const NeighborInfo> neighbors,
                              double weight_scale) noexcept {
  geo::Vec2 f;
  for (const auto& n : neighbors) {
    f += (n.position - node) * (n.gaussian_abs * weight_scale);
  }
  return f;
}

geo::Vec2 repulsion(geo::Vec2 node, std::span<const NeighborInfo> neighbors,
                    double rc) noexcept {
  geo::Vec2 f;
  for (const auto& n : neighbors) {
    const geo::Vec2 away = node - n.position;
    const double d = away.norm();
    if (d >= rc) continue;  // Not single-hop; no repulsion.
    if (d <= 0.0) {
      // Coincident nodes: deterministic tiny push along +x so the pair
      // separates instead of dividing by zero.
      f += geo::Vec2{rc, 0.0};
      continue;
    }
    f += away.normalized() * (rc - d);
  }
  return f;
}

ForceBreakdown compute_forces(geo::Vec2 node,
                              const std::optional<PeakInfo>& peak,
                              std::span<const NeighborInfo> neighbors,
                              double local_mean_abs_gaussian,
                              const ForceConfig& config) noexcept {
  double scale = 1.0;
  if (config.normalize_curvature) {
    // Pool the node's own curvature scale with what neighbours report so
    // that adjacent nodes normalise consistently.
    double sum = local_mean_abs_gaussian;
    std::size_t count = 1;
    for (const auto& n : neighbors) {
      sum += n.gaussian_abs;
      ++count;
    }
    if (peak) {
      sum += peak->gaussian_abs;
      ++count;
    }
    const double mean = sum / static_cast<double>(count);
    scale = 1.0 / std::max(mean, config.normalizer_floor);
    // A completely flat neighbourhood (mean below floor) produces a huge
    // scale times ~zero weights; cap the product by clamping scale.
    scale = std::min(scale, 1.0 / config.normalizer_floor);
  }

  ForceBreakdown out;
  const double gain = config.attraction_gain * scale;
  if (peak) out.f1 = peak_attraction(node, *peak, gain);
  out.f2 = neighbor_attraction(node, neighbors, gain);
  out.fr = repulsion(node, neighbors,
                     config.rc * config.repulsion_equilibrium);
  out.fs = out.f1 + out.f2 + out.fr * config.beta;
  return out;
}

}  // namespace cps::core
