// Per-slot δ trajectory for CMA through the cavity-local incremental
// engine (core/delta_incremental.hpp).
//
// CmaSimulation::current_delta rebuilds a triangulation from scratch and
// runs a full O(res²) lattice sweep every slot.  CmaDeltaTracker instead
// keeps ONE persistent triangulation mirroring the living deployment and
// folds each slot's churn into it as Delaunay events — moved nodes become
// move_vertex reports, deaths become removals, revivals insertions, and
// the sensor refresh one batched star z-update — each consumed by an
// IncrementalDelta in O(changed area).  The reference slice advancing is
// a retarget (fold-only O(res²) pass, no point location); under a
// time-varying environment that pass is irreducible (the whole reference
// moved), so the asymptotic win is in the geometry work, and under a
// slow/static environment slots cost only their churn.
//
// Equivalence contract: after every update(), value() is bit-identical to
// metric.delta(FieldSlice(env, sim.time()), triangulation()) — the
// incremental oracle protocol over the tracker's own triangulation.  It
// is NOT bit-identical to sim.current_delta(metric): that path
// re-triangulates from scratch each slot, and cocircular degeneracies
// resolve by insertion history, so the two surfaces may differ on
// measure-zero ties (the fig10 --incremental flag is opt-in for exactly
// this reason; the sweep bench reports both).
//
// Node/vertex aliasing: several nodes can sense from one position (chase
// pile-ups) and a mover can land on an occupied site, so vertices are
// reference-counted; a vertex is removed only when its last node leaves.
// Corner scaffolding ids are never removed — corner z follows
// reconstruct_surface's nearest-sample rule (ties to the highest node
// index, matching latest-insertion-wins) and changes flow through star
// z-events.
#pragma once

#include <cstddef>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/cma.hpp"
#include "core/delta.hpp"
#include "core/delta_incremental.hpp"
#include "geometry/delaunay.hpp"

namespace cps::core {

/// Incremental per-slot δ tracker over a CmaSimulation.  Not thread-safe;
/// call update() exactly once after each sim.step(), from one thread.
class CmaDeltaTracker {
 public:
  struct Stats {
    std::size_t slots = 0;
    std::size_t node_moves = 0;     ///< move_vertex events applied.
    std::size_t node_deaths = 0;    ///< Vertices released by deaths.
    std::size_t node_revivals = 0;  ///< Vertices (re-)inserted by revivals.
    std::size_t merges = 0;         ///< Nodes aliased onto an occupied vertex.
  };

  /// Seeds the tracker from the simulation's current state (one full
  /// sweep).  The metric is retained by reference and must outlive the
  /// tracker; its region should equal the simulation's.
  CmaDeltaTracker(const CmaSimulation& sim, const DeltaMetric& metric);

  /// Folds the slot's churn in: retargets to the current time slice,
  /// applies node moves/deaths/revivals as Delaunay events, refreshes
  /// sensed z values (one batched star event) and the corner scaffolding,
  /// and returns the slot's tracked δ.
  double update(const CmaSimulation& sim);

  /// The running δ of the tracked deployment against the last update's
  /// (or construction's) reference slice.
  double value() const noexcept { return delta_->value(); }

  const geo::Delaunay& triangulation() const noexcept { return dt_; }
  const Stats& stats() const noexcept { return stats_; }
  const IncrementalDelta::Stats& delta_stats() const noexcept {
    return delta_->stats();
  }

 private:
  /// Sensed value of a living node's position at the tracked slice time.
  double sense(const CmaSimulation& sim, geo::Vec2 p) const;
  /// Takes one reference on `vid` for `node`.
  void acquire(std::size_t node, int vid);
  /// Drops `node`'s reference; removes the vertex when it was the last
  /// holder (never for corner scaffolding).  Feeds the removal into the
  /// δ engine.
  void release(std::size_t node);
  /// Re-applies the nearest-sample corner rule; emits star z-events for
  /// corners whose value moved.
  void refresh_corners(const CmaSimulation& sim);

  const DeltaMetric* metric_;
  geo::Delaunay dt_;
  std::unique_ptr<IncrementalDelta> delta_;
  double slice_time_ = 0.0;
  std::vector<int> node_vid_;           ///< Node -> vertex id (-1 = dead).
  std::vector<geo::Vec2> node_pos_;     ///< Position backing node_vid_.
  std::unordered_map<int, int> vid_refs_;
  Stats stats_;
};

}  // namespace cps::core
