#include "core/delta_incremental.hpp"

#include <algorithm>
#include <cmath>
#include <span>
#include <stdexcept>

#include "core/delta_detail.hpp"
#include "obs/obs.hpp"
#include "parallel/thread_pool.hpp"

namespace cps::core {

IncrementalDelta::IncrementalDelta(const DeltaMetric& metric,
                                   const field::Field& reference,
                                   const geo::Delaunay& dt)
    : region_(metric.region()),
      res_(metric.resolution()),
      lat_(metric.region(), metric.resolution(), metric.resolution()),
      ref_rows_(metric.reference_lattice(reference)) {
  stats_.full_sweep_points = res_ * res_;
  rebuild(dt);
}

bool IncrementalDelta::chunk_first(std::size_t k) const noexcept {
  return k % (chunk_rows_ * res_) == 0;
}

std::size_t IncrementalDelta::chunk_of(std::size_t k) const noexcept {
  return k / (chunk_rows_ * res_);
}

void IncrementalDelta::refold_chunk(std::size_t c) {
  const std::size_t begin = c * chunk_rows_ * res_;
  const std::size_t end =
      std::min(begin + chunk_rows_ * res_, res_ * res_);
  // Serial point-order fold of |ref - DT|: the rounding sequence is the
  // bit-identity contract (per-point deltas do not recompose under
  // re-association), and std::abs of the stored phase-2 value is exact,
  // so folding from interp_ reproduces the raster's diff sum bitwise.
  const double* ref = ref_rows_->data();
  double s = 0.0;
  for (std::size_t k = begin; k < end; ++k) {
    s += std::abs(ref[k] - interp_[k]);
  }
  chunk_sums_[c] = s;
}

void IncrementalDelta::rebuild(const geo::Delaunay& dt) {
  // Capture the reduce_rows chunk layout: grain-4 row chunks whenever the
  // armed timeline pins the layout or the pool would split the sweep, the
  // single serial chain otherwise (core/delta.cpp's reduce_rows).
  chunked_ = obs::timeline().armed() || par::thread_count() > 1;
  chunk_rows_ = chunked_ ? 4 : res_;
  const std::size_t n = res_ * res_;
  const std::size_t chunks = (res_ + chunk_rows_ - 1) / chunk_rows_;
  assign_.assign(n, -1);
  strict_.assign(n, 0);
  interp_.assign(n, 0.0);
  chunk_sums_.assign(chunks, 0.0);
  fallback_.clear();
  point_epoch_.assign(n, 0);
  row_epoch_.assign(res_, 0);
  chunk_epoch_.assign(chunks, 0);
  epoch_ = 0;
  dirty_points_.clear();

  // Full sweep, replaying delta_raster exactly: span emission, per-row
  // (ilo, tri) span order, strict fast assignment, hint-chained fallback
  // walks, phase-2 interpolation — but recording per-point state instead
  // of folding it away.
  const auto res = static_cast<long>(res_);
  const std::vector<int> alive = dt.alive_triangles();
  detail::TriangleSoA soa;
  soa.build(dt, alive);
  std::vector<std::vector<detail::RowSpan>> row_spans(res_);
  for (std::size_t slot = 0; slot < alive.size(); ++slot) {
    const int tid = alive[slot];
    detail::for_each_covered_range(
        soa.a(static_cast<std::uint32_t>(slot)),
        soa.b(static_cast<std::uint32_t>(slot)),
        soa.c(static_cast<std::uint32_t>(slot)), region_, lat_, res,
        [&](long j, long ilo, long ihi) {
          row_spans[static_cast<std::size_t>(j)].push_back(
              detail::RowSpan{tid, static_cast<std::uint32_t>(slot),
                              static_cast<int>(ilo), static_cast<int>(ihi)});
        });
  }
  for (auto& spans : row_spans) {
    std::sort(spans.begin(), spans.end(),
              [](const detail::RowSpan& l, const detail::RowSpan& r) {
                return l.ilo != r.ilo ? l.ilo < r.ilo : l.tri < r.tri;
              });
  }

  const std::span<const double> xs = lat_.xs();
  std::vector<detail::RowSpan> active;
  for (std::size_t row_begin = 0; row_begin < res_;
       row_begin += chunk_rows_) {
    const std::size_t row_end = std::min(row_begin + chunk_rows_, res_);
    int hint = -1;
    for (std::size_t j = row_begin; j < row_end; ++j) {
      const double y = lat_.y(j);
      const auto& spans = row_spans[j];
      std::size_t next = 0;
      active.clear();
      for (std::size_t i = 0; i < res_; ++i) {
        const std::size_t k = j * res_ + i;
        const int col = static_cast<int>(i);
        while (next < spans.size() && spans[next].ilo <= col) {
          active.push_back(spans[next++]);
        }
        const geo::Vec2 p{xs[i], y};
        int assigned = -1;
        std::uint32_t slot = 0;
        for (std::size_t w = 0; w < active.size();) {
          if (active[w].ihi < col) {
            active[w] = active.back();
            active.pop_back();
            continue;
          }
          if (detail::strictly_inside(soa, active[w].slot, p)) {
            assigned = active[w].tri;
            slot = active[w].slot;
            break;
          }
          ++w;
        }
        if (assigned < 0) {
          assigned = dt.locate_from(p, hint);
          slot = soa.slot_of[static_cast<std::size_t>(assigned)];
          strict_[k] = 0;
          fallback_.push_back(static_cast<std::uint32_t>(k));
        } else {
          strict_[k] = 1;
        }
        hint = assigned;
        assign_[k] = assigned;
        interp_[k] = detail::interpolate_point(
            soa.ax[slot], soa.ay[slot], soa.bx[slot], soa.by[slot],
            soa.cx[slot], soa.cy[slot], soa.za[slot], soa.zb[slot],
            soa.zc[slot], soa.total[slot], p.x, y);
      }
    }
    refold_chunk(row_begin / chunk_rows_);
  }
  ++stats_.rebuilds;
  CPS_COUNT("core.delta.inc_rebuilds", 1);
}

void IncrementalDelta::rebase(const geo::Delaunay& dt) { rebuild(dt); }

void IncrementalDelta::apply_z_updates(const geo::Delaunay& dt,
                                       const std::vector<int>& star_triangles) {
  ++stats_.events;
  CPS_COUNT("core.delta.inc_events", 1);
  ++epoch_;
  dirty_points_.clear();
  const std::size_t rows = mark_dirty(dt, star_triangles);
  stats_.rows_touched += rows;
  CPS_COUNT("core.delta.inc_rows", rows);
  process_dirty(dt, /*reassign=*/false);
}

void IncrementalDelta::retarget(const DeltaMetric& metric,
                                const field::Field& reference) {
  if (metric.resolution() != res_ || metric.region().x0 != region_.x0 ||
      metric.region().y0 != region_.y0 || metric.region().x1 != region_.x1 ||
      metric.region().y1 != region_.y1) {
    throw std::invalid_argument(
        "IncrementalDelta::retarget: metric lattice mismatch");
  }
  ref_rows_ = metric.reference_lattice(reference);
  const std::size_t chunks = (res_ + chunk_rows_ - 1) / chunk_rows_;
  for (std::size_t c = 0; c < chunks; ++c) refold_chunk(c);
  ++stats_.retargets;
  CPS_COUNT("core.delta.inc_retargets", 1);
}

std::size_t IncrementalDelta::mark_dirty(const geo::Delaunay& dt,
                                         const std::vector<int>& tris) {
  const auto res = static_cast<long>(res_);
  std::size_t rows = 0;
  for (const int tid : tris) {
    if (!dt.triangle_alive(tid)) continue;
    const auto& t = dt.triangle(tid);
    detail::for_each_covered_range(
        dt.vertex(t.v[0]).pos, dt.vertex(t.v[1]).pos, dt.vertex(t.v[2]).pos,
        region_, lat_, res, [&](long j, long ilo, long ihi) {
          const auto row = static_cast<std::size_t>(j);
          if (row_epoch_[row] != epoch_) {
            row_epoch_[row] = epoch_;
            ++rows;
          }
          const std::size_t base = row * res_;
          for (long i = ilo; i <= ihi; ++i) {
            const std::size_t k = base + static_cast<std::size_t>(i);
            if (point_epoch_[k] != epoch_) {
              point_epoch_[k] = epoch_;
              dirty_points_.push_back(static_cast<std::uint32_t>(k));
            }
          }
        });
  }
  return rows;
}

void IncrementalDelta::process_dirty(const geo::Delaunay& dt,
                                     bool reassign) {
  if (reassign) {
    // Non-strict points sit on edges/vertices, where assignment is
    // hint-dependent: any upstream change can shift the hint they would
    // be walked with, so they are re-walked on every topology event.
    for (const std::uint32_t k : fallback_) {
      if (point_epoch_[k] != epoch_) {
        point_epoch_[k] = epoch_;
        dirty_points_.push_back(k);
      }
    }
  }
  // Ascending order: a relocation at k reads assign_[k - 1], which must
  // already hold its final (this-event) value to replay the fresh sweep's
  // hint chain.
  std::sort(dirty_points_.begin(), dirty_points_.end());

  const std::span<const double> xs = lat_.xs();
  std::vector<std::uint32_t> dirty_chunks;
  for (const std::uint32_t k : dirty_points_) {
    const std::size_t j = k / res_;
    const std::size_t i = k % res_;
    const geo::Vec2 p{xs[i], lat_.y(j)};
    if (reassign) {
      const int old_tid = assign_[k];
      // A strict assignment is kept only while its triangle is alive and
      // still strictly contains the point.  Strict containment is unique,
      // so this is exactly the triangle a fresh span sweep would fast-
      // assign — even when the slot was recycled into new geometry.
      const bool keep = strict_[k] != 0 && dt.triangle_alive(old_tid) &&
                        detail::strictly_inside(dt, old_tid, p);
      if (keep) {
        ++stats_.keeps;
        CPS_COUNT("core.delta.inc_keep_assigns", 1);
      } else {
        const int hint = chunk_first(k) ? -1 : assign_[k - 1];
        const int tid = dt.locate_from(p, hint);
        assign_[k] = tid;
        strict_[k] = detail::strictly_inside(dt, tid, p) ? 1 : 0;
        ++stats_.relocates;
        CPS_COUNT("core.delta.inc_relocates", 1);
      }
    }
    interp_[k] = detail::interpolate_point(dt, assign_[k], p);
    const auto c = static_cast<std::uint32_t>(chunk_of(k));
    if (chunk_epoch_[c] != epoch_) {
      chunk_epoch_[c] = epoch_;
      dirty_chunks.push_back(c);
    }
  }
  if (reassign) {
    // Every previously non-strict point is in the dirty set, so the new
    // fallback list is exactly the dirty points that ended non-strict
    // (already in ascending order).
    fallback_.clear();
    for (const std::uint32_t k : dirty_points_) {
      if (strict_[k] == 0) fallback_.push_back(k);
    }
  }
  for (const std::uint32_t c : dirty_chunks) refold_chunk(c);
  stats_.points_reevaluated += dirty_points_.size();
  CPS_COUNT("core.delta.inc_points", dirty_points_.size());
}

void IncrementalDelta::apply(const geo::Delaunay& dt,
                             const geo::InsertResult& r) {
  ++stats_.events;
  CPS_COUNT("core.delta.inc_events", 1);
  ++epoch_;
  dirty_points_.clear();
  if (r.inserted) {
    // The created fan covers the cavity (and therefore every removed
    // triangle's region): marking it catches every point whose surface
    // value or assignment the insertion could have moved.
    const std::size_t rows = mark_dirty(dt, r.created_triangles);
    stats_.rows_touched += rows;
    CPS_COUNT("core.delta.inc_rows", rows);
    process_dirty(dt, /*reassign=*/true);
  } else if (r.z_changed) {
    // Duplicate-tolerance hit: topology untouched, surface moved over the
    // star.  Assignments and hint chains are already what a fresh sweep
    // produces; only the covered contributions need re-interpolating.
    const std::size_t rows = mark_dirty(dt, r.star_triangles);
    stats_.rows_touched += rows;
    CPS_COUNT("core.delta.inc_rows", rows);
    process_dirty(dt, /*reassign=*/false);
  }
}

void IncrementalDelta::apply(const geo::Delaunay& dt,
                             const geo::RemoveResult& r) {
  ++stats_.events;
  CPS_COUNT("core.delta.inc_events", 1);
  ++epoch_;
  dirty_points_.clear();
  const std::size_t rows = mark_dirty(dt, r.created_triangles);
  stats_.rows_touched += rows;
  CPS_COUNT("core.delta.inc_rows", rows);
  process_dirty(dt, /*reassign=*/true);
}

void IncrementalDelta::apply(const geo::Delaunay& dt,
                             const geo::MoveResult& r) {
  ++stats_.events;
  CPS_COUNT("core.delta.inc_events", 1);
  ++epoch_;
  dirty_points_.clear();
  const std::size_t rows = mark_dirty(dt, r.changed_triangles);
  stats_.rows_touched += rows;
  CPS_COUNT("core.delta.inc_rows", rows);
  process_dirty(dt, /*reassign=*/true);
}

double IncrementalDelta::value() const noexcept {
  // Ascending chunk fold from 0.0, then the cell area — exactly
  // DeltaMetric::delta()'s reduce-and-scale arithmetic.
  double acc = 0.0;
  for (const double s : chunk_sums_) acc += s;
  return acc * lat_.hx() * lat_.hy();
}

}  // namespace cps::core
