// Curvature-Weighted Distribution reference solver (Section 5.1, Fig. 3).
//
// Fig. 3 contrasts 16 uniformly placed nodes with 16 nodes in the
// curvature-weighted pattern on the Matlab peaks surface: every node is a
// pivot balancing its single-hop neighbours' curvature weights (Eqn. 9)
// while repulsion keeps the topology spread to the region borders, and the
// selected equilibrium maximises the total curvature captured (Eqn. 10).
//
// CwdSolver computes that pattern centrally — same force model as CMA but
// with a static, fully known field, no radio, and no speed cap — by
// relaxing from the uniform grid until the forces balance.  It is both the
// Fig. 3 generator and the "what CMA converges to with perfect
// information" reference the Fig. 10 analysis leans on.
#pragma once

#include <cstddef>

#include "core/planner.hpp"
#include "core/types.hpp"
#include "field/field.hpp"
#include "numerics/quadrature.hpp"

namespace cps::core {

/// Relaxation parameters (defaults match the Fig. 3 setting, Rc = 30).
struct CwdConfig {
  double rc = 30.0;             ///< Communication radius.
  double rs = 10.0;             ///< Curvature sensing window.
  double sample_spacing = 1.0;  ///< Sensing lattice pitch.
  double beta = 2.0;            ///< Repulsion weight (Eqn. 18).
  double force_gain = 1.0;      ///< Metres per force unit.
  double step_limit = 2.0;      ///< Max movement per iteration, metres.
  /// Per-iteration decay of the step limit (simulated annealing): the
  /// undamped force system orbits its equilibrium; shrinking steps settle
  /// it.  1.0 disables damping.
  double step_decay = 0.98;
  std::size_t max_iterations = 400;
  double tolerance = 1e-2;      ///< Converged when max move is below this.
  bool normalize_curvature = true;
  double attraction_gain = 0.25;  ///< See ForceConfig::attraction_gain.
  /// See ForceConfig::repulsion_equilibrium.
  double repulsion_equilibrium = 0.9;
};

/// Outcome of a relaxation.
struct CwdResult {
  Deployment deployment;
  std::size_t iterations = 0;
  bool converged = false;
};

/// The centralised solver.  Stateless between calls.
class CwdSolver {
 public:
  explicit CwdSolver(const CwdConfig& config = {});

  /// Relaxes k nodes (from the uniform grid) on `reference` over `region`.
  /// Throws std::invalid_argument for k == 0.
  CwdResult solve(const field::Field& reference, const num::Rect& region,
                  std::size_t k) const;

  /// Relaxes from caller-provided initial positions.
  CwdResult solve_from(const field::Field& reference, const num::Rect& region,
                       std::vector<geo::Vec2> initial) const;

  const CwdConfig& config() const noexcept { return config_; }

 private:
  CwdConfig config_;
};

}  // namespace cps::core
