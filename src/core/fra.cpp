#include "core/fra.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>

#include "core/curvature.hpp"
#include "geometry/delaunay.hpp"
#include "graph/relay.hpp"
#include "graph/union_find.hpp"
#include "numerics/rng.hpp"
#include "obs/obs.hpp"
#include "parallel/spatial_hash.hpp"
#include "parallel/thread_pool.hpp"

namespace cps::core {
namespace {

/// One lattice position competing for selection.
struct Candidate {
  geo::Vec2 pos;
  double f_value = 0.0;     // Referential surface value (sensed once).
  double curvature = 0.0;   // |G| (filled only for curvature measures).
  int triangle = -1;        // Containing triangle in the evolving DT.
  double error = 0.0;       // Local error |f - DT| at pos.
  bool used = false;        // Already selected (or coincides with a vertex).
};

/// One lazy-deletion heap entry: the candidate's score at push time.  An
/// entry is stale — and discarded at pop — once the candidate is used or
/// its live score no longer equals the recorded one (every rebucket that
/// changes a score pushes a fresh entry, so each unused candidate always
/// owns at least one live entry).
struct HeapEntry {
  double score = 0.0;
  std::uint32_t index = 0;
};

/// Max-heap order: higher score wins; equal scores pop the *lowest*
/// index first, matching the serial scan's first-maximum tie-break.
struct HeapOrder {
  bool operator()(const HeapEntry& a, const HeapEntry& b) const noexcept {
    if (a.score != b.score) return a.score < b.score;
    return a.index > b.index;
  }
};

using SelectionHeap =
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapOrder>;

double interpolate_in(const geo::Delaunay& dt, int tri, geo::Vec2 p) {
  const auto& t = dt.triangle(tri);
  return geo::interpolate_linear(dt.triangle_geometry(tri),
                                 dt.vertex(t.v[0]).z, dt.vertex(t.v[1]).z,
                                 dt.vertex(t.v[2]).z, p);
}

/// Grid-accelerated maintenance of "distance from each candidate to the
/// nearest already-placed node".  A per-cell maximum of the maintained
/// distances lets note_added() skip every cell the new node cannot
/// improve: min-possible |candidate - p| >= max distance in the cell
/// implies no member's minimum can drop.  Values are the exact same
/// std::min-folded doubles the dense O(n) refresh produced.
class NearestNetGrid {
 public:
  NearestNetGrid(std::span<const geo::Vec2> points, double cell_size)
      : hash_(points, cell_size),
        cell_max_(std::max<std::size_t>(hash_.cell_count(), 1),
                  std::numeric_limits<double>::infinity()) {}

  void note_added(geo::Vec2 p, std::span<const geo::Vec2> points,
                  std::vector<double>& dist) {
    std::size_t scanned = 0;
    for (std::size_t c = 0; c < hash_.cell_count(); ++c) {
      double& cell_max = cell_max_[c];
      // inf * inf == inf keeps never-touched cells scannable.
      if (hash_.cell_distance_sq(p, c) >= cell_max * cell_max) continue;
      double new_max = 0.0;
      for (const std::uint32_t id : hash_.cell_members(c)) {
        double& d = dist[id];
        d = std::min(d, geo::distance(points[id], p));
        new_max = std::max(new_max, d);
        ++scanned;
      }
      cell_max = new_max;
    }
    CPS_COUNT("core.fra.dist_refresh_scanned", scanned);
  }

 private:
  par::SpatialHash hash_;
  std::vector<double> cell_max_;
};

}  // namespace

FraPlanner::FraPlanner(const FraConfig& config) : config_(config) {
  if (config.error_grid < 2) {
    throw std::invalid_argument("FraPlanner: error_grid < 2");
  }
  if (config.curvature_radius <= 0.0) {
    throw std::invalid_argument("FraPlanner: curvature_radius <= 0");
  }
}

Deployment FraPlanner::plan(const field::Field& reference,
                            const PlanRequest& request) {
  return plan_detailed(reference, request).deployment;
}

FraResult FraPlanner::plan_detailed(const field::Field& reference,
                                    const PlanRequest& request) {
  if (request.rc <= 0.0) throw std::invalid_argument("FRA: rc <= 0");
  FraResult result;
  if (request.k == 0) return result;

  CPS_TIMER("core.fra.plan_total");
  const num::Rect& region = request.region;
  geo::Delaunay dt(region);
  for (int c = 0; c < geo::Delaunay::kCorners; ++c) {
    dt.set_vertex_z(c, reference.value(dt.vertex(c).pos));
  }

  // Candidate lattice (the paper's sqrt(A) x sqrt(A) positions), bucketed
  // by containing triangle.
  const std::size_t n = config_.error_grid;
  std::vector<Candidate> candidates(n * n);
  const double dx = region.width() / static_cast<double>(n - 1);
  const double dy = region.height() / static_cast<double>(n - 1);
  std::vector<double> lattice_xs(n);
  for (std::size_t i = 0; i < n; ++i) {
    lattice_xs[i] = region.x0 + static_cast<double>(i) * dx;
  }
  {
    CPS_TIMER("core.fra.sense_lattice");
    // Field implementations are const-thread-safe by contract (see
    // field/field.hpp), so the lattice sense is a parallel map over whole
    // rows, each sensed by one batched value_row call (bit-identical to
    // the per-point map by the batch contract).
    par::parallel_for_chunks(
        n,
        [&](std::size_t row_begin, std::size_t row_end) {
          std::vector<double> row(n);
          for (std::size_t j = row_begin; j < row_end; ++j) {
            const double y = region.y0 + static_cast<double>(j) * dy;
            reference.value_row(y, lattice_xs, row.data());
            CPS_COUNT("core.fra.batch_rows", 1);
            for (std::size_t i = 0; i < n; ++i) {
              Candidate& c = candidates[j * n + i];
              c.pos = {lattice_xs[i], y};
              c.f_value = row[i];
            }
          }
        },
        /*grain=*/1);
  }

  if (config_.measure == SelectionMeasure::kCurvature ||
      config_.measure == SelectionMeasure::kProduct) {
    CPS_TIMER("core.fra.curvature_pass");
    const CurvatureEstimator estimator(config_.curvature_radius);
    par::parallel_for(
        candidates.size(),
        [&](std::size_t ci) {
          candidates[ci].curvature =
              std::abs(estimator.gaussian_at(reference, candidates[ci].pos));
        },
        /*grain=*/64);  // A quadric fit per index: keep chunks small.
  }

  // Triangle -> candidate-index buckets; sized generously since each
  // insertion adds a bounded number of triangle slots.
  std::vector<std::vector<std::size_t>> buckets(dt.triangle_slots() +
                                                6 * request.k + 16);
  {
    CPS_TIMER("core.fra.initial_bucketing");
    // Located in parallel over whole lattice rows: a row's first
    // candidate sits on the region border, where exactly one triangle
    // contains it, so a chunk's fresh (-1) walk start reaches the same
    // triangle the serial hint chain would — parallel assignment is
    // bit-identical to serial even for candidates exactly on shared
    // edges (the seed diagonal).  Bucket fill stays serial, in index
    // order.
    par::parallel_for_chunks(
        n,
        [&](std::size_t row_begin, std::size_t row_end) {
          int hint = -1;
          for (std::size_t j = row_begin; j < row_end; ++j) {
            for (std::size_t i = 0; i < n; ++i) {
              auto& c = candidates[j * n + i];
              c.triangle = dt.locate_from(c.pos, hint);
              hint = c.triangle;
              c.error =
                  std::abs(c.f_value - interpolate_in(dt, c.triangle, c.pos));
            }
          }
        },
        /*grain=*/4);
    for (std::size_t ci = 0; ci < candidates.size(); ++ci) {
      buckets[static_cast<std::size_t>(candidates[ci].triangle)].push_back(
          ci);
    }
  }
  // Lattice corners coincide with scaffolding vertices: error 0, but mark
  // them used so kRandom never wastes a node on them.  The tolerance is
  // relative to the lattice pitch — an absolute 1e-9 vanishes against
  // large-coordinate regions (where x0 + (n-1) * dx lands ulps away from
  // x1) and the duplicate corner then wastes a node.
  const double corner_tol = 1e-6 * std::min(dx, dy);
  for (std::size_t ci = 0; ci < candidates.size(); ++ci) {
    for (int v = 0; v < geo::Delaunay::kCorners; ++v) {
      if (geo::distance(candidates[ci].pos, dt.vertex(v).pos) < corner_tol) {
        candidates[ci].used = true;
      }
    }
  }

  const auto score_of = [this](const Candidate& c) noexcept -> double {
    switch (config_.measure) {
      case SelectionMeasure::kLocalError:
        return c.error;
      case SelectionMeasure::kCurvature:
        return c.curvature;
      case SelectionMeasure::kProduct:
        return c.error * c.curvature;
      case SelectionMeasure::kRandom:
        break;
    }
    return 0.0;
  };

  // Heap engine state (see SelectionEngine): one entry per unused
  // candidate, refreshed on score changes, consumed lazily.  Curvature
  // scores never change after the initial pass, so rebuckets need not
  // push for kCurvature.
  const bool use_heap =
      config_.selection_engine == SelectionEngine::kHeap &&
      config_.measure != SelectionMeasure::kRandom;
  const bool heap_rescores =
      use_heap && config_.measure != SelectionMeasure::kCurvature;
  SelectionHeap heap;
  std::vector<HeapEntry> parked;  // Valid-but-unaffordable pops, restored.
  std::size_t heap_pushes = 0, heap_pops = 0, heap_stale_pops = 0;
  if (use_heap) {
    std::vector<HeapEntry> initial;
    initial.reserve(candidates.size());
    for (std::size_t ci = 0; ci < candidates.size(); ++ci) {
      if (!candidates[ci].used) {
        initial.push_back(
            HeapEntry{score_of(candidates[ci]), static_cast<std::uint32_t>(ci)});
      }
    }
    heap_pushes += initial.size();
    heap = SelectionHeap(HeapOrder{}, std::move(initial));
  }

  // kRandom free-list: the unused candidate indices, kept ascending and
  // shrunk on used transitions instead of being rebuilt O(lattice) every
  // iteration.  Contents (and hence the RNG draw sequence) are identical
  // to the rebuilt vector's.
  std::vector<std::size_t> random_free;
  std::vector<std::size_t> random_scratch;
  if (config_.measure == SelectionMeasure::kRandom) {
    for (std::size_t ci = 0; ci < candidates.size(); ++ci) {
      if (!candidates[ci].used) random_free.push_back(ci);
    }
  }

  num::Rng rng(config_.seed);
  std::vector<geo::Vec2> selected;
  selected.reserve(request.k);

  // Disk-graph component structure of `selected`, maintained incrementally
  // so the foresight step can skip the Prim MST outright while the network
  // is already connected (plan_relays returns an empty plan exactly when
  // the component count is <= 1).  Same edge predicate as GeometricGraph:
  // distance_sq <= rc^2.
  graph::UnionFind net_uf(request.k);
  std::size_t net_components = 0;
  const double rc_sq = request.rc * request.rc;
  const auto register_selected = [&]() {
    if (!config_.foresight) return;  // Only foresight prices connectivity.
    const std::size_t i = selected.size() - 1;
    ++net_components;
    for (std::size_t j = 0; j < i; ++j) {
      if (geo::distance_sq(selected[j], selected[i]) <= rc_sq &&
          net_uf.unite(i, j)) {
        --net_components;
      }
    }
  };

  // Distance from each candidate to the nearest already-placed node,
  // maintained incrementally: the foresight step uses it to price a
  // candidate's worst-case connection cost in O(1).  The refresh is
  // grid-pruned (NearestNetGrid) instead of a dense O(n^2-lattice) scan.
  std::vector<double> dist_to_net(candidates.size(),
                                  std::numeric_limits<double>::infinity());
  std::vector<geo::Vec2> candidate_positions(candidates.size());
  for (std::size_t ci = 0; ci < candidates.size(); ++ci) {
    candidate_positions[ci] = candidates[ci].pos;
  }
  // ~4 lattice pitches per cell: coarse enough that the cell loop is
  // cheap, fine enough that the per-cell max prunes sharply once the
  // network densifies.
  NearestNetGrid net_grid(candidate_positions,
                          4.0 * std::max(dx, dy));
  const auto note_added = [&](geo::Vec2 p) {
    net_grid.note_added(p, candidate_positions, dist_to_net);
  };

  // Garland-Heckbert update: only candidates whose triangle died need
  // re-location (among the fan of new triangles) and error refresh.
  // Every insertion — refinement pick or foresight relay — must pass
  // through here: a skipped rebucket leaves candidates keyed to dead
  // (later recycled) triangle slots with stale errors, silently
  // corrupting subsequent selections.
  const auto rebucket_after = [&](const geo::InsertResult& ins) {
    if (!ins.inserted) return;
    if (buckets.size() < dt.triangle_slots()) {
      buckets.resize(dt.triangle_slots() * 2);
    }
    std::vector<std::size_t> displaced;
    for (const int dead : ins.removed_triangles) {
      auto& bucket = buckets[static_cast<std::size_t>(dead)];
      displaced.insert(displaced.end(), bucket.begin(), bucket.end());
      bucket.clear();
    }
    for (const std::size_t ci : displaced) {
      auto& c = candidates[ci];
      c.triangle = -1;
      for (const int fresh : ins.created_triangles) {
        if (dt.triangle_geometry(fresh).contains(c.pos)) {
          c.triangle = fresh;
          break;
        }
      }
      if (c.triangle == -1) {
        // Numerical corner case: the point sits exactly on the cavity
        // boundary; a full locate resolves it.
        c.triangle = dt.locate(c.pos);
      }
      c.error = std::abs(c.f_value - interpolate_in(dt, c.triangle, c.pos));
      buckets[static_cast<std::size_t>(c.triangle)].push_back(ci);
      if (heap_rescores && !c.used) {
        // The displaced candidate's score moved: push the fresh value;
        // the superseded entry dies as a stale pop later.
        heap.push(HeapEntry{score_of(c), static_cast<std::uint32_t>(ci)});
        ++heap_pushes;
      }
    }
    CPS_COUNT("core.fra.candidates_rebucketed", displaced.size());
  };

  // Spends up to `budget` nodes on the *caller-computed* relay plan.  The
  // plan the foresight check just priced is exactly the plan to execute —
  // recomputing the Prim MST here (as the seed code did) doubled the
  // foresight cost for no behavioural difference, since `selected` cannot
  // change between the check and the placement.
  const auto place_relays = [&](std::size_t budget,
                                const graph::RelayPlan& plan) {
    const std::size_t count = std::min(budget, plan.count);
    for (std::size_t r = 0; r < count; ++r) {
      const geo::Vec2 p = plan.positions[r];
      rebucket_after(dt.insert(p, reference.value(p)));
      selected.push_back(p);
      register_selected();
      note_added(p);
      result.steps.push_back(FraStep{p, 0.0, true});
      ++result.relay_count;
    }
    CPS_COUNT("core.fra.relays_inserted", count);
    return count;
  };

  CPS_TIMER("core.fra.refine_loop");
  std::size_t timeline_iteration = 0;
  while (selected.size() < request.k) {
    CPS_COUNT("core.fra.iterations", 1);
    // Iteration boundary for the telemetry timeline: each sample's deltas
    // (heap pops, rebuckets, scans) cover the *previous* iteration; the
    // first covers lattice seeding, the closing sample after the loop the
    // final iteration plus the bucket audit.
    CPS_TIMELINE_SAMPLE("core.fra.iteration", timeline_iteration++);
    // Foresight (Table 1 lines 5-8): when the remaining budget is no more
    // than the relay count needed for connectivity, spend it on relays.
    // On top of the paper's trigger, candidate selection below only
    // considers positions whose worst-case connection cost (relays along
    // the straight line to the nearest placed node) still fits in the
    // post-selection budget — without this, one far-away max-error pick
    // can make connectivity unaffordable in a single step.
    std::size_t candidate_relay_budget = request.k;  // Unbounded pre-seed.
    graph::RelayPlan plan;  // Empty == connected; reused by the retry path.
    if (config_.foresight && !selected.empty()) {
      const std::size_t remaining = request.k - selected.size();
      // The union-find already knows whether the disk graph is connected;
      // plan_relays returns an empty plan in exactly that case, so the
      // Prim MST only runs while components remain to stitch.
      if (net_components > 1) {
        CPS_COUNT("core.fra.mst_recomputes", 1);
        plan = graph::plan_relays(selected, request.rc);
      }
      if (plan.count >= remaining) {
        CPS_COUNT("core.fra.foresight_triggers", 1);
        CPS_TRACE_INSTANT("core.fra.foresight_trigger");
        place_relays(remaining, plan);
        break;
      }
      candidate_relay_budget = remaining - 1 - plan.count;
    }
    const auto affordable = [&](std::size_t ci) {
      if (!config_.foresight || selected.empty()) return true;
      if (dist_to_net[ci] <= request.rc) return true;
      return graph::relays_for_gap(dist_to_net[ci], request.rc) <=
             candidate_relay_budget;
    };

    // Select the best unused, affordable candidate under the measure.
    std::size_t best = candidates.size();
    if (config_.measure == SelectionMeasure::kRandom) {
      // Pick uniformly from the incrementally maintained free-list; only
      // the foresight filter (iteration-dependent) needs a fresh pass,
      // and it reproduces the rebuilt vector's contents exactly, so the
      // RNG consumes the same draws as the O(lattice) rebuild did.
      const std::vector<std::size_t>* pool = &random_free;
      if (config_.foresight && !selected.empty()) {
        random_scratch.clear();
        for (const std::size_t ci : random_free) {
          if (affordable(ci)) random_scratch.push_back(ci);
        }
        pool = &random_scratch;
      }
      if (!pool->empty()) {
        best = (*pool)[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(pool->size()) - 1))];
      }
    } else if (use_heap) {
      // Pop until the first live entry that is affordable this iteration:
      // heap order (score desc, index asc) makes it the scan's argmax.
      // Live-but-unaffordable entries are parked — affordability varies
      // per iteration, so dropping them would lose candidates for good —
      // and restored once the selection is decided.
      std::size_t pops = 0, stale = 0;
      parked.clear();
      while (!heap.empty()) {
        const HeapEntry entry = heap.top();
        heap.pop();
        ++pops;
        const Candidate& c = candidates[entry.index];
        if (c.used || score_of(c) != entry.score) {
          ++stale;
          continue;
        }
        if (!affordable(entry.index)) {
          parked.push_back(entry);
          continue;
        }
        best = entry.index;
        break;
      }
      for (const HeapEntry& entry : parked) heap.push(entry);
      heap_pops += pops;
      heap_stale_pops += stale;
      heap_pushes += parked.size();
      CPS_COUNT("core.fra.heap_pops", pops);
      CPS_COUNT("core.fra.heap_stale_pops", stale);
      CPS_COUNT("core.fra.heap_parked", parked.size());
    } else {
      // Ordered argmax over the lattice: strict > keeps the first (lowest
      // index) maximum within a chunk and the chunk-order combine keeps
      // the first across chunks — bit-identical to the serial scan at
      // every thread count.
      CPS_COUNT("core.fra.candidates_scanned", candidates.size());
      struct Best {
        double score;
        std::size_t idx;
      };
      const Best found = par::parallel_reduce(
          candidates.size(), Best{-1.0, candidates.size()},
          [&](std::size_t begin, std::size_t end) {
            Best local{-1.0, candidates.size()};
            for (std::size_t ci = begin; ci < end; ++ci) {
              const auto& c = candidates[ci];
              if (c.used || !affordable(ci)) continue;
              double score = 0.0;
              switch (config_.measure) {
                case SelectionMeasure::kLocalError:
                  score = c.error;
                  break;
                case SelectionMeasure::kCurvature:
                  score = c.curvature;
                  break;
                case SelectionMeasure::kProduct:
                  score = c.error * c.curvature;
                  break;
                case SelectionMeasure::kRandom:
                  break;  // Handled above.
              }
              if (score > local.score) {
                local.score = score;
                local.idx = ci;
              }
            }
            return local;
          },
          [](Best acc, Best part) {
            return part.score > acc.score ? part : acc;
          });
      best = found.idx;
    }
    if (best == candidates.size()) {
      // No affordable candidate: connect what exists to free the budget,
      // then retry; a lattice with nothing left at all ends the plan.
      // `selected` has not changed since the foresight check priced
      // `plan`, so the plan is reused verbatim — no second Prim run.
      if (config_.foresight && !selected.empty() &&
          place_relays(request.k - selected.size(), plan) > 0) {
        continue;
      }
      break;
    }

    Candidate& chosen = candidates[best];
    chosen.used = true;
    if (config_.measure == SelectionMeasure::kRandom) {
      random_free.erase(std::lower_bound(random_free.begin(),
                                         random_free.end(), best));
    }
    note_added(chosen.pos);
    const double score =
        config_.measure == SelectionMeasure::kLocalError ? chosen.error
        : config_.measure == SelectionMeasure::kCurvature
            ? chosen.curvature
        : config_.measure == SelectionMeasure::kProduct
            ? chosen.error * chosen.curvature
            : 0.0;
    selected.push_back(chosen.pos);
    register_selected();
    result.steps.push_back(FraStep{chosen.pos, score, false});
    // Per-iteration trajectory the paper's Figs. 5-7 discussion is about:
    // the refinement error at the point just judged worst, and how the
    // triangulation grows around it.
    CPS_HIST("core.fra.selected_score", score);
    CPS_TRACE_COUNTER("core.fra.max_local_error", chosen.error);
    CPS_TRACE_COUNTER("core.fra.triangle_count", dt.triangle_count());

    rebucket_after(dt.insert(chosen.pos, chosen.f_value));
  }

  // Bucket-consistency audit (cheap: one contains() per candidate).  A
  // nonzero count means some candidate still references a dead or reused
  // triangle slot — the stale-bucket corruption the relay rebucketing
  // fix closes; tests assert this is 0.
  {
    std::size_t stale = 0;
    for (const auto& c : candidates) {
      const bool consistent =
          c.triangle >= 0 &&
          c.triangle < static_cast<int>(dt.triangle_slots()) &&
          dt.triangle_alive(c.triangle) &&
          dt.triangle_geometry(c.triangle).contains(c.pos);
      if (!consistent) ++stale;
    }
    result.stale_candidates = stale;
    CPS_GAUGE("core.fra.stale_candidates", stale);
  }

  if (use_heap) {
    CPS_COUNT("core.fra.heap_pushes", heap_pushes);
    CPS_GAUGE("core.fra.heap_stale_pop_ratio",
              heap_pops == 0 ? 0.0
                             : static_cast<double>(heap_stale_pops) /
                                   static_cast<double>(heap_pops));
  }
  CPS_GAUGE("core.fra.triangle_count", dt.triangle_count());
  CPS_GAUGE("core.fra.vertex_count", dt.vertex_count());
  CPS_TIMELINE_SAMPLE("core.fra.iteration", timeline_iteration);
  result.deployment.positions = std::move(selected);
  return result;
}

}  // namespace cps::core
