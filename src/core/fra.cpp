#include "core/fra.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>
#include <stdexcept>

#include <memory>

#include "core/curvature.hpp"
#include "core/delta_incremental.hpp"
#include "geometry/delaunay.hpp"
#include "graph/relay.hpp"
#include "graph/union_find.hpp"
#include "numerics/rng.hpp"
#include "obs/obs.hpp"
#include "parallel/spatial_hash.hpp"
#include "parallel/thread_pool.hpp"

namespace cps::core {
namespace {

/// One lattice position competing for selection.
struct Candidate {
  geo::Vec2 pos;
  double f_value = 0.0;     // Referential surface value (sensed once).
  double curvature = 0.0;   // |G| (filled only for curvature measures).
  int triangle = -1;        // Containing triangle in the evolving DT.
  double error = 0.0;       // Local error |f - DT| at pos.
  bool used = false;        // Already selected (or coincides with a vertex).
};

/// Score sentinel for used candidates in the heap engine's SoA score
/// mirror.  Every selection measure is non-negative (|f - DT|, |G|, their
/// product), so kUsedScore loses every ordered comparison and the storm
/// fallback's flat argmax skips used candidates without a mask load.
constexpr double kUsedScore = -1.0;

/// Indexed max-heap over candidate indices, keyed by an externally owned
/// live-score array, ordered (score desc, index asc) — the scan oracle's
/// argmax tie-break.  Unlike the PR 4 lazy-deletion heap there is at most
/// ONE entry per candidate (`pos_` tracks its slot), so a rebucket rescore
/// is a decrease/increase-key sift instead of a duplicate push, and pops
/// are never stale.  The planner pairs this with storm compaction: when a
/// rebucket displaces a large fraction of the lattice (the early
/// iterations, whose cavities cover most candidates), per-entry sifts
/// would cost more than starting over, so the heap is invalidated
/// wholesale, selections fall back to a flat argmax over the score array,
/// and one Floyd build restores the heap once cavities shrink.
class IndexedSelectionHeap {
 public:
  static constexpr std::uint32_t kAbsent = 0xffffffffu;

  void reset(std::size_t n) {
    pos_.assign(n, kAbsent);
    heap_.clear();
    valid_ = false;
  }

  bool valid() const noexcept { return valid_; }
  bool empty() const noexcept { return heap_.empty(); }

  /// Drops every entry in O(1); `pos_` is left stale and re-derived by the
  /// next build().
  void invalidate() noexcept { valid_ = false; }

  /// Floyd build over every unused candidate at its current score.
  /// Returns the number of entries (re)inserted.
  std::size_t build(std::span<const double> scores,
                    std::span<const std::uint8_t> used) {
    std::fill(pos_.begin(), pos_.end(), kAbsent);
    heap_.clear();
    for (std::uint32_t ci = 0; ci < pos_.size(); ++ci) {
      if (!used[ci]) heap_.push_back(Entry{scores[ci], ci});
    }
    for (std::size_t i = heap_.size() / 2; i-- > 0;) sift_down(i);
    for (std::size_t i = 0; i < heap_.size(); ++i) {
      pos_[heap_[i].idx] = static_cast<std::uint32_t>(i);
    }
    valid_ = true;
    return heap_.size();
  }

  /// Removes and returns the best (score desc, index asc) candidate.
  std::uint32_t pop(std::span<const double> /*scores*/) {
    const std::uint32_t best = heap_.front().idx;
    pos_[best] = kAbsent;
    const Entry last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
      heap_.front() = last;
      pos_[last.idx] = 0;
      sift_down(0);
    }
    return best;
  }

  /// Inserts a candidate that is not currently in the heap (parked-entry
  /// restore after a selection).
  void insert(std::uint32_t ci, std::span<const double> scores) {
    heap_.push_back(Entry{scores[ci], ci});
    pos_[ci] = static_cast<std::uint32_t>(heap_.size() - 1);
    sift_up(heap_.size() - 1);
  }

  /// Re-establishes heap order around ci after scores[ci] changed; no-op
  /// when ci is absent (already used, or popped this iteration).
  void update(std::uint32_t ci, std::span<const double> scores) {
    const std::uint32_t at = pos_[ci];
    if (at == kAbsent) return;
    heap_[at].score = scores[ci];
    // One parent probe decides the direction; the common no-move case
    // (most rebucket rescores keep their rank) pays a single compare in
    // sift_down's first round instead of a full up-then-down pass.
    if (at > 0 && better(heap_[at], heap_[(at - 1) / 2])) {
      sift_up(at);
    } else {
      sift_down(at);
    }
  }

 private:
  // The key is embedded next to the index so a sift compare touches only
  // the heap array (parent/child entries, usually the same cache lines)
  // instead of gathering from the 10k-entry score mirror — the rebucket
  // sift storm at k ~ 100 is bound by exactly those gathers.  The mirror
  // stays authoritative for the storm-mode flat scans; entries are
  // refreshed from it on build/insert/update.
  struct Entry {
    double score;
    std::uint32_t idx;
  };

  /// Strict-weak "a selects before b": higher score first, lower index on
  /// ties — exactly the serial scan's first-maximum rule.
  static bool better(const Entry& a, const Entry& b) noexcept {
    if (a.score != b.score) return a.score > b.score;
    return a.idx < b.idx;
  }

  bool sift_up(std::size_t i) noexcept {
    const Entry v = heap_[i];
    bool moved = false;
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!better(v, heap_[parent])) break;
      heap_[i] = heap_[parent];
      pos_[heap_[i].idx] = static_cast<std::uint32_t>(i);
      i = parent;
      moved = true;
    }
    heap_[i] = v;
    pos_[v.idx] = static_cast<std::uint32_t>(i);
    return moved;
  }

  void sift_down(std::size_t i) noexcept {
    const Entry v = heap_[i];
    const std::size_t m = heap_.size();
    for (;;) {
      std::size_t child = 2 * i + 1;
      if (child >= m) break;
      if (child + 1 < m && better(heap_[child + 1], heap_[child])) {
        ++child;
      }
      if (!better(heap_[child], v)) break;
      heap_[i] = heap_[child];
      pos_[heap_[i].idx] = static_cast<std::uint32_t>(i);
      i = child;
    }
    heap_[i] = v;
    pos_[v.idx] = static_cast<std::uint32_t>(i);
  }

  std::vector<Entry> heap_;         // (score, candidate) in heap order.
  std::vector<std::uint32_t> pos_;  // Candidate -> heap slot, or kAbsent.
  bool valid_ = false;
};

double interpolate_in(const geo::Delaunay& dt, int tri, geo::Vec2 p) {
  const auto& t = dt.triangle(tri);
  return geo::interpolate_linear(dt.triangle_geometry(tri),
                                 dt.vertex(t.v[0]).z, dt.vertex(t.v[1]).z,
                                 dt.vertex(t.v[2]).z, p);
}

/// Grid-accelerated maintenance of "distance from each candidate to the
/// nearest already-placed node".  A per-cell maximum of the maintained
/// distances lets note_added() skip every cell the new node cannot
/// improve: min-possible |candidate - p| >= max distance in the cell
/// implies no member's minimum can drop.  Values are the exact same
/// std::min-folded doubles the dense O(n) refresh produced.
class NearestNetGrid {
 public:
  NearestNetGrid(std::span<const geo::Vec2> points, double cell_size)
      : hash_(points, cell_size),
        cell_max_(std::max<std::size_t>(hash_.cell_count(), 1),
                  std::numeric_limits<double>::infinity()) {}

  void note_added(geo::Vec2 p, std::span<const geo::Vec2> points,
                  std::vector<double>& dist) {
    std::size_t scanned = 0;
    for (std::size_t c = 0; c < hash_.cell_count(); ++c) {
      double& cell_max = cell_max_[c];
      // inf * inf == inf keeps never-touched cells scannable.
      if (hash_.cell_distance_sq(p, c) >= cell_max * cell_max) continue;
      double new_max = 0.0;
      for (const std::uint32_t id : hash_.cell_members(c)) {
        double& d = dist[id];
        d = std::min(d, geo::distance(points[id], p));
        new_max = std::max(new_max, d);
        ++scanned;
      }
      cell_max = new_max;
    }
    CPS_COUNT("core.fra.dist_refresh_scanned", scanned);
  }

 private:
  par::SpatialHash hash_;
  std::vector<double> cell_max_;
};

}  // namespace

FraPlanner::FraPlanner(const FraConfig& config) : config_(config) {
  if (config.error_grid < 2) {
    throw std::invalid_argument("FraPlanner: error_grid < 2");
  }
  if (config.curvature_radius <= 0.0) {
    throw std::invalid_argument("FraPlanner: curvature_radius <= 0");
  }
}

Deployment FraPlanner::plan(const field::Field& reference,
                            const PlanRequest& request) {
  return plan_detailed(reference, request).deployment;
}

FraResult FraPlanner::plan_detailed(const field::Field& reference,
                                    const PlanRequest& request) {
  if (request.rc <= 0.0) throw std::invalid_argument("FRA: rc <= 0");
  FraResult result;
  if (request.k == 0) return result;

  CPS_TIMER("core.fra.plan_total");
  const num::Rect& region = request.region;
  geo::Delaunay dt(region);
  for (int c = 0; c < geo::Delaunay::kCorners; ++c) {
    dt.set_vertex_z(c, reference.value(dt.vertex(c).pos));
  }

  // Optional what-if δ tracking (FraConfig::track_delta): seeded after the
  // corner values so the initial sweep already measures the f-valued
  // scaffolding; every insertion below feeds its cavity report through
  // track_insert so the trajectory costs O(changed area) per step.
  std::unique_ptr<IncrementalDelta> delta_tracker;
  if (config_.track_delta != nullptr) {
    delta_tracker = std::make_unique<IncrementalDelta>(*config_.track_delta,
                                                       reference, dt);
  }
  const auto track_insert = [&](const geo::InsertResult& ins) {
    if (delta_tracker == nullptr) return;
    delta_tracker->apply(dt, ins);
    result.delta_trajectory.push_back(delta_tracker->value());
  };

  // Candidate lattice (the paper's sqrt(A) x sqrt(A) positions), bucketed
  // by containing triangle.
  const std::size_t n =
      request.lattice != 0 ? request.lattice : config_.error_grid;
  if (n < 2) throw std::invalid_argument("FRA: request lattice < 2");
  std::vector<Candidate> candidates(n * n);
  const double dx = region.width() / static_cast<double>(n - 1);
  const double dy = region.height() / static_cast<double>(n - 1);
  std::vector<double> lattice_xs(n);
  for (std::size_t i = 0; i < n; ++i) {
    lattice_xs[i] = region.x0 + static_cast<double>(i) * dx;
  }
  {
    CPS_TIMER("core.fra.sense_lattice");
    // Field implementations are const-thread-safe by contract (see
    // field/field.hpp), so the lattice sense is a parallel map over whole
    // rows, each sensed by one batched value_row call (bit-identical to
    // the per-point map by the batch contract).
    par::parallel_for_chunks(
        n,
        [&](std::size_t row_begin, std::size_t row_end) {
          std::vector<double> row(n);
          for (std::size_t j = row_begin; j < row_end; ++j) {
            const double y = region.y0 + static_cast<double>(j) * dy;
            reference.value_row(y, lattice_xs, row.data());
            CPS_COUNT("core.fra.batch_rows", 1);
            for (std::size_t i = 0; i < n; ++i) {
              Candidate& c = candidates[j * n + i];
              c.pos = {lattice_xs[i], y};
              c.f_value = row[i];
            }
          }
        },
        /*grain=*/1);
  }

  if (config_.measure == SelectionMeasure::kCurvature ||
      config_.measure == SelectionMeasure::kProduct) {
    CPS_TIMER("core.fra.curvature_pass");
    const CurvatureEstimator estimator(config_.curvature_radius);
    par::parallel_for(
        candidates.size(),
        [&](std::size_t ci) {
          candidates[ci].curvature =
              std::abs(estimator.gaussian_at(reference, candidates[ci].pos));
        },
        /*grain=*/64);  // A quadric fit per index: keep chunks small.
  }

  // Triangle -> candidate-index buckets; sized generously since each
  // insertion adds a bounded number of triangle slots.
  std::vector<std::vector<std::size_t>> buckets(dt.triangle_slots() +
                                                6 * request.k + 16);
  {
    CPS_TIMER("core.fra.initial_bucketing");
    // Located in parallel over whole lattice rows: a row's first
    // candidate sits on the region border, where exactly one triangle
    // contains it, so a chunk's fresh (-1) walk start reaches the same
    // triangle the serial hint chain would — parallel assignment is
    // bit-identical to serial even for candidates exactly on shared
    // edges (the seed diagonal).  Bucket fill stays serial, in index
    // order.
    par::parallel_for_chunks(
        n,
        [&](std::size_t row_begin, std::size_t row_end) {
          int hint = -1;
          for (std::size_t j = row_begin; j < row_end; ++j) {
            for (std::size_t i = 0; i < n; ++i) {
              auto& c = candidates[j * n + i];
              c.triangle = dt.locate_from(c.pos, hint);
              hint = c.triangle;
              c.error =
                  std::abs(c.f_value - interpolate_in(dt, c.triangle, c.pos));
            }
          }
        },
        /*grain=*/4);
    for (std::size_t ci = 0; ci < candidates.size(); ++ci) {
      buckets[static_cast<std::size_t>(candidates[ci].triangle)].push_back(
          ci);
    }
  }
  // Lattice corners coincide with scaffolding vertices: error 0, but mark
  // them used so kRandom never wastes a node on them.  The tolerance is
  // relative to the lattice pitch — an absolute 1e-9 vanishes against
  // large-coordinate regions (where x0 + (n-1) * dx lands ulps away from
  // x1) and the duplicate corner then wastes a node.
  const double corner_tol = 1e-6 * std::min(dx, dy);
  for (std::size_t ci = 0; ci < candidates.size(); ++ci) {
    for (int v = 0; v < geo::Delaunay::kCorners; ++v) {
      if (geo::distance(candidates[ci].pos, dt.vertex(v).pos) < corner_tol) {
        candidates[ci].used = true;
      }
    }
  }

  const auto score_of = [this](const Candidate& c) noexcept -> double {
    switch (config_.measure) {
      case SelectionMeasure::kLocalError:
        return c.error;
      case SelectionMeasure::kCurvature:
        return c.curvature;
      case SelectionMeasure::kProduct:
        return c.error * c.curvature;
      case SelectionMeasure::kRandom:
        break;
    }
    return 0.0;
  };

  // Heap engine state (see SelectionEngine): at most one entry per unused
  // candidate, kept ordered by decrease/increase-key sifts on rescoring
  // rebuckets, with storm compaction when a cavity displaces too much of
  // the lattice for per-entry sifts to pay.  `heap_scores` / `heap_used`
  // are SoA mirrors of the candidate array: the sift comparator and the
  // storm-fallback flat argmax stream them instead of the 64-byte
  // Candidate records.  Curvature scores never change after the initial
  // pass, so kCurvature neither rescores nor storms — its heap is built
  // once and stays valid.
  const bool use_heap =
      config_.selection_engine == SelectionEngine::kHeap &&
      config_.measure != SelectionMeasure::kRandom;
  const bool heap_rescores =
      use_heap && config_.measure != SelectionMeasure::kCurvature;
  IndexedSelectionHeap heap;
  std::vector<double> heap_scores;
  std::vector<std::uint8_t> heap_used;
  std::vector<std::uint32_t> parked;  // Unaffordable pops, restored.
  std::size_t heap_pushes = 0, heap_pops = 0, heap_updates = 0;
  std::size_t live_candidates = 0;
  std::size_t last_displaced = 0;
  if (use_heap) {
    heap.reset(candidates.size());
    heap_scores.resize(candidates.size());
    heap_used.resize(candidates.size());
    for (std::size_t ci = 0; ci < candidates.size(); ++ci) {
      // Used candidates carry kUsedScore instead of a real score: every
      // measure is non-negative (|f - DT|, |G|, their product), so the
      // sentinel loses any ordered comparison and the storm-fallback flat
      // argmax needs no per-candidate used check at all.
      heap_scores[ci] =
          candidates[ci].used ? kUsedScore : score_of(candidates[ci]);
      heap_used[ci] = candidates[ci].used ? 1 : 0;
      if (!candidates[ci].used) ++live_candidates;
    }
    // Rescoring measures start storm-invalidated: the first insertions'
    // cavities cover most of the lattice, so building the heap up front
    // would only tear it down again.  kCurvature builds at the first
    // selection and keeps the heap for the whole plan.
    last_displaced = heap_rescores ? live_candidates : 0;
  }
  // Storm hysteresis.  A rebucket that rescores >= live/3 candidates
  // drops the heap (per-entry sifts cost more than a flat argmax at that
  // scale); it is rebuilt only once a cavity displaces < live/12, so
  // cavity-size noise inside the band cannot thrash build/invalidate
  // cycles.  Both thresholds are pure performance knobs — every selection
  // path computes the identical (score desc, index asc) argmax, so they
  // never change which candidate wins.
  const auto is_storm = [&](std::size_t displaced) noexcept {
    return displaced * 3 >= live_candidates;
  };
  const auto is_calm = [&](std::size_t displaced) noexcept {
    return displaced * 12 < live_candidates;
  };

  // kRandom free-list: the unused candidate indices, kept ascending and
  // shrunk on used transitions instead of being rebuilt O(lattice) every
  // iteration.  Contents (and hence the RNG draw sequence) are identical
  // to the rebuilt vector's.
  std::vector<std::size_t> random_free;
  std::vector<std::size_t> random_scratch;
  if (config_.measure == SelectionMeasure::kRandom) {
    for (std::size_t ci = 0; ci < candidates.size(); ++ci) {
      if (!candidates[ci].used) random_free.push_back(ci);
    }
  }

  num::Rng rng(request.seed != 0 ? request.seed : config_.seed);
  std::vector<geo::Vec2> selected;
  selected.reserve(request.k);

  // Disk-graph component structure of `selected`, maintained incrementally
  // so the foresight step can skip the Prim MST outright while the network
  // is already connected (plan_relays returns an empty plan exactly when
  // the component count is <= 1).  Same edge predicate as GeometricGraph:
  // distance_sq <= rc^2.
  graph::UnionFind net_uf(request.k);
  std::size_t net_components = 0;
  const double rc_sq = request.rc * request.rc;
  const auto register_selected = [&]() {
    if (!config_.foresight) return;  // Only foresight prices connectivity.
    const std::size_t i = selected.size() - 1;
    ++net_components;
    for (std::size_t j = 0; j < i; ++j) {
      if (geo::distance_sq(selected[j], selected[i]) <= rc_sq &&
          net_uf.unite(i, j)) {
        --net_components;
      }
    }
  };

  // Distance from each candidate to the nearest already-placed node,
  // maintained incrementally: the foresight step uses it to price a
  // candidate's worst-case connection cost in O(1).  The refresh is
  // grid-pruned (NearestNetGrid) instead of a dense O(n^2-lattice) scan.
  std::vector<double> dist_to_net(candidates.size(),
                                  std::numeric_limits<double>::infinity());
  std::vector<geo::Vec2> candidate_positions(candidates.size());
  for (std::size_t ci = 0; ci < candidates.size(); ++ci) {
    candidate_positions[ci] = candidates[ci].pos;
  }
  // ~4 lattice pitches per cell: coarse enough that the cell loop is
  // cheap, fine enough that the per-cell max prunes sharply once the
  // network densifies.
  NearestNetGrid net_grid(candidate_positions,
                          4.0 * std::max(dx, dy));
  const auto note_added = [&](geo::Vec2 p) {
    net_grid.note_added(p, candidate_positions, dist_to_net);
  };

  // Garland-Heckbert update: only candidates whose triangle died need
  // re-location (among the fan of new triangles) and error refresh.
  // Every insertion — refinement pick or foresight relay — must pass
  // through here: a skipped rebucket leaves candidates keyed to dead
  // (later recycled) triangle slots with stale errors, silently
  // corrupting subsequent selections.
  // Rescores one candidate after its error changed: mirror write plus a
  // decrease/increase-key sift while the heap is live (score writes alone
  // suffice during a storm — the flat argmax reads the mirror).
  const auto rescore = [&](std::size_t ci) {
    auto& c = candidates[ci];
    if (!heap_rescores || c.used) return;
    const double s = score_of(c);
    if (heap_scores[ci] == s) return;
    heap_scores[ci] = s;
    if (heap.valid()) {
      heap.update(static_cast<std::uint32_t>(ci), heap_scores);
      ++heap_updates;
    }
  };

  const auto rebucket_after = [&](const geo::InsertResult& ins) {
    if (!ins.inserted) {
      if (!ins.z_changed) return;
      // Duplicate-tolerance hit that rewrote an existing vertex's z: the
      // topology (and with it every bucket) is intact, but the surface
      // over the vertex's star moved, so the candidates bucketed there
      // hold stale errors — the staleness bug the z_changed report
      // closes.  Refresh them in place; no relocation is needed.
      std::size_t refreshed = 0;
      for (const int tri : ins.star_triangles) {
        for (const std::size_t ci : buckets[static_cast<std::size_t>(tri)]) {
          auto& c = candidates[ci];
          c.error =
              std::abs(c.f_value - interpolate_in(dt, c.triangle, c.pos));
          rescore(ci);
          ++refreshed;
        }
      }
      CPS_COUNT("core.fra.candidates_rebucketed", refreshed);
      return;
    }
    if (buckets.size() < dt.triangle_slots()) {
      buckets.resize(dt.triangle_slots() * 2);
    }
    std::vector<std::size_t> displaced;
    for (const int dead : ins.removed_triangles) {
      auto& bucket = buckets[static_cast<std::size_t>(dead)];
      displaced.insert(displaced.end(), bucket.begin(), bucket.end());
      bucket.clear();
    }
    // Storm compaction decision, taken once per insertion from the known
    // displacement count: a flooded heap is dropped up front so the loop
    // below degrades to plain score writes.
    if (heap_rescores && heap.valid() && is_storm(displaced.size())) {
      heap.invalidate();
    }
    for (const std::size_t ci : displaced) {
      auto& c = candidates[ci];
      c.triangle = -1;
      for (const int fresh : ins.created_triangles) {
        if (dt.triangle_geometry(fresh).contains(c.pos)) {
          c.triangle = fresh;
          break;
        }
      }
      if (c.triangle == -1) {
        // Numerical corner case: the point sits exactly on the cavity
        // boundary; a full locate resolves it.
        c.triangle = dt.locate(c.pos);
      }
      c.error = std::abs(c.f_value - interpolate_in(dt, c.triangle, c.pos));
      buckets[static_cast<std::size_t>(c.triangle)].push_back(ci);
      // Used candidates keep their kUsedScore sentinel — their error is
      // dead state as far as selection goes.
      rescore(ci);
    }
    if (heap_rescores) last_displaced = displaced.size();
    CPS_COUNT("core.fra.candidates_rebucketed", displaced.size());
  };

  // Spends up to `budget` nodes on the *caller-computed* relay plan.  The
  // plan the foresight check just priced is exactly the plan to execute —
  // recomputing the Prim MST here (as the seed code did) doubled the
  // foresight cost for no behavioural difference, since `selected` cannot
  // change between the check and the placement.
  const auto place_relays = [&](std::size_t budget,
                                const graph::RelayPlan& plan) {
    const std::size_t count = std::min(budget, plan.count);
    for (std::size_t r = 0; r < count; ++r) {
      const geo::Vec2 p = plan.positions[r];
      const geo::InsertResult ins = dt.insert(p, reference.value(p));
      track_insert(ins);
      rebucket_after(ins);
      selected.push_back(p);
      register_selected();
      note_added(p);
      result.steps.push_back(FraStep{p, 0.0, true});
      ++result.relay_count;
    }
    CPS_COUNT("core.fra.relays_inserted", count);
    return count;
  };

  CPS_TIMER("core.fra.refine_loop");
  std::size_t timeline_iteration = 0;
  while (selected.size() < request.k) {
    CPS_COUNT("core.fra.iterations", 1);
    // Iteration boundary for the telemetry timeline: each sample's deltas
    // (heap pops, rebuckets, scans) cover the *previous* iteration; the
    // first covers lattice seeding, the closing sample after the loop the
    // final iteration plus the bucket audit.
    CPS_TIMELINE_SAMPLE("core.fra.iteration", timeline_iteration++);
    // Foresight (Table 1 lines 5-8): when the remaining budget is no more
    // than the relay count needed for connectivity, spend it on relays.
    // On top of the paper's trigger, candidate selection below only
    // considers positions whose worst-case connection cost (relays along
    // the straight line to the nearest placed node) still fits in the
    // post-selection budget — without this, one far-away max-error pick
    // can make connectivity unaffordable in a single step.
    std::size_t candidate_relay_budget = request.k;  // Unbounded pre-seed.
    graph::RelayPlan plan;  // Empty == connected; reused by the retry path.
    if (config_.foresight && !selected.empty()) {
      const std::size_t remaining = request.k - selected.size();
      // The union-find already knows whether the disk graph is connected;
      // plan_relays returns an empty plan in exactly that case, so the
      // Prim MST only runs while components remain to stitch.
      if (net_components > 1) {
        CPS_COUNT("core.fra.mst_recomputes", 1);
        plan = graph::plan_relays(selected, request.rc);
      }
      if (plan.count >= remaining) {
        CPS_COUNT("core.fra.foresight_triggers", 1);
        CPS_TRACE_INSTANT("core.fra.foresight_trigger");
        place_relays(remaining, plan);
        break;
      }
      candidate_relay_budget = remaining - 1 - plan.count;
    }
    const auto affordable = [&](std::size_t ci) {
      if (!config_.foresight || selected.empty()) return true;
      if (dist_to_net[ci] <= request.rc) return true;
      return graph::relays_for_gap(dist_to_net[ci], request.rc) <=
             candidate_relay_budget;
    };

    // Select the best unused, affordable candidate under the measure.
    std::size_t best = candidates.size();
    if (config_.measure == SelectionMeasure::kRandom) {
      // Pick uniformly from the incrementally maintained free-list; only
      // the foresight filter (iteration-dependent) needs a fresh pass,
      // and it reproduces the rebuilt vector's contents exactly, so the
      // RNG consumes the same draws as the O(lattice) rebuild did.
      const std::vector<std::size_t>* pool = &random_free;
      if (config_.foresight && !selected.empty()) {
        random_scratch.clear();
        for (const std::size_t ci : random_free) {
          if (affordable(ci)) random_scratch.push_back(ci);
        }
        pool = &random_scratch;
      }
      if (!pool->empty()) {
        best = (*pool)[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(pool->size()) - 1))];
      }
    } else if (use_heap) {
      // Rebuild once the storm has subsided: one Floyd build over the
      // current scores restores the single-entry invariant for every
      // unused candidate.  While displacement stays stormy the flat
      // argmax below serves selections straight from the SoA mirrors.
      if (!heap.valid() && is_calm(last_displaced)) {
        heap_pushes += heap.build(heap_scores, heap_used);
        CPS_COUNT("core.fra.heap_rebuilds", 1);
      }
      if (heap.valid()) {
        // Pop until the first affordable candidate: heap order
        // (score desc, index asc) makes it the scan's argmax, and every
        // pop is live by construction.  Unaffordable pops are parked —
        // affordability varies per iteration, so dropping them would
        // lose candidates for good — and restored once the selection is
        // decided.
        std::size_t pops = 0;
        parked.clear();
        while (!heap.empty()) {
          const std::uint32_t ci = heap.pop(heap_scores);
          ++pops;
          if (!affordable(ci)) {
            parked.push_back(ci);
            continue;
          }
          best = ci;
          break;
        }
        for (const std::uint32_t ci : parked) heap.insert(ci, heap_scores);
        heap_pops += pops;
        heap_pushes += parked.size();
        CPS_COUNT("core.fra.heap_pops", pops);
        CPS_COUNT("core.fra.heap_parked", parked.size());
      } else {
        // Storm fallback: flat argmax over the score mirror.  Used
        // candidates sit at kUsedScore, so the first pass is a pure
        // unconstrained max — no per-candidate used or affordability
        // test.  If the winner is affordable it *is* the oracle's
        // argmax: the oracle's strict > / first-index rule picks the
        // first candidate carrying the maximum affordable score, and an
        // affordable global maximum is exactly that.  Only when the
        // winner is unaffordable (a far-from-net pick under a tight
        // relay budget — rare) does the filtered rescan run.
        CPS_COUNT("core.fra.heap_flat_scans", 1);
        CPS_COUNT("core.fra.candidates_scanned", candidates.size());
        double best_score = kUsedScore;
        for (std::size_t ci = 0; ci < candidates.size(); ++ci) {
          if (heap_scores[ci] > best_score) {
            best_score = heap_scores[ci];
            best = ci;
          }
        }
        if (best != candidates.size() && !affordable(best)) {
          best = candidates.size();
          best_score = kUsedScore;
          for (std::size_t ci = 0; ci < candidates.size(); ++ci) {
            if (heap_scores[ci] > best_score && affordable(ci)) {
              best_score = heap_scores[ci];
              best = ci;
            }
          }
        }
      }
    } else {
      // Ordered argmax over the lattice: strict > keeps the first (lowest
      // index) maximum within a chunk and the chunk-order combine keeps
      // the first across chunks — bit-identical to the serial scan at
      // every thread count.
      CPS_COUNT("core.fra.candidates_scanned", candidates.size());
      struct Best {
        double score;
        std::size_t idx;
      };
      const Best found = par::parallel_reduce(
          candidates.size(), Best{-1.0, candidates.size()},
          [&](std::size_t begin, std::size_t end) {
            Best local{-1.0, candidates.size()};
            for (std::size_t ci = begin; ci < end; ++ci) {
              const auto& c = candidates[ci];
              if (c.used || !affordable(ci)) continue;
              double score = 0.0;
              switch (config_.measure) {
                case SelectionMeasure::kLocalError:
                  score = c.error;
                  break;
                case SelectionMeasure::kCurvature:
                  score = c.curvature;
                  break;
                case SelectionMeasure::kProduct:
                  score = c.error * c.curvature;
                  break;
                case SelectionMeasure::kRandom:
                  break;  // Handled above.
              }
              if (score > local.score) {
                local.score = score;
                local.idx = ci;
              }
            }
            return local;
          },
          [](Best acc, Best part) {
            return part.score > acc.score ? part : acc;
          });
      best = found.idx;
    }
    if (best == candidates.size()) {
      // No affordable candidate: connect what exists to free the budget,
      // then retry; a lattice with nothing left at all ends the plan.
      // `selected` has not changed since the foresight check priced
      // `plan`, so the plan is reused verbatim — no second Prim run.
      if (config_.foresight && !selected.empty() &&
          place_relays(request.k - selected.size(), plan) > 0) {
        continue;
      }
      break;
    }

    Candidate& chosen = candidates[best];
    chosen.used = true;
    if (use_heap) {
      // The chosen candidate left the heap through its pop (or was never
      // in it during a storm); only the SoA mirrors need the transition.
      heap_used[best] = 1;
      heap_scores[best] = kUsedScore;
      --live_candidates;
    }
    if (config_.measure == SelectionMeasure::kRandom) {
      random_free.erase(std::lower_bound(random_free.begin(),
                                         random_free.end(), best));
    }
    note_added(chosen.pos);
    const double score =
        config_.measure == SelectionMeasure::kLocalError ? chosen.error
        : config_.measure == SelectionMeasure::kCurvature
            ? chosen.curvature
        : config_.measure == SelectionMeasure::kProduct
            ? chosen.error * chosen.curvature
            : 0.0;
    selected.push_back(chosen.pos);
    register_selected();
    result.steps.push_back(FraStep{chosen.pos, score, false});
    // Per-iteration trajectory the paper's Figs. 5-7 discussion is about:
    // the refinement error at the point just judged worst, and how the
    // triangulation grows around it.
    CPS_HIST("core.fra.selected_score", score);
    CPS_TRACE_COUNTER("core.fra.max_local_error", chosen.error);
    CPS_TRACE_COUNTER("core.fra.triangle_count", dt.triangle_count());

    {
      const geo::InsertResult ins = dt.insert(chosen.pos, chosen.f_value);
      track_insert(ins);
      rebucket_after(ins);
    }
  }

  // Bucket-consistency audit (cheap: one contains() per candidate).  A
  // nonzero count means some candidate still references a dead or reused
  // triangle slot — the stale-bucket corruption the relay rebucketing
  // fix closes; tests assert this is 0.
  {
    std::size_t stale = 0;
    for (const auto& c : candidates) {
      const bool consistent =
          c.triangle >= 0 &&
          c.triangle < static_cast<int>(dt.triangle_slots()) &&
          dt.triangle_alive(c.triangle) &&
          dt.triangle_geometry(c.triangle).contains(c.pos);
      if (!consistent) ++stale;
    }
    result.stale_candidates = stale;
    CPS_GAUGE("core.fra.stale_candidates", stale);
  }

  if (use_heap) {
    CPS_COUNT("core.fra.heap_pushes", heap_pushes);
    CPS_COUNT("core.fra.heap_updates", heap_updates);
    // Stale pops are structurally impossible with the indexed heap (one
    // entry per candidate, removed exactly at pop); the counter and ratio
    // stay in the schema so the bench's heap_degraded gate keeps watching
    // for a lazy-deletion-style regression.
    CPS_COUNT("core.fra.heap_stale_pops", 0);
    CPS_GAUGE("core.fra.heap_stale_pop_ratio", 0.0);
  }
  if (delta_tracker != nullptr) {
    // An empty trajectory (nothing selectable) still has the corners-only
    // sweep to report — the same value delta_of_deployment gives an empty
    // deployment.
    result.final_delta = result.delta_trajectory.empty()
                             ? delta_tracker->value()
                             : result.delta_trajectory.back();
    result.delta_stats = delta_tracker->stats();
  }
  CPS_GAUGE("core.fra.triangle_count", dt.triangle_count());
  CPS_GAUGE("core.fra.vertex_count", dt.vertex_count());
  CPS_TIMELINE_SAMPLE("core.fra.iteration", timeline_iteration);
  result.deployment.positions = std::move(selected);
  return result;
}

}  // namespace cps::core
