#include "core/fra.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/curvature.hpp"
#include "geometry/delaunay.hpp"
#include "graph/relay.hpp"
#include "numerics/rng.hpp"
#include "obs/obs.hpp"

namespace cps::core {
namespace {

/// One lattice position competing for selection.
struct Candidate {
  geo::Vec2 pos;
  double f_value = 0.0;     // Referential surface value (sensed once).
  double curvature = 0.0;   // |G| (filled only for curvature measures).
  int triangle = -1;        // Containing triangle in the evolving DT.
  double error = 0.0;       // Local error |f - DT| at pos.
  bool used = false;        // Already selected (or coincides with a vertex).
};

double interpolate_in(const geo::Delaunay& dt, int tri, geo::Vec2 p) {
  const auto& t = dt.triangle(tri);
  return geo::interpolate_linear(dt.triangle_geometry(tri),
                                 dt.vertex(t.v[0]).z, dt.vertex(t.v[1]).z,
                                 dt.vertex(t.v[2]).z, p);
}

}  // namespace

FraPlanner::FraPlanner(const FraConfig& config) : config_(config) {
  if (config.error_grid < 2) {
    throw std::invalid_argument("FraPlanner: error_grid < 2");
  }
  if (config.curvature_radius <= 0.0) {
    throw std::invalid_argument("FraPlanner: curvature_radius <= 0");
  }
}

Deployment FraPlanner::plan(const field::Field& reference,
                            const PlanRequest& request) {
  return plan_detailed(reference, request).deployment;
}

FraResult FraPlanner::plan_detailed(const field::Field& reference,
                                    const PlanRequest& request) {
  if (request.rc <= 0.0) throw std::invalid_argument("FRA: rc <= 0");
  FraResult result;
  if (request.k == 0) return result;

  CPS_TIMER("core.fra.plan_total");
  const num::Rect& region = request.region;
  geo::Delaunay dt(region);
  for (int c = 0; c < geo::Delaunay::kCorners; ++c) {
    dt.set_vertex_z(c, reference.value(dt.vertex(c).pos));
  }

  // Candidate lattice (the paper's sqrt(A) x sqrt(A) positions), bucketed
  // by containing triangle.
  const std::size_t n = config_.error_grid;
  std::vector<Candidate> candidates;
  candidates.reserve(n * n);
  const double dx = region.width() / static_cast<double>(n - 1);
  const double dy = region.height() / static_cast<double>(n - 1);
  {
    CPS_TIMER("core.fra.sense_lattice");
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t i = 0; i < n; ++i) {
        Candidate c;
        c.pos = {region.x0 + static_cast<double>(i) * dx,
                 region.y0 + static_cast<double>(j) * dy};
        c.f_value = reference.value(c.pos);
        candidates.push_back(c);
      }
    }
  }

  if (config_.measure == SelectionMeasure::kCurvature ||
      config_.measure == SelectionMeasure::kProduct) {
    CPS_TIMER("core.fra.curvature_pass");
    const CurvatureEstimator estimator(config_.curvature_radius);
    for (auto& c : candidates) {
      c.curvature = std::abs(estimator.gaussian_at(reference, c.pos));
    }
  }

  // Triangle -> candidate-index buckets; sized generously since each
  // insertion adds a bounded number of triangle slots.
  std::vector<std::vector<std::size_t>> buckets(dt.triangle_slots() +
                                                6 * request.k + 16);
  {
    CPS_TIMER("core.fra.initial_bucketing");
    for (std::size_t ci = 0; ci < candidates.size(); ++ci) {
      auto& c = candidates[ci];
      c.triangle = dt.locate(c.pos);
      c.error = std::abs(c.f_value - interpolate_in(dt, c.triangle, c.pos));
      buckets[static_cast<std::size_t>(c.triangle)].push_back(ci);
    }
  }
  // Lattice corners coincide with scaffolding vertices: error 0, but mark
  // them used so kRandom never wastes a node on them.
  for (std::size_t ci = 0; ci < candidates.size(); ++ci) {
    for (int v = 0; v < geo::Delaunay::kCorners; ++v) {
      if (geo::distance(candidates[ci].pos, dt.vertex(v).pos) < 1e-9) {
        candidates[ci].used = true;
      }
    }
  }

  num::Rng rng(config_.seed);
  std::vector<geo::Vec2> selected;
  selected.reserve(request.k);

  // Distance from each candidate to the nearest already-placed node,
  // maintained incrementally: the foresight step uses it to price a
  // candidate's worst-case connection cost in O(1).
  std::vector<double> dist_to_net(candidates.size(),
                                  std::numeric_limits<double>::infinity());
  const auto note_added = [&](geo::Vec2 p) {
    for (std::size_t ci = 0; ci < candidates.size(); ++ci) {
      dist_to_net[ci] =
          std::min(dist_to_net[ci], geo::distance(candidates[ci].pos, p));
    }
  };

  const auto place_relays = [&](std::size_t budget) {
    const graph::RelayPlan plan = graph::plan_relays(selected, request.rc);
    const std::size_t count = std::min(budget, plan.count);
    for (std::size_t r = 0; r < count; ++r) {
      const geo::Vec2 p = plan.positions[r];
      dt.insert(p, reference.value(p));
      selected.push_back(p);
      note_added(p);
      result.steps.push_back(FraStep{p, 0.0, true});
      ++result.relay_count;
    }
    CPS_COUNT("core.fra.relays_inserted", count);
    return count;
  };

  CPS_TIMER("core.fra.refine_loop");
  while (selected.size() < request.k) {
    CPS_COUNT("core.fra.iterations", 1);
    // Foresight (Table 1 lines 5-8): when the remaining budget is no more
    // than the relay count needed for connectivity, spend it on relays.
    // On top of the paper's trigger, candidate selection below only
    // considers positions whose worst-case connection cost (relays along
    // the straight line to the nearest placed node) still fits in the
    // post-selection budget — without this, one far-away max-error pick
    // can make connectivity unaffordable in a single step.
    std::size_t candidate_relay_budget = request.k;  // Unbounded pre-seed.
    if (config_.foresight && !selected.empty()) {
      const std::size_t remaining = request.k - selected.size();
      const graph::RelayPlan plan = graph::plan_relays(selected, request.rc);
      if (plan.count >= remaining) {
        CPS_COUNT("core.fra.foresight_triggers", 1);
        CPS_TRACE_INSTANT("core.fra.foresight_trigger");
        place_relays(remaining);
        break;
      }
      candidate_relay_budget = remaining - 1 - plan.count;
    }
    const auto affordable = [&](std::size_t ci) {
      if (!config_.foresight || selected.empty()) return true;
      if (dist_to_net[ci] <= request.rc) return true;
      return graph::relays_for_gap(dist_to_net[ci], request.rc) <=
             candidate_relay_budget;
    };

    // Select the best unused, affordable candidate under the measure.
    std::size_t best = candidates.size();
    if (config_.measure == SelectionMeasure::kRandom) {
      std::vector<std::size_t> unused;
      for (std::size_t ci = 0; ci < candidates.size(); ++ci) {
        if (!candidates[ci].used && affordable(ci)) unused.push_back(ci);
      }
      if (!unused.empty()) {
        best = unused[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(unused.size()) - 1))];
      }
    } else {
      double best_score = -1.0;
      for (std::size_t ci = 0; ci < candidates.size(); ++ci) {
        const auto& c = candidates[ci];
        if (c.used || !affordable(ci)) continue;
        double score = 0.0;
        switch (config_.measure) {
          case SelectionMeasure::kLocalError:
            score = c.error;
            break;
          case SelectionMeasure::kCurvature:
            score = c.curvature;
            break;
          case SelectionMeasure::kProduct:
            score = c.error * c.curvature;
            break;
          case SelectionMeasure::kRandom:
            break;  // Handled above.
        }
        if (score > best_score) {
          best_score = score;
          best = ci;
        }
      }
    }
    if (best == candidates.size()) {
      // No affordable candidate: connect what exists to free the budget,
      // then retry; a lattice with nothing left at all ends the plan.
      if (config_.foresight && !selected.empty() &&
          place_relays(request.k - selected.size()) > 0) {
        continue;
      }
      break;
    }

    Candidate& chosen = candidates[best];
    chosen.used = true;
    note_added(chosen.pos);
    const double score =
        config_.measure == SelectionMeasure::kLocalError ? chosen.error
        : config_.measure == SelectionMeasure::kCurvature
            ? chosen.curvature
        : config_.measure == SelectionMeasure::kProduct
            ? chosen.error * chosen.curvature
            : 0.0;
    selected.push_back(chosen.pos);
    result.steps.push_back(FraStep{chosen.pos, score, false});
    // Per-iteration trajectory the paper's Figs. 5-7 discussion is about:
    // the refinement error at the point just judged worst, and how the
    // triangulation grows around it.
    CPS_HIST("core.fra.selected_score", score);
    CPS_TRACE_COUNTER("core.fra.max_local_error", chosen.error);
    CPS_TRACE_COUNTER("core.fra.triangle_count", dt.triangle_count());

    const geo::InsertResult ins = dt.insert(chosen.pos, chosen.f_value);
    if (!ins.inserted) continue;  // Coincided with a vertex; z updated.

    // Garland-Heckbert update: only candidates whose triangle died need
    // re-location (among the fan of new triangles) and error refresh.
    if (buckets.size() < dt.triangle_slots()) {
      buckets.resize(dt.triangle_slots() * 2);
    }
    std::vector<std::size_t> displaced;
    for (const int dead : ins.removed_triangles) {
      auto& bucket = buckets[static_cast<std::size_t>(dead)];
      displaced.insert(displaced.end(), bucket.begin(), bucket.end());
      bucket.clear();
    }
    for (const std::size_t ci : displaced) {
      auto& c = candidates[ci];
      c.triangle = -1;
      for (const int fresh : ins.created_triangles) {
        if (dt.triangle_geometry(fresh).contains(c.pos)) {
          c.triangle = fresh;
          break;
        }
      }
      if (c.triangle == -1) {
        // Numerical corner case: the point sits exactly on the cavity
        // boundary; a full locate resolves it.
        c.triangle = dt.locate(c.pos);
      }
      c.error = std::abs(c.f_value - interpolate_in(dt, c.triangle, c.pos));
      buckets[static_cast<std::size_t>(c.triangle)].push_back(ci);
    }
    CPS_COUNT("core.fra.candidates_rebucketed", displaced.size());
  }

  CPS_GAUGE("core.fra.triangle_count", dt.triangle_count());
  CPS_GAUGE("core.fra.vertex_count", dt.vertex_count());
  result.deployment.positions = std::move(selected);
  return result;
}

}  // namespace cps::core
