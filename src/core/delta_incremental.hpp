// Cavity-local incremental δ (DeltaEngine::kIncremental's engine).
//
// The δ metric re-evaluated from scratch is an O(res²) lattice sweep, but
// a Bowyer–Watson event already reports exactly which triangles changed —
// and the rebuilt surface is untouched outside them.  IncrementalDelta
// keeps the full per-point state of one raster sweep (triangle
// assignment, strictness, |f - DT| contribution) plus per-chunk partial
// sums, consumes each insert/remove/move report, and re-evaluates only
// the lattice cells the report's triangles cover: O(changed area) per
// event instead of O(res²).
//
// Oracle protocol (DESIGN.md §13): after every applied event, value() is
// bit-identical to a fresh DeltaMetric::delta() of the same triangulation
// (kRaster, and therefore kWalk).  That holds because
//  * assignments are re-derived through the raster's own rules — a stored
//    strict assignment is kept only while its triangle is alive and still
//    strictly contains the point (strict containment is unique and
//    hint-independent), every other dirty point replays locate_from with
//    the exact hint the fresh sweep would carry (the previous point's
//    assignment in the captured chunk layout, -1 at a chunk head);
//  * non-strict (edge/vertex) points are re-walked on EVERY topology
//    event, dirty region or not — their assignment is hint-dependent, so
//    staleness is never allowed to accumulate through them;
//  * per-point contributions are interpolated through the raster phase-2
//    expression verbatim (core/delta_detail.hpp), and dirty chunks are
//    re-folded serially in point order, preserving the sum's rounding
//    sequence (float addition does not re-associate).
//
// The chunk layout (single chunk vs grain-4 row chunks) is captured from
// the telemetry/thread state at build; rebase() recaptures it.  Change
// the thread count or arm the timeline mid-stream and value() is
// comparing against a layout delta() no longer uses — rebase first.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/delta.hpp"
#include "field/field.hpp"
#include "geometry/delaunay.hpp"
#include "numerics/quadrature.hpp"

namespace cps::core {

/// Stateful cavity-local δ accumulator over one (metric, reference) pair.
/// Not thread-safe; apply events from the thread that owns the
/// triangulation, in the order they happened.
class IncrementalDelta {
 public:
  /// Cumulative work accounting (the bench_perf `delta.incremental`
  /// record and the ≥10× savings gate read these).
  struct Stats {
    std::size_t events = 0;              ///< Applied event reports.
    std::size_t points_reevaluated = 0;  ///< Lattice cells re-assigned/-interpolated.
    std::size_t rows_touched = 0;        ///< Lattice rows containing such cells.
    std::size_t keeps = 0;               ///< Dirty points whose assignment survived.
    std::size_t relocates = 0;           ///< Dirty points re-walked via locate_from.
    std::size_t rebuilds = 0;            ///< Full sweeps (construction + rebase).
    std::size_t retargets = 0;           ///< Reference swaps (fold-only passes).
    /// Lattice points one full sweep evaluates (res²): events *
    /// full_sweep_points is what the from-scratch path would have cost.
    std::size_t full_sweep_points = 0;
  };

  /// Builds the tracker with a full raster sweep of `dt` against
  /// `reference` on `metric`'s lattice.  The reference lattice is pinned
  /// through the metric's cache (shared with other evaluations of the
  /// same field).  The metric itself is not retained.
  IncrementalDelta(const DeltaMetric& metric, const field::Field& reference,
                   const geo::Delaunay& dt);

  /// Consumes one insertion report.  A structural insert re-rasters the
  /// created cavity; a duplicate-tolerance hit with z_changed re-folds
  /// the star (the PR's staleness bugfix — without the flag this event is
  /// invisible and the running δ silently drifts); a pure duplicate is a
  /// no-op.
  void apply(const geo::Delaunay& dt, const geo::InsertResult& r);

  /// Consumes one removal report (re-rasters the hole fan).
  void apply(const geo::Delaunay& dt, const geo::RemoveResult& r);

  /// Consumes one relocation report (re-rasters changed_triangles, which
  /// cover both the old star and the new cavity).
  void apply(const geo::Delaunay& dt, const geo::MoveResult& r);

  /// Consumes a batched z-update report: the union of the stars of every
  /// vertex whose z changed this step, as one event.  Topology untouched —
  /// assignments and hint chains stay valid; only the covered
  /// contributions re-interpolate.  CMA folds a whole slot's sensor
  /// refresh through this instead of one star event per node.
  void apply_z_updates(const geo::Delaunay& dt,
                       const std::vector<int>& star_triangles);

  /// Swaps the reference field without touching the triangulation state:
  /// pins the new reference lattice and re-folds every chunk from the
  /// stored per-point surface values — O(res²) additions, no point
  /// location and no interpolation.  The metric must have this tracker's
  /// region and resolution (throws std::invalid_argument otherwise).
  /// CMA's per-slot trajectory retargets when the reference slice
  /// advances.
  void retarget(const DeltaMetric& metric, const field::Field& reference);

  /// Full re-raster against a (possibly different) triangulation,
  /// recapturing the chunk layout.  Equivalence tests rebase to
  /// cross-check the from-scratch path; callers that changed the thread
  /// count or armed the timeline mid-stream must rebase too.
  void rebase(const geo::Delaunay& dt);

  /// The running δ: ascending fold of the chunk partial sums times the
  /// cell area — exactly DeltaMetric::delta()'s final arithmetic.
  double value() const noexcept;

  const Stats& stats() const noexcept { return stats_; }
  std::size_t resolution() const noexcept { return res_; }

 private:
  void rebuild(const geo::Delaunay& dt);
  /// Marks every lattice cell covered by `tris` dirty (epoch-stamped) and
  /// appends fresh indices to dirty_points_; returns rows touched.
  std::size_t mark_dirty(const geo::Delaunay& dt,
                         const std::vector<int>& tris);
  /// Re-assigns + re-interpolates the collected dirty points, then
  /// re-folds their chunks.  `reassign` is false for pure z-change events
  /// (topology untouched: assignments and hint chains are already what a
  /// fresh sweep would produce).
  void process_dirty(const geo::Delaunay& dt, bool reassign);
  bool chunk_first(std::size_t k) const noexcept;
  std::size_t chunk_of(std::size_t k) const noexcept;
  void refold_chunk(std::size_t c);

  num::Rect region_;
  std::size_t res_ = 0;
  num::MidpointLattice lat_;
  std::shared_ptr<const std::vector<double>> ref_rows_;
  bool chunked_ = false;
  std::size_t chunk_rows_ = 0;  ///< Rows per chunk (res_ when unchunked).

  std::vector<int> assign_;        ///< Point -> containing triangle id.
  std::vector<char> strict_;       ///< Point strictly inside assign_?
  /// DT(p) at the point (raster phase-2 bits, degenerate guard applied).
  /// Stored instead of |ref - DT| so a reference swap is fold-only.
  std::vector<double> interp_;
  std::vector<double> chunk_sums_; ///< Serial point-order |ref-DT| fold.
  /// Sorted indices of the non-strict points (re-walked every topology
  /// event; typically O(res) edge crossings).
  std::vector<std::uint32_t> fallback_;

  // Epoch-stamped dirty scratch (avoids clearing res² flags per event).
  std::vector<std::uint32_t> point_epoch_;
  std::vector<std::uint32_t> row_epoch_;
  std::vector<std::uint32_t> chunk_epoch_;
  std::uint32_t epoch_ = 0;
  std::vector<std::uint32_t> dirty_points_;

  Stats stats_;
};

}  // namespace cps::core
