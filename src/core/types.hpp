// Shared value types of the core library.
#pragma once

#include <vector>

#include "geometry/vec2.hpp"

namespace cps::core {

/// One environment measurement: where it was taken and the sensed value.
struct Sample {
  geo::Vec2 position;
  double z = 0.0;
};

/// A planned deployment: the k node positions a planner selected.
struct Deployment {
  std::vector<geo::Vec2> positions;

  std::size_t size() const noexcept { return positions.size(); }
  bool empty() const noexcept { return positions.empty(); }
};

}  // namespace cps::core
