// Local curvature estimation (Section 5.2).
//
// A CPS node can sense the environment on the m = ~floor(pi Rs^2) lattice
// positions inside its sensing disk.  From those samples it estimates the
// local quadric z = a x^2 + b x y + c y^2 by least squares (Eqn. 11); the
// principal curvatures are g1,2 = a + c -/+ sqrt((a-c)^2 + b^2)
// (Eqns. 12-13) and the Gaussian curvature is G = g1 * g2.
//
// SensingPatch encapsulates one such sensing action: which lattice points
// fall in the disk, what the node measured there, the fitted quadric, and
// the highest-curvature position inside the disk (the target of the F1
// attraction force).  Curvature at non-centre lattice points is estimated
// by finite differences on the lattice, which equals the quadric-fit value
// for quadratic surfaces and stays strictly local (no data beyond Rs).
#pragma once

#include <optional>
#include <vector>

#include "core/types.hpp"
#include "field/field.hpp"
#include "numerics/least_squares.hpp"
#include "numerics/quadrature.hpp"

namespace cps::core {

/// One sensing action of a node over its disk.
class SensingPatch {
 public:
  /// Senses `f` on the spacing-pitched lattice inside the disk of
  /// `radius` around `center`.  Throws std::invalid_argument when radius
  /// or spacing is <= 0 or the disk holds fewer than 3 lattice points.
  SensingPatch(const field::Field& f, geo::Vec2 center, double radius,
               double spacing = 1.0);

  geo::Vec2 center() const noexcept { return center_; }
  double radius() const noexcept { return radius_; }
  double spacing() const noexcept { return spacing_; }

  /// The m sensed samples (lattice points inside the disk).
  const std::vector<Sample>& samples() const noexcept { return samples_; }
  std::size_t sample_count() const noexcept { return samples_.size(); }

  /// Least-squares quadric centred on the node (Eqn. 11).
  const num::QuadricFit& quadric() const noexcept { return fit_; }

  /// Gaussian curvature at the node, G = g1 * g2.
  double gaussian() const noexcept { return fit_.gaussian(); }

  /// The highest-|G| position inside the disk and its curvature magnitude;
  /// std::nullopt when no interior lattice point has a full finite-
  /// difference stencil (tiny disks).
  struct Peak {
    geo::Vec2 position;
    double gaussian_abs = 0.0;
  };
  std::optional<Peak> peak_curvature() const noexcept { return peak_; }

  /// Mean |G| over lattice points with a full stencil; 0 when none.  Used
  /// to normalise curvature weights in the force balance (see
  /// core/forces.hpp).
  double mean_abs_gaussian() const noexcept { return mean_abs_gaussian_; }

  /// RMS residual of the quadric fit over the sensed samples — how well
  /// the local surface actually is a quadric.  Large residuals mean the
  /// curvature estimate (and the forces derived from it) is extrapolating.
  double rms_residual() const noexcept { return rms_residual_; }

 private:
  geo::Vec2 center_;
  double radius_;
  double spacing_;
  std::vector<Sample> samples_;
  num::QuadricFit fit_;
  std::optional<Peak> peak_;
  double mean_abs_gaussian_ = 0.0;
  double rms_residual_ = 0.0;
};

/// Region-level curvature queries against a known field — the centralised
/// counterpart of SensingPatch, used by the CWD reference solver (Fig. 3)
/// and the FRA curvature-selection ablation.
class CurvatureEstimator {
 public:
  /// Throws std::invalid_argument when radius or spacing <= 0.
  explicit CurvatureEstimator(double sensing_radius, double spacing = 1.0);

  double sensing_radius() const noexcept { return radius_; }

  /// Quadric fit of `f` centred at p.
  num::QuadricFit fit_at(const field::Field& f, geo::Vec2 p) const;

  /// Gaussian curvature of `f` at p.
  double gaussian_at(const field::Field& f, geo::Vec2 p) const;

  /// |G| rasterised over a region lattice (nx * ny values, row-major).
  std::vector<double> abs_gaussian_grid(const field::Field& f,
                                        const num::Rect& region,
                                        std::size_t nx, std::size_t ny) const;

 private:
  double radius_;
  double spacing_;
};

}  // namespace cps::core
