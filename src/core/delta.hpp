// The delta quality metric (Theorem 3.1).
//
// delta(V(z), V(z*)) = integral over A of |f(x, y) - DT(x, y)| dx dy:
// the volume between the referential surface and the rebuilt surface.
// Smaller is better; 0 means the rebuilt surface matches exactly.
#pragma once

#include <cstddef>
#include <span>

#include "core/reconstruction.hpp"
#include "core/types.hpp"
#include "field/field.hpp"
#include "geometry/delaunay.hpp"
#include "numerics/quadrature.hpp"

namespace cps::core {

/// Evaluates delta by midpoint quadrature on a fixed evaluation grid.
/// The paper evaluates on the sqrt(A) x sqrt(A) lattice (100 x 100 for the
/// GreenOrbs window); `resolution` is that lattice density per axis.
class DeltaMetric {
 public:
  /// Throws std::invalid_argument for an empty region or zero resolution.
  DeltaMetric(const num::Rect& region, std::size_t resolution = 100);

  const num::Rect& region() const noexcept { return region_; }
  std::size_t resolution() const noexcept { return resolution_; }

  /// Volume between the referential field and a rebuilt surface.
  double delta(const field::Field& reference, const geo::Delaunay& dt) const;

  /// Convenience: reconstructs from samples first, then measures.  The
  /// corner policy chooses the reconstruction's scaffolding values: OSD
  /// evaluations pass kFieldValue (the historical referential surface is
  /// known by assumption — the paper's own initial triangulation carries
  /// f-valued corners), OSTD evaluations keep the default kNearestSample
  /// (a mobile deployment has no reference).
  double delta_from_samples(const field::Field& reference,
                            std::span<const Sample> samples,
                            CornerPolicy policy =
                                CornerPolicy::kNearestSample) const;

  /// Convenience: senses `reference` at `positions`, reconstructs, and
  /// measures — the full pipeline a deployment would run.
  double delta_of_deployment(const field::Field& reference,
                             std::span<const geo::Vec2> positions,
                             CornerPolicy policy =
                                 CornerPolicy::kNearestSample) const;

  /// Volume between two arbitrary fields (used to compare interpolators).
  double delta_between(const field::Field& a, const field::Field& b) const;

  /// Normalises a delta to the mean absolute error per unit area, which is
  /// easier to eyeball than raw volume.
  double mean_abs_error(double delta_value) const noexcept;

 private:
  num::Rect region_;
  std::size_t resolution_;
};

}  // namespace cps::core
