// The delta quality metric (Theorem 3.1).
//
// delta(V(z), V(z*)) = integral over A of |f(x, y) - DT(x, y)| dx dy:
// the volume between the referential surface and the rebuilt surface.
// Smaller is better; 0 means the rebuilt surface matches exactly.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "core/reconstruction.hpp"
#include "core/types.hpp"
#include "field/field.hpp"
#include "geometry/delaunay.hpp"
#include "numerics/quadrature.hpp"

namespace cps::core {

/// How delta() assigns evaluation-lattice points to triangles.
///
/// kRaster (default) scan-converts each alive triangle into lattice-row
/// spans once, assigns strictly-interior points directly from the span
/// candidates, and falls back to the remembering walk — seeded with the
/// exact hint the walk engine would have at that point — for points on
/// edges or vertices.  A strictly interior point has a unique containing
/// triangle and locate_from returns closed containment for any hint, so
/// assignments (and the accumulated delta) are bit-identical to kWalk.
/// kWalk runs locate_from on every lattice point and stays compiled in as
/// the equivalence oracle, mirroring FraConfig::selection_engine.
///
/// kIncremental evaluates through core/delta_incremental.hpp's stateful
/// tracker: delta() builds the tracker from scratch (bit-identical to
/// kRaster by the oracle protocol, DESIGN.md §13); the O(changed area)
/// savings come from holding an IncrementalDelta across triangulation
/// events — FRA's refinement loop and CMA's per-slot trajectory do.
enum class DeltaEngine { kWalk, kRaster, kIncremental };

/// Evaluates delta by midpoint quadrature on a fixed evaluation grid.
/// The paper evaluates on the sqrt(A) x sqrt(A) lattice (100 x 100 for the
/// GreenOrbs window); `resolution` is that lattice density per axis.
class DeltaMetric {
 public:
  /// Reference-lattice LRU entries held by default; one entry is
  /// resolution^2 doubles (80 KB at the canonical 100 x 100 lattice).
  static constexpr std::size_t kDefaultReferenceCacheCapacity = 8;

  /// Throws std::invalid_argument for an empty region or zero resolution.
  DeltaMetric(const num::Rect& region, std::size_t resolution = 100);
  ~DeltaMetric();

  /// Copies share nothing: the copy starts with the same configuration
  /// (engine, cache capacity) but an empty reference cache.
  DeltaMetric(const DeltaMetric& other);
  DeltaMetric& operator=(const DeltaMetric& other);
  DeltaMetric(DeltaMetric&&) noexcept;
  DeltaMetric& operator=(DeltaMetric&&) noexcept;

  const num::Rect& region() const noexcept { return region_; }
  std::size_t resolution() const noexcept { return resolution_; }

  DeltaEngine engine() const noexcept { return engine_; }
  void set_engine(DeltaEngine engine) noexcept { engine_ = engine; }

  /// Memoization of the reference field's midpoint lattice, keyed by the
  /// field's content_key(): sweeps that evaluate many deployments against
  /// the same frame (fig7 / fig10) sample the reference once.  FieldSlice
  /// references fold the slice time into their key, so fresh slice
  /// temporaries of the same frame hit.  On by default
  /// (kDefaultReferenceCacheCapacity): content keys are never recycled —
  /// parameter hashes for the analytic zoo, never-reused instance ids (plus
  /// a mutation counter) elsewhere — so a destroyed field's cache entry can
  /// never be served to an unrelated field, unlike the PR 5 address-keyed
  /// cache this replaces.  Cached rows are the same bits value_row
  /// produces, so results are unchanged.  `max_entries` caps the LRU entry
  /// count; 0 disables caching.
  void set_reference_cache_capacity(std::size_t max_entries);
  std::size_t reference_cache_capacity() const noexcept;
  /// Entries currently held (for tests / benches), summed over shards.
  std::size_t reference_cache_size() const;
  void clear_reference_cache();

  /// Thread-safe shared mode (PlannerService): splits the cache's key
  /// space over `shards` independently locked LRU lists so concurrent
  /// queries on different fields do not serialise on one mutex.  1 (the
  /// default) is the original single-mutex cache; in sharded mode
  /// `max_entries` applies per shard.  Cached bits are unchanged —
  /// sharding only changes lock granularity and eviction locality.
  /// Clears the cache; configure before sharing the metric across
  /// threads (not safe against concurrent lookups).  Throws on 0.
  void set_reference_cache_shards(std::size_t shards);
  std::size_t reference_cache_shards() const noexcept;

  /// Volume between the referential field and a rebuilt surface.
  double delta(const field::Field& reference, const geo::Delaunay& dt) const;

  /// The reference field sampled over this metric's midpoint lattice
  /// (row-major, resolution² doubles) — served from the reference cache
  /// when enabled, built fresh otherwise; the same bits value_row
  /// produces either way.  The incremental engine keeps one of these
  /// pinned for its running |f - DT| folds.
  std::shared_ptr<const std::vector<double>> reference_lattice(
      const field::Field& reference) const;

  /// Convenience: reconstructs from samples first, then measures.  The
  /// corner policy chooses the reconstruction's scaffolding values: OSD
  /// evaluations pass kFieldValue (the historical referential surface is
  /// known by assumption — the paper's own initial triangulation carries
  /// f-valued corners), OSTD evaluations keep the default kNearestSample
  /// (a mobile deployment has no reference).
  double delta_from_samples(const field::Field& reference,
                            std::span<const Sample> samples,
                            CornerPolicy policy =
                                CornerPolicy::kNearestSample) const;

  /// Convenience: senses `reference` at `positions`, reconstructs, and
  /// measures — the full pipeline a deployment would run.
  double delta_of_deployment(const field::Field& reference,
                             std::span<const geo::Vec2> positions,
                             CornerPolicy policy =
                                 CornerPolicy::kNearestSample) const;

  /// Volume between two arbitrary fields (used to compare interpolators).
  double delta_between(const field::Field& a, const field::Field& b) const;

  /// Normalises a delta to the mean absolute error per unit area, which is
  /// easier to eyeball than raw volume.
  double mean_abs_error(double delta_value) const noexcept;

 private:
  struct RefCache;

  double delta_walk(const field::Field& reference, const geo::Delaunay& dt,
                    const num::MidpointLattice& lat,
                    const double* ref_lattice) const;
  double delta_raster(const field::Field& reference, const geo::Delaunay& dt,
                      const num::MidpointLattice& lat,
                      const double* ref_lattice) const;
  /// Cache lookup/fill; returns null when caching is off (the caller then
  /// samples the reference row by row).  The returned buffer is pinned by
  /// the shared_ptr against concurrent LRU eviction.
  std::shared_ptr<const std::vector<double>> cached_reference_lattice(
      const field::Field& reference, const num::MidpointLattice& lat) const;

  num::Rect region_;
  std::size_t resolution_;
  DeltaEngine engine_ = DeltaEngine::kRaster;
  std::unique_ptr<RefCache> cache_;
};

}  // namespace cps::core
