// Immutable, refcounted field snapshots for concurrent queries.
//
// A PlannerService job cannot borrow a caller's field by reference: the
// caller may destroy it while the job is still queued.  A FieldSnapshot
// pins the field through a shared_ptr and freezes its content key at
// capture, so thousands of in-flight queries share one field object —
// and, through DeltaMetric's content-keyed reference cache, one sampled
// reference lattice.
//
// Immutability contract: the wrapped field must not be mutated while a
// snapshot of it is alive.  The snapshot's key() is the content_key at
// capture; a mutation would bump the live field's key (mutable fields
// fold a mutation counter in, see field/field.hpp) and silently diverge
// from the frozen one, so the service's snapshot interning and the
// metric's cache would disagree about identity.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <utility>

#include "field/field.hpp"

namespace cps::core {

class FieldSnapshot {
 public:
  explicit FieldSnapshot(std::shared_ptr<const field::Field> field)
      : field_(std::move(field)) {
    if (field_ == nullptr) {
      throw std::invalid_argument("FieldSnapshot: null field");
    }
    key_ = field_->content_key();
  }

  const field::Field& field() const noexcept { return *field_; }
  const std::shared_ptr<const field::Field>& shared_field() const noexcept {
    return field_;
  }

  /// The field's content key, frozen at capture (see field/field.hpp:
  /// parameter hashes for the analytic zoo, never-reused instance ids
  /// elsewhere).  The service interns snapshots by this key.
  std::uint64_t key() const noexcept { return key_; }

 private:
  std::shared_ptr<const field::Field> field_;
  std::uint64_t key_ = 0;
};

using FieldSnapshotPtr = std::shared_ptr<const FieldSnapshot>;

}  // namespace cps::core
