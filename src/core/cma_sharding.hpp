// Spatial sharding of the CMA slot loop (tiles + ghost rings).
//
// Every CMA interaction is limited-range: sensing reads a disk of radius
// Rs, the radio reaches Rc.  ShardGrid exploits that locality the way the
// distributed coverage literature does (Cortés–Martínez–Bullo; the
// region-representation deployments of arXiv 0911.1379): the region is
// partitioned into tiles of side >= max(Rs, Rc); a tile *owns* the nodes
// whose positions fall inside it and additionally sees a *ghost ring* —
// the neighbouring tiles' nodes within `ghost_width` of its rectangle.
// Since ghost_width >= Rc and the tile side >= ghost_width, every radio
// interaction of an owned node is covered by the tile's own nodes plus
// its 3x3 neighbourhood's ghosts: tiles never need state from further
// away, which is what makes the per-tile work embarrassingly parallel.
//
// Per slot, prepare() (a) reassigns ownership from the current positions
// — a node that crossed a tile edge simply lands in its new tile
// (*migration*, counted, no handshake needed because ownership is
// recomputed from scratch each slot), and (b) runs the *matching* pass:
// for each owned, living sender it computes the exact ascending-id list
// of living receivers within the link radius, using a per-tile
// par::SpatialHash over the tile's candidate set when it is large enough
// to pay for one.  The match is computed once per slot and reused by both
// bus rounds (beacon and tell) — positions are frozen within a slot.
//
// Determinism: ownership is a pure function of position (ties on tile
// edges break toward the lower-index tile via floor + clamp); owned lists
// are built by a counting sort over ascending node ids; candidate lists
// are sorted into ascending id order before matching; and per-tile
// results are folded in ascending tile order.  The per-sender receiver
// lists are therefore independent of the thread count and — fed through
// MessageBus::step_matched, which commits them serially in broadcast
// order — reproduce the unsharded delivery bit-for-bit (see the
// matched-delivery contract in net/link_model.hpp).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "geometry/vec2.hpp"
#include "net/link_model.hpp"
#include "numerics/quadrature.hpp"
#include "parallel/spatial_hash.hpp"

namespace cps::core {

class ShardGrid {
 public:
  /// Tiles `region` with sides >= max(tile_size, ghost_width) (both > 0,
  /// std::invalid_argument otherwise).  The actual side stretches so an
  /// integral number of tiles covers the region exactly; ghost_width must
  /// be >= the link radius used at prepare() time.
  ShardGrid(const num::Rect& region, double tile_size, double ghost_width);

  /// Rebuilds ownership (counting migrations) and the per-sender receiver
  /// lists for this slot's positions/liveness.  Tile matching runs on the
  /// process thread pool; results are thread-count independent.  Throws
  /// std::logic_error if link.radius() exceeds the ghost width — the ring
  /// would no longer cover the radio disk.
  void prepare(std::span<const geo::Vec2> positions,
               std::span<const char> alive, const net::LinkModel& link);

  /// Living in-range receivers (ascending ids, self excluded) of the last
  /// prepare()'s matching for sender `from` — the exact set and order the
  /// unsharded bus would have delivered-or-lost to.  Valid until the next
  /// prepare().
  std::span<const net::NodeId> receivers_of(net::NodeId from) const {
    const Tile& tile = tiles_[node_tile_[from]];
    return {tile.pairs.data() + recv_start_[from], recv_count_[from]};
  }

  std::size_t tile_count() const noexcept { return tiles_.size(); }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t rows() const noexcept { return rows_; }
  double ghost_width() const noexcept { return ghost_; }

  /// Node ids owned by `tile` after the last prepare(), ascending.  The
  /// per-tile compute phases iterate these; dead nodes are included
  /// (ownership is positional) and filtered by the phase bodies.
  std::span<const std::uint32_t> owned(std::size_t tile) const {
    return {owned_ids_.data() + owned_starts_[tile],
            owned_ids_.data() + owned_starts_[tile + 1]};
  }

  /// Nodes whose owning tile changed in the last prepare() (0 on the
  /// first).
  std::size_t last_migrations() const noexcept { return last_migrations_; }
  /// Ghost-ring entries exchanged between tiles in the last prepare().
  std::size_t last_ghosts() const noexcept { return last_ghosts_; }
  /// Matched (sender, receiver) pairs in the last prepare().
  std::size_t last_pairs() const noexcept { return last_pairs_; }

 private:
  struct Tile {
    /// Living own + ghost node ids visible to this tile, ascending.
    std::vector<std::uint32_t> candidates;
    std::vector<geo::Vec2> cand_pos;  ///< candidates' positions, aligned.
    /// Concatenated receiver lists of this tile's owned senders.
    std::vector<net::NodeId> pairs;
    std::optional<par::SpatialHash> hash;  ///< Over cand_pos when large.
    std::vector<std::uint32_t> scratch;    ///< Hash query scratch.
    std::size_t ghost_count = 0;
  };

  std::size_t tile_of(geo::Vec2 p) const noexcept;
  num::Rect tile_rect(std::size_t t) const noexcept;
  void match_tile(std::size_t t, std::span<const geo::Vec2> positions,
                  std::span<const char> alive, double radius);

  num::Rect region_;
  double ghost_ = 0.0;
  double sx_ = 1.0, sy_ = 1.0;  ///< Actual tile sides (>= requested).
  std::size_t cols_ = 1, rows_ = 1;
  std::vector<Tile> tiles_;
  std::vector<std::uint32_t> node_tile_;  ///< Owning tile per node.
  std::vector<std::uint32_t> prev_tile_;  ///< Last slot's, for migrations.
  std::vector<std::uint32_t> owned_starts_;  ///< CSR offsets, tiles + 1.
  std::vector<std::uint32_t> owned_ids_;     ///< Ids grouped by tile.
  /// Per-sender slice of its tile's pair buffer.
  std::vector<std::uint32_t> recv_start_;
  std::vector<std::uint32_t> recv_count_;
  std::size_t last_migrations_ = 0;
  std::size_t last_ghosts_ = 0;
  std::size_t last_pairs_ = 0;
};

}  // namespace cps::core
