#include "core/planner.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "numerics/rng.hpp"

namespace cps::core {

Deployment RandomPlanner::plan(const field::Field& /*reference*/,
                               const PlanRequest& request) {
  num::Rng rng(request.seed != 0 ? request.seed : seed_);
  Deployment d;
  d.positions.reserve(request.k);
  for (std::size_t i = 0; i < request.k; ++i) {
    d.positions.push_back({rng.uniform(request.region.x0, request.region.x1),
                           rng.uniform(request.region.y0, request.region.y1)});
  }
  return d;
}

FarthestPointPlanner::FarthestPointPlanner(std::size_t lattice)
    : lattice_(lattice) {
  if (lattice < 2) {
    throw std::invalid_argument("FarthestPointPlanner: lattice < 2");
  }
}

Deployment FarthestPointPlanner::plan(const field::Field& /*reference*/,
                                      const PlanRequest& request) {
  Deployment d;
  if (request.k == 0) return d;
  const std::size_t lattice = request.lattice != 0 ? request.lattice : lattice_;
  if (lattice < 2) {
    throw std::invalid_argument("FarthestPointPlanner: request lattice < 2");
  }
  // Candidate lattice over the region.
  std::vector<geo::Vec2> candidates;
  candidates.reserve(lattice * lattice);
  const double dx =
      request.region.width() / static_cast<double>(lattice - 1);
  const double dy =
      request.region.height() / static_cast<double>(lattice - 1);
  for (std::size_t j = 0; j < lattice; ++j) {
    for (std::size_t i = 0; i < lattice; ++i) {
      candidates.push_back({request.region.x0 + static_cast<double>(i) * dx,
                            request.region.y0 + static_cast<double>(j) * dy});
    }
  }
  // Start at the region centre, then grow greedily by max-min distance,
  // maintained incrementally.
  d.positions.push_back({request.region.x0 + request.region.width() / 2.0,
                         request.region.y0 + request.region.height() / 2.0});
  std::vector<double> nearest(candidates.size());
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    nearest[c] = geo::distance_sq(candidates[c], d.positions.front());
  }
  while (d.positions.size() < request.k) {
    std::size_t best = 0;
    for (std::size_t c = 1; c < candidates.size(); ++c) {
      if (nearest[c] > nearest[best]) best = c;
    }
    if (nearest[best] <= 0.0) break;  // Lattice exhausted.
    d.positions.push_back(candidates[best]);
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      nearest[c] = std::min(
          nearest[c], geo::distance_sq(candidates[c], candidates[best]));
    }
  }
  return d;
}

Deployment GridPlanner::make_grid(const num::Rect& region, std::size_t k) {
  Deployment d;
  if (k == 0) return d;
  const auto cols = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(k))));
  const std::size_t rows = (k + cols - 1) / cols;
  const double dx = region.width() / static_cast<double>(cols);
  const double dy = region.height() / static_cast<double>(rows);
  d.positions.reserve(k);
  for (std::size_t r = 0; r < rows && d.positions.size() < k; ++r) {
    for (std::size_t c = 0; c < cols && d.positions.size() < k; ++c) {
      d.positions.push_back(
          {region.x0 + (static_cast<double>(c) + 0.5) * dx,
           region.y0 + (static_cast<double>(r) + 0.5) * dy});
    }
  }
  return d;
}

Deployment GridPlanner::plan(const field::Field& /*reference*/,
                             const PlanRequest& request) {
  return make_grid(request.region, request.k);
}

}  // namespace cps::core
