// Virtual forces (Section 5.2, Eqns. 14-18).
//
// Three forces steer a mobile node:
//   F1  attraction toward the highest-curvature position pc inside the
//       sensing disk:            F1 = d(ni, pc) * G(pc)           (Eqn. 14)
//   F2  attraction toward the curvature-weighted pivot of the single-hop
//       neighbours:              F2 = sum_j d(ni, nj) * G(nj)     (Eqn. 15)
//   Fr  repulsion keeping spacing:
//                                Fr = sum_j (Rc - d(ni, nj)) u_ij (Eqn. 17)
// and the resultant              Fs = Fa + beta * Fr              (Eqn. 18).
//
// Two clarifications the paper leaves implicit (documented in DESIGN.md):
//   * Curvature "weights" use |G| — Gaussian curvature is negative at
//     saddles, and a saddle is as information-rich as a dome.
//   * Fr's summand is given as a scalar in the paper; the repulsion acts
//     along the neighbour->node direction (u_ij above), which is the
//     standard virtual-force construction the paper cites [21].
//   * Curvature weights are normalised by the locally observed mean |G|
//     (scale-invariance): Eqn. 9's balance is unaffected, and beta keeps a
//     consistent meaning across environments whose curvature magnitudes
//     differ by orders of magnitude.
#pragma once

#include <optional>
#include <span>

#include "geometry/vec2.hpp"

namespace cps::core {

/// What a node knows about one single-hop neighbour (from its beacon).
struct NeighborInfo {
  geo::Vec2 position;
  double gaussian_abs = 0.0;  ///< |G| the neighbour reported.
};

/// What a node knows about the curvature peak in its own sensing disk.
struct PeakInfo {
  geo::Vec2 position;
  double gaussian_abs = 0.0;
};

/// Force-model parameters.
struct ForceConfig {
  double rc = 10.0;     ///< Communication radius (repulsion reach).
  double beta = 2.0;    ///< Eqn. 18 weight of repulsion vs attraction.
  /// Repulsion acts within equilibrium * rc instead of rc itself, so the
  /// relaxed spacing sits strictly inside communication range.  Links then
  /// carry slack ((1 - equilibrium) * rc) that absorbs per-slot motion —
  /// with the paper's literal Eqn. 17 the equilibrium pitch equals Rc and
  /// every link teeters on the break-point (see DESIGN.md).
  double repulsion_equilibrium = 0.9;
  /// Multiplies the (normalised) attraction Fa = F1 + F2 before combining
  /// with repulsion.  Normalising curvature weights to mean ~1 makes
  /// attraction O(distance), which at gain 1 overwhelms repulsion and
  /// collapses the swarm onto the curvature features; the paper's dynamics
  /// (Fig. 9: nodes "barely move" once balanced) are repulsion-dominated
  /// with curvature *modulation*.  The pairwise equilibrium spacing is
  /// roughly beta * equilibrium * rc / (gain * w + beta) for local weight
  /// w, so higher-curvature neighbourhoods pack denser, as Eqn. 9 wants.
  double attraction_gain = 0.25;
  /// Normalise curvature weights by the local mean |G|; when false the raw
  /// |G| values are used (ablation knob).
  bool normalize_curvature = true;
  /// Floor for the normaliser so flat neighbourhoods (mean |G| ~ 0) do not
  /// blow attraction up; relative to the normaliser itself.
  double normalizer_floor = 1e-12;
};

/// All force components for one node in one slot.
struct ForceBreakdown {
  geo::Vec2 f1;  ///< Peak attraction (Eqn. 14).
  geo::Vec2 f2;  ///< Neighbour pivot attraction (Eqn. 15).
  geo::Vec2 fr;  ///< Repulsion (Eqn. 17).
  geo::Vec2 fs;  ///< Resultant (Eqn. 18).
};

/// Eqn. 14.  `weight_scale` multiplies the curvature weight (the
/// normaliser); pass 1.0 for raw weights.
geo::Vec2 peak_attraction(geo::Vec2 node, const PeakInfo& peak,
                          double weight_scale) noexcept;

/// Eqn. 15 over the neighbour table.
geo::Vec2 neighbor_attraction(geo::Vec2 node,
                              std::span<const NeighborInfo> neighbors,
                              double weight_scale) noexcept;

/// Eqn. 17: only neighbours inside rc repel (others are not single-hop).
geo::Vec2 repulsion(geo::Vec2 node, std::span<const NeighborInfo> neighbors,
                    double rc) noexcept;

/// Full Eqn. 18 evaluation.  `local_mean_abs_gaussian` is the node's own
/// estimate of the curvature scale (SensingPatch::mean_abs_gaussian); it
/// feeds the weight normaliser together with neighbour reports.
ForceBreakdown compute_forces(geo::Vec2 node,
                              const std::optional<PeakInfo>& peak,
                              std::span<const NeighborInfo> neighbors,
                              double local_mean_abs_gaussian,
                              const ForceConfig& config) noexcept;

}  // namespace cps::core
