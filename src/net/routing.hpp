// Data-collection routing over a deployed network.
//
// The paper requires the deployment to be a connected network "for data
// transmission" but never models the transmission itself.  This module
// closes that loop: a convergecast tree rooted at a sink (the classic WSN
// collection structure), with the per-round cost model that lets the
// benches/examples report what a deployment's topology actually costs to
// operate — one transmission per node per round, each sample travelling
// hop-count hops toward the sink.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "graph/geometric_graph.hpp"

namespace cps::net {

/// A shortest-path (BFS) collection tree over a disk graph.
class CollectionTree {
 public:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  /// Builds the tree rooted at `sink` (a node index of `g`).  Nodes
  /// unreachable from the sink have parent() == kNone and are reported by
  /// unreachable_count().  Throws std::out_of_range for a bad sink.
  CollectionTree(const graph::GeometricGraph& g, std::size_t sink);

  std::size_t sink() const noexcept { return sink_; }
  std::size_t node_count() const noexcept { return parent_.size(); }

  /// Parent toward the sink (kNone for the sink itself and for
  /// unreachable nodes).
  std::size_t parent(std::size_t node) const { return parent_.at(node); }

  /// Hop distance to the sink (kNone when unreachable, 0 for the sink).
  std::size_t hops(std::size_t node) const { return hops_.at(node); }

  std::size_t unreachable_count() const noexcept { return unreachable_; }

  /// Longest hop path in the tree (collection latency in slots).
  std::size_t depth() const noexcept { return depth_; }

  /// Total transmissions for one collection round in which every
  /// reachable node reports one sample to the sink (sum of hop counts) —
  /// the standard energy proxy for convergecast.
  std::size_t transmissions_per_round() const noexcept {
    return total_hops_;
  }

  /// Number of tree children per node; the sink's subtree loads identify
  /// bottleneck relays.
  std::size_t subtree_size(std::size_t node) const {
    return subtree_.at(node);
  }

 private:
  std::size_t sink_;
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> hops_;
  std::vector<std::size_t> subtree_;
  std::size_t unreachable_ = 0;
  std::size_t depth_ = 0;
  std::size_t total_hops_ = 0;
};

/// Picks the sink minimising (unreachable_count, transmissions_per_round)
/// lexicographically — where a basestation should sit on an already-fixed
/// deployment, never trading reachability for cheaper rounds.  Throws
/// std::invalid_argument for an empty graph.
std::size_t best_sink(const graph::GeometricGraph& g);

/// Tracks convergecast health across mid-run churn: each slot the caller
/// hands it the current survivor disk graph, and the monitor rebuilds the
/// collection tree (rooted at the surviving node nearest the fixed
/// basestation position — the sink re-homes when its host dies) and
/// detects partition/recovery transitions.  A "recovery" is the slot span
/// from the first observation with unreachable survivors to the first
/// observation where every survivor is reachable again; durations are
/// recorded in the obs histogram `net.routing.recovery_slots`.
class RecoveryMonitor {
 public:
  /// `sink_position` is where the basestation physically sits; the tree
  /// roots at whichever survivor is closest to it each slot.
  explicit RecoveryMonitor(geo::Vec2 sink_position);

  /// Rebuilds the tree over this slot's survivor graph (indices are the
  /// caller's survivor indices, not stable node ids) and updates outage
  /// bookkeeping.  Slots must be observed in increasing order.  Throws
  /// std::invalid_argument for an empty graph.
  const CollectionTree& observe(const graph::GeometricGraph& alive_graph,
                                std::size_t slot);

  /// One completed partition-to-recovery episode.
  struct Recovery {
    std::size_t outage_slot = 0;    ///< First slot with unreachable nodes.
    std::size_t recovered_slot = 0; ///< First fully-reachable slot after.
    std::size_t slots = 0;          ///< recovered_slot - outage_slot.
  };

  const std::vector<Recovery>& recoveries() const noexcept {
    return recoveries_;
  }

  /// True while an outage is open (survivors currently partitioned).
  bool in_outage() const noexcept { return outage_start_.has_value(); }

  /// The tree built by the last observe() (nullptr before the first).
  const CollectionTree* tree() const noexcept {
    return tree_ ? &*tree_ : nullptr;
  }

 private:
  std::size_t pick_sink(const graph::GeometricGraph& g) const;

  geo::Vec2 sink_position_;
  std::optional<CollectionTree> tree_;
  std::optional<std::size_t> outage_start_;
  std::vector<Recovery> recoveries_;
};

}  // namespace cps::net
