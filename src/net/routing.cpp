#include "net/routing.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "obs/obs.hpp"

namespace cps::net {

CollectionTree::CollectionTree(const graph::GeometricGraph& g,
                               std::size_t sink)
    : sink_(sink),
      parent_(g.node_count(), kNone),
      hops_(g.node_count(), kNone),
      subtree_(g.node_count(), 1) {
  if (sink >= g.node_count()) {
    throw std::out_of_range("CollectionTree: sink index");
  }

  // BFS from the sink; parents point one hop closer to it.
  std::queue<std::size_t> frontier;
  hops_[sink] = 0;
  frontier.push(sink);
  std::vector<std::size_t> order;  // BFS order, for the subtree pass.
  order.reserve(g.node_count());
  while (!frontier.empty()) {
    const std::size_t u = frontier.front();
    frontier.pop();
    order.push_back(u);
    for (const std::size_t v : g.neighbors(u)) {
      if (hops_[v] == kNone) {
        hops_[v] = hops_[u] + 1;
        parent_[v] = u;
        frontier.push(v);
      }
    }
  }

  for (std::size_t i = 0; i < g.node_count(); ++i) {
    if (hops_[i] == kNone) {
      ++unreachable_;
      subtree_[i] = 0;
    } else {
      depth_ = std::max(depth_, hops_[i]);
      total_hops_ += hops_[i];
      if (i != sink) CPS_HIST("net.routing.hops", hops_[i]);
    }
  }
  CPS_COUNT("net.routing.trees_built", 1);
  CPS_COUNT("net.routing.unreachable_nodes", unreachable_);

  // Accumulate subtree sizes bottom-up (reverse BFS order).
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const std::size_t node = *it;
    if (parent_[node] != kNone) subtree_[parent_[node]] += subtree_[node];
  }
}

std::size_t best_sink(const graph::GeometricGraph& g) {
  if (g.node_count() == 0) throw std::invalid_argument("best_sink: empty");
  std::size_t best = 0;
  std::size_t best_cost = static_cast<std::size_t>(-1);
  for (std::size_t sink = 0; sink < g.node_count(); ++sink) {
    const CollectionTree tree(g, sink);
    // Prefer full reachability, then minimal total transmissions.
    const std::size_t cost =
        tree.unreachable_count() * 1000000 + tree.transmissions_per_round();
    if (cost < best_cost) {
      best_cost = cost;
      best = sink;
    }
  }
  return best;
}

}  // namespace cps::net
