#include "net/routing.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>
#include <utility>

#include "obs/obs.hpp"

namespace cps::net {

CollectionTree::CollectionTree(const graph::GeometricGraph& g,
                               std::size_t sink)
    : sink_(sink),
      parent_(g.node_count(), kNone),
      hops_(g.node_count(), kNone),
      subtree_(g.node_count(), 1) {
  if (sink >= g.node_count()) {
    throw std::out_of_range("CollectionTree: sink index");
  }

  // BFS from the sink; parents point one hop closer to it.
  std::queue<std::size_t> frontier;
  hops_[sink] = 0;
  frontier.push(sink);
  std::vector<std::size_t> order;  // BFS order, for the subtree pass.
  order.reserve(g.node_count());
  while (!frontier.empty()) {
    const std::size_t u = frontier.front();
    frontier.pop();
    order.push_back(u);
    for (const std::size_t v : g.neighbors(u)) {
      if (hops_[v] == kNone) {
        hops_[v] = hops_[u] + 1;
        parent_[v] = u;
        frontier.push(v);
      }
    }
  }

  for (std::size_t i = 0; i < g.node_count(); ++i) {
    if (hops_[i] == kNone) {
      ++unreachable_;
      subtree_[i] = 0;
    } else {
      depth_ = std::max(depth_, hops_[i]);
      total_hops_ += hops_[i];
      if (i != sink) CPS_HIST("net.routing.hops", hops_[i]);
    }
  }
  CPS_COUNT("net.routing.trees_built", 1);
  CPS_COUNT("net.routing.unreachable_nodes", unreachable_);

  // Accumulate subtree sizes bottom-up (reverse BFS order).
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const std::size_t node = *it;
    if (parent_[node] != kNone) subtree_[parent_[node]] += subtree_[node];
  }
}

std::size_t best_sink(const graph::GeometricGraph& g) {
  if (g.node_count() == 0) throw std::invalid_argument("best_sink: empty");
  std::size_t best = 0;
  // Reachability strictly dominates operating cost: compare
  // (unreachable_count, transmissions_per_round) lexicographically.  The
  // old weighted sum (unreachable * 1e6 + transmissions) preferred sinks
  // with unreachable nodes once total hops passed 1e6 — a ~2000-node path
  // component already gets there.
  auto best_cost = std::make_pair(static_cast<std::size_t>(-1),
                                  static_cast<std::size_t>(-1));
  for (std::size_t sink = 0; sink < g.node_count(); ++sink) {
    const CollectionTree tree(g, sink);
    const auto cost = std::make_pair(tree.unreachable_count(),
                                     tree.transmissions_per_round());
    if (cost < best_cost) {
      best_cost = cost;
      best = sink;
    }
  }
  return best;
}

RecoveryMonitor::RecoveryMonitor(geo::Vec2 sink_position)
    : sink_position_(sink_position) {}

std::size_t RecoveryMonitor::pick_sink(
    const graph::GeometricGraph& g) const {
  std::size_t sink = 0;
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    const double d = geo::distance(g.position(i), sink_position_);
    if (d < best) {
      best = d;
      sink = i;
    }
  }
  return sink;
}

const CollectionTree& RecoveryMonitor::observe(
    const graph::GeometricGraph& alive_graph, std::size_t slot) {
  if (alive_graph.node_count() == 0) {
    throw std::invalid_argument("RecoveryMonitor: empty graph");
  }
  tree_.emplace(alive_graph, pick_sink(alive_graph));
  CPS_COUNT("net.routing.monitor_rebuilds", 1);
  const bool partitioned = tree_->unreachable_count() > 0;
  if (partitioned && !outage_start_) {
    outage_start_ = slot;  // New outage begins this slot.
    // Episode markers on the telemetry timeline: an outage-start sample
    // carrying how many nodes fell off the tree, ...
    CPS_TRACE_INSTANT("net.routing.outage_start");
    CPS_TIMELINE_ANNOTATE("unreachable", tree_->unreachable_count());
    CPS_TIMELINE_SAMPLE("net.routing.outage", slot);
  } else if (!partitioned && outage_start_) {
    // Fully reachable again: the outage lasted [start, slot).
    const std::size_t slots = slot - *outage_start_;
    recoveries_.push_back(Recovery{*outage_start_, slot, slots});
    CPS_HIST("net.routing.recovery_slots", static_cast<double>(slots));
    // ... and a recovery sample closing the episode with its duration.
    CPS_TRACE_INSTANT("net.routing.outage_recovered");
    CPS_TIMELINE_ANNOTATE("outage_slots", slots);
    CPS_TIMELINE_SAMPLE("net.routing.recovery", slot);
    outage_start_.reset();
  }
  return *tree_;
}

}  // namespace cps::net
