#include "net/radio.hpp"

#include <stdexcept>

namespace cps::net {

DiskRadio::DiskRadio(double radius, double loss_probability,
                     std::uint64_t seed)
    : radius_(radius), loss_(loss_probability), rng_(seed) {
  if (radius <= 0.0) throw std::invalid_argument("DiskRadio: radius <= 0");
  if (loss_probability < 0.0 || loss_probability > 1.0) {
    throw std::invalid_argument("DiskRadio: loss probability");
  }
}

bool DiskRadio::in_range(geo::Vec2 a, geo::Vec2 b) const noexcept {
  return geo::distance_sq(a, b) <= radius_ * radius_;
}

bool DiskRadio::transmit(geo::Vec2 from, geo::Vec2 to) noexcept {
  if (!in_range(from, to)) return false;
  return loss_ == 0.0 || !rng_.bernoulli(loss_);
}

}  // namespace cps::net
