// Disk radio model.
//
// The paper's CPS nodes carry a wireless module with communication radius
// Rc (Section 3.1); two nodes are single-hop neighbours when their distance
// is at most Rc.  DiskRadio captures that rule plus an optional i.i.d.
// packet-loss probability, which the robustness benches use to check CMA
// under lossy beacons.
#pragma once

#include "geometry/vec2.hpp"
#include "numerics/rng.hpp"

namespace cps::net {

/// Link-level model: deterministic disk connectivity with optional loss.
class DiskRadio {
 public:
  /// radius > 0, loss_probability in [0, 1]; std::invalid_argument
  /// otherwise.
  explicit DiskRadio(double radius, double loss_probability = 0.0,
                     std::uint64_t seed = 1);

  double radius() const noexcept { return radius_; }
  double loss_probability() const noexcept { return loss_; }

  /// True when a and b are within communication range (distance <= Rc).
  bool in_range(geo::Vec2 a, geo::Vec2 b) const noexcept;

  /// Samples one transmission attempt between in-range endpoints; always
  /// false when out of range.  Mutates the internal loss RNG.
  bool transmit(geo::Vec2 from, geo::Vec2 to) noexcept;

 private:
  double radius_;
  double loss_;
  num::Rng rng_;
};

}  // namespace cps::net
