// Pluggable link-level channel models.
//
// DiskRadio (radio.hpp) hard-codes the paper's channel: a disk of radius
// Rc with i.i.d. packet loss.  Field deployments are not i.i.d. — loss
// grows toward the edge of the communication range, and interference and
// multipath fade links in *bursts* (the classic Gilbert–Elliott channel).
// LinkModel generalises the radio behind MessageBus so the resilience
// benches can sweep channel families, while DiskLink preserves today's
// disk model bit-for-bit (same RNG stream, same draw schedule).
//
// Determinism contract: every model is seeded and consumes randomness
// only inside transmit(), in call order.  Two runs issuing the same
// transmit() sequence on equal-seeded models see identical outcomes.
//
// No-draw pruning contract: transmit() rejects any pair farther apart
// than max_range() *without consuming randomness* (draw schedules are
// per-attempt-on-in-range-pairs only).  MessageBus relies on this to
// skip out-of-range receivers geometrically — via a spatial grid — while
// keeping the RNG stream, and therefore every delivery outcome,
// bit-identical to the full all-pairs probe.  test_perf_equivalence
// pins the contract per model.
//
// The same contract is what lets MessageBus::step_matched commit a
// pre-computed in-range pair list (core::ShardGrid's tile matching)
// without re-probing geometry: since out-of-range probes never drew, a
// commit that calls transmit() for exactly the in-range pairs — in the
// same (sender ascending, receiver ascending) order — replays the
// identical draw schedule and per-link state trajectory.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <utility>

#include "geometry/vec2.hpp"
#include "net/radio.hpp"
#include "numerics/rng.hpp"
#include "obs/obs.hpp"

namespace cps::net {

using NodeId = std::size_t;

/// Why a message (or a learned neighbour entry) was dropped.  Replaces the
/// single undifferentiated drop count: per-reason counters are what the
/// timeline and the sharded-CMA ghost-ring validation need — "losses rose
/// at slot 117" is useless without knowing whether the channel faded
/// (link_loss_draw), the swarm thinned (dead_*) or it stretched out of
/// range (out_of_range).
enum class DropReason {
  kDeadSender,    ///< Sender dead at broadcast, or died with msgs in flight.
  kDeadReceiver,  ///< Receiver dead at delivery time.
  kOutOfRange,    ///< Receiver alive but beyond the link radius.
  kLinkLossDraw,  ///< In-range attempt lost to the channel's random draw.
  kTtlExpired,    ///< Learned neighbour entry aged out (no beacon within TTL).
};

constexpr const char* drop_reason_name(DropReason r) noexcept {
  switch (r) {
    case DropReason::kDeadSender: return "dead_sender";
    case DropReason::kDeadReceiver: return "dead_receiver";
    case DropReason::kOutOfRange: return "out_of_range";
    case DropReason::kLinkLossDraw: return "link_loss_draw";
    case DropReason::kTtlExpired: return "ttl_expired";
  }
  return "unknown";
}

/// Counts `n` drops for `reason` (net.bus.drop.<reason>) and the aggregate
/// net.bus.drops_total.  One CPS_COUNT call site per reason so each metric
/// name stays a literal (the macro caches the registry lookup per site).
inline void count_drops(DropReason reason, std::uint64_t n) {
  if (n == 0) return;
  switch (reason) {
    case DropReason::kDeadSender:
      CPS_COUNT("net.bus.drop.dead_sender", n);
      break;
    case DropReason::kDeadReceiver:
      CPS_COUNT("net.bus.drop.dead_receiver", n);
      break;
    case DropReason::kOutOfRange:
      CPS_COUNT("net.bus.drop.out_of_range", n);
      break;
    case DropReason::kLinkLossDraw:
      CPS_COUNT("net.bus.drop.link_loss_draw", n);
      break;
    case DropReason::kTtlExpired:
      CPS_COUNT("net.bus.drop.ttl_expired", n);
      break;
  }
  CPS_COUNT("net.bus.drops_total", n);
}

/// Channel model sampled once per directed transmission attempt.
class LinkModel {
 public:
  virtual ~LinkModel() = default;

  /// Communication radius Rc: no delivery ever succeeds beyond it.
  virtual double radius() const noexcept = 0;

  /// Pruning horizon: transmit() MUST return false for any pair farther
  /// apart than this — and must do so without consuming randomness (see
  /// the no-draw contract above).  Defaults to radius(); a model may only
  /// widen it, never narrow it below the largest distance at which
  /// transmit() can touch its RNG or per-link state.
  virtual double max_range() const noexcept { return radius(); }

  /// True when a and b are within communication range (distance <= Rc).
  bool in_range(geo::Vec2 a, geo::Vec2 b) const noexcept {
    return geo::distance_sq(a, b) <= radius() * radius();
  }

  /// Samples one transmission attempt on the directed link from -> to;
  /// always false when out of range.  Node ids identify the link for
  /// models with per-link state (Gilbert–Elliott); position-only models
  /// ignore them.  Mutates internal randomness.
  virtual bool transmit(NodeId from, NodeId to, geo::Vec2 from_pos,
                        geo::Vec2 to_pos) noexcept = 0;

  /// True when transmit() is a pure function of the endpoint geometry:
  /// it never consumes randomness and never mutates per-link state, and
  /// in-range attempts always succeed.  A matched-delivery commit
  /// (MessageBus::step_matched) may then deliver pre-verified in-range
  /// pairs without calling transmit() at all — the draw schedule it
  /// would have to preserve is empty.  Default false; only a model that
  /// can prove the property (e.g. a disk link with zero loss) overrides.
  virtual bool draw_free() const noexcept { return false; }

  /// Deep copy (fresh RNG/link state identical to the source's current
  /// state), for buses that are copied or re-armed.
  virtual std::unique_ptr<LinkModel> clone() const = 0;
};

/// The paper's channel verbatim: DiskRadio behind the LinkModel interface.
/// Wraps an actual DiskRadio so the RNG draw schedule (no draw when the
/// loss probability is zero) matches the seed implementation bit-for-bit.
class DiskLink final : public LinkModel {
 public:
  explicit DiskLink(DiskRadio radio) : radio_(std::move(radio)) {}
  DiskLink(double radius, double loss_probability = 0.0,
           std::uint64_t seed = 1)
      : radio_(radius, loss_probability, seed) {}

  double radius() const noexcept override { return radio_.radius(); }
  bool transmit(NodeId, NodeId, geo::Vec2 from_pos,
                geo::Vec2 to_pos) noexcept override {
    return radio_.transmit(from_pos, to_pos);
  }
  // A lossless disk never draws (DiskRadio skips the Bernoulli sample at
  // loss 0), so its draw schedule is empty and in-range attempts always
  // succeed — exactly the draw_free() property.
  bool draw_free() const noexcept override {
    return radio_.loss_probability() == 0.0;
  }
  std::unique_ptr<LinkModel> clone() const override {
    return std::make_unique<DiskLink>(*this);
  }

 private:
  DiskRadio radio_;
};

/// Distance-dependent loss: p(d) = edge_loss * (d / Rc)^exponent, so the
/// channel is clean at zero range and loses `edge_loss` of packets at the
/// very edge of the disk.  One RNG draw per in-range attempt.
class DistanceLossLink final : public LinkModel {
 public:
  /// radius > 0, edge_loss in [0, 1], exponent > 0; std::invalid_argument
  /// otherwise.
  DistanceLossLink(double radius, double edge_loss, double exponent = 2.0,
                   std::uint64_t seed = 1);

  double radius() const noexcept override { return radius_; }
  double edge_loss() const noexcept { return edge_loss_; }

  /// Loss probability at distance d (clamped to [0, Rc]).
  double loss_at(double distance) const noexcept;

  bool transmit(NodeId, NodeId, geo::Vec2 from_pos,
                geo::Vec2 to_pos) noexcept override;
  std::unique_ptr<LinkModel> clone() const override {
    return std::make_unique<DistanceLossLink>(*this);
  }

 private:
  double radius_;
  double edge_loss_;
  double exponent_;
  num::Rng rng_;
};

/// Gilbert–Elliott bursty channel: each directed link is a two-state
/// Markov chain (good/bad) advanced one step per transmission attempt,
/// with a per-state loss probability.  Expected burst length in the bad
/// state is 1 / p_bad_to_good, so small transition probabilities give
/// long fades — the regime i.i.d. loss cannot express.
class GilbertElliottLink final : public LinkModel {
 public:
  struct Params {
    double p_good_to_bad = 0.05;  ///< Per-attempt fade-in probability.
    double p_bad_to_good = 0.2;   ///< Per-attempt recovery probability.
    double loss_good = 0.0;       ///< Loss probability in the good state.
    double loss_bad = 0.9;        ///< Loss probability in the bad state.
  };

  /// radius > 0 and all probabilities in [0, 1]; std::invalid_argument
  /// otherwise.  Links start in the good state.
  GilbertElliottLink(double radius, const Params& params,
                     std::uint64_t seed = 1);

  double radius() const noexcept override { return radius_; }
  const Params& params() const noexcept { return params_; }

  /// True when the directed link is currently faded (in the bad state).
  bool link_is_bad(NodeId from, NodeId to) const noexcept;

  bool transmit(NodeId from, NodeId to, geo::Vec2 from_pos,
                geo::Vec2 to_pos) noexcept override;
  std::unique_ptr<LinkModel> clone() const override {
    return std::make_unique<GilbertElliottLink>(*this);
  }

 private:
  double radius_;
  Params params_;
  num::Rng rng_;
  /// Directed link -> in-bad-state.  Absent means good (the start state).
  std::map<std::pair<NodeId, NodeId>, bool> bad_;
};

}  // namespace cps::net
