#include "net/link_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cps::net {

DistanceLossLink::DistanceLossLink(double radius, double edge_loss,
                                   double exponent, std::uint64_t seed)
    : radius_(radius),
      edge_loss_(edge_loss),
      exponent_(exponent),
      rng_(seed) {
  if (radius <= 0.0) {
    throw std::invalid_argument("DistanceLossLink: radius <= 0");
  }
  if (edge_loss < 0.0 || edge_loss > 1.0) {
    throw std::invalid_argument("DistanceLossLink: edge loss");
  }
  if (exponent <= 0.0) {
    throw std::invalid_argument("DistanceLossLink: exponent <= 0");
  }
}

double DistanceLossLink::loss_at(double distance) const noexcept {
  const double d = std::clamp(distance, 0.0, radius_);
  return edge_loss_ * std::pow(d / radius_, exponent_);
}

bool DistanceLossLink::transmit(NodeId, NodeId, geo::Vec2 from_pos,
                                geo::Vec2 to_pos) noexcept {
  if (!in_range(from_pos, to_pos)) return false;
  return !rng_.bernoulli(loss_at(geo::distance(from_pos, to_pos)));
}

GilbertElliottLink::GilbertElliottLink(double radius, const Params& params,
                                       std::uint64_t seed)
    : radius_(radius), params_(params), rng_(seed) {
  if (radius <= 0.0) {
    throw std::invalid_argument("GilbertElliottLink: radius <= 0");
  }
  for (const double p : {params.p_good_to_bad, params.p_bad_to_good,
                         params.loss_good, params.loss_bad}) {
    if (p < 0.0 || p > 1.0) {
      throw std::invalid_argument("GilbertElliottLink: probability");
    }
  }
}

bool GilbertElliottLink::link_is_bad(NodeId from, NodeId to) const noexcept {
  const auto it = bad_.find({from, to});
  return it != bad_.end() && it->second;
}

bool GilbertElliottLink::transmit(NodeId from, NodeId to, geo::Vec2 from_pos,
                                  geo::Vec2 to_pos) noexcept {
  if (!in_range(from_pos, to_pos)) return false;
  bool& is_bad = bad_[{from, to}];
  // One Markov step per attempt, then a loss draw in the new state; the
  // two draws always happen so the stream stays aligned across links.
  const bool flip = rng_.bernoulli(is_bad ? params_.p_bad_to_good
                                          : params_.p_good_to_bad);
  if (flip) is_bad = !is_bad;
  return !rng_.bernoulli(is_bad ? params_.loss_bad : params_.loss_good);
}

}  // namespace cps::net
