#include "net/fault.hpp"

#include <algorithm>
#include <stdexcept>

#include "numerics/rng.hpp"

namespace cps::net {
namespace {

/// Sort key: slot-major, node, then deaths before revivals so a same-slot
/// death+revival pair nets out to "alive with reset protocol state".
bool event_less(const FaultEvent& a, const FaultEvent& b) {
  if (a.slot != b.slot) return a.slot < b.slot;
  if (a.node != b.node) return a.node < b.node;
  return static_cast<int>(a.kind) < static_cast<int>(b.kind);
}

}  // namespace

void FaultSchedule::add(const FaultEvent& event) {
  const auto it =
      std::upper_bound(events_.begin(), events_.end(), event, event_less);
  events_.insert(it, event);
}

FaultSchedule FaultSchedule::random_deaths(std::size_t node_count,
                                           double death_probability,
                                           std::size_t first_slot,
                                           std::size_t last_slot,
                                           std::uint64_t seed) {
  if (death_probability < 0.0 || death_probability > 1.0) {
    throw std::invalid_argument("FaultSchedule: death probability");
  }
  if (last_slot < first_slot) {
    throw std::invalid_argument("FaultSchedule: slot window");
  }
  num::Rng rng(seed);
  FaultSchedule schedule;
  for (std::size_t node = 0; node < node_count; ++node) {
    // Draw per node in index order so the schedule is invariant to how
    // many nodes actually die (fixed two-draw budget per node).
    const bool dies = rng.bernoulli(death_probability);
    const auto slot = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(first_slot),
                        static_cast<std::int64_t>(last_slot)));
    if (dies) schedule.add_death(slot, node);
  }
  return schedule;
}

std::size_t FaultSchedule::death_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(events_.begin(), events_.end(), [](const FaultEvent& e) {
        return e.kind == FaultKind::kDeath;
      }));
}

std::span<const FaultEvent> FaultSchedule::events_at(
    std::size_t slot) const noexcept {
  const FaultEvent probe{slot, 0, FaultKind::kDeath};
  const auto lo = std::lower_bound(
      events_.begin(), events_.end(), probe,
      [](const FaultEvent& a, const FaultEvent& b) { return a.slot < b.slot; });
  auto hi = lo;
  while (hi != events_.end() && hi->slot == slot) ++hi;
  return {events_.data() + (lo - events_.begin()),
          static_cast<std::size_t>(hi - lo)};
}

std::size_t FaultSchedule::last_slot() const noexcept {
  return events_.empty() ? 0 : events_.back().slot;
}

}  // namespace cps::net
