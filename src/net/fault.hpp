// Deterministic mid-run fault injection.
//
// The paper assumes "the energy is sufficient"; fielded sensor networks
// do not (battery, weather, wildlife).  A FaultSchedule is a seed-stable
// list of node death/revival events keyed to the slot-synchronous clock
// that CmaSimulation and MessageBus already run on: the consumer applies
// the events of slot s before executing slot s, so a run with a given
// (seed, schedule) pair is exactly reproducible — the property every
// resilience sweep in bench/ depends on.
//
// The schedule is pure data: it never touches the network itself.  That
// keeps fault injection composable with any link model and lets tests
// replay the same churn against different channel assumptions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace cps::net {

/// What happens to the node at the scheduled slot.
enum class FaultKind {
  kDeath,    ///< Node stops sensing, transmitting, receiving, and moving.
  kRevival,  ///< Node rejoins with empty protocol state at its last position.
};

/// One scheduled event, applied at the *start* of `slot` (slot 0 is the
/// first simulated slot).
struct FaultEvent {
  std::size_t slot = 0;
  std::size_t node = 0;
  FaultKind kind = FaultKind::kDeath;
};

/// An immutable-after-build, slot-ordered event list.
class FaultSchedule {
 public:
  FaultSchedule() = default;

  /// Adds one event; events may be added in any order.
  void add(const FaultEvent& event);
  void add_death(std::size_t slot, std::size_t node) {
    add(FaultEvent{slot, node, FaultKind::kDeath});
  }
  void add_revival(std::size_t slot, std::size_t node) {
    add(FaultEvent{slot, node, FaultKind::kRevival});
  }

  /// Deterministic churn generator: each node independently dies with
  /// `death_probability` at a uniform slot in [first_slot, last_slot].
  /// Throws std::invalid_argument for a probability outside [0, 1] or
  /// last_slot < first_slot.
  static FaultSchedule random_deaths(std::size_t node_count,
                                     double death_probability,
                                     std::size_t first_slot,
                                     std::size_t last_slot,
                                     std::uint64_t seed);

  bool empty() const noexcept { return events_.size() == 0; }
  std::size_t size() const noexcept { return events_.size(); }

  /// Scheduled deaths (revivals excluded).
  std::size_t death_count() const noexcept;

  /// All events, sorted by (slot, node), deaths before revivals within a
  /// (slot, node) pair.
  const std::vector<FaultEvent>& events() const noexcept { return events_; }

  /// Events scheduled for exactly `slot` (a subrange of events()).
  std::span<const FaultEvent> events_at(std::size_t slot) const noexcept;

  /// Largest scheduled slot (0 when empty) — how long a run must be to
  /// see the whole schedule.
  std::size_t last_slot() const noexcept;

 private:
  std::vector<FaultEvent> events_;  // Kept sorted by add().
};

}  // namespace cps::net
