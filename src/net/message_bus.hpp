// Slot-synchronous broadcast bus over a disk radio.
//
// CMA (Table 2) is written against a classic synchronous-rounds model: in
// each slot every node broadcasts a small message (its Tx/tell lines) and
// receives whatever its single-hop neighbours broadcast (Rx/Rxtell).
// MessageBus implements those rounds: messages queued during slot s are
// delivered at the start of slot s+1 to every node within Rc of the sender
// at *send* time, matching the paper's assumption that positions change
// slowly relative to the beacon rate.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <utility>
#include <vector>

#include "net/radio.hpp"
#include "obs/obs.hpp"

namespace cps::net {

using NodeId = std::size_t;

/// A delivered message with its sender.
template <typename M>
struct Delivery {
  NodeId from = 0;
  M message{};
};

/// Broadcast-only message bus for `M`-typed payloads.
template <typename M>
class MessageBus {
 public:
  /// `node_count` fixed for the bus lifetime; radio defines range/loss.
  MessageBus(std::size_t node_count, DiskRadio radio)
      : radio_(std::move(radio)),
        positions_(node_count),
        inboxes_(node_count) {}

  std::size_t node_count() const noexcept { return positions_.size(); }
  const DiskRadio& radio() const noexcept { return radio_; }

  /// Updates the position used for range checks of subsequent broadcasts.
  void set_position(NodeId id, geo::Vec2 p) { positions_.at(id) = p; }
  geo::Vec2 position(NodeId id) const { return positions_.at(id); }

  /// Queues a broadcast for delivery at the next step().
  void broadcast(NodeId from, M message) {
    if (from >= positions_.size()) {
      throw std::out_of_range("MessageBus::broadcast");
    }
    ++total_broadcasts_;
    CPS_COUNT("net.bus.messages_sent", 1);
    outbox_.push_back(Pending{from, positions_[from], std::move(message)});
  }

  /// Broadcasts queued over the bus lifetime (the radio-energy proxy).
  std::size_t total_broadcasts() const noexcept { return total_broadcasts_; }

  /// Delivers all queued broadcasts to in-range receivers and clears the
  /// queue.  Senders do not receive their own broadcasts.
  void step() {
    for (auto& inbox : inboxes_) inbox.clear();
    for (auto& pending : outbox_) {
      for (NodeId to = 0; to < positions_.size(); ++to) {
        if (to == pending.from) continue;
        if (radio_.transmit(pending.sent_from, positions_[to])) {
          CPS_COUNT("net.bus.deliveries", 1);
          inboxes_[to].push_back(Delivery<M>{pending.from, pending.message});
        } else {
          // A failed transmission to an in-range receiver is a radio loss;
          // out-of-range receivers are not delivery failures.
          CPS_COUNT("net.bus.delivery_failures",
                    radio_.in_range(pending.sent_from, positions_[to]) ? 1
                                                                       : 0);
        }
      }
    }
    outbox_.clear();
  }

  /// Messages delivered to `id` by the last step().
  const std::vector<Delivery<M>>& inbox(NodeId id) const {
    return inboxes_.at(id);
  }

  /// Ids of nodes currently within radio range of `id` (excluding itself).
  std::vector<NodeId> neighbors_of(NodeId id) const {
    std::vector<NodeId> out;
    for (NodeId j = 0; j < positions_.size(); ++j) {
      if (j != id && radio_.in_range(positions_.at(id), positions_[j])) {
        out.push_back(j);
      }
    }
    return out;
  }

 private:
  struct Pending {
    NodeId from;
    geo::Vec2 sent_from;
    M message;
  };

  DiskRadio radio_;
  std::vector<geo::Vec2> positions_;
  std::vector<Pending> outbox_;
  std::vector<std::vector<Delivery<M>>> inboxes_;
  std::size_t total_broadcasts_ = 0;
};

}  // namespace cps::net
