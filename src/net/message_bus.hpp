// Slot-synchronous broadcast bus over a pluggable link model.
//
// CMA (Table 2) is written against a classic synchronous-rounds model: in
// each slot every node broadcasts a small message (its Tx/tell lines) and
// receives whatever its single-hop neighbours broadcast (Rx/Rxtell).
// MessageBus implements those rounds: messages queued during slot s are
// delivered at the start of slot s+1 to every node within Rc of the sender
// at *send* time, matching the paper's assumption that positions change
// slowly relative to the beacon rate.
//
// The channel behind the bus is a LinkModel (link_model.hpp) — the default
// DiskLink reproduces the original DiskRadio bit-for-bit, while the
// distance-dependent and Gilbert–Elliott models serve the resilience
// sweeps.  Nodes can also die and revive mid-run (set_alive, driven by a
// FaultSchedule): a dead node neither sends nor receives, and messages in
// flight from a node that dies before delivery are lost with the node.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "net/link_model.hpp"
#include "net/radio.hpp"
#include "obs/obs.hpp"
#include "parallel/spatial_hash.hpp"

namespace cps::net {

/// A delivered message with its sender.
template <typename M>
struct Delivery {
  NodeId from = 0;
  M message{};
};

/// How step()/neighbors_of enumerate potential receivers.
///
/// kGrid (the default) builds a par::SpatialHash over the living
/// receivers' positions — rebuilt lazily, at most once per position/alive
/// change — and probes only the cells within the link's max_range() of
/// each sender.  Per-slot cost drops from O(N^2) link evaluations to
/// O(N * avg_degree).  The LinkModel no-draw contract (link_model.hpp)
/// guarantees the pruned out-of-range probes never consumed randomness,
/// so deliveries, inbox order, and counters are bit-identical to kFull.
/// kFull keeps the all-pairs probe compiled in as the equivalence oracle.
enum class DeliveryMode { kFull, kGrid };

/// Broadcast-only message bus for `M`-typed payloads.
template <typename M>
class MessageBus {
 public:
  /// `node_count` fixed for the bus lifetime; the link model defines
  /// range/loss.  All nodes start alive.
  MessageBus(std::size_t node_count, std::unique_ptr<LinkModel> link)
      : link_(std::move(link)),
        positions_(node_count),
        alive_(node_count, 1),
        inboxes_(node_count) {
    if (!link_) throw std::invalid_argument("MessageBus: null link model");
  }

  /// Convenience: the paper's disk radio behind the LinkModel interface.
  MessageBus(std::size_t node_count, DiskRadio radio)
      : MessageBus(node_count,
                   std::make_unique<DiskLink>(std::move(radio))) {}

  std::size_t node_count() const noexcept { return positions_.size(); }
  const LinkModel& link() const noexcept { return *link_; }
  double radius() const noexcept { return link_->radius(); }

  /// Replaces the channel model (same radius contract as construction).
  /// Queued-but-undelivered messages are judged by the new model.
  void set_link(std::unique_ptr<LinkModel> link) {
    if (!link) throw std::invalid_argument("MessageBus: null link model");
    link_ = std::move(link);
    grid_dirty_ = true;  // max_range() may have changed the cell size.
  }

  /// Selects the receiver-enumeration strategy (see DeliveryMode).
  void set_delivery_mode(DeliveryMode mode) noexcept { mode_ = mode; }
  DeliveryMode delivery_mode() const noexcept { return mode_; }

  /// Updates the position used for range checks of subsequent broadcasts.
  void set_position(NodeId id, geo::Vec2 p) {
    positions_.at(id) = p;
    grid_dirty_ = true;
  }
  geo::Vec2 position(NodeId id) const { return positions_.at(id); }

  /// Marks a node dead (false) or alive (true).  Killing a node clears
  /// its inbox; its queued outbound messages die with it at step().
  void set_alive(NodeId id, bool alive) {
    if (id >= positions_.size()) {
      throw std::out_of_range("MessageBus::set_alive");
    }
    alive_[id] = alive ? 1 : 0;
    if (!alive) inboxes_[id].clear();
    grid_dirty_ = true;
  }

  bool alive(NodeId id) const {
    if (id >= positions_.size()) {
      throw std::out_of_range("MessageBus::alive");
    }
    return alive_[id] != 0;
  }

  std::size_t alive_count() const noexcept {
    std::size_t n = 0;
    for (const char a : alive_) n += a != 0;
    return n;
  }

  /// Queues a broadcast for delivery at the next step().  Broadcasts from
  /// dead nodes are dropped (and counted) — a dead radio transmits
  /// nothing, but simulation drivers need not special-case the call.
  void broadcast(NodeId from, M message) {
    if (from >= positions_.size()) {
      throw std::out_of_range("MessageBus::broadcast");
    }
    if (!alive_[from]) {
      CPS_COUNT("net.bus.dead_broadcasts", 1);  // Legacy aggregate name.
      count_drops(DropReason::kDeadSender, 1);
      return;
    }
    ++total_broadcasts_;
    CPS_COUNT("net.bus.messages_sent", 1);
    outbox_.push_back(Pending{from, positions_[from], std::move(message)});
  }

  /// Broadcasts queued over the bus lifetime (the radio-energy proxy).
  std::size_t total_broadcasts() const noexcept { return total_broadcasts_; }

  /// Delivers all queued broadcasts to in-range living receivers and
  /// clears the queue.  Senders do not receive their own broadcasts.
  ///
  /// Under DeliveryMode::kGrid (default) each sender probes only the
  /// grid cells within link max_range(); deliveries, inbox order, and
  /// delivery counters are bit-identical to the kFull all-pairs probe
  /// because pruned receivers never consumed randomness (no-draw
  /// contract) and candidates are re-sorted into ascending-id order
  /// before the transmit() draws.
  void step() {
    begin_slot();
    if (mode_ == DeliveryMode::kGrid) refresh_grid();
    // Per-reason drop accounting is arithmetic over per-message tallies,
    // never per-probe: the grid mode skips most dead/out-of-range
    // receivers without probing them, so counting inside probe() would
    // make the taxonomy depend on the delivery mode.  With `delivered`
    // and `lost` tallied per message, the remaining receivers decompose
    // exactly — identically under kGrid and kFull:
    //   dead_receiver = node_count - alive_now          (per message)
    //   out_of_range  = (alive_now - 1) - delivered - lost
    const bool account = obs::enabled();
    const std::size_t alive_now = account ? alive_count() : 0;
    for (auto& pending : outbox_) {
      if (!alive_[pending.from]) {
        // Died with messages in flight: the whole broadcast is lost.
        count_drops(DropReason::kDeadSender, 1);
        continue;
      }
      delivered_ = 0;
      lost_ = 0;
      if (mode_ == DeliveryMode::kGrid) {
        candidates_.clear();
        const std::size_t cells = grid_->collect_candidates(
            pending.sent_from, link_->max_range(), candidates_);
        CPS_HIST("net.bus.cells_probed", cells);
        // collect_candidates returns ids cell by cell; sorting restores
        // the ascending-id receiver order of the full probe, which fixes
        // the RNG draw order (compact grid ids map to ascending NodeIds).
        std::sort(candidates_.begin(), candidates_.end());
        for (const std::uint32_t c : candidates_) {
          probe(pending, grid_ids_[c]);
        }
      } else {
        for (NodeId to = 0; to < positions_.size(); ++to) {
          if (!alive_[to]) continue;
          probe(pending, to);
        }
      }
      if (account) {
        count_drops(DropReason::kDeadReceiver,
                    static_cast<std::uint64_t>(node_count() - alive_now));
        count_drops(DropReason::kLinkLossDraw, lost_);
        count_drops(
            DropReason::kOutOfRange,
            static_cast<std::uint64_t>(alive_now - 1) - delivered_ - lost_);
      }
    }
    outbox_.clear();
  }

  /// Matched delivery: the caller supplies, per living sender, the exact
  /// set of living in-range receivers (ascending ids, self excluded) —
  /// typically a tile decomposition's pair lists (core::ShardGrid).
  ///
  /// Equivalence contract with step(): `receivers_of(from)` must return
  /// precisely the ids step() would have delivered-or-lost to, in the
  /// same ascending order.  transmit() is then invoked for exactly the
  /// in-range pairs in the same global (sender broadcast order, receiver
  /// ascending) sequence as the kFull/kGrid probes; since out-of-range
  /// probes never consumed randomness (no-draw contract), the RNG
  /// stream, per-link state, inbox order, and the drop-reason taxonomy
  /// are all bit-identical to step().  transmit_attempts counts only the
  /// in-range probes — the matcher already rejected the rest
  /// geometrically — so that cost counter (already delivery-mode
  /// dependent under kGrid vs kFull) shrinks by the out-of-range
  /// fraction.  When the link is draw_free(), transmit() is skipped
  /// entirely: in-range pairs are pre-verified and the draw schedule
  /// being replayed is empty.
  template <typename ReceiversOf>
  void step_matched(ReceiversOf&& receivers_of) {
    begin_slot();
    const bool account = obs::enabled();
    const std::size_t alive_now = account ? alive_count() : 0;
    const bool no_draws = link_->draw_free();
    for (auto& pending : outbox_) {
      if (!alive_[pending.from]) {
        count_drops(DropReason::kDeadSender, 1);
        continue;
      }
      delivered_ = 0;
      lost_ = 0;
      const auto& receivers = receivers_of(pending.from);
      CPS_COUNT("net.bus.transmit_attempts",
                static_cast<std::uint64_t>(receivers.size()));
      if (no_draws) {
        CPS_COUNT("net.bus.deliveries",
                  static_cast<std::uint64_t>(receivers.size()));
        delivered_ = receivers.size();
        for (const NodeId to : receivers) {
          inboxes_[to].push_back(Delivery<M>{pending.from, pending.message});
        }
      } else {
        for (const NodeId to : receivers) {
          if (link_->transmit(pending.from, to, pending.sent_from,
                              positions_[to])) {
            CPS_COUNT("net.bus.deliveries", 1);
            ++delivered_;
            inboxes_[to].push_back(Delivery<M>{pending.from, pending.message});
          } else {
            // Every matched receiver is in range by contract, so a failed
            // transmit is a channel loss, never an out-of-range miss.
            CPS_COUNT("net.bus.delivery_failures", 1);
            ++lost_;
          }
        }
      }
      if (account) {
        count_drops(DropReason::kDeadReceiver,
                    static_cast<std::uint64_t>(node_count() - alive_now));
        count_drops(DropReason::kLinkLossDraw, lost_);
        count_drops(
            DropReason::kOutOfRange,
            static_cast<std::uint64_t>(alive_now - 1) - delivered_ - lost_);
      }
    }
    outbox_.clear();
  }

  /// Messages delivered to `id` by the last step().
  const std::vector<Delivery<M>>& inbox(NodeId id) const {
    return inboxes_.at(id);
  }

  /// Ids of living nodes currently within radio range of `id` (excluding
  /// itself).  An oracle view of the topology — protocol code should
  /// prefer beacon-learned neighbour tables, which see only what the
  /// channel actually delivered.  Grid-pruned under DeliveryMode::kGrid
  /// (ascending ids either way).
  std::vector<NodeId> neighbors_of(NodeId id) const {
    std::vector<NodeId> out;
    const geo::Vec2 p = positions_.at(id);
    if (mode_ == DeliveryMode::kGrid) {
      refresh_grid();
      candidates_.clear();
      grid_->collect_candidates(p, link_->max_range(), candidates_);
      std::sort(candidates_.begin(), candidates_.end());
      for (const std::uint32_t c : candidates_) {
        const NodeId j = grid_ids_[c];
        if (j != id && link_->in_range(p, positions_[j])) out.push_back(j);
      }
    } else {
      for (NodeId j = 0; j < positions_.size(); ++j) {
        if (j != id && alive_[j] && link_->in_range(p, positions_[j])) {
          out.push_back(j);
        }
      }
    }
    return out;
  }

 private:
  struct Pending {
    NodeId from;
    geo::Vec2 sent_from;
    M message;
  };

  /// Opens a delivery slot: clears every inbox and pre-reserves it to its
  /// running high-water mark, so a receiver whose inbox storage was
  /// released (e.g. cleared on death, or freshly constructed) regrows to
  /// steady-state capacity in one allocation instead of a push_back
  /// doubling cascade.  Records the previous slot's fullest inbox in the
  /// net.bus.inbox_high_water histogram — the sizing signal the
  /// reservation feeds on, and a cheap congestion telltale.
  void begin_slot() {
    std::size_t fullest = 0;
    for (std::size_t i = 0; i < inboxes_.size(); ++i) {
      const std::size_t sz = inboxes_[i].size();
      fullest = std::max(fullest, sz);
      inbox_hw_[i] = std::max(inbox_hw_[i], sz);
      inboxes_[i].clear();
      if (inboxes_[i].capacity() < inbox_hw_[i]) {
        inboxes_[i].reserve(inbox_hw_[i]);
      }
    }
    CPS_HIST("net.bus.inbox_high_water", fullest);
  }

  /// One directed transmission attempt against the link model.
  void probe(const Pending& pending, NodeId to) {
    if (to == pending.from) return;
    CPS_COUNT("net.bus.transmit_attempts", 1);
    if (link_->transmit(pending.from, to, pending.sent_from,
                        positions_[to])) {
      CPS_COUNT("net.bus.deliveries", 1);
      ++delivered_;
      inboxes_[to].push_back(Delivery<M>{pending.from, pending.message});
    } else if (link_->in_range(pending.sent_from, positions_[to])) {
      // A failed transmission to an in-range receiver is a radio loss;
      // out-of-range receivers are not delivery failures.
      CPS_COUNT("net.bus.delivery_failures", 1);  // Legacy aggregate name.
      ++lost_;
    }
  }

  /// Rebuilds the living-receiver spatial index if positions, liveness,
  /// or the link model changed since the last build.  Cell size is the
  /// link's max_range(), so a range query touches at most 9 cells.
  void refresh_grid() const {
    if (!grid_dirty_ && grid_.has_value()) return;
    grid_ids_.clear();
    grid_positions_.clear();
    for (NodeId i = 0; i < positions_.size(); ++i) {
      if (alive_[i]) {
        grid_ids_.push_back(i);
        grid_positions_.push_back(positions_[i]);
      }
    }
    grid_.emplace(grid_positions_, link_->max_range());
    grid_dirty_ = false;
    CPS_COUNT("net.bus.grid_rebuilds", 1);
  }

  std::unique_ptr<LinkModel> link_;
  std::vector<geo::Vec2> positions_;
  std::vector<char> alive_;
  std::vector<Pending> outbox_;
  // Per-message probe tallies for the drop-reason arithmetic in step().
  std::uint64_t delivered_ = 0;
  std::uint64_t lost_ = 0;
  std::vector<std::vector<Delivery<M>>> inboxes_;
  /// Per-receiver running high-water marks feeding begin_slot()'s
  /// reservation.
  std::vector<std::size_t> inbox_hw_ =
      std::vector<std::size_t>(inboxes_.size(), 0);
  std::size_t total_broadcasts_ = 0;
  DeliveryMode mode_ = DeliveryMode::kGrid;
  // Lazily maintained living-receiver index (kGrid only).  Mutable:
  // neighbors_of is logically const; the bus makes no thread-safety
  // claims, so the cache needs no lock.
  mutable std::vector<NodeId> grid_ids_;          // Living ids, ascending.
  mutable std::vector<geo::Vec2> grid_positions_;  // Their positions.
  mutable std::optional<par::SpatialHash> grid_;
  mutable bool grid_dirty_ = true;
  mutable std::vector<std::uint32_t> candidates_;  // Query scratch.
};

}  // namespace cps::net
