#include "field/time_varying.hpp"

#include <algorithm>
#include <stdexcept>

namespace cps::field {

AnalyticTimeField::AnalyticTimeField(
    std::function<double(double, double, double)> fn)
    : fn_(std::move(fn)) {
  if (!fn_) throw std::invalid_argument("AnalyticTimeField: empty callable");
}

StaticTimeField::StaticTimeField(std::shared_ptr<const Field> f)
    : f_(std::move(f)) {
  if (!f_) throw std::invalid_argument("StaticTimeField: null field");
}

FrameSequenceField::FrameSequenceField(std::vector<GridField> frames,
                                       std::vector<double> timestamps)
    : frames_(std::move(frames)), timestamps_(std::move(timestamps)) {
  if (frames_.empty() || frames_.size() != timestamps_.size()) {
    throw std::invalid_argument("FrameSequenceField: frames/timestamps");
  }
  for (std::size_t i = 1; i < timestamps_.size(); ++i) {
    if (timestamps_[i] <= timestamps_[i - 1]) {
      throw std::invalid_argument(
          "FrameSequenceField: timestamps not increasing");
    }
    if (frames_[i].nx() != frames_[0].nx() ||
        frames_[i].ny() != frames_[0].ny()) {
      throw std::invalid_argument("FrameSequenceField: grid shape mismatch");
    }
  }
}

double FrameSequenceField::do_value(geo::Vec2 p, double t) const {
  if (frames_.size() == 1 || t <= timestamps_.front()) {
    return frames_.front().value(p);
  }
  if (t >= timestamps_.back()) return frames_.back().value(p);
  // First timestamp strictly greater than t; predecessor exists because of
  // the clamps above.
  const auto it =
      std::upper_bound(timestamps_.begin(), timestamps_.end(), t);
  const auto hi = static_cast<std::size_t>(it - timestamps_.begin());
  const std::size_t lo = hi - 1;
  const double span = timestamps_[hi] - timestamps_[lo];
  const double w = (t - timestamps_[lo]) / span;
  return frames_[lo].value(p) * (1.0 - w) + frames_[hi].value(p) * w;
}

}  // namespace cps::field
