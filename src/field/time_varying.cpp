#include "field/time_varying.hpp"

#include <algorithm>
#include <stdexcept>

#include "parallel/simd.hpp"

namespace cps::field {

AnalyticTimeField::AnalyticTimeField(
    std::function<double(double, double, double)> fn)
    : fn_(std::move(fn)) {
  if (!fn_) throw std::invalid_argument("AnalyticTimeField: empty callable");
}

StaticTimeField::StaticTimeField(std::shared_ptr<const Field> f)
    : f_(std::move(f)) {
  if (!f_) throw std::invalid_argument("StaticTimeField: null field");
}

FrameSequenceField::FrameSequenceField(std::vector<GridField> frames,
                                       std::vector<double> timestamps)
    : frames_(std::move(frames)), timestamps_(std::move(timestamps)) {
  if (frames_.empty() || frames_.size() != timestamps_.size()) {
    throw std::invalid_argument("FrameSequenceField: frames/timestamps");
  }
  for (std::size_t i = 1; i < timestamps_.size(); ++i) {
    if (timestamps_[i] <= timestamps_[i - 1]) {
      throw std::invalid_argument(
          "FrameSequenceField: timestamps not increasing");
    }
    if (frames_[i].nx() != frames_[0].nx() ||
        frames_[i].ny() != frames_[0].ny()) {
      throw std::invalid_argument("FrameSequenceField: grid shape mismatch");
    }
  }
}

void FrameSequenceField::do_value_row(double y, std::span<const double> xs,
                                      double t, double* out) const {
  // The bracketing frames and blend weight depend only on t, so one
  // branch + upper_bound serves the whole row; the clamped cases forward
  // straight to the single frame's batched kernel.
  if (frames_.size() == 1 || t <= timestamps_.front()) {
    frames_.front().value_row(y, xs, out);
    return;
  }
  if (t >= timestamps_.back()) {
    frames_.back().value_row(y, xs, out);
    return;
  }
  const auto it =
      std::upper_bound(timestamps_.begin(), timestamps_.end(), t);
  const auto hi = static_cast<std::size_t>(it - timestamps_.begin());
  const std::size_t lo = hi - 1;
  const double span = timestamps_[hi] - timestamps_[lo];
  const double w = (t - timestamps_[lo]) / span;
  // Scratch for the hi frame's row; reused across calls so the delta
  // metric's row sweep doesn't allocate per row.
  thread_local std::vector<double> hi_row;
  hi_row.resize(xs.size());
  frames_[lo].value_row(y, xs, out);
  frames_[hi].value_row(y, xs, hi_row.data());
  const double* hi_p = hi_row.data();
  CPS_SIMD
  for (std::size_t i = 0; i < xs.size(); ++i) {
    out[i] = out[i] * (1.0 - w) + hi_p[i] * w;
  }
}

double FrameSequenceField::do_value(geo::Vec2 p, double t) const {
  if (frames_.size() == 1 || t <= timestamps_.front()) {
    return frames_.front().value(p);
  }
  if (t >= timestamps_.back()) return frames_.back().value(p);
  // First timestamp strictly greater than t; predecessor exists because of
  // the clamps above.
  const auto it =
      std::upper_bound(timestamps_.begin(), timestamps_.end(), t);
  const auto hi = static_cast<std::size_t>(it - timestamps_.begin());
  const std::size_t lo = hi - 1;
  const double span = timestamps_[hi] - timestamps_[lo];
  const double w = (t - timestamps_[lo]) / span;
  return frames_[lo].value(p) * (1.0 - w) + frames_[hi].value(p) * w;
}

}  // namespace cps::field
