// Time-varying environment models.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "field/field.hpp"
#include "field/grid_field.hpp"

namespace cps::field {

/// Wraps a callable f(x, y, t) as a TimeVaryingField.
class AnalyticTimeField final : public TimeVaryingField {
 public:
  /// Throws std::invalid_argument when fn is empty.
  explicit AnalyticTimeField(std::function<double(double, double, double)> fn);

 private:
  double do_value(geo::Vec2 p, double t) const override {
    return fn_(p.x, p.y, t);
  }

  void do_value_row(double y, std::span<const double> xs, double t,
                    double* out) const override {
    for (std::size_t i = 0; i < xs.size(); ++i) out[i] = fn_(xs[i], y, t);
  }

  std::function<double(double, double, double)> fn_;
};

/// A static field viewed as (trivially) time-varying.
class StaticTimeField final : public TimeVaryingField {
 public:
  /// Throws std::invalid_argument when f is null.
  explicit StaticTimeField(std::shared_ptr<const Field> f);

 private:
  double do_value(geo::Vec2 p, double) const override {
    return f_->value(p);
  }

  void do_value_row(double y, std::span<const double> xs, double,
                    double* out) const override {
    f_->value_row(y, xs, out);
  }

  std::shared_ptr<const Field> f_;
};

/// A sequence of grid frames at increasing timestamps, linearly
/// interpolated in time and clamped outside [t_first, t_last].  This is the
/// playback form of a recorded (or synthesised) trace: exactly how the
/// GreenOrbs hourly logs would be replayed.
class FrameSequenceField final : public TimeVaryingField {
 public:
  /// Frames and timestamps must be equally sized (>= 1) with strictly
  /// increasing timestamps and identical grid geometry; throws
  /// std::invalid_argument otherwise.
  FrameSequenceField(std::vector<GridField> frames,
                     std::vector<double> timestamps);

  std::size_t frame_count() const noexcept { return frames_.size(); }
  const GridField& frame(std::size_t i) const { return frames_.at(i); }
  double timestamp(std::size_t i) const { return timestamps_.at(i); }
  double first_time() const noexcept { return timestamps_.front(); }
  double last_time() const noexcept { return timestamps_.back(); }

 private:
  double do_value(geo::Vec2 p, double t) const override;
  void do_value_row(double y, std::span<const double> xs, double t,
                    double* out) const override;

  std::vector<GridField> frames_;
  std::vector<double> timestamps_;
};

}  // namespace cps::field
