// Abstract environment models.
//
// The paper represents a physical condition over the region as a bivariate
// function z = f(x, y) ("virtual surface", Section 3.1); time-varying
// conditions add a time argument, z = f(x(t), y(t)).  Every consumer in the
// library — planners, the delta metric, curvature estimation, trace
// generation — works against these two interfaces, which is what lets the
// GreenOrbs trace substitution stay behind one seam.
//
// Both interfaces follow the non-virtual-interface pattern: the public
// `value` overloads forward to one private virtual, so implementations
// override a single function and callers get both calling conventions.
// The batched `value_row` entry points follow the same pattern: the
// default virtual loops the scalar hook, so every implementation is
// batch-callable for free, and implementations that can hoist per-row
// work (grid bilinear weights, frame blends) override `do_value_row`.
//
// Batch contract: value_row must produce the same bits the scalar calls
// would — implementations may hoist row-invariant work but must keep the
// per-point arithmetic (expressions and evaluation order) unchanged.
// Callers therefore precompute their row abscissae with whatever
// expression their scalar loop used and pass them in, rather than
// passing (x0, dx) and letting the kernel re-derive positions with a
// differently-rounded recurrence.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>

#include "geometry/vec2.hpp"

namespace cps::field {

/// Content-key hashing helpers (see Field::content_key).
namespace fieldkey {

/// Boost-style 64-bit hash combine; order-sensitive.
inline std::uint64_t combine(std::uint64_t h, std::uint64_t v) noexcept {
  return h ^ (v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2));
}

inline std::uint64_t bits(double d) noexcept {
  return std::bit_cast<std::uint64_t>(d);
}

/// Process-unique, monotonically increasing id.  Never reused, which is
/// the whole point: an address-based identity can be recycled by the
/// allocator after a field dies (the ABA hazard), a counter cannot.
inline std::uint64_t next_instance_key() noexcept {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace fieldkey

/// A static scalar environment over the plane: z = f(x, y).
///
/// Implementations must be safe to call concurrently from const contexts
/// and total over the region of interest (callers never range-check).
class Field {
 public:
  virtual ~Field() = default;

  /// Environment value at position p.
  double value(geo::Vec2 p) const { return do_value(p); }

  /// Convenience overload.
  double value(double x, double y) const { return do_value({x, y}); }

  /// Batched row evaluation: out[i] = value(xs[i], y) for every abscissa,
  /// bit-identical to the scalar calls.  `out` must hold xs.size() slots.
  void value_row(double y, std::span<const double> xs, double* out) const {
    do_value_row(y, xs, out);
  }

  /// Stable identity of this field's *content*: two fields with the same
  /// key evaluate identically everywhere (the converse need not hold).
  /// Consumers use it as a memoization key (DeltaMetric's reference-
  /// lattice cache).  The default is a process-unique instance id — never
  /// reused, so a cache entry can never be resurrected by an unrelated
  /// field landing on a recycled allocation (the address-key ABA hazard).
  /// Parameter-defined fields override do_content_key with a hash of
  /// their type tag and parameters so equal-parameter instances share
  /// cache entries; mutable fields must fold a mutation counter in.
  std::uint64_t content_key() const { return do_content_key(); }

 protected:
  Field() noexcept : instance_key_(fieldkey::next_instance_key()) {}
  /// Copies get their own instance key: the default content identity is
  /// per-object, and a copy may diverge (e.g. GridField::set) after.
  Field(const Field&) noexcept
      : instance_key_(fieldkey::next_instance_key()) {}
  Field& operator=(const Field&) noexcept { return *this; }

  std::uint64_t instance_key() const noexcept { return instance_key_; }

 private:
  virtual double do_value(geo::Vec2 p) const = 0;

  virtual void do_value_row(double y, std::span<const double> xs,
                            double* out) const {
    for (std::size_t i = 0; i < xs.size(); ++i) out[i] = do_value({xs[i], y});
  }

  virtual std::uint64_t do_content_key() const { return instance_key_; }

  std::uint64_t instance_key_;
};

/// A time-varying scalar environment: z = f(x, y, t).  Time is in the
/// simulation unit (minutes in the paper's evaluation).
class TimeVaryingField {
 public:
  virtual ~TimeVaryingField() = default;

  /// Environment value at position p and time t.
  double value(geo::Vec2 p, double t) const { return do_value(p, t); }

  double value(double x, double y, double t) const {
    return do_value({x, y}, t);
  }

  /// Batched row evaluation at time t; same contract as Field::value_row.
  void value_row(double y, std::span<const double> xs, double t,
                 double* out) const {
    do_value_row(y, xs, t, out);
  }

  /// Content identity over the whole time axis; same contract as
  /// Field::content_key (FieldSlice folds the slice time in on top).
  std::uint64_t content_key() const { return do_content_key(); }

 protected:
  TimeVaryingField() noexcept : instance_key_(fieldkey::next_instance_key()) {}
  TimeVaryingField(const TimeVaryingField&) noexcept
      : instance_key_(fieldkey::next_instance_key()) {}
  TimeVaryingField& operator=(const TimeVaryingField&) noexcept {
    return *this;
  }

  std::uint64_t instance_key() const noexcept { return instance_key_; }

 private:
  virtual double do_value(geo::Vec2 p, double t) const = 0;

  virtual void do_value_row(double y, std::span<const double> xs, double t,
                            double* out) const {
    for (std::size_t i = 0; i < xs.size(); ++i) {
      out[i] = do_value({xs[i], y}, t);
    }
  }

  virtual std::uint64_t do_content_key() const { return instance_key_; }

  std::uint64_t instance_key_;
};

/// Non-owning view of a TimeVaryingField frozen at one instant, usable
/// wherever a static Field is expected (e.g. evaluating delta at slot t).
/// The underlying field must outlive the slice.
class FieldSlice final : public Field {
 public:
  FieldSlice(const TimeVaryingField& field, double t) noexcept
      : field_(&field), t_(t) {}

  double time() const noexcept { return t_; }

  /// The sliced field.  Slices are cheap temporaries, so consumers that
  /// memoize per-frame work (DeltaMetric's reference cache) key on the
  /// underlying field's content_key plus time() — which is exactly what
  /// this slice's own content_key computes — rather than on the slice
  /// object.
  const TimeVaryingField& underlying() const noexcept { return *field_; }

 private:
  double do_value(geo::Vec2 p) const override {
    return field_->value(p, t_);
  }

  void do_value_row(double y, std::span<const double> xs,
                    double* out) const override {
    field_->value_row(y, xs, t_, out);
  }

  std::uint64_t do_content_key() const override {
    return fieldkey::combine(field_->content_key(), fieldkey::bits(t_));
  }

  const TimeVaryingField* field_;
  double t_;
};

}  // namespace cps::field
